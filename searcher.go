package swdual

import (
	"context"
	"fmt"
	"net"
	"time"

	"swdual/internal/engine"
	"swdual/internal/remote"
	"swdual/internal/replica"
	"swdual/internal/shard"
)

// Searcher is a persistent search service over one database: it loads
// the database once (sequences, residue encoding, score profiles, length
// statistics), keeps a long-lived pool of CPU and GPU workers, and
// serves any number of concurrent Search calls. Concurrent requests are
// coalesced into shared dual-approximation scheduling waves, so the
// cost of preparation and scheduling is amortized across callers — the
// paper's long-lived master (§IV) as a service.
//
// A Searcher must be Closed to release its workers. For a single search
// the package-level Search remains the simplest entry point; it is now
// a thin wrapper over a temporary Searcher.
//
// With Options.Shards > 1 the database is partitioned across that many
// independent per-shard engines; Search scatters to all of them and
// gathers the per-query hits through a deterministic TopK merge, so the
// results stay byte-identical to the unsharded engine. With
// Options.RemoteShards the same scatter/gather runs over the network:
// every shard is a serve process (see ServeShard) and this process is
// the coordinator. With Options.ReplicaShards every range is held by
// several interchangeable servers behind a failover/hedging facade, so
// a search survives a replica dying mid-flight.
type Searcher struct {
	inner  engine.Backend
	db     *Database
	opt    Options
	shards int
	// ownsDB marks a database the Searcher opened itself from
	// Options.DBPath; Close then also releases its file mapping, after
	// the engines that alias it have stopped.
	ownsDB bool
}

// SearchOptions tunes one Searcher.Search call.
type SearchOptions struct {
	// TopK bounds reported hits per query; 0 uses the Searcher's TopK
	// from Options. Values above the Searcher's TopK are capped.
	TopK int
}

// SearcherStats reports what a Searcher has amortized and served.
type SearcherStats = engine.Stats

// NewSearcher prepares db once and starts the persistent worker pool
// described by opt (CPUs, GPUs, Matrix, gap penalties, Policy, TopK).
func NewSearcher(db *Database, opt Options) (*Searcher, error) {
	return newSearcher(db, opt, 0) // 0 = engine default batch window
}

func newSearcher(db *Database, opt Options, batchWindow int) (*Searcher, error) {
	ownsDB := false
	if db == nil && opt.DBPath != "" {
		opened, err := OpenDatabase(opt.DBPath)
		if err != nil {
			return nil, err
		}
		db, ownsDB = opened, true
	}
	constructed := false
	if ownsDB {
		// Any construction error below must release the mapping we just
		// created, or every failed NewSearcher leaks one mmap.
		defer func() {
			if !constructed {
				db.Close()
			}
		}()
	}
	if db == nil {
		return nil, errNilSets
	}
	params, err := opt.params()
	if err != nil {
		return nil, err
	}
	policy, err := opt.policy()
	if err != nil {
		return nil, err
	}
	pool, err := opt.poolSpec()
	if err != nil {
		return nil, err
	}
	pipeline, err := opt.pipeline()
	if err != nil {
		return nil, err
	}
	cpus, gpus := opt.workers()
	cfg := engine.Config{
		Params:     params,
		CPUs:       cpus,
		GPUs:       gpus,
		Pool:       pool,
		TopK:       opt.TopK,
		Policy:     policy,
		Pipeline:   pipeline,
		Cache:      opt.Cache,
		CacheSize:  opt.CacheSize,
		CacheBytes: opt.CacheBytes,
	}
	if batchWindow < 0 {
		cfg.BatchWindow = -1 // one-shot runs have no co-callers to wait for
	}
	strategy, err := shard.ParseStrategy(opt.ShardSplit)
	if err != nil {
		return nil, err
	}
	var inner engine.Backend
	shards := 1
	switch {
	case len(opt.ReplicaShards) > 0:
		sh, err := dialReplicaShards(db, opt.ReplicaShards, strategy, cfg.TopK, opt.DialTimeout)
		if err != nil {
			return nil, err
		}
		if opt.Cache {
			sh.EnableCache(opt.CacheSize, opt.CacheBytes)
		}
		if opt.Degraded {
			// This is where degraded mode earns its keep: a range whose
			// every replica died answers partial instead of failing.
			sh.SetDegradedPolicy(shard.DegradedPartial)
		}
		inner, shards = sh, sh.Shards()
	case len(opt.RemoteShards) > 0:
		sh, err := dialRemoteShards(db, opt.RemoteShards, strategy, cfg.TopK, opt.DialTimeout)
		if err != nil {
			return nil, err
		}
		if opt.Cache {
			// The cache belongs in the coordinator: a cached answer
			// skips the network scatter entirely.
			sh.EnableCache(opt.CacheSize, opt.CacheBytes)
		}
		if opt.Degraded {
			sh.SetDegradedPolicy(shard.DegradedPartial)
		}
		inner, shards = sh, sh.Shards()
	case opt.Shards > 1:
		// shard.New moves the cache to the coordinator and runs the
		// per-shard engines uncached (one answer cached twice would
		// double the memory for zero extra hits).
		degraded := shard.DegradedFail
		if opt.Degraded {
			degraded = shard.DegradedPartial
		}
		sh, err := shard.New(db.set, shard.Config{
			Shards: opt.Shards, Strategy: strategy, Engine: cfg,
			Cache: opt.Cache, CacheSize: opt.CacheSize, CacheBytes: opt.CacheBytes,
			Degraded: degraded,
		})
		if err != nil {
			return nil, err
		}
		inner, shards = sh, sh.Shards()
	default:
		eng, err := engine.New(db.set, cfg)
		if err != nil {
			return nil, err
		}
		inner = eng
	}
	constructed = true
	return &Searcher{inner: inner, db: db, opt: opt, shards: shards, ownsDB: ownsDB}, nil
}

// dialRemoteShards assembles the coordinator side of a cluster serve:
// split the local database the same way the shard servers did, dial each
// address with the expected slice checksum (the skew guard), and wrap
// the connections in the scatter/gather facade.
func dialRemoteShards(db *Database, addrs []string, strategy shard.Strategy, topK int, dialTimeout time.Duration) (*shard.Searcher, error) {
	ranges := shard.RangesFor(db.set, len(addrs), strategy)
	backends := make([]engine.Backend, 0, len(addrs))
	fail := func(err error) (*shard.Searcher, error) {
		for _, b := range backends {
			b.Close()
		}
		return nil, err
	}
	for i, addr := range addrs {
		want := db.set.Slice(ranges[i].Lo, ranges[i].Hi).Checksum()
		b, err := remote.DialTimeout(addr, want, dialTimeout)
		if err != nil {
			return fail(fmt.Errorf("swdual: shard %d [%d,%d): %w", i, ranges[i].Lo, ranges[i].Hi, err))
		}
		backends = append(backends, b)
	}
	sh, err := shard.WithBackends(db.set, strategy, ranges, backends, topK)
	if err != nil {
		return fail(err)
	}
	return sh, nil
}

// dialReplicaShards assembles the replicated coordinator: each range's
// addresses are dialed with the slice checksum as the skew guard and
// wrapped in a replica.Set — the facade that fails over, re-dials and
// hedges — and the sets feed the same scatter/gather as plain remote
// shards. A replica that is down at construction is tolerated (its set
// starts re-dialing immediately) as long as at least one replica of the
// range answers.
func dialReplicaShards(db *Database, groups [][]string, strategy shard.Strategy, topK int, dialTimeout time.Duration) (*shard.Searcher, error) {
	ranges := shard.RangesFor(db.set, len(groups), strategy)
	backends := make([]engine.Backend, 0, len(groups))
	fail := func(err error) (*shard.Searcher, error) {
		for _, b := range backends {
			b.Close()
		}
		return nil, err
	}
	for i, addrs := range groups {
		if len(addrs) == 0 {
			return fail(fmt.Errorf("swdual: shard %d has no replica addresses", i))
		}
		want := db.set.Slice(ranges[i].Lo, ranges[i].Hi).Checksum()
		reps := make([]replica.Replica, 0, len(addrs))
		var firstErr error
		for _, addr := range addrs {
			redial := func() (engine.Backend, error) {
				return remote.DialTimeout(addr, want, dialTimeout)
			}
			b, err := remote.DialTimeout(addr, want, dialTimeout)
			if err != nil {
				// Down at startup: the set's redial loop keeps trying.
				if firstErr == nil {
					firstErr = err
				}
				reps = append(reps, replica.Replica{Redial: redial})
				continue
			}
			reps = append(reps, replica.Replica{Backend: b, Redial: redial})
		}
		name := fmt.Sprintf("shard %d [%d,%d)", i, ranges[i].Lo, ranges[i].Hi)
		set, err := replica.NewSet(name, want, reps, replica.Config{Index: i})
		if err != nil {
			for _, r := range reps {
				if r.Backend != nil {
					r.Backend.Close()
				}
			}
			if firstErr != nil {
				err = fmt.Errorf("%w (first dial error: %v)", err, firstErr)
			}
			return fail(fmt.Errorf("swdual: %w", err))
		}
		backends = append(backends, set)
	}
	sh, err := shard.WithBackends(db.set, strategy, ranges, backends, topK)
	if err != nil {
		return fail(err)
	}
	return sh, nil
}

// ServeShard serves one shard of db on l for a remote-sharded
// coordinator: the database is split into count ranges with
// opt.ShardSplit (the coordinator must use the same strategy and count)
// and slice index gets its own persistent engine, exposed over the wire
// protocol until the listener closes. A coordinator built with
// Options.RemoteShards verifies the slice checksum at dial, so serving
// the wrong index, count, strategy or database fails fast instead of
// corrupting merged results.
func ServeShard(l net.Listener, db *Database, index, count int, opt Options) error {
	if db == nil {
		return errNilSets
	}
	if count < 1 || index < 0 || index >= count {
		return fmt.Errorf("swdual: shard index %d of %d out of range", index, count)
	}
	params, err := opt.params()
	if err != nil {
		return err
	}
	policy, err := opt.policy()
	if err != nil {
		return err
	}
	strategy, err := shard.ParseStrategy(opt.ShardSplit)
	if err != nil {
		return err
	}
	pool, err := opt.poolSpec()
	if err != nil {
		return err
	}
	pipeline, err := opt.pipeline()
	if err != nil {
		return err
	}
	r := shard.RangesFor(db.set, count, strategy)[index]
	cpus, gpus := opt.workers()
	eng, err := engine.New(db.set.Slice(r.Lo, r.Hi), engine.Config{
		Params:     params,
		CPUs:       cpus,
		GPUs:       gpus,
		Pool:       pool,
		TopK:       opt.TopK,
		Policy:     policy,
		Pipeline:   pipeline,
		Cache:      opt.Cache,
		CacheSize:  opt.CacheSize,
		CacheBytes: opt.CacheBytes,
	})
	if err != nil {
		return err
	}
	defer eng.Close()
	return engine.Serve(l, eng)
}

// Search compares every query against the database and returns merged,
// score-sorted hits per query. It is safe to call from any number of
// goroutines; results are identical to one-shot Search calls with the
// Searcher's Options. Search honors ctx cancellation.
func (s *Searcher) Search(ctx context.Context, queries *Database, opts SearchOptions) (*Report, error) {
	if queries == nil {
		return nil, errNilSets
	}
	return s.inner.Search(ctx, queries.set, engine.SearchOptions{TopK: opts.TopK})
}

// Plan runs only the scheduler for the given queries on the calibrated
// paper-scale platform model, reusing the Searcher's prepared database
// statistics.
func (s *Searcher) Plan(queries *Database) (*SchedulePlan, error) {
	if queries == nil {
		return nil, errNilSets
	}
	cpus, gpus := s.opt.workers()
	if pool, err := s.opt.poolSpec(); err == nil && pool.Total() > 0 {
		cpus, gpus = pool.CPUWorkers(), pool.GPUWorkers()
	}
	return planModel(s.inner.DBLengths(), queryLengths(queries), cpus, gpus, s.opt.Policy)
}

// Serve exposes the Searcher over the wire protocol until the listener
// closes: each client connection streams queries and receives one result
// per query. Concurrent clients share scheduling waves.
func (s *Searcher) Serve(l net.Listener) error {
	return engine.Serve(l, s.inner)
}

// Stats reports the Searcher's cumulative counters (preparation passes,
// workers started, searches, waves). On a sharded Searcher the counters
// span every shard: preparation passes and workers sum across shards
// while Searches counts each scatter/gather call once.
func (s *Searcher) Stats() SearcherStats { return s.inner.Stats() }

// Shards reports how many database shards back the Searcher (1 when
// unsharded).
func (s *Searcher) Shards() int { return s.shards }

// Database returns the loaded database.
func (s *Searcher) Database() *Database { return s.db }

// Checksum fingerprints the loaded database; serve-mode clients can pass
// it to verify both ends hold the same sequences.
func (s *Searcher) Checksum() uint32 { return s.inner.Checksum() }

// Close stops the dispatcher and worker pool. It is idempotent; Search
// calls after Close fail. A Searcher built from Options.DBPath also
// releases the database file mapping — strictly after the engines whose
// residue slices alias it have stopped.
func (s *Searcher) Close() error {
	err := s.inner.Close()
	if s.ownsDB {
		if cerr := s.db.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// QueryServer runs one search request against a serve-mode Searcher
// listening at addr and returns its merged results. A non-zero checksum
// makes the server refuse the request unless its database matches.
func QueryServer(addr string, queries *Database, checksum uint32) (*Report, error) {
	if queries == nil {
		return nil, errNilSets
	}
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	defer nc.Close()
	results, err := engine.Query(nc, queries.set, checksum)
	if err != nil {
		return nil, err
	}
	rep := &Report{Results: make([]QueryResult, len(results))}
	for qi, res := range results {
		qr := QueryResult{
			QueryIndex: qi,
			QueryID:    queries.set.Seqs[qi].ID,
			Elapsed:    time.Duration(res.ElapsedNS),
			SimSeconds: res.SimSeconds,
			Cells:      int64(res.Cells),
		}
		for _, h := range res.Hits {
			qr.Hits = append(qr.Hits, Hit{SeqIndex: int(h.SeqIndex), SeqID: h.SeqID, Score: int(h.Score)})
		}
		rep.Results[qi] = qr
		rep.Cells += qr.Cells
	}
	return rep, nil
}
