package swdual_test

// Benchmarks regenerating every table and figure of the paper's
// evaluation (§V), plus kernel micro-benchmarks measuring the native Go
// throughput of each alignment engine. Run with:
//
//	go test -bench=. -benchmem
//
// The Table/Figure benchmarks report the modeled paper-scale seconds as
// custom metrics (model_s) so regenerated values appear directly in the
// benchmark output; EXPERIMENTS.md records the full tables.

import (
	"context"
	"fmt"
	"net"
	"path/filepath"
	"runtime"
	"sync/atomic"
	"testing"

	"swdual"
	"swdual/internal/alphabet"
	"swdual/internal/bench"
	"swdual/internal/cudasw"
	"swdual/internal/gpusim"
	"swdual/internal/platform"
	"swdual/internal/sched"
	"swdual/internal/sw"
	"swdual/internal/swpar"
	"swdual/internal/swvector"
	"swdual/internal/synth"
)

// BenchmarkSearchOneShot measures the seed's per-call path: every search
// rebuilds workers, profiles and scheduler state from scratch.
func BenchmarkSearchOneShot(b *testing.B) {
	db, queries := benchSearchData(b)
	opt := swdual.Options{CPUs: 2, GPUs: 2, TopK: 5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := swdual.Search(db, queries, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSearchPersistent measures the same search through one
// long-lived Searcher: preparation and the worker pool are paid once,
// outside the loop.
func BenchmarkSearchPersistent(b *testing.B) {
	db, queries := benchSearchData(b)
	s, err := swdual.NewSearcher(db, swdual.Options{CPUs: 2, GPUs: 2, TopK: 5})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Search(ctx, queries, swdual.SearchOptions{}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if st := s.Stats(); st.Prepared != 1 {
		b.Fatalf("database prepared %d times across %d searches", st.Prepared, b.N)
	}
}

// BenchmarkMappedVsHeapMemory prices where the corpus lives during
// sustained searching: the same .swdb searched from a heap copy
// (LoadBinary) and from a read-only mapping (OpenDatabase). ns/op shows
// steady-state search parity — the mapping costs nothing per search —
// while the custom metrics show the memory story: heap-inuse-bytes
// drops by roughly the corpus size under mmap (residues live in the
// page cache, invisible to the GC) and db-mapped-bytes accounts for
// where it went. gc-cycles counts completed GCs during the timed loop.
func BenchmarkMappedVsHeapMemory(b *testing.B) {
	gen, err := swdual.GenerateDatabase("UniProt", 100)
	if err != nil {
		b.Fatal(err)
	}
	path := filepath.Join(b.TempDir(), "bench.swdb")
	if err := gen.SaveBinary(path); err != nil {
		b.Fatal(err)
	}
	gen = nil
	queries, err := swdual.GenerateQueries("standard", 400)
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, open func(string) (*swdual.Database, error)) {
		db, err := open(path)
		if err != nil {
			b.Fatal(err)
		}
		s, err := swdual.NewSearcher(db, swdual.Options{CPUs: 2, GPUs: 1, TopK: 5})
		if err != nil {
			b.Fatal(err)
		}
		ctx := context.Background()
		runtime.GC()
		var before runtime.MemStats
		runtime.ReadMemStats(&before)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.Search(ctx, queries, swdual.SearchOptions{}); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		runtime.GC()
		var after runtime.MemStats
		runtime.ReadMemStats(&after)
		b.ReportMetric(float64(after.HeapInuse), "heap-inuse-bytes")
		b.ReportMetric(float64(after.NumGC-before.NumGC), "gc-cycles")
		b.ReportMetric(float64(db.MappedBytes()), "db-mapped-bytes")
		if err := s.Close(); err != nil {
			b.Fatal(err)
		}
		if err := db.Close(); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("heap", func(b *testing.B) { run(b, swdual.LoadBinary) })
	b.Run("mmap", func(b *testing.B) { run(b, swdual.OpenDatabase) })
}

// BenchmarkCachedSearch prices the result cache against the persistent
// uncached path on the same repeated search: cache=off re-runs the full
// wave every iteration; cache=on pays one cold wave during warm-up and
// serves every timed iteration from the cache — the delta is the entire
// alignment cost, leaving only key construction and the defensive copy.
// Hits are byte-identical either way (the equivalence suite proves it).
func BenchmarkCachedSearch(b *testing.B) {
	db, queries := benchSearchData(b)
	for _, mode := range []string{"off", "on"} {
		b.Run("cache="+mode, func(b *testing.B) {
			s, err := swdual.NewSearcher(db, swdual.Options{
				CPUs: 2, GPUs: 2, TopK: 5, Cache: mode == "on",
			})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			ctx := context.Background()
			// Warm up: with the cache on, the cold miss happens here and
			// every timed iteration is a hit.
			if _, err := s.Search(ctx, queries, swdual.SearchOptions{}); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Search(ctx, queries, swdual.SearchOptions{}); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			st := s.Stats()
			if mode == "on" && st.CacheHits != uint64(b.N) {
				b.Fatalf("cache hits %d across %d timed searches", st.CacheHits, b.N)
			}
			if mode == "off" && st.CacheHits != 0 {
				b.Fatalf("uncached searcher reported %d cache hits", st.CacheHits)
			}
		})
	}
}

// BenchmarkSearchPersistentConcurrent measures the wave pipeline under
// the load it was built for: many concurrent clients, each submitting
// small requests against one Searcher — the serving workload, where the
// engine runs a steady stream of small coalesced waves and per-wave
// overhead (planning, the end-of-wave barrier) is what throughput leaks
// through. pipeline=on plans wave N+1 while wave N executes and hands
// workers their next queue without a barrier; pipeline=off is the
// strict sequential-wave baseline. Hits are byte-identical across the
// two modes — the delta is pure dispatcher latency.
func BenchmarkSearchPersistentConcurrent(b *testing.B) {
	db, _ := benchSearchData(b)
	full, err := swdual.GenerateQueries("standard", 400)
	if err != nil {
		b.Fatal(err)
	}
	// One single-query set per standard query: each client request is
	// small, so waves stay frequent and the dispatcher is actually hot.
	sets := make([]*swdual.Database, full.Len())
	for i := range sets {
		id, res := full.Sequence(i)
		if sets[i], err = swdual.FromSequences([]string{id}, []string{res}); err != nil {
			b.Fatal(err)
		}
	}
	for _, mode := range []string{"off", "on"} {
		b.Run("pipeline="+mode, func(b *testing.B) {
			s, err := swdual.NewSearcher(db, swdual.Options{CPUs: 2, GPUs: 2, TopK: 5, Pipeline: mode})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			ctx := context.Background()
			var client atomic.Int64
			b.SetParallelism(4) // >= 4 concurrent clients regardless of GOMAXPROCS
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				n := int(client.Add(1))
				for pb.Next() {
					q := sets[n%len(sets)]
					n++
					if _, err := s.Search(ctx, q, swdual.SearchOptions{}); err != nil {
						b.Error(err) // Fatal must not run off the benchmark goroutine
						return
					}
				}
			})
		})
	}
}

// BenchmarkShardedSearch measures scatter/gather over per-shard engines
// against the single-engine baseline (shards=1 runs unsharded): same
// database, same queries, byte-identical results, shard count scaling
// the worker pools.
func BenchmarkShardedSearch(b *testing.B) {
	db, queries := benchSearchData(b)
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			s, err := swdual.NewSearcher(db, swdual.Options{
				CPUs: 1, GPUs: 1, TopK: 5, Shards: shards, ShardSplit: "balanced",
			})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Search(ctx, queries, swdual.SearchOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRemoteShardedSearch prices the transport swap: the same
// scatter/gather once over localhost TCP shard servers (cluster serve)
// and once over in-process shards, for 1, 2 and 4 shards. The hits are
// byte-identical either way; the delta is pure wire cost (framing,
// syscalls, one coalescing hop per shard).
func BenchmarkRemoteShardedSearch(b *testing.B) {
	db, queries := benchSearchData(b)
	for _, shards := range []int{1, 2, 4} {
		opt := swdual.Options{CPUs: 1, GPUs: 1, TopK: 5, ShardSplit: "balanced"}

		b.Run(fmt.Sprintf("remote/shards=%d", shards), func(b *testing.B) {
			addrs := make([]string, shards)
			listeners := make([]net.Listener, shards)
			for i := 0; i < shards; i++ {
				l, err := net.Listen("tcp", "127.0.0.1:0")
				if err != nil {
					b.Fatal(err)
				}
				listeners[i] = l
				addrs[i] = l.Addr().String()
				go swdual.ServeShard(l, db, i, shards, opt)
			}
			defer func() {
				for _, l := range listeners {
					l.Close()
				}
			}()
			coordOpt := opt
			coordOpt.RemoteShards = addrs
			s, err := swdual.NewSearcher(db, coordOpt)
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Search(ctx, queries, swdual.SearchOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		})

		b.Run(fmt.Sprintf("inproc/shards=%d", shards), func(b *testing.B) {
			inOpt := opt
			inOpt.Shards = shards
			s, err := swdual.NewSearcher(db, inOpt)
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Search(ctx, queries, swdual.SearchOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMixedPoolSearch compares homogeneous worker pools against
// heterogeneous pool specs mixing the inter-sequence, striped,
// fine-grained and GPU backends. Hits are byte-identical across specs
// (the equivalence suite proves it); the delta is pure throughput, and
// repeated iterations let the rate estimator steer each wave's schedule
// with the rates measured on the previous one.
func BenchmarkMixedPoolSearch(b *testing.B) {
	db, queries := benchSearchData(b)
	for _, spec := range []string{
		"cpu=4",
		"striped=4",
		"cpu=2,gpu=2",
		"cpu=1,striped=1,fine=1,gpu=1",
		"striped=2,gpu=2",
	} {
		b.Run("pool="+spec, func(b *testing.B) {
			s, err := swdual.NewSearcher(db, swdual.Options{Pool: spec, TopK: 5})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Search(ctx, queries, swdual.SearchOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func benchSearchData(b *testing.B) (db, queries *swdual.Database) {
	b.Helper()
	db, err := swdual.GenerateDatabase("UniProt", 20000)
	if err != nil {
		b.Fatal(err)
	}
	queries, err = swdual.GenerateQueries("standard", 400)
	if err != nil {
		b.Fatal(err)
	}
	return db, queries
}

// BenchmarkTable1Applications regenerates Table I (application registry).
func BenchmarkTable1Applications(b *testing.B) {
	r := bench.NewRunner(bench.Config{})
	for i := 0; i < b.N; i++ {
		t := r.Table1()
		if len(t.Rows) != 5 {
			b.Fatalf("Table I has %d rows, want 5", len(t.Rows))
		}
	}
}

// BenchmarkTable2Figure7 regenerates Table II / Figure 7: execution time
// vs workers on UniProt for the five applications.
func BenchmarkTable2Figure7(b *testing.B) {
	r := bench.NewRunner(bench.Config{})
	var t *bench.Table
	for i := 0; i < b.N; i++ {
		t = r.Table2Figure7()
	}
	reportSeries(b, t)
}

// BenchmarkTable3Databases regenerates Table III (database inventory).
func BenchmarkTable3Databases(b *testing.B) {
	r := bench.NewRunner(bench.Config{})
	for i := 0; i < b.N; i++ {
		t := r.Table3()
		if len(t.Rows) != 5 {
			b.Fatalf("Table III has %d rows, want 5", len(t.Rows))
		}
	}
}

// BenchmarkTable4Figure8 regenerates Table IV / Figure 8: SWDUAL time and
// GCUPS on the five databases.
func BenchmarkTable4Figure8(b *testing.B) {
	r := bench.NewRunner(bench.Config{})
	var t *bench.Table
	for i := 0; i < b.N; i++ {
		t = r.Table4Figure8()
	}
	reportSeries(b, t)
}

// BenchmarkTable5Figure9 regenerates Table V / Figure 9: homogeneous vs
// heterogeneous query sets.
func BenchmarkTable5Figure9(b *testing.B) {
	r := bench.NewRunner(bench.Config{})
	var t *bench.Table
	for i := 0; i < b.N; i++ {
		t = r.Table5Figure9()
	}
	reportSeries(b, t)
}

// BenchmarkAblationIdleTime regenerates the idle-time ablation backing
// the paper's "almost no idle time" claim.
func BenchmarkAblationIdleTime(b *testing.B) {
	r := bench.NewRunner(bench.Config{})
	for i := 0; i < b.N; i++ {
		if t := r.AblationIdle(); len(t.Rows) == 0 {
			b.Fatal("empty ablation")
		}
	}
}

// BenchmarkAblationSchedulers regenerates the scheduler-quality ablation.
func BenchmarkAblationSchedulers(b *testing.B) {
	r := bench.NewRunner(bench.Config{})
	for i := 0; i < b.N; i++ {
		if t := r.AblationSchedulers(); len(t.Rows) == 0 {
			b.Fatal("empty ablation")
		}
	}
}

// reportSeries exposes the last point of each figure series as a custom
// metric so regenerated numbers are visible in bench output.
func reportSeries(b *testing.B, t *bench.Table) {
	b.Helper()
	for _, s := range t.Series {
		if n := len(s.Y); n > 0 {
			b.ReportMetric(s.Y[n-1], "model_s/"+sanitize(s.Name))
		}
	}
}

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			out = append(out, r)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}

// Engine micro-benchmarks: native Go GCUPS of each kernel.

func benchEngine(b *testing.B, engine sw.Engine, queryLen, dbSeqs, dbLen int) {
	b.Helper()
	db := synth.RandomSet(alphabet.Protein, dbSeqs, dbLen, dbLen, 1)
	query := synth.RandomSet(alphabet.Protein, 1, queryLen, queryLen, 2).Seqs[0].Residues
	cells := sw.SetCells(len(query), db)
	b.SetBytes(cells) // bytes/s == cells/s
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		engine.Scores(query, db)
	}
	b.StopTimer()
	secs := b.Elapsed().Seconds() / float64(b.N)
	if secs > 0 {
		b.ReportMetric(float64(cells)/secs/1e9, "GCUPS")
	}
}

// BenchmarkEngineScalar measures the scalar Gotoh oracle.
func BenchmarkEngineScalar(b *testing.B) {
	benchEngine(b, sw.NewScalar(sw.DefaultParams()), 256, 32, 360)
}

// BenchmarkEngineProfiled measures the profile-driven scalar engine.
func BenchmarkEngineProfiled(b *testing.B) {
	benchEngine(b, sw.NewProfiled(sw.DefaultParams()), 256, 32, 360)
}

// BenchmarkEngineStriped measures the Farrar striped SWAR engine.
func BenchmarkEngineStriped(b *testing.B) {
	benchEngine(b, swvector.NewStriped(sw.DefaultParams()), 256, 32, 360)
}

// BenchmarkEngineStriped128 measures the 16-lane (SSE2-width) Farrar
// engine.
func BenchmarkEngineStriped128(b *testing.B) {
	benchEngine(b, swvector.NewStriped128(sw.DefaultParams()), 256, 32, 360)
}

// BenchmarkEngineInterSeq measures the SWIPE-style inter-sequence engine.
func BenchmarkEngineInterSeq(b *testing.B) {
	benchEngine(b, swvector.NewInterSeq(sw.DefaultParams()), 256, 32, 360)
}

// BenchmarkEngineFineGrained measures the paper's §II.C fine-grained
// wavefront (one comparison split across goroutines, Figure 2).
func BenchmarkEngineFineGrained(b *testing.B) {
	benchEngine(b, swpar.NewEngine(sw.DefaultParams(), swpar.Config{Workers: 4, RowBand: 64}), 2048, 4, 2048)
}

// BenchmarkAlignHirschberg measures linear-space traceback alignment.
func BenchmarkAlignHirschberg(b *testing.B) {
	db := synth.RandomSet(alphabet.Protein, 2, 1500, 1500, 3)
	q, d := db.Seqs[0].Residues, db.Seqs[1].Residues
	p := sw.DefaultParams()
	b.SetBytes(sw.Cells(len(q), len(d)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sw.AlignHirschberg(p, q, d)
	}
}

// BenchmarkAlignFullMatrix measures quadratic-space traceback alignment
// (the memory-hungry alternative Hirschberg replaces).
func BenchmarkAlignFullMatrix(b *testing.B) {
	db := synth.RandomSet(alphabet.Protein, 2, 1500, 1500, 3)
	q, d := db.Seqs[0].Residues, db.Seqs[1].Residues
	p := sw.DefaultParams()
	b.SetBytes(sw.Cells(len(q), len(d)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sw.Align(p, q, d)
	}
}

// BenchmarkEngineCUDASW measures the CUDASW++-style engine (functional
// throughput of the simulated GPU path, host-side).
func BenchmarkEngineCUDASW(b *testing.B) {
	benchEngine(b, cudasw.New(gpusim.New(gpusim.TeslaC2050()), sw.DefaultParams()), 256, 32, 360)
}

// BenchmarkDualApprox40Tasks measures the scheduler on the paper's task
// shape (40 tasks, 4+4 PEs).
func BenchmarkDualApprox40Tasks(b *testing.B) {
	p := platform.New(4, 4)
	model := p.ModelDB("uniprot", synth.UniProt.Scaled(100).GenerateLengths())
	in := p.Instance(model, synth.StandardQueries().Lengths)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sched.DualApprox(in); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDualApproxDP40Tasks measures the 3/2 DP refinement.
func BenchmarkDualApproxDP40Tasks(b *testing.B) {
	p := platform.New(4, 4)
	model := p.ModelDB("uniprot", synth.UniProt.Scaled(100).GenerateLengths())
	in := p.Instance(model, synth.StandardQueries().Lengths)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sched.DualApproxDP(in); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGPUSimLaunch measures simulator overhead per kernel launch.
func BenchmarkGPUSimLaunch(b *testing.B) {
	dev := gpusim.New(gpusim.TeslaC2050())
	blocks := make([]*gpusim.Block, 64)
	for i := range blocks {
		blocks[i] = &gpusim.Block{Warps: []gpusim.Warp{nopWarp{}}}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dev.Launch(blocks, 1<<20)
	}
}

type nopWarp struct{}

func (nopWarp) Run()           {}
func (nopWarp) Cycles() uint64 { return 1000 }

// BenchmarkReplicatedSearch prices the replication facade: the same
// cluster-serve scatter/gather with one replica per range (plain
// failover-capable routing) and with two (failover plus hedge
// machinery armed). Hits are byte-identical in every configuration —
// the replica suite proves it — so the delta is the availability
// layer's overhead on the happy path.
func BenchmarkReplicatedSearch(b *testing.B) {
	db, queries := benchSearchData(b)
	const shards = 2
	opt := swdual.Options{CPUs: 1, GPUs: 1, TopK: 5, ShardSplit: "balanced"}
	for _, replicas := range []int{1, 2} {
		b.Run(fmt.Sprintf("shards=%d/replicas=%d", shards, replicas), func(b *testing.B) {
			groups := make([][]string, shards)
			var listeners []net.Listener
			for i := 0; i < shards; i++ {
				for r := 0; r < replicas; r++ {
					l, err := net.Listen("tcp", "127.0.0.1:0")
					if err != nil {
						b.Fatal(err)
					}
					listeners = append(listeners, l)
					groups[i] = append(groups[i], l.Addr().String())
					go swdual.ServeShard(l, db, i, shards, opt)
				}
			}
			defer func() {
				for _, l := range listeners {
					l.Close()
				}
			}()
			coordOpt := opt
			coordOpt.ReplicaShards = groups
			s, err := swdual.NewSearcher(db, coordOpt)
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Search(ctx, queries, swdual.SearchOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
