// Sharded search: partition a database across four independent shards
// (each with its own worker pool), scatter every search to all of them,
// and gather the per-query hits through a deterministic TopK merge —
// then prove against an unsharded Searcher that the results are
// identical. This is the in-process form of the scatter/gather that a
// cluster deployment performs across machines.
package main

import (
	"context"
	"fmt"
	"log"

	"swdual"
)

func main() {
	db, err := swdual.GenerateDatabase("UniProt", 20000)
	if err != nil {
		log.Fatal(err)
	}
	queries, err := swdual.GenerateQueries("standard", 400)
	if err != nil {
		log.Fatal(err)
	}

	// Four shards with residue-balanced boundaries; every shard owns one
	// CPU + one GPU worker, so eight workers serve the database in total.
	sharded, err := swdual.NewSearcher(db, swdual.Options{
		CPUs: 1, GPUs: 1, TopK: 5,
		Shards: 4, ShardSplit: "balanced",
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sharded.Close()

	single, err := swdual.NewSearcher(db, swdual.Options{CPUs: 1, GPUs: 1, TopK: 5})
	if err != nil {
		log.Fatal(err)
	}
	defer single.Close()

	ctx := context.Background()
	shardedRep, err := sharded.Search(ctx, queries, swdual.SearchOptions{})
	if err != nil {
		log.Fatal(err)
	}
	singleRep, err := single.Search(ctx, queries, swdual.SearchOptions{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("database: %d sequences, %d residues, %d shards\n\n",
		db.Len(), db.TotalResidues(), sharded.Shards())
	for qi, r := range shardedRep.Results[:3] {
		fmt.Printf("query %s:\n", r.QueryID)
		for hi, h := range r.Hits {
			marker := "==" // same hit from the unsharded engine
			if singleRep.Results[qi].Hits[hi] != h {
				marker = "!="
			}
			fmt.Printf("  %-22s score %5d  (global seq %4d)  %s unsharded\n",
				h.SeqID, h.Score, h.SeqIndex, marker)
		}
	}

	// Every hit of every query must match the unsharded engine exactly:
	// the gather merges per-shard TopK lists by score (desc) then global
	// sequence index (asc), the same order a whole-database TopK uses.
	mismatches := 0
	for qi := range shardedRep.Results {
		a, b := shardedRep.Results[qi].Hits, singleRep.Results[qi].Hits
		if len(a) != len(b) {
			mismatches++
			continue
		}
		for hi := range a {
			if a[hi] != b[hi] {
				mismatches++
			}
		}
	}
	st := sharded.Stats()
	fmt.Printf("\nhits differing from the unsharded engine: %d\n", mismatches)
	fmt.Printf("shard preparation passes %d, workers started %d, searches %d\n",
		st.Prepared, st.WorkersStarted, st.Searches)
}
