// heterosets: reproduce the paper's Table V story — the scheduler must
// handle query sets of similar sizes (homogeneous) and wildly different
// sizes (heterogeneous) equally well. Runs a scaled functional search for
// both sets and prints the paper-scale plans next to the paper's numbers.
package main

import (
	"fmt"
	"log"

	"swdual"
)

func main() {
	db, err := swdual.GenerateDatabase("UniProt", 4000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("database: %d sequences, %d residues\n\n", db.Len(), db.TotalResidues())

	paper := map[string][3]float64{ // workers 2, 4, 8 (Table V)
		"homogeneous":   {998.27, 484.74, 249.69},
		"heterogeneous": {3554.36, 1785.73, 908.45},
	}
	for _, kind := range []string{"homogeneous", "heterogeneous"} {
		queries, err := swdual.GenerateQueries(kind, 400)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := swdual.Search(db, queries, swdual.Options{CPUs: 2, GPUs: 2, TopK: 1})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s set (scaled, functional): wall %v, %.3f GCUPS, idle %.2f%%\n",
			kind, rep.Wall, rep.GCUPS, 100*rep.IdleFraction)
		for wi, w := range []int{2, 4, 8} {
			plan, err := swdual.PaperPlatformPlan("UniProt", kind, w)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  paper scale, %d workers: modeled %8.2f s (paper %8.2f s), %6.2f GCUPS, idle %.2f%%\n",
				w, plan.Makespan, paper[kind][wi], plan.GCUPS, 100*plan.IdleFraction)
		}
		fmt.Println()
	}
	fmt.Println("the scheduler keeps idle time low on both set shapes — the paper's §V.C claim")
}
