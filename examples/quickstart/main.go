// Quickstart: align two sequences, then search a tiny in-memory database
// on a hybrid 1 CPU + 1 GPU platform.
package main

import (
	"fmt"
	"log"

	"swdual"
)

func main() {
	// Pairwise local alignment with traceback (the paper's Figure 1
	// operation, with affine gaps).
	al, err := swdual.AlignPair(
		"MKWVTFISLLFLFSSAYSRGVFRRDAHKSEVAHRFKDLGEENFKALVLIAFAQYLQQ",
		"MKWVTALISLLFLFSSAYSRGVFRRDAHKSEVNHRFKDLGEENFKALVLIAFAQYLQQ",
		swdual.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pairwise score %d, identity %.1f%%, CIGAR %s\n", al.Score, 100*al.Identity, al.CIGAR)
	fmt.Println(al.Text)

	// A small database search: every query is compared to every database
	// sequence; the dual-approximation scheduler splits queries between
	// the CPU worker (SWIPE-style SWAR engine) and the GPU worker
	// (CUDASW++-style engine on a simulated Tesla C2050).
	db, err := swdual.FromSequences(
		[]string{"albumin-like", "kinase-like", "random-1", "random-2"},
		[]string{
			"MKWVTFISLLFLFSSAYSRGVFRRDAHKSEVAHRFKDLGEENFKALVLIAFAQYLQQ",
			"MGSNKSKPKDASQRRRSLEPAENVHGAGGGAFPASQTPSKPASADGHRGPSAAFAPAAAE",
			"ARNDCQEGHILKMFPSTWYVARNDCQEGHILKMFPSTWYV",
			"VYWTSPFMKLIHEQCNRADGVYWTSPFMKLIHEQCNRADG",
		})
	if err != nil {
		log.Fatal(err)
	}
	queries, err := swdual.FromSequences(
		[]string{"q-albumin", "q-kinase"},
		[]string{
			"MKWVTALISLLFLFSSAYSRGVFRRDAHKSEVNHRFKDLGEENFK",
			"MGSNKSKPKDASQRRRSLEPAENVHGAGGGAFPASQTPSKPASAD",
		})
	if err != nil {
		log.Fatal(err)
	}
	rep, err := swdual.Search(db, queries, swdual.Options{CPUs: 1, GPUs: 1, TopK: 3})
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range rep.Results {
		fmt.Printf("query %s (executed on %s):\n", r.QueryID, r.Worker)
		for _, h := range r.Hits {
			fmt.Printf("  %-14s score %d\n", h.SeqID, h.Score)
		}
	}
}
