// Quickstart: align two sequences, then stand up a persistent Searcher
// over a tiny in-memory database and run two searches through it on a
// hybrid 1 CPU + 1 GPU platform.
package main

import (
	"context"
	"fmt"
	"log"

	"swdual"
)

func main() {
	// Pairwise local alignment with traceback (the paper's Figure 1
	// operation, with affine gaps).
	al, err := swdual.AlignPair(
		"MKWVTFISLLFLFSSAYSRGVFRRDAHKSEVAHRFKDLGEENFKALVLIAFAQYLQQ",
		"MKWVTALISLLFLFSSAYSRGVFRRDAHKSEVNHRFKDLGEENFKALVLIAFAQYLQQ",
		swdual.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pairwise score %d, identity %.1f%%, CIGAR %s\n", al.Score, 100*al.Identity, al.CIGAR)
	fmt.Println(al.Text)

	// A persistent search engine: the database is prepared once and the
	// CPU worker (SWIPE-style SWAR engine) and GPU worker (CUDASW++-style
	// engine on a simulated Tesla C2050) stay alive between searches; the
	// dual-approximation scheduler splits every request between them.
	db, err := swdual.FromSequences(
		[]string{"albumin-like", "kinase-like", "random-1", "random-2"},
		[]string{
			"MKWVTFISLLFLFSSAYSRGVFRRDAHKSEVAHRFKDLGEENFKALVLIAFAQYLQQ",
			"MGSNKSKPKDASQRRRSLEPAENVHGAGGGAFPASQTPSKPASADGHRGPSAAFAPAAAE",
			"ARNDCQEGHILKMFPSTWYVARNDCQEGHILKMFPSTWYV",
			"VYWTSPFMKLIHEQCNRADGVYWTSPFMKLIHEQCNRADG",
		})
	if err != nil {
		log.Fatal(err)
	}
	searcher, err := swdual.NewSearcher(db, swdual.Options{CPUs: 1, GPUs: 1, TopK: 3})
	if err != nil {
		log.Fatal(err)
	}
	defer searcher.Close()

	for _, q := range []struct{ id, residues string }{
		{"q-albumin", "MKWVTALISLLFLFSSAYSRGVFRRDAHKSEVNHRFKDLGEENFK"},
		{"q-kinase", "MGSNKSKPKDASQRRRSLEPAENVHGAGGGAFPASQTPSKPASAD"},
	} {
		queries, err := swdual.FromSequences([]string{q.id}, []string{q.residues})
		if err != nil {
			log.Fatal(err)
		}
		rep, err := searcher.Search(context.Background(), queries, swdual.SearchOptions{})
		if err != nil {
			log.Fatal(err)
		}
		for _, r := range rep.Results {
			fmt.Printf("query %s (executed on %s):\n", r.QueryID, r.Worker)
			for _, h := range r.Hits {
				fmt.Printf("  %-14s score %d\n", h.SeqID, h.Score)
			}
		}
	}

	// Both searches shared one preparation pass and one worker pool.
	st := searcher.Stats()
	fmt.Printf("\nsearches %d, preparation passes %d, workers started %d\n",
		st.Searches, st.Prepared, st.WorkersStarted)
}
