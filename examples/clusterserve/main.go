// Cluster serve: the sharded scatter/gather distributed across
// processes. Every shard server holds the same database and serves one
// contiguous slice of it over the wire protocol; a coordinator splits
// the database the same way, dials each server (verifying each slice's
// checksum, so a server with skewed data is rejected), scatters every
// search across the wire, and gathers hits byte-identical to a local
// unsharded search — proven at the end against a local Searcher. One
// program plays all the roles here; in production each ServeShard call
// is its own process (`swdual -shard-serve`) on its own machine.
package main

import (
	"context"
	"fmt"
	"log"
	"net"

	"swdual"
)

func main() {
	const shardCount = 2
	db, err := swdual.GenerateDatabase("UniProt", 20000)
	if err != nil {
		log.Fatal(err)
	}
	queries, err := swdual.GenerateQueries("standard", 400)
	if err != nil {
		log.Fatal(err)
	}
	opt := swdual.Options{CPUs: 1, GPUs: 1, TopK: 5, ShardSplit: "balanced"}

	// Shard servers: each serves its slice of the database on its own
	// listener — stand-ins for `swdual -db db.fasta -shard-serve :401N
	// -shard-index i -shard-count 2` on separate machines.
	addrs := make([]string, shardCount)
	for i := 0; i < shardCount; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		defer l.Close()
		addrs[i] = l.Addr().String()
		go func(i int, l net.Listener) {
			if err := swdual.ServeShard(l, db, i, shardCount, opt); err != nil {
				log.Printf("shard server %d: %v", i, err)
			}
		}(i, l)
	}

	// The coordinator: a Searcher whose shards live behind those
	// addresses. It still loads the database locally — that is what lets
	// it verify every server's slice checksum before the first query.
	coordOpt := opt
	coordOpt.RemoteShards = addrs
	coordinator, err := swdual.NewSearcher(db, coordOpt)
	if err != nil {
		log.Fatal(err)
	}
	defer coordinator.Close()

	// The local reference: one unsharded engine over the same database.
	local, err := swdual.NewSearcher(db, opt)
	if err != nil {
		log.Fatal(err)
	}
	defer local.Close()

	ctx := context.Background()
	remoteRep, err := coordinator.Search(ctx, queries, swdual.SearchOptions{})
	if err != nil {
		log.Fatal(err)
	}
	localRep, err := local.Search(ctx, queries, swdual.SearchOptions{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("database: %d sequences, %d residues, %d remote shards at %v\n\n",
		db.Len(), db.TotalResidues(), coordinator.Shards(), addrs)
	for _, r := range remoteRep.Results[:3] {
		fmt.Printf("query %s:\n", r.QueryID)
		for _, h := range r.Hits {
			fmt.Printf("  %-22s score %5d  (global seq %4d)\n", h.SeqID, h.Score, h.SeqIndex)
		}
	}

	// Every hit of every query must match the local engine exactly: the
	// wire protocol moves queries and hits, never scores approximated.
	mismatches := 0
	for qi := range remoteRep.Results {
		a, b := remoteRep.Results[qi].Hits, localRep.Results[qi].Hits
		if len(a) != len(b) {
			mismatches++
			continue
		}
		for hi := range a {
			if a[hi] != b[hi] {
				mismatches++
			}
		}
	}
	fmt.Printf("\nhits differing from the local unsharded engine: %d\n", mismatches)
	fmt.Printf("coordinator checksum %08x == local checksum %08x\n",
		coordinator.Checksum(), local.Checksum())
}
