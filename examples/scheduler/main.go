// scheduler: a close-up of the paper's core contribution. Plans the
// UniProt search on the paper-scale platform model with the
// dual-approximation scheduler, prints the Gantt chart and the CPU/GPU
// split, and contrasts the makespan with the certified lower bound —
// the "almost no idle time" story of §V.A.
package main

import (
	"fmt"
	"log"

	"swdual"
)

func main() {
	for _, workers := range []int{2, 4, 8} {
		plan, err := swdual.PaperPlatformPlan("UniProt", "standard", workers)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== UniProt, 40 standard queries, %d workers ===\n", workers)
		fmt.Printf("algorithm      %s\n", plan.Algorithm)
		fmt.Printf("makespan       %8.2f s   (certified lower bound %.2f s, ratio %.3f)\n",
			plan.Makespan, plan.LowerBound, plan.Makespan/plan.LowerBound)
		fmt.Printf("throughput     %8.2f GCUPS\n", plan.GCUPS)
		fmt.Printf("idle fraction  %8.2f %%\n", 100*plan.IdleFraction)
		fmt.Println(plan.Gantt)
	}

	// The same planning on a heterogeneous query set — the scheduler must
	// place the few enormous queries (up to 35,213 residues) on GPUs and
	// backfill the CPUs with small ones (§V.C).
	plan, err := swdual.PaperPlatformPlan("UniProt", "heterogeneous", 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== heterogeneous query set (lengths 4..35213), 8 workers ===")
	fmt.Printf("makespan %.2f s, %.2f GCUPS, idle %.2f%%\n",
		plan.Makespan, plan.GCUPS, 100*plan.IdleFraction)
	fmt.Println(plan.Gantt)

	// Significance statistics for reported scores (Karlin-Altschul).
	stats, err := swdual.NewScoreStats(swdual.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("score statistics: lambda=%.3f K=%.3f gapped=%v\n", stats.Lambda, stats.K, stats.Gapped)
	fmt.Printf("a raw score of 250 on a 350-residue query vs UniProt (1.93e8 residues): %.1f bits, E=%.2g\n",
		stats.BitScore(250), stats.EValue(250, 350, 193_000_000))
	fmt.Printf("significance threshold at E=1e-3: raw score >= %d\n",
		stats.ScoreThreshold(1e-3, 350, 193_000_000))
}
