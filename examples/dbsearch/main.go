// dbsearch: the paper's core experiment at laptop scale — a persistent
// Searcher over a scaled synthetic UniProt serving the standard 40-query
// set, first as one request, then as eight concurrent clients whose
// queries coalesce into shared scheduling waves.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"

	"swdual"
)

func main() {
	// 1/2000-scale UniProt (~269 sequences, same length distribution) and
	// 1/50-scale query lengths keep the run under a few seconds while
	// exercising the full pipeline with real alignment kernels.
	db, err := swdual.GenerateDatabase("UniProt", 2000)
	if err != nil {
		log.Fatal(err)
	}
	queries, err := swdual.GenerateQueries("standard", 50)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("database: %d sequences, %d residues\n", db.Len(), db.TotalResidues())
	fmt.Printf("queries:  %d sequences, %d residues\n\n", queries.Len(), queries.TotalResidues())

	// The database is prepared once; the 4 CPU + 4 GPU workers live for
	// every request below.
	searcher, err := swdual.NewSearcher(db, swdual.Options{CPUs: 4, GPUs: 4, TopK: 3})
	if err != nil {
		log.Fatal(err)
	}
	defer searcher.Close()

	rep, err := searcher.Search(context.Background(), queries, swdual.SearchOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("top hit per query (first 10):")
	for _, r := range rep.Results[:10] {
		fmt.Printf("  %-22s -> %-18s score %4d  (on %s)\n",
			r.QueryID, r.Hits[0].SeqID, r.Hits[0].Score, r.Worker)
	}
	fmt.Printf("\nwall %v, %.3f native GCUPS, %d cells\n", rep.Wall, rep.GCUPS, rep.Cells)
	fmt.Printf("tasks per worker: %v\n", rep.WorkerTasks)
	if rep.Schedule != nil {
		fmt.Printf("modeled makespan %.3f s, idle %.2f%%\n\n", rep.SimMakespan, 100*rep.IdleFraction)
	}

	// Eight concurrent clients hammer the same Searcher; requests landing
	// in the same batch window are scheduled as one wave.
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			q, err := swdual.GenerateQueries("standard", 100+i)
			if err != nil {
				log.Fatal(err)
			}
			if _, err := searcher.Search(context.Background(), q, swdual.SearchOptions{}); err != nil {
				log.Fatal(err)
			}
		}(i)
	}
	wg.Wait()
	st := searcher.Stats()
	fmt.Printf("served %d searches (%d queries) in %d waves, %d waves coalesced concurrent requests\n",
		st.Searches, st.Queries, st.Waves, st.BatchedWaves)
	fmt.Printf("preparation passes: %d (database loaded once), workers started: %d\n\n",
		st.Prepared, st.WorkersStarted)

	// The same search planned at full paper scale (537,505 sequences, 8
	// Tesla C2050 + 8 CPU platform shape: 4 GPU + 4 CPU workers).
	plan, err := swdual.PaperPlatformPlan("UniProt", "standard", 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("paper-scale plan (8 workers): makespan %.2f s, %.2f GCUPS, idle %.2f%%\n",
		plan.Makespan, plan.GCUPS, 100*plan.IdleFraction)
	fmt.Println("paper reports 142.98 s / 136.06 GCUPS for this configuration (Table IV)")
}
