// dbsearch: the paper's core experiment at laptop scale — search the
// standard 40-query set against a scaled synthetic UniProt on a hybrid
// platform, and compare the realized split with the paper-scale plan.
package main

import (
	"fmt"
	"log"

	"swdual"
)

func main() {
	// 1/2000-scale UniProt (~269 sequences, same length distribution) and
	// 1/50-scale query lengths keep the run under a few seconds while
	// exercising the full pipeline with real alignment kernels.
	db, err := swdual.GenerateDatabase("UniProt", 2000)
	if err != nil {
		log.Fatal(err)
	}
	queries, err := swdual.GenerateQueries("standard", 50)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("database: %d sequences, %d residues\n", db.Len(), db.TotalResidues())
	fmt.Printf("queries:  %d sequences, %d residues\n\n", queries.Len(), queries.TotalResidues())

	opt := swdual.Options{CPUs: 4, GPUs: 4, TopK: 3}
	rep, err := swdual.Search(db, queries, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("top hit per query (first 10):")
	for _, r := range rep.Results[:10] {
		fmt.Printf("  %-22s -> %-18s score %4d  (on %s)\n",
			r.QueryID, r.Hits[0].SeqID, r.Hits[0].Score, r.Worker)
	}
	fmt.Printf("\nwall %v, %.3f native GCUPS, %d cells\n", rep.Wall, rep.GCUPS, rep.Cells)
	fmt.Printf("tasks per worker: %v\n", rep.WorkerTasks)
	if rep.Schedule != nil {
		fmt.Printf("modeled makespan %.3f s, idle %.2f%%\n\n", rep.SimMakespan, 100*rep.IdleFraction)
	}

	// The same search planned at full paper scale (537,505 sequences, 8
	// Tesla C2050 + 8 CPU platform shape: 4 GPU + 4 CPU workers).
	plan, err := swdual.PaperPlatformPlan("UniProt", "standard", 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("paper-scale plan (8 workers): makespan %.2f s, %.2f GCUPS, idle %.2f%%\n",
		plan.Makespan, plan.GCUPS, 100*plan.IdleFraction)
	fmt.Println("paper reports 142.98 s / 136.06 GCUPS for this configuration (Table IV)")
}
