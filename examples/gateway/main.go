// Gateway: put the HTTP/JSON front door with admission control over a
// Searcher, query it like any HTTP client would, and drive it into
// overload to watch load shedding answer 429 with a Retry-After —
// while every admitted search returns the same hits a direct
// Searcher.Search produces.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"sync"

	"swdual"
)

func main() {
	db, err := swdual.GenerateDatabase("UniProt", 20000)
	if err != nil {
		log.Fatal(err)
	}
	queries, err := swdual.GenerateQueries("standard", 400)
	if err != nil {
		log.Fatal(err)
	}

	s, err := swdual.NewSearcher(db, swdual.Options{CPUs: 2, GPUs: 1, TopK: 3})
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()

	// One executing search, no queue: the second concurrent request is
	// shed, which is exactly what this example wants to show.
	gw, err := swdual.NewGateway(s, swdual.Options{
		GatewayCapacity: 1, GatewayQueue: -1, GatewayClientSlots: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer gw.Close()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go gw.Serve(l)
	base := "http://" + l.Addr().String()
	fmt.Printf("gateway serving %d sequences on %s\n\n", db.Len(), base)

	// A search over HTTP: queries as JSON, hits as JSON.
	id, residues := queries.Sequence(0)
	body, _ := json.Marshal(map[string]any{
		"queries": []map[string]string{{"id": id, "residues": residues}},
		"top_k":   3,
	})
	resp, err := http.Post(base+"/v1/search", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	var result struct {
		Results []struct {
			ID   string `json:"id"`
			Hits []struct {
				SeqID string `json:"seq_id"`
				Score int    `json:"score"`
			} `json:"hits"`
		} `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&result); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	for _, r := range result.Results {
		fmt.Printf("query %s:\n", r.ID)
		for _, h := range r.Hits {
			fmt.Printf("  %-24s score %5d\n", h.SeqID, h.Score)
		}
	}

	// Overload: eight concurrent requests against one execution slot.
	// Admitted ones complete; the rest are shed immediately with 429
	// and a Retry-After backoff hint instead of queueing without bound.
	fmt.Printf("\noffering 8 concurrent searches to capacity 1:\n")
	var wg sync.WaitGroup
	var mu sync.Mutex
	outcomes := map[string]int{}
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(base+"/v1/search", "application/json", bytes.NewReader(body))
			if err != nil {
				log.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			key := resp.Status
			if ra := resp.Header.Get("Retry-After"); ra != "" {
				key += " (Retry-After " + ra + "s)"
			}
			mu.Lock()
			outcomes[key]++
			mu.Unlock()
		}()
	}
	wg.Wait()
	for status, n := range outcomes {
		fmt.Printf("  %2d × %s\n", n, status)
	}

	c := gw.Counters()
	fmt.Printf("\ngateway counters: admitted %d, completed %d, shed %d (queue) + %d (client)\n",
		c.Admitted, c.Completed, c.ShedQueue, c.ShedClient)
}
