// cluster: the distributed master-slave mode of §IV over real TCP on
// localhost — one master, two CPU workers and two (simulated) GPU
// workers, each loading its own copy of the database, exchanging tasks
// and results through the binary wire protocol.
package main

import (
	"fmt"
	"log"
	"net"
	"sync"

	"swdual"
)

func main() {
	db, err := swdual.GenerateDatabase("Ensembl Dog Proteins", 500)
	if err != nil {
		log.Fatal(err)
	}
	queries, err := swdual.GenerateQueries("standard", 100)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("database: %d sequences; queries: %d\n", db.Len(), queries.Len())

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	addr := l.Addr().String()
	fmt.Printf("master listening on %s\n", addr)

	opt := swdual.Options{TopK: 3}
	var wg sync.WaitGroup
	for i, kind := range []string{"cpu", "cpu", "gpu", "gpu"} {
		wg.Add(1)
		go func(i int, kind string) {
			defer wg.Done()
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				log.Fatalf("worker %d: %v", i, err)
			}
			// Each worker loads its own database copy (paper §IV: workers
			// "acquire the same sequences" locally).
			if err := swdual.ConnectWorker(conn, db, kind, fmt.Sprintf("%s-worker-%d", kind, i), opt); err != nil {
				log.Fatalf("worker %d: %v", i, err)
			}
		}(i, kind)
	}

	rep, err := swdual.ServeMaster(l, db, queries, 4, opt)
	if err != nil {
		log.Fatal(err)
	}
	wg.Wait()
	fmt.Printf("cluster run finished in %v with workers %v\n", rep.Wall, rep.WorkerNames)
	for qi, res := range rep.Results[:5] {
		if len(res.Hits) > 0 {
			fmt.Printf("  query %2d: best hit %-18s score %d\n", qi, res.Hits[0].SeqID, res.Hits[0].Score)
		}
	}
	fmt.Printf("  ... (%d queries total, %d reassigned after failures)\n", len(rep.Results), rep.Reassigned)
}
