package swdual

import (
	"fmt"
	"net"

	"swdual/internal/bench"
	"swdual/internal/cluster"
	"swdual/internal/master"
	"swdual/internal/platform"
	"swdual/internal/sched"
	"swdual/internal/seq"
	"swdual/internal/synth"
)

// TaskPlan is one task of a schedule plan.
type TaskPlan struct {
	QueryIndex int
	QueryLen   int
	Kind       string // "CPU" or "GPU"
	PE         int
	Start      float64
	End        float64
}

// SchedulePlan is the outcome of planning a search on the calibrated
// paper-scale platform model without executing it.
type SchedulePlan struct {
	Algorithm    string
	Makespan     float64 // modeled seconds
	GCUPS        float64
	IdleFraction float64
	LowerBound   float64
	Tasks        []TaskPlan
	// Gantt is a text Gantt chart of the planned schedule (one row per
	// PE, task letters over time).
	Gantt string
}

// Plan runs only the scheduler over the calibrated platform model: it
// answers "how would this search be split and how long would it take on
// the paper's hardware" without computing alignments. Queries may be a
// generated set or any loaded database. A Searcher's Plan method does
// the same over its prepared database statistics.
func Plan(db, queries *Database, opt Options) (*SchedulePlan, error) {
	if db == nil || queries == nil {
		return nil, errNilSets
	}
	cpus, gpus := opt.workers()
	return planModel(setLengths(db.set), queryLengths(queries), cpus, gpus, opt.Policy)
}

// planModel is the shared scheduling-only path behind Plan and
// Searcher.Plan: model the database on the calibrated platform, run the
// selected dual-approximation variant, and render the plan.
func planModel(dbLengths, queryLens []int, cpus, gpus int, policy string) (*SchedulePlan, error) {
	p := platform.New(cpus, gpus)
	model := p.ModelDB("db", dbLengths)
	in := p.Instance(model, queryLens)
	var s *sched.Schedule
	var err error
	if policy == "dual-approx-dp" {
		s, err = sched.DualApproxDP(in)
	} else {
		s, err = sched.DualApprox(in)
	}
	if err != nil {
		return nil, err
	}
	plan := &SchedulePlan{
		Algorithm:    s.Algorithm,
		Makespan:     s.Makespan,
		GCUPS:        platform.GCUPS(platform.Cells(model, queryLens), s.Makespan),
		IdleFraction: s.IdleFraction(),
		LowerBound:   sched.LowerBound(in),
		Gantt:        s.Gantt(in, 96),
	}
	for _, pl := range s.Placements {
		plan.Tasks = append(plan.Tasks, TaskPlan{
			QueryIndex: pl.Task,
			QueryLen:   queryLens[pl.Task],
			Kind:       pl.Kind.String(),
			PE:         pl.PE,
			Start:      pl.Start,
			End:        pl.End,
		})
	}
	return plan, nil
}

// setLengths lists the sequence lengths of a set.
func setLengths(set *seq.Set) []int {
	lengths := make([]int, set.Len())
	for i := range lengths {
		lengths[i] = set.Seqs[i].Len()
	}
	return lengths
}

// queryLengths lists the sequence lengths of a query database.
func queryLengths(queries *Database) []int { return setLengths(queries.set) }

// PaperPlatformPlan plans one of the paper's experiments directly from a
// database preset name and query-set kind at full paper scale.
func PaperPlatformPlan(preset, querySet string, workers int) (*SchedulePlan, error) {
	spec, err := synth.DatabaseByName(preset)
	if err != nil {
		return nil, err
	}
	var qs synth.QuerySpec
	switch querySet {
	case "standard":
		qs = synth.StandardQueries()
	case "homogeneous":
		qs = synth.HomogeneousQueries()
	case "heterogeneous":
		qs = synth.HeterogeneousQueries()
	default:
		return nil, fmt.Errorf("swdual: unknown query set %q", querySet)
	}
	gpus, cpus := bench.WorkerSplit(workers)
	p := platform.New(cpus, gpus)
	model := p.ModelDB(spec.Name, spec.GenerateLengths())
	in := p.Instance(model, qs.Lengths)
	s, err := sched.DualApprox(in)
	if err != nil {
		return nil, err
	}
	return &SchedulePlan{
		Algorithm:    s.Algorithm,
		Makespan:     s.Makespan,
		GCUPS:        platform.GCUPS(platform.Cells(model, qs.Lengths), s.Makespan),
		IdleFraction: s.IdleFraction(),
		LowerBound:   sched.LowerBound(in),
		Gantt:        s.Gantt(in, 96),
	}, nil
}

// ServeMaster runs a cluster master on the listener: it waits for the
// given number of workers, distributes the queries and returns per-query
// results. Master and workers must load identical databases.
func ServeMaster(l net.Listener, db, queries *Database, workers int, opt Options) (*cluster.Report, error) {
	policy, err := opt.policy()
	if err != nil {
		return nil, err
	}
	return cluster.Serve(l, db.set, queries.set, cluster.MasterConfig{
		Workers: workers,
		Policy:  policy,
		TopK:    opt.TopK,
	})
}

// ConnectWorker connects a worker of the given kind ("cpu" or "gpu") to a
// cluster master and serves tasks until the master finishes.
func ConnectWorker(conn net.Conn, db *Database, kind, name string, opt Options) error {
	params, err := opt.params()
	if err != nil {
		return err
	}
	var w master.Worker
	switch kind {
	case "cpu":
		w = master.BuildWorkers(params, 1, 0, opt.TopK)[0]
	case "gpu":
		w = master.BuildWorkers(params, 0, 1, opt.TopK)[0]
	default:
		return fmt.Errorf("swdual: unknown worker kind %q", kind)
	}
	return cluster.RunWorker(conn, db.set, w, cluster.WorkerConfig{Name: name, TopK: opt.TopK})
}
