package swdual_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"testing"

	"swdual"
)

// TestGatewayServesSearcher exercises the public Gateway surface: an
// HTTP search through NewGateway returns the same hits as a direct
// Searcher.Search, /healthz and /v1/stats answer, and Close drains and
// turns new requests into 503 while the Searcher stays usable.
func TestGatewayServesSearcher(t *testing.T) {
	db, err := swdual.GenerateDatabase("UniProt", 20000)
	if err != nil {
		t.Fatal(err)
	}
	queries, err := swdual.GenerateQueries("standard", 400)
	if err != nil {
		t.Fatal(err)
	}
	s, err := swdual.NewSearcher(db, swdual.Options{CPUs: 1, GPUs: 1, TopK: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	gw, err := swdual.NewGateway(s, swdual.Options{GatewayCapacity: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- gw.Serve(l) }()
	base := "http://" + l.Addr().String()

	want, err := s.Search(context.Background(), queries, swdual.SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}

	type query struct {
		ID       string `json:"id"`
		Residues string `json:"residues"`
	}
	req := struct {
		Queries []query `json:"queries"`
	}{}
	for i := 0; i < queries.Len(); i++ {
		id, residues := queries.Sequence(i)
		req.Queries = append(req.Queries, query{ID: id, Residues: residues})
	}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/search", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var got struct {
		Results []struct {
			ID   string `json:"id"`
			Hits []struct {
				SeqIndex int    `json:"seq_index"`
				SeqID    string `json:"seq_id"`
				Score    int    `json:"score"`
			} `json:"hits"`
		} `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("search over HTTP: %d", resp.StatusCode)
	}
	if len(got.Results) != len(want.Results) {
		t.Fatalf("%d results over HTTP, %d direct", len(got.Results), len(want.Results))
	}
	for qi := range want.Results {
		if got.Results[qi].ID != want.Results[qi].QueryID {
			t.Fatalf("query %d answered as %q, want %q", qi, got.Results[qi].ID, want.Results[qi].QueryID)
		}
		if len(got.Results[qi].Hits) != len(want.Results[qi].Hits) {
			t.Fatalf("query %d: %d hits over HTTP, %d direct", qi, len(got.Results[qi].Hits), len(want.Results[qi].Hits))
		}
		for j, wh := range want.Results[qi].Hits {
			gh := got.Results[qi].Hits[j]
			if gh.SeqIndex != wh.SeqIndex || gh.SeqID != wh.SeqID || gh.Score != wh.Score {
				t.Fatalf("query %d hit %d differs over HTTP: got %+v, want %+v", qi, j, gh, wh)
			}
		}
	}

	resp, err = http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
	resp, err = http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st struct {
		Gateway swdual.GatewayCounters `json:"gateway"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Gateway.Completed != 1 {
		t.Fatalf("stats after one search: %+v", st.Gateway)
	}
	if c := gw.Counters(); c.Completed != 1 || c.Admitted != 1 {
		t.Fatalf("counters: %+v", c)
	}

	if err := gw.Close(); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(base+"/v1/search", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("search after Close: %d, want 503", resp.StatusCode)
	}
	// The Gateway never owned the Searcher: it still answers directly.
	if _, err := s.Search(context.Background(), queries, swdual.SearchOptions{}); err != nil {
		t.Fatalf("Searcher after Gateway.Close: %v", err)
	}
	l.Close()
	if err := <-serveDone; err != nil {
		t.Fatalf("Serve: %v", err)
	}
}
