// Command benchtables regenerates the paper's tables and figures from the
// calibrated model and, optionally, the functional validation run.
//
// Usage:
//
//	benchtables                 # all experiments
//	benchtables -exp table2     # one experiment
//	benchtables -list           # list experiment ids
//	benchtables -scale 500      # functional validation at database/500
package main

import (
	"flag"
	"fmt"
	"os"

	"swdual/internal/bench"
)

func main() {
	var (
		exp   = flag.String("exp", "", "experiment id (default: all)")
		list  = flag.Bool("list", false, "list experiment ids and exit")
		scale = flag.Int("scale", 2000, "database divisor for the functional validation run")
	)
	flag.Parse()
	if *list {
		for _, id := range bench.ExperimentIDs {
			fmt.Println(id)
		}
		return
	}
	r := bench.NewRunner(bench.Config{FunctionalScale: *scale})
	ids := bench.ExperimentIDs
	if *exp != "" {
		ids = []string{*exp}
	}
	for _, id := range ids {
		t, err := r.ByID(id)
		if t != nil {
			fmt.Println(t.Format())
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtables: %s: %v\n", id, err)
			os.Exit(1)
		}
	}
}
