// Command swdual searches a query set against a sequence database on a
// hybrid platform of CPU and simulated-GPU workers, using the paper's
// dual-approximation scheduler.
//
// Usage:
//
//	swdual -db db.fasta -query q.fasta -cpus 2 -gpus 2
//	swdual -db db.fasta -query q.fasta -pool cpu=2,striped=1,fine=1,gpu=1
//	swdual -db db.swdb -query q.fasta -policy self-scheduling -topk 5
//	swdual -db db.fasta -query q.fasta -plan        # schedule only
//	swdual -db db.fasta -serve :4015                # persistent engine
//	swdual -db db.fasta -serve :4015 -shards 4      # sharded scatter/gather
//	swdual -remote host:4015 -query q.fasta         # query a served engine
//	swdual -db db.fasta -gateway :8080              # HTTP/JSON front door
//
// The gateway serves POST /v1/search (JSON queries), GET /v1/stats,
// /healthz and /metrics, with bounded-queue admission control: past
// -gateway-capacity executing and -gateway-queue waiting requests,
// arrivals are shed immediately with 429 and a Retry-After estimated
// from live search latency. It can front any backend below — add
// -shards, -remote-shards or -replica-shards to put the same HTTP
// surface over a sharded or replicated cluster.
//
// Cluster serve distributes the shards across processes: each shard
// server holds the same database and serves one slice of it, and a
// coordinator scatters every query over the network, gathering hits
// byte-identical to a local search:
//
//	swdual -db db.fasta -shard-serve :4016 -shard-index 0 -shard-count 2
//	swdual -db db.fasta -shard-serve :4017 -shard-index 1 -shard-count 2
//	swdual -db db.fasta -query q.fasta -remote-shards host:4016,host:4017
//
// With -replica-shards each range is held by several interchangeable
// shard servers (semicolons separate ranges, commas separate replicas):
// the coordinator fails over on lost connections, re-dials dead
// replicas in the background, and hedges slow searches on a sibling, so
// a search survives any one replica dying per range:
//
//	swdual -db db.fasta -query q.fasta \
//	    -replica-shards 'a:4016,b:4016;a:4017,b:4017' -dial-timeout 5s
//
// Serve mode loads the database once, keeps the worker pool alive, and
// answers every client over the wire protocol; queries from concurrent
// clients coalesce into shared scheduling waves.
//
// A -db path ending in .swdb is memory-mapped read-only rather than
// parsed: startup costs only the header and index validation, residues
// stay off the Go heap, and a fleet of shard or replica servers mapping
// the same file on one host holds one physical copy of the corpus in
// the page cache between them.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"strings"

	"swdual"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("swdual: ")
	var (
		dbPath   = flag.String("db", "", "database file (.fasta/.fa parsed into memory; .swdb memory-mapped read-only — zero-copy, and every process mapping the same file on a host shares one physical copy)")
		qPath    = flag.String("query", "", "query file (.fasta/.fa or .swdb binary)")
		cpus     = flag.Int("cpus", 1, "CPU workers")
		gpus     = flag.Int("gpus", 1, "GPU workers (simulated Tesla C2050)")
		pool     = flag.String("pool", "", "heterogeneous worker pool spec, e.g. cpu=2,striped=1,fine=1,gpu=1 (overrides -cpus/-gpus)")
		topk     = flag.Int("topk", 10, "hits reported per query")
		matrix   = flag.String("matrix", "BLOSUM62", "substitution matrix")
		gapS     = flag.Int("gapstart", 10, "gap start penalty Gs")
		gapE     = flag.Int("gapextend", 2, "gap extend penalty Ge")
		policy   = flag.String("policy", "dual-approx", "allocation policy: dual-approx | dual-approx-dp | self-scheduling | round-robin")
		pipeline = flag.String("pipeline", "auto", "wave pipelining: auto (on for multi-core hosts) | on (plan wave N+1 while wave N executes) | off (strict full-wave fence, the paper's idle-platform mode)")
		planOnly = flag.Bool("plan", false, "print the modeled schedule instead of searching")
		evalues  = flag.Bool("evalue", false, "report bit scores and E-values next to each hit")
		serve    = flag.String("serve", "", "serve the database persistently on this address instead of searching")
		remote   = flag.String("remote", "", "send the queries to a serve-mode engine at this address")
		shards   = flag.Int("shards", 1, "split the database into this many shards, each with its own worker pool")
		split    = flag.String("shard-split", "contiguous", "shard boundary strategy: contiguous | balanced")
		cache    = flag.Bool("cache", false, "cache search results: repeated queries are answered without a scheduling wave and concurrent identical queries collapse into one (hits stay byte-identical)")
		cacheSz  = flag.Int("cache-size", 0, "max cached search fingerprints with -cache (0 = default 1024)")
		degraded = flag.Bool("degraded", false, "sharded coordinators answer partial when every replica of a range is down, reporting coverage, instead of failing the search (HTTP gateways answer 206)")

		gatewayAddr = flag.String("gateway", "", "serve the database over HTTP/JSON on this address, with admission control and load shedding (POST /v1/search, GET /v1/stats, /healthz, /metrics)")
		gwCapacity  = flag.Int("gateway-capacity", 0, "concurrently executing gateway searches (0 = default 2×GOMAXPROCS)")
		gwQueue     = flag.Int("gateway-queue", 0, "admitted gateway requests that may wait for a slot; past capacity+queue arrivals are shed with 429 (0 = default 4×capacity, negative = no queue)")
		gwClients   = flag.Int("gateway-client-slots", 0, "slots one client (X-API-Key, else remote address) may hold at once (0 = default (capacity+queue)/4)")
		gwTimeout   = flag.Duration("gateway-timeout", 0, "search deadline for gateway requests that carry none of their own (0 = none)")
		gwMaxBody   = flag.Int64("gateway-max-body", 0, "max gateway request body in bytes (0 = default 8 MiB)")

		shardServe = flag.String("shard-serve", "", "serve one shard of the database on this address (cluster serve)")
		shardIndex = flag.Int("shard-index", 0, "which shard -shard-serve exposes")
		shardCount = flag.Int("shard-count", 1, "how many shards the database is split into for -shard-serve")
		remShards  = flag.String("remote-shards", "", "comma-separated shard server addresses; search as the coordinator, scattering over them")
		repShards  = flag.String("replica-shards", "", "replicated shard servers: semicolons separate shard ranges, commas separate replicas of one range, e.g. 'a:4016,b:4016;a:4017,b:4017' (each replica runs -shard-serve for its range; overrides -remote-shards)")
		dialTO     = flag.Duration("dial-timeout", 0, "bound on dialing one shard or replica server, TCP connect plus handshake (0 = default 10s)")
	)
	flag.Parse()

	opt := swdual.Options{
		Matrix:     *matrix,
		GapStart:   *gapS,
		GapExtend:  *gapE,
		CPUs:       *cpus,
		GPUs:       *gpus,
		Pool:       *pool,
		TopK:       *topk,
		Policy:     *policy,
		Pipeline:   *pipeline,
		Shards:     *shards,
		ShardSplit: *split,
		Cache:      *cache,
		CacheSize:  *cacheSz,
		Degraded:   *degraded,
	}
	opt.GatewayCapacity = *gwCapacity
	opt.GatewayQueue = *gwQueue
	opt.GatewayClientSlots = *gwClients
	opt.GatewayTimeout = *gwTimeout
	opt.GatewayMaxBodyBytes = *gwMaxBody
	if *remShards != "" {
		opt.RemoteShards = strings.Split(*remShards, ",")
	}
	if *repShards != "" {
		for _, group := range strings.Split(*repShards, ";") {
			opt.ReplicaShards = append(opt.ReplicaShards, strings.Split(group, ","))
		}
	}
	opt.DialTimeout = *dialTO

	if *remote != "" {
		if *qPath == "" {
			log.Fatal("-remote requires -query")
		}
		if *planOnly || *evalues {
			log.Fatal("-plan and -evalue run locally and do not apply to -remote")
		}
		queries, err := load(*qPath)
		if err != nil {
			log.Fatalf("loading queries: %v", err)
		}
		rep, err := swdual.QueryServer(*remote, queries, 0)
		if err != nil {
			log.Fatal(err)
		}
		printResults(rep, queries, nil)
		fmt.Printf("\n%d queries answered by %s\n", len(rep.Results), *remote)
		return
	}

	if *dbPath == "" {
		log.Fatal("-db is required")
	}
	// The database goes through OpenDatabase so a .swdb file is
	// memory-mapped instead of copied: serve fleets on one host share a
	// single physical copy through the page cache. Queries stay on the
	// load() heap path — they are small and short-lived.
	db, err := swdual.OpenDatabase(*dbPath)
	if err != nil {
		log.Fatalf("loading database: %v", err)
	}
	defer db.Close()

	workersDesc := fmt.Sprintf("%d CPU + %d GPU workers", *cpus, *gpus)
	if *pool != "" {
		workersDesc = fmt.Sprintf("worker pool %s", *pool)
	}

	if *shardServe != "" {
		l, err := net.Listen("tcp", *shardServe)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("serving shard %d/%d of %d sequences (split %s) on %s with %s",
			*shardIndex, *shardCount, db.Len(), *split, l.Addr(), workersDesc)
		if err := swdual.ServeShard(l, db, *shardIndex, *shardCount, opt); err != nil {
			log.Fatal(err)
		}
		return
	}

	if *serve != "" || *gatewayAddr != "" {
		s, err := swdual.NewSearcher(db, opt)
		if err != nil {
			log.Fatal(err)
		}
		defer s.Close()
		errc := make(chan error, 2)
		if *gatewayAddr != "" {
			gw, err := swdual.NewGateway(s, opt)
			if err != nil {
				log.Fatal(err)
			}
			defer gw.Close()
			gl, err := net.Listen("tcp", *gatewayAddr)
			if err != nil {
				log.Fatal(err)
			}
			log.Printf("gateway: %d sequences (checksum %08x) over HTTP on %s with %s per shard across %d shard(s)",
				db.Len(), s.Checksum(), gl.Addr(), workersDesc, s.Shards())
			go func() { errc <- gw.Serve(gl) }()
		}
		if *serve != "" {
			l, err := net.Listen("tcp", *serve)
			if err != nil {
				log.Fatal(err)
			}
			log.Printf("serving %d sequences (%d residues, checksum %08x) on %s with %s per shard across %d shard(s)",
				db.Len(), db.TotalResidues(), s.Checksum(), l.Addr(), workersDesc, s.Shards())
			go func() { errc <- s.Serve(l) }()
		}
		if err := <-errc; err != nil {
			log.Fatal(err)
		}
		return
	}

	if *qPath == "" {
		log.Fatal("both -db and -query are required")
	}
	queries, err := load(*qPath)
	if err != nil {
		log.Fatalf("loading queries: %v", err)
	}
	if *planOnly {
		plan, err := swdual.Plan(db, queries, opt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("algorithm: %s\nmodeled makespan: %.2f s (lower bound %.2f s)\nmodeled GCUPS: %.2f\nidle fraction: %.2f%%\n",
			plan.Algorithm, plan.Makespan, plan.LowerBound, plan.GCUPS, 100*plan.IdleFraction)
		for _, tp := range plan.Tasks {
			fmt.Printf("  q%02d (len %5d) -> %s%d  [%8.2f, %8.2f)\n",
				tp.QueryIndex, tp.QueryLen, tp.Kind, tp.PE, tp.Start, tp.End)
		}
		return
	}

	s, err := swdual.NewSearcher(db, opt)
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()
	rep, err := s.Search(context.Background(), queries, swdual.SearchOptions{})
	if err != nil {
		log.Fatal(err)
	}
	var stats *swdual.ScoreStats
	if *evalues {
		stats, err = swdual.NewScoreStats(opt)
		if err != nil {
			log.Fatalf("statistics unavailable: %v", err)
		}
	}
	printResults(rep, queries, func(score, qlen int) string {
		if stats == nil {
			return ""
		}
		return fmt.Sprintf("  bits %7.1f  E %.3g", stats.BitScore(score), stats.EValue(score, qlen, db.TotalResidues()))
	})
	fmt.Printf("\n%d queries, %d cells, wall %v, %.3f GCUPS, policy %v\n",
		len(rep.Results), rep.Cells, rep.Wall, rep.GCUPS, rep.Policy)
	if rep.Schedule != nil {
		fmt.Printf("modeled makespan %.2f s, idle %.2f%%\n", rep.SimMakespan, 100*rep.IdleFraction)
	}
}

// printResults renders per-query hits; extra (optional) appends
// statistics columns computed from (score, query length).
func printResults(rep *swdual.Report, queries *swdual.Database, extra func(score, qlen int) string) {
	for qi, r := range rep.Results {
		if r.Worker != "" {
			fmt.Printf("query %s (worker %s):\n", r.QueryID, r.Worker)
		} else {
			fmt.Printf("query %s:\n", r.QueryID)
		}
		qlen := len(queries.Set().Seqs[qi].Residues)
		for _, h := range r.Hits {
			suffix := ""
			if extra != nil {
				suffix = extra(h.Score, qlen)
			}
			fmt.Printf("  %-24s score %5d%s\n", h.SeqID, h.Score, suffix)
		}
	}
}

func load(path string) (*swdual.Database, error) {
	if strings.HasSuffix(path, ".swdb") {
		return swdual.LoadBinary(path)
	}
	return swdual.LoadFASTA(path)
}
