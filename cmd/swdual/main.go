// Command swdual searches a query set against a sequence database on a
// hybrid platform of CPU and simulated-GPU workers, using the paper's
// dual-approximation scheduler.
//
// Usage:
//
//	swdual -db db.fasta -query q.fasta -cpus 2 -gpus 2
//	swdual -db db.swdb -query q.fasta -policy self-scheduling -topk 5
//	swdual -db db.fasta -query q.fasta -plan        # schedule only
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"swdual"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("swdual: ")
	var (
		dbPath   = flag.String("db", "", "database file (.fasta/.fa or .swdb binary)")
		qPath    = flag.String("query", "", "query file (.fasta/.fa or .swdb binary)")
		cpus     = flag.Int("cpus", 1, "CPU workers")
		gpus     = flag.Int("gpus", 1, "GPU workers (simulated Tesla C2050)")
		topk     = flag.Int("topk", 10, "hits reported per query")
		matrix   = flag.String("matrix", "BLOSUM62", "substitution matrix")
		gapS     = flag.Int("gapstart", 10, "gap start penalty Gs")
		gapE     = flag.Int("gapextend", 2, "gap extend penalty Ge")
		policy   = flag.String("policy", "dual-approx", "allocation policy: dual-approx | dual-approx-dp | self-scheduling | round-robin")
		planOnly = flag.Bool("plan", false, "print the modeled schedule instead of searching")
		evalues  = flag.Bool("evalue", false, "report bit scores and E-values next to each hit")
	)
	flag.Parse()
	if *dbPath == "" || *qPath == "" {
		log.Fatal("both -db and -query are required")
	}
	db, err := load(*dbPath)
	if err != nil {
		log.Fatalf("loading database: %v", err)
	}
	queries, err := load(*qPath)
	if err != nil {
		log.Fatalf("loading queries: %v", err)
	}
	opt := swdual.Options{
		Matrix:    *matrix,
		GapStart:  *gapS,
		GapExtend: *gapE,
		CPUs:      *cpus,
		GPUs:      *gpus,
		TopK:      *topk,
		Policy:    *policy,
	}
	if *planOnly {
		plan, err := swdual.Plan(db, queries, opt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("algorithm: %s\nmodeled makespan: %.2f s (lower bound %.2f s)\nmodeled GCUPS: %.2f\nidle fraction: %.2f%%\n",
			plan.Algorithm, plan.Makespan, plan.LowerBound, plan.GCUPS, 100*plan.IdleFraction)
		for _, tp := range plan.Tasks {
			fmt.Printf("  q%02d (len %5d) -> %s%d  [%8.2f, %8.2f)\n",
				tp.QueryIndex, tp.QueryLen, tp.Kind, tp.PE, tp.Start, tp.End)
		}
		return
	}
	rep, err := swdual.Search(db, queries, opt)
	if err != nil {
		log.Fatal(err)
	}
	var stats *swdual.ScoreStats
	if *evalues {
		stats, err = swdual.NewScoreStats(opt)
		if err != nil {
			log.Fatalf("statistics unavailable: %v", err)
		}
	}
	dbRes := db.TotalResidues()
	for qi, r := range rep.Results {
		fmt.Printf("query %s (worker %s):\n", r.QueryID, r.Worker)
		qlen := len(queries.Set().Seqs[qi].Residues)
		for _, h := range r.Hits {
			if stats != nil {
				fmt.Printf("  %-24s score %5d  bits %7.1f  E %.3g\n",
					h.SeqID, h.Score, stats.BitScore(h.Score), stats.EValue(h.Score, qlen, dbRes))
				continue
			}
			fmt.Printf("  %-24s score %d\n", h.SeqID, h.Score)
		}
	}
	fmt.Printf("\n%d queries, %d cells, wall %v, %.3f GCUPS, policy %v\n",
		len(rep.Results), rep.Cells, rep.Wall, rep.GCUPS, rep.Policy)
	if rep.Schedule != nil {
		fmt.Printf("modeled makespan %.2f s, idle %.2f%%\n", rep.SimMakespan, 100*rep.IdleFraction)
	}
}

func load(path string) (*swdual.Database, error) {
	if strings.HasSuffix(path, ".swdb") {
		return swdual.LoadBinary(path)
	}
	return swdual.LoadFASTA(path)
}
