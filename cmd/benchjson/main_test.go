package main

import "testing"

func TestParseLineSplitsProcs(t *testing.T) {
	r, ok := parseLine("BenchmarkCachedSearch/cache=on-8         \t  272059\t      8339 ns/op\t   12608 B/op\t      47 allocs/op")
	if !ok {
		t.Fatal("result line rejected")
	}
	if r.Name != "BenchmarkCachedSearch/cache=on" || r.Procs != 8 {
		t.Fatalf("name %q procs %d, want suffix split off", r.Name, r.Procs)
	}
	if r.Runs != 272059 || r.NsPerOp != 8339 {
		t.Fatalf("runs/ns %d/%v", r.Runs, r.NsPerOp)
	}
	if r.BytesPerOp == nil || *r.BytesPerOp != 12608 || r.AllocsPerOp == nil || *r.AllocsPerOp != 47 {
		t.Fatalf("benchmem fields lost: %+v", r)
	}
}

func TestParseLineKeepsDigitBearingSubBenchNames(t *testing.T) {
	// The sub-benchmark segment ends in digits but carries no -N suffix:
	// the digits belong to the name.
	r, ok := parseLine("BenchmarkShardedSearch/shards=8 100 5 ns/op")
	if !ok {
		t.Fatal("result line rejected")
	}
	if r.Name != "BenchmarkShardedSearch/shards=8" || r.Procs != 0 {
		t.Fatalf("name %q procs %d: shard count mistaken for GOMAXPROCS", r.Name, r.Procs)
	}
}

func TestParseLineCustomMetrics(t *testing.T) {
	r, ok := parseLine("BenchmarkEngineStriped-4 10 100 ns/op 3.14 GCUPS")
	if !ok {
		t.Fatal("result line rejected")
	}
	if r.Procs != 4 || r.Metrics["GCUPS"] != 3.14 {
		t.Fatalf("custom metric lost: %+v", r)
	}
}

func TestParseLineRejectsNonResults(t *testing.T) {
	for _, line := range []string{
		"goos: linux",
		"BenchmarkBroken-8",
		"BenchmarkFail-8 --- FAIL: BenchmarkFail",
		"PASS",
	} {
		if _, ok := parseLine(line); ok {
			t.Fatalf("accepted non-result line %q", line)
		}
	}
}
