// Command benchjson converts `go test -bench` output read on stdin into
// a JSON array, one object per benchmark result line. CI uses it to
// write BENCH_N.json snapshots (ns/op, allocs/op, custom metrics) so the
// performance trajectory of the engine is recorded per PR instead of
// living only in log scrollback.
//
//	go test -run=NONE -bench . -benchmem ./... | benchjson > BENCH.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line, normalized.
type Result struct {
	Name    string  `json:"name"`
	Runs    int64   `json:"runs"`
	NsPerOp float64 `json:"ns_per_op,omitempty"`
	// BytesPerOp and AllocsPerOp are present with -benchmem.
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	// Metrics holds every other unit on the line (MB/s, GCUPS, model_s/…).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	var results []Result
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Name N value unit [value unit]... — anything shorter is a
		// header or a failure line.
		if len(fields) < 4 {
			continue
		}
		runs, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		r := Result{Name: fields[0], Runs: runs}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				r.NsPerOp = v
			case "B/op":
				b := v
				r.BytesPerOp = &b
			case "allocs/op":
				a := v
				r.AllocsPerOp = &a
			default:
				if r.Metrics == nil {
					r.Metrics = map[string]float64{}
				}
				r.Metrics[unit] = v
			}
		}
		results = append(results, r)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
