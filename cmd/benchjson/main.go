// Command benchjson converts `go test -bench` output read on stdin into
// a JSON array, one object per benchmark result line. CI uses it to
// write BENCH_N.json snapshots (ns/op, allocs/op, custom metrics) so the
// performance trajectory of the engine is recorded per PR instead of
// living only in log scrollback.
//
//	go test -run=NONE -bench . -benchmem ./... | benchjson > BENCH.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line, normalized.
type Result struct {
	Name string `json:"name"`
	// Procs is the GOMAXPROCS suffix go test appends to the name
	// (BenchmarkFoo-8 → Name "BenchmarkFoo", Procs 8); 0 when absent.
	Procs int64 `json:"procs,omitempty"`
	Runs  int64 `json:"runs"`
	// NsPerOp is the wall time per iteration.
	NsPerOp float64 `json:"ns_per_op,omitempty"`
	// BytesPerOp and AllocsPerOp are present with -benchmem.
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	// Metrics holds every other unit on the line (MB/s, GCUPS, model_s/…).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// splitProcs separates the trailing -N GOMAXPROCS suffix go test
// appends to benchmark names from the name proper. Sub-benchmark path
// segments can themselves end in digits (…/shards=8), so only a suffix
// after the LAST dash — all digits, non-empty — counts.
func splitProcs(name string) (string, int64) {
	i := strings.LastIndexByte(name, '-')
	if i < 0 || i == len(name)-1 {
		return name, 0
	}
	procs, err := strconv.ParseInt(name[i+1:], 10, 64)
	if err != nil || procs <= 0 {
		return name, 0
	}
	return name[:i], procs
}

// parseLine turns one `go test -bench` result line into a Result;
// ok is false for headers, failures and anything else non-result.
func parseLine(line string) (Result, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return Result{}, false
	}
	fields := strings.Fields(line)
	// Name N value unit [value unit]... — anything shorter is a
	// header or a failure line.
	if len(fields) < 4 {
		return Result{}, false
	}
	runs, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	name, procs := splitProcs(fields[0])
	r := Result{Name: name, Procs: procs, Runs: runs}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			b := v
			r.BytesPerOp = &b
		case "allocs/op":
			a := v
			r.AllocsPerOp = &a
		default:
			if r.Metrics == nil {
				r.Metrics = map[string]float64{}
			}
			r.Metrics[unit] = v
		}
	}
	return r, true
}

func main() {
	var results []Result
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if r, ok := parseLine(sc.Text()); ok {
			results = append(results, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
