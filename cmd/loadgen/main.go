// Command loadgen drives offered-load sweeps against a swdual gateway
// and reports goodput and latency percentiles as `go test -bench`-style
// result lines, so a sweep folds into the same BENCH_N.json trajectory
// as the engine benchmarks:
//
//	loadgen -offered 1,2,4,8 -requests 40 | benchjson > bench.json
//
// With -url it sweeps an already-running gateway; without, it starts an
// in-process Searcher and Gateway over a synthetic database (-preset,
// -scale, -capacity, -queue) and sweeps that over loopback HTTP, so one
// command produces the whole goodput-vs-offered-load curve.
//
// Each offered-load level runs `offered` closed-loop clients sharing
// -requests attempts. Completions (200 and 206) count toward goodput;
// shed answers (429) are the gateway doing its job and are reported as
// a ratio, never as an error. Partial answers (206 — a degraded
// coordinator riding over dark ranges) are additionally reported as
// partial_ratio, so a chaos sweep shows how much of its goodput was
// degraded.
//
// Two plumbing modes serve shell-driven end-to-end tests:
//
//	loadgen -emit-request q.fasta        # print the /v1/search JSON body
//	loadgen -format-response < resp.json # render a response as CLI text
//
// -format-response prints the same "query <id>:" / "<seq> score <n>"
// lines the swdual CLI prints (minus worker attribution), so a gateway
// answer can be diffed against a local search.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"swdual"
	"swdual/internal/stats"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("loadgen: ")
	var (
		url      = flag.String("url", "", "gateway base URL to sweep (empty = start an in-process gateway)")
		offered  = flag.String("offered", "1,2,4,8", "comma-separated offered-load levels (concurrent closed-loop clients)")
		requests = flag.Int("requests", 40, "request attempts per offered-load level")
		topK     = flag.Int("topk", 5, "hits requested per query")
		qPath    = flag.String("query", "", "query FASTA for the sweep (empty = synthetic)")
		preset   = flag.String("preset", "UniProt", "synthetic database preset for the in-process gateway")
		scale    = flag.Int("scale", 20000, "synthetic database scale divisor")
		qscale   = flag.Int("qscale", 400, "synthetic query scale divisor")
		cpus     = flag.Int("cpus", 1, "CPU workers of the in-process gateway")
		gpus     = flag.Int("gpus", 1, "GPU workers of the in-process gateway")
		capacity = flag.Int("capacity", 2, "gateway capacity of the in-process gateway")
		queue    = flag.Int("queue", 2, "gateway queue of the in-process gateway (negative = none)")

		emitRequest = flag.String("emit-request", "", "print the /v1/search JSON body for this query FASTA and exit")
		formatResp  = flag.Bool("format-response", false, "read a /v1/search JSON response on stdin, print CLI-style text, and exit")
	)
	flag.Parse()

	if *formatResp {
		if err := formatResponse(os.Stdin, os.Stdout); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *emitRequest != "" {
		body, err := requestBody(*emitRequest, *topK)
		if err != nil {
			log.Fatal(err)
		}
		os.Stdout.Write(body)
		return
	}

	var queries *swdual.Database
	var err error
	if *qPath != "" {
		queries, err = swdual.LoadFASTA(*qPath)
	} else {
		queries, err = swdual.GenerateQueries("standard", *qscale)
	}
	if err != nil {
		log.Fatal(err)
	}
	body, err := bodyFor(queries, *topK)
	if err != nil {
		log.Fatal(err)
	}

	base := *url
	if base == "" {
		db, err := swdual.GenerateDatabase(*preset, *scale)
		if err != nil {
			log.Fatal(err)
		}
		s, err := swdual.NewSearcher(db, swdual.Options{CPUs: *cpus, GPUs: *gpus, TopK: *topK})
		if err != nil {
			log.Fatal(err)
		}
		defer s.Close()
		gw, err := swdual.NewGateway(s, swdual.Options{
			GatewayCapacity: *capacity, GatewayQueue: *queue,
			GatewayClientSlots: *capacity + max(*queue, 0), // the sweep is one "client"
		})
		if err != nil {
			log.Fatal(err)
		}
		defer gw.Close()
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		defer l.Close()
		go gw.Serve(l)
		base = "http://" + l.Addr().String()
		fmt.Fprintf(os.Stderr, "in-process gateway on %s: %d sequences, capacity %d, queue %d\n",
			base, db.Len(), *capacity, *queue)
	}

	levels, err := parseLevels(*offered)
	if err != nil {
		log.Fatal(err)
	}
	// Warm the path once so connection setup and planner calibration do
	// not land in the first level's percentiles.
	if _, _, err := post(base, body); err != nil {
		log.Fatalf("warmup request: %v", err)
	}
	for _, level := range levels {
		res := sweep(base, body, level, *requests)
		// One go-bench-format line per level; benchjson picks up every
		// "<value> <unit>" pair as a metric.
		fmt.Printf("BenchmarkGatewayLoad/offered=%d \t%8d\t%12.0f ns/op\t%8.2f goodput_rps\t%8.2f p50_ms\t%8.2f p99_ms\t%6.3f shed_ratio\t%6.3f partial_ratio\n",
			level, res.completed, res.meanNS, res.goodputRPS, res.p50ms, res.p99ms, res.shedRatio, res.partialRatio)
	}
}

// sweepResult aggregates one offered-load level.
type sweepResult struct {
	completed    int
	meanNS       float64
	goodputRPS   float64
	p50ms        float64
	p99ms        float64
	shedRatio    float64
	partialRatio float64
}

// sweep fires `attempts` requests from `level` closed-loop clients and
// folds the outcomes.
func sweep(base string, body []byte, level, attempts int) sweepResult {
	var (
		mu        sync.Mutex
		latencies []float64
		shed      int
		partial   int
	)
	work := make(chan struct{}, attempts)
	for i := 0; i < attempts; i++ {
		work <- struct{}{}
	}
	close(work)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < level; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range work {
				t0 := time.Now()
				code, _, err := post(base, body)
				if err != nil {
					log.Fatalf("request: %v", err)
				}
				mu.Lock()
				switch code {
				case http.StatusOK:
					latencies = append(latencies, time.Since(t0).Seconds())
				case http.StatusPartialContent:
					// A degraded answer is still goodput — the client got
					// hits — but it is counted separately so the sweep
					// shows the partial share.
					latencies = append(latencies, time.Since(t0).Seconds())
					partial++
				case http.StatusTooManyRequests:
					shed++
				default:
					log.Fatalf("request answered %d", code)
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start).Seconds()
	res := sweepResult{
		completed:    len(latencies),
		shedRatio:    float64(shed) / float64(attempts),
		partialRatio: float64(partial) / float64(attempts),
	}
	if wall > 0 {
		res.goodputRPS = float64(len(latencies)) / wall
	}
	if len(latencies) > 0 {
		var sum float64
		for _, l := range latencies {
			sum += l
		}
		res.meanNS = sum / float64(len(latencies)) * 1e9
		res.p50ms = stats.Percentile(latencies, 50) * 1e3
		res.p99ms = stats.Percentile(latencies, 99) * 1e3
	}
	return res
}

func post(base string, body []byte) (int, []byte, error) {
	resp, err := http.Post(base+"/v1/search", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, raw, nil
}

func parseLevels(spec string) ([]int, error) {
	var levels []int
	for _, f := range strings.Split(spec, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad offered level %q", f)
		}
		levels = append(levels, n)
	}
	return levels, nil
}

// requestBody renders the /v1/search JSON body for a query FASTA file.
func requestBody(path string, topK int) ([]byte, error) {
	queries, err := swdual.LoadFASTA(path)
	if err != nil {
		return nil, err
	}
	return bodyFor(queries, topK)
}

func bodyFor(queries *swdual.Database, topK int) ([]byte, error) {
	type query struct {
		ID       string `json:"id"`
		Residues string `json:"residues"`
	}
	req := struct {
		Queries []query `json:"queries"`
		TopK    int     `json:"top_k,omitempty"`
	}{TopK: topK}
	for i := 0; i < queries.Len(); i++ {
		id, residues := queries.Sequence(i)
		req.Queries = append(req.Queries, query{ID: id, Residues: residues})
	}
	return json.Marshal(req)
}

// formatResponse renders a /v1/search JSON response in the swdual CLI's
// text shape (minus worker attribution), so gateway answers diff
// cleanly against local searches.
func formatResponse(r io.Reader, w io.Writer) error {
	var resp struct {
		Results []struct {
			ID   string `json:"id"`
			Hits []struct {
				SeqID string `json:"seq_id"`
				Score int    `json:"score"`
			} `json:"hits"`
		} `json:"results"`
	}
	if err := json.NewDecoder(r).Decode(&resp); err != nil {
		return fmt.Errorf("decoding response: %w", err)
	}
	if len(resp.Results) == 0 {
		return fmt.Errorf("response has no results")
	}
	for _, q := range resp.Results {
		fmt.Fprintf(w, "query %s:\n", q.ID)
		for _, h := range q.Hits {
			fmt.Fprintf(w, "  %-24s score %5d\n", h.SeqID, h.Score)
		}
	}
	return nil
}
