// Command dbconvert converts between FASTA and the binary sequence
// database format of §IV (random-access index + known sizes).
//
// Usage:
//
//	dbconvert -in db.fasta -out db.swdb
//	dbconvert -in db.swdb -out db.fasta
//	dbconvert -in db.swdb -verify        # full index + data CRC check
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"swdual"
	"swdual/internal/seqdb"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dbconvert: ")
	var (
		in     = flag.String("in", "", "input file (.fasta or .swdb)")
		out    = flag.String("out", "", "output file (.fasta or .swdb)")
		verify = flag.Bool("verify", false, "verify a .swdb file's index integrity and data checksum, then exit")
	)
	flag.Parse()
	if *in == "" {
		log.Fatal("-in is required")
	}
	if *verify {
		// Open maps the file and already refuses any header or index
		// entry that doesn't fit the real file size; Verify then rescans
		// every residue byte against the header CRC.
		m, err := seqdb.Open(*in)
		if err != nil {
			log.Fatal(err)
		}
		defer m.Close()
		if err := m.Verify(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: index OK, data CRC OK (%d sequences, %d residues)\n", *in, m.Count(), m.TotalResidues())
		return
	}
	if *out == "" {
		log.Fatal("-out is required")
	}
	var (
		db  *swdual.Database
		err error
	)
	if strings.HasSuffix(*in, ".swdb") {
		db, err = swdual.LoadBinary(*in)
	} else {
		db, err = swdual.LoadFASTA(*in)
	}
	if err != nil {
		log.Fatal(err)
	}
	if strings.HasSuffix(*out, ".swdb") {
		err = db.SaveBinary(*out)
	} else {
		err = db.SaveFASTA(*out)
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("converted %d sequences (%d residues) %s -> %s\n", db.Len(), db.TotalResidues(), *in, *out)
}
