// Command dbgen generates the synthetic database presets and query sets
// used by the paper's experiments (Table III), writing FASTA or the
// binary format of package seqdb.
//
// Usage:
//
//	dbgen -preset UniProt -scale 2000 -out uniprot.swdb
//	dbgen -queries standard -out queries.fasta
//	dbgen -list
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"swdual"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dbgen: ")
	var (
		preset  = flag.String("preset", "", "database preset name (see -list)")
		queries = flag.String("queries", "", "query set: standard | homogeneous | heterogeneous")
		scale   = flag.Int("scale", 1, "divide the preset size by this factor")
		out     = flag.String("out", "", "output file (.fasta or .swdb)")
		list    = flag.Bool("list", false, "list presets and exit")
	)
	flag.Parse()
	if *list {
		for _, name := range []string{"Ensembl Dog Proteins", "Ensembl Rat Proteins", "RefSeq Human Proteins", "RefSeq Mouse Proteins", "UniProt"} {
			fmt.Println(name)
		}
		return
	}
	if (*preset == "") == (*queries == "") {
		log.Fatal("exactly one of -preset or -queries is required")
	}
	if *out == "" {
		log.Fatal("-out is required")
	}
	var (
		db  *swdual.Database
		err error
	)
	if *preset != "" {
		db, err = swdual.GenerateDatabase(*preset, *scale)
	} else {
		db, err = swdual.GenerateQueries(*queries, *scale)
	}
	if err != nil {
		log.Fatal(err)
	}
	if strings.HasSuffix(*out, ".swdb") {
		err = db.SaveBinary(*out)
	} else {
		err = db.SaveFASTA(*out)
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %d sequences (%d residues) to %s\n", db.Len(), db.TotalResidues(), *out)
}
