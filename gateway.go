package swdual

import (
	"net"
	"net/http"

	"swdual/internal/gateway"
)

// Gateway is the HTTP/JSON front door over a Searcher, with admission
// control and load shedding: up to Options.GatewayCapacity searches
// execute concurrently, Options.GatewayQueue more may wait, and past
// that requests are rejected early with 429 and a Retry-After computed
// from the live search-latency estimate. A per-client slot bound
// (X-API-Key header, else remote address) keeps one client from
// occupying the whole queue. Client deadlines — a Request-Timeout
// header or the timeout_ms body field — propagate into the search
// context, so abandoned work is never planned into a scheduling wave.
//
// Endpoints:
//
//	POST /v1/search   search the database (JSON body)
//	GET  /v1/stats    gateway counters + engine stats as JSON
//	GET  /healthz     200 while serving, 503 once Close began
//	GET  /metrics     Prometheus text format
//
// The Gateway serves whatever backend the Searcher was built over —
// in-process, sharded, or a replicated cluster coordinator — and hits
// stay byte-identical to direct Searcher.Search calls.
type Gateway struct {
	inner *gateway.Gateway
	s     *Searcher
}

// GatewayCounters is a snapshot of a Gateway's admission and outcome
// accounting.
type GatewayCounters = gateway.Counters

// NewGateway wraps s in the HTTP front door tuned by opt's Gateway*
// fields. The Gateway does not own the Searcher: close the Gateway
// first (draining in-flight searches), then the Searcher.
func NewGateway(s *Searcher, opt Options) (*Gateway, error) {
	if s == nil {
		return nil, errNilSets
	}
	g, err := gateway.New(s.inner, gateway.Config{
		Capacity:       opt.GatewayCapacity,
		Queue:          opt.GatewayQueue,
		ClientSlots:    opt.GatewayClientSlots,
		DefaultTimeout: opt.GatewayTimeout,
		MaxBodyBytes:   opt.GatewayMaxBodyBytes,
		DBMappedBytes:  s.db.MappedBytes(),
	})
	if err != nil {
		return nil, err
	}
	return &Gateway{inner: g, s: s}, nil
}

// ServeHTTP implements http.Handler, so a Gateway can mount under any
// mux or server of the caller's choosing.
func (g *Gateway) ServeHTTP(w http.ResponseWriter, r *http.Request) { g.inner.ServeHTTP(w, r) }

// Serve answers HTTP on l until the listener closes (returns nil then).
func (g *Gateway) Serve(l net.Listener) error { return g.inner.Serve(l) }

// Counters snapshots the gateway's admission and outcome accounting.
func (g *Gateway) Counters() GatewayCounters { return g.inner.Counters() }

// Searcher returns the backend the Gateway fronts.
func (g *Gateway) Searcher() *Searcher { return g.s }

// Close stops admission — new and queued requests get 503 — and blocks
// until in-flight searches drained. Idempotent; the Searcher stays
// open.
func (g *Gateway) Close() error { return g.inner.Close() }
