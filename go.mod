module swdual

go 1.24
