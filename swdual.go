// Package swdual is a hybrid CPU/GPU Smith-Waterman sequence-database
// search library, reproducing "Fast Biological Sequence Comparison on
// Hybrid Platforms" (Kedad-Sidhoum, Mendonca, Monna, Mounié, Trystram —
// ICPP 2014).
//
// A search compares a set of query sequences against a sequence database
// on a platform of CPU workers (SWIPE-style SIMD-within-a-register
// engines) and GPU workers (CUDASW++ 2.0-style engines on simulated Tesla
// C2050 devices). The master assigns one task per query using the
// paper's dual-approximation scheduler, which guarantees a makespan
// within twice the optimum while keeping every processing element busy.
//
// Quick start:
//
//	db, _ := swdual.GenerateDatabase("UniProt", 2000) // 1/2000 scale
//	queries, _ := swdual.GenerateQueries("standard", 50)
//	report, _ := swdual.Search(db, queries, swdual.Options{CPUs: 2, GPUs: 2})
//	for _, r := range report.Results {
//		fmt.Println(r.QueryID, r.Hits[0].SeqID, r.Hits[0].Score)
//	}
package swdual

import (
	"context"
	"fmt"
	"os"
	"strings"
	"time"

	"swdual/internal/alphabet"
	"swdual/internal/engine"
	"swdual/internal/fasta"
	"swdual/internal/master"
	"swdual/internal/scoring"
	"swdual/internal/seq"
	"swdual/internal/seqdb"
	"swdual/internal/sw"
	"swdual/internal/synth"
)

// Options configures a search.
type Options struct {
	// Matrix names the substitution matrix: BLOSUM62 (default), BLOSUM50,
	// PAM250 or DNA.
	Matrix string
	// GapStart (Gs) and GapExtend (Ge) are the affine gap penalties of
	// the paper's Eqs. (3)-(4); a gap of length L costs Gs + L*Ge.
	// Defaults: 10 and 2.
	GapStart  int
	GapExtend int
	// CPUs and GPUs set the worker pools (defaults 1 and 1).
	CPUs int
	GPUs int
	// Pool selects a heterogeneous worker pool as a spec string of
	// comma-separated backend=count pairs, e.g. "cpu=2,striped=1,gpu=1".
	// Valid backends: "cpu" (inter-sequence SWAR, the paper's CPU
	// engine), "striped" (striped SWAR), "fine" (fine-grained
	// wavefront), "gpu" (simulated Tesla C2050). All backends compute
	// exact scores, so mixing them changes throughput and scheduling,
	// never results; each worker's advertised rate only seeds a live
	// estimate measured from its completed tasks. When set, Pool
	// overrides CPUs and GPUs; with sharding every shard gets its own
	// pool of this shape.
	Pool string
	// TopK bounds reported hits per query (default 10).
	TopK int
	// Policy selects the allocation policy: "dual-approx" (default),
	// "dual-approx-dp", "self-scheduling" or "round-robin".
	Policy string
	// Pipeline selects wave pipelining: "on" (the engine plans wave N+1
	// while wave N executes and workers hand off between waves without a
	// barrier), "off" (strict one-wave-at-a-time execution, the paper's
	// idle-platform scheduling model — use it to reproduce the paper's
	// benchmarks exactly), or "auto" (the default: on for multi-core
	// hosts, off on a single core, where there is no spare core to plan
	// on). Hits are byte-identical in every mode. With sharding, every
	// shard's engine uses this mode.
	Pipeline string
	// Shards splits the database into this many independent shards, each
	// served by its own engine and worker pool (CPUs and GPUs are then
	// per shard); searches scatter to every shard and gather through a
	// deterministic TopK merge, so results are byte-identical to an
	// unsharded search. 0 or 1 disables sharding.
	Shards int
	// ShardSplit selects the shard boundaries: "contiguous" (default,
	// equal sequence counts) or "balanced" (equal residue volume).
	ShardSplit string
	// RemoteShards backs each shard with a serve process instead of an
	// in-process engine: the database is split into len(RemoteShards)
	// ranges with ShardSplit, and the i'th address must run ServeShard
	// (or `swdual -shard-serve`) for slice i of the same database —
	// verified by checksum at dial, so a server holding different
	// sequences is rejected before any query runs. Searches scatter over
	// the network and gather exactly like in-process sharding, so hits
	// stay byte-identical to an unsharded search. When set, Shards is
	// ignored.
	RemoteShards []string
	// ReplicaShards backs each shard range with several interchangeable
	// serve processes: ReplicaShards[i] lists the addresses of the
	// servers for slice i, every one running ServeShard for that same
	// slice (verified by checksum at dial — replicas proven identical is
	// what makes failover and hedging answer-preserving). Searches route
	// to one replica per range; a replica whose connection dies is
	// failed over, re-dialed in the background with capped backoff, and
	// searches running past an adaptive latency threshold are hedged on
	// a sibling, first answer wins. Hits stay byte-identical to an
	// unsharded search. A replica that is down at construction is
	// tolerated as long as at least one replica of its range is up. When
	// set, RemoteShards and Shards are ignored.
	ReplicaShards [][]string
	// DialTimeout bounds dialing one remote shard or replica — TCP
	// connect and protocol handshake together — so a hung server cannot
	// block construction forever. 0 selects the default (10s).
	DialTimeout time.Duration
	// Cache enables the result cache with singleflight collapsing: a
	// repeated search (same query residues, same TopK, same database)
	// is answered from a bounded LRU without running a scheduling wave,
	// and concurrent identical searches collapse into one wave. With
	// sharding (local or remote) the cache lives in the coordinator, so
	// a cached answer never reaches a shard. Off by default — the
	// paper's benchmarks measure scheduling, so reproduction runs pay
	// every wave. Hits are byte-identical with the cache on or off.
	Cache bool
	// CacheSize caps cached search fingerprints (0 selects the default,
	// 1024); CacheBytes caps the cache's estimated memory (0 selects
	// the default, 64 MiB).
	CacheSize  int
	CacheBytes int64
	// GatewayCapacity bounds concurrently executing searches behind the
	// HTTP gateway (0 selects the default, 2×GOMAXPROCS); see NewGateway.
	GatewayCapacity int
	// GatewayQueue bounds how many admitted gateway requests may wait
	// for an execution slot (0 selects the default, 4×capacity; negative
	// means no queue). Arrivals beyond capacity+queue are shed with 429.
	GatewayQueue int
	// GatewayClientSlots bounds the slots one client (X-API-Key header,
	// else remote address) may hold at once (0 selects the default, a
	// quarter of capacity+queue).
	GatewayClientSlots int
	// GatewayTimeout is the search deadline applied to gateway requests
	// that carry none of their own (0 = none).
	GatewayTimeout time.Duration
	// GatewayMaxBodyBytes bounds a gateway request body (0 selects the
	// default, 8 MiB).
	GatewayMaxBodyBytes int64
	// DBPath opens the database from a file when the db argument to
	// NewSearcher is nil: a .swdb path is memory-mapped (OpenDatabase
	// semantics — zero-copy, off-heap, one physical copy per host
	// across every process mapping it), anything else is parsed as
	// FASTA. The Searcher owns the resulting database and releases the
	// mapping on Close. Ignored when an explicit db is passed.
	DBPath string
	// Degraded selects partial-result search on a sharded coordinator
	// (Shards > 1, RemoteShards, ReplicaShards): when every replica of
	// a database range is unavailable, Search answers from the
	// surviving ranges and the Report carries Coverage naming what was
	// skipped, instead of failing outright. Full-coverage answers are
	// byte-identical with the option on or off; degraded answers never
	// enter the result cache. Ignored by an unsharded Searcher — there
	// is no surviving subset of one engine.
	Degraded bool
}

func (o Options) params() (sw.Params, error) {
	name := o.Matrix
	if name == "" {
		name = "BLOSUM62"
	}
	m, err := scoring.ByName(name)
	if err != nil {
		return sw.Params{}, err
	}
	g := scoring.Gaps{Start: 10, Extend: 2}
	if o.GapStart > 0 {
		g.Start = o.GapStart
	}
	if o.GapExtend > 0 {
		g.Extend = o.GapExtend
	}
	if err := g.Validate(); err != nil {
		return sw.Params{}, err
	}
	return sw.Params{Matrix: m, Gaps: g}, nil
}

func (o Options) policy() (master.Policy, error) {
	p, err := master.ParsePolicy(o.Policy)
	if err != nil {
		return 0, fmt.Errorf("swdual: %w", err)
	}
	return p, nil
}

func (o Options) poolSpec() (master.PoolSpec, error) {
	s, err := master.ParsePoolSpec(o.Pool)
	if err != nil {
		return master.PoolSpec{}, fmt.Errorf("swdual: %w", err)
	}
	return s, nil
}

func (o Options) pipeline() (engine.PipelineMode, error) {
	m, err := engine.ParsePipeline(o.Pipeline)
	if err != nil {
		return 0, fmt.Errorf("swdual: %w", err)
	}
	return m, nil
}

func (o Options) workers() (cpus, gpus int) {
	cpus, gpus = o.CPUs, o.GPUs
	if cpus == 0 && gpus == 0 {
		cpus, gpus = 1, 1
	}
	return cpus, gpus
}

// Database is a set of sequences usable as search subjects or queries.
type Database struct {
	set *seq.Set
	// mapped is non-nil when the set is backed by a memory-mapped
	// .swdb file (OpenDatabase): Residues alias the mapping, the data
	// stays off the Go heap, and Close releases it.
	mapped *seqdb.Mapped
}

// Len returns the number of sequences.
func (d *Database) Len() int { return d.set.Len() }

// TotalResidues returns the summed sequence length.
func (d *Database) TotalResidues() int64 { return d.set.TotalResidues() }

// Sequence returns the ID and ASCII residues of sequence i.
func (d *Database) Sequence(i int) (id string, residues string) {
	s := &d.set.Seqs[i]
	return s.ID, d.set.Alpha.DecodeString(s.Residues)
}

// Set exposes the underlying sequence set for advanced use.
func (d *Database) Set() *seq.Set { return d.set }

// LoadFASTA reads a protein FASTA file (unknown residues map to X).
func LoadFASTA(path string) (*Database, error) {
	set, err := fasta.ReadFile(path, alphabet.Protein, true)
	if err != nil {
		return nil, err
	}
	return &Database{set: set}, nil
}

// OpenDatabase opens a database file by format: a .swdb file is
// memory-mapped read-only — zero residue copies, sequence data off the
// Go heap, opening costs O(index) because the header's stored CRC is
// trusted instead of rescanning residues, and every process mapping
// the same file on one host shares a single physical copy through the
// page cache — while any other path is parsed as FASTA into the heap.
// A mapped Database must be Closed after the last Searcher over it; on
// platforms without mmap the same API transparently reads the file
// into the heap.
func OpenDatabase(path string) (*Database, error) {
	if !strings.HasSuffix(path, ".swdb") {
		return LoadFASTA(path)
	}
	m, err := seqdb.Open(path)
	if err != nil {
		return nil, err
	}
	set, err := m.Set()
	if err != nil {
		m.Close()
		return nil, err
	}
	return &Database{set: set, mapped: m}, nil
}

// LoadBinary loads a database in the paper's binary format (§IV) into
// the heap. OpenDatabase is the zero-copy alternative that maps the
// file instead of copying it.
func LoadBinary(path string) (*Database, error) {
	f, err := seqdb.OpenFile(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	set, err := f.ReadAll()
	if err != nil {
		return nil, err
	}
	return &Database{set: set}, nil
}

// Close releases the file mapping behind a Database opened from a
// .swdb path. It is a no-op for heap-backed databases, idempotent, and
// must come after the last Searcher over the Database is Closed — the
// sequences alias the mapping.
func (d *Database) Close() error {
	if d.mapped == nil {
		return nil
	}
	return d.mapped.Close()
}

// MappedBytes reports the size of the file mapping backing the
// Database (0 for heap-backed databases and after Close) — the
// operator-visible measure of how much corpus lives outside the Go
// heap.
func (d *Database) MappedBytes() int64 {
	if d.mapped == nil {
		return 0
	}
	return d.mapped.MappedBytes()
}

// VerifyMapped rescans a mapped database's residues against the
// header checksum that Open trusted — the eager integrity check for
// operators who want corruption caught at startup rather than never.
func (d *Database) VerifyMapped() error {
	if d.mapped == nil {
		return nil
	}
	return d.mapped.Verify()
}

// SaveBinary writes the database in the paper's binary format.
func (d *Database) SaveBinary(path string) error {
	return seqdb.Create(path, d.set)
}

// SaveFASTA writes the database as FASTA text.
func (d *Database) SaveFASTA(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fasta.WriteSet(f, d.set); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// FromSequences builds a database from ASCII protein sequences.
func FromSequences(ids []string, residues []string) (*Database, error) {
	if len(ids) != len(residues) {
		return nil, fmt.Errorf("swdual: %d ids for %d sequences", len(ids), len(residues))
	}
	set := seq.NewSet(alphabet.Protein)
	for i := range ids {
		if err := set.Add(ids[i], "", []byte(strings.ToUpper(residues[i]))); err != nil {
			return nil, err
		}
	}
	return &Database{set: set}, nil
}

// GenerateDatabase creates a synthetic database preset ("UniProt",
// "Ensembl Dog Proteins", "Ensembl Rat Proteins", "RefSeq Human
// Proteins", "RefSeq Mouse Proteins"), scaled down by scale (>= 1).
func GenerateDatabase(preset string, scale int) (*Database, error) {
	spec, err := synth.DatabaseByName(preset)
	if err != nil {
		return nil, err
	}
	return &Database{set: spec.Scaled(scale).Generate()}, nil
}

// GenerateQueries creates one of the paper's query sets ("standard",
// "homogeneous", "heterogeneous"), with lengths divided by scale (>= 1).
func GenerateQueries(kind string, scale int) (*Database, error) {
	var spec synth.QuerySpec
	switch kind {
	case "standard":
		spec = synth.StandardQueries()
	case "homogeneous":
		spec = synth.HomogeneousQueries()
	case "heterogeneous":
		spec = synth.HeterogeneousQueries()
	default:
		return nil, fmt.Errorf("swdual: unknown query set %q", kind)
	}
	return &Database{set: spec.Scaled(scale).Generate()}, nil
}

// Hit is one database match.
type Hit = master.Hit

// QueryResult is the outcome of one query's search.
type QueryResult = master.QueryResult

// Report is the outcome of a search run.
type Report = master.Report

// errNilSets is the shared complaint for nil database/query arguments.
var errNilSets = fmt.Errorf("swdual: nil database or query set")

// Search compares every query against the database on an in-process
// hybrid platform and returns merged, score-sorted hits per query. It is
// a thin wrapper that runs one request through a temporary Searcher;
// callers with more than one search should keep a Searcher and let it
// amortize database preparation and the worker pool across requests.
func Search(db, queries *Database, opt Options) (*Report, error) {
	if db == nil || queries == nil {
		return nil, errNilSets
	}
	s, err := newSearcher(db, opt, -1) // no batch window: nobody to wait for
	if err != nil {
		return nil, err
	}
	defer s.Close()
	return s.Search(context.Background(), queries, SearchOptions{})
}

// Alignment is a full pairwise local alignment with traceback.
type Alignment struct {
	Score    int
	Identity float64
	CIGAR    string
	Text     string // BLAST-like three-line rendering
}

// AlignPair computes the optimal local alignment of two ASCII protein
// sequences with full traceback.
func AlignPair(a, b string, opt Options) (*Alignment, error) {
	params, err := opt.params()
	if err != nil {
		return nil, err
	}
	ea, err := alphabet.Protein.Encode([]byte(strings.ToUpper(a)))
	if err != nil {
		return nil, err
	}
	eb, err := alphabet.Protein.Encode([]byte(strings.ToUpper(b)))
	if err != nil {
		return nil, err
	}
	al := sw.Align(params, ea, eb)
	return &Alignment{
		Score:    al.Score,
		Identity: al.Identity(),
		CIGAR:    al.CIGAR(),
		Text:     al.Format(alphabet.Protein),
	}, nil
}

// ScorePair returns just the optimal local alignment score of two ASCII
// protein sequences.
func ScorePair(a, b string, opt Options) (int, error) {
	params, err := opt.params()
	if err != nil {
		return 0, err
	}
	ea, err := alphabet.Protein.Encode([]byte(strings.ToUpper(a)))
	if err != nil {
		return 0, err
	}
	eb, err := alphabet.Protein.Encode([]byte(strings.ToUpper(b)))
	if err != nil {
		return 0, err
	}
	return sw.Score(params, ea, eb), nil
}
