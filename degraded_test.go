package swdual

// The public-API half of the degraded-mode suite lives in the package
// itself (not swdual_test) so it can assemble a Searcher over a
// fault-injected cluster: the public constructors build real healthy
// engines, and real dead replicas belong to the shell-driven chaos
// e2e, not a unit test.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"swdual/internal/engine"
	"swdual/internal/faultinject"
	"swdual/internal/replica"
	"swdual/internal/shard"
)

// TestDegradedOptionPlumbsToCoordinator pins the Options → policy
// wiring: Degraded selects DegradedPartial on a sharded coordinator,
// stays off by default, and is ignored (harmlessly) when unsharded.
func TestDegradedOptionPlumbsToCoordinator(t *testing.T) {
	db, err := GenerateDatabase("UniProt", 40000)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		degraded bool
		want     shard.DegradedPolicy
	}{
		{degraded: false, want: shard.DegradedFail},
		{degraded: true, want: shard.DegradedPartial},
	} {
		s, err := NewSearcher(db, Options{Shards: 2, CPUs: 1, TopK: 3, Degraded: tc.degraded})
		if err != nil {
			t.Fatal(err)
		}
		sh, ok := s.inner.(*shard.Searcher)
		if !ok {
			t.Fatalf("sharded Searcher inner is %T", s.inner)
		}
		if got := sh.DegradedPolicy(); got != tc.want {
			t.Fatalf("Degraded=%v: policy %v, want %v", tc.degraded, got, tc.want)
		}
		s.Close()
	}
	// Unsharded: the option has nothing to select and must not break
	// construction or search.
	s, err := NewSearcher(db, Options{CPUs: 1, TopK: 3, Degraded: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	queries, err := GenerateQueries("standard", 400)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Search(context.Background(), queries, SearchOptions{}); err != nil {
		t.Fatal(err)
	}
}

// TestDegradedOptionKeepsFullAnswersIdentical is the public no-fault
// equivalence bar: with every shard healthy, Degraded on and off
// produce byte-identical hits (and both match unsharded), and neither
// answer carries Coverage.
func TestDegradedOptionKeepsFullAnswersIdentical(t *testing.T) {
	db, err := GenerateDatabase("UniProt", 40000)
	if err != nil {
		t.Fatal(err)
	}
	queries, err := GenerateQueries("standard", 400)
	if err != nil {
		t.Fatal(err)
	}
	var ref *Report
	for _, opt := range []Options{
		{CPUs: 1, TopK: 5},
		{Shards: 3, CPUs: 1, TopK: 5},
		{Shards: 3, CPUs: 1, TopK: 5, Degraded: true},
	} {
		s, err := NewSearcher(db, opt)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := s.Search(context.Background(), queries, SearchOptions{})
		s.Close()
		if err != nil {
			t.Fatalf("%+v: %v", opt, err)
		}
		if rep.Coverage != nil {
			t.Fatalf("%+v: healthy search carries Coverage %+v", opt, rep.Coverage)
		}
		if ref == nil {
			ref = rep
			continue
		}
		for qi := range rep.Results {
			got, want := rep.Results[qi].Hits, ref.Results[qi].Hits
			if len(got) != len(want) {
				t.Fatalf("%+v query %d: %d hits vs %d", opt, qi, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%+v query %d hit %d: %+v vs %+v", opt, qi, i, got[i], want[i])
				}
			}
		}
	}
}

// TestDegradedCoverageSurfacesThroughPublicAPI assembles a Searcher
// whose sharded coordinator sits over fault-injected backends, scripts
// one range dark, and requires the partial answer — Coverage and the
// degraded counter — to surface unchanged through Searcher.Search,
// Searcher.Stats, and an HTTP Gateway (206 with a coverage block).
func TestDegradedCoverageSurfacesThroughPublicAPI(t *testing.T) {
	db, err := GenerateDatabase("UniProt", 40000)
	if err != nil {
		t.Fatal(err)
	}
	queries, err := GenerateQueries("standard", 400)
	if err != nil {
		t.Fatal(err)
	}
	const topK = 3
	ranges := shard.RangesFor(db.set, 2, shard.Contiguous)
	wrappers := make([]*faultinject.Backend, len(ranges))
	backends := make([]engine.Backend, len(ranges))
	for i, r := range ranges {
		eng, err := engine.New(db.set.Slice(r.Lo, r.Hi), engine.Config{CPUs: 1, TopK: topK})
		if err != nil {
			t.Fatal(err)
		}
		wrappers[i] = faultinject.Wrap(eng)
		backends[i] = wrappers[i]
	}
	sh, err := shard.WithBackends(db.set, shard.Contiguous, ranges, backends, topK)
	if err != nil {
		t.Fatal(err)
	}
	sh.SetDegradedPolicy(shard.DegradedPartial)
	s := &Searcher{inner: sh, db: db, opt: Options{TopK: topK}, shards: len(ranges)}
	defer s.Close()

	// Every search loses range 1 (Count 0 = every call), so both the
	// direct Search and the gateway request below degrade.
	wrappers[1].SetRules(faultinject.Rule{Op: faultinject.OpSearch, Fault: faultinject.Fault{
		Err: &replica.ErrRangeUnavailable{
			Range: fmt.Sprintf("shard 1 [%d,%d)", ranges[1].Lo, ranges[1].Hi),
			Index: 1, Replicas: 2, Cause: "injected: connection lost",
		},
	}})

	rep, err := s.Search(context.Background(), queries, SearchOptions{})
	if err != nil {
		t.Fatalf("public degraded search failed: %v", err)
	}
	if rep.Coverage == nil {
		t.Fatal("public Report carries no Coverage")
	}
	if rep.Coverage.RangesSearched != 1 || rep.Coverage.RangesTotal != 2 || len(rep.Coverage.Skipped) != 1 {
		t.Fatalf("coverage %+v", rep.Coverage)
	}
	if f := rep.Coverage.Fraction(); f <= 0 || f >= 1 {
		t.Fatalf("fraction %v, want strictly inside (0,1)", f)
	}
	if st := s.Stats(); st.DegradedSearches != 1 {
		t.Fatalf("public Stats DegradedSearches = %d, want 1", st.DegradedSearches)
	}

	gw, err := NewGateway(s, Options{GatewayCapacity: 2, GatewayQueue: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()
	srv := httptest.NewServer(gw)
	defer srv.Close()

	type query struct {
		ID       string `json:"id"`
		Residues string `json:"residues"`
	}
	req := struct {
		Queries []query `json:"queries"`
		TopK    int     `json:"top_k,omitempty"`
	}{TopK: topK}
	for i := 0; i < queries.Len(); i++ {
		id, residues := queries.Sequence(i)
		req.Queries = append(req.Queries, query{ID: id, Residues: residues})
	}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/v1/search", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusPartialContent {
		t.Fatalf("gateway answered %d (%s), want 206", resp.StatusCode, buf.Bytes())
	}
	var decoded struct {
		Coverage *struct {
			RangesSearched int     `json:"ranges_searched"`
			RangesTotal    int     `json:"ranges_total"`
			Fraction       float64 `json:"fraction"`
			Skipped        []struct {
				Index  int    `json:"index"`
				Reason string `json:"reason"`
			} `json:"skipped"`
		} `json:"coverage"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("206 body did not decode: %v\n%s", err, buf.Bytes())
	}
	if decoded.Coverage == nil {
		t.Fatalf("206 body has no coverage block: %s", buf.Bytes())
	}
	if decoded.Coverage.RangesSearched != 1 || decoded.Coverage.RangesTotal != 2 {
		t.Fatalf("gateway coverage %+v", decoded.Coverage)
	}
	if len(decoded.Coverage.Skipped) != 1 || decoded.Coverage.Skipped[0].Index != 1 ||
		!strings.Contains(decoded.Coverage.Skipped[0].Reason, "injected") {
		t.Fatalf("gateway skipped ranges %+v", decoded.Coverage.Skipped)
	}
	if c := gw.Counters(); c.Degraded != 1 {
		t.Fatalf("gateway counters %+v, want Degraded 1", c)
	}
}
