package swdual_test

import (
	"context"
	"net"
	"path/filepath"
	"testing"

	"swdual"
)

// saveSWDB generates a deterministic corpus and writes it as .swdb,
// returning the path and the in-memory original.
func saveSWDB(t *testing.T, preset string, scale int) (string, *swdual.Database) {
	t.Helper()
	db, err := swdual.GenerateDatabase(preset, scale)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "db.swdb")
	if err := db.SaveBinary(path); err != nil {
		t.Fatal(err)
	}
	return path, db
}

func sameReports(t *testing.T, label string, got, want *swdual.Report) {
	t.Helper()
	if len(got.Results) != len(want.Results) {
		t.Fatalf("%s: %d results, want %d", label, len(got.Results), len(want.Results))
	}
	for qi := range got.Results {
		a, b := got.Results[qi].Hits, want.Results[qi].Hits
		if len(a) != len(b) {
			t.Fatalf("%s query %d: %d hits vs %d", label, qi, len(a), len(b))
		}
		for hi := range a {
			if a[hi] != b[hi] {
				t.Fatalf("%s query %d hit %d: %+v vs %+v", label, qi, hi, a[hi], b[hi])
			}
		}
	}
}

// TestOpenDatabaseMapped pins the public mapping contract: a .swdb path
// opens as a mapped database identical sequence-for-sequence to the
// heap loader, reports its mapping size, verifies eagerly on demand,
// and closes idempotently; a FASTA path through the same entry point is
// heap-backed and Close is a no-op.
func TestOpenDatabaseMapped(t *testing.T) {
	path, orig := saveSWDB(t, "Ensembl Rat Proteins", 4000)
	m, err := swdual.OpenDatabase(path)
	if err != nil {
		t.Fatal(err)
	}
	if m.MappedBytes() <= 0 {
		t.Fatal("mapped database reports no mapped bytes")
	}
	if m.Len() != orig.Len() || m.TotalResidues() != orig.TotalResidues() {
		t.Fatalf("mapped %d/%d, want %d/%d", m.Len(), m.TotalResidues(), orig.Len(), orig.TotalResidues())
	}
	heap, err := swdual.LoadBinary(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < m.Len(); i++ {
		mid, mres := m.Sequence(i)
		hid, hres := heap.Sequence(i)
		if mid != hid || mres != hres {
			t.Fatalf("mapped sequence %d differs from heap load", i)
		}
	}
	if err := m.VerifyMapped(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if m.MappedBytes() != 0 {
		t.Fatal("MappedBytes nonzero after Close")
	}

	fa := filepath.Join(t.TempDir(), "db.fasta")
	if err := orig.SaveFASTA(fa); err != nil {
		t.Fatal(err)
	}
	hdb, err := swdual.OpenDatabase(fa)
	if err != nil {
		t.Fatal(err)
	}
	if hdb.MappedBytes() != 0 {
		t.Fatal("FASTA database reports mapped bytes")
	}
	if err := hdb.Close(); err != nil {
		t.Fatalf("heap Close: %v", err)
	}
}

// TestMappedSearchMatchesHeap is the end-to-end equivalence suite: the
// same .swdb searched from the heap and from the mapping — unsharded,
// locally sharded, and remote-sharded with every server mapping the
// file — must produce byte-identical hits.
func TestMappedSearchMatchesHeap(t *testing.T) {
	path, _ := saveSWDB(t, "UniProt", 20000)
	queries, err := swdual.GenerateQueries("standard", 400)
	if err != nil {
		t.Fatal(err)
	}
	opt := swdual.Options{CPUs: 1, GPUs: 1, TopK: 5, ShardSplit: "balanced"}

	heap, err := swdual.LoadBinary(path)
	if err != nil {
		t.Fatal(err)
	}
	want, err := swdual.Search(heap, queries, opt)
	if err != nil {
		t.Fatal(err)
	}

	mdb, err := swdual.OpenDatabase(path)
	if err != nil {
		t.Fatal(err)
	}
	defer mdb.Close()

	// Unsharded engine directly over the mapping.
	got, err := swdual.Search(mdb, queries, opt)
	if err != nil {
		t.Fatal(err)
	}
	sameReports(t, "mapped unsharded", got, want)

	// Local scatter/gather: shard slices are shallow, so every shard
	// engine reads the same mapping.
	shardOpt := opt
	shardOpt.Shards = 3
	got, err = swdual.Search(mdb, queries, shardOpt)
	if err != nil {
		t.Fatal(err)
	}
	sameReports(t, "mapped sharded", got, want)

	// Remote scatter/gather: each shard server opens its own mapping of
	// the same file — the one-copy-per-host deployment in miniature —
	// and the coordinator's merged hits must still match the heap run.
	const shardCount = 2
	addrs := make([]string, shardCount)
	for i := 0; i < shardCount; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		addrs[i] = l.Addr().String()
		srvDB, err := swdual.OpenDatabase(path)
		if err != nil {
			t.Fatal(err)
		}
		defer srvDB.Close()
		go func(i int, l net.Listener, db *swdual.Database) {
			swdual.ServeShard(l, db, i, shardCount, opt)
		}(i, l, srvDB)
	}
	coordOpt := opt
	coordOpt.RemoteShards = addrs
	s, err := swdual.NewSearcher(mdb, coordOpt)
	if err != nil {
		t.Fatal(err)
	}
	got, err = s.Search(context.Background(), queries, swdual.SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sameReports(t, "mapped remote-sharded", got, want)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestSearcherOwnsDBPath covers Options.DBPath: NewSearcher(nil, ...)
// opens the database itself, searches match an explicit heap database,
// and Close releases the mapping after the engines.
func TestSearcherOwnsDBPath(t *testing.T) {
	path, _ := saveSWDB(t, "RefSeq Mouse Proteins", 8000)
	queries, err := swdual.GenerateQueries("standard", 100)
	if err != nil {
		t.Fatal(err)
	}
	opt := swdual.Options{CPUs: 1, GPUs: 1, TopK: 5}

	heap, err := swdual.LoadBinary(path)
	if err != nil {
		t.Fatal(err)
	}
	want, err := swdual.Search(heap, queries, opt)
	if err != nil {
		t.Fatal(err)
	}

	pathOpt := opt
	pathOpt.DBPath = path
	s, err := swdual.NewSearcher(nil, pathOpt)
	if err != nil {
		t.Fatal(err)
	}
	db := s.Database()
	if db == nil || db.MappedBytes() <= 0 {
		t.Fatal("DBPath searcher did not map the database")
	}
	got, err := s.Search(context.Background(), queries, swdual.SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sameReports(t, "DBPath", got, want)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if db.MappedBytes() != 0 {
		t.Fatal("Searcher.Close left the owned mapping open")
	}

	// An explicit database argument wins over DBPath, and the Searcher
	// then does not own it.
	s2, err := swdual.NewSearcher(heap, pathOpt)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Database() != heap {
		t.Fatal("explicit db argument ignored in favor of DBPath")
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}

	// No database and no path stays an error.
	if _, err := swdual.NewSearcher(nil, opt); err == nil {
		t.Fatal("nil database with no DBPath accepted")
	}
	// A bad path surfaces the open error instead of a nil-set error.
	badOpt := opt
	badOpt.DBPath = filepath.Join(t.TempDir(), "missing.swdb")
	if _, err := swdual.NewSearcher(nil, badOpt); err == nil {
		t.Fatal("missing DBPath accepted")
	}
}
