package swpar

import (
	"math/rand"
	"testing"
	"testing/quick"

	"swdual/internal/alphabet"
	"swdual/internal/sw"
	"swdual/internal/synth"
)

func randSeq(rng *rand.Rand, n int) []byte {
	s := make([]byte, n)
	for i := range s {
		s[i] = byte(rng.Intn(alphabet.Protein.Core()))
	}
	return s
}

func TestMatchesOracleAcrossShapes(t *testing.T) {
	p := sw.DefaultParams()
	rng := rand.New(rand.NewSource(1))
	for iter := 0; iter < 60; iter++ {
		q := randSeq(rng, 1+rng.Intn(200))
		d := randSeq(rng, 1+rng.Intn(300))
		want := sw.Score(p, q, d)
		for _, cfg := range []Config{
			{Workers: 1, RowBand: 16},
			{Workers: 2, RowBand: 8},
			{Workers: 4, RowBand: 32},
			{Workers: 7, RowBand: 1},
			{Workers: 16, RowBand: 64},
		} {
			if got := Score(p, q, d, cfg); got != want {
				t.Fatalf("iter %d cfg %+v: got %d want %d (|q|=%d |d|=%d)", iter, cfg, got, want, len(q), len(d))
			}
		}
	}
}

func TestMoreWorkersThanColumns(t *testing.T) {
	p := sw.DefaultParams()
	q := alphabet.Protein.MustEncode("MKWVTFISLL")
	d := alphabet.Protein.MustEncode("MKW")
	want := sw.Score(p, q, d)
	if got := Score(p, q, d, Config{Workers: 32, RowBand: 4}); got != want {
		t.Fatalf("got %d want %d", got, want)
	}
}

func TestEmptyInputs(t *testing.T) {
	p := sw.DefaultParams()
	if Score(p, nil, []byte{1}, Config{}) != 0 {
		t.Fatal("empty query")
	}
	if Score(p, []byte{1}, nil, Config{}) != 0 {
		t.Fatal("empty subject")
	}
}

func TestEngineMatchesScalarEngine(t *testing.T) {
	p := sw.DefaultParams()
	db := synth.RandomSet(alphabet.Protein, 15, 1, 250, 41)
	q := randSeq(rand.New(rand.NewSource(42)), 120)
	want := sw.NewScalar(p).Scores(q, db)
	got := NewEngine(p, Config{Workers: 3, RowBand: 16}).Scores(q, db)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("seq %d: %d vs %d", i, got[i], want[i])
		}
	}
}

// Property: the wavefront decomposition is invariant in worker count and
// band size.
func TestQuickDecompositionInvariance(t *testing.T) {
	p := sw.DefaultParams()
	f := func(qr, dr []byte, workers, band uint8) bool {
		q := clamp(qr, 100)
		d := clamp(dr, 150)
		if len(q) == 0 || len(d) == 0 {
			return true
		}
		cfg := Config{Workers: int(workers%8) + 1, RowBand: int(band%32) + 1}
		return Score(p, q, d, cfg) == sw.Score(p, q, d)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func clamp(b []byte, maxLen int) []byte {
	if len(b) > maxLen {
		b = b[:maxLen]
	}
	out := make([]byte, len(b))
	for i, v := range b {
		out[i] = v % byte(alphabet.Protein.Len())
	}
	return out
}
