// Package swpar implements the paper's fine-grained parallelization of a
// single Smith-Waterman comparison (§II.C, Figure 2): the similarity
// matrix is split into column blocks, one per processing element; PE p
// computes its block row band by row band and passes its border column
// values to PE p+1, so the computation sweeps the matrix as a wavefront.
//
// This is the strategy each SWDUAL worker uses internally to accelerate
// one long comparison; the coarse-grained distribution across workers is
// package master's job. Scores are identical to the scalar oracle of
// package sw.
package swpar

import (
	"sync"

	"swdual/internal/seq"
	"swdual/internal/sw"
)

const negInf = int(-1) << 40

// border carries the cells a worker hands to its right neighbour: for
// each row of the band, H and E at the worker's last column, plus the H
// of the previous row (the diagonal input of the neighbour's first
// column).
type border struct {
	firstRow int
	h        []int // H[i][c-1] for each row i of the band
	e        []int // E[i][c-1]
}

// Config tunes the fine-grained engine.
type Config struct {
	// Workers is the number of column blocks / goroutines (default 4).
	Workers int
	// RowBand is the number of rows exchanged per border message
	// (default 64): larger bands amortize channel overhead, smaller
	// bands start the wavefront earlier.
	RowBand int
}

func (c *Config) defaults() {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.RowBand <= 0 {
		c.RowBand = 64
	}
}

// Score computes the affine-gap local alignment score of query vs subject
// with the fine-grained column-block wavefront.
func Score(p sw.Params, query, subject []byte, cfg Config) int {
	cfg.defaults()
	m, n := len(query), len(subject)
	if m == 0 || n == 0 {
		return 0
	}
	workers := cfg.Workers
	if workers > n {
		workers = n
	}
	// Column ranges per worker: [starts[w], starts[w+1]).
	starts := make([]int, workers+1)
	for w := 0; w <= workers; w++ {
		starts[w] = w * n / workers
	}
	// Border channels between neighbours, buffered so the pipeline can
	// run ahead a few bands.
	chans := make([]chan border, workers+1)
	for w := range chans {
		chans[w] = make(chan border, 4)
	}
	// Worker 0's "left border" is the all-zero column 0 of the DP
	// matrix; synthesize its messages.
	go func() {
		for lo := 1; lo <= m; lo += cfg.RowBand {
			hi := lo + cfg.RowBand
			if hi > m+1 {
				hi = m + 1
			}
			b := border{firstRow: lo, h: make([]int, hi-lo), e: make([]int, hi-lo)}
			for i := range b.e {
				b.e[i] = negInf
			}
			chans[0] <- b
		}
		close(chans[0])
	}()

	best := make([]int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			best[w] = blockWorker(p, query, subject, starts[w], starts[w+1], chans[w], chans[w+1], w == workers-1)
		}(w)
	}
	wg.Wait()
	out := 0
	for _, b := range best {
		if b > out {
			out = b
		}
	}
	return out
}

// blockWorker computes columns [lo, hi) of the DP matrix (1-based
// column indexes lo+1..hi), receiving left borders from in and emitting
// its right border on out (unless it is the last block).
func blockWorker(p sw.Params, query, subject []byte, lo, hi int, in, out chan border, last bool) int {
	gs, ge := p.Gaps.Start, p.Gaps.Extend
	width := hi - lo
	h := make([]int, width+1)  // H[i-1][lo..hi] rolling row
	f := make([]int, width+1)  // F for current column positions
	hd := make([]int, width+1) // scratch: previous row values for diagonal
	for j := range f {
		f[j] = negInf
	}
	best := 0
	prevBorderH := 0 // H[i-1][lo] from the previous row's border
	for b := range in {
		var outB border
		if !last {
			outB = border{firstRow: b.firstRow, h: make([]int, len(b.h)), e: make([]int, len(b.h))}
		}
		for bi := range b.h {
			i := b.firstRow + bi
			row := p.Matrix.Row(query[i-1])
			copy(hd, h)
			// Left border for this row: H[i][lo] and E[i][lo] from the
			// neighbour; diagonal H[i-1][lo] was saved from last row.
			hLeft, eLeft := b.h[bi], b.e[bi]
			diag := prevBorderH
			prevBorderH = hLeft
			h[0] = hLeft
			e := eLeft
			for j := 1; j <= width; j++ {
				col := lo + j // 1-based DP column
				hup := hd[j]
				fv := f[j]
				if v := hup - gs; v > fv {
					fv = v
				}
				fv -= ge
				if v := h[j-1] - gs; v > e {
					e = v
				}
				e -= ge
				v := diag + int(row[subject[col-1]])
				if e > v {
					v = e
				}
				if fv > v {
					v = fv
				}
				if v < 0 {
					v = 0
				}
				diag = hup
				h[j] = v
				f[j] = fv
				if v > best {
					best = v
				}
			}
			if !last {
				outB.h[bi] = h[width]
				outB.e[bi] = e
			}
		}
		if !last {
			out <- outB
		}
	}
	if !last {
		close(out)
	}
	return best
}

// Engine adapts the fine-grained kernel to the sw.Engine interface: each
// comparison of the database search runs as a column-block wavefront
// across the configured number of goroutines.
type Engine struct {
	params sw.Params
	cfg    Config
}

// NewEngine builds the engine.
func NewEngine(params sw.Params, cfg Config) *Engine {
	cfg.defaults()
	return &Engine{params: params, cfg: cfg}
}

// Name implements sw.Engine.
func (e *Engine) Name() string { return "finegrained-wavefront" }

// Scores implements sw.Engine.
func (e *Engine) Scores(query []byte, db *seq.Set) []int {
	out := make([]int, db.Len())
	for i := range db.Seqs {
		out[i] = Score(e.params, query, db.Seqs[i].Residues, e.cfg)
	}
	return out
}

var _ sw.Engine = (*Engine)(nil)
