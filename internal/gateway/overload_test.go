package gateway

import (
	"net/http"
	"strconv"
	"sync"
	"testing"
	"time"

	"swdual/internal/alphabet"
	"swdual/internal/engine"
	"swdual/internal/stats"
	"swdual/internal/synth"
)

// latencies collects samples from concurrent request goroutines.
type latencies struct {
	mu sync.Mutex
	xs []float64
}

func (l *latencies) add(x float64) {
	l.mu.Lock()
	l.xs = append(l.xs, x)
	l.mu.Unlock()
}

func (l *latencies) snapshot() []float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]float64(nil), l.xs...)
}

// The deterministic overload suite. The backend is held at a gate, so
// "the gateway is saturated" is an observable state the tests wait for,
// not a hope that enough load arrived in time: every shed assertion
// runs while held slots provably equal Capacity+Queue, and every
// admitted request completes only when the test releases it. No fixed
// sleeps anywhere — outcomes are identical under -race and -count=N.

// heldSlots reads the admission ledger directly (same package).
func heldSlots(g *Gateway) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.held
}

// TestOverloadShedsAtTwiceCapacity drives offered load to 2× admission
// capacity (Capacity+Queue = 4 slots, 8 requests) and then 4×: every
// slot-holding request completes byte-identical to a direct backend
// search, every request beyond the slots is rejected 429 with a
// positive Retry-After in header and body, and goodput stays flat (4
// completions per round) as offered load doubles.
func TestOverloadShedsAtTwiceCapacity(t *testing.T) {
	be := newGateBackend(testEngine(t, testDB(30, 960)))
	g, srv := newTestGateway(t, be, Config{Capacity: 2, Queue: 2, ClientSlots: 100})
	queries := synth.RandomSet(alphabet.Protein, 1, 20, 60, 961)
	body := queriesJSON(t, queries, 0)

	want, err := be.Backend.Search(t.Context(), queries, engine.SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}

	// round saturates the 4 admission slots, fires offered-4 more
	// requests that must all shed, then releases the gate and returns
	// how many requests completed 200.
	round := func(offered int) int {
		t.Helper()
		type answer struct {
			code int
			resp *SearchResponse
		}
		answers := make(chan answer, 4)
		for i := 0; i < 4; i++ {
			go func() {
				code, resp, _, _ := post(t, srv.Client(), srv.URL, body, nil)
				answers <- answer{code, resp}
			}()
		}
		// Two requests are executing (held at the gate), two are waiting
		// for an execution token: all four slots are held.
		<-be.started
		<-be.started
		waitFor(t, "all admission slots held", func() bool { return heldSlots(g) == 4 })

		// Overload: every further arrival is shed, synchronously, with a
		// positive Retry-After — nothing can free a slot while the gate
		// is closed, so these assertions cannot race.
		for i := 4; i < offered; i++ {
			code, _, raw, retry := post(t, srv.Client(), srv.URL, body, nil)
			if code != http.StatusTooManyRequests {
				t.Fatalf("request %d under overload: status %d (%s), want 429", i, code, raw)
			}
			secs, err := strconv.Atoi(retry)
			if err != nil || secs < 1 {
				t.Fatalf("request %d: Retry-After %q, want a positive integer", i, retry)
			}
		}

		// Open the gate: one token per admitted search.
		for i := 0; i < 4; i++ {
			be.release <- struct{}{}
		}
		completed := 0
		for i := 0; i < 4; i++ {
			a := <-answers
			if a.code != http.StatusOK {
				t.Fatalf("admitted request answered %d", a.code)
			}
			sameHits(t, "admitted", a.resp, want)
			completed++
		}
		// The two queued requests reached the backend after the release;
		// drain their gate announcements so the next round starts clean.
		for len(be.started) > 0 {
			<-be.started
		}
		return completed
	}

	goodputAt8 := round(8)
	if c := g.Counters(); c.ShedQueue != 4 || c.ShedClient != 0 {
		t.Fatalf("after 8 offered: %+v", c)
	}
	goodputAt16 := round(16)
	if c := g.Counters(); c.ShedQueue != 4+12 {
		t.Fatalf("after 16 offered: %+v", c)
	}
	if goodputAt8 != 4 || goodputAt16 != 4 {
		t.Fatalf("goodput collapsed: %d completions at 8 offered, %d at 16", goodputAt8, goodputAt16)
	}
	if c := g.Counters(); c.Admitted != 8 || c.Completed != 8 {
		t.Fatalf("final counters: %+v", c)
	}
}

// TestOverloadRetryAfterTracksLatency seeds the latency EWMA with a
// slow observation and checks shed answers scale their Retry-After with
// it: held=4 slots over Capacity=2 is 3 drain rounds of the EWMA mean.
func TestOverloadRetryAfterTracksLatency(t *testing.T) {
	be := newGateBackend(testEngine(t, testDB(20, 965)))
	g, _ := New(be, Config{Capacity: 2, Queue: 2, ClientSlots: 100})
	defer g.Close()

	if got := g.retryAfter(0); got != 1 {
		t.Fatalf("empty EWMA retryAfter = %d, want the 1s floor", got)
	}
	g.lat.Observe(2 * time.Second)
	// held 4 slots / capacity 2 → 3 rounds × 2s EWMA = 6s.
	if got := g.retryAfter(4); got != 6 {
		t.Fatalf("retryAfter(4) = %d, want 6", got)
	}
	if got := g.retryAfter(0); got != 2 {
		t.Fatalf("retryAfter(0) = %d, want 2", got)
	}
}

// TestRetryAfterClamped pins the estimate's bounds. Cold start — an
// EWMA that has never observed a completion — must report the 1-second
// floor, never 0 (a "Retry-After: 0" tells the very clients being shed
// to retry immediately). And a pathological queue over a slow backend
// must saturate at the ceiling instead of overflowing through the
// float-to-int conversion into a negative or garbage header.
func TestRetryAfterClamped(t *testing.T) {
	be := newGateBackend(testEngine(t, testDB(20, 966)))
	g, _ := New(be, Config{Capacity: 1, Queue: 2, ClientSlots: 100})
	defer g.Close()

	// Cold start: no observations at any held depth still floors at 1s.
	for _, held := range []int{0, 1, 3} {
		if got := g.retryAfter(held); got < 1 {
			t.Fatalf("cold-start retryAfter(%d) = %d, want >= 1", held, got)
		}
	}
	if got := g.retryAfter(0); got != 1 {
		t.Fatalf("cold-start retryAfter(0) = %d, want exactly the 1s floor", got)
	}

	// Overflow: an hour-long EWMA mean times a absurd held count would
	// overflow int64 nanoseconds under Duration math; the estimate must
	// saturate at the ceiling, never wrap.
	g.lat.Observe(time.Hour)
	if got := g.retryAfter(1 << 40); got != maxRetryAfterSeconds {
		t.Fatalf("saturated retryAfter = %d, want the %d-second ceiling", got, maxRetryAfterSeconds)
	}
}

// TestAdmittedLatencyStaysBounded is the latency half of the overload
// criterion: with Capacity = 1 and no queue, an admitted request never
// shares the backend and never waits at the gateway — every excess
// arrival is shed instead of stretching the admitted tail. Under 4×
// offered load the admitted p99 must stay within 3× of the unloaded
// p99; the margin absorbs scheduler and GC noise (which is all that is
// left once queueing is structurally impossible). Offered concurrency
// is exactly 2× the admission capacity — enough to overload, while the
// shed path's work stays small beside a search even on a single-core
// host, where every concurrent goroutine's timeslice lands in the
// admitted request's wall clock.
func TestAdmittedLatencyStaysBounded(t *testing.T) {
	// Big enough that the search itself dominates scheduling noise.
	db := testDB(100, 970)
	e := testEngine(t, db)
	_, srv := newTestGateway(t, e, Config{Capacity: 1, Queue: -1, ClientSlots: 100})
	body := queriesJSON(t, synth.RandomSet(alphabet.Protein, 2, 40, 80, 971), 0)

	measure := func() float64 {
		start := time.Now()
		code, _, raw, _ := post(t, srv.Client(), srv.URL, body, nil)
		if code != http.StatusOK {
			t.Fatalf("unloaded request: %d (%s)", code, raw)
		}
		return time.Since(start).Seconds()
	}
	for i := 0; i < 3; i++ {
		measure() // warm: connections, planner calibration, allocator
	}
	var unloaded []float64
	for i := 0; i < 20; i++ {
		unloaded = append(unloaded, measure())
	}

	var mu latencies
	rounds := 15
	for r := 0; r < rounds; r++ {
		const offered = 2 // 2× the admission capacity of 1
		done := make(chan struct{})
		for i := 0; i < offered; i++ {
			go func() {
				defer func() { done <- struct{}{} }()
				start := time.Now()
				code, _, _, _ := post(t, srv.Client(), srv.URL, body, nil)
				if code == http.StatusOK {
					mu.add(time.Since(start).Seconds())
				} else if code != http.StatusTooManyRequests {
					t.Errorf("loaded request: status %d", code)
				}
			}()
		}
		for i := 0; i < offered; i++ {
			<-done
		}
	}
	admitted := mu.snapshot()
	if len(admitted) < 10 {
		t.Fatalf("only %d admitted completions across %d rounds", len(admitted), rounds)
	}
	p99Unloaded := stats.Percentile(unloaded, 99)
	p99Admitted := stats.Percentile(admitted, 99)
	t.Logf("unloaded p50/p90/p99 %.1f/%.1f/%.1fms; admitted p50/p90/p99 %.1f/%.1f/%.1fms",
		stats.Percentile(unloaded, 50)*1e3, stats.Percentile(unloaded, 90)*1e3, p99Unloaded*1e3,
		stats.Percentile(admitted, 50)*1e3, stats.Percentile(admitted, 90)*1e3, p99Admitted*1e3)
	if p99Admitted > 3*p99Unloaded {
		t.Fatalf("admitted p99 %.2fms exceeds 3× unloaded p99 %.2fms (%d samples)",
			p99Admitted*1e3, p99Unloaded*1e3, len(admitted))
	}
	t.Logf("p99 unloaded %.2fms, admitted under 2x load %.2fms (%d admitted)",
		p99Unloaded*1e3, p99Admitted*1e3, len(admitted))
}
