package gateway

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"swdual/internal/alphabet"
	"swdual/internal/master"
	"swdual/internal/seq"
)

// The HTTP/JSON surface of the gateway. Residues cross this boundary as
// ASCII in the backend database's alphabet; everything is validated
// here, before any admission slot is spent on malformed input, and
// every validation failure is a 4xx — the fuzz suite holds the decoder
// to that.

// SearchRequest is the POST /v1/search body.
type SearchRequest struct {
	// Queries are the sequences to compare against the database.
	Queries []Query `json:"queries"`
	// TopK bounds reported hits per query; 0 uses the server's TopK.
	// Values above the server's TopK are capped, never exceeded.
	TopK int `json:"top_k,omitempty"`
	// TimeoutMillis bounds the whole search; past it the request fails
	// with 504 and the backend stops planning work for it. It wins over
	// the Request-Timeout header when both are set.
	TimeoutMillis int64 `json:"timeout_ms,omitempty"`
}

// Query is one query sequence of a SearchRequest.
type Query struct {
	// ID labels the query in the response (defaults to q<index>).
	ID string `json:"id,omitempty"`
	// Residues are the ASCII residues in the database's alphabet.
	Residues string `json:"residues"`
}

// SearchResponse is the 200 body of POST /v1/search — and, with
// Coverage set, the 206 body of a degraded (partial-coverage) answer.
type SearchResponse struct {
	Results []QueryResult `json:"results"`
	Cells   int64         `json:"cells"`
	WallNS  int64         `json:"wall_ns"`
	// Coverage is present only on 206 answers: the backend searched some
	// database ranges but skipped others whose every replica was down.
	// Hits from searched ranges are exactly what a full search would
	// have reported for them.
	Coverage *Coverage `json:"coverage,omitempty"`
}

// Coverage is the 206 answer's partial-coverage block.
type Coverage struct {
	RangesSearched   int            `json:"ranges_searched"`
	RangesTotal      int            `json:"ranges_total"`
	ResiduesSearched int64          `json:"residues_searched"`
	ResiduesTotal    int64          `json:"residues_total"`
	Fraction         float64        `json:"fraction"` // searched share by residue volume, in [0,1]
	Skipped          []SkippedRange `json:"skipped,omitempty"`
}

// SkippedRange names one database range the degraded answer did not
// search.
type SkippedRange struct {
	Index  int    `json:"index"`
	Lo     int    `json:"lo"`
	Hi     int    `json:"hi"`
	Reason string `json:"reason,omitempty"`
}

// QueryResult carries one query's merged hits, in the same
// deterministic order every other entry point produces.
type QueryResult struct {
	ID     string `json:"id"`
	Worker string `json:"worker,omitempty"`
	Hits   []Hit  `json:"hits"`
}

// Hit is one database match.
type Hit struct {
	SeqIndex int    `json:"seq_index"`
	SeqID    string `json:"seq_id"`
	Score    int    `json:"score"`
}

// ErrorResponse is the body of every non-2xx answer.
type ErrorResponse struct {
	Error string `json:"error"`
	// RetryAfterSeconds mirrors the Retry-After header on 429 answers:
	// the estimated queue drain time, from the EWMA search latency.
	RetryAfterSeconds int `json:"retry_after_seconds,omitempty"`
}

// apiError is an error with an HTTP status. retryAfter > 0 adds the
// Retry-After header (shed answers).
type apiError struct {
	code       int
	msg        string
	retryAfter int
}

func (e *apiError) Error() string { return e.msg }

// decodeLimits bound what one request body may cost before the backend
// sees it.
type decodeLimits struct {
	maxBody     int64 // bytes of JSON accepted
	maxQueries  int   // queries per request
	maxResidues int   // summed residues per request
}

// decodeSearchRequest validates a POST /v1/search body into the
// backend's query set. Every failure is a 4xx apiError; the function
// never panics and never allocates beyond the (bounded) body it was
// handed — hostile bodies are the fuzz suite's subject.
func decodeSearchRequest(body []byte, alpha *alphabet.Alphabet, lim decodeLimits) (*seq.Set, *SearchRequest, *apiError) {
	if int64(len(body)) > lim.maxBody {
		return nil, nil, &apiError{code: http.StatusRequestEntityTooLarge,
			msg: fmt.Sprintf("request body %d bytes exceeds the %d-byte limit", len(body), lim.maxBody)}
	}
	var req SearchRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, nil, &apiError{code: http.StatusBadRequest, msg: "invalid JSON: " + err.Error()}
	}
	if len(req.Queries) == 0 {
		return nil, nil, &apiError{code: http.StatusBadRequest, msg: "no queries"}
	}
	if len(req.Queries) > lim.maxQueries {
		return nil, nil, &apiError{code: http.StatusRequestEntityTooLarge,
			msg: fmt.Sprintf("%d queries exceed the %d-query limit", len(req.Queries), lim.maxQueries)}
	}
	if req.TopK < 0 {
		return nil, nil, &apiError{code: http.StatusBadRequest, msg: fmt.Sprintf("negative top_k %d", req.TopK)}
	}
	if req.TimeoutMillis < 0 {
		return nil, nil, &apiError{code: http.StatusBadRequest, msg: fmt.Sprintf("negative timeout_ms %d", req.TimeoutMillis)}
	}
	total := 0
	for i := range req.Queries {
		n := len(req.Queries[i].Residues)
		if n == 0 {
			return nil, nil, &apiError{code: http.StatusBadRequest, msg: fmt.Sprintf("query %d: empty residues", i)}
		}
		total += n
		if total > lim.maxResidues {
			return nil, nil, &apiError{code: http.StatusRequestEntityTooLarge,
				msg: fmt.Sprintf("summed query residues exceed the %d-residue limit", lim.maxResidues)}
		}
	}
	set := seq.NewSet(alpha)
	for i := range req.Queries {
		id := req.Queries[i].ID
		if id == "" {
			id = "q" + strconv.Itoa(i)
		}
		if err := set.Add(id, "", []byte(req.Queries[i].Residues)); err != nil {
			return nil, nil, &apiError{code: http.StatusBadRequest, msg: fmt.Sprintf("query %d: %v", i, err)}
		}
	}
	return set, &req, nil
}

// parseTimeoutHeader reads the Request-Timeout header: a Go duration
// string ("500ms", "2s") or a bare integer meaning seconds. Empty means
// no header timeout.
func parseTimeoutHeader(v string) (time.Duration, *apiError) {
	if v == "" {
		return 0, nil
	}
	if secs, err := strconv.Atoi(v); err == nil {
		if secs < 0 {
			return 0, &apiError{code: http.StatusBadRequest, msg: "negative Request-Timeout"}
		}
		return time.Duration(secs) * time.Second, nil
	}
	d, err := time.ParseDuration(v)
	if err != nil || d < 0 {
		return 0, &apiError{code: http.StatusBadRequest, msg: fmt.Sprintf("invalid Request-Timeout %q", v)}
	}
	return d, nil
}

// encodeResponse maps a backend report onto the wire shape. Hits are
// copied field by field: the JSON layer owns its representation, the
// engine owns master.Hit.
func encodeResponse(queries *seq.Set, rep *master.Report) *SearchResponse {
	resp := &SearchResponse{Results: make([]QueryResult, len(rep.Results)), Cells: rep.Cells, WallNS: int64(rep.Wall)}
	for i, r := range rep.Results {
		qr := QueryResult{ID: queries.Seqs[i].ID, Worker: r.Worker, Hits: make([]Hit, len(r.Hits))}
		for j, h := range r.Hits {
			qr.Hits[j] = Hit{SeqIndex: h.SeqIndex, SeqID: h.SeqID, Score: h.Score}
		}
		resp.Results[i] = qr
	}
	if cov := rep.Coverage; cov != nil {
		resp.Coverage = &Coverage{
			RangesSearched:   cov.RangesSearched,
			RangesTotal:      cov.RangesTotal,
			ResiduesSearched: cov.ResiduesSearched,
			ResiduesTotal:    cov.ResiduesTotal,
			Fraction:         cov.Fraction(),
		}
		for _, sk := range cov.Skipped {
			resp.Coverage.Skipped = append(resp.Coverage.Skipped, SkippedRange{
				Index: sk.Index, Lo: sk.Lo, Hi: sk.Hi, Reason: sk.Reason,
			})
		}
	}
	return resp
}

// writeJSON writes v with the given status. Encoding errors are beyond
// repair at this point (headers are gone); they are ignored, matching
// net/http idiom.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck
}

// writeError renders an apiError, including the Retry-After header on
// shed answers so well-behaved clients back off by the gateway's own
// drain estimate.
func writeError(w http.ResponseWriter, e *apiError) {
	if e.retryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(e.retryAfter))
	}
	writeJSON(w, e.code, ErrorResponse{Error: e.msg, RetryAfterSeconds: e.retryAfter})
}
