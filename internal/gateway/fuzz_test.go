package gateway

import (
	"net/http"
	"strings"
	"testing"

	"swdual/internal/alphabet"
)

// FuzzSearchRequestJSON holds the decoder to its contract on hostile
// bodies: every rejection is a 4xx apiError with a message, acceptance
// yields a query set inside every configured limit, and nothing ever
// panics or allocates beyond the (bounded) body. The seed corpus is the
// unit suite's bodies — valid, malformed, and limit-probing.
func FuzzSearchRequestJSON(f *testing.F) {
	for _, seed := range []string{
		`{"queries":[{"id":"q0","residues":"MKVLAA"}],"top_k":3}`,
		`{"queries":[{"residues":"MKV"},{"residues":"ACDEFGHIKLMNPQRSTVWY"}],"timeout_ms":250}`,
		`{"queries":`,
		`{}`,
		`{"queries":[]}`,
		`{"queries":[{"residues":""}]}`,
		`{"queries":[{"residues":"NOT A PROTEIN 123!"}]}`,
		`{"queries":[{"residues":"MKV"}],"top_k":-1}`,
		`{"queries":[{"residues":"MKV"}],"timeout_ms":-5}`,
		`{"queries":[{"residues":"MKV","id":"` + strings.Repeat("x", 100) + `"}]}`,
		`{"queries":[{"residues":"` + strings.Repeat("M", 300) + `"}]}`,
		`[` + strings.Repeat(`[`, 64),
		`{"queries":[{"residues":"MKV","unknown":true}],"extra":{"a":[1,2,3]}}`,
		"\xff\xfe{\"queries\":[{\"residues\":\"MKV\"}]}",
		`"just a string"`,
		`null`,
		`{"queries":[null]}`,
		`{"queries":[{"residues":null}]}`,
	} {
		f.Add([]byte(seed))
	}
	lim := decodeLimits{maxBody: 1 << 16, maxQueries: 16, maxResidues: 1 << 12}
	f.Fuzz(func(t *testing.T, body []byte) {
		set, req, apiErr := decodeSearchRequest(body, alphabet.Protein, lim)
		if apiErr != nil {
			if apiErr.code < 400 || apiErr.code > 499 {
				t.Fatalf("decode error escaped the 4xx range: %d %q", apiErr.code, apiErr.msg)
			}
			if apiErr.msg == "" {
				t.Fatal("4xx with an empty message")
			}
			if set != nil || req != nil {
				t.Fatal("decoder returned a result alongside an error")
			}
			return
		}
		if set == nil || req == nil {
			t.Fatal("decoder returned neither result nor error")
		}
		if set.Len() == 0 || set.Len() > lim.maxQueries {
			t.Fatalf("accepted query set of size %d outside (0, %d]", set.Len(), lim.maxQueries)
		}
		total := 0
		for i := range set.Seqs {
			if set.Seqs[i].ID == "" {
				t.Fatalf("query %d accepted without an ID", i)
			}
			total += len(set.Seqs[i].Residues)
		}
		if total > lim.maxResidues {
			t.Fatalf("accepted %d residues over the %d limit", total, lim.maxResidues)
		}
		if req.TopK < 0 || req.TimeoutMillis < 0 {
			t.Fatalf("accepted negative knobs: %+v", req)
		}
	})
}

// TestTimeoutHeaderParsing pins the Request-Timeout grammar: bare
// integers are seconds, Go durations pass through, and anything else —
// including negatives — is a 400.
func TestTimeoutHeaderParsing(t *testing.T) {
	for _, c := range []struct {
		in   string
		want int64 // milliseconds; -1 means reject
	}{
		{"", 0},
		{"2", 2000},
		{"500ms", 500},
		{"1.5s", 1500},
		{"0", 0},
		{"-1", -1},
		{"-500ms", -1},
		{"soon", -1},
		{"1h30m", 90 * 60 * 1000},
	} {
		d, apiErr := parseTimeoutHeader(c.in)
		if c.want == -1 {
			if apiErr == nil {
				t.Fatalf("%q accepted as %v", c.in, d)
			}
			if apiErr.code != http.StatusBadRequest {
				t.Fatalf("%q rejected with %d, want 400", c.in, apiErr.code)
			}
			continue
		}
		if apiErr != nil {
			t.Fatalf("%q rejected: %v", c.in, apiErr)
		}
		if d.Milliseconds() != c.want {
			t.Fatalf("%q parsed as %v, want %dms", c.in, d, c.want)
		}
	}
}
