package gateway

import (
	"bytes"
	"context"
	"io"
	"math"
	"net/http"
	"strings"
	"testing"

	"swdual/internal/alphabet"
	"swdual/internal/engine"
	"swdual/internal/master"
	"swdual/internal/seq"
	"swdual/internal/synth"
)

// coverBackend delegates to a real engine and, when armed, stamps a
// Coverage onto the answer — exactly what a degraded sharded
// coordinator hands the gateway, minus the cluster.
type coverBackend struct {
	engine.Backend
	cov *master.Coverage
}

func (b *coverBackend) Search(ctx context.Context, queries *seq.Set, opts engine.SearchOptions) (*master.Report, error) {
	rep, err := b.Backend.Search(ctx, queries, opts)
	if err == nil && b.cov != nil {
		rep.Coverage = b.cov.Clone()
	}
	return rep, err
}

// scrape fetches /metrics and returns the exposition text.
func scrape(t *testing.T, srv interface{ Client() *http.Client }, url string) string {
	t.Helper()
	resp, err := srv.Client().Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %d (%s)", resp.StatusCode, raw)
	}
	return string(raw)
}

// TestGatewayAnswers206WithCoverage drives a degraded answer through
// the HTTP layer: status 206, hits byte-identical to the backend's
// report, a coverage block carrying the exact counts and reasons, the
// Degraded counter, and both Prometheus counters. Then the same
// backend answers full again and everything about the response —
// status, body shape — snaps back, with no coverage key at all.
func TestGatewayAnswers206WithCoverage(t *testing.T) {
	db := testDB(20, 980)
	e := testEngine(t, db)
	be := &coverBackend{Backend: e, cov: &master.Coverage{
		RangesSearched: 3, RangesTotal: 4,
		ResiduesSearched: 750, ResiduesTotal: 1000,
		Skipped: []master.SkippedRange{{Index: 2, Lo: 10, Hi: 15, Reason: "all 2 replicas unavailable: injected"}},
	}}
	g, srv := newTestGateway(t, be, Config{Capacity: 2, Queue: 2, ClientSlots: 100})
	queries := synth.RandomSet(alphabet.Protein, 2, 20, 60, 981)
	body := queriesJSON(t, queries, 0)

	want, err := e.Search(t.Context(), queries, engine.SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}

	code, resp, raw, _ := post(t, srv.Client(), srv.URL, body, nil)
	if code != http.StatusPartialContent {
		t.Fatalf("degraded answer status %d (%s), want 206", code, raw)
	}
	sameHits(t, "degraded", resp, want)
	cov := resp.Coverage
	if cov == nil {
		t.Fatalf("206 body has no coverage block: %s", raw)
	}
	if cov.RangesSearched != 3 || cov.RangesTotal != 4 || cov.ResiduesSearched != 750 || cov.ResiduesTotal != 1000 {
		t.Fatalf("coverage %+v", cov)
	}
	if math.Abs(cov.Fraction-0.75) > 1e-9 {
		t.Fatalf("coverage fraction %v, want 0.75", cov.Fraction)
	}
	if len(cov.Skipped) != 1 {
		t.Fatalf("%d skipped ranges, want 1", len(cov.Skipped))
	}
	sk := cov.Skipped[0]
	if sk.Index != 2 || sk.Lo != 10 || sk.Hi != 15 || !strings.Contains(sk.Reason, "injected") {
		t.Fatalf("skipped range %+v", sk)
	}
	if c := g.Counters(); c.Degraded != 1 || c.Completed != 1 || c.Failed != 0 {
		t.Fatalf("counters after 206: %+v", c)
	}
	metrics := scrape(t, srv, srv.URL)
	if !strings.Contains(metrics, "swdual_gateway_degraded_total 1\n") {
		t.Fatalf("metrics missing the gateway degraded counter:\n%s", metrics)
	}
	if !strings.Contains(metrics, "swdual_engine_degraded_searches_total ") {
		t.Fatalf("metrics missing the engine degraded counter:\n%s", metrics)
	}

	// Recovery: disarm the coverage and the very same request is a plain
	// 200 whose body does not even mention coverage.
	be.cov = nil
	code, resp, raw, _ = post(t, srv.Client(), srv.URL, body, nil)
	if code != http.StatusOK {
		t.Fatalf("recovered answer status %d, want 200", code)
	}
	sameHits(t, "recovered", resp, want)
	if resp.Coverage != nil {
		t.Fatalf("full answer carries coverage: %+v", resp.Coverage)
	}
	if bytes.Contains(raw, []byte(`"coverage"`)) {
		t.Fatalf("full answer body mentions coverage: %s", raw)
	}
	if c := g.Counters(); c.Degraded != 1 || c.Completed != 2 {
		t.Fatalf("counters after recovery: %+v", c)
	}
}
