// Package gateway is the cluster's HTTP front door: an HTTP/JSON
// surface over any engine.Backend — the in-process Searcher, the
// sharded scatter/gather, or a replicated cluster coordinator — with
// the admission control the trusted-peer wire protocol never needed.
//
// Under overload a naive HTTP server accepts every connection and lets
// goroutines pile up behind the dispatcher until latency, memory, and
// finally goodput collapse. The gateway instead bounds its admission
// queue and sheds early: Capacity searches execute concurrently,
// Queue more may wait, and past that arrivals are rejected immediately
// with 429 and a Retry-After computed from the live EWMA search
// latency — the same estimator shape the replica hedger uses
// (stats.LatencyEWMA) applied to the drain rate of the queue. A
// per-client slot bound (API key, else remote address) keeps one
// client from occupying the whole queue, so overload by one tenant
// degrades that tenant, not everyone.
//
// Client deadlines (Request-Timeout header or the timeout_ms body
// field) propagate into the search context, and the engine's wave
// planner drops dead requests before they reach a worker queue — a
// caller that gave up never costs compute.
//
// Endpoints:
//
//	POST /v1/search   search the database (JSON body, see SearchRequest)
//	GET  /v1/stats    gateway counters + engine.Stats as JSON
//	GET  /healthz     200 while serving, 503 once Close began
//	GET  /metrics     Prometheus text format
package gateway

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"swdual/internal/engine"
	"swdual/internal/stats"
)

// Config tunes a Gateway. The zero value works: capacity scaled to the
// host, a 4× admission queue, per-client fairness at a quarter of the
// total slots.
type Config struct {
	// Capacity bounds concurrently executing searches (default
	// 2×GOMAXPROCS, minimum 1). Requests beyond it wait in the
	// admission queue.
	Capacity int
	// Queue bounds how many admitted requests may wait for an execution
	// slot (default 4×Capacity; negative means no queue at all). An
	// arrival finding Capacity+Queue slots held is shed with 429 instead
	// of waiting — early rejection is what keeps goodput flat when
	// offered load keeps rising.
	Queue int
	// ClientSlots bounds the slots (executing + waiting) one client may
	// hold at once (default: a quarter of Capacity+Queue, minimum 1). A
	// client is its X-API-Key header, else its remote address.
	ClientSlots int
	// DefaultTimeout is applied to searches whose client sent no
	// deadline (0 = none).
	DefaultTimeout time.Duration
	// MaxBodyBytes bounds the request body (default 8 MiB).
	MaxBodyBytes int64
	// MaxQueries bounds queries per request (default 1024, the engine's
	// default wave cap).
	MaxQueries int
	// MaxQueryResidues bounds the summed query length per request
	// (default 1<<20).
	MaxQueryResidues int
	// DBMappedBytes is the size of the memory-mapped database file
	// behind the backend, exported as swdual_process_db_mapped_bytes (0
	// when the database is heap-backed). The gateway only reports it;
	// the mapping's lifecycle belongs to whoever opened it.
	DBMappedBytes int64
}

func (c *Config) defaults() {
	if c.Capacity == 0 {
		c.Capacity = 2 * runtime.GOMAXPROCS(0)
	}
	if c.Capacity < 1 {
		c.Capacity = 1
	}
	switch {
	case c.Queue == 0:
		c.Queue = 4 * c.Capacity
	case c.Queue < 0:
		c.Queue = 0 // explicit "no queue": execute or shed
	}
	if c.ClientSlots == 0 {
		c.ClientSlots = (c.Capacity + c.Queue) / 4
	}
	if c.ClientSlots < 1 {
		c.ClientSlots = 1
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.MaxQueries == 0 {
		c.MaxQueries = 1024
	}
	if c.MaxQueryResidues == 0 {
		c.MaxQueryResidues = 1 << 20
	}
}

// Counters is a snapshot of the gateway's own accounting (the engine's
// counters ride along separately via Stats).
type Counters struct {
	// Admitted counts requests that reached an execution slot; Shed*
	// count early 429 rejections (ShedQueue: admission queue full,
	// ShedClient: per-client slot bound). Admitted + sheds + malformed
	// 4xx = every POST /v1/search ever answered.
	Admitted   uint64 `json:"admitted"`
	ShedQueue  uint64 `json:"shed_queue"`
	ShedClient uint64 `json:"shed_client"`
	// Completed counts 2xx answers (200 full + 206 partial); Degraded
	// counts the 206 subset — partial-coverage answers from a backend
	// riding over dark ranges. Failed counts backend errors (5xx);
	// TimedOut counts propagated-deadline 504s; ClientGone counts
	// requests whose client disconnected before the answer (their
	// search ctx was canceled — no status was writable).
	Completed  uint64 `json:"completed"`
	Degraded   uint64 `json:"degraded"`
	Failed     uint64 `json:"failed"`
	TimedOut   uint64 `json:"timed_out"`
	ClientGone uint64 `json:"client_gone"`
	// InFlight is the executing-search gauge, QueueDepth the waiting
	// gauge; InFlight+QueueDepth slots are held of
	// Capacity+Queue.
	InFlight   int `json:"in_flight"`
	QueueDepth int `json:"queue_depth"`
	// LatencyMeanNS is the EWMA of completed search latency — the
	// number Retry-After estimates drain time from (0 until the first
	// completion).
	LatencyMeanNS int64 `json:"latency_mean_ns"`
}

// Gateway is the HTTP front door over one backend. It implements
// http.Handler; Close makes it refuse new work, fail waiting requests
// with 503, and block until executing searches drained. The Gateway
// does not own the backend — close the backend after the Gateway.
type Gateway struct {
	cfg Config
	be  engine.Backend
	mux *http.ServeMux

	sem chan struct{} // execution tokens (len == executing searches)

	mu       sync.Mutex
	cond     *sync.Cond // broadcast on slot release; Close waits on it
	held     int        // admission slots held (waiting + executing)
	byClient map[string]int
	closing  bool

	closed    chan struct{} // closes when Close begins; queue waiters stop waiting
	closeOnce sync.Once

	lat stats.LatencyEWMA

	admitted   atomic.Uint64
	shedQueue  atomic.Uint64
	shedClient atomic.Uint64
	completed  atomic.Uint64
	degraded   atomic.Uint64
	failed     atomic.Uint64
	timedOut   atomic.Uint64
	clientGone atomic.Uint64
}

// New builds a Gateway over the backend. Negative limits are rejected;
// zeros select defaults.
func New(be engine.Backend, cfg Config) (*Gateway, error) {
	if be == nil {
		return nil, fmt.Errorf("gateway: nil backend")
	}
	if cfg.Capacity < 0 || cfg.ClientSlots < 0 {
		return nil, fmt.Errorf("gateway: negative admission bound (capacity %d, client slots %d)",
			cfg.Capacity, cfg.ClientSlots)
	}
	if cfg.MaxBodyBytes < 0 || cfg.MaxQueries < 0 || cfg.MaxQueryResidues < 0 {
		return nil, fmt.Errorf("gateway: negative request limit (body %d, queries %d, residues %d)",
			cfg.MaxBodyBytes, cfg.MaxQueries, cfg.MaxQueryResidues)
	}
	if cfg.DefaultTimeout < 0 {
		return nil, fmt.Errorf("gateway: negative DefaultTimeout %v", cfg.DefaultTimeout)
	}
	cfg.defaults()
	g := &Gateway{
		cfg:      cfg,
		be:       be,
		sem:      make(chan struct{}, cfg.Capacity),
		byClient: make(map[string]int),
		closed:   make(chan struct{}),
	}
	g.cond = sync.NewCond(&g.mu)
	g.mux = http.NewServeMux()
	g.mux.HandleFunc("/v1/search", g.handleSearch)
	g.mux.HandleFunc("/v1/stats", g.handleStats)
	g.mux.HandleFunc("/healthz", g.handleHealthz)
	g.mux.HandleFunc("/metrics", g.handleMetrics)
	return g, nil
}

// ServeHTTP dispatches to the gateway's endpoints.
func (g *Gateway) ServeHTTP(w http.ResponseWriter, r *http.Request) { g.mux.ServeHTTP(w, r) }

// Serve answers HTTP on l until the listener closes (returns nil then).
func (g *Gateway) Serve(l net.Listener) error {
	err := http.Serve(l, g)
	if errors.Is(err, net.ErrClosed) {
		return nil
	}
	return err
}

// Close stops admission: new requests get 503, requests waiting for an
// execution slot fail with 503, and Close blocks until every executing
// search drained. Idempotent and safe to call concurrently; the
// backend is left open (the Gateway never owned it).
func (g *Gateway) Close() error {
	g.mu.Lock()
	g.closing = true
	g.mu.Unlock()
	g.closeOnce.Do(func() { close(g.closed) })
	g.mu.Lock()
	for g.held > 0 {
		g.cond.Wait()
	}
	g.mu.Unlock()
	return nil
}

// Counters snapshots the gateway's accounting.
func (g *Gateway) Counters() Counters {
	g.mu.Lock()
	held := g.held
	g.mu.Unlock()
	executing := len(g.sem)
	queued := held - executing
	if queued < 0 {
		// held and len(sem) are read without a common lock; clamp the
		// transient skew rather than reporting a negative queue.
		queued = 0
	}
	mean, _ := g.lat.Snapshot()
	return Counters{
		Admitted:      g.admitted.Load(),
		ShedQueue:     g.shedQueue.Load(),
		ShedClient:    g.shedClient.Load(),
		Completed:     g.completed.Load(),
		Degraded:      g.degraded.Load(),
		Failed:        g.failed.Load(),
		TimedOut:      g.timedOut.Load(),
		ClientGone:    g.clientGone.Load(),
		InFlight:      executing,
		QueueDepth:    queued,
		LatencyMeanNS: int64(mean),
	}
}

// clientKey identifies the fairness bucket of a request: the API key
// when one is presented, else the remote host (without the ephemeral
// port, so one misbehaving process is one bucket, not thousands).
func clientKey(r *http.Request) string {
	if k := r.Header.Get("X-API-Key"); k != "" {
		return "key:" + k
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return "addr:" + r.RemoteAddr
	}
	return "addr:" + host
}

// maxRetryAfterSeconds caps the Retry-After estimate at an hour: past
// that the number carries no information a client can act on, and the
// cap keeps the float64 product below anything an int conversion could
// mangle.
const maxRetryAfterSeconds = 3600

// retryAfter estimates, in whole seconds, how long until a shed client
// plausibly finds a free slot: the held slots drain through Capacity
// parallel executors at the EWMA search latency. The estimate is
// clamped to [1, maxRetryAfterSeconds] — cold start (no completions
// yet, so an empty EWMA) must never produce "Retry-After: 0", which
// well-behaved clients read as an invitation to hammer the gateway
// that is already shedding them, and a huge queue over a slow backend
// must not overflow through the int conversion into a negative header.
func (g *Gateway) retryAfter(held int) int {
	mean, n := g.lat.Snapshot()
	if n == 0 || mean <= 0 {
		mean = time.Second
	}
	rounds := held/g.cfg.Capacity + 1
	est := math.Ceil(float64(rounds) * mean.Seconds())
	if est > maxRetryAfterSeconds {
		return maxRetryAfterSeconds
	}
	secs := int(est)
	if secs < 1 {
		secs = 1
	}
	return secs
}

// admit runs admission control for one search: take an admission slot
// (shedding with 429 if the queue or the client's share is full), then
// wait for an execution token. On success the caller runs with both
// and must call the returned release. On failure the apiError says
// what to answer — except when the client's ctx died first, where
// there is nobody left to answer (nil, nil).
func (g *Gateway) admit(ctx context.Context, client string) (release func(), apiErr *apiError) {
	g.mu.Lock()
	if g.closing {
		g.mu.Unlock()
		return nil, &apiError{code: http.StatusServiceUnavailable, msg: "gateway shutting down"}
	}
	if g.held >= g.cfg.Capacity+g.cfg.Queue {
		held := g.held
		g.mu.Unlock()
		g.shedQueue.Add(1)
		return nil, &apiError{code: http.StatusTooManyRequests,
			msg:        "overloaded: admission queue full",
			retryAfter: g.retryAfter(held)}
	}
	if g.byClient[client] >= g.cfg.ClientSlots {
		held := g.held
		g.mu.Unlock()
		g.shedClient.Add(1)
		return nil, &apiError{code: http.StatusTooManyRequests,
			msg:        "overloaded: per-client slot limit reached",
			retryAfter: g.retryAfter(held)}
	}
	g.held++
	g.byClient[client]++
	g.mu.Unlock()

	select {
	case g.sem <- struct{}{}:
		g.admitted.Add(1)
		return func() {
			<-g.sem
			g.releaseSlot(client)
		}, nil
	case <-g.closed:
		g.releaseSlot(client)
		return nil, &apiError{code: http.StatusServiceUnavailable, msg: "gateway shutting down"}
	case <-ctx.Done():
		g.releaseSlot(client)
		g.clientGone.Add(1)
		return nil, nil // the client hung up while queued; nothing to answer
	}
}

func (g *Gateway) releaseSlot(client string) {
	g.mu.Lock()
	g.held--
	if g.byClient[client]--; g.byClient[client] <= 0 {
		delete(g.byClient, client)
	}
	g.cond.Broadcast()
	g.mu.Unlock()
}

func (g *Gateway) handleSearch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, &apiError{code: http.StatusMethodNotAllowed, msg: "POST only"})
		return
	}
	hdrTimeout, apiErr := parseTimeoutHeader(r.Header.Get("Request-Timeout"))
	if apiErr != nil {
		writeError(w, apiErr)
		return
	}
	// Admission runs before the body is read: shedding must stay cheap,
	// or the shed path itself collapses under the load it exists to
	// survive.
	release, apiErr := g.admit(r.Context(), clientKey(r))
	if apiErr != nil {
		writeError(w, apiErr)
		return
	}
	if release == nil {
		return // client disconnected while queued
	}
	defer release()

	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, g.cfg.MaxBodyBytes))
	if err != nil {
		writeError(w, &apiError{code: http.StatusRequestEntityTooLarge, msg: "request body too large or unreadable"})
		return
	}
	queries, req, apiErr := decodeSearchRequest(body, g.be.Alphabet(), decodeLimits{
		maxBody:     g.cfg.MaxBodyBytes,
		maxQueries:  g.cfg.MaxQueries,
		maxResidues: g.cfg.MaxQueryResidues,
	})
	if apiErr != nil {
		writeError(w, apiErr)
		return
	}

	// Deadline: body field wins, then header, then the server default.
	// The ctx descends from the request's, so a client disconnect
	// cancels the search all the way into the wave planner.
	timeout := time.Duration(req.TimeoutMillis) * time.Millisecond
	if timeout == 0 {
		timeout = hdrTimeout
	}
	if timeout == 0 {
		timeout = g.cfg.DefaultTimeout
	}
	ctx := r.Context()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	start := time.Now()
	rep, err := g.be.Search(ctx, queries, engine.SearchOptions{TopK: req.TopK})
	switch {
	case err == nil:
		g.lat.Observe(time.Since(start))
		g.completed.Add(1)
		// A degraded backend answer is a 206: the body is the usual
		// response plus the coverage block, so clients that only check
		// for 2xx still work while coverage-aware ones see exactly what
		// was skipped. Full answers stay 200, byte-identical to a
		// gateway that never heard of degraded mode.
		status := http.StatusOK
		if rep.Coverage != nil {
			status = http.StatusPartialContent
			g.degraded.Add(1)
		}
		writeJSON(w, status, encodeResponse(queries, rep))
	case errors.Is(err, context.DeadlineExceeded):
		g.timedOut.Add(1)
		writeError(w, &apiError{code: http.StatusGatewayTimeout, msg: "search deadline exceeded"})
	case r.Context().Err() != nil:
		g.clientGone.Add(1) // nobody is listening for a status
	case errors.Is(err, engine.ErrClosed):
		g.failed.Add(1)
		writeError(w, &apiError{code: http.StatusServiceUnavailable, msg: "search backend closed"})
	default:
		g.failed.Add(1)
		writeError(w, &apiError{code: http.StatusInternalServerError, msg: err.Error()})
	}
}

// statsResponse is the GET /v1/stats body: the gateway's own counters
// next to the backend's cumulative engine.Stats.
type statsResponse struct {
	Gateway Counters     `json:"gateway"`
	Engine  engine.Stats `json:"engine"`
}

func (g *Gateway) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, &apiError{code: http.StatusMethodNotAllowed, msg: "GET only"})
		return
	}
	writeJSON(w, http.StatusOK, statsResponse{Gateway: g.Counters(), Engine: g.be.Stats()})
}

func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	g.mu.Lock()
	closing := g.closing
	g.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if closing {
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, "closing\n") //nolint:errcheck
		return
	}
	io.WriteString(w, "ok\n") //nolint:errcheck
}
