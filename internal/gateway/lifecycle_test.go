package gateway

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"

	"swdual/internal/alphabet"
	"swdual/internal/synth"
)

// TestCloseIdempotentConcurrent races several Close calls: all must
// return, and afterwards the gateway refuses work with 503 on every
// surface.
func TestCloseIdempotentConcurrent(t *testing.T) {
	g, srv := newTestGateway(t, testEngine(t, testDB(20, 980)), Config{Capacity: 2})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := g.Close(); err != nil {
				t.Errorf("Close: %v", err)
			}
		}()
	}
	wg.Wait()

	body := queriesJSON(t, synth.RandomSet(alphabet.Protein, 1, 20, 40, 981), 0)
	if code, _, raw, _ := post(t, srv.Client(), srv.URL, body, nil); code != http.StatusServiceUnavailable {
		t.Fatalf("search after Close: %d (%s), want 503", code, raw)
	}
	resp, err := srv.Client().Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hb, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || string(hb) != "closing\n" {
		t.Fatalf("healthz after Close: %d %q", resp.StatusCode, hb)
	}
}

// TestCloseDrainsInFlight pins one search at the gate and queues a
// second, then starts Close: the queued request must fail 503 without
// ever reaching the backend, new arrivals must shed 503, the executing
// search must finish 200, and only then may Close return.
func TestCloseDrainsInFlight(t *testing.T) {
	be := newGateBackend(testEngine(t, testDB(20, 985)))
	g, srv := newTestGateway(t, be, Config{Capacity: 1, Queue: 4, ClientSlots: 8})
	body := queriesJSON(t, synth.RandomSet(alphabet.Protein, 1, 20, 40, 986), 0)

	executing := make(chan int, 1)
	go func() {
		code, _, _, _ := post(t, srv.Client(), srv.URL, body, nil)
		executing <- code
	}()
	<-be.started // the search holds the only execution token, pinned

	queued := make(chan int, 1)
	go func() {
		code, _, _, _ := post(t, srv.Client(), srv.URL, body, nil)
		queued <- code
	}()
	waitFor(t, "second request queued", func() bool { return heldSlots(g) == 2 })

	closeDone := make(chan struct{})
	go func() {
		g.Close()
		close(closeDone)
	}()
	// Close fails the queued waiter immediately; the pinned search keeps
	// Close blocked.
	if code := <-queued; code != http.StatusServiceUnavailable {
		t.Fatalf("queued request during Close: %d, want 503", code)
	}
	if code, _, _, _ := post(t, srv.Client(), srv.URL, body, nil); code != http.StatusServiceUnavailable {
		t.Fatalf("new request during Close: %d, want 503", code)
	}
	select {
	case <-closeDone:
		t.Fatal("Close returned while a search was executing")
	default:
	}

	be.release <- struct{}{}
	if code := <-executing; code != http.StatusOK {
		t.Fatalf("in-flight search during Close: %d, want 200", code)
	}
	<-closeDone
	if c := g.Counters(); c.InFlight != 0 || c.QueueDepth != 0 || c.Completed != 1 {
		t.Fatalf("after drained Close: %+v", c)
	}
}

// TestClientDisconnectCancelsSearch hangs a search at the gate and
// drops the client: the backend's ctx must die (the wave planner will
// then never plan the work) and the gateway must account a clientGone,
// not a failure.
func TestClientDisconnectCancelsSearch(t *testing.T) {
	be := newGateBackend(testEngine(t, testDB(20, 990)))
	g, srv := newTestGateway(t, be, Config{Capacity: 2})
	body := queriesJSON(t, synth.RandomSet(alphabet.Protein, 1, 20, 40, 991), 0)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, srv.URL+"/v1/search", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		resp, err := srv.Client().Do(req)
		if err == nil {
			resp.Body.Close()
		}
		errc <- err
	}()

	sctx := <-be.started // the search is executing, pinned at the gate
	cancel()             // client walks away
	if err := <-errc; err == nil {
		t.Fatal("client Do returned no error after cancel")
	}
	waitFor(t, "backend ctx canceled", func() bool { return sctx.Err() != nil })
	waitFor(t, "clientGone accounted", func() bool { return g.Counters().ClientGone == 1 })
	waitFor(t, "slots released", func() bool { return heldSlots(g) == 0 })
	if c := g.Counters(); c.Failed != 0 || c.Completed != 0 {
		t.Fatalf("disconnect accounted as search outcome: %+v", c)
	}
}

// TestNoGoroutineLeakAfterBurst fires a 100-request burst (some
// admitted, some shed) and requires the process to come back to its
// pre-burst goroutine count once the burst's connections are closed.
func TestNoGoroutineLeakAfterBurst(t *testing.T) {
	g, err := New(testEngine(t, testDB(30, 995)), Config{Capacity: 4, Queue: 8, ClientSlots: 200})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(g)
	defer srv.Close()
	defer g.Close()
	tr := &http.Transport{}
	client := &http.Client{Transport: tr}
	defer tr.CloseIdleConnections()
	body := queriesJSON(t, synth.RandomSet(alphabet.Protein, 1, 20, 40, 996), 0)

	do := func() int {
		code, _, _, _ := post(t, client, srv.URL, body, nil)
		return code
	}
	if code := do(); code != http.StatusOK {
		t.Fatalf("warm request: %d", code)
	}
	tr.CloseIdleConnections()
	baseline, prev := 0, -1
	waitFor(t, "goroutine baseline to settle", func() bool {
		runtime.GC()
		n := runtime.NumGoroutine()
		stable := n == prev
		prev, baseline = n, n
		return stable // two consecutive equal readings
	})

	var wg sync.WaitGroup
	codes := make(chan int, 100)
	for i := 0; i < 100; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			codes <- do()
		}()
	}
	wg.Wait()
	close(codes)
	ok, shed := 0, 0
	for code := range codes {
		switch code {
		case http.StatusOK:
			ok++
		case http.StatusTooManyRequests:
			shed++
		default:
			t.Fatalf("burst request answered %d", code)
		}
	}
	if ok == 0 {
		t.Fatal("burst: nothing admitted")
	}
	t.Logf("burst: %d completed, %d shed", ok, shed)

	tr.CloseIdleConnections()
	waitFor(t, "goroutines back to baseline", func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= baseline
	})
}
