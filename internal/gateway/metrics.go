package gateway

import (
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"time"
)

// GET /metrics renders the gateway's counters and the backend's
// engine.Stats in the Prometheus text exposition format — hand-rolled,
// because the format is three lines per metric and a client library is
// a dependency this module doesn't carry.

// promEscape escapes a label value per the exposition format.
var promEscape = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

type promWriter struct {
	w io.Writer
}

func (p promWriter) counter(name, help string, v uint64) {
	fmt.Fprintf(p.w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
}

func (p promWriter) gauge(name, help string, v float64) {
	fmt.Fprintf(p.w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
}

func (p promWriter) labeledHeader(name, help, typ string) {
	fmt.Fprintf(p.w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

func (p promWriter) labeled(name, worker string, v float64) {
	fmt.Fprintf(p.w, "%s{worker=\"%s\"} %g\n", name, promEscape.Replace(worker), v)
}

func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, &apiError{code: http.StatusMethodNotAllowed, msg: "GET only"})
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	p := promWriter{w: w}
	c := g.Counters()
	p.counter("swdual_gateway_admitted_total", "Requests that reached an execution slot.", c.Admitted)
	p.counter("swdual_gateway_shed_queue_total", "Requests rejected with 429 because the admission queue was full.", c.ShedQueue)
	p.counter("swdual_gateway_shed_client_total", "Requests rejected with 429 by the per-client slot bound.", c.ShedClient)
	p.counter("swdual_gateway_completed_total", "Searches answered 2xx (200 full plus 206 partial).", c.Completed)
	p.counter("swdual_gateway_degraded_total", "Searches answered 206 with partial database coverage.", c.Degraded)
	p.counter("swdual_gateway_failed_total", "Searches failed by the backend (5xx).", c.Failed)
	p.counter("swdual_gateway_timed_out_total", "Searches that hit their propagated deadline (504).", c.TimedOut)
	p.counter("swdual_gateway_client_gone_total", "Requests whose client disconnected before the answer.", c.ClientGone)
	p.gauge("swdual_gateway_in_flight", "Searches executing right now.", float64(c.InFlight))
	p.gauge("swdual_gateway_queue_depth", "Admitted requests waiting for an execution slot.", float64(c.QueueDepth))
	p.gauge("swdual_gateway_latency_mean_seconds", "EWMA of completed search latency (drives Retry-After).", time.Duration(c.LatencyMeanNS).Seconds())

	st := g.be.Stats()
	p.gauge("swdual_engine_db_sequences", "Sequences in the prepared database.", float64(st.DBSequences))
	p.gauge("swdual_engine_db_residues", "Residues in the prepared database.", float64(st.DBResidues))
	p.counter("swdual_engine_searches_total", "Search calls served by the backend.", st.Searches)
	p.counter("swdual_engine_queries_total", "Queries served by the backend.", st.Queries)
	p.counter("swdual_engine_waves_total", "Scheduling waves dispatched.", st.Waves)
	p.counter("swdual_engine_batched_waves_total", "Waves that coalesced more than one request.", st.BatchedWaves)
	p.counter("swdual_engine_pipelined_waves_total", "Waves planned while the previous wave executed.", st.PipelinedWaves)
	p.counter("swdual_engine_cache_hits_total", "Result-cache hits.", st.CacheHits)
	p.counter("swdual_engine_cache_misses_total", "Result-cache misses.", st.CacheMisses)
	p.counter("swdual_engine_cache_evictions_total", "Result-cache evictions.", st.CacheEvictions)
	p.counter("swdual_engine_collapsed_searches_total", "Searches answered as singleflight followers.", st.CollapsedSearches)
	p.counter("swdual_engine_hedged_searches_total", "Searches hedged on a second replica.", st.HedgedSearches)
	p.counter("swdual_engine_failed_over_total", "Calls retried on a sibling replica after a lost connection.", st.FailedOver)
	p.counter("swdual_engine_redials_total", "Dead replicas revived by the background reconnect loop.", st.Redials)
	p.counter("swdual_engine_degraded_searches_total", "Searches answered with partial coverage because a range had no live replica.", st.DegradedSearches)

	// Process-level memory accounting: with a mapped .swdb the corpus
	// lives outside the Go heap, and these three gauges are how an
	// operator sees that split — heap shrinks, mapped bytes appear, GC
	// pause growth slows.
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	p.gauge("swdual_process_heap_inuse_bytes", "Bytes in in-use heap spans (runtime.MemStats.HeapInuse).", float64(ms.HeapInuse))
	p.counter("swdual_process_gc_pauses_total", "Completed GC cycles, each with a stop-the-world pause (runtime.MemStats.NumGC).", uint64(ms.NumGC))
	p.gauge("swdual_process_db_mapped_bytes", "Bytes of database file memory-mapped into this process (0 when heap-backed).", float64(g.cfg.DBMappedBytes))

	p.labeledHeader("swdual_worker_observed_gcups", "Live EWMA throughput per worker.", "gauge")
	for _, wr := range st.Workers {
		p.labeled("swdual_worker_observed_gcups", wr.Name, wr.ObservedGCUPS)
	}
	p.labeledHeader("swdual_worker_tasks_total", "Completed tasks per worker.", "counter")
	for _, wr := range st.Workers {
		p.labeled("swdual_worker_tasks_total", wr.Name, float64(wr.Tasks))
	}
}
