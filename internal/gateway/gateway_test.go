package gateway

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"swdual/internal/alphabet"
	"swdual/internal/engine"
	"swdual/internal/master"
	"swdual/internal/replica"
	"swdual/internal/seq"
	"swdual/internal/shard"
	"swdual/internal/synth"
)

// waitFor polls cond until it holds or the deadline passes — a bounded
// convergence loop on observable state, never a fixed sleep, so every
// test in this package is deterministic in outcome.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func testDB(n int, seed int64) *seq.Set {
	return synth.RandomSet(alphabet.Protein, n, 10, 80, seed)
}

func testEngine(t *testing.T, db *seq.Set) *engine.Searcher {
	t.Helper()
	e, err := engine.New(db, engine.Config{CPUs: 2, GPUs: 0, TopK: 5})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

// gateBackend wraps a real backend but holds every Search at the gate:
// each call announces its ctx on started, then waits for one release
// token (or its ctx to die) before delegating. Tests use it to pin the
// gateway's execution slots open deterministically.
type gateBackend struct {
	engine.Backend
	started chan context.Context
	release chan struct{}
}

func newGateBackend(inner engine.Backend) *gateBackend {
	return &gateBackend{
		Backend: inner,
		started: make(chan context.Context, 1024),
		release: make(chan struct{}, 1024),
	}
}

func (b *gateBackend) Search(ctx context.Context, queries *seq.Set, opts engine.SearchOptions) (*master.Report, error) {
	b.started <- ctx
	select {
	case <-b.release:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return b.Backend.Search(ctx, queries, opts)
}

// newTestGateway builds a gateway over be and serves it on an
// httptest.Server, both torn down with the test.
func newTestGateway(t *testing.T, be engine.Backend, cfg Config) (*Gateway, *httptest.Server) {
	t.Helper()
	g, err := New(be, cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(g)
	t.Cleanup(srv.Close)
	t.Cleanup(func() { g.Close() })
	return g, srv
}

// queriesJSON renders a query set as a POST /v1/search body.
func queriesJSON(t *testing.T, queries *seq.Set, topK int) []byte {
	t.Helper()
	req := SearchRequest{TopK: topK}
	for i := range queries.Seqs {
		req.Queries = append(req.Queries, Query{
			ID:       queries.Seqs[i].ID,
			Residues: queries.Alpha.DecodeString(queries.Seqs[i].Residues),
		})
	}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// post sends one search and returns the status, decoded body (for
// 200s and 206s), the raw body, and the Retry-After header.
func post(t *testing.T, client *http.Client, url string, body []byte, header map[string]string) (int, *SearchResponse, []byte, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/v1/search", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range header {
		req.Header.Set(k, v)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var sr *SearchResponse
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusPartialContent {
		sr = new(SearchResponse)
		if err := json.Unmarshal(raw, sr); err != nil {
			t.Fatalf("%d body did not decode: %v\n%s", resp.StatusCode, err, raw)
		}
	}
	return resp.StatusCode, sr, raw, resp.Header.Get("Retry-After")
}

// sameHits asserts the gateway's JSON hits are byte-identical (index,
// id, score, order) to a direct backend report.
func sameHits(t *testing.T, label string, got *SearchResponse, want *master.Report) {
	t.Helper()
	if len(got.Results) != len(want.Results) {
		t.Fatalf("%s: %d results, want %d", label, len(got.Results), len(want.Results))
	}
	for qi := range want.Results {
		wh := want.Results[qi].Hits
		gh := got.Results[qi].Hits
		if len(gh) != len(wh) {
			t.Fatalf("%s: query %d: %d hits, want %d", label, qi, len(gh), len(wh))
		}
		for j := range wh {
			if gh[j].SeqIndex != wh[j].SeqIndex || gh[j].SeqID != wh[j].SeqID || gh[j].Score != wh[j].Score {
				t.Fatalf("%s: query %d hit %d: got %+v, want %+v", label, qi, j, gh[j], wh[j])
			}
		}
	}
}

// TestGatewayMatchesDirectSearch proves the acceptance criterion:
// gateway-served hits are byte-identical to direct Searcher.Search over
// an in-process engine, a sharded facade, and a replicated set.
func TestGatewayMatchesDirectSearch(t *testing.T) {
	db := testDB(40, 900)
	queries := synth.RandomSet(alphabet.Protein, 3, 20, 60, 901)

	backends := []struct {
		name  string
		build func(t *testing.T) engine.Backend
	}{
		{"engine", func(t *testing.T) engine.Backend { return testEngine(t, db) }},
		{"sharded", func(t *testing.T) engine.Backend {
			s, err := shard.New(db, shard.Config{Shards: 3, Engine: engine.Config{CPUs: 1, GPUs: 1, TopK: 5}})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { s.Close() })
			return s
		}},
		{"replicated", func(t *testing.T) engine.Backend {
			r1 := testEngine(t, db)
			r2 := testEngine(t, db)
			set, err := replica.NewSet("range 0", 0, []replica.Replica{{Backend: r1}, {Backend: r2}}, replica.Config{})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { set.Close() })
			return set
		}},
	}
	for _, b := range backends {
		t.Run(b.name, func(t *testing.T) {
			be := b.build(t)
			_, srv := newTestGateway(t, be, Config{Capacity: 4})
			want, err := be.Search(context.Background(), queries, engine.SearchOptions{TopK: 5})
			if err != nil {
				t.Fatal(err)
			}
			code, got, raw, _ := post(t, srv.Client(), srv.URL, queriesJSON(t, queries, 5), nil)
			if code != http.StatusOK {
				t.Fatalf("status %d: %s", code, raw)
			}
			sameHits(t, b.name, got, want)
			for qi := range queries.Seqs {
				if got.Results[qi].ID != queries.Seqs[qi].ID {
					t.Fatalf("query %d answered as %q", qi, got.Results[qi].ID)
				}
			}
		})
	}
}

// TestPerClientFairness pins one client's search at the gate and shows
// its second request is shed by the per-client bound — with capacity
// to spare — while a different client is admitted.
func TestPerClientFairness(t *testing.T) {
	be := newGateBackend(testEngine(t, testDB(20, 910)))
	g, srv := newTestGateway(t, be, Config{Capacity: 4, Queue: 4, ClientSlots: 1})
	body := queriesJSON(t, synth.RandomSet(alphabet.Protein, 1, 20, 40, 911), 0)

	aDone := make(chan int, 1)
	go func() {
		code, _, _, _ := post(t, srv.Client(), srv.URL, body, map[string]string{"X-API-Key": "tenant-a"})
		aDone <- code
	}()
	<-be.started // tenant A's first search is executing (pinned)

	code, _, raw, retry := post(t, srv.Client(), srv.URL, body, map[string]string{"X-API-Key": "tenant-a"})
	if code != http.StatusTooManyRequests {
		t.Fatalf("second tenant-a request: status %d (%s), want 429", code, raw)
	}
	if retry == "" {
		t.Fatal("shed answer missing Retry-After")
	}
	var er ErrorResponse
	if err := json.Unmarshal(raw, &er); err != nil || er.RetryAfterSeconds < 1 {
		t.Fatalf("shed body %s (err %v)", raw, err)
	}

	bDone := make(chan int, 1)
	go func() {
		code, _, _, _ := post(t, srv.Client(), srv.URL, body, map[string]string{"X-API-Key": "tenant-b"})
		bDone <- code
	}()
	<-be.started // tenant B admitted despite A's pinned search

	be.release <- struct{}{}
	be.release <- struct{}{}
	if code := <-aDone; code != http.StatusOK {
		t.Fatalf("tenant A first request: %d", code)
	}
	if code := <-bDone; code != http.StatusOK {
		t.Fatalf("tenant B request: %d", code)
	}
	c := g.Counters()
	if c.ShedClient != 1 || c.ShedQueue != 0 || c.Admitted != 2 {
		t.Fatalf("counters: %+v", c)
	}
}

// TestDeadlinePropagatesIntoSearchCtx sends timeouts via the body field
// and the header and checks the backend's ctx expires — answered 504 —
// without any release of the gate.
func TestDeadlinePropagatesIntoSearchCtx(t *testing.T) {
	be := newGateBackend(testEngine(t, testDB(20, 920)))
	g, srv := newTestGateway(t, be, Config{Capacity: 2})
	queries := synth.RandomSet(alphabet.Protein, 1, 20, 40, 921)

	req := SearchRequest{TimeoutMillis: 50}
	for i := range queries.Seqs {
		req.Queries = append(req.Queries, Query{Residues: queries.Alpha.DecodeString(queries.Seqs[i].Residues)})
	}
	body, _ := json.Marshal(req)
	code, _, raw, _ := post(t, srv.Client(), srv.URL, body, nil)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("timeout_ms search: status %d (%s), want 504", code, raw)
	}
	ctx := <-be.started
	if _, ok := ctx.Deadline(); !ok {
		t.Fatal("backend ctx had no deadline")
	}
	if ctx.Err() == nil {
		t.Fatal("backend ctx still alive after 504")
	}

	code, _, raw, _ = post(t, srv.Client(), srv.URL, queriesJSON(t, queries, 0), map[string]string{"Request-Timeout": "50ms"})
	if code != http.StatusGatewayTimeout {
		t.Fatalf("Request-Timeout search: status %d (%s), want 504", code, raw)
	}
	<-be.started
	if c := g.Counters(); c.TimedOut != 2 {
		t.Fatalf("counters: %+v", c)
	}
}

// TestMalformedRequests table-drives the 4xx surface.
func TestMalformedRequests(t *testing.T) {
	_, srv := newTestGateway(t, testEngine(t, testDB(20, 930)), Config{Capacity: 2, MaxBodyBytes: 4096, MaxQueries: 4, MaxQueryResidues: 256})
	cases := []struct {
		name   string
		body   string
		header map[string]string
		want   int
	}{
		{"bad json", `{"queries":`, nil, http.StatusBadRequest},
		{"no queries", `{}`, nil, http.StatusBadRequest},
		{"empty queries", `{"queries":[]}`, nil, http.StatusBadRequest},
		{"empty residues", `{"queries":[{"residues":""}]}`, nil, http.StatusBadRequest},
		{"bad residues", `{"queries":[{"residues":"NOT A PROTEIN 123!"}]}`, nil, http.StatusBadRequest},
		{"negative topk", `{"queries":[{"residues":"MKV"}],"top_k":-1}`, nil, http.StatusBadRequest},
		{"negative timeout", `{"queries":[{"residues":"MKV"}],"timeout_ms":-5}`, nil, http.StatusBadRequest},
		{"too many queries", `{"queries":[{"residues":"M"},{"residues":"M"},{"residues":"M"},{"residues":"M"},{"residues":"M"}]}`, nil, http.StatusRequestEntityTooLarge},
		{"residues over limit", fmt.Sprintf(`{"queries":[{"residues":"%s"}]}`, strings.Repeat("M", 300)), nil, http.StatusRequestEntityTooLarge},
		{"body over limit", fmt.Sprintf(`{"queries":[{"residues":"%s"}]}`, strings.Repeat("M", 8192)), nil, http.StatusRequestEntityTooLarge},
		{"bad header timeout", `{"queries":[{"residues":"MKV"}]}`, map[string]string{"Request-Timeout": "soon"}, http.StatusBadRequest},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			code, _, raw, _ := post(t, srv.Client(), srv.URL, []byte(c.body), c.header)
			if code != c.want {
				t.Fatalf("status %d (%s), want %d", code, raw, c.want)
			}
			var er ErrorResponse
			if err := json.Unmarshal(raw, &er); err != nil || er.Error == "" {
				t.Fatalf("error body %s (err %v)", raw, err)
			}
		})
	}

	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/v1/search", nil)
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/search: %d, want 405", resp.StatusCode)
	}
}

// TestStatsHealthzMetrics drives the observability endpoints after a
// real search round.
func TestStatsHealthzMetrics(t *testing.T) {
	_, srv := newTestGateway(t, testEngine(t, testDB(20, 940)), Config{Capacity: 2, DBMappedBytes: 123456})
	body := queriesJSON(t, synth.RandomSet(alphabet.Protein, 2, 20, 40, 941), 0)
	if code, _, raw, _ := post(t, srv.Client(), srv.URL, body, nil); code != http.StatusOK {
		t.Fatalf("search: %d (%s)", code, raw)
	}

	resp, err := srv.Client().Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hb, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(hb) != "ok\n" {
		t.Fatalf("healthz: %d %q", resp.StatusCode, hb)
	}

	resp, err = srv.Client().Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Gateway.Completed != 1 || st.Gateway.Admitted != 1 {
		t.Fatalf("gateway stats: %+v", st.Gateway)
	}
	if st.Engine.Searches != 1 || st.Engine.Queries != 2 {
		t.Fatalf("engine stats: %+v", st.Engine)
	}

	resp, err = srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mb, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	metrics := string(mb)
	for _, want := range []string{
		"swdual_gateway_admitted_total 1",
		"swdual_gateway_completed_total 1",
		"swdual_gateway_queue_depth 0",
		"swdual_engine_searches_total 1",
		"swdual_engine_failed_over_total 0",
		"swdual_process_heap_inuse_bytes",
		"swdual_process_gc_pauses_total",
		"swdual_process_db_mapped_bytes 123456",
		`swdual_worker_observed_gcups{worker="cpu-0"}`,
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("metrics missing %q:\n%s", want, metrics)
		}
	}
}

// TestConfigValidation rejects negative limits the way engine.New does.
func TestConfigValidation(t *testing.T) {
	e := testEngine(t, testDB(10, 950))
	if _, err := New(nil, Config{}); err == nil {
		t.Fatal("nil backend accepted")
	}
	for _, cfg := range []Config{
		{Capacity: -1}, {ClientSlots: -1},
		{MaxBodyBytes: -1}, {MaxQueries: -1}, {MaxQueryResidues: -1},
		{DefaultTimeout: -time.Second},
	} {
		if _, err := New(e, cfg); err == nil {
			t.Fatalf("config %+v accepted", cfg)
		}
	}
	// A negative Queue is the explicit "no queue" spelling, not an error.
	g, err := New(e, Config{Capacity: 3, Queue: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if g.cfg.Queue != 0 || g.cfg.Capacity != 3 {
		t.Fatalf("Queue -1 normalized to %+v", g.cfg)
	}
}
