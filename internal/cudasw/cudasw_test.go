package cudasw

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"swdual/internal/alphabet"
	"swdual/internal/gpusim"
	"swdual/internal/seq"
	"swdual/internal/sw"
	"swdual/internal/synth"
)

func newEngine() *Engine {
	return New(gpusim.New(gpusim.TeslaC2050()), sw.DefaultParams())
}

func TestScoresMatchOracle(t *testing.T) {
	e := newEngine()
	p := sw.DefaultParams()
	rng := rand.New(rand.NewSource(1))
	for iter := 0; iter < 15; iter++ {
		db := synth.RandomSet(alphabet.Protein, 1+rng.Intn(80), 1, 150, int64(iter))
		qlen := 1 + rng.Intn(90)
		q := synth.RandomSet(alphabet.Protein, 1, qlen, qlen, int64(iter+1000)).Seqs[0].Residues
		got := e.Scores(q, db)
		want := sw.NewScalar(p).Scores(q, db)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("iter %d seq %d: gpu %d scalar %d", iter, i, got[i], want[i])
			}
		}
	}
}

func TestIntraTaskKernelUsedForLongSubjects(t *testing.T) {
	e := newEngine()
	p := sw.DefaultParams()
	db := seq.NewSet(alphabet.Protein)
	long := synth.RandomSet(alphabet.Protein, 1, 4000, 4000, 7).Seqs[0].Residues
	short := synth.RandomSet(alphabet.Protein, 1, 50, 50, 8).Seqs[0].Residues
	db.AddEncoded("long", "", long)
	db.AddEncoded("short", "", short)
	q := synth.RandomSet(alphabet.Protein, 1, 64, 64, 9).Seqs[0].Residues
	scores, st := e.Search(q, db)
	if st.IntraSubject != 1 || st.InterSubject != 1 {
		t.Fatalf("kernel split inter=%d intra=%d", st.InterSubject, st.IntraSubject)
	}
	want := sw.NewScalar(p).Scores(q, db)
	for i := range want {
		if scores[i] != want[i] {
			t.Fatalf("seq %d: %d vs %d", i, scores[i], want[i])
		}
	}
	if st.TotalSec <= 0 || st.Launches < 2 {
		t.Fatalf("stats %+v", st)
	}
}

func TestSearchStats(t *testing.T) {
	e := newEngine()
	// Enough subjects to occupy all 14 SMs (63 warps -> 16 blocks).
	db := synth.RandomSet(alphabet.Protein, 2000, 50, 400, 11)
	q := synth.RandomSet(alphabet.Protein, 1, 300, 300, 12).Seqs[0].Residues
	_, st := e.Search(q, db)
	if st.Cells != sw.SetCells(len(q), db) {
		t.Fatalf("cells %d", st.Cells)
	}
	if st.GCUPS <= 0 {
		t.Fatalf("GCUPS %v", st.GCUPS)
	}
	if st.Utilization <= 0 || st.Utilization > 1 {
		t.Fatalf("utilization %v", st.Utilization)
	}
	// A loaded device should sit in the real C2050 regime (~17-28 GCUPS
	// for CUDASW++); allow width for residual imbalance on 16 blocks.
	if st.GCUPS < 8 || st.GCUPS > 35 {
		t.Fatalf("simulated GCUPS %v outside plausible band", st.GCUPS)
	}
}

func TestTinyDatabaseUnderutilizesDevice(t *testing.T) {
	// GPUs need large batches: a 200-sequence database cannot fill 14
	// SMs, so throughput must drop well below the loaded-device regime.
	e := newEngine()
	db := synth.RandomSet(alphabet.Protein, 200, 50, 400, 11)
	q := synth.RandomSet(alphabet.Protein, 1, 300, 300, 12).Seqs[0].Residues
	_, st := e.Search(q, db)
	if st.GCUPS > 8 {
		t.Fatalf("tiny database reached %v GCUPS; occupancy model broken", st.GCUPS)
	}
}

func TestPredictMatchesSearchTime(t *testing.T) {
	e := newEngine()
	db := synth.RandomSet(alphabet.Protein, 300, 20, 500, 13)
	lengths := make([]int, db.Len())
	for i := range db.Seqs {
		lengths[i] = db.Seqs[i].Len()
	}
	q := synth.RandomSet(alphabet.Protein, 1, 250, 250, 14).Seqs[0].Residues
	_, st := e.Search(q, db)
	pred := e.PredictSeconds(len(q), lengths)
	if math.Abs(pred-st.TotalSec) > 1e-9*math.Max(1, st.TotalSec) {
		t.Fatalf("prediction %g != measured %g", pred, st.TotalSec)
	}
}

func TestTimingModelMatchesPredict(t *testing.T) {
	e := newEngine()
	lengths := synth.EnsemblDog.Scaled(100).GenerateLengths()
	tm := e.Model(lengths)
	for _, qlen := range []int{100, 1000, 5000} {
		direct := e.PredictSeconds(qlen, lengths)
		cached := tm.Seconds(qlen)
		if math.Abs(direct-cached)/direct > 0.02 {
			t.Fatalf("qlen %d: cached %g vs direct %g", qlen, cached, direct)
		}
	}
	if tm.Seconds(0) != 0 {
		t.Fatal("zero query must cost 0")
	}
}

func TestEmptyInputs(t *testing.T) {
	e := newEngine()
	db := synth.RandomSet(alphabet.Protein, 3, 10, 10, 15)
	if got := e.Scores(nil, db); len(got) != 3 {
		t.Fatal("nil query")
	}
	empty := seq.NewSet(alphabet.Protein)
	if got := e.Scores([]byte{1, 2}, empty); len(got) != 0 {
		t.Fatal("empty db")
	}
	if e.PredictSeconds(0, nil) != 0 {
		t.Fatal("empty prediction")
	}
}

func TestZeroLengthSubjects(t *testing.T) {
	e := newEngine()
	db := seq.NewSet(alphabet.Protein)
	db.AddEncoded("empty", "", nil)
	db.AddEncoded("x", "", alphabet.Protein.MustEncode("ARND"))
	q := alphabet.Protein.MustEncode("ARND")
	got := e.Scores(q, db)
	if got[0] != 0 {
		t.Fatalf("empty subject scored %d", got[0])
	}
	if got[1] == 0 {
		t.Fatal("ARND self-ish score must be positive")
	}
}

// Property: the simulated GPU engine equals the oracle on arbitrary
// inputs.
func TestQuickGPUEqualsOracle(t *testing.T) {
	e := newEngine()
	p := sw.DefaultParams()
	f := func(qr []byte, subjects [][]byte) bool {
		q := clampResidues(qr, 80)
		if len(q) == 0 {
			return true
		}
		db := seq.NewSet(alphabet.Protein)
		for i, s := range subjects {
			if i == 10 {
				break
			}
			db.AddEncoded("s", "", clampResidues(s, 120))
		}
		if db.Len() == 0 {
			return true
		}
		got := e.Scores(q, db)
		want := sw.NewScalar(p).Scores(q, db)
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func clampResidues(b []byte, maxLen int) []byte {
	if len(b) > maxLen {
		b = b[:maxLen]
	}
	out := make([]byte, len(b))
	for i, v := range b {
		out[i] = v % byte(alphabet.Protein.Len())
	}
	return out
}
