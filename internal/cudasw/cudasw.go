// Package cudasw implements a CUDASW++ 2.0-style Smith-Waterman database
// search engine on the simulated GPU of package gpusim.
//
// Like CUDASW++ 2.0 ([7] in the paper) it uses two kernels:
//
//   - an inter-task kernel for ordinary subjects: each thread aligns the
//     query to one subject; subjects are sorted by length and packed 32 to
//     a warp so lock-step divergence (a warp pays for its longest lane) is
//     minimized;
//   - an intra-task kernel for very long subjects (> IntraThreshold),
//     where the whole device cooperates on one comparison in anti-diagonal
//     wavefronts at reduced efficiency.
//
// Scores are computed functionally with the SWAR kernels of package
// swvector (escalating to the scalar oracle on overflow), so results are
// exact; the simulated time follows the cycle model calibrated against the
// paper's single-GPU CUDASW++ measurements (see EXPERIMENTS.md).
package cudasw

import (
	"sort"

	"swdual/internal/gpusim"
	"swdual/internal/scoring"
	"swdual/internal/seq"
	"swdual/internal/sw"
	"swdual/internal/swvector"
)

// Config tunes the engine. The zero value is not valid; use DefaultConfig.
type Config struct {
	// WarpsPerBlock groups warps into thread blocks (4 = 128 threads).
	WarpsPerBlock int
	// IntraThreshold is the subject length above which the intra-task
	// kernel is used (CUDASW++ 2.0 uses 3072).
	IntraThreshold int
	// CyclesPerCell is the warp instruction cost of one DP cell per
	// thread. 20.2 cycles reproduces the paper's single-GPU CUDASW++
	// time (785.26 s on UniProt => ~24.8 GCUPS per C2050).
	CyclesPerCell float64
	// IntraEfficiency discounts the intra-task wavefront kernel for its
	// fill/drain and synchronization losses.
	IntraEfficiency float64
	// MaxChunkResidues bounds the database residues shipped per launch
	// (device memory chunking). 0 means derive from device memory.
	MaxChunkResidues int64
}

// DefaultConfig returns the calibrated configuration.
func DefaultConfig() Config {
	return Config{
		WarpsPerBlock:   4,
		IntraThreshold:  3072,
		CyclesPerCell:   20.2,
		IntraEfficiency: 0.6,
	}
}

// Stats summarizes one database search on the simulated device.
type Stats struct {
	Launches     int
	KernelSec    float64
	TransferSec  float64
	TotalSec     float64
	Cells        int64
	GCUPS        float64
	Utilization  float64 // cycle-weighted mean over launches
	InterSubject int
	IntraSubject int
}

// Engine is a CUDASW++-style engine bound to one simulated device.
type Engine struct {
	dev    *gpusim.Device
	params sw.Params
	cfg    Config
}

// New builds an engine with the default configuration.
func New(dev *gpusim.Device, params sw.Params) *Engine {
	return NewWithConfig(dev, params, DefaultConfig())
}

// NewWithConfig builds an engine with an explicit configuration.
func NewWithConfig(dev *gpusim.Device, params sw.Params, cfg Config) *Engine {
	if cfg.WarpsPerBlock <= 0 {
		cfg.WarpsPerBlock = 4
	}
	if cfg.IntraThreshold <= 0 {
		cfg.IntraThreshold = 3072
	}
	if cfg.CyclesPerCell <= 0 {
		cfg.CyclesPerCell = 20.2
	}
	if cfg.IntraEfficiency <= 0 || cfg.IntraEfficiency > 1 {
		cfg.IntraEfficiency = 0.6
	}
	if cfg.MaxChunkResidues <= 0 {
		// Keep subjects + profile + result buffers within half the device
		// memory, the same rule CUDASW++ applies.
		cfg.MaxChunkResidues = dev.Config().MemBytes / 2
	}
	return &Engine{dev: dev, params: params, cfg: cfg}
}

// Name implements sw.Engine.
func (e *Engine) Name() string { return "cudasw-sim" }

// Device returns the underlying simulated device.
func (e *Engine) Device() *gpusim.Device { return e.dev }

// Scores implements sw.Engine.
func (e *Engine) Scores(query []byte, db *seq.Set) []int {
	scores, _ := e.Search(query, db)
	return scores
}

// ScoresProfiled implements sw.ProfiledEngine.
func (e *Engine) ScoresProfiled(query []byte, prof *scoring.QueryProfiles, db *seq.Set) []int {
	scores, _ := e.SearchProfiled(query, prof, db)
	return scores
}

// Search computes all scores and returns the simulated timing statistics.
func (e *Engine) Search(query []byte, db *seq.Set) ([]int, Stats) {
	return e.SearchProfiled(query, nil, db)
}

// SearchProfiled is Search drawing the striped profiles from a shared
// per-query set (CUDASW++ keeps its query profile resident in texture
// memory for the same reason); a nil prof builds them locally.
func (e *Engine) SearchProfiled(query []byte, prof *scoring.QueryProfiles, db *seq.Set) ([]int, Stats) {
	out := make([]int, db.Len())
	var st Stats
	if len(query) == 0 || db.Len() == 0 {
		return out, st
	}
	scorer := newScorer(e.params, query, prof)
	var weightedUtil float64
	var cycleSum uint64
	for _, pl := range e.plan(len(query), lengthsOf(db)) {
		blocks := make([]*gpusim.Block, len(pl.blocks))
		for bi, pb := range pl.blocks {
			b := &gpusim.Block{}
			for _, pw := range pb {
				b.Warps = append(b.Warps, &scoreWarp{scorer: scorer, db: db, out: out, subjects: pw.subjects, cycles: pw.cycles})
			}
			blocks[bi] = b
		}
		ls := e.dev.Launch(blocks, pl.transferBytes)
		st.Launches++
		st.KernelSec += ls.KernelSec
		st.TransferSec += ls.TransferSec
		st.TotalSec += ls.TotalSec
		weightedUtil += ls.Utilization * float64(ls.CyclesTotal)
		cycleSum += ls.CyclesTotal
	}
	st.Cells = sw.SetCells(len(query), db)
	if st.TotalSec > 0 {
		st.GCUPS = float64(st.Cells) / st.TotalSec / 1e9
	}
	if cycleSum > 0 {
		st.Utilization = weightedUtil / float64(cycleSum)
	}
	st.InterSubject, st.IntraSubject = e.splitCounts(lengthsOf(db))
	return out, st
}

// PredictSeconds returns the simulated wall time of a search given only
// the query length and subject lengths — the platform cost model's entry
// point at paper scale. It charges exactly the cycles Search would.
func (e *Engine) PredictSeconds(queryLen int, subjectLengths []int) float64 {
	if queryLen == 0 || len(subjectLengths) == 0 {
		return 0
	}
	total := 0.0
	for _, pl := range e.plan(queryLen, subjectLengths) {
		var blockCycles []uint64
		for _, pb := range pl.blocks {
			var c uint64
			for _, pw := range pb {
				c += pw.cycles
			}
			blockCycles = append(blockCycles, c)
		}
		total += e.dev.PredictKernelSec(blockCycles)
		total += float64(pl.transferBytes) / e.dev.Config().PCIeBytesPerSec
		total += e.dev.Config().LaunchOverheadSec
	}
	return total
}

func (e *Engine) splitCounts(lengths []int) (inter, intra int) {
	for _, l := range lengths {
		if l > e.cfg.IntraThreshold {
			intra++
		} else {
			inter++
		}
	}
	return inter, intra
}

// planWarp is one planned warp: subject indexes plus cycle cost.
type planWarp struct {
	subjects []int
	cycles   uint64
}

// planLaunch is one planned kernel launch.
type planLaunch struct {
	blocks        [][]planWarp
	transferBytes int64
}

// plan builds the launch plan shared by Search and PredictSeconds: sort
// subjects ascending by length, chunk to device memory, pack 32 per warp,
// then route overlong subjects to intra-task launches.
func (e *Engine) plan(qlen int, lengths []int) []planLaunch {
	warpSize := e.dev.Config().WarpSize
	order := make([]int, 0, len(lengths))
	var intra []int
	for i, l := range lengths {
		if l == 0 {
			continue // nothing to do; score stays 0
		}
		if l > e.cfg.IntraThreshold {
			intra = append(intra, i)
			continue
		}
		order = append(order, i)
	}
	sort.SliceStable(order, func(a, b int) bool { return lengths[order[a]] < lengths[order[b]] })

	var plans []planLaunch
	var cur planLaunch
	var curResidues int64
	var curBlock []planWarp
	flushBlock := func() {
		if len(curBlock) > 0 {
			cur.blocks = append(cur.blocks, curBlock)
			curBlock = nil
		}
	}
	flushLaunch := func() {
		flushBlock()
		if len(cur.blocks) > 0 {
			cur.transferBytes = curResidues + int64(qlen) + 4*int64(len(cur.blocks)*e.cfg.WarpsPerBlock*warpSize)
			plans = append(plans, cur)
			cur = planLaunch{}
			curResidues = 0
		}
	}
	for w := 0; w < len(order); w += warpSize {
		hi := w + warpSize
		if hi > len(order) {
			hi = len(order)
		}
		subjects := order[w:hi]
		maxLen := 0
		var warpResidues int64
		for _, si := range subjects {
			if lengths[si] > maxLen {
				maxLen = lengths[si]
			}
			warpResidues += int64(lengths[si])
		}
		if curResidues > 0 && curResidues+warpResidues > e.cfg.MaxChunkResidues {
			flushLaunch()
		}
		curResidues += warpResidues
		curBlock = append(curBlock, planWarp{
			subjects: append([]int(nil), subjects...),
			cycles:   uint64(float64(maxLen) * float64(qlen) * e.cfg.CyclesPerCell),
		})
		if len(curBlock) == e.cfg.WarpsPerBlock {
			flushBlock()
		}
	}
	flushLaunch()
	// Intra-task launches: the device cooperates on one subject; model the
	// cost as evenly spread over all SMs at reduced efficiency.
	dev := e.dev.Config()
	for _, si := range intra {
		cells := float64(lengths[si]) * float64(qlen)
		perSM := cells * e.cfg.CyclesPerCell / (float64(warpSize) * float64(dev.SMs) * e.cfg.IntraEfficiency)
		var pl planLaunch
		for s := 0; s < dev.SMs; s++ {
			w := planWarp{cycles: uint64(perSM)}
			if s == 0 {
				w.subjects = []int{si} // functional work rides on one warp
			}
			pl.blocks = append(pl.blocks, []planWarp{w})
		}
		pl.transferBytes = int64(lengths[si]) + int64(qlen) + 4
		plans = append(plans, pl)
	}
	return plans
}

// scorer escalates striped 8-bit -> 16-bit -> scalar, sharing profiles
// across all warps of a search — and, when a shared per-query profile
// set is supplied, across every engine that touches the query.
type scorer struct {
	params sw.Params
	query  []byte
	prof   *scoring.QueryProfiles // nil = build profiles locally
	p8     *scoring.StripedProfile8
	p16    *scoring.StripedProfile16
}

func newScorer(params sw.Params, query []byte, prof *scoring.QueryProfiles) *scorer {
	s := &scorer{params: params, query: query, prof: prof}
	if prof != nil {
		s.p8, _ = prof.Striped8()
	} else {
		s.p8, _ = scoring.NewStripedProfile8(params.Matrix, query)
	}
	return s
}

func (s *scorer) score(subject []byte) int {
	if s.p8 != nil {
		if v, over := swvector.ScoreStriped8(s.p8, s.params.Gaps, subject); !over {
			return v
		}
	}
	if s.p16 == nil {
		if s.prof != nil {
			s.p16 = s.prof.Striped16()
		} else {
			s.p16 = scoring.NewStripedProfile16(s.params.Matrix, s.query)
		}
	}
	if v, over := swvector.ScoreStriped16(s.p16, s.params.Gaps, subject); !over {
		return v
	}
	return sw.Score(s.params, s.query, subject)
}

// scoreWarp is the functional+timing unit handed to the simulator.
type scoreWarp struct {
	scorer   *scorer
	db       *seq.Set
	out      []int
	subjects []int
	cycles   uint64
}

// Run implements gpusim.Warp.
func (w *scoreWarp) Run() {
	for _, si := range w.subjects {
		w.out[si] = w.scorer.score(w.db.Seqs[si].Residues)
	}
}

// Cycles implements gpusim.Warp.
func (w *scoreWarp) Cycles() uint64 { return w.cycles }

var _ sw.ProfiledEngine = (*Engine)(nil)

func lengthsOf(db *seq.Set) []int {
	out := make([]int, db.Len())
	for i := range db.Seqs {
		out[i] = db.Seqs[i].Len()
	}
	return out
}
