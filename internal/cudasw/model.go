package cudasw

// TimingModel caches the launch geometry of one database so that per-query
// time predictions are O(1). It exploits the fact that every planned cycle
// cost is linear in the query length: the block-to-SM distribution (and
// therefore the slowest-SM cycle count) is invariant under scaling all
// blocks by the same factor, so one reference plan fixes the geometry.
type TimingModel struct {
	// SecondsPerQueryResidue is the kernel time contributed by each query
	// residue (slowest-SM cycles at qlen=1 divided by the clock).
	SecondsPerQueryResidue float64
	// FixedSeconds covers transfers and launch overheads, independent of
	// the query length.
	FixedSeconds float64
	// Launches is the number of kernel launches per search.
	Launches int
	// Subjects and TotalResidues describe the modeled database.
	Subjects      int
	TotalResidues int64
}

// Seconds predicts the simulated search time for a query of the given
// length against the modeled database.
func (m TimingModel) Seconds(queryLen int) float64 {
	if queryLen <= 0 {
		return 0
	}
	return m.SecondsPerQueryResidue*float64(queryLen) + m.FixedSeconds
}

// Model builds the cached timing model for a database given its subject
// lengths. The reference plan uses a large qlen so integer truncation in
// the per-warp cycle counts is negligible.
func (e *Engine) Model(subjectLengths []int) TimingModel {
	const qlenRef = 4096
	tm := TimingModel{Subjects: len(subjectLengths)}
	for _, l := range subjectLengths {
		tm.TotalResidues += int64(l)
	}
	if len(subjectLengths) == 0 {
		return tm
	}
	kernelRef := 0.0
	for _, pl := range e.plan(qlenRef, subjectLengths) {
		blockCycles := make([]uint64, 0, len(pl.blocks))
		for _, pb := range pl.blocks {
			var c uint64
			for _, pw := range pb {
				c += pw.cycles
			}
			blockCycles = append(blockCycles, c)
		}
		kernelRef += e.dev.PredictKernelSec(blockCycles)
		tm.FixedSeconds += float64(pl.transferBytes)/e.dev.Config().PCIeBytesPerSec + e.dev.Config().LaunchOverheadSec
		tm.Launches++
	}
	tm.SecondsPerQueryResidue = kernelRef / qlenRef
	return tm
}
