package scoring

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"swdual/internal/alphabet"
)

// ParseNCBI reads a substitution matrix in the NCBI text format (the format
// of the files shipped with BLAST, SSEARCH, SWIPE and CUDASW++): '#'
// comment lines, then a header line of residue letters, then one row per
// residue beginning with its letter. The returned matrix is re-indexed to
// the given alphabet; letters present in the alphabet but missing from the
// file score the file's minimum value.
func ParseNCBI(name string, r io.Reader, a *alphabet.Alphabet) (*Matrix, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	var header []byte
	raw := map[[2]byte]int{}
	minV := 0
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if header == nil {
			for _, f := range fields {
				if len(f) != 1 {
					return nil, fmt.Errorf("scoring: NCBI header field %q is not a single letter", f)
				}
				header = append(header, f[0])
			}
			continue
		}
		if len(fields) != len(header)+1 || len(fields[0]) != 1 {
			return nil, fmt.Errorf("scoring: NCBI row %q has %d fields, want %d", line, len(fields), len(header)+1)
		}
		rowLetter := fields[0][0]
		for i, f := range fields[1:] {
			v, err := strconv.Atoi(f)
			if err != nil {
				return nil, fmt.Errorf("scoring: NCBI entry %q: %v", f, err)
			}
			raw[[2]byte{rowLetter, header[i]}] = v
			if v < minV {
				minV = v
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if header == nil {
		return nil, fmt.Errorf("scoring: NCBI matrix %s is empty", name)
	}
	n := a.Len()
	table := make([][]int8, n)
	for i := range table {
		table[i] = make([]int8, n)
		for j := range table[i] {
			v, ok := raw[[2]byte{a.Letter(byte(i)), a.Letter(byte(j))}]
			if !ok {
				v = minV
			}
			if v > 127 || v < -128 {
				return nil, fmt.Errorf("scoring: NCBI entry %d out of int8 range", v)
			}
			table[i][j] = int8(v)
		}
	}
	return NewMatrix(name, table)
}

// FormatNCBI writes the matrix in NCBI text format using the alphabet's
// letters, suitable for consumption by other SW tools.
func FormatNCBI(w io.Writer, m *Matrix, a *alphabet.Alphabet) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# %s (emitted by swdual)\n ", m.Name())
	for j := 0; j < m.Size(); j++ {
		fmt.Fprintf(bw, " %c ", a.Letter(byte(j)))
	}
	fmt.Fprintln(bw)
	for i := 0; i < m.Size(); i++ {
		fmt.Fprintf(bw, "%c", a.Letter(byte(i)))
		for j := 0; j < m.Size(); j++ {
			fmt.Fprintf(bw, " %2d", m.Score(byte(i), byte(j)))
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}
