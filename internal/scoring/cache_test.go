package scoring

import (
	"fmt"
	"sync"
	"testing"
)

// TestProfileCacheSharesAndBounds is the basic contract: equal residue
// content shares one entry, the bound holds, and Stats sees the
// traffic.
func TestProfileCacheSharesAndBounds(t *testing.T) {
	m, err := ByName("BLOSUM62")
	if err != nil {
		t.Fatal(err)
	}
	c := NewProfileCache(m, 4)
	q := []byte{0, 1, 2, 3}
	p1 := c.Get(q)
	p2 := c.Get(append([]byte(nil), q...)) // same content, different buffer
	if p1 != p2 {
		t.Fatal("equal residue content must share one profile set")
	}
	for i := byte(0); i < 8; i++ {
		c.Get([]byte{i, i, i})
	}
	if n := c.Len(); n > 4 {
		t.Fatalf("Len %d exceeds bound 4", n)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 9 {
		t.Fatalf("hits/misses %d/%d, want 1/9", st.Hits, st.Misses)
	}
	if st.Evictions != 9-4 {
		t.Fatalf("evictions %d, want %d", st.Evictions, 9-4)
	}
	if st.Entries != 4 {
		t.Fatalf("entries %d, want 4", st.Entries)
	}
}

// TestProfileCacheLRUKeepsHotEntries evicts in recency order: an entry
// that keeps getting hit must survive a sweep of one-off queries.
func TestProfileCacheLRUKeepsHotEntries(t *testing.T) {
	m, err := ByName("BLOSUM62")
	if err != nil {
		t.Fatal(err)
	}
	c := NewProfileCache(m, 8)
	hot := []byte{1, 2, 3, 4, 5}
	want := c.Get(hot)
	for i := 0; i < 100; i++ {
		c.Get([]byte(fmt.Sprintf("%03d", i%10+10))) // cold sweep (codes 49..57 are valid residues)
		if got := c.Get(hot); got != want {
			t.Fatalf("hot entry rebuilt after %d cold inserts", i+1)
		}
	}
}

// TestProfileCacheConcurrentBound is the eviction-accounting property
// test: 8 goroutines fill past max concurrently (run under -race), the
// bound must never be observed exceeded, and entries that every
// goroutine keeps re-reading must survive the churn.
func TestProfileCacheConcurrentBound(t *testing.T) {
	m, err := ByName("BLOSUM62")
	if err != nil {
		t.Fatal(err)
	}
	const max = 16
	c := NewProfileCache(m, max)
	hot := []byte{7, 7, 7}
	hotProfiles := c.Get(hot)

	const goroutines = 8
	const inserts = 200
	var wg sync.WaitGroup
	violations := make(chan string, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < inserts; i++ {
				// Unique per goroutine+iteration: every Get inserts.
				c.Get([]byte{byte(g), byte(i), byte(i >> 4), 1})
				if got := c.Get(hot); got != hotProfiles {
					select {
					case violations <- fmt.Sprintf("goroutine %d: hot entry evicted and rebuilt at insert %d", g, i):
					default:
					}
					return
				}
				if n := c.Len(); n > max {
					select {
					case violations <- fmt.Sprintf("goroutine %d: Len %d exceeds max %d", g, n, max):
					default:
					}
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(violations)
	for v := range violations {
		t.Fatal(v)
	}
	if n := c.Len(); n > max {
		t.Fatalf("final Len %d exceeds max %d", n, max)
	}
	st := c.Stats()
	wantMisses := uint64(goroutines*inserts + 1) // every unique insert plus the initial hot fill
	if st.Misses != wantMisses {
		t.Fatalf("misses %d, want %d (eviction accounting lost inserts)", st.Misses, wantMisses)
	}
	// Everything inserted beyond the resident set must be accounted as
	// an eviction: misses - entries == evictions, exactly.
	if st.Evictions != wantMisses-uint64(st.Entries) {
		t.Fatalf("evictions %d with %d misses and %d entries (accounting drifted under races)",
			st.Evictions, st.Misses, st.Entries)
	}
}
