package scoring

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"swdual/internal/alphabet"
)

func TestBuiltinMatricesAreSymmetric(t *testing.T) {
	for _, m := range []*Matrix{BLOSUM62, BLOSUM50, PAM250, DNASimple} {
		if !m.Symmetric() {
			t.Fatalf("%s is not symmetric", m.Name())
		}
		if m.Size() == 0 {
			t.Fatalf("%s has size 0", m.Name())
		}
	}
}

func TestBLOSUM62KnownValues(t *testing.T) {
	a := alphabet.Protein
	cases := []struct {
		x, y byte
		want int
	}{
		{'A', 'A', 4}, {'W', 'W', 11}, {'C', 'C', 9},
		{'A', 'R', -1}, {'W', 'C', -2}, {'E', 'Z', 4},
		{'N', 'B', 3}, {'*', '*', 1}, {'A', '*', -4},
	}
	for _, c := range cases {
		got := BLOSUM62.Score(byte(a.Code(c.x)), byte(a.Code(c.y)))
		if got != c.want {
			t.Fatalf("BLOSUM62[%c][%c] = %d, want %d", c.x, c.y, got, c.want)
		}
	}
	if BLOSUM62.Max() != 11 {
		t.Fatalf("BLOSUM62 max %d, want 11 (W-W)", BLOSUM62.Max())
	}
	if BLOSUM62.Min() != -4 {
		t.Fatalf("BLOSUM62 min %d, want -4", BLOSUM62.Min())
	}
}

func TestDiagonalDominatesRow(t *testing.T) {
	// In BLOSUM matrices every residue matches itself at least as well as
	// any substitution (within the 20 core residues).
	for i := 0; i < 20; i++ {
		self := BLOSUM62.Score(byte(i), byte(i))
		for j := 0; j < 20; j++ {
			if v := BLOSUM62.Score(byte(i), byte(j)); v > self {
				t.Fatalf("BLOSUM62[%d][%d]=%d exceeds self score %d", i, j, v, self)
			}
		}
	}
}

func TestGaps(t *testing.T) {
	if err := DefaultGaps.Validate(); err != nil {
		t.Fatal(err)
	}
	if DefaultGaps.OpenCost() != 12 {
		t.Fatalf("open cost %d, want 12", DefaultGaps.OpenCost())
	}
	if err := (Gaps{Start: -1, Extend: 2}).Validate(); err == nil {
		t.Fatal("negative Gs must fail")
	}
	if err := (Gaps{Start: 10, Extend: 0}).Validate(); err == nil {
		t.Fatal("zero Ge must fail")
	}
}

func TestSelfScore(t *testing.T) {
	seq := alphabet.Protein.MustEncode("AW")
	if got := BLOSUM62.SelfScore(seq); got != 4+11 {
		t.Fatalf("self score %d, want 15", got)
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"BLOSUM62", "blosum50", "PAM250", "dna"} {
		if _, err := ByName(name); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if _, err := ByName("BLOSUM999"); err == nil {
		t.Fatal("expected error")
	}
}

func TestSimpleMatrix(t *testing.T) {
	m := Simple("test", 5, 4, 2, -3)
	if m.Score(0, 0) != 2 || m.Score(0, 1) != -3 {
		t.Fatal("match/mismatch wrong")
	}
	// Ambiguity code (index 4) mismatches everything, itself included.
	if m.Score(4, 4) != -3 {
		t.Fatalf("ambiguity self score %d, want -3", m.Score(4, 4))
	}
}

func TestNewMatrixErrors(t *testing.T) {
	if _, err := NewMatrix("empty", nil); err == nil {
		t.Fatal("empty table must fail")
	}
	if _, err := NewMatrix("ragged", [][]int8{{1, 2}, {3}}); err == nil {
		t.Fatal("ragged table must fail")
	}
}

func TestScalarProfile(t *testing.T) {
	q := alphabet.Protein.MustEncode("ARND")
	p := NewProfile(BLOSUM62, q)
	for r := 0; r < BLOSUM62.Size(); r++ {
		for i, qr := range q {
			if int(p.Rows[r][i]) != BLOSUM62.Score(byte(r), qr) {
				t.Fatalf("profile[%d][%d] mismatch", r, i)
			}
		}
	}
}

func TestStripedProfile8Layout(t *testing.T) {
	q := alphabet.Protein.MustEncode("ARNDCQEGH") // length 9 -> segLen 2
	p, err := NewStripedProfile8(BLOSUM62, q)
	if err != nil {
		t.Fatal(err)
	}
	if p.SegLen != 2 {
		t.Fatalf("segLen %d, want 2", p.SegLen)
	}
	if p.Bias != 4 {
		t.Fatalf("bias %d, want 4", p.Bias)
	}
	// Lane l of word s corresponds to query position s + l*segLen.
	for r := 0; r < BLOSUM62.Size(); r++ {
		for s := 0; s < p.SegLen; s++ {
			w := p.Rows[r][s]
			for l := 0; l < Lanes8; l++ {
				got := int(uint8(w>>(8*l))) - int(p.Bias)
				pos := s + l*p.SegLen
				want := -int(p.Bias)
				if pos < len(q) {
					want = BLOSUM62.Score(byte(r), q[pos])
				}
				if got != want {
					t.Fatalf("r=%d s=%d l=%d: %d want %d", r, s, l, got, want)
				}
			}
		}
	}
}

func TestStripedProfile16Layout(t *testing.T) {
	q := alphabet.Protein.MustEncode("ARNDC")
	p := NewStripedProfile16(BLOSUM62, q)
	if p.SegLen != 2 {
		t.Fatalf("segLen %d, want 2", p.SegLen)
	}
	for r := 0; r < BLOSUM62.Size(); r++ {
		for s := 0; s < p.SegLen; s++ {
			w := p.Rows[r][s]
			for l := 0; l < Lanes16; l++ {
				got := int(uint16(w>>(16*l))) - int(p.Bias)
				pos := s + l*p.SegLen
				want := -int(p.Bias)
				if pos < len(q) {
					want = BLOSUM62.Score(byte(r), q[pos])
				}
				if got != want {
					t.Fatalf("r=%d s=%d l=%d: %d want %d", r, s, l, got, want)
				}
			}
		}
	}
}

func TestNCBIRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := FormatNCBI(&buf, BLOSUM62, alphabet.Protein); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseNCBI("BLOSUM62-copy", &buf, alphabet.Protein)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < BLOSUM62.Size(); i++ {
		for j := 0; j < BLOSUM62.Size(); j++ {
			if parsed.Score(byte(i), byte(j)) != BLOSUM62.Score(byte(i), byte(j)) {
				t.Fatalf("round trip mismatch at %d,%d", i, j)
			}
		}
	}
}

func TestNCBIParseErrors(t *testing.T) {
	cases := []string{
		"",
		"A B\nA 1",        // row too short
		"AB C\nA 1 2",     // header field not a single letter
		"A B\nA x y",      // non-numeric
		"A B\nAB 1 2 3\n", // bad row letter
	}
	for i, c := range cases {
		if _, err := ParseNCBI("bad", strings.NewReader(c), alphabet.Protein); err == nil {
			t.Fatalf("case %d should fail", i)
		}
	}
}

// Property: round-tripping random symmetric matrices through the NCBI
// text format is the identity.
func TestQuickNCBIRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := alphabet.Protein.Len()
		table := make([][]int8, n)
		for i := range table {
			table[i] = make([]int8, n)
		}
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				v := int8(rng.Intn(31) - 15)
				table[i][j], table[j][i] = v, v
			}
		}
		m, err := NewMatrix("rnd", table)
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if err := FormatNCBI(&buf, m, alphabet.Protein); err != nil {
			return false
		}
		back, err := ParseNCBI("rnd", &buf, alphabet.Protein)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if back.Score(byte(i), byte(j)) != m.Score(byte(i), byte(j)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
