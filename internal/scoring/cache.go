package scoring

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// QueryProfiles lazily builds and shares every profile representation of
// one query against one matrix: the scalar profile, the 8-bit striped
// profile and the 16-bit striped profile. A search wave constructs one
// QueryProfiles per query and hands it to whichever engine runs the
// task, so the striped, inter-sequence and simulated-GPU backends all
// read the same construction instead of each rebuilding its own — the
// profile/buffer reuse SWIPE and Farrar's striped implementation both
// identify as the real cost of database search once the inner loop is
// vectorized. All accessors are safe for concurrent use; each profile
// is built at most once.
type QueryProfiles struct {
	m     *Matrix
	query []byte

	once8  sync.Once
	p8     *StripedProfile8
	p8err  error
	once16 sync.Once
	p16    *StripedProfile16
	onceSc sync.Once
	scalar *Profile
}

// NewQueryProfiles prepares a (still empty) profile set for an encoded
// query. Construction of the individual profiles is deferred to first
// use, so a query that never overflows 8 bits never pays for the wider
// profiles.
func NewQueryProfiles(m *Matrix, query []byte) *QueryProfiles {
	return &QueryProfiles{m: m, query: query}
}

// Query returns the encoded query the profiles describe.
func (q *QueryProfiles) Query() []byte { return q.query }

// Matrix returns the substitution matrix the profiles were built from.
func (q *QueryProfiles) Matrix() *Matrix { return q.m }

// Striped8 returns the shared 8-bit striped profile, building it on
// first use. The error mirrors NewStripedProfile8 (matrix range too wide
// for 8-bit biasing) and is sticky.
func (q *QueryProfiles) Striped8() (*StripedProfile8, error) {
	q.once8.Do(func() { q.p8, q.p8err = NewStripedProfile8(q.m, q.query) })
	return q.p8, q.p8err
}

// Striped16 returns the shared 16-bit striped profile, building it on
// first use.
func (q *QueryProfiles) Striped16() *StripedProfile16 {
	q.once16.Do(func() { q.p16 = NewStripedProfile16(q.m, q.query) })
	return q.p16
}

// Scalar returns the shared scalar profile, building it on first use.
func (q *QueryProfiles) Scalar() *Profile {
	q.onceSc.Do(func() { q.scalar = NewProfile(q.m, q.query) })
	return q.scalar
}

// ProfileCache maps query residue content to its shared QueryProfiles,
// so a persistent search service that sees the same queries across many
// scheduling waves builds each profile once for the lifetime of the
// cache instead of once per wave. The cache is a bounded LRU: past max
// entries, the least recently used profile set is evicted, so queries
// that keep repeating — the ones whose profiles are worth holding —
// survive while one-off queries age out (correctness never depends on
// a hit, only steady-state allocation does). Safe for concurrent use.
//
// Hit/miss/eviction counters are atomics read by Stats, so observing
// the cache never extends the lock hold on the hot Get path.
type ProfileCache struct {
	m   *Matrix
	max int

	mu    sync.Mutex
	order *list.List // front = most recently used; values are *profileEntry
	index map[string]*list.Element

	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
}

// profileEntry is one residue-content → profiles mapping on the LRU
// list.
type profileEntry struct {
	key      string
	profiles *QueryProfiles
}

// ProfileCacheStats is a point-in-time snapshot of a ProfileCache's
// occupancy and counters.
type ProfileCacheStats struct {
	Entries   int
	Hits      uint64
	Misses    uint64
	Evictions uint64
}

// DefaultProfileCacheSize bounds a zero-configured ProfileCache.
const DefaultProfileCacheSize = 256

// NewProfileCache builds a cache over one matrix. max <= 0 selects
// DefaultProfileCacheSize.
func NewProfileCache(m *Matrix, max int) *ProfileCache {
	if max <= 0 {
		max = DefaultProfileCacheSize
	}
	return &ProfileCache{m: m, max: max, order: list.New(), index: make(map[string]*list.Element, max)}
}

// Get returns the shared profile set for a query's residue content,
// creating (and caching) it on first sight. Two sequences with equal
// residues share one entry regardless of their IDs — profiles depend
// only on residues and matrix.
func (c *ProfileCache) Get(query []byte) *QueryProfiles {
	key := string(query)
	c.mu.Lock()
	if el, ok := c.index[key]; ok {
		c.order.MoveToFront(el)
		p := el.Value.(*profileEntry).profiles
		c.mu.Unlock()
		c.hits.Add(1)
		return p
	}
	// The entry must own its residue bytes: it outlives the request that
	// supplied query, and the lazy profiles may be built long after a
	// caller reused or mutated its buffer.
	p := NewQueryProfiles(c.m, []byte(key))
	c.index[key] = c.order.PushFront(&profileEntry{key: key, profiles: p})
	// Evicting after inserting (rather than before) keeps the insert a
	// single code path; the loop restores the bound immediately, so no
	// caller can ever observe Len() > max once Get returns.
	var evicted uint64
	for c.order.Len() > c.max {
		back := c.order.Back()
		c.order.Remove(back)
		delete(c.index, back.Value.(*profileEntry).key)
		evicted++
	}
	c.mu.Unlock()
	c.misses.Add(1)
	if evicted > 0 {
		c.evictions.Add(evicted)
	}
	return p
}

// Len reports the number of cached profile sets.
func (c *ProfileCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Stats snapshots the cache's occupancy and counters.
func (c *ProfileCache) Stats() ProfileCacheStats {
	c.mu.Lock()
	entries := c.order.Len()
	c.mu.Unlock()
	return ProfileCacheStats{
		Entries:   entries,
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
	}
}
