// Package scoring provides substitution matrices, gap-penalty models and
// precomputed query profiles for Smith-Waterman alignment.
//
// Matrices are indexed by the dense residue codes of package alphabet; the
// row/column order of the protein matrices is exactly
// "ARNDCQEGHILKMFPSTWYVBZX*". Gap penalties follow the paper's affine-gap
// notation: Gs is the penalty for starting a gap and Ge for extending it,
// so a gap of length L costs Gs + L*Ge (Eqs. (3) and (4) of the paper).
package scoring

import (
	"fmt"

	"swdual/internal/alphabet"
)

// Matrix is a residue substitution matrix over an alphabet of up to 32
// residue codes. Scores are stored densely; lookups never allocate.
type Matrix struct {
	name  string
	n     int
	cells [32 * 32]int8
}

// NewMatrix builds a Matrix from a square table. The table must be n x n
// with n <= 32.
func NewMatrix(name string, table [][]int8) (*Matrix, error) {
	n := len(table)
	if n == 0 || n > 32 {
		return nil, fmt.Errorf("scoring: matrix %s has unsupported size %d", name, n)
	}
	m := &Matrix{name: name, n: n}
	for i, row := range table {
		if len(row) != n {
			return nil, fmt.Errorf("scoring: matrix %s row %d has %d entries, want %d", name, i, len(row), n)
		}
		for j, v := range row {
			m.cells[i*32+j] = v
		}
	}
	return m, nil
}

func mustMatrix(name string, table [][]int8) *Matrix {
	m, err := NewMatrix(name, table)
	if err != nil {
		panic(err)
	}
	return m
}

// Name returns the matrix name (e.g. "BLOSUM62").
func (m *Matrix) Name() string { return m.name }

// Size returns the number of residue codes covered.
func (m *Matrix) Size() int { return m.n }

// Score returns the substitution score for residue codes a and b.
func (m *Matrix) Score(a, b byte) int { return int(m.cells[int(a)*32+int(b)]) }

// Row returns the n scores of row a as int8 values; the returned slice
// aliases the matrix and must not be modified.
func (m *Matrix) Row(a byte) []int8 { return m.cells[int(a)*32 : int(a)*32+m.n] }

// Max returns the largest score in the matrix.
func (m *Matrix) Max() int {
	best := int(m.cells[0])
	for i := 0; i < m.n; i++ {
		for j := 0; j < m.n; j++ {
			if v := int(m.cells[i*32+j]); v > best {
				best = v
			}
		}
	}
	return best
}

// Min returns the smallest score in the matrix.
func (m *Matrix) Min() int {
	worst := int(m.cells[0])
	for i := 0; i < m.n; i++ {
		for j := 0; j < m.n; j++ {
			if v := int(m.cells[i*32+j]); v < worst {
				worst = v
			}
		}
	}
	return worst
}

// SelfScore returns the score of aligning seq against itself without gaps,
// i.e. the sum of diagonal entries. It upper-bounds no general alignment
// property but is a useful workload statistic.
func (m *Matrix) SelfScore(seq []byte) int {
	s := 0
	for _, r := range seq {
		s += m.Score(r, r)
	}
	return s
}

// Symmetric reports whether the matrix is symmetric (all standard
// substitution matrices are).
func (m *Matrix) Symmetric() bool {
	for i := 0; i < m.n; i++ {
		for j := i + 1; j < m.n; j++ {
			if m.cells[i*32+j] != m.cells[j*32+i] {
				return false
			}
		}
	}
	return true
}

// Gaps is the affine gap model of the paper: starting a gap costs Gs+Ge and
// each extension costs Ge. Both values are non-negative penalties.
type Gaps struct {
	Start  int // Gs: penalty charged once when a gap is opened
	Extend int // Ge: penalty charged for every gap column, including the first
}

// DefaultGaps matches the common protein-search setting (10/2 in SSEARCH
// terms expressed as Gs=10, Ge=2), also the CUDASW++ 2.0 default.
var DefaultGaps = Gaps{Start: 10, Extend: 2}

// Validate reports an error for non-positive or inconsistent penalties.
func (g Gaps) Validate() error {
	if g.Start < 0 || g.Extend <= 0 {
		return fmt.Errorf("scoring: invalid gap penalties Gs=%d Ge=%d (need Gs>=0, Ge>0)", g.Start, g.Extend)
	}
	return nil
}

// OpenCost returns the cost of the first residue of a gap (Gs+Ge).
func (g Gaps) OpenCost() int { return g.Start + g.Extend }

// Simple builds a match/mismatch matrix over the given alphabet size, as
// used for DNA comparisons (the paper's Figure 1 example uses ma=+1,
// mi=-1). Ambiguity codes (indexes >= core) score mismatch against
// everything including themselves.
func Simple(name string, n, core, match, mismatch int) *Matrix {
	table := make([][]int8, n)
	for i := range table {
		table[i] = make([]int8, n)
		for j := range table[i] {
			if i == j && i < core {
				table[i][j] = int8(match)
			} else {
				table[i][j] = int8(mismatch)
			}
		}
	}
	return mustMatrix(name, table)
}

// DNASimple is the classic +1/-1 nucleotide matrix of the paper's example.
var DNASimple = Simple("DNA+1/-1", alphabet.DNA.Len(), alphabet.DNA.Core(), 1, -1)

// ForAlphabet returns the default matrix for an alphabet: BLOSUM62 for
// proteins, +1/-1 for nucleic acids.
func ForAlphabet(a *alphabet.Alphabet) *Matrix {
	switch a.Name() {
	case "protein":
		return BLOSUM62
	case "dna":
		return DNASimple
	case "rna":
		return Simple("RNA+1/-1", a.Len(), a.Core(), 1, -1)
	}
	return nil
}

// ByName returns a built-in matrix by its canonical name.
func ByName(name string) (*Matrix, error) {
	switch name {
	case "BLOSUM62", "blosum62":
		return BLOSUM62, nil
	case "BLOSUM50", "blosum50":
		return BLOSUM50, nil
	case "PAM250", "pam250":
		return PAM250, nil
	case "DNA", "dna":
		return DNASimple, nil
	}
	return nil, fmt.Errorf("scoring: unknown matrix %q", name)
}
