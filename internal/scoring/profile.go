package scoring

import "fmt"

// Profile is a scalar query profile: for each residue code r the slice
// Rows[r] holds S(r, q[i]) for every query position i. Profiles turn the
// matrix lookup in the Smith-Waterman inner loop into a linear scan, the
// same trick CUDASW++ stores in texture/constant memory.
type Profile struct {
	Query  []byte // encoded query, retained for length and diagnostics
	NCodes int
	Rows   [][]int16
}

// NewProfile builds a scalar profile for an encoded query.
func NewProfile(m *Matrix, query []byte) *Profile {
	p := &Profile{Query: query, NCodes: m.Size(), Rows: make([][]int16, m.Size())}
	flat := make([]int16, m.Size()*len(query))
	for r := 0; r < m.Size(); r++ {
		row := flat[r*len(query) : (r+1)*len(query) : (r+1)*len(query)]
		for i, q := range query {
			row[i] = int16(m.Score(byte(r), q))
		}
		p.Rows[r] = row
	}
	return p
}

// StripedProfile8 is a Farrar-style striped query profile with 8-bit biased
// unsigned lanes packed into uint64 words (8 lanes per word, the SWAR
// analogue of an SSE2 xmm register holding 16 lanes).
//
// The query is split into SegLen segments; lane l of segment s corresponds
// to query position s + l*SegLen. Position indexes beyond the query length
// contribute the most negative score (bias 0 after biasing) so they can
// never start or extend an alignment.
type StripedProfile8 struct {
	QueryLen int
	SegLen   int // number of uint64 words per residue row
	Bias     uint8
	Rows     [][]uint64 // Rows[r][s] packs 8 lanes for segment word s
}

// Lanes8 is the number of 8-bit lanes per SWAR word.
const Lanes8 = 8

// Lanes16 is the number of 16-bit lanes per SWAR word.
const Lanes16 = 4

// NewStripedProfile8 builds the biased 8-bit striped profile. The bias is
// -min(matrix) so all stored values are non-negative; engines subtract it
// after each add. Returns an error if the matrix range cannot be biased
// into 8 bits.
func NewStripedProfile8(m *Matrix, query []byte) (*StripedProfile8, error) {
	minV, maxV := m.Min(), m.Max()
	if maxV-minV > 200 { // leave headroom below the 255 saturation ceiling
		return nil, fmt.Errorf("scoring: matrix %s range [%d,%d] too wide for 8-bit profile", m.Name(), minV, maxV)
	}
	bias := uint8(0)
	if minV < 0 {
		bias = uint8(-minV)
	}
	segLen := (len(query) + Lanes8 - 1) / Lanes8
	if segLen == 0 {
		segLen = 1
	}
	p := &StripedProfile8{QueryLen: len(query), SegLen: segLen, Bias: bias, Rows: make([][]uint64, m.Size())}
	for r := 0; r < m.Size(); r++ {
		row := make([]uint64, segLen)
		for s := 0; s < segLen; s++ {
			var w uint64
			for l := 0; l < Lanes8; l++ {
				pos := s + l*segLen
				v := 0 // biased "minus infinity": raw score -bias
				if pos < len(query) {
					v = m.Score(byte(r), query[pos]) + int(bias)
				}
				w |= uint64(uint8(v)) << (8 * l)
			}
			row[s] = w
		}
		p.Rows[r] = row
	}
	return p, nil
}

// StripedProfile16 is the 16-bit striped profile used when 8-bit scores
// may overflow (4 lanes per uint64 word). Like the 8-bit profile it stores
// biased unsigned values (score + Bias >= 0); out-of-range positions store
// 0, which after bias subtraction acts as the most negative score.
type StripedProfile16 struct {
	QueryLen int
	SegLen   int
	Bias     uint16
	Rows     [][]uint64 // Rows[r][s] packs 4 uint16 lanes
}

// NewStripedProfile16 builds the biased 16-bit striped profile.
func NewStripedProfile16(m *Matrix, query []byte) *StripedProfile16 {
	bias := uint16(0)
	if minV := m.Min(); minV < 0 {
		bias = uint16(-minV)
	}
	segLen := (len(query) + Lanes16 - 1) / Lanes16
	if segLen == 0 {
		segLen = 1
	}
	p := &StripedProfile16{QueryLen: len(query), SegLen: segLen, Bias: bias, Rows: make([][]uint64, m.Size())}
	for r := 0; r < m.Size(); r++ {
		row := make([]uint64, segLen)
		for s := 0; s < segLen; s++ {
			var w uint64
			for l := 0; l < Lanes16; l++ {
				pos := s + l*segLen
				v := 0
				if pos < len(query) {
					v = m.Score(byte(r), query[pos]) + int(bias)
				}
				w |= uint64(uint16(v)) << (16 * l)
			}
			row[s] = w
		}
		p.Rows[r] = row
	}
	return p
}
