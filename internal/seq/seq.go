// Package seq defines the in-memory representation of biological sequences
// and sequence sets shared by every engine, the database formats and the
// master-slave runtime.
package seq

import (
	"fmt"
	"hash/crc32"
	"sort"

	"swdual/internal/alphabet"
)

// Sequence is one encoded biological sequence. Residues hold dense codes of
// the set's alphabet (see package alphabet), not ASCII.
type Sequence struct {
	ID       string // accession / identifier (first word of a FASTA header)
	Desc     string // rest of the FASTA header, may be empty
	Residues []byte // encoded residues
}

// Len returns the number of residues.
func (s *Sequence) Len() int { return len(s.Residues) }

// Set is an ordered collection of sequences over one alphabet. The zero
// value is an empty protein set.
type Set struct {
	Alpha *alphabet.Alphabet
	Seqs  []Sequence

	// checksum caches the Checksum value when it is known without
	// scanning — a memory-mapped .swdb header records exactly this CRC,
	// and trusting it is what keeps opening a huge corpus O(index)
	// instead of O(data). Mutating or reordering the set clears it.
	checksum    uint32
	hasChecksum bool
}

// NewSet returns an empty set over the given alphabet (protein if nil).
func NewSet(a *alphabet.Alphabet) *Set {
	if a == nil {
		a = alphabet.Protein
	}
	return &Set{Alpha: a}
}

// Add appends a sequence built from ASCII residues, encoding them with the
// set's alphabet.
func (st *Set) Add(id, desc string, ascii []byte) error {
	enc, err := st.Alpha.Encode(ascii)
	if err != nil {
		return fmt.Errorf("sequence %s: %w", id, err)
	}
	st.hasChecksum = false
	st.Seqs = append(st.Seqs, Sequence{ID: id, Desc: desc, Residues: enc})
	return nil
}

// AddEncoded appends an already-encoded sequence without validation.
func (st *Set) AddEncoded(id, desc string, residues []byte) {
	st.hasChecksum = false
	st.Seqs = append(st.Seqs, Sequence{ID: id, Desc: desc, Residues: residues})
}

// Len returns the number of sequences in the set.
func (st *Set) Len() int { return len(st.Seqs) }

// TotalResidues returns the sum of sequence lengths; together with query
// lengths it determines the dynamic-programming cell volume of a search.
func (st *Set) TotalResidues() int64 {
	var t int64
	for i := range st.Seqs {
		t += int64(len(st.Seqs[i].Residues))
	}
	return t
}

// Checksum fingerprints the set: the CRC-32 (IEEE) of every sequence's
// encoded residues, in order. This is the one database fingerprint the
// whole module agrees on — the persistent engine, the sharding facade,
// the cluster runtime and the wire protocol all compare this value to
// guard against two ends holding different sequences.
func (st *Set) Checksum() uint32 {
	if st.hasChecksum {
		return st.checksum
	}
	crc := crc32.NewIEEE()
	for i := range st.Seqs {
		crc.Write(st.Seqs[i].Residues)
	}
	return crc.Sum32()
}

// SetPrecomputedChecksum installs a known Checksum value so later calls
// skip the residue scan. The caller vouches that c is the CRC-32 (IEEE)
// of the set's residues in order — a .swdb header stores exactly that.
// Any mutation of the set clears it.
func (st *Set) SetPrecomputedChecksum(c uint32) {
	st.checksum, st.hasChecksum = c, true
}

// Stats summarizes a set the way the paper's Table III does.
type Stats struct {
	Count         int
	TotalResidues int64
	MinLen        int
	MaxLen        int
	MeanLen       float64
}

// Stats computes summary statistics over the set.
func (st *Set) Stats() Stats {
	s := Stats{Count: len(st.Seqs)}
	if s.Count == 0 {
		return s
	}
	s.MinLen = st.Seqs[0].Len()
	for i := range st.Seqs {
		l := st.Seqs[i].Len()
		s.TotalResidues += int64(l)
		if l < s.MinLen {
			s.MinLen = l
		}
		if l > s.MaxLen {
			s.MaxLen = l
		}
	}
	s.MeanLen = float64(s.TotalResidues) / float64(s.Count)
	return s
}

// SortByLengthAsc orders sequences by increasing length (stable on ID).
// CUDASW++-style GPU kernels sort subjects this way to minimize divergence
// inside warps.
func (st *Set) SortByLengthAsc() {
	st.hasChecksum = false // Checksum is order-sensitive
	sort.SliceStable(st.Seqs, func(i, j int) bool {
		if li, lj := st.Seqs[i].Len(), st.Seqs[j].Len(); li != lj {
			return li < lj
		}
		return st.Seqs[i].ID < st.Seqs[j].ID
	})
}

// SortByLengthDesc orders sequences by decreasing length.
func (st *Set) SortByLengthDesc() {
	st.hasChecksum = false // Checksum is order-sensitive
	sort.SliceStable(st.Seqs, func(i, j int) bool {
		if li, lj := st.Seqs[i].Len(), st.Seqs[j].Len(); li != lj {
			return li > lj
		}
		return st.Seqs[i].ID < st.Seqs[j].ID
	})
}

// Slice returns a shallow sub-set covering Seqs[lo:hi].
func (st *Set) Slice(lo, hi int) *Set {
	return &Set{Alpha: st.Alpha, Seqs: st.Seqs[lo:hi]}
}

// Clone returns a deep copy of the set (same content, so a precomputed
// checksum carries over).
func (st *Set) Clone() *Set {
	out := &Set{Alpha: st.Alpha, Seqs: make([]Sequence, len(st.Seqs)),
		checksum: st.checksum, hasChecksum: st.hasChecksum}
	for i := range st.Seqs {
		r := make([]byte, len(st.Seqs[i].Residues))
		copy(r, st.Seqs[i].Residues)
		out.Seqs[i] = Sequence{ID: st.Seqs[i].ID, Desc: st.Seqs[i].Desc, Residues: r}
	}
	return out
}
