package seq

import (
	"testing"

	"swdual/internal/alphabet"
)

func build(t *testing.T) *Set {
	t.Helper()
	s := NewSet(alphabet.Protein)
	for _, rec := range []struct {
		id  string
		res string
	}{
		{"b", "ARNDC"},
		{"a", "AR"},
		{"c", "ARNDCQEGH"},
		{"d", "AR"},
	} {
		if err := s.Add(rec.id, "", []byte(rec.res)); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func TestNewSetDefaultsToProtein(t *testing.T) {
	if NewSet(nil).Alpha != alphabet.Protein {
		t.Fatal("nil alphabet should default to protein")
	}
}

func TestAddRejectsInvalid(t *testing.T) {
	s := NewSet(alphabet.Protein)
	if err := s.Add("bad", "", []byte("AR#")); err == nil {
		t.Fatal("expected encode error")
	}
}

func TestStats(t *testing.T) {
	s := build(t)
	st := s.Stats()
	if st.Count != 4 || st.MinLen != 2 || st.MaxLen != 9 || st.TotalResidues != 18 {
		t.Fatalf("stats %+v", st)
	}
	if st.MeanLen != 4.5 {
		t.Fatalf("mean %v", st.MeanLen)
	}
	var empty Set
	if got := empty.Stats(); got.Count != 0 || got.MaxLen != 0 {
		t.Fatalf("empty stats %+v", got)
	}
}

func TestSortByLength(t *testing.T) {
	s := build(t)
	s.SortByLengthAsc()
	// Ties break on ID: "a" before "d".
	wantAsc := []string{"a", "d", "b", "c"}
	for i, id := range wantAsc {
		if s.Seqs[i].ID != id {
			t.Fatalf("asc order %v, want %v at %d", s.Seqs[i].ID, id, i)
		}
	}
	s.SortByLengthDesc()
	wantDesc := []string{"c", "b", "a", "d"}
	for i, id := range wantDesc {
		if s.Seqs[i].ID != id {
			t.Fatalf("desc order %v, want %v at %d", s.Seqs[i].ID, id, i)
		}
	}
}

func TestSliceAndClone(t *testing.T) {
	s := build(t)
	sub := s.Slice(1, 3)
	if sub.Len() != 2 || sub.Seqs[0].ID != "a" {
		t.Fatalf("slice %+v", sub.Seqs)
	}
	c := s.Clone()
	c.Seqs[0].Residues[0] = 99
	if s.Seqs[0].Residues[0] == 99 {
		t.Fatal("clone shares residue storage")
	}
}

func TestTotalResidues(t *testing.T) {
	s := build(t)
	if s.TotalResidues() != 18 {
		t.Fatalf("total %d", s.TotalResidues())
	}
}

// TestPrecomputedChecksum pins the contract the mapped database relies
// on: a checksum installed by SetPrecomputedChecksum is returned as-is,
// any mutation (append or reorder) invalidates it back to the scanned
// value, and Clone carries it over.
func TestPrecomputedChecksum(t *testing.T) {
	s := build(t)
	scanned := s.Checksum()

	s.SetPrecomputedChecksum(scanned)
	if got := s.Checksum(); got != scanned {
		t.Fatalf("precomputed checksum %08x, want the installed %08x", got, scanned)
	}
	// A wrong precomputed value is trusted verbatim — that is the whole
	// point (the .swdb header was verified at write time, not re-scanned
	// at open) — so installing junk must surface as junk.
	s.SetPrecomputedChecksum(scanned + 1)
	if got := s.Checksum(); got != scanned+1 {
		t.Fatalf("precomputed checksum %08x, want %08x", got, scanned+1)
	}

	// Mutation invalidates: Add changes content, Sort changes order, and
	// the checksum is order-sensitive.
	s.SetPrecomputedChecksum(scanned)
	if err := s.Add("e", "", []byte("ARN")); err != nil {
		t.Fatal(err)
	}
	if got := s.Checksum(); got == scanned {
		t.Fatal("Add did not invalidate the precomputed checksum")
	}

	s2 := build(t)
	s2.SetPrecomputedChecksum(12345)
	s2.SortByLengthAsc()
	if got := s2.Checksum(); got == 12345 {
		t.Fatal("sort did not invalidate the precomputed checksum")
	}

	// Clone propagates the trusted value (same content, same order).
	s3 := build(t)
	s3.SetPrecomputedChecksum(777)
	if got := s3.Clone().Checksum(); got != 777 {
		t.Fatalf("clone checksum %08x, want the propagated 777", got)
	}
}
