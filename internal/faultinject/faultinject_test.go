package faultinject

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"swdual/internal/alphabet"
	"swdual/internal/engine"
	"swdual/internal/synth"
)

// waitFor polls cond until it holds or the deadline passes — bounded
// convergence on observable state, never a fixed sleep.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func testEngine(t *testing.T, seed int64) *engine.Searcher {
	t.Helper()
	db := synth.RandomSet(alphabet.Protein, 20, 10, 60, seed)
	e, err := engine.New(db, engine.Config{CPUs: 1, GPUs: 0, TopK: 5})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

// TestIdleWrapperIsPassThrough pins the no-fault contract: a wrapper
// with no rules answers byte-identical to the inner backend and
// reports the inner facade values unchanged.
func TestIdleWrapperIsPassThrough(t *testing.T) {
	inner := testEngine(t, 101)
	b := Wrap(inner)
	queries := synth.RandomSet(alphabet.Protein, 3, 12, 40, 102)

	want, err := inner.Search(t.Context(), queries, engine.SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := b.Search(t.Context(), queries, engine.SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for qi := range want.Results {
		if !reflect.DeepEqual(got.Results[qi].Hits, want.Results[qi].Hits) {
			t.Fatalf("query %d: wrapped hits differ from direct hits", qi)
		}
	}
	if b.Checksum() != inner.Checksum() || b.Alphabet() != inner.Alphabet() {
		t.Fatal("wrapper changed facade values")
	}
	if got, want := b.Calls(OpSearch), uint64(1); got != want {
		t.Fatalf("Calls(OpSearch) = %d, want %d", got, want)
	}
	if b.Injected() != 0 {
		t.Fatalf("idle wrapper injected %d faults", b.Injected())
	}
}

// TestNthCallTrigger scripts "the second search fails, the rest
// succeed" and checks the schedule fires on exactly that call — the
// determinism every chaos suite builds on.
func TestNthCallTrigger(t *testing.T) {
	inner := testEngine(t, 111)
	boom := errors.New("injected fault")
	b := Wrap(inner, Rule{Op: OpSearch, After: 2, Count: 1, Fault: Fault{Err: boom}})
	queries := synth.RandomSet(alphabet.Protein, 1, 12, 40, 112)

	for call := 1; call <= 4; call++ {
		_, err := b.Search(t.Context(), queries, engine.SearchOptions{})
		if call == 2 {
			if !errors.Is(err, boom) {
				t.Fatalf("call 2: err = %v, want the injected fault", err)
			}
		} else if err != nil {
			t.Fatalf("call %d: %v", call, err)
		}
	}
	if got := b.Injected(); got != 1 {
		t.Fatalf("Injected = %d, want 1", got)
	}
	if got := b.Calls(OpSearch); got != 4 {
		t.Fatalf("Calls(OpSearch) = %d, want 4", got)
	}
}

// TestGateSynchronizedFailure parks a search at a gate, proves it is
// mid-flight via the gate's announcement (no sleeps), then releases it
// into its scripted error — the "connection died mid-stream, on cue"
// primitive the degradation suites use.
func TestGateSynchronizedFailure(t *testing.T) {
	inner := testEngine(t, 121)
	gate := NewGate()
	boom := errors.New("killed mid-stream")
	b := Wrap(inner, Rule{Op: OpSearch, Fault: Fault{Gate: gate, Err: boom}})
	queries := synth.RandomSet(alphabet.Protein, 1, 12, 40, 122)

	done := make(chan error, 1)
	go func() {
		_, err := b.Search(context.Background(), queries, engine.SearchOptions{})
		done <- err
	}()
	<-gate.Entered() // the call is provably parked
	select {
	case err := <-done:
		t.Fatalf("search returned %v before the gate released", err)
	default:
	}
	gate.Release()
	if err := <-done; !errors.Is(err, boom) {
		t.Fatalf("released search: err = %v, want the injected fault", err)
	}
}

// TestCancellationUnblocksParkedCall is the cancellation baseline: a
// call parked at a never-released gate must return the context error
// the moment its caller gives up, leaving no goroutine behind.
func TestCancellationUnblocksParkedCall(t *testing.T) {
	inner := testEngine(t, 131)
	gate := NewGate()
	b := Wrap(inner, Rule{Op: OpSearch, Fault: Fault{Gate: gate}})
	queries := synth.RandomSet(alphabet.Protein, 1, 12, 40, 132)

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := b.Search(ctx, queries, engine.SearchOptions{})
		done <- err
	}()
	<-gate.Entered()
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled parked search: err = %v, want context.Canceled", err)
	}
}

// TestCloseUnblocksHangAndLeaksNothing is the goroutine-leak baseline:
// hung and parked calls all drain on Close (with engine.ErrClosed),
// and the goroutine count settles back to where it started.
func TestCloseUnblocksHangAndLeaksNothing(t *testing.T) {
	baseline, prev := 0, -1
	waitFor(t, "goroutine baseline to settle", func() bool {
		runtime.GC()
		n := runtime.NumGoroutine()
		stable := n == prev
		prev, baseline = n, n
		return stable
	})

	db := synth.RandomSet(alphabet.Protein, 20, 10, 60, 141)
	inner, err := engine.New(db, engine.Config{CPUs: 1, GPUs: 0, TopK: 5})
	if err != nil {
		t.Fatal(err)
	}
	gate := NewGate()
	b := Wrap(inner,
		Rule{Op: OpSearch, Count: 2, Fault: Fault{Hang: true}},
		Rule{Op: OpSearch, After: 3, Fault: Fault{Gate: gate}})
	queries := synth.RandomSet(alphabet.Protein, 1, 12, 40, 142)

	const parked = 4 // 2 hung + 2 gated
	var wg sync.WaitGroup
	errs := make(chan error, parked)
	for i := 0; i < parked; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := b.Search(context.Background(), queries, engine.SearchOptions{})
			errs <- err
		}()
	}
	// The two gated calls announce themselves; the two hung calls are
	// observable through the call counter.
	<-gate.Entered()
	<-gate.Entered()
	waitFor(t, "all calls to reach the schedule", func() bool { return b.Calls(OpSearch) == parked })

	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	for i := 0; i < parked; i++ {
		if err := <-errs; !errors.Is(err, engine.ErrClosed) {
			t.Fatalf("call released by Close: err = %v, want engine.ErrClosed", err)
		}
	}
	waitFor(t, "goroutines back to baseline", func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= baseline
	})
}
