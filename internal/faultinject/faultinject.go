// Package faultinject is the deterministic chaos harness for every
// fault-tolerance suite in this module: a transparent engine.Backend
// wrapper that injects failures from a scripted schedule instead of
// relying on timing, process kills, or bespoke per-test shims.
//
// A schedule is a list of Rules. Each rule names a backend operation
// (OpSearch, OpStats, …), a trigger window in that operation's own
// call sequence (fire on the After-th call, for Count calls), and a
// Fault: an error to return, extra latency, a hang until cancellation,
// or a Gate that parks the call until the test releases it. Matching
// is purely call-count based, so a test's Nth search fails on every
// run, under -race, at any -count — determinism is the point.
//
// Gates are how tests assert "saturated" or "mid-stream" states
// without sleeping: a gated call announces itself on Gate.Entered()
// before blocking, the test observes the announcement, mutates
// whatever it wants to race against (kills a sibling, changes the
// schedule), then calls Gate.Release(). A parked call still honors its
// context and the wrapper's Close, so no goroutine outlives a test.
//
// An idle wrapper (no rules, or none firing) is a pure pass-through:
// results are the inner backend's, byte for byte. The no-fault
// equivalence suites pin that, which is what makes the wrapper safe to
// leave in a test topology while proving full-coverage behavior.
package faultinject

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"swdual/internal/alphabet"
	"swdual/internal/engine"
	"swdual/internal/master"
	"swdual/internal/sched"
	"swdual/internal/seq"
)

// Op names one engine.Backend operation for rule matching.
type Op uint8

const (
	OpSearch Op = iota
	OpPlan
	OpStats
	OpChecksum
	OpDBLengths
	OpAlphabet
	opCount
)

// String names the op for test failure messages.
func (o Op) String() string {
	switch o {
	case OpSearch:
		return "Search"
	case OpPlan:
		return "Plan"
	case OpStats:
		return "Stats"
	case OpChecksum:
		return "Checksum"
	case OpDBLengths:
		return "DBLengths"
	case OpAlphabet:
		return "Alphabet"
	}
	return "unknown"
}

// Gate synchronizes a test with calls parked by a Fault. Every parked
// call sends one token on Entered before blocking, so a test can wait
// for exactly N calls to be provably in flight; Release unparks all
// current and future arrivals at once.
type Gate struct {
	entered chan struct{}
	release chan struct{}
	once    sync.Once
}

// NewGate builds a gate that can announce any number of parked calls
// without blocking them.
func NewGate() *Gate {
	return &Gate{entered: make(chan struct{}, 1024), release: make(chan struct{})}
}

// Entered yields one token per call that reached the gate — receive N
// tokens and exactly N calls are parked (or already released).
func (g *Gate) Entered() <-chan struct{} { return g.entered }

// Release unparks every waiting call and lets future arrivals straight
// through. Idempotent.
func (g *Gate) Release() { g.once.Do(func() { close(g.release) }) }

// Fault is what happens to one matched call, applied in order: park at
// the Gate, wait out the Latency, then either return Err, hang until
// the context or wrapper dies (Hang), or proceed into the inner
// backend.
type Fault struct {
	// Err, when non-nil, is returned instead of calling the inner
	// backend. For ops that return no error (Stats, Checksum, …) a
	// zero value stands in for the failure.
	Err error
	// Latency delays the call. Prefer a Gate in tests — latency is for
	// exercising hedging and timeout paths where a duration is the
	// scenario itself.
	Latency time.Duration
	// Hang blocks the call until its context is done (Search) or the
	// wrapper is closed, modeling a silent peer.
	Hang bool
	// Gate, when non-nil, parks the call until Gate.Release (announcing
	// itself on Gate.Entered first). Combined with Err, the call fails
	// only when the test says so — a connection dying mid-stream, on
	// cue.
	Gate *Gate
}

// Rule fires Fault on a window of one op's calls: the After-th call
// (1-based; 0 means the first) through After+Count-1 (Count 0 means
// every call from After on). Rules are matched in order; the first hit
// wins.
type Rule struct {
	Op    Op
	After uint64
	Count uint64
	Fault Fault
}

// matches reports whether the rule fires on the seq-th call (1-based).
func (r *Rule) matches(op Op, seq uint64) bool {
	if r.Op != op {
		return false
	}
	first := r.After
	if first == 0 {
		first = 1
	}
	if seq < first {
		return false
	}
	return r.Count == 0 || seq < first+r.Count
}

// Backend wraps an inner engine.Backend with a scripted fault
// schedule. Safe for any number of goroutines; SetRules may be called
// while calls are in flight (in-flight calls keep the schedule they
// matched against).
type Backend struct {
	inner engine.Backend

	mu    sync.Mutex
	rules []Rule
	calls [opCount]uint64

	injected atomic.Uint64

	closed    chan struct{}
	closeOnce sync.Once
}

var _ engine.Backend = (*Backend)(nil)

// Wrap builds the fault-injecting wrapper. With no rules it is a pure
// pass-through.
func Wrap(inner engine.Backend, rules ...Rule) *Backend {
	return &Backend{inner: inner, rules: rules, closed: make(chan struct{})}
}

// SetRules replaces the schedule (and only the schedule: call counters
// keep running, so a rule installed after call 3 with After 4 fires on
// the very next call).
func (b *Backend) SetRules(rules ...Rule) {
	b.mu.Lock()
	b.rules = append([]Rule(nil), rules...)
	b.mu.Unlock()
}

// Injected counts faults actually applied (calls that matched a rule).
func (b *Backend) Injected() uint64 { return b.injected.Load() }

// Calls reports how many times op was invoked on the wrapper.
func (b *Backend) Calls(op Op) uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.calls[op]
}

// match advances op's call counter and returns the fault to apply, if
// any rule fires on this call.
func (b *Backend) match(op Op) (Fault, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.calls[op]++
	seq := b.calls[op]
	for i := range b.rules {
		if b.rules[i].matches(op, seq) {
			return b.rules[i].Fault, true
		}
	}
	return Fault{}, false
}

// apply runs one matched fault to completion. It returns the injected
// error to surface (nil means proceed into the inner backend) — for a
// parked or hanging call, only once the gate released, the context
// died, or the wrapper closed. ctx may be nil for context-free ops.
func (b *Backend) apply(ctx context.Context, f Fault) error {
	b.injected.Add(1)
	var ctxDone <-chan struct{}
	if ctx != nil {
		ctxDone = ctx.Done()
	}
	if f.Gate != nil {
		select {
		case f.Gate.entered <- struct{}{}:
		default: // a test that parks >1024 calls only loses announcements
		}
		select {
		case <-f.Gate.release:
		case <-ctxDone:
			return ctx.Err()
		case <-b.closed:
			return engine.ErrClosed
		}
	}
	if f.Latency > 0 {
		t := time.NewTimer(f.Latency)
		defer t.Stop()
		select {
		case <-t.C:
		case <-ctxDone:
			return ctx.Err()
		case <-b.closed:
			return engine.ErrClosed
		}
	}
	if f.Hang {
		select {
		case <-ctxDone:
			return ctx.Err()
		case <-b.closed:
			return engine.ErrClosed
		}
	}
	return f.Err
}

// Search applies the schedule, then delegates.
func (b *Backend) Search(ctx context.Context, queries *seq.Set, opts engine.SearchOptions) (*master.Report, error) {
	if f, ok := b.match(OpSearch); ok {
		if err := b.apply(ctx, f); err != nil {
			return nil, err
		}
	}
	return b.inner.Search(ctx, queries, opts)
}

// Plan applies the schedule, then delegates.
func (b *Backend) Plan(queryLens []int) (*sched.Schedule, error) {
	if f, ok := b.match(OpPlan); ok {
		if err := b.apply(context.Background(), f); err != nil {
			return nil, err
		}
	}
	return b.inner.Plan(queryLens)
}

// Stats applies the schedule (a faulted call reports a zero snapshot —
// the op has no error channel), then delegates.
func (b *Backend) Stats() engine.Stats {
	if f, ok := b.match(OpStats); ok {
		if err := b.apply(context.Background(), f); err != nil {
			return engine.Stats{}
		}
	}
	return b.inner.Stats()
}

// Checksum applies the schedule (a faulted call reports 0), then
// delegates.
func (b *Backend) Checksum() uint32 {
	if f, ok := b.match(OpChecksum); ok {
		if err := b.apply(context.Background(), f); err != nil {
			return 0
		}
	}
	return b.inner.Checksum()
}

// DBLengths applies the schedule (a faulted call reports nil), then
// delegates.
func (b *Backend) DBLengths() []int {
	if f, ok := b.match(OpDBLengths); ok {
		if err := b.apply(context.Background(), f); err != nil {
			return nil
		}
	}
	return b.inner.DBLengths()
}

// Alphabet applies the schedule (a faulted call reports nil), then
// delegates.
func (b *Backend) Alphabet() *alphabet.Alphabet {
	if f, ok := b.match(OpAlphabet); ok {
		if err := b.apply(context.Background(), f); err != nil {
			return nil
		}
	}
	return b.inner.Alphabet()
}

// Close releases every parked and hanging call (they fail with
// engine.ErrClosed) and closes the inner backend. Idempotent.
func (b *Backend) Close() error {
	b.closeOnce.Do(func() { close(b.closed) })
	return b.inner.Close()
}
