package engine

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"swdual/internal/master"
)

// waitStats polls the Searcher's counters until cond holds — the
// deterministic alternative to wall-clock sleeps (see pipeline_test.go).
func waitStats(t *testing.T, s *Searcher, desc string, cond func(Stats) bool) {
	t.Helper()
	deadline := time.After(10 * time.Second)
	for !cond(s.Stats()) {
		select {
		case <-deadline:
			t.Fatalf("timeout waiting for %s; stats %+v", desc, s.Stats())
		case <-time.After(time.Millisecond):
		}
	}
}

// TestCachedSearchMatchesUncached is the engine-layer equivalence
// proof: with the cache on, repeated and first-time searches return
// hits byte-identical to an uncached Searcher, while the counters show
// the repeats never reached the dispatcher.
func TestCachedSearchMatchesUncached(t *testing.T) {
	db, queries := testSets(21, 22, 50, 8)
	plain, err := New(db, Config{CPUs: 2, GPUs: 2, TopK: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	cached, err := New(db, Config{CPUs: 2, GPUs: 2, TopK: 5, Cache: true})
	if err != nil {
		t.Fatal(err)
	}
	defer cached.Close()
	want, err := plain.Search(context.Background(), queries, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	const rounds = 4
	for round := 0; round < rounds; round++ {
		rep, err := cached.Search(context.Background(), queries, SearchOptions{})
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		sameHits(t, "cached round", rep, want)
	}
	st := cached.Stats()
	if st.CacheMisses != 1 || st.CacheHits != rounds-1 {
		t.Fatalf("cache misses/hits %d/%d, want 1/%d", st.CacheMisses, st.CacheHits, rounds-1)
	}
	if st.Waves != 1 {
		t.Fatalf("%d waves for %d identical searches, want 1", st.Waves, rounds)
	}
	if st.Searches != rounds {
		t.Fatalf("searches %d, want %d", st.Searches, rounds)
	}
}

// TestCacheHitReturnsDefensiveCopies mutates a served report's hits and
// checks the cached answer is unharmed.
func TestCacheHitReturnsDefensiveCopies(t *testing.T) {
	db, queries := testSets(23, 24, 40, 6)
	s, err := New(db, Config{CPUs: 2, GPUs: 2, TopK: 5, Cache: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	want, err := s.Search(context.Background(), queries, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	pristine := make([][]master.Hit, len(want.Results))
	for i, r := range want.Results {
		pristine[i] = append([]master.Hit(nil), r.Hits...)
	}
	for round := 0; round < 2; round++ {
		rep, err := s.Search(context.Background(), queries, SearchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		for qi := range rep.Results {
			for hi := range rep.Results[qi].Hits {
				if rep.Results[qi].Hits[hi] != pristine[qi][hi] {
					t.Fatalf("round %d query %d hit %d changed: %+v vs %+v",
						round, qi, hi, rep.Results[qi].Hits[hi], pristine[qi][hi])
				}
				// Corrupt the served copy; the next hit must be pristine.
				rep.Results[qi].Hits[hi].Score = -999
				rep.Results[qi].Hits[hi].SeqID = "corrupted"
			}
		}
	}
}

// TestCacheTopKInvalidates checks the effective TopK is part of the
// fingerprint: the same queries under a different cap run a fresh wave,
// and each cap's answer replays correctly.
func TestCacheTopKInvalidates(t *testing.T) {
	db, queries := testSets(25, 26, 40, 6)
	s, err := New(db, Config{CPUs: 2, GPUs: 2, TopK: 5, Cache: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	at3, err := s.Search(context.Background(), queries, SearchOptions{TopK: 3})
	if err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Waves != 1 {
		t.Fatalf("waves %d after first search", st.Waves)
	}
	at5, err := s.Search(context.Background(), queries, SearchOptions{TopK: 5})
	if err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Waves != 2 || st.CacheHits != 0 {
		t.Fatalf("different TopK must miss: waves %d, hits %d", st.Waves, st.CacheHits)
	}
	for qi := range at3.Results {
		if len(at3.Results[qi].Hits) > 3 {
			t.Fatalf("query %d: %d hits above cap 3", qi, len(at3.Results[qi].Hits))
		}
	}
	again3, err := s.Search(context.Background(), queries, SearchOptions{TopK: 3})
	if err != nil {
		t.Fatal(err)
	}
	sameHits(t, "TopK 3 replay", again3, at3)
	again5, err := s.Search(context.Background(), queries, SearchOptions{TopK: 5})
	if err != nil {
		t.Fatal(err)
	}
	sameHits(t, "TopK 5 replay", again5, at5)
	if st := s.Stats(); st.Waves != 2 || st.CacheHits != 2 {
		t.Fatalf("replays ran waves: %+v", st)
	}
}

// TestCollapseConcurrentIdenticalSearches pins a wave open with the
// gate worker, piles 7 identical searches behind the leader, and checks
// they all ride the leader's single wave: one wave total, every report
// identical, and the wave's answer cached for the 9th search.
func TestCollapseConcurrentIdenticalSearches(t *testing.T) {
	db, queries := testSets(27, 28, 10, 3)
	gw := newGateWorker("gate-0")
	s, err := New(db, Config{Workers: []master.Worker{gw}, TopK: 3, Cache: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	const followers = 7
	reports := make([]*master.Report, followers+1)
	errs := make([]error, followers+1)
	var wg sync.WaitGroup
	search := func(i int) {
		defer wg.Done()
		reports[i], errs[i] = s.Search(context.Background(), queries, SearchOptions{})
	}
	wg.Add(1)
	go search(0)
	<-gw.started // the leader's wave is in flight, worker pinned
	for i := 1; i <= followers; i++ {
		wg.Add(1)
		go search(i)
	}
	// Followers register deterministically: each increments the
	// collapsed counter before blocking on the leader's call.
	waitStats(t, s, "followers to join", func(st Stats) bool { return st.CollapsedSearches == followers })
	close(gw.release)
	wg.Wait()
	for i := range errs {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
	}
	for i := 1; i < len(reports); i++ {
		sameHits(t, "follower", reports[i], reports[0])
	}
	st := s.Stats()
	if st.Waves != 1 {
		t.Fatalf("%d waves for %d collapsed searches, want 1", st.Waves, followers+1)
	}
	if st.CacheMisses != followers+1 || st.CacheHits != 0 {
		t.Fatalf("misses/hits %d/%d during collapse", st.CacheMisses, st.CacheHits)
	}
	// The collapsed wave's answer is cached: a later identical search
	// is a pure hit, still one wave ever.
	rep, err := s.Search(context.Background(), queries, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sameHits(t, "post-collapse hit", rep, reports[0])
	if st := s.Stats(); st.Waves != 1 || st.CacheHits != 1 {
		t.Fatalf("post-collapse stats: %+v", st)
	}
}

// TestFollowerCancellationLeavesLeader cancels one follower mid-collapse
// and checks it returns ctx.Err() promptly — while the leader's wave is
// still pinned open — without disturbing the leader or its other
// followers.
func TestFollowerCancellationLeavesLeader(t *testing.T) {
	db, queries := testSets(29, 30, 10, 3)
	gw := newGateWorker("gate-0")
	s, err := New(db, Config{Workers: []master.Worker{gw}, TopK: 3, Cache: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var wg sync.WaitGroup
	var leaderRep, followerRep *master.Report
	var leaderErr, followerErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		leaderRep, leaderErr = s.Search(context.Background(), queries, SearchOptions{})
	}()
	<-gw.started
	ctx, cancel := context.WithCancel(context.Background())
	doomed := make(chan error, 1)
	go func() {
		_, err := s.Search(ctx, queries, SearchOptions{})
		doomed <- err
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		followerRep, followerErr = s.Search(context.Background(), queries, SearchOptions{})
	}()
	waitStats(t, s, "both followers to join", func(st Stats) bool { return st.CollapsedSearches == 2 })
	cancel()
	// The canceled follower must return promptly even though the wave it
	// was waiting on is still pinned open by the gate worker.
	select {
	case err := <-doomed:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("canceled follower returned %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("canceled follower stuck behind the leader's wave")
	}
	close(gw.release)
	wg.Wait()
	if leaderErr != nil || followerErr != nil {
		t.Fatalf("leader %v, follower %v after a sibling canceled", leaderErr, followerErr)
	}
	sameHits(t, "surviving follower", followerRep, leaderRep)
}

// TestLeaderErrorPropagatesUncached cancels the leader mid-wave: every
// follower sees the leader's error, the error is not cached, and the
// next identical search runs a fresh, successful wave.
func TestLeaderErrorPropagatesUncached(t *testing.T) {
	db, queries := testSets(31, 32, 10, 3)
	gw := newGateWorker("gate-0")
	s, err := New(db, Config{Workers: []master.Worker{gw}, TopK: 3, Cache: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderDone := make(chan error, 1)
	go func() {
		_, err := s.Search(leaderCtx, queries, SearchOptions{})
		leaderDone <- err
	}()
	<-gw.started
	const followers = 3
	followerDone := make(chan error, followers)
	for i := 0; i < followers; i++ {
		go func() {
			_, err := s.Search(context.Background(), queries, SearchOptions{})
			followerDone <- err
		}()
	}
	waitStats(t, s, "followers to join", func(st Stats) bool { return st.CollapsedSearches == followers })
	cancelLeader()
	if err := <-leaderDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("leader returned %v, want context.Canceled", err)
	}
	for i := 0; i < followers; i++ {
		select {
		case err := <-followerDone:
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("follower %d returned %v, want the leader's context.Canceled", i, err)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("follower %d never saw the leader's error", i)
		}
	}
	// Nothing was cached and the flight retired: the next identical
	// search leads a fresh wave and succeeds (the gate is released, so
	// its tasks run straight through).
	close(gw.release)
	rep, err := s.Search(context.Background(), queries, SearchOptions{})
	if err != nil {
		t.Fatalf("search after leader error: %v", err)
	}
	if len(rep.Results) != queries.Len() {
		t.Fatalf("%d results", len(rep.Results))
	}
	if st := s.Stats(); st.CacheHits != 0 {
		t.Fatalf("a failed wave was served from cache: %+v", st)
	}
}

// TestWarmCacheConcurrentHits warms the cache, then hammers it from 8
// goroutines: every caller must be a pure cache hit with identical
// hits, still one wave ever.
func TestWarmCacheConcurrentHits(t *testing.T) {
	db, queries := testSets(33, 34, 50, 6)
	s, err := New(db, Config{CPUs: 2, GPUs: 2, TopK: 5, Cache: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	want, err := s.Search(context.Background(), queries, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	const callers = 8
	reports := make([]*master.Report, callers)
	errs := make([]error, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			reports[i], errs[i] = s.Search(context.Background(), queries, SearchOptions{})
		}(i)
	}
	wg.Wait()
	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		sameHits(t, "warm hit", reports[i], want)
	}
	st := s.Stats()
	if st.CacheHits != callers || st.Waves != 1 {
		t.Fatalf("warm-cache stats: %+v", st)
	}
}

// TestCacheConfigValidation mirrors the MaxBatch teaching error for the
// new knobs.
func TestCacheConfigValidation(t *testing.T) {
	db, _ := testSets(35, 36, 10, 1)
	if _, err := New(db, Config{Cache: true, CacheSize: -1}); err == nil {
		t.Fatal("negative CacheSize accepted")
	}
	if _, err := New(db, Config{Cache: true, CacheBytes: -1}); err == nil {
		t.Fatal("negative CacheBytes accepted")
	}
}
