package engine

import (
	"context"
	"net"
	"sync"
	"testing"

	"swdual/internal/alphabet"
	"swdual/internal/synth"
	"swdual/internal/wire"
)

// TestServeRejectsInvalidResidues sends raw ASCII (not alphabet codes)
// as residues; the server must refuse at the boundary instead of letting
// out-of-range codes crash a shared kernel.
func TestServeRejectsInvalidResidues(t *testing.T) {
	db := synth.RandomSet(alphabet.Protein, 10, 10, 50, 53)
	s, err := New(db, Config{CPUs: 1, GPUs: 0, TopK: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go Serve(l, s)
	nc, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	c := wire.NewConn(nc)
	if err := c.Send(&wire.Hello{Version: wire.Version, Name: "bad"}); err != nil {
		t.Fatal(err)
	}
	if msg, err := c.Recv(); err != nil {
		t.Fatal(err)
	} else if _, ok := msg.(*wire.Welcome); !ok {
		t.Fatalf("expected Welcome, got %T", msg)
	}
	if err := c.Send(&wire.Task{QueryIndex: 0, QueryID: "q", Residues: []byte("MKWVTFISLL")}); err != nil {
		t.Fatal(err)
	}
	msg, err := c.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := msg.(*wire.ErrorMsg); !ok {
		t.Fatalf("expected ErrorMsg for raw-ASCII residues, got %T", msg)
	}
	// The server must still be healthy for well-formed clients.
	nc2, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc2.Close()
	queries := synth.RandomSet(alphabet.Protein, 2, 20, 40, 54)
	if _, err := Query(nc2, queries, s.Checksum()); err != nil {
		t.Fatalf("server unhealthy after rejected request: %v", err)
	}
}

func TestServeEndToEnd(t *testing.T) {
	db := synth.RandomSet(alphabet.Protein, 40, 10, 150, 51)
	s, err := New(db, Config{CPUs: 1, GPUs: 1, TopK: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- Serve(l, s) }()

	// Several concurrent clients; each must get exactly the hits a local
	// search of its query set produces.
	const clients = 4
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			queries := synth.RandomSet(alphabet.Protein, 3, 20, 100, int64(400+i))
			nc, err := net.Dial("tcp", l.Addr().String())
			if err != nil {
				t.Errorf("client %d dial: %v", i, err)
				return
			}
			defer nc.Close()
			results, err := Query(nc, queries, s.Checksum())
			if err != nil {
				t.Errorf("client %d: %v", i, err)
				return
			}
			local, err := s.Search(context.Background(), queries, SearchOptions{})
			if err != nil {
				t.Errorf("client %d local: %v", i, err)
				return
			}
			for qi := range results {
				got, want := results[qi].Hits, local.Results[qi].Hits
				if len(got) != len(want) {
					t.Errorf("client %d query %d: %d hits vs %d", i, qi, len(got), len(want))
					return
				}
				for hi := range got {
					if int(got[hi].SeqIndex) != want[hi].SeqIndex || int(got[hi].Score) != want[hi].Score {
						t.Errorf("client %d query %d hit %d mismatch", i, qi, hi)
						return
					}
				}
			}
		}(i)
	}
	wg.Wait()

	// Checksum mismatch is refused.
	nc, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	queries := synth.RandomSet(alphabet.Protein, 1, 20, 40, 52)
	if _, err := Query(nc, queries, s.Checksum()+1); err == nil {
		t.Fatal("checksum mismatch accepted")
	}
	nc.Close()

	l.Close()
	if err := <-serveDone; err != nil {
		t.Fatalf("serve: %v", err)
	}
	if st := s.Stats(); st.Searches < clients {
		t.Fatalf("server searches %d < %d clients", st.Searches, clients)
	}
}
