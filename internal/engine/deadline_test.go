package engine

import (
	"context"
	"testing"
	"time"

	"swdual/internal/alphabet"
	"swdual/internal/seq"
	"swdual/internal/synth"
)

func testQueries(n int, seed int64) *seq.Set {
	return synth.RandomSet(alphabet.Protein, n, 20, 120, seed)
}

// waitFor polls cond until it holds or the deadline passes — a bounded
// convergence loop, not a fixed sleep, so the test is deterministic in
// outcome.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestDeadRequestNeverPlanned proves deadline propagation reaches wave
// planning: a request whose context dies after the dispatcher admitted
// it into a forming wave — but before the wave is planned — is failed
// at plan time and its query never reaches a worker. The sequencing is
// fully deterministic: MaxBatch = 2 holds the wave open until a second
// request arrives, and the internal admitted counter tells the test
// exactly when the doomed request is inside the forming batch.
func TestDeadRequestNeverPlanned(t *testing.T) {
	db, _ := testSets(41, 42, 20, 5)
	s, err := New(db, Config{
		CPUs: 1, GPUs: 0, TopK: 3,
		BatchWindow: time.Hour, // the wave closes on MaxBatch, not time
		MaxBatch:    2,
		Pipeline:    PipelineOff,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	qa := testQueries(1, 43)
	qb := testQueries(1, 44)

	ctxA, cancelA := context.WithCancel(context.Background())
	defer cancelA()
	aDone := make(chan error, 1)
	go func() {
		_, err := s.Search(ctxA, qa, SearchOptions{})
		aDone <- err
	}()

	// The dispatcher drained A into the forming wave; with MaxBatch = 2
	// and a one-hour window the wave stays open until B arrives.
	waitFor(t, "request A admitted", func() bool { return s.admittedReqs.Load() == 1 })
	cancelA()
	if err := <-aDone; err != context.Canceled {
		t.Fatalf("canceled request returned %v, want context.Canceled", err)
	}

	// B completes the batch; planWave must drop the dead A and plan a
	// single-request wave around B alone.
	rep, err := s.Search(context.Background(), qb, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 1 || len(rep.Results[0].Hits) == 0 {
		t.Fatalf("live request got no hits: %+v", rep.Results)
	}

	st := s.Stats()
	if st.Waves != 1 {
		t.Fatalf("expected exactly one wave, got %d", st.Waves)
	}
	if st.BatchedWaves != 0 {
		t.Fatalf("filtered wave still counted as batched: %+v", st)
	}
	var tasks uint64
	for _, w := range st.Workers {
		tasks += w.Tasks
	}
	if tasks != 1 {
		t.Fatalf("workers ran %d tasks, want 1 — the doomed query was planned", tasks)
	}
}

// TestAllDeadBatchPlansNoWave cancels the only request of a forming
// wave: planWave filters it and no wave runs at all, leaving the
// dispatcher immediately ready for live traffic.
func TestAllDeadBatchPlansNoWave(t *testing.T) {
	db, _ := testSets(45, 46, 20, 5)
	s, err := New(db, Config{
		CPUs: 1, GPUs: 0, TopK: 3,
		BatchWindow: 5 * time.Millisecond,
		Pipeline:    PipelineOff,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := s.Search(ctx, testQueries(1, 47), SearchOptions{})
		done <- err
	}()
	waitFor(t, "request admitted", func() bool { return s.admittedReqs.Load() == 1 })
	cancel()
	if err := <-done; err != context.Canceled {
		t.Fatalf("canceled request returned %v", err)
	}
	// The batch window may or may not have expired before the cancel
	// landed; either the wave was planned with the request filtered out
	// (0 waves) or the cancellation lost the race and the wave ran with
	// its tasks skipped. In both cases the searcher stays healthy.
	if _, err := s.Search(context.Background(), testQueries(1, 48), SearchOptions{}); err != nil {
		t.Fatalf("search after dead batch: %v", err)
	}
}
