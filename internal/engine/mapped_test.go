package engine

import (
	"context"
	"path/filepath"
	"sync"
	"testing"

	"swdual/internal/alphabet"
	"swdual/internal/seqdb"
	"swdual/internal/synth"
)

// mappedDB writes a synthetic corpus as .swdb and memory-maps it back.
func mappedDB(t *testing.T, n int, seed int64) (*seqdb.Mapped, string) {
	t.Helper()
	set := synth.RandomSet(alphabet.Protein, n, 10, 200, seed)
	path := filepath.Join(t.TempDir(), "db.swdb")
	if err := seqdb.Create(path, set); err != nil {
		t.Fatal(err)
	}
	m, err := seqdb.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	return m, path
}

// TestMappedSetSearch is the engine half of the zero-copy contract: an
// engine over a memory-mapped set must adopt the set without copying
// it, trust the header checksum instead of rescanning residues, and
// produce hits byte-identical to an engine over the same database read
// into the heap.
func TestMappedSetSearch(t *testing.T) {
	m, path := mappedDB(t, 50, 61)
	mset, err := m.Set()
	if err != nil {
		t.Fatal(err)
	}

	f, err := seqdb.OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	heapSet, err := f.ReadAll()
	f.Close()
	if err != nil {
		t.Fatal(err)
	}

	me, err := New(mset, Config{CPUs: 2, GPUs: 1, TopK: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer me.Close()
	he, err := New(heapSet, Config{CPUs: 2, GPUs: 1, TopK: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer he.Close()

	// No copy: the engine holds the very set whose residues alias the
	// mapping, and its prepared checksum is the header CRC Open trusted.
	if me.DB() != mset {
		t.Fatal("engine copied the mapped set")
	}
	if me.Checksum() != m.Checksum() {
		t.Fatalf("engine checksum %08x, want the header CRC %08x", me.Checksum(), m.Checksum())
	}
	if me.Checksum() != he.Checksum() {
		t.Fatalf("mapped checksum %08x != heap checksum %08x over the same file", me.Checksum(), he.Checksum())
	}

	queries := synth.RandomSet(alphabet.Protein, 8, 20, 120, 62)
	mrep, err := me.Search(context.Background(), queries, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	hrep, err := he.Search(context.Background(), queries, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sameHits(t, "mapped vs heap", mrep, hrep)
}

// TestMappedCloseOrdering exercises the lifecycle contract: searches
// run to completion over the mapping, the engine closes first (workers
// stop touching mapped residues), the mapping closes second, and every
// later use of either fails cleanly instead of faulting.
func TestMappedCloseOrdering(t *testing.T) {
	m, _ := mappedDB(t, 40, 63)
	mset, err := m.Set()
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(mset, Config{CPUs: 2, GPUs: 1, TopK: 3})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		seed := int64(70 + i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			q := synth.RandomSet(alphabet.Protein, 2, 20, 80, seed)
			if _, err := eng.Search(context.Background(), q, SearchOptions{}); err != nil {
				t.Errorf("in-flight search: %v", err)
			}
		}()
	}
	wg.Wait()

	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Set(); err != seqdb.ErrMappedClosed {
		t.Fatalf("Set after Close: %v, want ErrMappedClosed", err)
	}
	q := synth.RandomSet(alphabet.Protein, 1, 20, 40, 99)
	if _, err := eng.Search(context.Background(), q, SearchOptions{}); err == nil {
		t.Fatal("search after engine Close succeeded")
	}
}
