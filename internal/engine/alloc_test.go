// Allocation caps are meaningless under the race detector: -race makes
// sync.Pool deliberately drop ~25% of Put items, so pooled buffers
// reallocate by design and the caps would fail spuriously.

//go:build !race

package engine

import (
	"context"
	"testing"

	"swdual/internal/alphabet"
	"swdual/internal/master"
	"swdual/internal/synth"
)

// TestAllocsSteadyStateSearch pins the allocation budget of a warm
// striped-engine search: profiles cached, kernel rows pooled, wave
// scratch recycled. The cap is a hard constant — the steady-state cost
// of a search must not scale with how many waves came before it, and
// regressions that reintroduce per-wave or per-subject allocation blow
// straight through it.
func TestAllocsSteadyStateSearch(t *testing.T) {
	db := synth.RandomSet(alphabet.Protein, 48, 10, 150, 65)
	queries := synth.RandomSet(alphabet.Protein, 2, 40, 80, 66)
	s, err := New(db, Config{Pool: master.PoolSpec{Striped: 1}, TopK: 5, BatchWindow: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ctx := context.Background()
	for i := 0; i < 3; i++ { // warm profile cache, row pools, wave scratch
		if _, err := s.Search(ctx, queries, SearchOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(20, func() {
		if _, err := s.Search(ctx, queries, SearchOptions{}); err != nil {
			t.Fatal(err)
		}
	})
	// Measured ~60 objects per 2-query search (request + merger + wave +
	// channels + schedule + report + per-task hit lists); the cap gives
	// ~2x headroom while still catching any per-subject or per-wave
	// regression, which adds hundreds.
	const searchAllocCap = 130
	if avg > searchAllocCap {
		t.Fatalf("steady-state Search allocates %.1f objects per call, cap %d", avg, searchAllocCap)
	}
}
