package engine

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"swdual/internal/alphabet"
	"swdual/internal/master"
	"swdual/internal/synth"
)

// The wave-pipelining suite: overlapping the planning of wave N+1 with
// the execution of wave N must never change what a caller gets back —
// only when the scheduling work happens. These tests drive overlap
// deterministically (gate workers pin a wave open) and compare pipelined
// hits byte for byte against the strict-fence mode.

// TestPipelinedMatchesSequential hammers a pipelined and a fenced
// Searcher over the same database with the same concurrent request mix
// and requires identical hits from both, for several rounds so waves
// chain through the handoff path repeatedly.
func TestPipelinedMatchesSequential(t *testing.T) {
	db := synth.RandomSet(alphabet.Protein, 50, 10, 200, 61)
	mk := func(mode PipelineMode) *Searcher {
		s, err := New(db, Config{CPUs: 2, GPUs: 1, TopK: 5, Pipeline: mode, BatchWindow: time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	on, off := mk(PipelineOn), mk(PipelineOff)
	defer on.Close()
	defer off.Close()

	const callers = 6
	for round := 0; round < 3; round++ {
		var wg sync.WaitGroup
		gots := make([]*master.Report, callers)
		wants := make([]*master.Report, callers)
		errs := make([]error, 2*callers)
		for i := 0; i < callers; i++ {
			queries := synth.RandomSet(alphabet.Protein, 3, 20, 120, int64(1000*round+i))
			wg.Add(2)
			go func(i int) {
				defer wg.Done()
				gots[i], errs[2*i] = on.Search(context.Background(), queries, SearchOptions{})
			}(i)
			go func(i int) {
				defer wg.Done()
				wants[i], errs[2*i+1] = off.Search(context.Background(), queries, SearchOptions{})
			}(i)
		}
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				t.Fatalf("round %d caller %d: %v", round, i, err)
			}
		}
		for i := range gots {
			sameHits(t, "pipelined vs sequential", gots[i], wants[i])
		}
	}
	if st := off.Stats(); st.PipelinedWaves != 0 || st.OverlapNanos != 0 {
		t.Fatalf("fenced searcher reported overlap: %+v", st)
	}
}

// TestPipelineOverlapCounters proves overlap actually happens and is
// counted: wave 1 is pinned open by a gate worker, more requests arrive
// and are planned + dispatched while it still executes, and the
// counters must record that.
func TestPipelineOverlapCounters(t *testing.T) {
	db := synth.RandomSet(alphabet.Protein, 10, 10, 50, 62)
	gw := newGateWorker("gate-0")
	s, err := New(db, Config{Workers: []master.Worker{gw}, TopK: 3, Pipeline: PipelineOn})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	var wg sync.WaitGroup
	search := func(i int) {
		defer wg.Done()
		q := synth.RandomSet(alphabet.Protein, 1, 20, 40, int64(300+i))
		if _, err := s.Search(context.Background(), q, SearchOptions{}); err != nil {
			t.Errorf("caller %d: %v", i, err)
		}
	}
	wg.Add(1)
	go search(0)
	<-gw.started // wave 1 is executing and its worker pinned
	wg.Add(1)
	go search(1) // coalesced, planned and dispatched while wave 1 runs
	// Wait until the dispatcher has admitted wave 2 — observable through
	// the counter itself.
	deadline := time.After(10 * time.Second)
	for s.Stats().PipelinedWaves == 0 {
		select {
		case <-deadline:
			t.Fatal("second wave never overlapped the pinned first wave")
		case <-time.After(time.Millisecond):
		}
	}
	close(gw.release)
	wg.Wait()
	st := s.Stats()
	if st.PipelinedWaves == 0 {
		t.Fatalf("no pipelined waves counted: %+v", st)
	}
	if st.OverlapNanos == 0 {
		t.Fatalf("pipelined waves counted but no overlap time: %+v", st)
	}
	if st.Waves < 2 {
		t.Fatalf("expected at least 2 waves, got %+v", st)
	}
}

// TestPipelineCancellationMidOverlap cancels a request whose wave was
// planned and dispatched behind a still-executing wave: the caller must
// get its context error promptly and the Searcher must stay healthy.
func TestPipelineCancellationMidOverlap(t *testing.T) {
	db := synth.RandomSet(alphabet.Protein, 10, 10, 50, 63)
	gw := newGateWorker("gate-0")
	s, err := New(db, Config{Workers: []master.Worker{gw}, TopK: 3, Pipeline: PipelineOn})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	done1 := make(chan error, 1)
	go func() {
		q := synth.RandomSet(alphabet.Protein, 1, 20, 40, 400)
		_, err := s.Search(context.Background(), q, SearchOptions{})
		done1 <- err
	}()
	<-gw.started // wave 1 pinned

	ctx, cancel := context.WithCancel(context.Background())
	done2 := make(chan error, 1)
	go func() {
		q := synth.RandomSet(alphabet.Protein, 2, 20, 40, 401)
		_, err := s.Search(ctx, q, SearchOptions{})
		done2 <- err
	}()
	// Let request 2 reach the dispatcher and become the overlapped wave,
	// then kill it while wave 1 still executes.
	deadline := time.After(10 * time.Second)
	for s.Stats().Waves < 2 {
		select {
		case <-deadline:
			t.Fatal("second wave was never planned")
		case <-time.After(time.Millisecond):
		}
	}
	cancel()
	select {
	case err := <-done2:
		if err != context.Canceled {
			t.Fatalf("canceled mid-overlap search returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("canceled mid-overlap search did not return")
	}
	close(gw.release)
	if err := <-done1; err != nil {
		t.Fatalf("pinned search: %v", err)
	}
	// The handoff chain must still be intact for new work.
	q := synth.RandomSet(alphabet.Protein, 1, 20, 40, 402)
	if _, err := s.Search(context.Background(), q, SearchOptions{}); err != nil {
		t.Fatalf("search after mid-overlap cancellation: %v", err)
	}
}

// TestPipelineCloseWithPlannedWave closes the Searcher while wave 1
// executes, wave 2 sits planned-and-chained behind it, and a third
// request is still queued, never admitted into any wave. Dispatched
// waves must complete (their tasks are fed while the pool is up); the
// unadmitted request must fail with ErrClosed.
func TestPipelineCloseWithPlannedWave(t *testing.T) {
	db := synth.RandomSet(alphabet.Protein, 10, 10, 50, 64)
	gw := newGateWorker("gate-0")
	s, err := New(db, Config{Workers: []master.Worker{gw}, TopK: 3, Pipeline: PipelineOn})
	if err != nil {
		t.Fatal(err)
	}

	done1 := make(chan error, 1)
	go func() {
		q := synth.RandomSet(alphabet.Protein, 1, 20, 40, 500)
		_, err := s.Search(context.Background(), q, SearchOptions{})
		done1 <- err
	}()
	<-gw.started

	done2 := make(chan error, 1)
	go func() {
		q := synth.RandomSet(alphabet.Protein, 1, 20, 40, 501)
		_, err := s.Search(context.Background(), q, SearchOptions{})
		done2 <- err
	}()
	deadline := time.After(10 * time.Second)
	for s.Stats().Waves < 2 {
		select {
		case <-deadline:
			t.Fatal("second wave was never planned")
		case <-time.After(time.Millisecond):
		}
	}
	// Request 3 queues behind the depth-2 pipeline: the dispatcher is
	// waiting for wave 1 and will never admit it once quit fires.
	done3 := make(chan error, 1)
	go func() {
		q := synth.RandomSet(alphabet.Protein, 1, 20, 40, 502)
		_, err := s.Search(context.Background(), q, SearchOptions{})
		done3 <- err
	}()

	closed := make(chan error, 1)
	go func() { closed <- s.Close() }()
	// The unadmitted request must fail promptly even while Close still
	// drains the pinned waves.
	select {
	case err := <-done3:
		if err != ErrClosed {
			t.Fatalf("unadmitted request returned %v, want ErrClosed", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("unadmitted request stranded by Close")
	}
	close(gw.release) // let the dispatched waves finish
	for i, ch := range []chan error{done1, done2} {
		select {
		case err := <-ch:
			if err != nil {
				t.Fatalf("dispatched wave %d failed across Close: %v", i+1, err)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("dispatched wave %d stranded by Close", i+1)
		}
	}
	select {
	case err := <-closed:
		if err != nil {
			t.Fatalf("close: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("close hung")
	}
}

// TestParsePipeline pins the knob's grammar, including the teaching
// error for unknown modes.
func TestParsePipeline(t *testing.T) {
	for name, want := range map[string]PipelineMode{
		"": PipelineAuto, "auto": PipelineAuto, "on": PipelineOn, "off": PipelineOff,
	} {
		got, err := ParsePipeline(name)
		if err != nil || got != want {
			t.Fatalf("ParsePipeline(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := ParsePipeline("sideways"); err == nil {
		t.Fatal("unknown pipeline mode accepted")
	} else if !strings.Contains(err.Error(), "on") || !strings.Contains(err.Error(), "off") {
		t.Fatalf("pipeline error does not teach the valid values: %v", err)
	}
	if PipelineAuto.String() != "auto" || PipelineOn.String() != "on" || PipelineOff.String() != "off" {
		t.Fatalf("String round trip broken: %v %v %v", PipelineAuto, PipelineOn, PipelineOff)
	}
	// Auto must resolve at construction — a built Searcher never runs in
	// "auto"; which way it resolves depends on the host's core count.
	db := synth.RandomSet(alphabet.Protein, 5, 10, 40, 68)
	s, err := New(db, Config{CPUs: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if got := s.cfg.Pipeline; got != PipelineOn && got != PipelineOff {
		t.Fatalf("auto did not resolve at construction: %v", got)
	}
}

// TestNegativeMaxBatchRejected: a negative cap would wedge or starve the
// coalescing loop, so New must refuse it outright instead of defaulting
// it away.
func TestNegativeMaxBatchRejected(t *testing.T) {
	db := synth.RandomSet(alphabet.Protein, 5, 10, 40, 67)
	if _, err := New(db, Config{CPUs: 1, MaxBatch: -3}); err == nil {
		t.Fatal("negative MaxBatch accepted")
	} else if !strings.Contains(err.Error(), "MaxBatch") {
		t.Fatalf("error does not name MaxBatch: %v", err)
	}
	// Zero still selects the default.
	s, err := New(db, Config{CPUs: 1, MaxBatch: 0})
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
}
