package engine

import (
	"context"
	"errors"
	"fmt"
	"net"

	"swdual/internal/master"
	"swdual/internal/seq"
	"swdual/internal/wire"
)

// Serve mode: the Searcher exposed over the internal/wire protocol.
// Unlike the cluster runtime — where the master pushes tasks to remote
// workers — serve mode inverts the roles: remote clients push queries to
// a long-lived master. One connection is one search request:
//
//	client                               server
//	Hello{Name, DBChecksum?}  ->
//	                          <-  Welcome{QueryCount: 0, DBChecksum}
//	Task{QueryIndex, Residues} -> (repeated)
//	Done                      ->
//	                          <-  Result (one per query, in order)
//	                          <-  Done
//
// A non-zero Hello.DBChecksum must match the server database, so a
// client that also holds the database locally can verify both ends
// search the same sequences. Residues cross the wire encoded in the
// server database's alphabet. Concurrent connections are coalesced into
// shared scheduling waves by the Searcher's dispatcher.

// Backend is the search service Serve exposes: the in-process Searcher
// or any equivalent — e.g. a sharded scatter/gather facade whose merged
// results are byte-identical to one Searcher over the whole database.
type Backend interface {
	Search(ctx context.Context, queries *seq.Set, opts SearchOptions) (*master.Report, error)
	DB() *seq.Set
	Checksum() uint32
}

// Serve accepts connections on l and answers each over the wire
// protocol until the listener is closed (use l.Close to stop). Each
// connection's queries become one Search call on the backend, so
// concurrent clients batch into waves. Serve returns nil when l closes.
func Serve(l net.Listener, s Backend) error {
	for {
		nc, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go func() {
			defer nc.Close()
			serveConn(wire.NewConn(nc), s)
		}()
	}
}

// serveConn answers one client. Protocol errors end the connection; the
// client sees the ErrorMsg or the closed stream.
func serveConn(c *wire.Conn, s Backend) {
	fail := func(err error) { c.Send(&wire.ErrorMsg{Text: err.Error()}) }
	msg, err := c.Recv()
	if err != nil {
		return
	}
	hello, ok := msg.(*wire.Hello)
	if !ok {
		fail(fmt.Errorf("engine: expected Hello, got %T", msg))
		return
	}
	if hello.Version != wire.Version {
		fail(fmt.Errorf("engine: protocol version %d, want %d", hello.Version, wire.Version))
		return
	}
	if hello.DBChecksum != 0 && hello.DBChecksum != s.Checksum() {
		fail(fmt.Errorf("engine: database checksum mismatch (client %08x, server %08x)", hello.DBChecksum, s.Checksum()))
		return
	}
	if err := c.Send(&wire.Welcome{Version: wire.Version, DBChecksum: s.Checksum()}); err != nil {
		return
	}
	queries := seq.NewSet(s.DB().Alpha)
	for {
		msg, err := c.Recv()
		if err != nil {
			return
		}
		if _, done := msg.(wire.Done); done {
			break
		}
		t, ok := msg.(*wire.Task)
		if !ok {
			fail(fmt.Errorf("engine: expected Task or Done, got %T", msg))
			return
		}
		if int(t.QueryIndex) != queries.Len() {
			fail(fmt.Errorf("engine: query %d arrived out of order (want %d)", t.QueryIndex, queries.Len()))
			return
		}
		// Wire bytes are untrusted: an out-of-range residue code would
		// index past the score profiles inside the kernels and crash the
		// shared engine, so reject it at the boundary.
		limit := byte(queries.Alpha.Len())
		for _, r := range t.Residues {
			if r >= limit {
				fail(fmt.Errorf("engine: query %q has residue code %d outside the %s alphabet (max %d); send residues encoded with the server alphabet", t.QueryID, r, queries.Alpha.Name(), limit-1))
				return
			}
		}
		queries.AddEncoded(t.QueryID, "", t.Residues)
	}
	rep, err := s.Search(context.Background(), queries, SearchOptions{})
	if err != nil {
		fail(err)
		return
	}
	for qi, res := range rep.Results {
		if err := c.Send(resultFrame(qi, res)); err != nil {
			return
		}
	}
	c.Send(nil) // Done
}

func resultFrame(qi int, res master.QueryResult) *wire.Result {
	out := &wire.Result{
		QueryIndex: uint32(qi),
		ElapsedNS:  uint64(res.Elapsed),
		SimSeconds: res.SimSeconds,
		Cells:      uint64(res.Cells),
	}
	for _, h := range res.Hits {
		out.Hits = append(out.Hits, wire.ResultHit{SeqIndex: uint32(h.SeqIndex), Score: int32(h.Score), SeqID: h.SeqID})
	}
	return out
}

// Query runs one search request against a serve-mode endpoint: it
// registers, streams the queries, and collects one result per query in
// order. A non-zero wantChecksum makes the server reject a database
// mismatch. The queries must already be encoded in the server database's
// alphabet.
func Query(nc net.Conn, queries *seq.Set, wantChecksum uint32) ([]wire.Result, error) {
	c := wire.NewConn(nc)
	if err := c.Send(&wire.Hello{Version: wire.Version, Name: "client", DBChecksum: wantChecksum}); err != nil {
		return nil, err
	}
	msg, err := c.Recv()
	if err != nil {
		return nil, err
	}
	switch m := msg.(type) {
	case *wire.Welcome:
		if wantChecksum != 0 && m.DBChecksum != wantChecksum {
			return nil, fmt.Errorf("engine: server database checksum %08x, want %08x", m.DBChecksum, wantChecksum)
		}
	case *wire.ErrorMsg:
		return nil, fmt.Errorf("engine: server: %s", m.Text)
	default:
		return nil, fmt.Errorf("engine: expected Welcome, got %T", msg)
	}
	for qi := range queries.Seqs {
		t := &wire.Task{QueryIndex: uint32(qi), QueryID: queries.Seqs[qi].ID, Residues: queries.Seqs[qi].Residues}
		if err := c.Send(t); err != nil {
			return nil, err
		}
	}
	if err := c.Send(nil); err != nil { // Done
		return nil, err
	}
	results := make([]wire.Result, 0, queries.Len())
	for {
		msg, err := c.Recv()
		if err != nil {
			return nil, err
		}
		switch m := msg.(type) {
		case *wire.Result:
			if int(m.QueryIndex) != len(results) {
				return nil, fmt.Errorf("engine: result %d arrived out of order (want %d)", m.QueryIndex, len(results))
			}
			results = append(results, *m)
		case wire.Done:
			if len(results) != queries.Len() {
				return nil, fmt.Errorf("engine: server returned %d results for %d queries", len(results), queries.Len())
			}
			return results, nil
		case *wire.ErrorMsg:
			return nil, fmt.Errorf("engine: server: %s", m.Text)
		default:
			return nil, fmt.Errorf("engine: unexpected %T", msg)
		}
	}
}
