package engine

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"

	"swdual/internal/alphabet"
	"swdual/internal/master"
	"swdual/internal/sched"
	"swdual/internal/seq"
	"swdual/internal/wire"
)

// Serve mode: the Searcher exposed over the internal/wire protocol.
// Unlike the cluster runtime — where the master pushes tasks to remote
// workers — serve mode inverts the roles: remote clients push queries to
// a long-lived master. Two client dialects share one listener; the
// server tells them apart by the first frame after the handshake.
//
// The original stream dialect (one connection is one search request):
//
//	client                               server
//	Hello{Name, DBChecksum?}  ->
//	                          <-  Welcome{QueryCount: 0, DBChecksum}
//	Task{QueryIndex, Residues} -> (repeated)
//	Done                      ->
//	                          <-  Result (one per query, in order)
//	                          <-  Done
//
// The multiplexed dialect (one connection is a session; every frame
// carries a request id, any number of requests in flight):
//
//	client                               server
//	Hello{Name, DBChecksum?}  ->
//	                          <-  Welcome{QueryCount: 0, DBChecksum}
//	SearchRequest{ID: 1, …}   ->
//	StatsRequest{ID: 2}       ->
//	                          <-  StatsResponse{ID: 2, …}
//	Cancel{ID: 1}             ->  (optional)
//	                          <-  SearchResult{ID: 1, …} | ReqError{ID: 1}
//	Done                      ->  (ends the session)
//
// A non-zero Hello.DBChecksum must match the server database, so a
// client that also holds the database locally can verify both ends
// search the same sequences. Residues cross the wire encoded in the
// server database's alphabet. Concurrent requests — from one multiplexed
// session or from many connections — are coalesced into shared
// scheduling waves by the Searcher's dispatcher. When a connection dies,
// its in-flight requests are canceled.

// Backend is the search service Serve exposes and remote clients stand
// in for: the in-process Searcher, the sharded scatter/gather facade, or
// a remote.Backend speaking this protocol to another process — all
// byte-identical to one Searcher over the whole database.
type Backend interface {
	Search(ctx context.Context, queries *seq.Set, opts SearchOptions) (*master.Report, error)
	Plan(queryLens []int) (*sched.Schedule, error)
	Stats() Stats
	Checksum() uint32
	DBLengths() []int
	Alphabet() *alphabet.Alphabet
	Close() error
}

// Serve accepts connections on l and answers each over the wire
// protocol until the listener is closed (use l.Close to stop). Each
// connection's queries become Search calls on the backend, so
// concurrent clients batch into waves. Serve returns nil when l closes.
func Serve(l net.Listener, s Backend) error {
	for {
		nc, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go func() {
			defer nc.Close()
			serveConn(wire.NewConn(nc), s)
		}()
	}
}

// checkResidues rejects out-of-range residue codes at the boundary: wire
// bytes are untrusted, and a code past the alphabet would index past the
// score profiles inside the kernels and crash the shared engine.
func checkResidues(alpha *alphabet.Alphabet, id string, residues []byte) error {
	limit := byte(alpha.Len())
	for _, r := range residues {
		if r >= limit {
			return fmt.Errorf("engine: query %q has residue code %d outside the %s alphabet (max %d); send residues encoded with the server alphabet", id, r, alpha.Name(), limit-1)
		}
	}
	return nil
}

// serveConn answers one client. Protocol errors end the connection; the
// client sees the ErrorMsg or the closed stream.
func serveConn(c *wire.Conn, s Backend) {
	fail := func(err error) { c.Send(&wire.ErrorMsg{Text: err.Error()}) }
	msg, err := c.Recv()
	if err != nil {
		return
	}
	hello, ok := msg.(*wire.Hello)
	if !ok {
		fail(fmt.Errorf("engine: expected Hello, got %T", msg))
		return
	}
	if hello.Version != wire.Version {
		fail(fmt.Errorf("engine: protocol version %d, want %d", hello.Version, wire.Version))
		return
	}
	if hello.DBChecksum != 0 && hello.DBChecksum != s.Checksum() {
		fail(fmt.Errorf("engine: database checksum mismatch (client %08x, server %08x)", hello.DBChecksum, s.Checksum()))
		return
	}
	if err := c.Send(&wire.Welcome{Version: wire.Version, DBChecksum: s.Checksum()}); err != nil {
		return
	}
	// The first frame selects the dialect: Task (or an immediate Done)
	// starts the original one-request stream, anything else the
	// multiplexed session.
	msg, err = c.Recv()
	if err != nil {
		return
	}
	switch msg.(type) {
	case *wire.Task, wire.Done:
		serveStream(c, s, msg)
	default:
		serveMux(c, s, msg)
	}
}

// serveStream runs the original dialect: collect the query stream, run
// one Search, return the results in order.
func serveStream(c *wire.Conn, s Backend, msg any) {
	fail := func(err error) { c.Send(&wire.ErrorMsg{Text: err.Error()}) }
	queries := seq.NewSet(s.Alphabet())
	for {
		if _, done := msg.(wire.Done); done {
			break
		}
		t, ok := msg.(*wire.Task)
		if !ok {
			fail(fmt.Errorf("engine: expected Task or Done, got %T", msg))
			return
		}
		if int(t.QueryIndex) != queries.Len() {
			fail(fmt.Errorf("engine: query %d arrived out of order (want %d)", t.QueryIndex, queries.Len()))
			return
		}
		if err := checkResidues(queries.Alpha, t.QueryID, t.Residues); err != nil {
			fail(err)
			return
		}
		queries.AddEncoded(t.QueryID, "", t.Residues)
		var err error
		if msg, err = c.Recv(); err != nil {
			return
		}
	}
	rep, err := s.Search(context.Background(), queries, SearchOptions{})
	if err != nil {
		fail(err)
		return
	}
	for qi, res := range rep.Results {
		if err := c.Send(resultFrame(qi, res)); err != nil {
			return
		}
	}
	c.Send(nil) // Done
}

// muxSession is one multiplexed connection: a read loop dispatching
// frames, per-request goroutines answering them, and a write lock
// serializing their responses.
type muxSession struct {
	c *wire.Conn
	s Backend

	wmu sync.Mutex // guards c.Send

	ctx    context.Context // canceled when the read loop exits
	cancel context.CancelFunc

	mu       sync.Mutex
	inflight map[uint64]context.CancelFunc
	wg       sync.WaitGroup
}

func (m *muxSession) send(msg any) error {
	m.wmu.Lock()
	defer m.wmu.Unlock()
	return m.c.Send(msg)
}

func (m *muxSession) failReq(id uint64, err error) {
	m.send(&wire.ReqError{ID: id, Text: err.Error()})
}

// serveMux runs the multiplexed dialect starting from the first
// non-stream frame. When the loop exits — client Done, protocol error,
// or a dead connection — every in-flight request is canceled and the
// session waits for its goroutines before returning.
func serveMux(c *wire.Conn, s Backend, first any) {
	m := &muxSession{c: c, s: s, inflight: map[uint64]context.CancelFunc{}}
	m.ctx, m.cancel = context.WithCancel(context.Background())
	defer func() {
		m.cancel()
		m.wg.Wait()
	}()
	msg := first
	for {
		if done := m.handle(msg); done {
			return
		}
		var err error
		if msg, err = c.Recv(); err != nil {
			return
		}
	}
}

// handle processes one frame; it reports true when the session is over.
func (m *muxSession) handle(msg any) (done bool) {
	switch t := msg.(type) {
	case wire.Done:
		return true
	case *wire.SearchRequest:
		m.startSearch(t)
	case *wire.Cancel:
		m.mu.Lock()
		if cancel, ok := m.inflight[t.ID]; ok {
			cancel()
		}
		m.mu.Unlock()
	case *wire.StatsRequest:
		st := m.s.Stats()
		resp := &wire.StatsResponse{
			ID:                t.ID,
			DBSequences:       uint32(st.DBSequences),
			DBResidues:        uint64(st.DBResidues),
			DBChecksum:        st.DBChecksum,
			Prepared:          uint32(st.Prepared),
			WorkersStarted:    uint32(st.WorkersStarted),
			Searches:          st.Searches,
			Queries:           st.Queries,
			Waves:             st.Waves,
			BatchedWaves:      st.BatchedWaves,
			PipelinedWaves:    st.PipelinedWaves,
			OverlapNanos:      st.OverlapNanos,
			CacheHits:         st.CacheHits,
			CacheMisses:       st.CacheMisses,
			CacheEvictions:    st.CacheEvictions,
			CollapsedSearches: st.CollapsedSearches,
			ProfileEntries:    uint32(st.ProfileEntries),
			ProfileHits:       st.ProfileHits,
			ProfileMisses:     st.ProfileMisses,
			ProfileEvictions:  st.ProfileEvictions,
			HedgedSearches:    st.HedgedSearches,
			FailedOver:        st.FailedOver,
			Redials:           st.Redials,
			DegradedSearches:  st.DegradedSearches,
			Workers:           make([]wire.WorkerRateInfo, len(st.Workers)),
		}
		for i, w := range st.Workers {
			resp.Workers[i] = wire.WorkerRateInfo{
				Name:            w.Name,
				Kind:            uint8(w.Kind),
				AdvertisedGCUPS: w.AdvertisedGCUPS,
				ObservedGCUPS:   w.ObservedGCUPS,
				Tasks:           w.Tasks,
			}
		}
		m.send(resp)
	case *wire.ChecksumRequest:
		m.send(&wire.ChecksumResponse{ID: t.ID, Checksum: m.s.Checksum()})
	case *wire.InfoRequest:
		lengths := m.s.DBLengths()
		info := &wire.Info{ID: t.ID, Alphabet: m.s.Alphabet().Name(), Checksum: m.s.Checksum(), Lengths: make([]uint32, len(lengths))}
		for i, l := range lengths {
			info.Lengths[i] = uint32(l)
		}
		m.send(info)
	case *wire.PlanRequest:
		lens := make([]int, len(t.QueryLens))
		for i, l := range t.QueryLens {
			lens[i] = int(l)
		}
		m.wg.Add(1)
		go func() {
			defer m.wg.Done()
			sch, err := m.s.Plan(lens)
			if err != nil {
				m.failReq(t.ID, err)
				return
			}
			resp := &wire.PlanResponse{ID: t.ID}
			if sch != nil {
				resp.Algorithm = sch.Algorithm
				resp.Makespan = sch.Makespan
				resp.CPULoads = sch.CPULoads
				resp.GPULoads = sch.GPULoads
			}
			m.send(resp)
		}()
	default:
		m.send(&wire.ErrorMsg{Text: fmt.Sprintf("engine: unexpected %T in multiplexed session", msg)})
		return true
	}
	return false
}

// startSearch validates one SearchRequest and answers it from its own
// goroutine, so the read loop keeps dispatching (and can deliver the
// Cancel that aborts this very request).
func (m *muxSession) startSearch(req *wire.SearchRequest) {
	queries := seq.NewSet(m.s.Alphabet())
	for _, q := range req.Queries {
		if err := checkResidues(queries.Alpha, q.ID, q.Residues); err != nil {
			m.failReq(req.ID, err)
			return
		}
		queries.AddEncoded(q.ID, "", q.Residues)
	}
	rctx, rcancel := context.WithCancel(m.ctx)
	m.mu.Lock()
	if _, dup := m.inflight[req.ID]; dup {
		m.mu.Unlock()
		rcancel()
		m.failReq(req.ID, fmt.Errorf("engine: request id %d already in flight", req.ID))
		return
	}
	m.inflight[req.ID] = rcancel
	m.mu.Unlock()
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		defer func() {
			m.mu.Lock()
			delete(m.inflight, req.ID)
			m.mu.Unlock()
			rcancel()
		}()
		rep, err := m.s.Search(rctx, queries, SearchOptions{TopK: int(req.TopK)})
		if err != nil {
			m.failReq(req.ID, err)
			return
		}
		out := &wire.SearchResult{ID: req.ID, Results: make([]wire.Result, len(rep.Results))}
		for qi, res := range rep.Results {
			out.Results[qi] = *resultFrame(qi, res)
		}
		if cov := rep.Coverage; cov != nil {
			// A degraded answer carries its coverage to the client, so the
			// partial label survives the hop.
			wc := &wire.Coverage{
				RangesSearched:   uint32(cov.RangesSearched),
				RangesTotal:      uint32(cov.RangesTotal),
				ResiduesSearched: uint64(cov.ResiduesSearched),
				ResiduesTotal:    uint64(cov.ResiduesTotal),
			}
			for _, sk := range cov.Skipped {
				wc.Skipped = append(wc.Skipped, wire.SkippedRange{
					Index:  uint32(sk.Index),
					Lo:     uint32(sk.Lo),
					Hi:     uint32(sk.Hi),
					Reason: sk.Reason,
				})
			}
			out.Coverage = wc
		}
		m.send(out)
	}()
}

func resultFrame(qi int, res master.QueryResult) *wire.Result {
	out := &wire.Result{
		QueryIndex: uint32(qi),
		ElapsedNS:  uint64(res.Elapsed),
		SimSeconds: res.SimSeconds,
		Cells:      uint64(res.Cells),
	}
	for _, h := range res.Hits {
		out.Hits = append(out.Hits, wire.ResultHit{SeqIndex: uint32(h.SeqIndex), Score: int32(h.Score), SeqID: h.SeqID})
	}
	return out
}

// Query runs one search request against a serve-mode endpoint using the
// original stream dialect: it registers, streams the queries, and
// collects one result per query in order. A non-zero wantChecksum makes
// the server reject a database mismatch. The queries must already be
// encoded in the server database's alphabet. The multiplexed dialect
// lives in internal/remote.
func Query(nc net.Conn, queries *seq.Set, wantChecksum uint32) ([]wire.Result, error) {
	c := wire.NewConn(nc)
	if err := c.Send(&wire.Hello{Version: wire.Version, Name: "client", DBChecksum: wantChecksum}); err != nil {
		return nil, err
	}
	msg, err := c.Recv()
	if err != nil {
		return nil, err
	}
	switch m := msg.(type) {
	case *wire.Welcome:
		if wantChecksum != 0 && m.DBChecksum != wantChecksum {
			return nil, fmt.Errorf("engine: server database checksum %08x, want %08x", m.DBChecksum, wantChecksum)
		}
	case *wire.ErrorMsg:
		return nil, fmt.Errorf("engine: server: %s", m.Text)
	default:
		return nil, fmt.Errorf("engine: expected Welcome, got %T", msg)
	}
	for qi := range queries.Seqs {
		t := &wire.Task{QueryIndex: uint32(qi), QueryID: queries.Seqs[qi].ID, Residues: queries.Seqs[qi].Residues}
		if err := c.Send(t); err != nil {
			return nil, err
		}
	}
	if err := c.Send(nil); err != nil { // Done
		return nil, err
	}
	results := make([]wire.Result, 0, queries.Len())
	for {
		msg, err := c.Recv()
		if err != nil {
			return nil, err
		}
		switch m := msg.(type) {
		case *wire.Result:
			if int(m.QueryIndex) != len(results) {
				return nil, fmt.Errorf("engine: result %d arrived out of order (want %d)", m.QueryIndex, len(results))
			}
			results = append(results, *m)
		case wire.Done:
			if len(results) != queries.Len() {
				return nil, fmt.Errorf("engine: server returned %d results for %d queries", len(results), queries.Len())
			}
			return results, nil
		case *wire.ErrorMsg:
			return nil, fmt.Errorf("engine: server: %s", m.Text)
		default:
			return nil, fmt.Errorf("engine: unexpected %T", msg)
		}
	}
}
