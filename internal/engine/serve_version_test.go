package engine

import (
	"net"
	"strings"
	"testing"

	"swdual/internal/alphabet"
	"swdual/internal/synth"
	"swdual/internal/wire"
)

// TestServeRejectsOldProtocolVersion: version 4 moved the worker list
// inside StatsResponse (the cache counters landed before it), so a
// version-3 peer must be turned away at the handshake — with an error
// that names both versions — instead of failing mid-session on a stats
// poll.
func TestServeRejectsOldProtocolVersion(t *testing.T) {
	db := synth.RandomSet(alphabet.Protein, 10, 10, 50, 61)
	s, err := New(db, Config{CPUs: 1, GPUs: 0, TopK: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go Serve(l, s)
	nc, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	c := wire.NewConn(nc)
	if err := c.Send(&wire.Hello{Version: wire.Version - 1, Name: "stale"}); err != nil {
		t.Fatal(err)
	}
	msg, err := c.Recv()
	if err != nil {
		t.Fatal(err)
	}
	em, ok := msg.(*wire.ErrorMsg)
	if !ok {
		t.Fatalf("expected ErrorMsg for version %d, got %T", wire.Version-1, msg)
	}
	if !strings.Contains(em.Text, "version") {
		t.Fatalf("rejection does not mention the version: %q", em.Text)
	}
}
