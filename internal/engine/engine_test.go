package engine

import (
	"context"
	"sync"
	"testing"
	"time"

	"swdual/internal/alphabet"
	"swdual/internal/master"
	"swdual/internal/sched"
	"swdual/internal/seq"
	"swdual/internal/sw"
	"swdual/internal/synth"
)

func testSets(dbSeed, qSeed int64, dbN, qN int) (db, queries *seq.Set) {
	db = synth.RandomSet(alphabet.Protein, dbN, 10, 200, dbSeed)
	queries = synth.RandomSet(alphabet.Protein, qN, 20, 120, qSeed)
	return db, queries
}

// oneShot runs the seed's per-call path: fresh workers, fresh master,
// full teardown.
func oneShot(t *testing.T, db, queries *seq.Set, topK int) *master.Report {
	t.Helper()
	workers := master.BuildWorkers(sw.DefaultParams(), 2, 2, topK)
	m, err := master.New(db, queries, workers, master.Config{TopK: topK})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func sameHits(t *testing.T, label string, got, want *master.Report) {
	t.Helper()
	if len(got.Results) != len(want.Results) {
		t.Fatalf("%s: %d results, want %d", label, len(got.Results), len(want.Results))
	}
	for qi := range got.Results {
		a, b := got.Results[qi].Hits, want.Results[qi].Hits
		if len(a) != len(b) {
			t.Fatalf("%s query %d: %d hits vs %d", label, qi, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s query %d hit %d: %+v vs %+v", label, qi, i, a[i], b[i])
			}
		}
	}
}

func TestSearchMatchesOneShot(t *testing.T) {
	db, queries := testSets(1, 2, 50, 10)
	s, err := New(db, Config{CPUs: 2, GPUs: 2, TopK: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rep, err := s.Search(context.Background(), queries, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sameHits(t, "persistent", rep, oneShot(t, db, queries, 5))
	if rep.Schedule == nil {
		t.Fatal("dual-approx wave must carry a schedule")
	}
	if rep.Cells <= 0 || rep.GCUPS <= 0 {
		t.Fatalf("accounting: cells %d gcups %f", rep.Cells, rep.GCUPS)
	}
}

// TestSequentialSearchesSkipPreparation is the amortization guarantee:
// the second Search on the same Searcher must not rebuild profiles,
// length statistics or workers.
func TestSequentialSearchesSkipPreparation(t *testing.T) {
	db, queries := testSets(3, 4, 40, 8)
	s, err := New(db, Config{CPUs: 1, GPUs: 1, TopK: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	before := s.Stats()
	if before.Prepared != 1 {
		t.Fatalf("prepared %d times before first search, want 1", before.Prepared)
	}
	first, err := s.Search(context.Background(), queries, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	second, err := s.Search(context.Background(), queries, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sameHits(t, "second call", second, first)
	after := s.Stats()
	if after.Prepared != 1 {
		t.Fatalf("database re-prepared: %d passes after two searches", after.Prepared)
	}
	if after.WorkersStarted != before.WorkersStarted || after.WorkersStarted != 2 {
		t.Fatalf("worker pool rebuilt: %d started before, %d after", before.WorkersStarted, after.WorkersStarted)
	}
	if after.Searches != 2 || after.Queries != uint64(2*queries.Len()) {
		t.Fatalf("stats: %+v", after)
	}
}

// TestConcurrentCallers hammers one Searcher from 8 goroutines (run
// under -race) and checks every caller gets exactly the hits a serial
// one-shot search of its query set produces.
func TestConcurrentCallers(t *testing.T) {
	db := synth.RandomSet(alphabet.Protein, 50, 10, 200, 7)
	s, err := New(db, Config{CPUs: 2, GPUs: 2, TopK: 5, BatchWindow: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	const callers = 8
	var wg sync.WaitGroup
	reports := make([]*master.Report, callers)
	querySets := make([]*seq.Set, callers)
	for i := range querySets {
		querySets[i] = synth.RandomSet(alphabet.Protein, 4, 20, 120, int64(100+i))
	}
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			reports[i], errs[i] = s.Search(context.Background(), querySets[i], SearchOptions{})
		}(i)
	}
	wg.Wait()
	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		sameHits(t, "caller", reports[i], oneShot(t, db, querySets[i], 5))
	}
	if st := s.Stats(); st.Searches != callers {
		t.Fatalf("stats: %+v", st)
	}
}

// gateWorker blocks in Run until released, letting tests hold a wave
// open deterministically instead of racing wall-clock sleeps.
type gateWorker struct {
	*master.RateEstimator
	name    string
	started chan struct{} // closed when the first task starts running
	release chan struct{} // Run returns once this is closed
	once    sync.Once
}

func newGateWorker(name string) *gateWorker {
	return &gateWorker{RateEstimator: master.NewRateEstimator(1), name: name, started: make(chan struct{}), release: make(chan struct{})}
}

func (w *gateWorker) Name() string       { return w.name }
func (w *gateWorker) Kind() sched.Kind   { return sched.CPU }
func (w *gateWorker) RateGCUPS() float64 { return 1 }
func (w *gateWorker) Run(qi int, q *seq.Sequence, db *seq.Set) master.QueryResult {
	w.once.Do(func() { close(w.started) })
	<-w.release
	return master.QueryResult{QueryIndex: qi, QueryID: q.ID, Worker: w.name, Elapsed: time.Nanosecond, Cells: 1}
}

// TestBatchingCoalescesConcurrentRequests pins the single worker inside
// wave 1, queues four more requests behind it, and checks they coalesce
// into a shared wave once the worker is released.
func TestBatchingCoalescesConcurrentRequests(t *testing.T) {
	db := synth.RandomSet(alphabet.Protein, 10, 10, 50, 9)
	gw := newGateWorker("gate-0")
	s, err := New(db, Config{Workers: []master.Worker{gw}, TopK: 3, BatchWindow: 500 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var wg sync.WaitGroup
	search := func(i int) {
		defer wg.Done()
		q := synth.RandomSet(alphabet.Protein, 1, 20, 40, int64(200+i))
		if _, err := s.Search(context.Background(), q, SearchOptions{}); err != nil {
			t.Errorf("caller %d: %v", i, err)
		}
	}
	wg.Add(1)
	go search(0)
	<-gw.started // wave 1 is now in flight and the worker pinned
	const queued = 4
	for i := 1; i <= queued; i++ {
		wg.Add(1)
		go search(i)
	}
	time.Sleep(10 * time.Millisecond) // let the callers reach the submit queue
	close(gw.release)
	wg.Wait()
	st := s.Stats()
	if st.BatchedWaves == 0 {
		t.Fatalf("no wave coalesced multiple requests: %+v", st)
	}
	if st.Waves >= st.Searches {
		t.Fatalf("batching saved no waves: %d waves for %d searches", st.Waves, st.Searches)
	}
}

func TestContextCancellation(t *testing.T) {
	db, queries := testSets(11, 12, 20, 3)
	gw := newGateWorker("gate-0")
	s, err := New(db, Config{Workers: []master.Worker{gw}, TopK: 5, Policy: master.PolicySelfScheduling})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Already-canceled context: no work happens.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Search(ctx, queries, SearchOptions{}); err != context.Canceled {
		t.Fatalf("pre-canceled search returned %v", err)
	}

	// Cancel mid-flight: the gate worker pins the first task, so the
	// search is provably still running when the context dies. Search
	// must return the context error and the Searcher must stay usable.
	ctx, cancel = context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := s.Search(ctx, queries, SearchOptions{})
		done <- err
	}()
	<-gw.started
	cancel()
	select {
	case err := <-done:
		if err != context.Canceled {
			t.Fatalf("canceled search returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("canceled search did not return")
	}
	close(gw.release) // let the pinned task finish; unstarted ones are skipped
	if _, err := s.Search(context.Background(), queries, SearchOptions{}); err != nil {
		t.Fatalf("search after cancellation: %v", err)
	}
}

func TestCloseIdempotentAndFailsNewSearches(t *testing.T) {
	db, queries := testSets(13, 14, 20, 4)
	s, err := New(db, Config{CPUs: 1, GPUs: 0})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Search(context.Background(), queries, SearchOptions{}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := s.Close(); err != nil {
			t.Fatalf("close %d: %v", i, err)
		}
	}
	if _, err := s.Search(context.Background(), queries, SearchOptions{}); err != ErrClosed {
		t.Fatalf("search after close returned %v, want ErrClosed", err)
	}
}

func TestSearchOptionsTopK(t *testing.T) {
	db, queries := testSets(15, 16, 30, 3)
	s, err := New(db, Config{CPUs: 1, GPUs: 1, TopK: 10})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rep, err := s.Search(context.Background(), queries, SearchOptions{TopK: 2})
	if err != nil {
		t.Fatal(err)
	}
	for qi, res := range rep.Results {
		if len(res.Hits) != 2 {
			t.Fatalf("query %d: %d hits, want 2", qi, len(res.Hits))
		}
	}
	// Requests cannot exceed the pool's TopK.
	rep, err = s.Search(context.Background(), queries, SearchOptions{TopK: 99})
	if err != nil {
		t.Fatal(err)
	}
	for qi, res := range rep.Results {
		if len(res.Hits) > 10 {
			t.Fatalf("query %d: %d hits exceed pool TopK", qi, len(res.Hits))
		}
	}
}

func TestEmptyQuerySet(t *testing.T) {
	db, _ := testSets(17, 18, 20, 0)
	s, err := New(db, Config{CPUs: 1, GPUs: 0})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rep, err := s.Search(context.Background(), seq.NewSet(alphabet.Protein), SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 0 {
		t.Fatalf("%d results for empty query set", len(rep.Results))
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(nil, Config{}); err == nil {
		t.Fatal("nil database must fail")
	}
	db, _ := testSets(19, 20, 10, 0)
	s, err := New(db, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Search(context.Background(), nil, SearchOptions{}); err == nil {
		t.Fatal("nil query set must fail")
	}
	dna := seq.NewSet(alphabet.DNA)
	if _, err := s.Search(context.Background(), dna, SearchOptions{}); err == nil {
		t.Fatal("alphabet mismatch must fail")
	}
}

// TestStatsReportsObservedWorkerRates drives the observe→estimate loop
// end to end: after a search, Stats must carry one rate snapshot per
// worker, with the completed tasks spread across them summing to the
// query count and every observed worker's estimate moved off its seed.
func TestStatsReportsObservedWorkerRates(t *testing.T) {
	db, queries := testSets(23, 24, 40, 8)
	s, err := New(db, Config{CPUs: 1, GPUs: 1, TopK: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	before := s.Stats()
	if len(before.Workers) != 2 {
		t.Fatalf("%d worker rates, want 2", len(before.Workers))
	}
	for _, w := range before.Workers {
		if w.Tasks != 0 || w.ObservedGCUPS != w.AdvertisedGCUPS {
			t.Fatalf("worker %s observed before any search: %+v", w.Name, w)
		}
	}

	if _, err := s.Search(context.Background(), queries, SearchOptions{}); err != nil {
		t.Fatal(err)
	}
	after := s.Stats()
	var tasks uint64
	moved := 0
	for _, w := range after.Workers {
		tasks += w.Tasks
		if w.Tasks > 0 {
			if w.ObservedGCUPS <= 0 {
				t.Fatalf("worker %s ran %d tasks but observes %.3f GCUPS", w.Name, w.Tasks, w.ObservedGCUPS)
			}
			if w.ObservedGCUPS != w.AdvertisedGCUPS {
				moved++
			}
		}
	}
	if tasks != uint64(queries.Len()) {
		t.Fatalf("workers observed %d tasks in total, want %d", tasks, queries.Len())
	}
	if moved == 0 {
		t.Fatal("no worker's observed rate moved off its advertised seed")
	}
}

// TestMixedPoolConfig builds a Searcher from a heterogeneous PoolSpec
// and checks the pool shape lands in Stats, the search succeeds, and
// hits match the homogeneous engine byte for byte — backends change
// throughput, never results.
func TestMixedPoolConfig(t *testing.T) {
	db, queries := testSets(25, 26, 35, 6)
	ref, err := New(db, Config{CPUs: 2, GPUs: 2, TopK: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	want, err := ref.Search(context.Background(), queries, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}

	spec := master.PoolSpec{CPU: 1, Striped: 1, Fine: 1, GPU: 1}
	s, err := New(db, Config{Pool: spec, TopK: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	st := s.Stats()
	if st.WorkersStarted != spec.Total() || len(st.Workers) != spec.Total() {
		t.Fatalf("pool spec %v started %d workers with %d rate entries", spec, st.WorkersStarted, len(st.Workers))
	}
	cpus, gpus := 0, 0
	for _, w := range st.Workers {
		if w.Kind == sched.CPU {
			cpus++
		} else {
			gpus++
		}
	}
	if cpus != spec.CPUWorkers() || gpus != spec.GPUWorkers() {
		t.Fatalf("pool kinds %d CPU + %d GPU, want %d + %d", cpus, gpus, spec.CPUWorkers(), spec.GPUWorkers())
	}
	got, err := s.Search(context.Background(), queries, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sameHits(t, "mixed pool vs homogeneous", got, want)
}
