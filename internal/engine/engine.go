// Package engine turns the one-shot master-slave search into a
// persistent service. A Searcher loads a database once — sequences,
// residue encoding, length statistics, checksum — and owns a long-lived
// master.Pool of CPU and GPU workers; many goroutines may then call
// Search concurrently and share that preparation, the way the paper's
// long-lived master keeps its workers busy across task waves (§IV) and
// the way fine-grained parallel search engines amortize database setup
// across queries (Nguyen & Lavenier 2008).
//
// Concurrent requests are coalesced: a dispatcher goroutine collects
// queries arriving within a short batching window into one wave, runs
// the configured scheduling policy (dual-approximation by default) over
// the combined task set, dispatches per-worker queues through the pool,
// and routes each result back to its originating request.
//
// Waves move through the dispatcher in two stages — plan (task
// generation, policy run, per-query profile prefetch, all CPU-side) and
// execute (per-worker queue feeds and result merging, worker-side). By
// default consecutive waves pipeline: wave N+1 is planned while wave N's
// workers are still computing, and each worker rolls from its wave-N
// queue straight into its pre-planned wave-N+1 queue instead of
// barriering on the whole wave. PR 4's measured-rate estimator is what
// makes that sound — each wave is still planned with the freshest
// observed rates, snapshotted when the wave is admitted. Config.Pipeline
// = PipelineOff restores the strict one-wave-at-a-time fence, where
// every wave sees an idle platform — the assumption behind the
// scheduler's makespan guarantee and the mode the paper-reproduction
// benchmarks run in. Hits are byte-identical either way; pipelining
// moves work in time, never between result sets.
package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"swdual/internal/alphabet"
	"swdual/internal/master"
	"swdual/internal/resultcache"
	"swdual/internal/sched"
	"swdual/internal/scoring"
	"swdual/internal/seq"
	"swdual/internal/sw"
)

// DefaultTopK is the hits-per-query cap a zero Config.TopK selects; the
// sharding facade caps its gather with the same value.
const DefaultTopK = 10

// PipelineMode selects how consecutive scheduling waves relate.
type PipelineMode int

const (
	// PipelineAuto (the zero value) resolves at construction:
	// PipelineOn when more than one CPU is available to the process,
	// PipelineOff otherwise — overlapping planning with execution needs
	// a core to plan on; on a single-core host the overlap cannot buy
	// wall time and only adds scheduler churn.
	PipelineAuto PipelineMode = iota
	// PipelineOn overlaps the CPU-side planning of wave N+1 with the
	// execution of wave N and hands each worker its next queue the
	// moment it drains the current one.
	PipelineOn
	// PipelineOff runs waves strictly sequentially: every worker
	// finishes wave N before wave N+1 is planned, so each scheduling
	// decision sees an idle platform (the paper's §III model).
	PipelineOff
)

// String names the mode the way ParsePipeline accepts it.
func (m PipelineMode) String() string {
	switch m {
	case PipelineAuto:
		return "auto"
	case PipelineOn:
		return "on"
	case PipelineOff:
		return "off"
	}
	return fmt.Sprintf("PipelineMode(%d)", int(m))
}

// ParsePipeline maps a user-facing name to a PipelineMode. The empty
// string selects the default (auto).
func ParsePipeline(name string) (PipelineMode, error) {
	switch name {
	case "", "auto":
		return PipelineAuto, nil
	case "on":
		return PipelineOn, nil
	case "off":
		return PipelineOff, nil
	}
	return 0, fmt.Errorf("engine: unknown pipeline mode %q (want auto, on or off)", name)
}

// Config tunes a Searcher. The zero value works: 1 CPU + 1 GPU worker,
// BLOSUM62 defaults from sw.DefaultParams, dual-approximation policy.
type Config struct {
	// Params are the alignment parameters shared by all workers.
	Params sw.Params
	// CPUs and GPUs size the worker pools (defaults 1 and 1). Ignored
	// when Workers or Pool is set.
	CPUs, GPUs int
	// Pool, when it names at least one worker, selects a heterogeneous
	// worker set mixing CPU backends (inter-sequence, striped,
	// fine-grained) and GPUs — see master.PoolSpec. It overrides CPUs
	// and GPUs; Workers still wins over both.
	Pool master.PoolSpec
	// Workers overrides the built-in worker construction.
	Workers []master.Worker
	// TopK bounds hits kept per query (default 10). Per-request TopK may
	// be lower, never higher.
	TopK int
	// Policy selects the wave scheduling policy (dual-approx default).
	Policy master.Policy
	// Parallelism bounds concurrently computing workers (default
	// GOMAXPROCS).
	Parallelism int
	// BatchWindow controls online batching — the sign is the contract
	// coalesce runs on:
	//   - zero (the default) coalesces instantly: requests that queued up
	//     while the previous wave ran are drained into the next wave
	//     without waiting;
	//   - positive additionally holds each wave open that long for late
	//     arrivals (higher latency, bigger waves);
	//   - negative disables coalescing entirely: every request is its own
	//     wave (the one-shot path, which has no co-callers to wait for).
	BatchWindow time.Duration
	// MaxBatch caps the queries coalesced into one wave. Zero selects
	// the default (1024); a negative value is rejected by New.
	MaxBatch int
	// Pipeline selects whether consecutive waves overlap (PipelineOn:
	// wave N+1 is planned while wave N executes and workers hand off
	// between queues without a barrier) or fence (PipelineOff: strict
	// one-wave-at-a-time execution, the paper's idle-platform scheduling
	// model). The default (PipelineAuto) picks On on multi-core hosts
	// and Off on single-core ones. Results are byte-identical in every
	// mode.
	Pipeline PipelineMode
	// Cache enables the result cache and singleflight collapsing in
	// front of the dispatcher: a repeated search (same query residues,
	// same effective TopK, same database) is answered from a bounded
	// LRU without running a wave, and concurrent identical searches
	// collapse into one wave slot. Off by default — the paper's
	// benchmarks measure scheduling, so reproduction runs must pay
	// every wave. Hits are byte-identical with the cache on or off.
	Cache bool
	// CacheSize caps cached search fingerprints when Cache is on (0
	// selects resultcache.DefaultMaxEntries); a negative value is
	// rejected by New.
	CacheSize int
	// CacheBytes caps the result cache's estimated memory when Cache is
	// on (0 selects resultcache.DefaultMaxBytes); a negative value is
	// rejected by New.
	CacheBytes int64
}

func (c *Config) defaults() {
	if c.Params.Matrix == nil {
		c.Params = sw.DefaultParams()
	}
	if c.Workers == nil && c.Pool.Total() == 0 && c.CPUs == 0 && c.GPUs == 0 {
		c.CPUs, c.GPUs = 1, 1
	}
	if c.TopK <= 0 {
		c.TopK = DefaultTopK
	}
	if c.Parallelism <= 0 {
		c.Parallelism = runtime.GOMAXPROCS(0)
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 1024
	}
	if c.Pipeline == PipelineAuto {
		if runtime.GOMAXPROCS(0) > 1 {
			c.Pipeline = PipelineOn
		} else {
			c.Pipeline = PipelineOff
		}
	}
}

// SearchOptions tunes one Search call.
type SearchOptions struct {
	// TopK bounds reported hits per query; 0 uses the Searcher's TopK.
	// Values above the Searcher's TopK are capped to it.
	TopK int
}

// Stats counts what the Searcher has amortized and served. All counters
// are cumulative since New.
type Stats struct {
	DBSequences    int
	DBResidues     int64
	DBChecksum     uint32
	Prepared       int // database preparation passes (1 for the Searcher's lifetime)
	WorkersStarted int // worker goroutines ever started (pool size; never rebuilt)
	Searches       uint64
	Queries        uint64
	Waves          uint64
	BatchedWaves   uint64 // waves that coalesced more than one request
	// PipelinedWaves counts waves whose planning overlapped the previous
	// wave's execution — the observable proof that the two-stage
	// dispatcher is actually hiding scheduling latency, not just capable
	// of it. Always 0 with Pipeline = PipelineOff.
	PipelinedWaves uint64
	// OverlapNanos accumulates the CPU-side planning time (coalescing,
	// task generation, policy run, profile prefetch) that ran while a
	// previous wave was still executing — wall time the sequential
	// dispatcher would have added to the critical path.
	OverlapNanos uint64
	// CacheHits / CacheMisses / CacheEvictions count result-cache
	// traffic (all zero with Config.Cache off). CollapsedSearches
	// counts searches answered as singleflight followers — identical
	// concurrent requests that shared a leader's wave instead of
	// running their own. Searches - CacheHits - CollapsedSearches is
	// the number of requests that actually entered the dispatcher.
	CacheHits         uint64
	CacheMisses       uint64
	CacheEvictions    uint64
	CollapsedSearches uint64
	// ProfileEntries / ProfileHits / ProfileMisses / ProfileEvictions
	// expose the per-query profile cache (PR 5), which amortizes
	// striped-profile construction across waves — previously invisible
	// to operators.
	ProfileEntries   int
	ProfileHits      uint64
	ProfileMisses    uint64
	ProfileEvictions uint64
	// Replication counters (internal/replica; always zero on a plain
	// engine). FailedOver counts calls retried on a sibling replica
	// after the first choice failed with a lost connection;
	// HedgedSearches counts searches that issued a duplicate to a
	// second replica because the first ran past the latency threshold;
	// Redials counts dead replicas brought back by the background
	// reconnect loop. Under sharding they sum across every range's
	// replica set, and they cross the wire in StatsResponse, so a
	// cluster operator sees how often availability machinery actually
	// fired.
	HedgedSearches uint64
	FailedOver     uint64
	Redials        uint64
	// DegradedSearches counts searches answered with partial coverage:
	// a sharded coordinator running DegradedPartial merged the
	// surviving ranges after some range lost every replica (the
	// report's Coverage says which). Always zero on a plain engine and
	// on coordinators with the default fail policy. It crosses the wire
	// in StatsResponse (version 6) and sums across shard aggregation,
	// so a fleet operator sees how many answers were partial.
	DegradedSearches uint64
	// Workers snapshots each worker's advertised vs observed throughput
	// at the moment Stats was called — the rates the next scheduling
	// wave will be planned with. On a sharded Searcher the names are
	// shard-prefixed (shard0/cpu-0); over a remote backend they cross
	// the wire in the Stats frame, so cluster operators see the real
	// cluster throughput, not the advertised constants.
	Workers []WorkerRate
}

// WorkerRate is one worker's throughput snapshot inside Stats.
type WorkerRate struct {
	Name            string
	Kind            sched.Kind // scheduling pool (CPU or GPU)
	AdvertisedGCUPS float64    // the static rate the worker registered with
	ObservedGCUPS   float64    // live EWMA over measured task rates (== advertised until Tasks > 0)
	Tasks           uint64     // completed tasks folded into the estimate
}

// ErrClosed is returned by Search after Close.
var ErrClosed = errors.New("engine: searcher is closed")

// request is one Search call in flight.
type request struct {
	ctx     context.Context
	queries *seq.Set
	topK    int
	merge   *master.Merger
	// schedule is the wave schedule the request took part in (shared,
	// read-only; covers the whole wave, not just this request).
	schedule *sched.Schedule
	err      atomic.Pointer[error]
}

func (r *request) fail(err error) {
	r.err.CompareAndSwap(nil, &err)
}

// Searcher is a persistent hybrid search service over one database.
type Searcher struct {
	cfg Config

	// Prepared once at New, shared by every request.
	db         *seq.Set
	dbResidues int64
	dbLengths  []int
	checksum   uint32

	pool   *master.Pool
	submit chan *request
	quit   chan struct{}
	done   chan struct{} // dispatcher exited
	once   func()        // idempotent close

	// profiles shares per-query profile construction across workers and
	// waves; scratch recycles the wave-planning slices (two waves may be
	// in flight when pipelining, so a plain field is not enough).
	profiles *scoring.ProfileCache
	scratch  sync.Pool // *waveScratch

	// cache and flight implement the result cache and singleflight
	// collapsing in front of the dispatcher; both are nil with
	// Config.Cache off, and Search then goes straight to searchWave.
	cache  *resultcache.Cache
	flight *resultcache.Flight

	prepared       atomic.Int64
	searches       atomic.Uint64
	queries        atomic.Uint64
	waves          atomic.Uint64
	batchedWaves   atomic.Uint64
	pipelinedWaves atomic.Uint64
	overlapNanos   atomic.Uint64
	collapsed      atomic.Uint64
	// admittedReqs counts requests the dispatcher has drained from the
	// submit channel — the deterministic "this request is now part of a
	// forming wave" signal the plan-stage cancellation tests synchronize
	// on (not exported: Stats derives nothing from it).
	admittedReqs atomic.Uint64
}

// New prepares the database once and starts the persistent worker pool
// and the batching dispatcher. Callers own the returned Searcher and
// must Close it to release the workers.
func New(db *seq.Set, cfg Config) (*Searcher, error) {
	if db == nil {
		return nil, fmt.Errorf("engine: nil database")
	}
	if cfg.MaxBatch < 0 {
		// A negative cap would make every coalesce loop terminate
		// immediately at best and spin at worst; reject it here instead
		// of wedging the dispatcher.
		return nil, fmt.Errorf("engine: negative MaxBatch %d (0 selects the default)", cfg.MaxBatch)
	}
	if cfg.CacheSize < 0 {
		return nil, fmt.Errorf("engine: negative CacheSize %d (0 selects the default)", cfg.CacheSize)
	}
	if cfg.CacheBytes < 0 {
		return nil, fmt.Errorf("engine: negative CacheBytes %d (0 selects the default)", cfg.CacheBytes)
	}
	cfg.defaults()
	s := &Searcher{
		cfg:    cfg,
		db:     db,
		submit: make(chan *request),
		quit:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	s.profiles = scoring.NewProfileCache(cfg.Params.Matrix, 0)
	s.scratch.New = func() any { return new(waveScratch) }
	if cfg.Cache {
		s.cache = resultcache.New(resultcache.Config{MaxEntries: cfg.CacheSize, MaxBytes: cfg.CacheBytes})
		s.flight = resultcache.NewFlight()
	}
	s.prepare()
	workers := cfg.Workers
	if workers == nil {
		if cfg.Pool.Total() > 0 {
			workers = master.BuildPoolWorkers(cfg.Params, cfg.Pool, cfg.TopK)
		} else {
			workers = master.BuildWorkers(cfg.Params, cfg.CPUs, cfg.GPUs, cfg.TopK)
		}
	}
	pool, err := master.NewPool(workers, master.PoolConfig{Parallelism: cfg.Parallelism})
	if err != nil {
		return nil, err
	}
	s.pool = pool
	var closeOnce atomic.Bool
	s.once = func() {
		if closeOnce.CompareAndSwap(false, true) {
			close(s.quit)
		}
	}
	go s.dispatch()
	return s, nil
}

// prepare runs the once-per-database work every request reuses: length
// statistics for the scheduler and a content checksum for serve-mode
// client verification. Residue encoding already happened when the set
// was built; keeping the set resident amortizes it.
func (s *Searcher) prepare() {
	s.dbResidues = s.db.TotalResidues()
	s.dbLengths = make([]int, s.db.Len())
	for i := range s.db.Seqs {
		s.dbLengths[i] = s.db.Seqs[i].Len()
	}
	s.checksum = s.db.Checksum()
	s.prepared.Add(1)
}

// DB returns the loaded database.
func (s *Searcher) DB() *seq.Set { return s.db }

// Alphabet returns the database alphabet.
func (s *Searcher) Alphabet() *alphabet.Alphabet { return s.db.Alpha }

// DBLengths returns the precomputed database sequence lengths.
func (s *Searcher) DBLengths() []int { return s.dbLengths }

// Plan runs only the Searcher's scheduling policy over hypothetical
// queries of the given lengths, against the prepared database statistics
// and the pool's live measured rates — no search runs. A dynamic
// policy (self-scheduling) produces no static schedule and returns
// (nil, nil); serve mode answers Plan frames with this.
func (s *Searcher) Plan(queryLens []int) (*sched.Schedule, error) {
	switch s.cfg.Policy {
	case master.PolicySelfScheduling, master.PolicyRoundRobin:
		return nil, nil
	}
	ids := make([]string, len(queryLens))
	for i := range ids {
		ids[i] = fmt.Sprintf("q%d", i)
	}
	in := master.BuildInstance(s.dbResidues, queryLens, ids, s.pool.Rates())
	_, schedule, err := master.Assign(s.cfg.Policy, in, s.pool.Workers())
	if err != nil {
		return nil, err
	}
	return schedule, nil
}

// Checksum fingerprints the loaded database (CRC-32 of all residues).
func (s *Searcher) Checksum() uint32 { return s.checksum }

// Stats reports the Searcher's cumulative counters and a live snapshot
// of every worker's observed throughput.
func (s *Searcher) Stats() Stats {
	workers := s.pool.Workers()
	rates := make([]WorkerRate, len(workers))
	for i, w := range workers {
		rates[i] = WorkerRate{
			Name:            w.Name(),
			Kind:            w.Kind(),
			AdvertisedGCUPS: w.RateGCUPS(),
			ObservedGCUPS:   w.MeasuredRateGCUPS(),
			Tasks:           w.ObservedTasks(),
		}
	}
	ps := s.profiles.Stats()
	st := Stats{
		DBSequences:       s.db.Len(),
		DBResidues:        s.dbResidues,
		DBChecksum:        s.checksum,
		Prepared:          int(s.prepared.Load()),
		WorkersStarted:    s.pool.Size(),
		Searches:          s.searches.Load(),
		Queries:           s.queries.Load(),
		Waves:             s.waves.Load(),
		BatchedWaves:      s.batchedWaves.Load(),
		PipelinedWaves:    s.pipelinedWaves.Load(),
		OverlapNanos:      s.overlapNanos.Load(),
		CollapsedSearches: s.collapsed.Load(),
		ProfileEntries:    ps.Entries,
		ProfileHits:       ps.Hits,
		ProfileMisses:     ps.Misses,
		ProfileEvictions:  ps.Evictions,
		Workers:           rates,
	}
	if s.cache != nil {
		cs := s.cache.Stats()
		st.CacheHits, st.CacheMisses, st.CacheEvictions = cs.Hits, cs.Misses, cs.Evictions
	}
	return st
}

// Search compares every query against the database and returns merged,
// score-sorted hits per query, exactly as a one-shot master run would.
// It is safe for any number of goroutines to call Search concurrently;
// concurrent calls may share a scheduling wave. Search honors ctx: on
// cancellation it returns ctx.Err() and unstarted tasks are skipped.
//
// With Config.Cache on, a search whose fingerprint (query residues,
// effective TopK, database checksum) was answered before returns the
// cached hits without entering the dispatcher, and concurrent identical
// searches collapse onto one wave: the first becomes the leader and
// runs the wave, the rest wait for its answer. A follower's ctx
// cancellation abandons only that follower; a leader error reaches
// every follower and is never cached. Hits are byte-identical to an
// uncached search either way.
func (s *Searcher) Search(ctx context.Context, queries *seq.Set, opts SearchOptions) (*master.Report, error) {
	if queries == nil {
		return nil, fmt.Errorf("engine: nil query set")
	}
	if queries.Alpha != s.db.Alpha {
		return nil, fmt.Errorf("engine: query alphabet differs from database alphabet")
	}
	topK := opts.TopK
	if topK <= 0 || topK > s.cfg.TopK {
		topK = s.cfg.TopK
	}
	s.searches.Add(1)
	s.queries.Add(uint64(queries.Len()))
	// A dead context never gets an answer — cached, collapsed or waved:
	// callers rely on cancellation meaning "stop", and a doomed request
	// must not occupy a wave slot (the gateway propagates client
	// deadlines down this ctx precisely so expired work is never
	// planned).
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if s.cache == nil || queries.Len() == 0 {
		return s.searchWave(ctx, queries, topK)
	}
	key := resultcache.Key(s.checksum, topK, queries)
	if hits, ok := s.cache.Get(key); ok {
		return resultcache.Report(s.cfg.Policy, queries, hits), nil
	}
	call, leader := s.flight.Join(key)
	if !leader {
		s.collapsed.Add(1)
		hits, err := call.Wait(ctx)
		if err != nil {
			return nil, err
		}
		return resultcache.Report(s.cfg.Policy, queries, resultcache.CopyHits(hits)), nil
	}
	rep, err := s.searchWave(ctx, queries, topK)
	if err != nil {
		s.flight.Finish(key, call, nil, err)
		return nil, err
	}
	hits := make([][]master.Hit, len(rep.Results))
	for i := range rep.Results {
		hits[i] = rep.Results[i].Hits
	}
	s.cache.Put(key, hits)
	s.flight.Finish(key, call, resultcache.CopyHits(hits), nil)
	return rep, nil
}

// searchWave runs one real search through the dispatcher: submit the
// request, wait for its merge, assemble the report and apply the
// per-request TopK truncation. This is the whole of Search when the
// result cache is off.
func (s *Searcher) searchWave(ctx context.Context, queries *seq.Set, topK int) (*master.Report, error) {
	req := &request{
		ctx:     ctx,
		queries: queries,
		topK:    topK,
		merge:   master.NewMerger(queries.Len()),
	}
	if queries.Len() > 0 {
		select {
		case s.submit <- req:
		case <-s.quit:
			return nil, ErrClosed
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	select {
	case <-req.merge.Done():
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	if errp := req.err.Load(); errp != nil {
		return nil, *errp
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	rep := req.merge.Report(s.cfg.Policy, req.schedule)
	if topK < s.cfg.TopK {
		for i := range rep.Results {
			if len(rep.Results[i].Hits) > topK {
				rep.Results[i].Hits = rep.Results[i].Hits[:topK]
			}
		}
	}
	return rep, nil
}

// Close stops the dispatcher, fails pending requests with ErrClosed and
// shuts the worker pool down. It is idempotent and safe to call
// concurrently; tasks already accepted by a worker still complete.
func (s *Searcher) Close() error {
	s.once()
	<-s.done
	return s.pool.Close()
}

// dispatch is the service loop: collect a wave, plan it, start its
// execution, repeat. Exactly one dispatcher runs per Searcher.
//
// With pipelining on, the loop keeps at most two waves in flight: while
// wave N executes, the dispatcher coalesces and plans wave N+1 (the
// whole CPU side of scheduling runs in the shadow of N's compute),
// chains its per-worker queues behind N's, and only then waits for N —
// so a worker that drains its wave-N queue rolls straight into its
// wave-N+1 queue while slower workers are still on N. With PipelineOff
// the loop degenerates to the strict plan-execute-fence sequence.
func (s *Searcher) dispatch() {
	var executing *wave // the previous wave, possibly still executing (pipeline depth <= 2)
	defer func() {
		// Drain the wave still in flight before announcing exit: its
		// tasks are fed while the pool is still up, so Close keeps the
		// guarantee waves always had — dispatched work completes, only
		// never-admitted requests fail with ErrClosed.
		if executing != nil {
			s.retireWave(executing)
		}
		close(s.done)
	}()
	for {
		select {
		case <-s.quit:
			return
		case req := <-s.submit:
			batch := s.coalesce(req)
			if batch == nil {
				return // closed while batching; requests already failed
			}
			planStart := time.Now()
			w := s.planWave(batch)
			if w == nil {
				continue // plan failed; batch already failed
			}
			overlapped := executing != nil && !waveCompleted(executing)
			s.startWave(w, executing)
			if s.cfg.Pipeline == PipelineOff {
				executing = nil
				s.retireWave(w) // the strict fence: idle platform per wave
				continue
			}
			if overlapped {
				s.pipelinedWaves.Add(1)
				s.overlapNanos.Add(uint64(time.Since(planStart)))
			}
			if executing != nil {
				// Bound the pipeline at depth two: retire wave N before
				// admitting wave N+2's batching, so planning stays
				// exactly one wave ahead of execution. Workers are
				// already rolling into wave N+1 while we wait here.
				s.retireWave(executing)
			}
			executing = w
		}
	}
}

// coalesce implements online batching: requests already waiting (they
// arrived while the previous wave ran) are drained into this wave
// immediately; a positive BatchWindow additionally holds the wave open
// for late arrivals. Coalescing stops at MaxBatch queries.
func (s *Searcher) coalesce(first *request) []*request {
	s.admittedReqs.Add(1)
	batch := []*request{first}
	if s.cfg.BatchWindow < 0 {
		return batch
	}
	n := first.queries.Len()
	for n < s.cfg.MaxBatch {
		select {
		case r := <-s.submit:
			s.admittedReqs.Add(1)
			batch = append(batch, r)
			n += r.queries.Len()
			continue
		default:
		}
		break
	}
	if s.cfg.BatchWindow == 0 {
		return batch
	}
	timer := time.NewTimer(s.cfg.BatchWindow)
	defer timer.Stop()
	for n < s.cfg.MaxBatch {
		select {
		case r := <-s.submit:
			s.admittedReqs.Add(1)
			batch = append(batch, r)
			n += r.queries.Len()
		case <-timer.C:
			return batch
		case <-s.quit:
			for _, r := range batch {
				s.abandon(r)
			}
			return nil
		}
	}
	return batch
}

// abandon fails a request that will never be dispatched.
func (s *Searcher) abandon(r *request) {
	r.fail(ErrClosed)
	for i := 0; i < r.queries.Len(); i++ {
		r.merge.Skip(i)
	}
}

// waveEntry addresses one query of one request within a wave and
// carries the query's shared profile set.
type waveEntry struct {
	req   *request
	local int // query index within the request
	prof  *scoring.QueryProfiles
}

// waveScratch holds the plan-stage slices of one wave. Scratches are
// recycled through Searcher.scratch once the wave retires, so a
// steady-state dispatcher stops paying the allocator per wave; capacity
// is kept, length resliced to zero.
type waveScratch struct {
	entries []waveEntry
	lens    []int
	ids     []string
	all     []int // identity queue (self-scheduling)
}

func (sc *waveScratch) reset() {
	clear(sc.entries) // drop request/profile pointers so recycling can't pin them
	sc.entries = sc.entries[:0]
	sc.lens = sc.lens[:0]
	sc.ids = sc.ids[:0]
	sc.all = sc.all[:0]
}

// closedGate is the pre-closed handoff gate of a wave with no
// predecessor.
var closedGate = func() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}()

// wave is one scheduling wave moving through the two-stage dispatcher.
// Plan (planWave) produced its entries, queues and schedule; execute
// (startWave) feeds the queues; retire (retireWave, dispatcher-only)
// waits out the merges and recycles the scratch.
type wave struct {
	batch    []*request
	scratch  *waveScratch
	queues   [][]int // per-worker queues of wave-global indices (static policies)
	shared   bool    // self-scheduling: one shared queue (scratch.all) instead
	schedule *sched.Schedule
	// fed[wi] closes when this wave's feed to worker wi returned — the
	// gate the next wave's feed to the same worker waits on, which is
	// the whole handoff: per-worker FIFO order between waves without a
	// global barrier. sharedFed is the analogue for the shared queue.
	fed       []chan struct{}
	sharedFed chan struct{}
}

// planWave runs the CPU side of one wave: account it, assemble the
// entry/length/id slices from recycled scratch, attach each query's
// shared profile set, snapshot the pool's measured rates at admission
// time and run the scheduling policy. With pipelining on, all of this
// overlaps the previous wave's execution. On a scheduling error the
// batch is failed and nil returned.
func (s *Searcher) planWave(batch []*request) *wave {
	// Deadline propagation ends here: a request whose ctx died while it
	// waited to coalesce (or while the previous wave pipelined ahead of
	// it) is failed now instead of being planned — doomed work never
	// reaches a worker queue, so an overloaded caller that gave up frees
	// its wave share instead of wasting it.
	live := batch[:0]
	for _, r := range batch {
		if err := r.ctx.Err(); err != nil {
			r.fail(err)
			for i := 0; i < r.queries.Len(); i++ {
				r.merge.Skip(i)
			}
			continue
		}
		live = append(live, r)
	}
	if len(live) == 0 {
		return nil
	}
	batch = live
	s.waves.Add(1)
	if len(batch) > 1 {
		s.batchedWaves.Add(1)
	}
	sc := s.scratch.Get().(*waveScratch)
	sc.reset()
	for _, r := range batch {
		for qi := range r.queries.Seqs {
			q := &r.queries.Seqs[qi]
			sc.entries = append(sc.entries, waveEntry{req: r, local: qi, prof: s.profiles.Get(q.Residues)})
			sc.lens = append(sc.lens, q.Len())
			sc.ids = append(sc.ids, q.ID)
		}
	}
	w := &wave{batch: batch, scratch: sc}
	if s.cfg.Policy == master.PolicySelfScheduling {
		for i := range sc.entries {
			sc.all = append(sc.all, i)
		}
		w.shared = true
		return w
	}
	// Snapshot the pool's measured rates at admission: every wave is
	// scheduled with the throughput the workers actually delivered so
	// far — including, under pipelining, tasks of the wave currently
	// executing — and tasks completing in this wave refine the rates
	// the next wave sees.
	in := master.BuildInstance(s.dbResidues, sc.lens, sc.ids, s.pool.Rates())
	queues, schedule, err := master.Assign(s.cfg.Policy, in, s.pool.Workers())
	if err != nil {
		for _, r := range batch {
			r.fail(err)
			s.abandon(r)
		}
		s.scratch.Put(sc)
		return nil
	}
	w.queues, w.schedule = queues, schedule
	for _, r := range batch {
		r.schedule = schedule
	}
	if s.cfg.Pipeline == PipelineOn {
		// Prefetch the 8-bit striped profile of queries seen for the
		// first time: under pipelining this construction runs in the
		// shadow of the previous wave instead of on a worker's critical
		// path. (Cache hits make it a no-op, and profiles are built
		// lazily on demand either way.)
		for i := range sc.entries {
			sc.entries[i].prof.Striped8()
		}
	}
	return w
}

// startWave begins executing a planned wave: one feed goroutine per
// non-empty queue, each gated on the previous wave's feed to the same
// destination. It never blocks on the workers.
func (s *Searcher) startWave(w, prev *wave) {
	if w.shared {
		gate := closedGate
		if prev != nil {
			gate = prev.sharedFed
		}
		w.sharedFed = make(chan struct{})
		go s.feed(w, w.scratch.all, gate, w.sharedFed, s.pool.SubmitShared)
		return
	}
	w.fed = make([]chan struct{}, len(w.queues))
	for wi := range w.queues {
		gate := closedGate
		if prev != nil {
			gate = prev.fed[wi]
		}
		if len(w.queues[wi]) == 0 {
			// Nothing to feed: this wave's gate for the worker is
			// the predecessor's, so the chain stays intact.
			w.fed[wi] = gate
			continue
		}
		w.fed[wi] = make(chan struct{})
		wi := wi
		go s.feed(w, w.queues[wi], gate, w.fed[wi], func(t master.PoolTask) error { return s.pool.Submit(wi, t) })
	}
}

// retireWave blocks until every merge of the wave completed, then
// recycles its scratch. Only the dispatcher calls it (at most once per
// wave), keeping wave retirement off any extra goroutine — an added
// scheduling hop here is paid on every wave of a small-request serving
// workload.
func (s *Searcher) retireWave(w *wave) {
	for _, r := range w.batch {
		<-r.merge.Done()
	}
	s.scratch.Put(w.scratch) // safe: all Done/Canceled callbacks have fired
	w.scratch = nil
}

// waveCompleted is the non-blocking probe behind the overlap counters.
func waveCompleted(w *wave) bool {
	for _, r := range w.batch {
		select {
		case <-r.merge.Done():
		default:
			return false
		}
	}
	return true
}

// feed hands one queue of wave-global indices to its destination in
// order, after the handoff gate of the previous wave's feed to the same
// destination closed. On pool shutdown the remainder is skipped so
// merges still complete and callers observe the close.
func (s *Searcher) feed(w *wave, queue []int, gate <-chan struct{}, fed chan struct{}, send func(master.PoolTask) error) {
	defer close(fed)
	<-gate
	entries := w.scratch.entries
	for i, gi := range queue {
		e := &entries[gi]
		t := master.PoolTask{
			QueryIndex: e.local,
			Query:      &e.req.queries.Seqs[e.local],
			DB:         s.db,
			Profiles:   e.prof,
			Canceled:   func() bool { return e.req.ctx.Err() != nil },
			Done: func(res master.QueryResult, ran bool) {
				if !ran {
					e.req.fail(e.req.ctx.Err())
					e.req.merge.Skip(e.local)
					return
				}
				e.req.merge.Add(e.local, res)
			},
		}
		if err := send(t); err != nil {
			for _, rest := range queue[i:] {
				entries[rest].req.fail(err)
				entries[rest].req.merge.Skip(entries[rest].local)
			}
			return
		}
	}
}
