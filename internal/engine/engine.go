// Package engine turns the one-shot master-slave search into a
// persistent service. A Searcher loads a database once — sequences,
// residue encoding, length statistics, checksum — and owns a long-lived
// master.Pool of CPU and GPU workers; many goroutines may then call
// Search concurrently and share that preparation, the way the paper's
// long-lived master keeps its workers busy across task waves (§IV) and
// the way fine-grained parallel search engines amortize database setup
// across queries (Nguyen & Lavenier 2008).
//
// Concurrent requests are coalesced: a dispatcher goroutine collects
// queries arriving within a short batching window into one wave, runs
// the configured scheduling policy (dual-approximation by default) over
// the combined task set, dispatches per-worker queues through the pool,
// and routes each result back to its originating request. Waves run one
// at a time, so every wave sees an idle platform — the assumption behind
// the scheduler's makespan guarantee.
package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"swdual/internal/alphabet"
	"swdual/internal/master"
	"swdual/internal/sched"
	"swdual/internal/seq"
	"swdual/internal/sw"
)

// DefaultTopK is the hits-per-query cap a zero Config.TopK selects; the
// sharding facade caps its gather with the same value.
const DefaultTopK = 10

// Config tunes a Searcher. The zero value works: 1 CPU + 1 GPU worker,
// BLOSUM62 defaults from sw.DefaultParams, dual-approximation policy.
type Config struct {
	// Params are the alignment parameters shared by all workers.
	Params sw.Params
	// CPUs and GPUs size the worker pools (defaults 1 and 1). Ignored
	// when Workers or Pool is set.
	CPUs, GPUs int
	// Pool, when it names at least one worker, selects a heterogeneous
	// worker set mixing CPU backends (inter-sequence, striped,
	// fine-grained) and GPUs — see master.PoolSpec. It overrides CPUs
	// and GPUs; Workers still wins over both.
	Pool master.PoolSpec
	// Workers overrides the built-in worker construction.
	Workers []master.Worker
	// TopK bounds hits kept per query (default 10). Per-request TopK may
	// be lower, never higher.
	TopK int
	// Policy selects the wave scheduling policy (dual-approx default).
	Policy master.Policy
	// Parallelism bounds concurrently computing workers (default
	// GOMAXPROCS).
	Parallelism int
	// BatchWindow controls online batching. Zero (the default) coalesces
	// instantly: requests that queued up while the previous wave ran are
	// drained into the next wave without waiting. A positive window
	// additionally holds each wave open that long for more arrivals
	// (higher latency, bigger waves). Negative disables coalescing.
	BatchWindow time.Duration
	// MaxBatch caps the queries coalesced into one wave (default 1024).
	MaxBatch int
}

func (c *Config) defaults() {
	if c.Params.Matrix == nil {
		c.Params = sw.DefaultParams()
	}
	if c.Workers == nil && c.Pool.Total() == 0 && c.CPUs == 0 && c.GPUs == 0 {
		c.CPUs, c.GPUs = 1, 1
	}
	if c.TopK <= 0 {
		c.TopK = DefaultTopK
	}
	if c.Parallelism <= 0 {
		c.Parallelism = runtime.GOMAXPROCS(0)
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 1024
	}
}

// SearchOptions tunes one Search call.
type SearchOptions struct {
	// TopK bounds reported hits per query; 0 uses the Searcher's TopK.
	// Values above the Searcher's TopK are capped to it.
	TopK int
}

// Stats counts what the Searcher has amortized and served. All counters
// are cumulative since New.
type Stats struct {
	DBSequences    int
	DBResidues     int64
	DBChecksum     uint32
	Prepared       int // database preparation passes (1 for the Searcher's lifetime)
	WorkersStarted int // worker goroutines ever started (pool size; never rebuilt)
	Searches       uint64
	Queries        uint64
	Waves          uint64
	BatchedWaves   uint64 // waves that coalesced more than one request
	// Workers snapshots each worker's advertised vs observed throughput
	// at the moment Stats was called — the rates the next scheduling
	// wave will be planned with. On a sharded Searcher the names are
	// shard-prefixed (shard0/cpu-0); over a remote backend they cross
	// the wire in the Stats frame, so cluster operators see the real
	// cluster throughput, not the advertised constants.
	Workers []WorkerRate
}

// WorkerRate is one worker's throughput snapshot inside Stats.
type WorkerRate struct {
	Name            string
	Kind            sched.Kind // scheduling pool (CPU or GPU)
	AdvertisedGCUPS float64    // the static rate the worker registered with
	ObservedGCUPS   float64    // live EWMA over measured task rates (== advertised until Tasks > 0)
	Tasks           uint64     // completed tasks folded into the estimate
}

// ErrClosed is returned by Search after Close.
var ErrClosed = errors.New("engine: searcher is closed")

// request is one Search call in flight.
type request struct {
	ctx     context.Context
	queries *seq.Set
	topK    int
	merge   *master.Merger
	// schedule is the wave schedule the request took part in (shared,
	// read-only; covers the whole wave, not just this request).
	schedule *sched.Schedule
	err      atomic.Pointer[error]
}

func (r *request) fail(err error) {
	r.err.CompareAndSwap(nil, &err)
}

// Searcher is a persistent hybrid search service over one database.
type Searcher struct {
	cfg Config

	// Prepared once at New, shared by every request.
	db         *seq.Set
	dbResidues int64
	dbLengths  []int
	checksum   uint32

	pool   *master.Pool
	submit chan *request
	quit   chan struct{}
	done   chan struct{} // dispatcher exited
	once   func()        // idempotent close

	prepared     atomic.Int64
	searches     atomic.Uint64
	queries      atomic.Uint64
	waves        atomic.Uint64
	batchedWaves atomic.Uint64
}

// New prepares the database once and starts the persistent worker pool
// and the batching dispatcher. Callers own the returned Searcher and
// must Close it to release the workers.
func New(db *seq.Set, cfg Config) (*Searcher, error) {
	if db == nil {
		return nil, fmt.Errorf("engine: nil database")
	}
	cfg.defaults()
	s := &Searcher{
		cfg:    cfg,
		db:     db,
		submit: make(chan *request),
		quit:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	s.prepare()
	workers := cfg.Workers
	if workers == nil {
		if cfg.Pool.Total() > 0 {
			workers = master.BuildPoolWorkers(cfg.Params, cfg.Pool, cfg.TopK)
		} else {
			workers = master.BuildWorkers(cfg.Params, cfg.CPUs, cfg.GPUs, cfg.TopK)
		}
	}
	pool, err := master.NewPool(workers, master.PoolConfig{Parallelism: cfg.Parallelism})
	if err != nil {
		return nil, err
	}
	s.pool = pool
	var closeOnce atomic.Bool
	s.once = func() {
		if closeOnce.CompareAndSwap(false, true) {
			close(s.quit)
		}
	}
	go s.dispatch()
	return s, nil
}

// prepare runs the once-per-database work every request reuses: length
// statistics for the scheduler and a content checksum for serve-mode
// client verification. Residue encoding already happened when the set
// was built; keeping the set resident amortizes it.
func (s *Searcher) prepare() {
	s.dbResidues = s.db.TotalResidues()
	s.dbLengths = make([]int, s.db.Len())
	for i := range s.db.Seqs {
		s.dbLengths[i] = s.db.Seqs[i].Len()
	}
	s.checksum = s.db.Checksum()
	s.prepared.Add(1)
}

// DB returns the loaded database.
func (s *Searcher) DB() *seq.Set { return s.db }

// Alphabet returns the database alphabet.
func (s *Searcher) Alphabet() *alphabet.Alphabet { return s.db.Alpha }

// DBLengths returns the precomputed database sequence lengths.
func (s *Searcher) DBLengths() []int { return s.dbLengths }

// Plan runs only the Searcher's scheduling policy over hypothetical
// queries of the given lengths, against the prepared database statistics
// and the pool's live measured rates — no search runs. A dynamic
// policy (self-scheduling) produces no static schedule and returns
// (nil, nil); serve mode answers Plan frames with this.
func (s *Searcher) Plan(queryLens []int) (*sched.Schedule, error) {
	switch s.cfg.Policy {
	case master.PolicySelfScheduling, master.PolicyRoundRobin:
		return nil, nil
	}
	ids := make([]string, len(queryLens))
	for i := range ids {
		ids[i] = fmt.Sprintf("q%d", i)
	}
	in := master.BuildInstance(s.dbResidues, queryLens, ids, s.pool.Rates())
	_, schedule, err := master.Assign(s.cfg.Policy, in, s.pool.Workers())
	if err != nil {
		return nil, err
	}
	return schedule, nil
}

// Checksum fingerprints the loaded database (CRC-32 of all residues).
func (s *Searcher) Checksum() uint32 { return s.checksum }

// Stats reports the Searcher's cumulative counters and a live snapshot
// of every worker's observed throughput.
func (s *Searcher) Stats() Stats {
	workers := s.pool.Workers()
	rates := make([]WorkerRate, len(workers))
	for i, w := range workers {
		rates[i] = WorkerRate{
			Name:            w.Name(),
			Kind:            w.Kind(),
			AdvertisedGCUPS: w.RateGCUPS(),
			ObservedGCUPS:   w.MeasuredRateGCUPS(),
			Tasks:           w.ObservedTasks(),
		}
	}
	return Stats{
		DBSequences:    s.db.Len(),
		DBResidues:     s.dbResidues,
		DBChecksum:     s.checksum,
		Prepared:       int(s.prepared.Load()),
		WorkersStarted: s.pool.Size(),
		Searches:       s.searches.Load(),
		Queries:        s.queries.Load(),
		Waves:          s.waves.Load(),
		BatchedWaves:   s.batchedWaves.Load(),
		Workers:        rates,
	}
}

// Search compares every query against the database and returns merged,
// score-sorted hits per query, exactly as a one-shot master run would.
// It is safe for any number of goroutines to call Search concurrently;
// concurrent calls may share a scheduling wave. Search honors ctx: on
// cancellation it returns ctx.Err() and unstarted tasks are skipped.
func (s *Searcher) Search(ctx context.Context, queries *seq.Set, opts SearchOptions) (*master.Report, error) {
	if queries == nil {
		return nil, fmt.Errorf("engine: nil query set")
	}
	if queries.Alpha != s.db.Alpha {
		return nil, fmt.Errorf("engine: query alphabet differs from database alphabet")
	}
	topK := opts.TopK
	if topK <= 0 || topK > s.cfg.TopK {
		topK = s.cfg.TopK
	}
	s.searches.Add(1)
	s.queries.Add(uint64(queries.Len()))
	req := &request{
		ctx:     ctx,
		queries: queries,
		topK:    topK,
		merge:   master.NewMerger(queries.Len()),
	}
	if queries.Len() > 0 {
		select {
		case s.submit <- req:
		case <-s.quit:
			return nil, ErrClosed
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	select {
	case <-req.merge.Done():
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	if errp := req.err.Load(); errp != nil {
		return nil, *errp
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	rep := req.merge.Report(s.cfg.Policy, req.schedule)
	if topK < s.cfg.TopK {
		for i := range rep.Results {
			if len(rep.Results[i].Hits) > topK {
				rep.Results[i].Hits = rep.Results[i].Hits[:topK]
			}
		}
	}
	return rep, nil
}

// Close stops the dispatcher, fails pending requests with ErrClosed and
// shuts the worker pool down. It is idempotent and safe to call
// concurrently; tasks already accepted by a worker still complete.
func (s *Searcher) Close() error {
	s.once()
	<-s.done
	return s.pool.Close()
}

// dispatch is the service loop: collect a wave, schedule it, route
// results, repeat. Exactly one dispatcher runs per Searcher.
func (s *Searcher) dispatch() {
	defer close(s.done)
	for {
		select {
		case <-s.quit:
			return
		case req := <-s.submit:
			batch := s.coalesce(req)
			if batch == nil {
				return // closed while batching; requests already failed
			}
			s.runWave(batch)
		}
	}
}

// coalesce implements online batching: requests already waiting (they
// arrived while the previous wave ran) are drained into this wave
// immediately; a positive BatchWindow additionally holds the wave open
// for late arrivals. Coalescing stops at MaxBatch queries.
func (s *Searcher) coalesce(first *request) []*request {
	batch := []*request{first}
	if s.cfg.BatchWindow < 0 {
		return batch
	}
	n := first.queries.Len()
	for n < s.cfg.MaxBatch {
		select {
		case r := <-s.submit:
			batch = append(batch, r)
			n += r.queries.Len()
			continue
		default:
		}
		break
	}
	if s.cfg.BatchWindow == 0 {
		return batch
	}
	timer := time.NewTimer(s.cfg.BatchWindow)
	defer timer.Stop()
	for n < s.cfg.MaxBatch {
		select {
		case r := <-s.submit:
			batch = append(batch, r)
			n += r.queries.Len()
		case <-timer.C:
			return batch
		case <-s.quit:
			for _, r := range batch {
				s.abandon(r)
			}
			return nil
		}
	}
	return batch
}

// abandon fails a request that will never be dispatched.
func (s *Searcher) abandon(r *request) {
	r.fail(ErrClosed)
	for i := 0; i < r.queries.Len(); i++ {
		r.merge.Skip(i)
	}
}

// waveEntry addresses one query of one request within a wave.
type waveEntry struct {
	req   *request
	local int // query index within the request
}

// runWave schedules and executes one combined wave, blocking until every
// result of every participating request was merged or skipped. Running
// waves sequentially keeps the platform idle at each scheduling decision.
func (s *Searcher) runWave(batch []*request) {
	s.waves.Add(1)
	if len(batch) > 1 {
		s.batchedWaves.Add(1)
	}
	var entries []waveEntry
	var lens []int
	var ids []string
	for _, r := range batch {
		for qi := range r.queries.Seqs {
			entries = append(entries, waveEntry{req: r, local: qi})
			lens = append(lens, r.queries.Seqs[qi].Len())
			ids = append(ids, r.queries.Seqs[qi].ID)
		}
	}

	task := func(gi int) master.PoolTask {
		e := entries[gi]
		return master.PoolTask{
			QueryIndex: e.local,
			Query:      &e.req.queries.Seqs[e.local],
			DB:         s.db,
			Canceled:   func() bool { return e.req.ctx.Err() != nil },
			Done: func(res master.QueryResult, ran bool) {
				if !ran {
					e.req.fail(e.req.ctx.Err())
					e.req.merge.Skip(e.local)
					return
				}
				e.req.merge.Add(e.local, res)
			},
		}
	}
	// feed hands one queue of wave-global indices to its destination in
	// order; on pool shutdown the remainder is skipped so merges still
	// complete and callers observe ErrClosed.
	feed := func(queue []int, send func(master.PoolTask) error) {
		for i, gi := range queue {
			if err := send(task(gi)); err != nil {
				for _, rest := range queue[i:] {
					entries[rest].req.fail(err)
					entries[rest].req.merge.Skip(entries[rest].local)
				}
				return
			}
		}
	}

	workers := s.pool.Workers()
	if s.cfg.Policy == master.PolicySelfScheduling {
		all := make([]int, len(entries))
		for i := range all {
			all[i] = i
		}
		go feed(all, s.pool.SubmitShared)
	} else {
		// Snapshot the pool's measured rates at wave start: every wave
		// is scheduled with the throughput the workers actually
		// delivered so far, and tasks completing in this wave refine
		// the rates the next wave sees.
		in := master.BuildInstance(s.dbResidues, lens, ids, s.pool.Rates())
		queues, schedule, err := master.Assign(s.cfg.Policy, in, workers)
		if err != nil {
			for _, r := range batch {
				r.fail(err)
				s.abandon(r)
			}
			return
		}
		for _, r := range batch {
			r.schedule = schedule
		}
		for wi, queue := range queues {
			if len(queue) == 0 {
				continue
			}
			wi := wi
			go feed(queue, func(t master.PoolTask) error { return s.pool.Submit(wi, t) })
		}
	}
	for _, r := range batch {
		<-r.merge.Done()
	}
}
