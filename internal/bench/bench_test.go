package bench

import (
	"strconv"
	"strings"
	"testing"
)

// The harness runs at paper scale through the timing model, so these
// tests verify the regenerated shapes against the paper's qualitative
// claims without real alignment work (except the functional experiment,
// which is scaled down hard).

func runner() *Runner {
	return NewRunner(Config{FunctionalScale: 40000, FunctionalWorkers: 4})
}

func TestWorkerSplit(t *testing.T) {
	cases := map[int][2]int{ // workers -> {gpus, cpus}
		2: {1, 1}, 3: {2, 1}, 4: {3, 1}, 5: {4, 1}, 6: {4, 2}, 7: {4, 3}, 8: {4, 4},
	}
	for w, want := range cases {
		g, c := WorkerSplit(w)
		if g != want[0] || c != want[1] {
			t.Fatalf("split(%d) = %d+%d, want %d+%d", w, g, c, want[0], want[1])
		}
	}
}

func TestTable1(t *testing.T) {
	tb := runner().Table1()
	if len(tb.Rows) != 5 {
		t.Fatalf("%d rows", len(tb.Rows))
	}
	if tb.Rows[0][0] != "SWIPE" || tb.Rows[4][0] != "SWDUAL" {
		t.Fatalf("unexpected application order: %v", tb.Rows)
	}
	if !strings.Contains(tb.Format(), "CUDASW++") {
		t.Fatal("formatting lost applications")
	}
}

func seriesByName(tb *Table, name string) Series {
	for _, s := range tb.Series {
		if strings.HasPrefix(s.Name, name) {
			return s
		}
	}
	return Series{}
}

func TestTable2ShapeMatchesPaper(t *testing.T) {
	tb := runner().Table2Figure7()
	// Figure 7's qualitative claims:
	// 1. Every application speeds up with more workers.
	for _, s := range tb.Series {
		for i := 1; i < len(s.Y); i++ {
			if s.Y[i] >= s.Y[i-1] {
				t.Fatalf("%s not decreasing at point %d: %v", s.Name, i, s.Y)
			}
		}
	}
	// 2. The application ordering on equal worker counts: SWPS3 slowest,
	// then STRIPED, SWIPE, CUDASW++.
	order := []string{"SWPS3", "STRIPED", "SWIPE", "CUDASW++"}
	for w := 0; w < 4; w++ {
		for i := 1; i < len(order); i++ {
			slow := seriesByName(tb, order[i-1]).Y[w]
			fast := seriesByName(tb, order[i]).Y[w]
			if fast >= slow {
				t.Fatalf("at %d workers, %s (%.1f) should beat %s (%.1f)", w+1, order[i], fast, order[i-1], slow)
			}
		}
	}
	// 3. SWDUAL with all 8 workers beats every baseline at 4 workers.
	swdual := seriesByName(tb, "SWDUAL")
	best8 := swdual.Y[len(swdual.Y)-1]
	for _, name := range order {
		if base := seriesByName(tb, name).Y[3]; best8 >= base {
			t.Fatalf("SWDUAL@8 (%.1f) should beat %s@4 (%.1f)", best8, name, base)
		}
	}
	// 4. SWDUAL rows stay within 35% of the paper's (their middle rows
	// are noisy; the end points are much closer).
	for _, row := range tb.Rows {
		if row[0] != "SWDUAL" {
			continue
		}
		delta, err := strconv.ParseFloat(strings.TrimPrefix(row[4], "+"), 64)
		if err != nil {
			t.Fatalf("bad delta %q", row[4])
		}
		if delta > 35 || delta < -35 {
			t.Fatalf("SWDUAL workers=%s deviates %.1f%% from paper", row[1], delta)
		}
	}
}

func TestTable3CountsMatchPaper(t *testing.T) {
	tb := runner().Table3()
	if len(tb.Rows) != 5 {
		t.Fatalf("%d rows", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		if row[1] != row[2] {
			t.Fatalf("%s: generated %s sequences, paper says %s", row[0], row[1], row[2])
		}
	}
}

func TestTable4ShapeMatchesPaper(t *testing.T) {
	tb := runner().Table4Figure8()
	// Time decreases with workers for every database.
	for _, s := range tb.Series {
		for i := 1; i < len(s.Y); i++ {
			if s.Y[i] >= s.Y[i-1] {
				t.Fatalf("%s not decreasing: %v", s.Name, s.Y)
			}
		}
	}
	// UniProt is the largest database: slowest at every worker count.
	uni := seriesByName(tb, "UniProt")
	for _, s := range tb.Series {
		if s.Name == "UniProt" {
			continue
		}
		for i := range s.Y {
			if s.Y[i] >= uni.Y[i] {
				t.Fatalf("%s slower than UniProt at %d workers", s.Name, i+2)
			}
		}
	}
	// Deltas vs paper within 35%.
	for _, row := range tb.Rows {
		delta, err := strconv.ParseFloat(strings.TrimPrefix(row[4], "+"), 64)
		if err != nil {
			t.Fatalf("bad delta %q", row[4])
		}
		if delta > 35 || delta < -35 {
			t.Fatalf("%s workers=%s deviates %.1f%%", row[0], row[1], delta)
		}
	}
}

func TestTable5ShapeMatchesPaper(t *testing.T) {
	tb := runner().Table5Figure9()
	het := seriesByName(tb, "Heterogeneous")
	hom := seriesByName(tb, "Homogeneous")
	// The heterogeneous set has ~3.7x the cell volume: it must be slower
	// at every worker count, by roughly that factor (paper: 3554/998).
	for i := range het.Y {
		ratio := het.Y[i] / hom.Y[i]
		if ratio < 2.5 || ratio > 5.5 {
			t.Fatalf("hetero/homo ratio %.2f at %d workers, want ~3.6", ratio, i+2)
		}
	}
	for _, row := range tb.Rows {
		delta, err := strconv.ParseFloat(strings.TrimPrefix(row[4], "+"), 64)
		if err != nil {
			t.Fatalf("bad delta %q", row[4])
		}
		if delta > 35 || delta < -35 {
			t.Fatalf("%s workers=%s deviates %.1f%%", row[0], row[1], delta)
		}
	}
}

func TestAblationIdleDualApproxIsLow(t *testing.T) {
	tb := runner().AblationIdle()
	var dualIdle, rrIdle float64
	for _, row := range tb.Rows {
		v, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			t.Fatalf("bad idle %q", row[2])
		}
		switch row[0] {
		case "dual-2approx":
			dualIdle = v
		case "equal-power":
			rrIdle = v
		}
	}
	// The paper's claim: dual approximation leaves the PEs almost idle-
	// free; the equal-power baseline wastes the GPUs massively.
	if dualIdle > 10 {
		t.Fatalf("dual-approx idle %.2f%%, want < 10%%", dualIdle)
	}
	if rrIdle < dualIdle {
		t.Fatalf("equal-power idle %.2f%% should exceed dual-approx %.2f%%", rrIdle, dualIdle)
	}
}

func TestAblationSchedulers(t *testing.T) {
	tb := runner().AblationSchedulers()
	if len(tb.Rows) != 3 {
		t.Fatalf("%d families", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		dual, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			t.Fatal(err)
		}
		if dual < 1.0 || dual > 2.0 {
			t.Fatalf("family %s: dual ratio %.3f outside [1,2]", row[0], dual)
		}
		equal, err := strconv.ParseFloat(row[6], 64)
		if err != nil {
			t.Fatal(err)
		}
		if equal < dual {
			t.Fatalf("family %s: equal-power (%.3f) beat dual (%.3f)", row[0], equal, dual)
		}
	}
}

func TestFunctionalValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("functional validation is the slow real-compute path")
	}
	tb, err := runner().FunctionalValidation()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tb.Rows {
		if row[0] == "score mismatches vs striped oracle" && row[1] != "0" {
			t.Fatalf("functional run mismatched scores: %s", row[1])
		}
	}
}

func TestByID(t *testing.T) {
	r := runner()
	for _, id := range []string{"table1", "table3", "figure7"} {
		if _, err := r.ByID(id); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
	}
	if _, err := r.ByID("nope"); err == nil {
		t.Fatal("unknown id must fail")
	}
}

func TestTableFormatting(t *testing.T) {
	tb := &Table{ID: "T", Title: "title", Columns: []string{"a", "bb"}}
	tb.AddRow("x", "y")
	tb.AddNote("note %d", 1)
	tb.Series = append(tb.Series, Series{Name: "s", X: []float64{1}, Y: []float64{2}})
	out := tb.Format()
	for _, want := range []string{"== T: title ==", "a", "bb", "note: note 1", "(1, 2.00)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("formatted table missing %q:\n%s", want, out)
		}
	}
}

func TestAblationKepler(t *testing.T) {
	tb := runner().AblationKepler()
	if len(tb.Rows) != 6 {
		t.Fatalf("%d rows, want 6", len(tb.Rows))
	}
	// The K20 model must beat the C2050 at equal worker counts.
	times := map[string]map[string]float64{}
	for _, row := range tb.Rows {
		if times[row[0]] == nil {
			times[row[0]] = map[string]float64{}
		}
		v, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			t.Fatal(err)
		}
		times[row[0]][row[1]] = v
	}
	for _, w := range []string{"2", "4", "8"} {
		if times["K20"][w] >= times["C2050"][w] {
			t.Fatalf("K20 (%.1f) not faster than C2050 (%.1f) at %s workers", times["K20"][w], times["C2050"][w], w)
		}
	}
}
