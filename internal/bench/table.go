// Package bench is the experiment harness that regenerates every table
// and figure of the paper's evaluation (§V): Table I (compared
// applications), Table II + Figure 7 (execution time vs workers on
// UniProt), Table III (databases), Table IV + Figure 8 (five databases),
// Table V + Figure 9 (homogeneous vs heterogeneous query sets), plus the
// ablations listed in DESIGN.md. Paper-scale rows come from the
// calibrated platform model driven by the real scheduler; functional
// validation rows run the real engines on scaled databases.
package bench

import (
	"fmt"
	"strings"
)

// Table is a formatted experiment result, optionally with figure series.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
	Series  []Series
}

// Series is one curve of a figure: X is the worker count (or other axis),
// Y the measured value.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddNote appends a footnote.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Format renders the table as aligned text.
func (t *Table) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[min(i, len(widths)-1)], c)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Columns)
	for i, w := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	if len(t.Series) > 0 {
		fmt.Fprintf(&sb, "-- figure series (x = workers) --\n")
		for _, s := range t.Series {
			fmt.Fprintf(&sb, "%s:", s.Name)
			for i := range s.X {
				fmt.Fprintf(&sb, " (%g, %.2f)", s.X[i], s.Y[i])
			}
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
