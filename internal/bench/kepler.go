package bench

import (
	"fmt"

	"swdual/internal/cudasw"
	"swdual/internal/gpusim"
	"swdual/internal/platform"
	"swdual/internal/sched"
	"swdual/internal/stats"
	"swdual/internal/sw"
	"swdual/internal/synth"
)

// AblationKepler answers the paper's implicit forward-looking question:
// how does the dual approximation's CPU/GPU split shift when the GPUs
// get a generation faster? It re-plans the UniProt search with the
// simulated Tesla K20 in place of the C2050 and reports, per worker
// count, the makespan, throughput, and how many of the 40 tasks the
// knapsack still leaves on the CPUs. As the GPU/CPU speed ratio grows,
// the scheduler should starve the CPUs — the crossover the dual
// approximation navigates automatically.
func (r *Runner) AblationKepler() *Table {
	t := &Table{
		ID:      "Ablation E-A3",
		Title:   "SWDUAL with next-generation GPUs (Tesla K20 model, UniProt)",
		Columns: []string{"Device", "Workers", "Makespan (s)", "GCUPS", "CPU tasks", "GPU tasks", "Idle %"},
	}
	queries := synth.StandardQueries()
	lengths := r.dbLengths(synth.UniProt)
	devices := []struct {
		name string
		cfg  gpusim.DeviceConfig
	}{
		{"C2050", gpusim.TeslaC2050()},
		{"K20", gpusim.TeslaK20()},
	}
	for _, dev := range devices {
		// Build a device-specific platform and database model.
		model := modelForDevice(dev.cfg, "uniprot-"+dev.name, lengths)
		for _, w := range []int{2, 4, 8} {
			gpus, cpus := WorkerSplit(w)
			p := platform.New(cpus, gpus)
			p.Device = dev.cfg
			in := instanceForDevice(p, dev.cfg, model, queries.Lengths)
			s, err := sched.DualApprox(in)
			if err != nil {
				panic(err)
			}
			cpuTasks := 0
			for _, pl := range s.Placements {
				if pl.Kind == sched.CPU {
					cpuTasks++
				}
			}
			cells := platform.Cells(model, queries.Lengths)
			t.AddRow(dev.name, fmt.Sprintf("%d", w),
				stats.FmtSeconds(s.Makespan),
				fmt.Sprintf("%.2f", stats.GCUPS(cells, s.Makespan)),
				fmt.Sprintf("%d", cpuTasks),
				fmt.Sprintf("%d", len(in.Tasks)-cpuTasks),
				fmt.Sprintf("%.2f", 100*s.IdleFraction()))
		}
	}
	t.AddNote("same calibration constants as Table II; only the device model changes")
	return t
}

// modelForDevice builds a DBModel using an explicit device configuration.
func modelForDevice(cfg gpusim.DeviceConfig, name string, lengths []int) *platform.DBModel {
	eng := cudasw.New(gpusim.New(cfg), sw.DefaultParams())
	tm := eng.Model(lengths)
	return &platform.DBModel{Name: name, Subjects: len(lengths), TotalResidues: tm.TotalResidues, GPU: tm}
}

// instanceForDevice mirrors Platform.Instance but with the device-bound
// model (Platform.New always models a C2050 internally).
func instanceForDevice(p *platform.Platform, cfg gpusim.DeviceConfig, model *platform.DBModel, queryLens []int) *sched.Instance {
	in := &sched.Instance{CPUs: p.CPUs, GPUs: p.GPUs}
	for i, ql := range queryLens {
		in.Tasks = append(in.Tasks, sched.Task{
			ID:      i,
			Label:   fmt.Sprintf("q%02d(len %d)", i, ql),
			CPUTime: p.CPUSeconds(model, ql) + p.Cal.MasterOverheadSec,
			GPUTime: model.GPU.Seconds(ql) + p.Cal.MasterOverheadSec,
		})
	}
	return in
}
