package bench

// The paper's published measurements, embedded so every regenerated table
// can print paper-vs-model deltas (EXPERIMENTS.md records them too).

// PaperTable2 holds Table II: execution times in seconds on UniProt with
// 40 queries, indexed by application name then worker count.
var PaperTable2 = map[string]map[int]float64{
	"SWPS3":    {1: 69208.2, 2: 36174.09, 3: 25206.563, 4: 18904.31},
	"STRIPED":  {1: 7190, 2: 3615.38, 3: 1369.33, 4: 1027.28},
	"SWIPE":    {1: 2367.24, 2: 1199.47, 3: 816.61, 4: 610.23},
	"CUDASW++": {1: 785.26, 2: 445.611, 3: 350.09, 4: 292.157},
	"SWDUAL":   {2: 543.28, 3: 472.84, 4: 271.98, 5: 266.69, 6: 239.04, 7: 183.12, 8: 142.98},
}

// PaperTable4Row is one database row of Table IV: time and GCUPS for 2, 4
// and 8 workers.
type PaperTable4Row struct {
	Time  map[int]float64
	GCUPS map[int]float64
}

// PaperTable4 holds Table IV (SWDUAL on the five databases).
var PaperTable4 = map[string]PaperTable4Row{
	"Ensembl Dog Proteins": {
		Time:  map[int]float64{2: 78.36, 4: 39.63, 8: 20.45},
		GCUPS: map[int]float64{2: 18.91, 4: 37.39, 8: 72.45},
	},
	"Ensembl Rat Proteins": {
		Time:  map[int]float64{2: 75.85, 4: 37.97, 8: 20.17},
		GCUPS: map[int]float64{2: 22.97, 4: 45.89, 8: 86.38},
	},
	"RefSeq Mouse Proteins": {
		Time:  map[int]float64{2: 84.40, 4: 46.25, 8: 23.59},
		GCUPS: map[int]float64{2: 18.99, 4: 34.66, 8: 67.95},
	},
	"RefSeq Human Proteins": {
		Time:  map[int]float64{2: 95.09, 4: 48.01, 8: 24.82},
		GCUPS: map[int]float64{2: 20.70, 4: 41.00, 8: 79.31},
	},
	"UniProt": {
		Time:  map[int]float64{2: 543.28, 4: 271.98, 8: 142.98},
		GCUPS: map[int]float64{2: 35.81, 4: 71.53, 8: 136.06},
	},
}

// PaperTable5 holds Table V (homogeneous vs heterogeneous query sets on
// UniProt).
var PaperTable5 = map[string]PaperTable4Row{
	"Heterogeneous": {
		Time:  map[int]float64{2: 3554.36, 4: 1785.73, 8: 908.45},
		GCUPS: map[int]float64{2: 37.55, 4: 74.74, 8: 146.92},
	},
	"Homogeneous": {
		Time:  map[int]float64{2: 998.27, 4: 484.74, 8: 249.69},
		GCUPS: map[int]float64{2: 36.3, 4: 74.76, 8: 145.14},
	},
}

// PaperApplication is one row of Table I.
type PaperApplication struct {
	Name    string
	Version string
	Command string
	// OurAnalogue names the module that stands in for the application in
	// this reproduction.
	OurAnalogue string
}

// PaperTable1 holds Table I with the reproduction mapping appended.
var PaperTable1 = []PaperApplication{
	{"SWIPE", "1.0", "./swipe -a $T -i $Q -d $D", "internal/swvector InterSeq (inter-sequence SWAR)"},
	{"STRIPED", "-", "./striped -T $T $Q $D", "internal/swvector Striped (Farrar SWAR)"},
	{"SWPS3", "20080605", "./swps3 -j $T $Q $D", "internal/sw Profiled (scalar, profile-driven)"},
	{"CUDASW++", "2.0", "./cudasw -use_gpus $T -query $Q -db $D", "internal/cudasw on internal/gpusim"},
	{"SWDUAL", "this work", "swdual -cpus $C -gpus $G -query $Q -db $D", "root package swdual (dual-approximation hybrid)"},
}

// WorkerSplit returns the paper's worker composition for SWDUAL: "the
// first four workers used were GPUs and the last four workers were CPUs";
// the runs start at two workers with one of each.
//
//	2 -> 1 GPU + 1 CPU,  3 -> 2 GPU + 1 CPU,  4 -> 3 GPU + 1 CPU,
//	5..8 -> 4 GPU + (w-4) CPU.
func WorkerSplit(workers int) (gpus, cpus int) {
	switch {
	case workers < 2:
		return workers, 0
	case workers == 2:
		return 1, 1
	case workers <= 4:
		return workers - 1, 1
	default:
		g := 4
		c := workers - 4
		return g, c
	}
}
