package bench

import (
	"fmt"
	"math/rand"

	"swdual/internal/master"
	"swdual/internal/platform"
	"swdual/internal/sched"
	"swdual/internal/stats"
	"swdual/internal/sw"
	"swdual/internal/swvector"
	"swdual/internal/synth"
)

// Config tunes the harness.
type Config struct {
	// FunctionalScale divides database and query sizes in the functional
	// (real compute) validation experiment. Default 2000.
	FunctionalScale int
	// FunctionalWorkers is the worker count of the functional run
	// (WorkerSplit applies). Default 4.
	FunctionalWorkers int
}

func (c *Config) defaults() {
	if c.FunctionalScale <= 0 {
		c.FunctionalScale = 2000
	}
	if c.FunctionalWorkers <= 0 {
		c.FunctionalWorkers = 4
	}
}

// Runner executes experiments, caching database models between them.
type Runner struct {
	cfg     Config
	lengths map[string][]int
	models  map[string]*platform.DBModel
}

// NewRunner builds a Runner.
func NewRunner(cfg Config) *Runner {
	cfg.defaults()
	return &Runner{cfg: cfg, lengths: map[string][]int{}, models: map[string]*platform.DBModel{}}
}

// ExperimentIDs lists the regenerable artifacts in paper order.
var ExperimentIDs = []string{"table1", "table2", "table3", "table4", "table5", "idle", "sched", "kepler", "functional"}

// ByID runs one experiment by its identifier.
func (r *Runner) ByID(id string) (*Table, error) {
	switch id {
	case "table1":
		return r.Table1(), nil
	case "table2", "figure7":
		return r.Table2Figure7(), nil
	case "table3":
		return r.Table3(), nil
	case "table4", "figure8":
		return r.Table4Figure8(), nil
	case "table5", "figure9":
		return r.Table5Figure9(), nil
	case "idle":
		return r.AblationIdle(), nil
	case "sched":
		return r.AblationSchedulers(), nil
	case "kepler":
		return r.AblationKepler(), nil
	case "functional":
		return r.FunctionalValidation()
	}
	return nil, fmt.Errorf("bench: unknown experiment %q (have %v)", id, ExperimentIDs)
}

func (r *Runner) dbLengths(spec synth.DBSpec) []int {
	if l, ok := r.lengths[spec.Name]; ok {
		return l
	}
	l := spec.GenerateLengths()
	r.lengths[spec.Name] = l
	return l
}

func (r *Runner) dbModel(spec synth.DBSpec) *platform.DBModel {
	if m, ok := r.models[spec.Name]; ok {
		return m
	}
	// The model depends only on the device configuration, not the
	// platform shape, so any shape can build it.
	p := platform.New(1, 1)
	m := p.ModelDB(spec.Name, r.dbLengths(spec))
	r.models[spec.Name] = m
	return m
}

// swdualRun schedules the query set on the paper's worker composition and
// returns the modeled makespan and the schedule.
func (r *Runner) swdualRun(spec synth.DBSpec, queryLens []int, workers int) (float64, *sched.Schedule) {
	gpus, cpus := WorkerSplit(workers)
	p := platform.New(cpus, gpus)
	in := p.Instance(r.dbModel(spec), queryLens)
	s, err := sched.DualApprox(in)
	if err != nil {
		panic(fmt.Sprintf("bench: scheduling failed: %v", err))
	}
	return s.Makespan, s
}

// Table1 regenerates Table I: the compared applications, extended with
// the module standing in for each in this reproduction.
func (r *Runner) Table1() *Table {
	t := &Table{
		ID:      "Table I",
		Title:   "Applications included in the comparison",
		Columns: []string{"Application", "Version", "Command line", "Reproduction analogue"},
	}
	for _, app := range PaperTable1 {
		t.AddRow(app.Name, app.Version, app.Command, app.OurAnalogue)
	}
	return t
}

// Table2Figure7 regenerates Table II and Figure 7: execution time vs
// number of workers on UniProt for the four baseline applications and
// SWDUAL. Baseline single-worker rates are fitted to the paper's first
// column (the tools and testbed are not reproducible); their multi-worker
// rows are LPT schedules at those rates (plus the fitted host-contention
// factor for multi-GPU CUDASW++). SWDUAL rows are genuine outputs of the
// dual-approximation scheduler over the calibrated platform model.
func (r *Runner) Table2Figure7() *Table {
	t := &Table{
		ID:      "Table II / Figure 7",
		Title:   "Execution times (s) on UniProt, 40 queries",
		Columns: []string{"Application", "Workers", "Paper (s)", "Model (s)", "Delta %"},
	}
	spec := synth.UniProt
	queries := synth.StandardQueries()
	model := r.dbModel(spec)
	cells := platform.Cells(model, queries.Lengths)

	addRow := func(app string, w int, modelSec float64) {
		paperSec := PaperTable2[app][w]
		t.AddRow(app, fmt.Sprintf("%d", w),
			stats.FmtSeconds(paperSec), stats.FmtSeconds(modelSec),
			fmt.Sprintf("%+.1f", stats.PctDelta(modelSec, paperSec)))
	}

	// CPU-only baselines at fitted rates.
	for _, app := range []string{"SWPS3", "STRIPED", "SWIPE"} {
		rate := float64(cells) / PaperTable2[app][1] // cells/s so that w=1 matches
		series := Series{Name: app + " (CPU)"}
		for w := 1; w <= 4; w++ {
			sec := cpuPoolMakespan(queries.Lengths, model, rate, w)
			addRow(app, w, sec)
			series.X = append(series.X, float64(w))
			series.Y = append(series.Y, sec)
		}
		t.Series = append(t.Series, series)
	}
	// CUDASW++ baseline from the GPU simulator plus host contention.
	{
		p := platform.New(0, 4)
		series := Series{Name: "CUDASW++ (GPU)"}
		for w := 1; w <= 4; w++ {
			in := &sched.Instance{CPUs: 0, GPUs: w}
			for i, ql := range queries.Lengths {
				in.Tasks = append(in.Tasks, sched.Task{ID: i, GPUTime: p.GPUSecondsContended(model, ql, w)})
			}
			s, err := sched.GPUOnly(in)
			if err != nil {
				panic(err)
			}
			addRow("CUDASW++", w, s.Makespan)
			series.X = append(series.X, float64(w))
			series.Y = append(series.Y, s.Makespan)
		}
		t.Series = append(t.Series, series)
	}
	// SWDUAL: the real scheduler over the calibrated platform.
	{
		series := Series{Name: "SWDUAL (Mixed)"}
		for w := 2; w <= 8; w++ {
			sec, _ := r.swdualRun(spec, queries.Lengths, w)
			addRow("SWDUAL", w, sec)
			series.X = append(series.X, float64(w))
			series.Y = append(series.Y, sec)
		}
		t.Series = append(t.Series, series)
	}
	t.AddNote("baseline w=1 rows are fitted by construction; multi-worker baseline rows and all SWDUAL rows are model outputs")
	t.AddNote("total cells = %.4g (paper-implied 1.9455e13)", float64(cells))
	return t
}

// cpuPoolMakespan LPT-schedules the 40 tasks over w identical CPU workers
// at the given rate (cells/s).
func cpuPoolMakespan(queryLens []int, db *platform.DBModel, rate float64, w int) float64 {
	in := &sched.Instance{CPUs: w, GPUs: 0}
	for i, ql := range queryLens {
		cells := float64(ql) * float64(db.TotalResidues)
		in.Tasks = append(in.Tasks, sched.Task{ID: i, CPUTime: cells / rate})
	}
	s, err := sched.CPUOnly(in)
	if err != nil {
		panic(err)
	}
	return s.Makespan
}

// Table3 regenerates Table III: the genomic databases used in the tests.
func (r *Runner) Table3() *Table {
	t := &Table{
		ID:      "Table III",
		Title:   "Genomic databases used on the tests (synthetic presets)",
		Columns: []string{"Database", "Number of seqs", "Paper seqs", "Total residues", "Mean len", "Smallest query", "Longest query"},
	}
	queries := synth.StandardQueries()
	qmin, qmax := queries.Lengths[0], queries.Lengths[len(queries.Lengths)-1]
	for _, spec := range synth.Databases {
		lengths := r.dbLengths(spec)
		var tot int64
		for _, l := range lengths {
			tot += int64(l)
		}
		t.AddRow(spec.Name,
			fmt.Sprintf("%d", len(lengths)),
			fmt.Sprintf("%d", spec.Count),
			fmt.Sprintf("%d", tot),
			fmt.Sprintf("%.0f", float64(tot)/float64(len(lengths))),
			fmt.Sprintf("%d", qmin),
			fmt.Sprintf("%d", qmax))
	}
	t.AddNote("mean lengths are back-derived from Table IV (cells = GCUPS x time); see DESIGN.md substitutions")
	return t
}

// Table4Figure8 regenerates Table IV and Figure 8: SWDUAL on the five
// databases with 2, 4 and 8 workers (figure series cover 2..8).
func (r *Runner) Table4Figure8() *Table {
	t := &Table{
		ID:      "Table IV / Figure 8",
		Title:   "SWDUAL on GPUs and CPUs: time and GCUPS per database",
		Columns: []string{"Database", "Workers", "Paper time", "Model time", "Delta %", "Paper GCUPS", "Model GCUPS"},
	}
	queries := synth.StandardQueries()
	for _, spec := range synth.Databases {
		model := r.dbModel(spec)
		cells := platform.Cells(model, queries.Lengths)
		series := Series{Name: spec.Name}
		for w := 2; w <= 8; w++ {
			sec, _ := r.swdualRun(spec, queries.Lengths, w)
			series.X = append(series.X, float64(w))
			series.Y = append(series.Y, sec)
			if w == 2 || w == 4 || w == 8 {
				paper := PaperTable4[spec.Name]
				t.AddRow(spec.Name, fmt.Sprintf("%d", w),
					stats.FmtSeconds(paper.Time[w]), stats.FmtSeconds(sec),
					fmt.Sprintf("%+.1f", stats.PctDelta(sec, paper.Time[w])),
					fmt.Sprintf("%.2f", paper.GCUPS[w]),
					fmt.Sprintf("%.2f", stats.GCUPS(cells, sec)))
			}
		}
		t.Series = append(t.Series, series)
	}
	return t
}

// Table5Figure9 regenerates Table V and Figure 9: the homogeneous
// (4500-5000) and heterogeneous (4-35213) query sets against UniProt.
func (r *Runner) Table5Figure9() *Table {
	t := &Table{
		ID:      "Table V / Figure 9",
		Title:   "Homogeneous vs heterogeneous query sets on UniProt",
		Columns: []string{"Set", "Workers", "Paper time", "Model time", "Delta %", "Paper GCUPS", "Model GCUPS"},
	}
	spec := synth.UniProt
	model := r.dbModel(spec)
	sets := []struct {
		name    string
		queries synth.QuerySpec
	}{
		{"Heterogeneous", synth.HeterogeneousQueries()},
		{"Homogeneous", synth.HomogeneousQueries()},
	}
	for _, set := range sets {
		cells := platform.Cells(model, set.queries.Lengths)
		series := Series{Name: set.name + " set"}
		for w := 2; w <= 8; w++ {
			sec, _ := r.swdualRun(spec, set.queries.Lengths, w)
			series.X = append(series.X, float64(w))
			series.Y = append(series.Y, sec)
			if w == 2 || w == 4 || w == 8 {
				paper := PaperTable5[set.name]
				t.AddRow(set.name, fmt.Sprintf("%d", w),
					stats.FmtSeconds(paper.Time[w]), stats.FmtSeconds(sec),
					fmt.Sprintf("%+.1f", stats.PctDelta(sec, paper.Time[w])),
					fmt.Sprintf("%.2f", paper.GCUPS[w]),
					fmt.Sprintf("%.2f", stats.GCUPS(cells, sec)))
			}
		}
		t.Series = append(t.Series, series)
	}
	t.AddNote("heterogeneous query lengths span 4..35213 (UniProt extremes); homogeneous span 4500..5000")
	return t
}

// AblationIdle supports the paper's §V.A claim that SWDUAL finishes "with
// almost no idle time": idle fraction per allocation policy on UniProt
// with 4 GPUs + 4 CPUs.
func (r *Runner) AblationIdle() *Table {
	t := &Table{
		ID:      "Ablation E-A1",
		Title:   "Idle time per allocation policy (UniProt, 4 GPU + 4 CPU)",
		Columns: []string{"Policy", "Makespan (s)", "Idle fraction %", "vs dual-approx"},
	}
	spec := synth.UniProt
	queries := synth.StandardQueries()
	p := platform.New(4, 4)
	in := p.Instance(r.dbModel(spec), queries.Lengths)
	names := []string{"dual-2approx", "dual-3/2-dp", "self-scheduling", "eft", "proportional-power", "equal-power"}
	base := 0.0
	for _, name := range names {
		s, err := sched.Algorithms[name](in)
		if err != nil {
			panic(err)
		}
		if name == "dual-2approx" {
			base = s.Makespan
		}
		t.AddRow(name, stats.FmtSeconds(s.Makespan),
			fmt.Sprintf("%.2f", 100*s.IdleFraction()),
			fmt.Sprintf("%+.1f%%", stats.PctDelta(s.Makespan, base)))
	}
	return t
}

// AblationSchedulers measures makespan against the certified lower bound
// across random instance families, for every scheduling algorithm.
func (r *Runner) AblationSchedulers() *Table {
	t := &Table{
		ID:      "Ablation E-A2",
		Title:   "Makespan / lower bound by algorithm and instance family (mean of 20)",
		Columns: []string{"Family", "dual-2approx", "dual-3/2-dp", "self-scheduling", "eft", "proportional-power", "equal-power"},
	}
	families := []struct {
		name string
		gen  func(rng *rand.Rand) *sched.Instance
	}{
		{"uniform speedup 3x", func(rng *rand.Rand) *sched.Instance {
			return genInstance(rng, 40, 4, 4, func(cpu float64) float64 { return cpu / 3 })
		}},
		{"mixed speedups 0.5-8x", func(rng *rand.Rand) *sched.Instance {
			return genInstance(rng, 40, 4, 4, func(cpu float64) float64 { return cpu / (0.5 + rng.Float64()*7.5) })
		}},
		{"bimodal long/short", func(rng *rand.Rand) *sched.Instance {
			in := &sched.Instance{CPUs: 4, GPUs: 4}
			for i := 0; i < 40; i++ {
				cpu := 1 + rng.Float64()
				if i%5 == 0 {
					cpu *= 40
				}
				in.Tasks = append(in.Tasks, sched.Task{ID: i, CPUTime: cpu, GPUTime: cpu / 3})
			}
			return in
		}},
	}
	algos := []string{"dual-2approx", "dual-3/2-dp", "self-scheduling", "eft", "proportional-power", "equal-power"}
	for _, fam := range families {
		row := []string{fam.name}
		ratios := map[string][]float64{}
		rng := rand.New(rand.NewSource(42))
		for trial := 0; trial < 20; trial++ {
			in := fam.gen(rng)
			lb := sched.LowerBound(in)
			for _, a := range algos {
				s, err := sched.Algorithms[a](in)
				if err != nil {
					panic(err)
				}
				ratios[a] = append(ratios[a], s.Makespan/lb)
			}
		}
		for _, a := range algos {
			row = append(row, fmt.Sprintf("%.3f", stats.Mean(ratios[a])))
		}
		t.AddRow(row...)
	}
	return t
}

func genInstance(rng *rand.Rand, n, m, k int, gpuOf func(cpu float64) float64) *sched.Instance {
	in := &sched.Instance{CPUs: m, GPUs: k}
	for i := 0; i < n; i++ {
		cpu := 0.5 + rng.Float64()*20
		in.Tasks = append(in.Tasks, sched.Task{ID: i, CPUTime: cpu, GPUTime: gpuOf(cpu)})
	}
	return in
}

// FunctionalValidation runs the whole pipeline with real engines on a
// scaled UniProt: a hybrid master-slave search whose scores must agree
// with the striped oracle-checked engine, reporting native Go GCUPS.
func (r *Runner) FunctionalValidation() (*Table, error) {
	t := &Table{
		ID:      "Functional validation",
		Title:   fmt.Sprintf("Real-compute hybrid run (UniProt/%d, queries/%d)", r.cfg.FunctionalScale, r.cfg.FunctionalScale/40+1),
		Columns: []string{"Check", "Value"},
	}
	qscale := r.cfg.FunctionalScale/40 + 1
	dbSpec := synth.UniProt.Scaled(r.cfg.FunctionalScale)
	db := dbSpec.Generate()
	queries := synth.StandardQueries().Scaled(qscale).Generate()

	params := sw.DefaultParams()
	gpus, cpus := WorkerSplit(r.cfg.FunctionalWorkers)
	workers := master.BuildWorkers(params, cpus, gpus, 10)
	m, err := master.New(db, queries, workers, master.Config{Policy: master.PolicyDualApprox, TopK: 10})
	if err != nil {
		return nil, err
	}
	rep, err := m.Run()
	if err != nil {
		return nil, err
	}
	// Agreement against the independently verified striped engine.
	ref := swvector.NewStriped(params)
	mismatches := 0
	for qi := range queries.Seqs {
		want := master.TopHits(db, ref.Scores(queries.Seqs[qi].Residues, db), 10)
		got := rep.Results[qi].Hits
		if len(got) != len(want) {
			mismatches++
			continue
		}
		for i := range want {
			if got[i].Score != want[i].Score || got[i].SeqIndex != want[i].SeqIndex {
				mismatches++
				break
			}
		}
	}
	t.AddRow("database sequences", fmt.Sprintf("%d", db.Len()))
	t.AddRow("queries", fmt.Sprintf("%d", queries.Len()))
	t.AddRow("workers (gpu+cpu)", fmt.Sprintf("%d+%d", gpus, cpus))
	t.AddRow("cells computed", fmt.Sprintf("%d", rep.Cells))
	t.AddRow("wall time", rep.Wall.String())
	t.AddRow("native GCUPS", fmt.Sprintf("%.3f", rep.GCUPS))
	t.AddRow("score mismatches vs striped oracle", fmt.Sprintf("%d", mismatches))
	t.AddRow("scheduled makespan (modeled s)", stats.FmtSeconds(rep.SimMakespan))
	t.AddRow("scheduled idle fraction", fmt.Sprintf("%.2f%%", 100*rep.IdleFraction))
	if mismatches > 0 {
		return t, fmt.Errorf("bench: functional validation found %d mismatching queries", mismatches)
	}
	return t, nil
}
