package bench

import (
	"swdual/internal/cudasw"
	"swdual/internal/gpusim"
	"swdual/internal/sw"
)

// newGPUEngine builds a CUDASW++-style engine on a fresh simulated Tesla
// C2050, the per-worker device structure of the paper's platform.
func newGPUEngine(params sw.Params) *cudasw.Engine {
	return cudasw.New(gpusim.New(gpusim.TeslaC2050()), params)
}
