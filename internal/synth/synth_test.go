package synth

import (
	"math"
	"testing"

	"swdual/internal/alphabet"
)

func TestPresetsMatchTableIII(t *testing.T) {
	wantCounts := map[string]int{
		"Ensembl Dog Proteins":  25160,
		"Ensembl Rat Proteins":  32971,
		"RefSeq Human Proteins": 34705,
		"RefSeq Mouse Proteins": 29437,
		"UniProt":               537505,
	}
	if len(Databases) != 5 {
		t.Fatalf("%d presets, want 5", len(Databases))
	}
	for _, d := range Databases {
		if d.Count != wantCounts[d.Name] {
			t.Fatalf("%s count %d, want %d", d.Name, d.Count, wantCounts[d.Name])
		}
	}
}

func TestGenerateLengthsMatchGenerate(t *testing.T) {
	spec := EnsemblDog.Scaled(100)
	lengths := spec.GenerateLengths()
	set := spec.Generate()
	if len(lengths) != set.Len() {
		t.Fatalf("lengths %d vs set %d", len(lengths), set.Len())
	}
	for i, l := range lengths {
		if set.Seqs[i].Len() != l {
			t.Fatalf("sequence %d length %d, want %d", i, set.Seqs[i].Len(), l)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := UniProt.Scaled(5000).Generate()
	b := UniProt.Scaled(5000).Generate()
	if a.Len() != b.Len() {
		t.Fatal("nondeterministic count")
	}
	for i := range a.Seqs {
		if string(a.Seqs[i].Residues) != string(b.Seqs[i].Residues) {
			t.Fatalf("nondeterministic residues at %d", i)
		}
	}
}

func TestMeanLengthNearTarget(t *testing.T) {
	spec := UniProt.Scaled(50) // ~10k sequences: the mean should converge
	lengths := spec.GenerateLengths()
	total := 0
	for _, l := range lengths {
		total += l
		if l < spec.MinLen || l > spec.MaxLen {
			t.Fatalf("length %d outside [%d,%d]", l, spec.MinLen, spec.MaxLen)
		}
	}
	mean := float64(total) / float64(len(lengths))
	if math.Abs(mean-spec.MeanLen)/spec.MeanLen > 0.10 {
		t.Fatalf("mean length %.1f, want within 10%% of %.1f", mean, spec.MeanLen)
	}
}

func TestResiduesWithinCore(t *testing.T) {
	set := RandomSet(alphabet.Protein, 10, 1, 100, 7)
	for _, s := range set.Seqs {
		for _, r := range s.Residues {
			if int(r) >= alphabet.Protein.Core() {
				t.Fatalf("residue %d outside core", r)
			}
		}
	}
}

func TestQuerySets(t *testing.T) {
	std := StandardQueries()
	if len(std.Lengths) != 40 {
		t.Fatalf("standard set %d queries, want 40", len(std.Lengths))
	}
	if std.Lengths[0] != 100 || std.Lengths[39] != 5000 {
		t.Fatalf("standard range [%d,%d], want [100,5000]", std.Lengths[0], std.Lengths[39])
	}
	hom := HomogeneousQueries()
	if hom.Lengths[0] != 4500 || hom.Lengths[39] != 5000 {
		t.Fatalf("homogeneous range [%d,%d]", hom.Lengths[0], hom.Lengths[39])
	}
	het := HeterogeneousQueries()
	if het.Lengths[0] != 4 || het.Lengths[39] != 35213 {
		t.Fatalf("heterogeneous range [%d,%d]", het.Lengths[0], het.Lengths[39])
	}
	// Total volumes should match the paper-implied sums within 5%.
	if tl := std.TotalLen(); math.Abs(float64(tl)-100500) > 0.05*100500 {
		t.Fatalf("standard total %d, want ~100500", tl)
	}
	if tl := het.TotalLen(); math.Abs(float64(tl)-690000) > 0.05*690000 {
		t.Fatalf("heterogeneous total %d, want ~690000", tl)
	}
	if tl := hom.TotalLen(); math.Abs(float64(tl)-187000) > 0.05*187000 {
		t.Fatalf("homogeneous total %d, want ~187000", tl)
	}
}

func TestQueryGenerate(t *testing.T) {
	qs := StandardQueries().Scaled(10)
	set := qs.Generate()
	if set.Len() != 40 {
		t.Fatalf("%d queries", set.Len())
	}
	for i, l := range qs.Lengths {
		if set.Seqs[i].Len() != l {
			t.Fatalf("query %d length %d, want %d", i, set.Seqs[i].Len(), l)
		}
	}
}

func TestScaled(t *testing.T) {
	spec := UniProt.Scaled(1000)
	if spec.Count != 538 {
		t.Fatalf("scaled count %d, want 538 (ceil)", spec.Count)
	}
	if UniProt.Scaled(1).Count != UniProt.Count {
		t.Fatal("scale 1 must be identity")
	}
	qs := StandardQueries().Scaled(50)
	for _, l := range qs.Lengths {
		if l < 4 {
			t.Fatalf("scaled query length %d below floor", l)
		}
	}
}

func TestDatabaseByName(t *testing.T) {
	if _, err := DatabaseByName("UniProt"); err != nil {
		t.Fatal(err)
	}
	if _, err := DatabaseByName("nope"); err == nil {
		t.Fatal("expected error")
	}
}
