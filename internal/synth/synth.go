// Package synth generates deterministic synthetic protein databases and
// query sets that stand in for the paper's five genomic databases
// (Table III) and its three query sets.
//
// The real databases (UniProt, Ensembl Dog/Rat, RefSeq Human/Mouse,
// 2012-2014 snapshots) are no longer retrievable at the versions used in
// the paper. The experiments, however, depend only on the number of
// sequences and the length distribution — these set the dynamic-programming
// cell volume of every task — so seeded generators with the published
// sequence counts and mean lengths (back-derived from Table IV via
// cells = GCUPS x time) preserve the workload exactly. See DESIGN.md §2.
package synth

import (
	"fmt"
	"math"
	"math/rand"

	"swdual/internal/alphabet"
	"swdual/internal/seq"
)

// Robinson-Robinson amino-acid background frequencies (per mille), in the
// ARNDCQEGHILKMFPSTWYV order of alphabet.Protein's core.
var proteinFreqs = [20]float64{
	78.05, 51.29, 44.87, 53.64, 19.25, 42.64, 62.95, 73.77, 21.99, 51.42,
	90.19, 57.44, 22.43, 38.56, 52.03, 71.29, 58.41, 13.30, 32.16, 64.41,
}

// residueSampler draws residue codes from a cumulative frequency table via
// a 4096-entry lookup grid (constant-time sampling).
type residueSampler struct {
	grid [4096]byte
}

func newResidueSampler(a *alphabet.Alphabet) *residueSampler {
	s := &residueSampler{}
	n := a.Core()
	cum := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		f := 1.0
		if a.Name() == "protein" && i < len(proteinFreqs) {
			f = proteinFreqs[i]
		}
		total += f
		cum[i] = total
	}
	j := 0
	for i := range s.grid {
		x := (float64(i) + 0.5) / float64(len(s.grid)) * total
		for j < n-1 && cum[j] < x {
			j++
		}
		s.grid[i] = byte(j)
	}
	return s
}

func (s *residueSampler) draw(rng *rand.Rand) byte {
	return s.grid[rng.Intn(len(s.grid))]
}

// DBSpec describes a synthetic database preset.
type DBSpec struct {
	Name    string
	Count   int     // number of sequences at scale 1
	MeanLen float64 // target mean sequence length
	Sigma   float64 // lognormal shape parameter
	MinLen  int
	MaxLen  int
	Seed    int64
}

// The five database presets of Table III. Mean lengths are derived from
// Table IV: total DP cells = GCUPS x time, divided by the standard query
// set's total length (~102,000 residues), divided by the sequence count.
var (
	EnsemblDog = DBSpec{Name: "Ensembl Dog Proteins", Count: 25160, MeanLen: 586, Sigma: 0.55, MinLen: 20, MaxLen: 12000, Seed: 101}
	EnsemblRat = DBSpec{Name: "Ensembl Rat Proteins", Count: 32971, MeanLen: 526, Sigma: 0.55, MinLen: 20, MaxLen: 12000, Seed: 102}
	RefSeqHum  = DBSpec{Name: "RefSeq Human Proteins", Count: 34705, MeanLen: 564, Sigma: 0.55, MinLen: 20, MaxLen: 12000, Seed: 103}
	RefSeqMou  = DBSpec{Name: "RefSeq Mouse Proteins", Count: 29437, MeanLen: 542, Sigma: 0.55, MinLen: 20, MaxLen: 12000, Seed: 104}
	UniProt    = DBSpec{Name: "UniProt", Count: 537505, MeanLen: 360, Sigma: 0.60, MinLen: 4, MaxLen: 35213, Seed: 105}
)

// Databases lists the presets in the paper's Table III/IV order.
var Databases = []DBSpec{EnsemblDog, EnsemblRat, RefSeqHum, RefSeqMou, UniProt}

// DatabaseByName returns the preset with the given name.
func DatabaseByName(name string) (DBSpec, error) {
	for _, d := range Databases {
		if d.Name == name {
			return d, nil
		}
	}
	return DBSpec{}, fmt.Errorf("synth: unknown database preset %q", name)
}

// Scaled returns a copy with the sequence count divided by scale (>=1).
// Length statistics are unchanged, so per-sequence behaviour is identical
// and aggregate cell volume shrinks linearly.
func (d DBSpec) Scaled(scale int) DBSpec {
	if scale <= 1 {
		return d
	}
	d.Count = (d.Count + scale - 1) / scale
	d.Name = fmt.Sprintf("%s (1/%d)", d.Name, scale)
	return d
}

// sampleLen draws a lognormal length with the spec's target mean, clipped
// to [MinLen, MaxLen].
func (d DBSpec) sampleLen(rng *rand.Rand) int {
	mu := math.Log(d.MeanLen) - d.Sigma*d.Sigma/2
	l := int(math.Exp(mu + d.Sigma*rng.NormFloat64()))
	if l < d.MinLen {
		l = d.MinLen
	}
	if l > d.MaxLen {
		l = d.MaxLen
	}
	return l
}

// GenerateLengths draws only the sequence lengths of the database. The
// length stream is independent of residue generation, so paper-scale
// timing models can size the workload without materializing residues;
// Generate produces sequences with exactly these lengths.
func (d DBSpec) GenerateLengths() []int {
	rng := rand.New(rand.NewSource(d.Seed))
	out := make([]int, d.Count)
	for i := range out {
		out[i] = d.sampleLen(rng)
	}
	return out
}

// Generate materializes the database as an encoded sequence set.
func (d DBSpec) Generate() *seq.Set {
	lengths := d.GenerateLengths()
	rng := rand.New(rand.NewSource(d.Seed ^ 0x5DEECE66D))
	sampler := newResidueSampler(alphabet.Protein)
	set := seq.NewSet(alphabet.Protein)
	set.Seqs = make([]seq.Sequence, 0, d.Count)
	for i, l := range lengths {
		r := make([]byte, l)
		for j := range r {
			r[j] = sampler.draw(rng)
		}
		set.AddEncoded(fmt.Sprintf("%s|%06d", shortName(d.Name), i), "", r)
	}
	return set
}

func shortName(name string) string {
	out := make([]byte, 0, 8)
	for i := 0; i < len(name) && len(out) < 8; i++ {
		c := name[i]
		if c >= 'A' && c <= 'Z' || c >= 'a' && c <= 'z' || c >= '0' && c <= '9' {
			out = append(out, c)
		}
	}
	return string(out)
}

// QuerySpec describes a synthetic query set by its exact sequence lengths.
type QuerySpec struct {
	Name    string
	Lengths []int
	Seed    int64
}

// StandardQueries reproduces the paper's primary query set: 40 sequences
// with lengths from 100 to 5,000 amino acids. Lengths are linearly spaced,
// which matches the total query volume (~102,000 residues) implied by
// Table IV's GCUPS figures.
func StandardQueries() QuerySpec {
	return QuerySpec{Name: "standard-40", Lengths: linspace(100, 5000, 40), Seed: 201}
}

// HomogeneousQueries reproduces Table V's homogeneous set: 40 sequences
// with lengths between 4,500 and 5,000.
func HomogeneousQueries() QuerySpec {
	return QuerySpec{Name: "homogeneous-40", Lengths: linspace(4500, 5000, 40), Seed: 202}
}

// HeterogeneousQueries reproduces Table V's heterogeneous set: 40 sequences
// with lengths between 4 (the smallest UniProt sequence) and 35,213 (the
// largest).
func HeterogeneousQueries() QuerySpec {
	return QuerySpec{Name: "heterogeneous-40", Lengths: linspace(4, 35213, 40), Seed: 203}
}

// Scaled divides every query length by scale, with a floor of 4 residues.
func (q QuerySpec) Scaled(scale int) QuerySpec {
	if scale <= 1 {
		return q
	}
	out := QuerySpec{Name: fmt.Sprintf("%s (1/%d)", q.Name, scale), Seed: q.Seed}
	out.Lengths = make([]int, len(q.Lengths))
	for i, l := range q.Lengths {
		s := l / scale
		if s < 4 {
			s = 4
		}
		out.Lengths[i] = s
	}
	return out
}

// TotalLen returns the summed query length.
func (q QuerySpec) TotalLen() int {
	t := 0
	for _, l := range q.Lengths {
		t += l
	}
	return t
}

// Generate materializes the query set.
func (q QuerySpec) Generate() *seq.Set {
	rng := rand.New(rand.NewSource(q.Seed))
	sampler := newResidueSampler(alphabet.Protein)
	set := seq.NewSet(alphabet.Protein)
	for i, l := range q.Lengths {
		r := make([]byte, l)
		for j := range r {
			r[j] = sampler.draw(rng)
		}
		set.AddEncoded(fmt.Sprintf("query|%02d|len%d", i, l), "", r)
	}
	return set
}

// linspace returns n integer points spread linearly over [lo, hi].
func linspace(lo, hi, n int) []int {
	out := make([]int, n)
	if n == 1 {
		out[0] = lo
		return out
	}
	for i := 0; i < n; i++ {
		out[i] = lo + (hi-lo)*i/(n-1)
	}
	return out
}

// RandomSet generates count random sequences of length within [minLen,
// maxLen] over the alphabet — a convenience for tests and fuzzing.
func RandomSet(a *alphabet.Alphabet, count, minLen, maxLen int, seed int64) *seq.Set {
	rng := rand.New(rand.NewSource(seed))
	sampler := newResidueSampler(a)
	set := seq.NewSet(a)
	for i := 0; i < count; i++ {
		l := minLen
		if maxLen > minLen {
			l += rng.Intn(maxLen - minLen + 1)
		}
		r := make([]byte, l)
		for j := range r {
			r[j] = sampler.draw(rng)
		}
		set.AddEncoded(fmt.Sprintf("rnd|%04d", i), "", r)
	}
	return set
}
