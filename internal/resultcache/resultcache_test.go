package resultcache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"swdual/internal/alphabet"
	"swdual/internal/master"
	"swdual/internal/seq"
)

// set builds a query set from encoded residue strings (codes 0..19).
func set(t *testing.T, residues ...[]byte) *seq.Set {
	t.Helper()
	s := seq.NewSet(alphabet.Protein)
	for i, r := range residues {
		s.AddEncoded(fmt.Sprintf("q%d", i), "", r)
	}
	return s
}

func hitsFor(n int) [][]master.Hit {
	out := make([][]master.Hit, n)
	for i := range out {
		out[i] = []master.Hit{{SeqIndex: i, SeqID: fmt.Sprintf("s%d", i), Score: 100 - i}}
	}
	return out
}

// TestKeyDistinguishes proves the fingerprint separates every dimension
// of the cache key — database, TopK, query content, query count — and
// that length prefixing prevents concatenation aliasing: the query sets
// {AB, C} and {A, BC} concatenate identically but must never collide.
func TestKeyDistinguishes(t *testing.T) {
	base := set(t, []byte{1, 2}, []byte{3})
	keys := map[string]string{}
	add := func(label, k string) {
		if prev, ok := keys[k]; ok {
			t.Fatalf("%s collides with %s", label, prev)
		}
		keys[k] = label
	}
	add("base", Key(7, 5, base))
	add("other checksum", Key(8, 5, base))
	add("other topk", Key(7, 6, base))
	add("split shifted", Key(7, 5, set(t, []byte{1}, []byte{2, 3})))
	add("one query", Key(7, 5, set(t, []byte{1, 2, 3})))
	add("content", Key(7, 5, set(t, []byte{1, 2}, []byte{4})))
	add("extra empty query", Key(7, 5, set(t, []byte{1, 2}, []byte{3}, nil)))
	if got := Key(7, 5, set(t, []byte{1, 2}, []byte{3})); got != Key(7, 5, base) {
		t.Fatal("equal fingerprints must produce equal keys (IDs are excluded)")
	}
}

// TestCacheLRUBound fills past MaxEntries and checks the bound holds,
// cold entries evict in LRU order, and a touched entry survives.
func TestCacheLRUBound(t *testing.T) {
	c := New(Config{MaxEntries: 3})
	for i := 0; i < 3; i++ {
		c.Put(fmt.Sprintf("k%d", i), hitsFor(1))
	}
	// Touch k0: it becomes the most recently used, so the next two
	// inserts must evict k1 then k2, never k0.
	if _, ok := c.Get("k0"); !ok {
		t.Fatal("k0 missing before any eviction")
	}
	c.Put("k3", hitsFor(1))
	c.Put("k4", hitsFor(1))
	if n := c.Len(); n != 3 {
		t.Fatalf("Len %d after overfill, want 3", n)
	}
	if _, ok := c.Get("k0"); !ok {
		t.Fatal("recently used k0 was evicted")
	}
	for _, cold := range []string{"k1", "k2"} {
		if _, ok := c.Get(cold); ok {
			t.Fatalf("LRU %s survived two evictions", cold)
		}
	}
	st := c.Stats()
	if st.Evictions != 2 {
		t.Fatalf("evictions %d, want 2", st.Evictions)
	}
	if st.Entries != 3 {
		t.Fatalf("entries %d, want 3", st.Entries)
	}
	if st.Hits != 2 || st.Misses != 2 {
		t.Fatalf("hits/misses %d/%d, want 2/2", st.Hits, st.Misses)
	}
}

// TestCacheByteBudget checks the byte bound evicts independently of the
// entry bound and that one oversized answer is refused rather than
// wiping the cache to make room for it.
func TestCacheByteBudget(t *testing.T) {
	small := hitsFor(1)
	perEntry := hitsSize("k0", small)
	c := New(Config{MaxEntries: 100, MaxBytes: 2 * perEntry})
	c.Put("k0", small)
	c.Put("k1", small)
	c.Put("k2", small) // must evict k0 on bytes alone
	if n := c.Len(); n != 2 {
		t.Fatalf("Len %d under byte budget for 2, want 2", n)
	}
	if _, ok := c.Get("k0"); ok {
		t.Fatal("byte budget did not evict the LRU entry")
	}
	if st := c.Stats(); st.Bytes > 2*perEntry {
		t.Fatalf("accounted bytes %d exceed budget %d", st.Bytes, 2*perEntry)
	}
	c.Put("huge", hitsFor(1000)) // alone above the budget: not stored
	if _, ok := c.Get("huge"); ok {
		t.Fatal("oversized answer was cached")
	}
	if n := c.Len(); n != 2 {
		t.Fatalf("oversized Put disturbed the cache: Len %d, want 2", n)
	}
}

// TestCacheDefensiveCopies mutates hit slices on both sides of the
// boundary and checks the cached value never changes.
func TestCacheDefensiveCopies(t *testing.T) {
	c := New(Config{})
	in := hitsFor(2)
	c.Put("k", in)
	in[0][0].Score = -1 // caller keeps mutating its own slices after Put
	got1, ok := c.Get("k")
	if !ok {
		t.Fatal("miss after Put")
	}
	if got1[0][0].Score != 100 {
		t.Fatalf("Put aliased caller memory: score %d", got1[0][0].Score)
	}
	got1[1][0].SeqID = "corrupted" // caller mutates a returned slice
	got2, _ := c.Get("k")
	if got2[1][0].SeqID != "s1" {
		t.Fatalf("Get returned aliased cache memory: %q", got2[1][0].SeqID)
	}
}

// TestFlightCollapse drives the leader/follower protocol directly: one
// leader, followers that share its answer, error propagation without
// stickiness, and follower-only cancellation.
func TestFlightCollapse(t *testing.T) {
	f := NewFlight()
	call, leader := f.Join("k")
	if !leader {
		t.Fatal("first Join must lead")
	}
	if _, again := f.Join("k"); again {
		t.Fatal("second Join of an in-flight key must follow")
	}

	// A follower with a canceled context abandons only itself.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := call.Wait(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled follower: %v", err)
	}

	done := make(chan error, 1)
	go func() {
		hits, err := call.Wait(context.Background())
		if err == nil && len(hits) != 2 {
			err = fmt.Errorf("follower got %d hit lists", len(hits))
		}
		done <- err
	}()
	f.Finish("k", call, hitsFor(2), nil)
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("follower never woke")
	}

	// The key retired with the call: the next Join leads again, and a
	// leader error reaches its followers but is gone once finished.
	call2, leader2 := f.Join("k")
	if !leader2 {
		t.Fatal("Join after Finish must lead")
	}
	boom := errors.New("boom")
	f.Finish("k", call2, nil, boom)
	if _, err := call2.Wait(context.Background()); !errors.Is(err, boom) {
		t.Fatalf("follower error: %v", err)
	}
	if _, leader3 := f.Join("k"); !leader3 {
		t.Fatal("error must not be sticky: next Join must lead")
	}
}

// TestReport assembles a report from cached hits and checks identity
// comes from the request (IDs, indices), not from the cache.
func TestReport(t *testing.T) {
	queries := set(t, []byte{1, 2}, []byte{3, 4})
	hits := hitsFor(2)
	rep := Report(master.PolicyDualApprox, queries, hits)
	if len(rep.Results) != 2 {
		t.Fatalf("%d results", len(rep.Results))
	}
	for i, r := range rep.Results {
		if r.QueryIndex != i || r.QueryID != fmt.Sprintf("q%d", i) {
			t.Fatalf("result %d identity: %+v", i, r)
		}
		if len(r.Hits) != 1 || r.Hits[0] != hits[i][0] {
			t.Fatalf("result %d hits: %+v", i, r.Hits)
		}
	}
	if rep.Policy != master.PolicyDualApprox {
		t.Fatalf("policy %v", rep.Policy)
	}
}

// TestFlightFollowerCancelRace stress-tests the window between the
// leader's Finish and a follower's Wait wakeup when the follower's
// context is cancelled at the same instant. The follower must observe
// exactly one of two outcomes — its own context error, or the complete
// published result — never a torn mix (partial hits, or hits alongside
// a context error). The happens-before edge is Finish's channel close;
// this pins it under the race detector.
func TestFlightFollowerCancelRace(t *testing.T) {
	const rounds = 500
	const followers = 4
	want := hitsFor(8)
	for round := 0; round < rounds; round++ {
		f := NewFlight()
		key := fmt.Sprintf("k%d", round)
		leader, isLeader := f.Join(key)
		if !isLeader {
			t.Fatal("first join was not leader")
		}
		var wg sync.WaitGroup
		for i := 0; i < followers; i++ {
			c, isLeader := f.Join(key)
			if isLeader {
				t.Fatal("follower join became leader")
			}
			ctx, cancel := context.WithCancel(context.Background())
			wg.Add(2)
			go func() { // cancel races Finish
				defer wg.Done()
				cancel()
			}()
			go func() {
				defer wg.Done()
				hits, err := c.Wait(ctx)
				switch {
				case err == nil:
					// Complete result: every query's hits, intact.
					if len(hits) != len(want) {
						t.Errorf("torn result: %d hit lists, want %d", len(hits), len(want))
						return
					}
					for qi := range want {
						if len(hits[qi]) != len(want[qi]) || hits[qi][0] != want[qi][0] {
							t.Errorf("torn hits for query %d: %+v", qi, hits[qi])
							return
						}
					}
				case errors.Is(err, context.Canceled):
					if hits != nil {
						t.Errorf("context error delivered with hits attached")
					}
				default:
					t.Errorf("unexpected wait error: %v", err)
				}
			}()
		}
		// Finish with a fresh copy each round, as the engine's leader
		// path does: followers share it as immutable.
		f.Finish(key, leader, CopyHits(want), nil)
		wg.Wait()
	}
}

// TestFlightLateJoinAfterFinish: a Join that loses the race against
// Finish must become a fresh leader, not wait forever on a retired
// call.
func TestFlightLateJoinAfterFinish(t *testing.T) {
	f := NewFlight()
	c, leader := f.Join("k")
	if !leader {
		t.Fatal("first join not leader")
	}
	f.Finish("k", c, hitsFor(1), nil)
	if _, leader := f.Join("k"); !leader {
		t.Fatal("join after finish did not start a fresh flight")
	}
}
