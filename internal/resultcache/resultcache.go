// Package resultcache is the query-fingerprint → hits cache that sits
// in front of a search dispatcher, plus the singleflight collapsing
// that keeps concurrent identical queries from each paying a full
// scheduling wave.
//
// The cache key is the full search fingerprint — database checksum,
// effective TopK, and every query's residue content in order — so a
// database swap or a different hit cap invalidates for free, and two
// requests collide only when their answers are byte-identical by
// construction. Values are per-query hit lists; callers assemble a
// fresh Report around them, because QueryIDs and timing belong to the
// request, not to the cached answer. Entries are bounded by an LRU
// with both an entry budget and a byte budget, and every value is
// defensively copied on the way in and out, so no caller can corrupt
// a cached slice (the ProfileCache ownership discipline, applied to
// results).
//
// Flight is the collapsing layer under the cache: the first caller to
// miss on a key becomes the leader and runs the real search; callers
// that miss on the same key while the leader is in flight become
// followers and wait for the leader's answer. A follower's context
// cancellation abandons only that follower — the leader keeps its own
// context — and a leader error is propagated to every follower but
// never cached, so the next request retries a real search.
package resultcache

import (
	"container/list"
	"context"
	"encoding/binary"
	"sync"
	"sync/atomic"
	"time"

	"swdual/internal/master"
	"swdual/internal/seq"
)

// DefaultMaxEntries bounds a zero-configured cache's entry count.
const DefaultMaxEntries = 1024

// DefaultMaxBytes bounds a zero-configured cache's estimated memory.
const DefaultMaxBytes = 64 << 20

// Config bounds a Cache. The zero value selects both defaults.
type Config struct {
	// MaxEntries caps cached fingerprints (0 selects
	// DefaultMaxEntries).
	MaxEntries int
	// MaxBytes caps the estimated bytes held across keys and hits
	// (0 selects DefaultMaxBytes). A single answer larger than the
	// budget is served but never stored.
	MaxBytes int64
}

// Stats is a point-in-time snapshot of a Cache's counters.
type Stats struct {
	Entries   int
	Bytes     int64
	Hits      uint64
	Misses    uint64
	Evictions uint64
}

// entry is one cached fingerprint → hits mapping on the LRU list.
type entry struct {
	key  string
	hits [][]master.Hit
	size int64
}

// Cache is a bounded LRU over search fingerprints. Safe for concurrent
// use; Get and Put copy hit slices at the boundary in both directions.
type Cache struct {
	maxEntries int
	maxBytes   int64

	mu    sync.Mutex
	order *list.List // front = most recently used
	index map[string]*list.Element
	bytes int64

	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
}

// New builds a cache with the given bounds (zero fields select the
// defaults).
func New(cfg Config) *Cache {
	if cfg.MaxEntries <= 0 {
		cfg.MaxEntries = DefaultMaxEntries
	}
	if cfg.MaxBytes <= 0 {
		cfg.MaxBytes = DefaultMaxBytes
	}
	return &Cache{
		maxEntries: cfg.MaxEntries,
		maxBytes:   cfg.MaxBytes,
		order:      list.New(),
		index:      make(map[string]*list.Element),
	}
}

// Key fingerprints one search: database checksum, effective TopK, and
// each query's residue content, all length-prefixed so distinct query
// sets can never alias. The result is a byte-string key (not a hash),
// so a cache hit implies fingerprint equality, never a collision.
func Key(dbChecksum uint32, topK int, queries *seq.Set) string {
	n := 12
	for i := range queries.Seqs {
		n += 4 + len(queries.Seqs[i].Residues)
	}
	b := make([]byte, 0, n)
	b = binary.LittleEndian.AppendUint32(b, dbChecksum)
	b = binary.LittleEndian.AppendUint32(b, uint32(topK))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(queries.Seqs)))
	for i := range queries.Seqs {
		r := queries.Seqs[i].Residues
		b = binary.LittleEndian.AppendUint32(b, uint32(len(r)))
		b = append(b, r...)
	}
	return string(b)
}

// hitsSize estimates the resident cost of one cached value: slice
// headers plus per-hit struct size plus SeqID string bytes.
func hitsSize(key string, hits [][]master.Hit) int64 {
	size := int64(len(key)) + 24*int64(len(hits))
	for _, hs := range hits {
		for i := range hs {
			size += 40 + int64(len(hs[i].SeqID))
		}
	}
	return size
}

// CopyHits deep-copies per-query hit lists. Hit itself has no interior
// pointers beyond the immutable SeqID string, so copying the slices is
// a full defensive copy.
func CopyHits(hits [][]master.Hit) [][]master.Hit {
	out := make([][]master.Hit, len(hits))
	for i, hs := range hits {
		if hs == nil {
			continue
		}
		out[i] = make([]master.Hit, len(hs))
		copy(out[i], hs)
	}
	return out
}

// Get returns a defensive copy of the hits cached under key and marks
// the entry most recently used. The second result reports whether the
// key was present.
func (c *Cache) Get(key string) ([][]master.Hit, bool) {
	c.mu.Lock()
	el, ok := c.index[key]
	if !ok {
		c.mu.Unlock()
		c.misses.Add(1)
		return nil, false
	}
	c.order.MoveToFront(el)
	hits := el.Value.(*entry).hits
	c.mu.Unlock()
	c.hits.Add(1)
	// The cached slices are immutable once stored, so the copy can run
	// outside the lock.
	return CopyHits(hits), true
}

// Put stores a defensive copy of hits under key and evicts from the
// cold end until both budgets hold again. An answer that alone exceeds
// the byte budget is not stored (storing it would evict everything for
// one entry that can never be joined by another).
func (c *Cache) Put(key string, hits [][]master.Hit) {
	size := hitsSize(key, hits)
	if size > c.maxBytes {
		return
	}
	stored := CopyHits(hits)
	c.mu.Lock()
	if el, ok := c.index[key]; ok {
		// Replace in place (two leaders can race here only across a
		// flight boundary; both computed the same answer).
		e := el.Value.(*entry)
		c.bytes += size - e.size
		e.hits, e.size = stored, size
		c.order.MoveToFront(el)
	} else {
		c.index[key] = c.order.PushFront(&entry{key: key, hits: stored, size: size})
		c.bytes += size
	}
	var evicted uint64
	for c.order.Len() > c.maxEntries || c.bytes > c.maxBytes {
		back := c.order.Back()
		e := back.Value.(*entry)
		c.order.Remove(back)
		delete(c.index, e.key)
		c.bytes -= e.size
		evicted++
	}
	c.mu.Unlock()
	if evicted > 0 {
		c.evictions.Add(evicted)
	}
}

// Len reports the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Stats snapshots the cache's counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	entries, bytes := c.order.Len(), c.bytes
	c.mu.Unlock()
	return Stats{
		Entries:   entries,
		Bytes:     bytes,
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
	}
}

// Report assembles a fresh report around per-query hits: QueryIndex and
// QueryID come from the request's query set, and the hit slices are
// owned by the report (pass a copy; Cache.Get already returns one).
// Cells, timing and worker accounting stay zero — a cached answer did
// no work, and Stats counters are where operators see that.
func Report(policy master.Policy, queries *seq.Set, hits [][]master.Hit) *master.Report {
	rep := &master.Report{
		Policy:      policy,
		Results:     make([]master.QueryResult, len(queries.Seqs)),
		WorkerBusy:  map[string]time.Duration{},
		WorkerTasks: map[string]int{},
	}
	for i := range rep.Results {
		rep.Results[i].QueryIndex = i
		rep.Results[i].QueryID = queries.Seqs[i].ID
		if i < len(hits) {
			rep.Results[i].Hits = hits[i]
		}
	}
	return rep
}

// Flight collapses concurrent identical searches: the first Join on a
// key is the leader, later Joins before Finish are followers.
type Flight struct {
	mu    sync.Mutex
	calls map[string]*Call
}

// NewFlight builds an empty flight group.
func NewFlight() *Flight {
	return &Flight{calls: make(map[string]*Call)}
}

// Call is one in-flight search a leader runs and followers wait on.
type Call struct {
	done     chan struct{}
	hits     [][]master.Hit   // immutable once done is closed
	coverage *master.Coverage // non-nil only for degraded answers
	err      error
}

// Join returns the in-flight call for key, creating it when absent.
// leader reports whether the caller created the call and therefore must
// run the search and Finish it.
func (f *Flight) Join(key string) (c *Call, leader bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.calls[key]; ok {
		return c, false
	}
	c = &Call{done: make(chan struct{})}
	f.calls[key] = c
	return c, true
}

// Finish publishes the leader's outcome to every follower and retires
// the call, so the next miss on key starts a fresh search (errors are
// therefore never sticky). hits must be a copy the followers may share;
// they are treated as immutable from here on.
func (f *Flight) Finish(key string, c *Call, hits [][]master.Hit, err error) {
	f.finish(key, c, hits, nil, err)
}

// FinishPartial publishes a degraded leader's outcome: followers get
// the surviving hits together with the coverage describing what was
// skipped, so a collapsed answer is labeled partial exactly like the
// leader's. Degraded answers never reach the Cache — that is the
// caller's contract; this method only carries the metadata across the
// flight.
func (f *Flight) FinishPartial(key string, c *Call, hits [][]master.Hit, coverage *master.Coverage) {
	f.finish(key, c, hits, coverage, nil)
}

func (f *Flight) finish(key string, c *Call, hits [][]master.Hit, coverage *master.Coverage, err error) {
	f.mu.Lock()
	if cur, ok := f.calls[key]; ok && cur == c {
		delete(f.calls, key)
	}
	f.mu.Unlock()
	c.hits, c.coverage, c.err = hits, coverage, err
	close(c.done)
}

// Coverage reports the degraded-answer metadata the leader published
// (nil for a full-coverage answer). Valid only after Wait returned
// without error; the value is shared and must be Cloned before
// attaching to a caller-owned Report.
func (c *Call) Coverage() *master.Coverage {
	select {
	case <-c.done:
		return c.coverage
	default:
		return nil
	}
}

// Wait blocks until the leader finished or ctx is done. The returned
// hits are shared and immutable — copy before mutating (Report wants an
// owned copy, so pass them through CopyHits).
func (c *Call) Wait(ctx context.Context) ([][]master.Hit, error) {
	select {
	case <-c.done:
		return c.hits, c.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}
