package fasta

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"swdual/internal/alphabet"
	"swdual/internal/seq"
)

// Index provides random access into a FASTA file without converting it to
// the binary format: it records, per record, the byte offset of the first
// residue line, the sequence length, and the line geometry — the same
// information as a samtools ".fai" index. The paper's motivation for its
// binary format (§IV) is that plain FASTA cannot be read at a specific
// sequence; an index is the complementary solution when the file must stay
// FASTA.
type Index struct {
	Records []IndexRecord
	byID    map[string]int
}

// IndexRecord describes one sequence's layout inside the FASTA file.
type IndexRecord struct {
	ID        string
	Length    int   // residues
	Offset    int64 // byte offset of the first residue line
	LineBases int   // residues per full line
	LineBytes int   // bytes per full line including the terminator
}

// BuildIndex scans FASTA text and produces an index. Records with
// irregular line lengths (other than a short final line) are rejected, as
// in the .fai format, because their offsets are not computable.
func BuildIndex(r io.Reader) (*Index, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	idx := &Index{byID: map[string]int{}}
	var cur *IndexRecord
	var offset int64
	lineno := 0
	finish := func() error {
		if cur == nil {
			return nil
		}
		idx.byID[cur.ID] = len(idx.Records)
		idx.Records = append(idx.Records, *cur)
		cur = nil
		return nil
	}
	sawShortLine := false
	for {
		line, err := br.ReadBytes('\n')
		if len(line) == 0 && err != nil {
			if err == io.EOF {
				break
			}
			return nil, err
		}
		lineno++
		lineBytes := len(line)
		content := strings.TrimRight(string(line), "\r\n")
		switch {
		case strings.HasPrefix(content, ">"):
			if err := finish(); err != nil {
				return nil, err
			}
			header := content[1:]
			id := header
			if i := strings.IndexAny(header, " \t"); i >= 0 {
				id = header[:i]
			}
			cur = &IndexRecord{ID: id, Offset: offset + int64(lineBytes)}
			sawShortLine = false
		case cur != nil && len(content) > 0:
			if cur.LineBases == 0 {
				cur.LineBases = len(content)
				cur.LineBytes = lineBytes
			} else if len(content) != cur.LineBases {
				if sawShortLine {
					return nil, fmt.Errorf("fasta: record %s has irregular line lengths (line %d)", cur.ID, lineno)
				}
				if len(content) > cur.LineBases {
					return nil, fmt.Errorf("fasta: record %s line %d longer than first line", cur.ID, lineno)
				}
				sawShortLine = true
			} else if sawShortLine {
				return nil, fmt.Errorf("fasta: record %s has residue lines after a short line (line %d)", cur.ID, lineno)
			}
			cur.Length += len(content)
		case cur != nil && len(content) == 0:
			// Blank line ends the residue block for offset arithmetic
			// purposes; treat as irregular if more residues follow.
			sawShortLine = true
		}
		offset += int64(lineBytes)
		if err == io.EOF {
			break
		}
	}
	if err := finish(); err != nil {
		return nil, err
	}
	return idx, nil
}

// Len returns the number of indexed records.
func (ix *Index) Len() int { return len(ix.Records) }

// Lookup returns the record index for a sequence ID.
func (ix *Index) Lookup(id string) (int, bool) {
	i, ok := ix.byID[id]
	return i, ok
}

// WriteFai emits the index in the tab-separated .fai layout
// (name, length, offset, linebases, linewidth).
func (ix *Index) WriteFai(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, r := range ix.Records {
		lb, lw := r.LineBases, r.LineBytes
		if lb == 0 { // empty sequence: conventionally its length/width
			lb, lw = 1, 2
		}
		if _, err := fmt.Fprintf(bw, "%s\t%d\t%d\t%d\t%d\n", r.ID, r.Length, r.Offset, lb, lw); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ParseFai reads a .fai index.
func ParseFai(r io.Reader) (*Index, error) {
	sc := bufio.NewScanner(r)
	idx := &Index{byID: map[string]int{}}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var rec IndexRecord
		if _, err := fmt.Sscanf(strings.ReplaceAll(line, "\t", " "), "%s %d %d %d %d",
			&rec.ID, &rec.Length, &rec.Offset, &rec.LineBases, &rec.LineBytes); err != nil {
			return nil, fmt.Errorf("fasta: bad fai line %q: %v", line, err)
		}
		idx.byID[rec.ID] = len(idx.Records)
		idx.Records = append(idx.Records, rec)
	}
	return idx, sc.Err()
}

// IndexedFile couples a FASTA file with its index for random access.
type IndexedFile struct {
	ra    io.ReaderAt
	close io.Closer
	idx   *Index
	alpha *alphabet.Alphabet
}

// OpenIndexed opens a FASTA file and builds (or reads, if path+".fai"
// exists) its index.
func OpenIndexed(path string, a *alphabet.Alphabet) (*IndexedFile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	var idx *Index
	if faif, err2 := os.Open(path + ".fai"); err2 == nil {
		idx, err = ParseFai(faif)
		faif.Close()
	} else {
		idx, err = BuildIndex(f)
		if err == nil {
			_, err = f.Seek(0, io.SeekStart)
		}
	}
	if err != nil {
		f.Close()
		return nil, err
	}
	return &IndexedFile{ra: f, close: f, idx: idx, alpha: a}, nil
}

// NewIndexedFile builds an IndexedFile over any ReaderAt and prebuilt
// index.
func NewIndexedFile(ra io.ReaderAt, idx *Index, a *alphabet.Alphabet) *IndexedFile {
	return &IndexedFile{ra: ra, idx: idx, alpha: a}
}

// Close releases the underlying file.
func (f *IndexedFile) Close() error {
	if f.close != nil {
		return f.close.Close()
	}
	return nil
}

// Index returns the underlying index.
func (f *IndexedFile) Index() *Index { return f.idx }

// Sequence reads record i directly, decoding residues with the file's
// alphabet (lossy: unknown letters map to the catch-all code).
func (f *IndexedFile) Sequence(i int) (seq.Sequence, error) {
	if i < 0 || i >= len(f.idx.Records) {
		return seq.Sequence{}, fmt.Errorf("fasta: record %d out of range [0,%d)", i, len(f.idx.Records))
	}
	rec := f.idx.Records[i]
	if rec.Length == 0 {
		return seq.Sequence{ID: rec.ID}, nil
	}
	// Bytes spanned: full lines plus the partial last line.
	fullLines := rec.Length / max(rec.LineBases, 1)
	rem := rec.Length - fullLines*rec.LineBases
	span := int64(fullLines*rec.LineBytes) + int64(rem)
	buf := make([]byte, span)
	if _, err := f.ra.ReadAt(buf, rec.Offset); err != nil && err != io.EOF {
		return seq.Sequence{}, err
	}
	residues := make([]byte, 0, rec.Length)
	for _, b := range buf {
		if b == '\n' || b == '\r' {
			continue
		}
		residues = append(residues, b)
	}
	if len(residues) < rec.Length {
		return seq.Sequence{}, fmt.Errorf("fasta: record %s truncated: got %d of %d residues", rec.ID, len(residues), rec.Length)
	}
	residues = residues[:rec.Length]
	sub, _ := f.alpha.AnyCode()
	enc, _ := f.alpha.EncodeLossy(residues, sub)
	return seq.Sequence{ID: rec.ID, Residues: enc}, nil
}

// SequenceByID reads a record by its identifier.
func (f *IndexedFile) SequenceByID(id string) (seq.Sequence, error) {
	i, ok := f.idx.Lookup(id)
	if !ok {
		return seq.Sequence{}, fmt.Errorf("fasta: no record %q in index", id)
	}
	return f.Sequence(i)
}

// IDs returns the sorted record identifiers.
func (f *IndexedFile) IDs() []string {
	out := make([]string, len(f.idx.Records))
	for i, r := range f.idx.Records {
		out[i] = r.ID
	}
	sort.Strings(out)
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
