// Package fasta implements streaming readers and writers for the FASTA
// sequence format (Pearson 1990, [17] in the paper). The master and the
// workers both accept FASTA input and convert it to the binary format of
// package seqdb for random access (paper §IV).
package fasta

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"os"
	"strings"

	"swdual/internal/alphabet"
	"swdual/internal/seq"
)

// Record is one raw FASTA record: the header line without '>' and the
// concatenated ASCII residue lines.
type Record struct {
	Header string
	Seq    []byte
}

// ID returns the first whitespace-delimited word of the header.
func (r *Record) ID() string {
	if i := strings.IndexAny(r.Header, " \t"); i >= 0 {
		return r.Header[:i]
	}
	return r.Header
}

// Desc returns the header after the first word, trimmed.
func (r *Record) Desc() string {
	if i := strings.IndexAny(r.Header, " \t"); i >= 0 {
		return strings.TrimSpace(r.Header[i+1:])
	}
	return ""
}

// Reader streams records from FASTA text. It tolerates CRLF line endings,
// blank lines between records, and arbitrary line wrapping.
type Reader struct {
	br      *bufio.Reader
	pending string // header of the next record, already consumed
	started bool
	line    int
}

// NewReader wraps r in a FASTA Reader.
func NewReader(r io.Reader) *Reader {
	return &Reader{br: bufio.NewReaderSize(r, 1<<16)}
}

// Next returns the next record, or io.EOF after the last one.
func (fr *Reader) Next() (*Record, error) {
	var header string
	if fr.pending != "" {
		header = fr.pending
		fr.pending = ""
	} else {
		for {
			line, err := fr.readLine()
			if err != nil {
				return nil, err
			}
			if len(line) == 0 {
				continue
			}
			if line[0] != '>' {
				if !fr.started {
					return nil, fmt.Errorf("fasta: line %d: expected '>' header, got %q", fr.line, truncate(line))
				}
				return nil, fmt.Errorf("fasta: line %d: residue data outside a record", fr.line)
			}
			header = string(line[1:])
			break
		}
	}
	fr.started = true
	var body bytes.Buffer
	for {
		line, err := fr.readLine()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if len(line) == 0 {
			continue
		}
		if line[0] == '>' {
			fr.pending = string(line[1:])
			break
		}
		body.Write(line)
	}
	return &Record{Header: header, Seq: body.Bytes()}, nil
}

func (fr *Reader) readLine() ([]byte, error) {
	line, err := fr.br.ReadBytes('\n')
	if len(line) == 0 && err != nil {
		return nil, err
	}
	fr.line++
	line = bytes.TrimRight(line, "\r\n")
	line = bytes.TrimSpace(line)
	return line, nil
}

func truncate(b []byte) string {
	if len(b) > 32 {
		return string(b[:32]) + "..."
	}
	return string(b)
}

// ReadAll reads every record from r.
func ReadAll(r io.Reader) ([]*Record, error) {
	fr := NewReader(r)
	var out []*Record
	for {
		rec, err := fr.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, rec)
	}
}

// ReadSet reads FASTA text and encodes it into a seq.Set over the given
// alphabet. Unknown residues are replaced by the alphabet's catch-all code
// (X or N) when lossy is true, otherwise they are an error.
func ReadSet(r io.Reader, a *alphabet.Alphabet, lossy bool) (*seq.Set, error) {
	set := seq.NewSet(a)
	fr := NewReader(r)
	for {
		rec, err := fr.Next()
		if err == io.EOF {
			return set, nil
		}
		if err != nil {
			return nil, err
		}
		if lossy {
			sub, ok := a.AnyCode()
			if !ok {
				return nil, fmt.Errorf("fasta: alphabet %s has no substitute code for lossy decoding", a.Name())
			}
			enc, _ := a.EncodeLossy(rec.Seq, sub)
			set.AddEncoded(rec.ID(), rec.Desc(), enc)
			continue
		}
		if err := set.Add(rec.ID(), rec.Desc(), rec.Seq); err != nil {
			return nil, err
		}
	}
}

// ReadFile reads a FASTA file into a seq.Set.
func ReadFile(path string, a *alphabet.Alphabet, lossy bool) (*seq.Set, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadSet(f, a, lossy)
}

// Writer emits FASTA text with a configurable wrap column.
type Writer struct {
	bw   *bufio.Writer
	Wrap int // residues per line; <=0 means no wrapping
}

// NewWriter returns a Writer with the conventional 60-column wrap.
func NewWriter(w io.Writer) *Writer {
	return &Writer{bw: bufio.NewWriterSize(w, 1<<16), Wrap: 60}
}

// WriteRecord writes one raw record.
func (w *Writer) WriteRecord(rec *Record) error {
	if _, err := fmt.Fprintf(w.bw, ">%s\n", rec.Header); err != nil {
		return err
	}
	return w.writeWrapped(rec.Seq)
}

// WriteSequence writes one encoded sequence, decoding it with the alphabet.
func (w *Writer) WriteSequence(a *alphabet.Alphabet, s *seq.Sequence) error {
	header := s.ID
	if s.Desc != "" {
		header += " " + s.Desc
	}
	if _, err := fmt.Fprintf(w.bw, ">%s\n", header); err != nil {
		return err
	}
	return w.writeWrapped(a.Decode(s.Residues))
}

func (w *Writer) writeWrapped(ascii []byte) error {
	if w.Wrap <= 0 {
		w.bw.Write(ascii)
		return w.bw.WriteByte('\n')
	}
	for len(ascii) > 0 {
		n := w.Wrap
		if n > len(ascii) {
			n = len(ascii)
		}
		if _, err := w.bw.Write(ascii[:n]); err != nil {
			return err
		}
		if err := w.bw.WriteByte('\n'); err != nil {
			return err
		}
		ascii = ascii[n:]
	}
	return nil
}

// Flush flushes buffered output.
func (w *Writer) Flush() error { return w.bw.Flush() }

// WriteSet writes an entire set as FASTA.
func WriteSet(w io.Writer, set *seq.Set) error {
	fw := NewWriter(w)
	for i := range set.Seqs {
		if err := fw.WriteSequence(set.Alpha, &set.Seqs[i]); err != nil {
			return err
		}
	}
	return fw.Flush()
}
