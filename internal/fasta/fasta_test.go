package fasta

import (
	"bytes"
	"io"
	"strings"
	"testing"
	"testing/quick"

	"swdual/internal/alphabet"
	"swdual/internal/synth"
)

func TestReaderBasic(t *testing.T) {
	in := ">seq1 first sequence\nARND\nCQEG\n>seq2\nHILK\n"
	recs, err := ReadAll(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("%d records, want 2", len(recs))
	}
	if recs[0].ID() != "seq1" || recs[0].Desc() != "first sequence" {
		t.Fatalf("header parse: %q / %q", recs[0].ID(), recs[0].Desc())
	}
	if string(recs[0].Seq) != "ARNDCQEG" {
		t.Fatalf("seq1 %q", recs[0].Seq)
	}
	if recs[1].ID() != "seq2" || recs[1].Desc() != "" {
		t.Fatalf("seq2 header %q/%q", recs[1].ID(), recs[1].Desc())
	}
}

func TestReaderCRLFAndBlankLines(t *testing.T) {
	in := ">a desc\r\nAR\r\n\r\nND\r\n\r\n>b\r\nCQ\r\n"
	recs, err := ReadAll(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || string(recs[0].Seq) != "ARND" || string(recs[1].Seq) != "CQ" {
		t.Fatalf("CRLF parse failed: %+v", recs)
	}
}

func TestReaderErrors(t *testing.T) {
	if _, err := ReadAll(strings.NewReader("ARND\n")); err == nil {
		t.Fatal("residues before any header must fail")
	}
	recs, err := ReadAll(strings.NewReader(""))
	if err != nil || len(recs) != 0 {
		t.Fatalf("empty input: %v %v", recs, err)
	}
}

func TestReaderEOFWithoutNewline(t *testing.T) {
	recs, err := ReadAll(strings.NewReader(">x\nARND"))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || string(recs[0].Seq) != "ARND" {
		t.Fatalf("missing trailing newline: %+v", recs)
	}
}

func TestNextIterator(t *testing.T) {
	r := NewReader(strings.NewReader(">a\nAR\n>b\nND\n"))
	first, err := r.Next()
	if err != nil || first.ID() != "a" {
		t.Fatalf("first: %v %v", first, err)
	}
	second, err := r.Next()
	if err != nil || second.ID() != "b" {
		t.Fatalf("second: %v %v", second, err)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestReadSetStrictAndLossy(t *testing.T) {
	in := ">a\nAR#D\n"
	if _, err := ReadSet(strings.NewReader(in), alphabet.Protein, false); err == nil {
		t.Fatal("strict mode must reject '#'")
	}
	set, err := ReadSet(strings.NewReader(in), alphabet.Protein, true)
	if err != nil {
		t.Fatal(err)
	}
	x, _ := alphabet.Protein.AnyCode()
	if set.Seqs[0].Residues[2] != x {
		t.Fatalf("lossy substitution failed: %v", set.Seqs[0].Residues)
	}
}

func TestWriterWrapping(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Wrap = 4
	if err := w.WriteRecord(&Record{Header: "x", Seq: []byte("ARNDCQEGH")}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	want := ">x\nARND\nCQEG\nH\n"
	if buf.String() != want {
		t.Fatalf("wrapped output %q, want %q", buf.String(), want)
	}
}

func TestWriterNoWrap(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Wrap = 0
	w.WriteRecord(&Record{Header: "x", Seq: []byte("ARNDCQEGH")})
	w.Flush()
	if buf.String() != ">x\nARNDCQEGH\n" {
		t.Fatalf("unwrapped output %q", buf.String())
	}
}

func TestSetRoundTrip(t *testing.T) {
	set := synth.RandomSet(alphabet.Protein, 25, 1, 200, 5)
	var buf bytes.Buffer
	if err := WriteSet(&buf, set); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSet(&buf, alphabet.Protein, false)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != set.Len() {
		t.Fatalf("%d sequences, want %d", back.Len(), set.Len())
	}
	for i := range set.Seqs {
		if set.Seqs[i].ID != back.Seqs[i].ID {
			t.Fatalf("id mismatch at %d", i)
		}
		if !bytes.Equal(set.Seqs[i].Residues, back.Seqs[i].Residues) {
			t.Fatalf("residue mismatch at %d", i)
		}
	}
}

// Property: WriteSet then ReadSet is the identity on random sets.
func TestQuickSetRoundTrip(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		set := synth.RandomSet(alphabet.Protein, int(n%40)+1, 0, 120, seed)
		var buf bytes.Buffer
		if err := WriteSet(&buf, set); err != nil {
			return false
		}
		back, err := ReadSet(&buf, alphabet.Protein, false)
		if err != nil {
			return false
		}
		if back.Len() != set.Len() {
			return false
		}
		for i := range set.Seqs {
			if !bytes.Equal(set.Seqs[i].Residues, back.Seqs[i].Residues) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
