package fasta

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"swdual/internal/alphabet"
	"swdual/internal/synth"
)

func TestBuildIndexAndRandomAccess(t *testing.T) {
	set := synth.RandomSet(alphabet.Protein, 30, 1, 400, 71)
	var buf bytes.Buffer
	if err := WriteSet(&buf, set); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	idx, err := BuildIndex(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if idx.Len() != set.Len() {
		t.Fatalf("index has %d records, want %d", idx.Len(), set.Len())
	}
	f := NewIndexedFile(bytes.NewReader(data), idx, alphabet.Protein)
	// Out-of-order random access.
	for _, i := range []int{29, 0, 17, 5, 29} {
		s, err := f.Sequence(i)
		if err != nil {
			t.Fatal(err)
		}
		if s.ID != set.Seqs[i].ID {
			t.Fatalf("record %d id %q want %q", i, s.ID, set.Seqs[i].ID)
		}
		if !bytes.Equal(s.Residues, set.Seqs[i].Residues) {
			t.Fatalf("record %d residues differ", i)
		}
	}
	// Lookup by ID.
	s, err := f.SequenceByID(set.Seqs[12].ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(s.Residues, set.Seqs[12].Residues) {
		t.Fatal("SequenceByID residues differ")
	}
	if _, err := f.SequenceByID("missing"); err == nil {
		t.Fatal("missing id must fail")
	}
	if _, err := f.Sequence(99); err == nil {
		t.Fatal("out-of-range index must fail")
	}
	if len(f.IDs()) != set.Len() {
		t.Fatal("IDs()")
	}
}

func TestFaiRoundTrip(t *testing.T) {
	set := synth.RandomSet(alphabet.Protein, 10, 1, 200, 72)
	var buf bytes.Buffer
	if err := WriteSet(&buf, set); err != nil {
		t.Fatal(err)
	}
	idx, err := BuildIndex(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var fai bytes.Buffer
	if err := idx.WriteFai(&fai); err != nil {
		t.Fatal(err)
	}
	back, err := ParseFai(&fai)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != idx.Len() {
		t.Fatalf("fai round trip %d vs %d", back.Len(), idx.Len())
	}
	for i := range idx.Records {
		if back.Records[i] != idx.Records[i] {
			t.Fatalf("record %d: %+v vs %+v", i, back.Records[i], idx.Records[i])
		}
	}
}

func TestOpenIndexedWithAndWithoutFai(t *testing.T) {
	dir := t.TempDir()
	set := synth.RandomSet(alphabet.Protein, 8, 5, 120, 73)
	path := filepath.Join(dir, "db.fasta")
	var buf bytes.Buffer
	if err := WriteSet(&buf, set); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	// Without .fai: index built on the fly.
	f, err := OpenIndexed(path, alphabet.Protein)
	if err != nil {
		t.Fatal(err)
	}
	s, err := f.Sequence(3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(s.Residues, set.Seqs[3].Residues) {
		t.Fatal("residues differ (built index)")
	}
	// Persist the index and reopen.
	faif, err := os.Create(path + ".fai")
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Index().WriteFai(faif); err != nil {
		t.Fatal(err)
	}
	faif.Close()
	f.Close()
	f2, err := OpenIndexed(path, alphabet.Protein)
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	s2, err := f2.Sequence(3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(s2.Residues, set.Seqs[3].Residues) {
		t.Fatal("residues differ (fai index)")
	}
}

func TestBuildIndexRejectsIrregularLines(t *testing.T) {
	in := ">a\nARND\nAR\nARND\n"
	if _, err := BuildIndex(strings.NewReader(in)); err == nil {
		t.Fatal("short middle line must be rejected")
	}
	in2 := ">a\nAR\nARND\n"
	if _, err := BuildIndex(strings.NewReader(in2)); err == nil {
		t.Fatal("growing line must be rejected")
	}
}

func TestBuildIndexCRLF(t *testing.T) {
	in := ">a x\r\nARND\r\nAR\r\n>b\r\nCQ\r\n"
	idx, err := BuildIndex(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if idx.Records[0].Length != 6 || idx.Records[1].Length != 2 {
		t.Fatalf("lengths %+v", idx.Records)
	}
	f := NewIndexedFile(strings.NewReader(in), idx, alphabet.Protein)
	s, err := f.Sequence(0)
	if err != nil {
		t.Fatal(err)
	}
	if alphabet.Protein.DecodeString(s.Residues) != "ARNDAR" {
		t.Fatalf("CRLF residues %q", alphabet.Protein.DecodeString(s.Residues))
	}
}
