// Package alphabet defines residue alphabets for biological sequences and
// the dense integer encoding used by every alignment engine in this module.
//
// Sequences are stored as []byte of small residue codes (not ASCII). The
// protein alphabet follows the NCBIstdaa ordering commonly used by
// Smith-Waterman implementations: the 20 standard amino acids first, then
// the ambiguity codes B, Z, X and the terminator '*'. DNA and RNA alphabets
// cover the four bases plus N.
package alphabet

import (
	"fmt"
	"strings"
)

// Alphabet maps between ASCII residue letters and dense residue codes.
// The zero value is not useful; use one of the package-level alphabets or
// New.
type Alphabet struct {
	name    string
	letters string    // index = code, value = canonical letter
	codes   [256]int8 // index = ASCII byte, value = code or -1
	// cardinality of the "unambiguous" prefix (e.g. 20 for proteins):
	// synthetic generators draw only from this prefix.
	core int
}

// Unknown is returned by Code for letters outside the alphabet.
const Unknown = -1

// New builds an Alphabet from the canonical letter set. Lower-case input
// letters are accepted and fold to upper case. core is the number of leading
// letters considered unambiguous residues.
func New(name, letters string, core int) *Alphabet {
	if core < 0 || core > len(letters) {
		panic(fmt.Sprintf("alphabet: core %d out of range for %q", core, letters))
	}
	a := &Alphabet{name: name, letters: letters, core: core}
	for i := range a.codes {
		a.codes[i] = Unknown
	}
	for i := 0; i < len(letters); i++ {
		u := letters[i]
		a.codes[u] = int8(i)
		a.codes[lower(u)] = int8(i)
	}
	return a
}

func lower(b byte) byte {
	if b >= 'A' && b <= 'Z' {
		return b + 'a' - 'A'
	}
	return b
}

// Protein is the 25-letter protein alphabet used throughout: the 20 standard
// amino acids, ambiguity codes B (Asx), Z (Glx), X (any) and the stop '*'.
// The ordering matches the row/column ordering of the matrices in package
// scoring.
var Protein = New("protein", "ARNDCQEGHILKMFPSTWYVBZX*", 20)

// DNA is the nucleotide alphabet ACGT plus the ambiguity code N.
var DNA = New("dna", "ACGTN", 4)

// RNA is the nucleotide alphabet ACGU plus the ambiguity code N.
var RNA = New("rna", "ACGUN", 4)

// Name returns the alphabet's name.
func (a *Alphabet) Name() string { return a.name }

// Len returns the number of residue codes, including ambiguity codes.
func (a *Alphabet) Len() int { return len(a.letters) }

// Core returns the number of unambiguous residues (20 for proteins).
func (a *Alphabet) Core() int { return a.core }

// Letter returns the canonical ASCII letter for a residue code.
func (a *Alphabet) Letter(code byte) byte {
	if int(code) >= len(a.letters) {
		return '?'
	}
	return a.letters[code]
}

// Code returns the residue code for an ASCII letter, or Unknown.
func (a *Alphabet) Code(letter byte) int8 { return a.codes[letter] }

// Valid reports whether every byte of s is a letter of the alphabet.
func (a *Alphabet) Valid(s []byte) bool {
	for _, b := range s {
		if a.codes[b] == Unknown {
			return false
		}
	}
	return true
}

// Encode converts ASCII residues into dense codes. Letters outside the
// alphabet are reported as an error carrying the first offending byte and
// its position. Whitespace is not tolerated here; strip it upstream.
func (a *Alphabet) Encode(ascii []byte) ([]byte, error) {
	out := make([]byte, len(ascii))
	for i, b := range ascii {
		c := a.codes[b]
		if c == Unknown {
			return nil, &EncodeError{Alphabet: a.name, Letter: b, Pos: i}
		}
		out[i] = byte(c)
	}
	return out, nil
}

// MustEncode is Encode for trusted inputs (tests, literals); it panics on
// invalid letters.
func (a *Alphabet) MustEncode(s string) []byte {
	out, err := a.Encode([]byte(s))
	if err != nil {
		panic(err)
	}
	return out
}

// EncodeLossy converts ASCII residues into dense codes, mapping every
// unknown letter to the substitute code (typically X for proteins, N for
// nucleotides). It never fails and reports how many letters were replaced.
func (a *Alphabet) EncodeLossy(ascii []byte, substitute byte) (out []byte, replaced int) {
	out = make([]byte, len(ascii))
	for i, b := range ascii {
		c := a.codes[b]
		if c == Unknown {
			out[i] = substitute
			replaced++
			continue
		}
		out[i] = byte(c)
	}
	return out, replaced
}

// Decode converts dense codes back into ASCII letters.
func (a *Alphabet) Decode(codes []byte) []byte {
	out := make([]byte, len(codes))
	for i, c := range codes {
		out[i] = a.Letter(c)
	}
	return out
}

// DecodeString is Decode returning a string.
func (a *Alphabet) DecodeString(codes []byte) string { return string(a.Decode(codes)) }

// AnyCode returns the code of the catch-all ambiguity residue (X for
// proteins, N for nucleic alphabets) and true, or 0 and false if the
// alphabet has none.
func (a *Alphabet) AnyCode() (byte, bool) {
	switch a.name {
	case "protein":
		return byte(strings.IndexByte(a.letters, 'X')), true
	case "dna", "rna":
		return byte(strings.IndexByte(a.letters, 'N')), true
	}
	return 0, false
}

// EncodeError reports an input letter outside the alphabet.
type EncodeError struct {
	Alphabet string
	Letter   byte
	Pos      int
}

func (e *EncodeError) Error() string {
	return fmt.Sprintf("alphabet %s: invalid residue %q at position %d", e.Alphabet, e.Letter, e.Pos)
}
