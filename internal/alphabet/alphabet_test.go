package alphabet

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestProteinBasics(t *testing.T) {
	if Protein.Len() != 24 {
		t.Fatalf("protein alphabet has %d letters, want 24", Protein.Len())
	}
	if Protein.Core() != 20 {
		t.Fatalf("protein core %d, want 20", Protein.Core())
	}
	if Protein.Name() != "protein" {
		t.Fatalf("name %q", Protein.Name())
	}
	if c := Protein.Code('A'); c != 0 {
		t.Fatalf("code of A = %d, want 0", c)
	}
	if c := Protein.Code('a'); c != 0 {
		t.Fatalf("lowercase a = %d, want 0", c)
	}
	if c := Protein.Code('*'); c != 23 {
		t.Fatalf("code of * = %d, want 23", c)
	}
	if c := Protein.Code('J'); c != Unknown {
		t.Fatalf("code of J = %d, want Unknown", c)
	}
	if l := Protein.Letter(0); l != 'A' {
		t.Fatalf("letter(0) = %c", l)
	}
	if l := Protein.Letter(200); l != '?' {
		t.Fatalf("letter(200) = %c, want ?", l)
	}
}

func TestDNAAndRNA(t *testing.T) {
	if DNA.Len() != 5 || DNA.Core() != 4 {
		t.Fatalf("DNA %d/%d", DNA.Len(), DNA.Core())
	}
	if RNA.Code('U') == Unknown {
		t.Fatal("RNA should accept U")
	}
	if DNA.Code('U') != Unknown {
		t.Fatal("DNA should reject U")
	}
	n, ok := DNA.AnyCode()
	if !ok || DNA.Letter(n) != 'N' {
		t.Fatalf("DNA AnyCode -> %d/%v", n, ok)
	}
	x, ok := Protein.AnyCode()
	if !ok || Protein.Letter(x) != 'X' {
		t.Fatalf("protein AnyCode -> %d/%v", x, ok)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	in := []byte("ARNDCQEGHILKMFPSTWYVBZX*")
	enc, err := Protein.Encode(in)
	if err != nil {
		t.Fatal(err)
	}
	if got := Protein.Decode(enc); !bytes.Equal(got, in) {
		t.Fatalf("round trip %q != %q", got, in)
	}
	if got := Protein.DecodeString(enc); got != string(in) {
		t.Fatalf("DecodeString %q", got)
	}
}

func TestEncodeErrors(t *testing.T) {
	_, err := Protein.Encode([]byte("ARN!D"))
	ee, ok := err.(*EncodeError)
	if !ok {
		t.Fatalf("expected EncodeError, got %v", err)
	}
	if ee.Pos != 3 || ee.Letter != '!' {
		t.Fatalf("EncodeError %+v", ee)
	}
	if ee.Error() == "" {
		t.Fatal("empty error text")
	}
}

func TestEncodeLossy(t *testing.T) {
	x, _ := Protein.AnyCode()
	out, replaced := Protein.EncodeLossy([]byte("AR!ND?"), x)
	if replaced != 2 {
		t.Fatalf("replaced %d, want 2", replaced)
	}
	if out[2] != x || out[5] != x {
		t.Fatalf("substitutes not applied: %v", out)
	}
}

func TestValid(t *testing.T) {
	if !Protein.Valid([]byte("ARNDarnd")) {
		t.Fatal("mixed case should be valid")
	}
	if Protein.Valid([]byte("ARND5")) {
		t.Fatal("digit should be invalid")
	}
}

func TestMustEncodePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Protein.MustEncode("##")
}

// Property: Decode(Encode(x)) is the canonical upper-case form of any
// string drawn from alphabet letters.
func TestQuickRoundTrip(t *testing.T) {
	letters := "ARNDCQEGHILKMFPSTWYVBZX*"
	f := func(idx []byte) bool {
		in := make([]byte, len(idx))
		for i, b := range idx {
			in[i] = letters[int(b)%len(letters)]
		}
		enc, err := Protein.Encode(in)
		if err != nil {
			return false
		}
		return bytes.Equal(Protein.Decode(enc), in)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNewPanicsOnBadCore(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New("bad", "AB", 5)
}
