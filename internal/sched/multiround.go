package sched

import "fmt"

// MultiRound implements the paper's iterative allocation mode (§IV: the
// allocation "can be done only once at the beginning of the execution or
// iteratively until all tasks are executed"): tasks are released in
// batches; each round runs the dual approximation on the released batch
// with PEs carrying their accumulated loads from earlier rounds, which
// lets the master adapt to tasks arriving over time.
//
// rounds <= 1 degenerates to the one-round DualApprox.
func MultiRound(in *Instance, rounds int) (*Schedule, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if rounds <= 1 || len(in.Tasks) <= rounds {
		s, err := DualApprox(in)
		if err != nil {
			return nil, err
		}
		s.Algorithm = "multi-round(1)"
		return s, nil
	}
	out := NewSchedule(fmt.Sprintf("multi-round(%d)", rounds), in)
	per := (len(in.Tasks) + rounds - 1) / rounds
	for lo := 0; lo < len(in.Tasks); lo += per {
		hi := lo + per
		if hi > len(in.Tasks) {
			hi = len(in.Tasks)
		}
		// Schedule the batch in isolation, then append each PE's batch
		// sequence after its accumulated load.
		batch := &Instance{CPUs: in.CPUs, GPUs: in.GPUs}
		for i := lo; i < hi; i++ {
			t := in.Tasks[i]
			t.ID = i - lo
			batch.Tasks = append(batch.Tasks, t)
		}
		bs, err := DualApprox(batch)
		if err != nil {
			return nil, err
		}
		// Keep per-PE order of the batch schedule.
		type job struct {
			task  int
			start float64
		}
		perPE := map[[2]int][]job{}
		for _, pl := range bs.Placements {
			key := [2]int{int(pl.Kind), pl.PE}
			perPE[key] = append(perPE[key], job{task: lo + pl.Task, start: pl.Start})
		}
		for key, jobs := range perPE {
			for i := 1; i < len(jobs); i++ {
				for j := i; j > 0 && jobs[j].start < jobs[j-1].start; j-- {
					jobs[j], jobs[j-1] = jobs[j-1], jobs[j]
				}
			}
			for _, jb := range jobs {
				out.place(in, jb.task, Kind(key[0]), key[1])
			}
		}
	}
	return out, out.Verify(in)
}
