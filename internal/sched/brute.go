package sched

import (
	"fmt"
	"math"
)

// BruteForce computes the exact optimal makespan by depth-first search
// over all machine assignments with branch-and-bound pruning and symmetry
// breaking. It exists to verify the approximation guarantees in tests and
// refuses instances beyond a small size.
func BruteForce(in *Instance) (*Schedule, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	n := len(in.Tasks)
	machines := in.CPUs + in.GPUs
	if n > 12 || machines > 6 {
		return nil, fmt.Errorf("sched: brute force limited to <=12 tasks and <=6 PEs, got %d/%d", n, machines)
	}
	loads := make([]float64, machines)
	assign := make([]int, n)
	bestAssign := make([]int, n)
	best := math.Inf(1)
	// Seed with a feasible heuristic bound to prune early.
	if s, err := EFT(in); err == nil {
		best = s.Makespan + 1e-12
	}

	kindOf := func(mi int) Kind {
		if mi < in.CPUs {
			return CPU
		}
		return GPU
	}

	var dfs func(ti int, makespan float64)
	dfs = func(ti int, makespan float64) {
		if makespan >= best {
			return
		}
		if ti == n {
			best = makespan
			copy(bestAssign, assign)
			return
		}
		usedEmptyCPU, usedEmptyGPU := false, false
		for mi := 0; mi < machines; mi++ {
			kind := kindOf(mi)
			// Symmetry breaking: identical empty machines of one kind are
			// interchangeable; try only the first.
			if loads[mi] == 0 {
				if kind == CPU {
					if usedEmptyCPU {
						continue
					}
					usedEmptyCPU = true
				} else {
					if usedEmptyGPU {
						continue
					}
					usedEmptyGPU = true
				}
			}
			d := in.Tasks[ti].Time(kind)
			loads[mi] += d
			assign[ti] = mi
			dfs(ti+1, math.Max(makespan, loads[mi]))
			loads[mi] -= d
		}
	}
	dfs(0, 0)
	if math.IsInf(best, 1) {
		return nil, fmt.Errorf("sched: brute force found no schedule")
	}

	s := NewSchedule("brute-force", in)
	// Rebuild placements machine by machine in task order.
	for ti := 0; ti < n; ti++ {
		mi := bestAssign[ti]
		if mi < in.CPUs {
			s.place(in, ti, CPU, mi)
		} else {
			s.place(in, ti, GPU, mi-in.CPUs)
		}
	}
	return s, s.Verify(in)
}
