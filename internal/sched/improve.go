package sched

import (
	"fmt"
	"sort"
	"strings"
)

// Improve applies a makespan-descent local search to a schedule: move a
// task off a critical (makespan-defining) PE to wherever it finishes
// earliest, or swap it with a task on another PE, accepting only strict
// improvements. Because every accepted step reduces the makespan, any
// approximation guarantee of the input schedule is preserved. The
// returned schedule is rebuilt from the final assignment with tasks
// packed back-to-back per PE.
func Improve(in *Instance, s *Schedule) *Schedule {
	type slot struct {
		kind Kind
		pe   int
	}
	assign := make([]slot, len(in.Tasks))
	for i, pl := range s.Placements {
		assign[i] = slot{pl.Kind, pl.PE}
	}
	loads := func() (cpu, gpu []float64, makespan float64, critical slot) {
		cpu = make([]float64, in.CPUs)
		gpu = make([]float64, in.GPUs)
		for ti, sl := range assign {
			d := in.Tasks[ti].Time(sl.kind)
			if sl.kind == CPU {
				cpu[sl.pe] += d
			} else {
				gpu[sl.pe] += d
			}
		}
		for pe, l := range cpu {
			if l > makespan {
				makespan, critical = l, slot{CPU, pe}
			}
		}
		for pe, l := range gpu {
			if l > makespan {
				makespan, critical = l, slot{GPU, pe}
			}
		}
		return cpu, gpu, makespan, critical
	}

	for pass := 0; pass < 4*len(in.Tasks)+8; pass++ {
		cpu, gpu, makespan, crit := loads()
		improved := false
		// Tasks on the critical PE, longest first.
		var critTasks []int
		for ti, sl := range assign {
			if sl == crit {
				critTasks = append(critTasks, ti)
			}
		}
		sort.Slice(critTasks, func(a, b int) bool {
			return in.Tasks[critTasks[a]].Time(crit.kind) > in.Tasks[critTasks[b]].Time(crit.kind)
		})
		loadOf := func(sl slot) float64 {
			if sl.kind == CPU {
				return cpu[sl.pe]
			}
			return gpu[sl.pe]
		}
	moves:
		for _, ti := range critTasks {
			d := in.Tasks[ti].Time(crit.kind)
			// Move: does any other PE finish this task before the
			// current makespan, with the critical PE also dropping?
			try := func(dst slot) bool {
				if dst == crit {
					return false
				}
				nd := in.Tasks[ti].Time(dst.kind)
				newDst := loadOf(dst) + nd
				newCrit := makespan - d
				if newDst < makespan && newCrit < makespan {
					assign[ti] = dst
					return true
				}
				return false
			}
			for pe := 0; pe < in.CPUs; pe++ {
				if try(slot{CPU, pe}) {
					improved = true
					break moves
				}
			}
			for pe := 0; pe < in.GPUs; pe++ {
				if try(slot{GPU, pe}) {
					improved = true
					break moves
				}
			}
			// Swap with a task elsewhere.
			for tj, slj := range assign {
				if slj == crit {
					continue
				}
				dj := in.Tasks[tj].Time(slj.kind)
				newCrit := makespan - d + in.Tasks[tj].Time(crit.kind)
				newOther := loadOf(slj) - dj + in.Tasks[ti].Time(slj.kind)
				if newCrit < makespan && newOther < makespan {
					assign[ti], assign[tj] = slj, crit
					improved = true
					break moves
				}
			}
		}
		if !improved {
			break
		}
	}

	out := NewSchedule(s.Algorithm+"+ls", in)
	// Rebuild deterministically: per PE in task order.
	for ti, sl := range assign {
		out.place(in, ti, sl.kind, sl.pe)
	}
	if out.Makespan > s.Makespan {
		return s // defensive: never worsen
	}
	return out
}

// Gantt renders the schedule as a text Gantt chart with the given width
// in character cells, one row per PE.
func (s *Schedule) Gantt(in *Instance, width int) string {
	if width <= 10 {
		width = 72
	}
	if s.Makespan <= 0 {
		return "(empty schedule)\n"
	}
	scale := float64(width) / s.Makespan
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s: makespan %.3f, idle %.1f%%\n", s.Algorithm, s.Makespan, 100*s.IdleFraction())
	row := func(kind Kind, pe int) {
		cells := make([]byte, width)
		for i := range cells {
			cells[i] = '.'
		}
		for _, pl := range s.Placements {
			if pl.Kind != kind || pl.PE != pe {
				continue
			}
			lo := int(pl.Start * scale)
			hi := int(pl.End * scale)
			if hi > width {
				hi = width
			}
			mark := byte('a' + byte(pl.Task%26))
			for i := lo; i < hi; i++ {
				cells[i] = mark
			}
		}
		fmt.Fprintf(&sb, "%s%-2d |%s|\n", kind, pe, cells)
	}
	for pe := 0; pe < in.GPUs; pe++ {
		row(GPU, pe)
	}
	for pe := 0; pe < in.CPUs; pe++ {
		row(CPU, pe)
	}
	return sb.String()
}
