package sched

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestImproveNeverWorsens(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for iter := 0; iter < 80; iter++ {
		in := randInstance(rng, 30, 4, 4)
		base, err := SelfScheduling(in)
		if err != nil {
			t.Fatal(err)
		}
		improved := Improve(in, base)
		if err := improved.Verify(in); err != nil {
			t.Fatal(err)
		}
		if improved.Makespan > base.Makespan*(1+1e-12) {
			t.Fatalf("iter %d: improve worsened %g -> %g", iter, base.Makespan, improved.Makespan)
		}
	}
}

func TestImproveFixesObviousImbalance(t *testing.T) {
	// Two identical tasks stacked on one GPU while the other idles: one
	// move halves the makespan.
	in := &Instance{CPUs: 0, GPUs: 2, Tasks: []Task{
		{ID: 0, CPUTime: 100, GPUTime: 5},
		{ID: 1, CPUTime: 100, GPUTime: 5},
	}}
	s := NewSchedule("stacked", in)
	s.place(in, 0, GPU, 0)
	s.place(in, 1, GPU, 0)
	improved := Improve(in, s)
	if improved.Makespan != 5 {
		t.Fatalf("makespan %g, want 5", improved.Makespan)
	}
}

func TestImproveUsesSwaps(t *testing.T) {
	// {7,6} vs {5,4}: no single move helps (any move overloads the
	// target), but swapping 7 with 4 and then 7 with 6 descends
	// 13 -> 12 -> 11, the optimum.
	in := &Instance{CPUs: 0, GPUs: 2, Tasks: []Task{
		{ID: 0, GPUTime: 7, CPUTime: 1e9},
		{ID: 1, GPUTime: 6, CPUTime: 1e9},
		{ID: 2, GPUTime: 5, CPUTime: 1e9},
		{ID: 3, GPUTime: 4, CPUTime: 1e9},
	}}
	s := NewSchedule("bad", in)
	s.place(in, 0, GPU, 0)
	s.place(in, 1, GPU, 0)
	s.place(in, 2, GPU, 1)
	s.place(in, 3, GPU, 1)
	improved := Improve(in, s)
	if improved.Makespan > 11 {
		t.Fatalf("makespan %g after improve, want 11", improved.Makespan)
	}
}

func TestQuickImproveKeepsValidity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randInstance(rng, 15, 3, 3)
		s, err := EqualPower(in)
		if err != nil {
			return false
		}
		improved := Improve(in, s)
		return improved.Verify(in) == nil && improved.Makespan <= s.Makespan*(1+1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestGanttRendering(t *testing.T) {
	in := &Instance{CPUs: 1, GPUs: 1, Tasks: []Task{
		{ID: 0, CPUTime: 4, GPUTime: 2},
		{ID: 1, CPUTime: 4, GPUTime: 2},
	}}
	s, err := DualApprox(in)
	if err != nil {
		t.Fatal(err)
	}
	out := s.Gantt(in, 40)
	if !strings.Contains(out, "GPU0") || !strings.Contains(out, "CPU0") {
		t.Fatalf("gantt missing PE rows:\n%s", out)
	}
	if !strings.Contains(out, "makespan") {
		t.Fatal("gantt missing header")
	}
	empty := NewSchedule("empty", in)
	if !strings.Contains(empty.Gantt(in, 40), "empty") {
		t.Fatal("empty schedule rendering")
	}
}

func TestMultiRound(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	for iter := 0; iter < 30; iter++ {
		in := randInstance(rng, 40, 3, 3)
		one, err := MultiRound(in, 1)
		if err != nil {
			t.Fatal(err)
		}
		four, err := MultiRound(in, 4)
		if err != nil {
			t.Fatal(err)
		}
		if err := four.Verify(in); err != nil {
			t.Fatal(err)
		}
		// Multi-round trades optimality for adaptivity: it must stay
		// within a reasonable factor of one-round (batches are scheduled
		// greedily one after another).
		if four.Makespan > 3*one.Makespan {
			t.Fatalf("iter %d: 4-round makespan %g vs one-round %g", iter, four.Makespan, one.Makespan)
		}
	}
}

func TestMultiRoundDegenerate(t *testing.T) {
	in := &Instance{CPUs: 1, GPUs: 1, Tasks: []Task{{ID: 0, CPUTime: 2, GPUTime: 1}}}
	s, err := MultiRound(in, 10)
	if err != nil {
		t.Fatal(err)
	}
	if s.Makespan != 1 {
		t.Fatalf("makespan %g", s.Makespan)
	}
}
