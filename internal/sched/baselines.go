package sched

import (
	"math"
	"sort"
)

// The scheduling policies of the related work, used as comparison
// baselines in the ablation experiments (DESIGN.md E-A2).

// SelfScheduling implements the one-task-at-a-time strategy of [10]: an
// idle PE requests the next task in arrival order. It is simulated by
// repeatedly handing the next task to the PE that becomes idle first
// (GPUs win ties, as faster consumers do in a real master-slave run).
func SelfScheduling(in *Instance) (*Schedule, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	s := NewSchedule("self-scheduling", in)
	for ti := range in.Tasks {
		kind, pe := CPU, -1
		avail := math.Inf(1)
		if in.GPUs > 0 {
			g := leastLoaded(s.GPULoads)
			kind, pe, avail = GPU, g, s.GPULoads[g]
		}
		if in.CPUs > 0 {
			c := leastLoaded(s.CPULoads)
			if s.CPULoads[c] < avail {
				kind, pe = CPU, c
			}
		}
		s.place(in, ti, kind, pe)
	}
	return s, s.Verify(in)
}

// EqualPower implements the assumption of [11] that multi-cores and
// accelerators have the same processing power: tasks are dealt round-robin
// over every PE with no regard for speeds.
func EqualPower(in *Instance) (*Schedule, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	s := NewSchedule("equal-power", in)
	total := in.CPUs + in.GPUs
	for ti := range in.Tasks {
		slot := ti % total
		if slot < in.GPUs {
			s.place(in, ti, GPU, slot)
		} else {
			s.place(in, ti, CPU, slot-in.GPUs)
		}
	}
	return s, s.Verify(in)
}

// ProportionalPower implements the strategy of [12]: work is split between
// the pools proportionally to their theoretical computing power, here
// estimated from the mean CPU/GPU time ratio; each pool then
// list-schedules its share (largest tasks first).
func ProportionalPower(in *Instance) (*Schedule, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	s := NewSchedule("proportional-power", in)
	if in.GPUs == 0 || in.CPUs == 0 {
		order := lptOrder(in, kindFor(in))
		s.listSchedule(in, order, kindFor(in))
		return s, s.Verify(in)
	}
	ratio := 0.0
	for _, t := range in.Tasks {
		ratio += t.Ratio()
	}
	if len(in.Tasks) > 0 {
		ratio /= float64(len(in.Tasks))
	}
	gpuPower := float64(in.GPUs) * ratio
	share := gpuPower / (gpuPower + float64(in.CPUs))
	totalWork := 0.0
	for _, t := range in.Tasks {
		totalWork += t.CPUTime
	}
	// Largest CPU-work first; the GPU pool absorbs its proportional share.
	order := make([]int, len(in.Tasks))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return in.Tasks[order[a]].CPUTime > in.Tasks[order[b]].CPUTime
	})
	var gpuSet, cpuSet []int
	acc := 0.0
	for _, ti := range order {
		if acc < share*totalWork {
			gpuSet = append(gpuSet, ti)
			acc += in.Tasks[ti].CPUTime
		} else {
			cpuSet = append(cpuSet, ti)
		}
	}
	s.listSchedule(in, gpuSet, GPU)
	s.listSchedule(in, cpuSet, CPU)
	return s, s.Verify(in)
}

// CPUOnly schedules everything on the CPU pool with LPT list scheduling.
func CPUOnly(in *Instance) (*Schedule, error) {
	return singlePool(in, CPU, "cpu-only")
}

// GPUOnly schedules everything on the GPU pool with LPT list scheduling.
func GPUOnly(in *Instance) (*Schedule, error) {
	return singlePool(in, GPU, "gpu-only")
}

func singlePool(in *Instance, kind Kind, name string) (*Schedule, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	pool := in.CPUs
	if kind == GPU {
		pool = in.GPUs
	}
	if pool == 0 {
		return nil, errNoPool(kind)
	}
	s := NewSchedule(name, in)
	s.listSchedule(in, lptOrder(in, kind), kind)
	return s, s.Verify(in)
}

type errNoPool Kind

func (e errNoPool) Error() string { return "sched: no " + Kind(e).String() + "s in platform" }

// EFT is the earliest-finish-time greedy over both pools (largest
// min-time first) — the seed heuristic of the binary search, exposed as a
// baseline in its own right.
func EFT(in *Instance) (*Schedule, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	_, s := greedyUpperBound(in)
	s.Algorithm = "eft"
	return s, s.Verify(in)
}

func lptOrder(in *Instance, kind Kind) []int {
	order := make([]int, len(in.Tasks))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return in.Tasks[order[a]].Time(kind) > in.Tasks[order[b]].Time(kind)
	})
	return order
}

func kindFor(in *Instance) Kind {
	if in.CPUs > 0 {
		return CPU
	}
	return GPU
}

// Algorithms maps every scheduling policy by name, for harnesses.
var Algorithms = map[string]func(*Instance) (*Schedule, error){
	"dual-2approx":       DualApprox,
	"dual-3/2-dp":        DualApproxDP,
	"self-scheduling":    SelfScheduling,
	"equal-power":        EqualPower,
	"proportional-power": ProportionalPower,
	"eft":                EFT,
	"cpu-only":           CPUOnly,
	"gpu-only":           GPUOnly,
}
