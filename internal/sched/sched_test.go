package sched

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randInstance(rng *rand.Rand, maxTasks, maxCPUs, maxGPUs int) *Instance {
	in := &Instance{
		CPUs: 1 + rng.Intn(maxCPUs),
		GPUs: 1 + rng.Intn(maxGPUs),
	}
	n := 1 + rng.Intn(maxTasks)
	for i := 0; i < n; i++ {
		cpu := 0.1 + rng.Float64()*10
		// Mix of accelerated and decelerated tasks.
		speedup := 0.2 + rng.Float64()*8
		in.Tasks = append(in.Tasks, Task{ID: i, CPUTime: cpu, GPUTime: cpu / speedup})
	}
	return in
}

func TestDualApproxAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 120; iter++ {
		in := randInstance(rng, 8, 2, 2)
		opt, err := BruteForce(in)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DualApprox(in)
		if err != nil {
			t.Fatal(err)
		}
		if err := got.Verify(in); err != nil {
			t.Fatal(err)
		}
		if got.Makespan > 2*opt.Makespan*(1+1e-6) {
			t.Fatalf("iter %d: dual approx makespan %g > 2x optimal %g", iter, got.Makespan, opt.Makespan)
		}
		if got.Makespan < opt.Makespan*(1-1e-9) {
			t.Fatalf("iter %d: makespan %g beats the optimum %g — brute force or verify is broken", iter, got.Makespan, opt.Makespan)
		}
	}
}

func TestDualApproxDPAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for iter := 0; iter < 80; iter++ {
		in := randInstance(rng, 8, 2, 2)
		opt, err := BruteForce(in)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DualApproxDP(in)
		if err != nil {
			t.Fatal(err)
		}
		// Guarantee is 3/2 + n/Buckets.
		slack := 1.5 + float64(len(in.Tasks))/2048 + 1e-6
		if got.Makespan > slack*opt.Makespan {
			t.Fatalf("iter %d: DP makespan %g > %gx optimal %g", iter, got.Makespan, slack, opt.Makespan)
		}
	}
}

func TestDualStepNoAnswersAreSound(t *testing.T) {
	// Whenever DualStep answers NO for λ, the brute-force optimum must
	// exceed λ.
	rng := rand.New(rand.NewSource(9))
	for iter := 0; iter < 120; iter++ {
		in := randInstance(rng, 7, 2, 2)
		opt, err := BruteForce(in)
		if err != nil {
			t.Fatal(err)
		}
		for _, frac := range []float64{0.5, 0.8, 0.95, 1.0, 1.1} {
			lambda := opt.Makespan * frac
			res := DualStep(in, lambda)
			if !res.OK && lambda >= opt.Makespan*(1+1e-9) {
				t.Fatalf("iter %d: NO for λ=%g >= OPT=%g", iter, lambda, opt.Makespan)
			}
			if res.OK {
				if err := res.Schedule.Verify(in); err != nil {
					t.Fatal(err)
				}
				if res.Schedule.Makespan > 2*lambda*(1+1e-9) {
					t.Fatalf("iter %d: accepted λ=%g but makespan %g > 2λ", iter, lambda, res.Schedule.Makespan)
				}
			}
		}
	}
}

func TestDualStepDPNoAnswersAreSound(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	dpo := DPOptions{}
	for iter := 0; iter < 80; iter++ {
		in := randInstance(rng, 7, 2, 2)
		opt, err := BruteForce(in)
		if err != nil {
			t.Fatal(err)
		}
		for _, frac := range []float64{0.6, 0.9, 1.0, 1.2} {
			lambda := opt.Makespan * frac
			res := DualStepDP(in, lambda, dpo)
			if !res.OK && lambda >= opt.Makespan*(1+1e-9) {
				t.Fatalf("iter %d: DP NO for λ=%g >= OPT=%g", iter, lambda, opt.Makespan)
			}
			if res.OK {
				if err := res.Schedule.Verify(in); err != nil {
					t.Fatal(err)
				}
				slack := 1.5 + float64(len(in.Tasks))/float64(2048) + 1e-6
				if res.Schedule.Makespan > slack*lambda {
					t.Fatalf("iter %d: accepted λ=%g but makespan %g > %gλ", iter, lambda, res.Schedule.Makespan, slack)
				}
			}
		}
	}
}

func TestBaselinesProduceValidSchedules(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 60; iter++ {
		in := randInstance(rng, 20, 4, 4)
		lb := LowerBound(in)
		for name, algo := range Algorithms {
			s, err := algo(in)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if err := s.Verify(in); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if s.Makespan < lb*(1-1e-9) {
				t.Fatalf("%s: makespan %g below lower bound %g", name, s.Makespan, lb)
			}
		}
	}
}

func TestDualApproxWithinTwiceLowerBound(t *testing.T) {
	// On larger instances brute force is unavailable; the certified lower
	// bound still witnesses the 2-approximation.
	rng := rand.New(rand.NewSource(12))
	for iter := 0; iter < 40; iter++ {
		in := randInstance(rng, 200, 8, 8)
		s, err := DualApprox(in)
		if err != nil {
			t.Fatal(err)
		}
		if lb := LowerBound(in); s.Makespan > 2*lb*(1+1e-6) {
			t.Fatalf("iter %d: makespan %g > 2x lower bound %g", iter, s.Makespan, lb)
		}
	}
}

func TestDualApproxBeatsBaselinesOnHeterogeneousTasks(t *testing.T) {
	// The paper's setting: tasks strongly accelerated on GPU, few GPUs,
	// many CPU-bound stragglers; the dual approximation should not lose
	// to equal-power round-robin.
	rng := rand.New(rand.NewSource(13))
	worse := 0
	for iter := 0; iter < 50; iter++ {
		in := &Instance{CPUs: 4, GPUs: 4}
		for i := 0; i < 40; i++ {
			cpu := 1 + rng.Float64()*50
			in.Tasks = append(in.Tasks, Task{ID: i, CPUTime: cpu, GPUTime: cpu / 3})
		}
		dual, err := DualApprox(in)
		if err != nil {
			t.Fatal(err)
		}
		eq, err := EqualPower(in)
		if err != nil {
			t.Fatal(err)
		}
		if dual.Makespan > eq.Makespan*(1+1e-9) {
			worse++
		}
	}
	if worse > 5 {
		t.Fatalf("dual approx lost to equal-power on %d/50 heterogeneous instances", worse)
	}
}

func TestIdleTimeAccounting(t *testing.T) {
	in := &Instance{CPUs: 1, GPUs: 1, Tasks: []Task{
		{ID: 0, CPUTime: 4, GPUTime: 2},
		{ID: 1, CPUTime: 4, GPUTime: 2},
	}}
	s := NewSchedule("manual", in)
	s.place(in, 0, CPU, 0)
	s.place(in, 1, GPU, 0)
	if s.Makespan != 4 {
		t.Fatalf("makespan %g want 4", s.Makespan)
	}
	if got := s.IdleTime(); math.Abs(got-2) > 1e-12 {
		t.Fatalf("idle time %g want 2", got)
	}
	if got := s.IdleFraction(); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("idle fraction %g want 0.25", got)
	}
}

func TestLowerBoundIsValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randInstance(rng, 7, 2, 2)
		opt, err := BruteForce(in)
		if err != nil {
			return false
		}
		return LowerBound(in) <= opt.Makespan*(1+1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDualApproxInvariant(t *testing.T) {
	// Property: for arbitrary instances the dual approximation yields a
	// valid schedule within 2x the certified lower bound... the guarantee
	// is against OPT, but OPT >= LowerBound so 2x OPT may exceed 2x LB;
	// we check against brute force when small, LB*2 slack otherwise.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randInstance(rng, 10, 2, 2)
		s, err := DualApprox(in)
		if err != nil {
			return false
		}
		if err := s.Verify(in); err != nil {
			return false
		}
		opt, err := BruteForce(in)
		if err != nil {
			return false
		}
		return s.Makespan <= 2*opt.Makespan*(1+1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyAndDegenerateInstances(t *testing.T) {
	empty := &Instance{CPUs: 2, GPUs: 2}
	s, err := DualApprox(empty)
	if err != nil {
		t.Fatal(err)
	}
	if s.Makespan != 0 {
		t.Fatalf("empty instance makespan %g", s.Makespan)
	}
	single := &Instance{CPUs: 1, GPUs: 0, Tasks: []Task{{ID: 0, CPUTime: 3, GPUTime: 1}}}
	s, err = DualApprox(single)
	if err != nil {
		t.Fatal(err)
	}
	if s.Makespan != 3 {
		t.Fatalf("single CPU makespan %g want 3", s.Makespan)
	}
	if _, err := DualApprox(&Instance{CPUs: 0, GPUs: 0}); err == nil {
		t.Fatal("expected error for platform with no PEs")
	}
}

func TestGPUOnlyAndCPUOnly(t *testing.T) {
	in := &Instance{CPUs: 2, GPUs: 2, Tasks: []Task{
		{ID: 0, CPUTime: 6, GPUTime: 1},
		{ID: 1, CPUTime: 6, GPUTime: 1},
		{ID: 2, CPUTime: 6, GPUTime: 1},
		{ID: 3, CPUTime: 6, GPUTime: 1},
	}}
	gpu, err := GPUOnly(in)
	if err != nil {
		t.Fatal(err)
	}
	if gpu.Makespan != 2 {
		t.Fatalf("gpu-only makespan %g want 2", gpu.Makespan)
	}
	cpu, err := CPUOnly(in)
	if err != nil {
		t.Fatal(err)
	}
	if cpu.Makespan != 12 {
		t.Fatalf("cpu-only makespan %g want 12", cpu.Makespan)
	}
}
