// Package sched implements the paper's core contribution: scheduling
// independent tasks on a hybrid platform of m CPUs and k GPUs to minimize
// makespan, using the dual-approximation technique of Hochbaum & Shmoys
// ([15]). The 2-approximation of §III (greedy minimization knapsack +
// list scheduling inside a binary search on the guess λ) is DualApprox;
// the dynamic-programming refinement sketched from [13] is DualApproxDP.
// The baseline policies of the related work ([10] self-scheduling, [11]
// equal power, [12] proportional power) are provided for comparison.
package sched

import (
	"fmt"
	"math"
	"sort"
)

// Kind distinguishes the two processing-element pools.
type Kind int

// The two PE kinds of the hybrid platform.
const (
	CPU Kind = iota
	GPU
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	if k == CPU {
		return "CPU"
	}
	return "GPU"
}

// Task is one schedulable unit: in SWDUAL, the comparison of one query
// sequence against the whole database. CPUTime is p_j and GPUTime is the
// paper's overlined p_j.
type Task struct {
	ID      int
	Label   string
	CPUTime float64
	GPUTime float64
}

// Time returns the task's processing time on a PE kind.
func (t Task) Time(k Kind) float64 {
	if k == CPU {
		return t.CPUTime
	}
	return t.GPUTime
}

// Ratio returns p_j / overline{p_j}, the greedy knapsack priority: tasks
// with the best relative GPU speedup come first.
func (t Task) Ratio() float64 {
	if t.GPUTime <= 0 {
		return math.Inf(1)
	}
	return t.CPUTime / t.GPUTime
}

// Instance is a scheduling problem: n tasks on m CPUs and k GPUs.
type Instance struct {
	Tasks []Task
	CPUs  int // m
	GPUs  int // k
}

// Validate reports structural errors.
func (in *Instance) Validate() error {
	if in.CPUs < 0 || in.GPUs < 0 || in.CPUs+in.GPUs == 0 {
		return fmt.Errorf("sched: platform needs at least one PE (m=%d k=%d)", in.CPUs, in.GPUs)
	}
	for _, t := range in.Tasks {
		if t.CPUTime < 0 || t.GPUTime < 0 {
			return fmt.Errorf("sched: task %d has negative time", t.ID)
		}
		if in.CPUs == 0 && t.GPUTime == 0 && t.CPUTime > 0 {
			return fmt.Errorf("sched: task %d cannot run anywhere", t.ID)
		}
	}
	return nil
}

// Placement is one scheduled task.
type Placement struct {
	Task  int // index into Instance.Tasks
	Kind  Kind
	PE    int // index within the kind's pool
	Start float64
	End   float64
}

// Schedule is a complete solution.
type Schedule struct {
	Algorithm  string
	Placements []Placement // in Instance.Tasks order
	Makespan   float64
	CPULoads   []float64
	GPULoads   []float64
}

// NewSchedule allocates an empty schedule for an instance.
func NewSchedule(algorithm string, in *Instance) *Schedule {
	return &Schedule{
		Algorithm:  algorithm,
		Placements: make([]Placement, len(in.Tasks)),
		CPULoads:   make([]float64, in.CPUs),
		GPULoads:   make([]float64, in.GPUs),
	}
}

// place appends a task at the end of a PE's current load.
func (s *Schedule) place(in *Instance, task int, kind Kind, pe int) {
	loads := s.CPULoads
	if kind == GPU {
		loads = s.GPULoads
	}
	d := in.Tasks[task].Time(kind)
	s.Placements[task] = Placement{Task: task, Kind: kind, PE: pe, Start: loads[pe], End: loads[pe] + d}
	loads[pe] += d
	if loads[pe] > s.Makespan {
		s.Makespan = loads[pe]
	}
}

// leastLoaded returns the index of the least-loaded PE in the pool.
func leastLoaded(loads []float64) int {
	best := 0
	for i := 1; i < len(loads); i++ {
		if loads[i] < loads[best] {
			best = i
		}
	}
	return best
}

// listSchedule assigns tasks (given as indexes, in order) to the
// least-loaded PE of the kind's pool — the paper's list scheduling step.
func (s *Schedule) listSchedule(in *Instance, tasks []int, kind Kind) {
	loads := s.CPULoads
	if kind == GPU {
		loads = s.GPULoads
	}
	for _, ti := range tasks {
		s.place(in, ti, kind, leastLoaded(loads))
	}
}

// IdleTime returns the summed idle time across all PEs under this
// schedule's makespan — the quantity the paper reports as "almost no idle
// time" for SWDUAL.
func (s *Schedule) IdleTime() float64 {
	idle := 0.0
	for _, l := range s.CPULoads {
		idle += s.Makespan - l
	}
	for _, l := range s.GPULoads {
		idle += s.Makespan - l
	}
	return idle
}

// IdleFraction returns idle time as a fraction of total PE-time.
func (s *Schedule) IdleFraction() float64 {
	pes := len(s.CPULoads) + len(s.GPULoads)
	if pes == 0 || s.Makespan == 0 {
		return 0
	}
	return s.IdleTime() / (float64(pes) * s.Makespan)
}

// Verify checks structural soundness against the instance: every task
// placed exactly once on an existing PE, durations consistent, no overlap
// on any PE, loads and makespan consistent.
func (s *Schedule) Verify(in *Instance) error {
	if len(s.Placements) != len(in.Tasks) {
		return fmt.Errorf("sched: %d placements for %d tasks", len(s.Placements), len(in.Tasks))
	}
	type peKey struct {
		kind Kind
		pe   int
	}
	byPE := map[peKey][]Placement{}
	for i, p := range s.Placements {
		if p.Task != i {
			return fmt.Errorf("sched: placement %d refers to task %d", i, p.Task)
		}
		pool := in.CPUs
		if p.Kind == GPU {
			pool = in.GPUs
		}
		if p.PE < 0 || p.PE >= pool {
			return fmt.Errorf("sched: task %d on %v %d outside pool of %d", i, p.Kind, p.PE, pool)
		}
		want := in.Tasks[i].Time(p.Kind)
		if diff := math.Abs((p.End - p.Start) - want); diff > 1e-9*(1+want) {
			return fmt.Errorf("sched: task %d duration %g, want %g", i, p.End-p.Start, want)
		}
		if p.End > s.Makespan+1e-9 {
			return fmt.Errorf("sched: task %d ends at %g beyond makespan %g", i, p.End, s.Makespan)
		}
		byPE[peKey{p.Kind, p.PE}] = append(byPE[peKey{p.Kind, p.PE}], p)
	}
	for key, ps := range byPE {
		sort.Slice(ps, func(a, b int) bool { return ps[a].Start < ps[b].Start })
		for i := 1; i < len(ps); i++ {
			if ps[i].Start < ps[i-1].End-1e-9 {
				return fmt.Errorf("sched: overlap on %v %d between tasks %d and %d", key.kind, key.pe, ps[i-1].Task, ps[i].Task)
			}
		}
	}
	return nil
}

// LowerBound returns a certified lower bound on the optimal makespan:
// the larger of (a) the biggest per-task minimum time — some PE must run
// every task — and (b) total minimum work spread over all PEs.
func LowerBound(in *Instance) float64 {
	lbMax := 0.0
	work := 0.0
	for _, t := range in.Tasks {
		mt := t.CPUTime
		if in.CPUs == 0 || (in.GPUs > 0 && t.GPUTime < mt) {
			mt = t.GPUTime
		}
		if mt > lbMax {
			lbMax = mt
		}
		work += mt
	}
	lbArea := work / float64(in.CPUs+in.GPUs)
	return math.Max(lbMax, lbArea)
}

// AreaLowerBound returns the refined area bound used to seed the binary
// search: the fractional knapsack split of work between the pools.
func AreaLowerBound(in *Instance) float64 {
	// Fractional relaxation: tasks sorted by ratio, GPU pool absorbs the
	// best-accelerated work first. We binary search the smallest λ for
	// which the fractional assignment fits; this is cheap and dominated
	// by LowerBound anyway, so LowerBound(in) is the seed in practice.
	return LowerBound(in)
}
