package sched

import (
	"fmt"
	"math"
	"sort"
)

// DualResult reports the outcome of one dual-approximation step.
type DualResult struct {
	// OK is false when the step proved no schedule of length <= λ exists.
	OK       bool
	Schedule *Schedule
}

// DualStep runs one step of the paper's §III algorithm for guess λ:
//
//  1. Tasks that fit neither pool under λ make the answer "NO".
//  2. Tasks with p_j > λ are forced to the GPUs, tasks with
//     overline{p_j} > λ are forced to the CPUs.
//  3. Remaining tasks are sorted by decreasing p_j/overline{p_j} and the
//     greedy minimization knapsack fills the GPUs until their
//     computational area first exceeds kλ (the overshooting task is the
//     paper's j_last).
//  4. Everything else goes to the CPUs; if the CPU area exceeds mλ the
//     answer is "NO" (by the knapsack argument no λ-schedule exists).
//  5. Otherwise both pools are list-scheduled, with j_last placed last on
//     the GPUs, yielding makespan <= 2λ (Proposition 1).
func DualStep(in *Instance, lambda float64) DualResult {
	m, k := in.CPUs, in.GPUs
	var gpuForced, cpuForced, flexible []int
	for i, t := range in.Tasks {
		cpuFits := m > 0 && t.CPUTime <= lambda
		gpuFits := k > 0 && t.GPUTime <= lambda
		switch {
		case !cpuFits && !gpuFits:
			return DualResult{OK: false}
		case !cpuFits:
			gpuForced = append(gpuForced, i)
		case !gpuFits:
			cpuForced = append(cpuForced, i)
		default:
			flexible = append(flexible, i)
		}
	}
	sort.SliceStable(flexible, func(a, b int) bool {
		return in.Tasks[flexible[a]].Ratio() > in.Tasks[flexible[b]].Ratio()
	})

	gpuArea := 0.0
	for _, ti := range gpuForced {
		gpuArea += in.Tasks[ti].GPUTime
	}
	if gpuArea > float64(k)*lambda+1e-12 {
		// Forced GPU work alone violates constraint (C2): no λ-schedule.
		return DualResult{OK: false}
	}
	gpuSet := append([]int(nil), gpuForced...)
	jlast := -1
	rest := flexible
	for len(rest) > 0 && gpuArea <= float64(k)*lambda {
		ti := rest[0]
		rest = rest[1:]
		gpuSet = append(gpuSet, ti)
		gpuArea += in.Tasks[ti].GPUTime
		if gpuArea > float64(k)*lambda {
			jlast = ti
		}
	}
	cpuSet := append([]int(nil), cpuForced...)
	cpuSet = append(cpuSet, rest...)
	cpuArea := 0.0
	for _, ti := range cpuSet {
		cpuArea += in.Tasks[ti].CPUTime
	}
	if cpuArea > float64(m)*lambda+1e-12 {
		// W_C > mλ: the greedy knapsack is a lower bound on the minimum
		// CPU workload of any assignment satisfying (C2), so no schedule
		// of length λ exists.
		return DualResult{OK: false}
	}

	s := NewSchedule("dual-2approx", in)
	// GPUs: list-schedule with j_last strictly last (the proof's case
	// analysis relies on it not influencing the other tasks).
	if jlast >= 0 {
		ordered := make([]int, 0, len(gpuSet))
		for _, ti := range gpuSet {
			if ti != jlast {
				ordered = append(ordered, ti)
			}
		}
		ordered = append(ordered, jlast)
		gpuSet = ordered
	}
	s.listSchedule(in, gpuSet, GPU)
	s.listSchedule(in, cpuSet, CPU)
	return DualResult{OK: true, Schedule: s}
}

// BinarySearchOptions tunes the dual-approximation binary search.
type BinarySearchOptions struct {
	// MaxIters bounds the number of guesses (default 64).
	MaxIters int
	// RelTol stops the search once (hi-lo)/hi falls below it (default 1e-6).
	RelTol float64
}

func (o *BinarySearchOptions) defaults() {
	if o.MaxIters <= 0 {
		o.MaxIters = 64
	}
	if o.RelTol <= 0 {
		o.RelTol = 1e-6
	}
}

// DualApprox runs the complete §III algorithm: a binary search on the
// guess λ between a certified lower bound and a greedy upper bound,
// keeping the best schedule any accepted step produced. The returned
// schedule has makespan at most 2·OPT (up to the search tolerance).
func DualApprox(in *Instance) (*Schedule, error) {
	return DualApproxOpt(in, BinarySearchOptions{})
}

// DualApproxOpt is DualApprox with explicit search options.
func DualApproxOpt(in *Instance, opt BinarySearchOptions) (*Schedule, error) {
	return dualSearch(in, opt, DualStep, "dual-2approx")
}

// dualSearch factors the binary search shared by the greedy and DP steps.
func dualSearch(in *Instance, opt BinarySearchOptions, step func(*Instance, float64) DualResult, name string) (*Schedule, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if len(in.Tasks) == 0 {
		s := NewSchedule(name, in)
		return s, nil
	}
	opt.defaults()
	lo := LowerBound(in)
	hi, seed := greedyUpperBound(in)
	best := seed
	if lo <= 0 {
		lo = math.SmallestNonzeroFloat64
	}
	// The seed schedule's makespan is a valid guess that must succeed, so
	// the invariant "hi always admits a schedule" holds from the start.
	for iter := 0; iter < opt.MaxIters && (hi-lo) > opt.RelTol*hi; iter++ {
		mid := (lo + hi) / 2
		res := step(in, mid)
		if !res.OK {
			lo = mid
			continue
		}
		hi = mid
		if res.Schedule.Makespan < best.Makespan {
			best = res.Schedule
		}
	}
	// The descent local search only ever reduces the makespan, so the
	// dual-approximation guarantee is preserved while the paper's "almost
	// no idle time" property improves further.
	best = Improve(in, best)
	best.Algorithm = name
	if err := best.Verify(in); err != nil {
		return nil, fmt.Errorf("sched: %s produced an invalid schedule: %w", name, err)
	}
	return best, nil
}

// greedyUpperBound builds a feasible schedule with earliest-finish-time
// list scheduling over both pools (tasks in decreasing best-case time),
// returning its makespan as the initial upper bound.
func greedyUpperBound(in *Instance) (float64, *Schedule) {
	order := make([]int, len(in.Tasks))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return minTime(in, order[a]) > minTime(in, order[b])
	})
	s := NewSchedule("eft-seed", in)
	for _, ti := range order {
		t := in.Tasks[ti]
		bestKind, bestPE, bestEnd := Kind(-1), -1, math.Inf(1)
		if in.CPUs > 0 {
			pe := leastLoaded(s.CPULoads)
			if end := s.CPULoads[pe] + t.CPUTime; end < bestEnd {
				bestKind, bestPE, bestEnd = CPU, pe, end
			}
		}
		if in.GPUs > 0 {
			pe := leastLoaded(s.GPULoads)
			if end := s.GPULoads[pe] + t.GPUTime; end < bestEnd {
				bestKind, bestPE, _ = GPU, pe, end
			}
		}
		s.place(in, ti, bestKind, bestPE)
	}
	return s.Makespan, s
}

func minTime(in *Instance, ti int) float64 {
	t := in.Tasks[ti]
	if in.GPUs == 0 {
		return t.CPUTime
	}
	if in.CPUs == 0 {
		return t.GPUTime
	}
	return math.Min(t.CPUTime, t.GPUTime)
}
