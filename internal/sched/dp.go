package sched

import (
	"math"
)

// The dynamic-programming dual step refines the greedy knapsack following
// the structure of the companion paper [13]: for a guess λ, a task is
// "big" on a PE kind when its processing time there exceeds λ/2 (a
// λ-schedule fits at most one big task per PE, so at most k big tasks on
// the GPUs and m on the CPUs — necessary conditions the DP enforces in
// addition to the area constraints (C1)/(C2)). Among assignments meeting
// all four necessary conditions the DP minimizes the CPU area exactly (up
// to area discretization), and the constructive phase places one big task
// per PE before list-scheduling the small ones, which yields makespan
// <= (3/2 + ε)·λ with ε = n/Buckets (see EXPERIMENTS.md ablation E-A2).

// DPOptions tunes DualStepDP.
type DPOptions struct {
	// Buckets discretizes the GPU area axis (default 2048). The guarantee
	// slack ε is n/Buckets.
	Buckets int
	// MaxStates caps the DP table size; above it DualStepDP falls back to
	// the greedy DualStep (the paper's special case already achieves the
	// guarantee for uniformly accelerated tasks).
	MaxStates int
}

func (o *DPOptions) defaults() {
	if o.Buckets <= 0 {
		o.Buckets = 2048
	}
	if o.MaxStates <= 0 {
		o.MaxStates = 8 << 20
	}
}

// DualApproxDP runs the binary search with the DP refinement step.
func DualApproxDP(in *Instance) (*Schedule, error) {
	return DualApproxDPOpt(in, BinarySearchOptions{}, DPOptions{})
}

// DualApproxDPOpt is DualApproxDP with explicit options.
func DualApproxDPOpt(in *Instance, opt BinarySearchOptions, dpo DPOptions) (*Schedule, error) {
	dpo.defaults()
	step := func(in *Instance, lambda float64) DualResult {
		return DualStepDP(in, lambda, dpo)
	}
	return dualSearch(in, opt, step, "dual-3/2-dp")
}

// DualStepDP is one dual-approximation step using the DP assignment.
func DualStepDP(in *Instance, lambda float64, dpo DPOptions) DualResult {
	dpo.defaults()
	m, k := in.CPUs, in.GPUs
	states := (k + 1) * (m + 1) * (dpo.Buckets + 1)
	if states > dpo.MaxStates {
		return DualStep(in, lambda)
	}
	if m == 0 || k == 0 {
		// Single-pool platforms: the greedy step already handles them.
		return DualStep(in, lambda)
	}
	half := lambda / 2
	budget := float64(k) * lambda
	bucketOf := func(gpuTime float64) int {
		// Floor keeps "NO" answers sound: underestimating areas only
		// admits more assignments.
		return int(gpuTime / budget * float64(dpo.Buckets))
	}

	// Forced assignments first.
	var flexible []int
	baseCPUArea := 0.0
	bigCPU0, bigGPU0, gpuB0 := 0, 0, 0
	for i, t := range in.Tasks {
		cpuFits := t.CPUTime <= lambda
		gpuFits := t.GPUTime <= lambda
		switch {
		case !cpuFits && !gpuFits:
			return DualResult{OK: false}
		case !cpuFits:
			gpuB0 += bucketOf(t.GPUTime)
			if t.GPUTime > half {
				bigGPU0++
			}
		case !gpuFits:
			baseCPUArea += t.CPUTime
			if t.CPUTime > half {
				bigCPU0++
			}
		default:
			flexible = append(flexible, i)
		}
	}
	if bigGPU0 > k || bigCPU0 > m || gpuB0 > dpo.Buckets {
		return DualResult{OK: false}
	}

	// DP over (bigGPU, bigCPU, gpuBucket) -> min additional CPU area.
	bStride := dpo.Buckets + 1
	cStride := (m + 1) * bStride
	idx := func(bg, bc, gb int) int { return bg*cStride + bc*bStride + gb }
	cur := make([]float64, states)
	next := make([]float64, states)
	for i := range cur {
		cur[i] = math.Inf(1)
	}
	cur[idx(bigGPU0, bigCPU0, gpuB0)] = 0
	choices := make([][]uint8, len(flexible)) // 1 = CPU, 2 = GPU
	for fi, ti := range flexible {
		t := in.Tasks[ti]
		tb := bucketOf(t.GPUTime)
		dBigG, dBigC := 0, 0
		if t.GPUTime > half {
			dBigG = 1
		}
		if t.CPUTime > half {
			dBigC = 1
		}
		choice := make([]uint8, states)
		for i := range next {
			next[i] = math.Inf(1)
		}
		for bg := 0; bg <= k; bg++ {
			for bc := 0; bc <= m; bc++ {
				for gb := 0; gb <= dpo.Buckets; gb++ {
					v := cur[idx(bg, bc, gb)]
					if math.IsInf(v, 1) {
						continue
					}
					// CPU choice.
					if bc+dBigC <= m {
						ni := idx(bg, bc+dBigC, gb)
						if nv := v + t.CPUTime; nv < next[ni] {
							next[ni] = nv
							choice[ni] = 1
						}
					}
					// GPU choice.
					if bg+dBigG <= k && gb+tb <= dpo.Buckets {
						ni := idx(bg+dBigG, bc, gb+tb)
						if v < next[ni] {
							next[ni] = v
							choice[ni] = 2
						}
					}
				}
			}
		}
		choices[fi] = choice
		cur, next = next, cur
	}

	// Find a feasible terminal state: CPU area within mλ.
	bestState, bestArea := -1, math.Inf(1)
	for s, v := range cur {
		if v+baseCPUArea <= float64(m)*lambda+1e-9 && v < bestArea {
			bestArea = v
			bestState = s
		}
	}
	if bestState < 0 {
		return DualResult{OK: false}
	}

	// Reconstruct the flexible assignments by walking the choice layers
	// backwards.
	onGPU := make(map[int]bool, len(in.Tasks))
	state := bestState
	for fi := len(flexible) - 1; fi >= 0; fi-- {
		ti := flexible[fi]
		t := in.Tasks[ti]
		bg := state / cStride
		bc := (state % cStride) / bStride
		gb := state % bStride
		switch choices[fi][state] {
		case 1:
			onGPU[ti] = false
			if t.CPUTime > half {
				bc--
			}
		case 2:
			onGPU[ti] = true
			if t.GPUTime > half {
				bg--
			}
			gb -= bucketOf(t.GPUTime)
		default:
			// Unreachable state in reconstruction indicates a bug.
			return DualResult{OK: false}
		}
		state = idx(bg, bc, gb)
	}

	// Assemble the task sets including forced tasks.
	var gpuBig, gpuSmall, cpuBig, cpuSmall []int
	for i, t := range in.Tasks {
		gpu := false
		if t.CPUTime > lambda {
			gpu = true
		} else if t.GPUTime <= lambda {
			g, seen := onGPU[i]
			if !seen {
				// Flexible task missing from reconstruction: impossible.
				return DualResult{OK: false}
			}
			gpu = g
		}
		switch {
		case gpu && t.GPUTime > half:
			gpuBig = append(gpuBig, i)
		case gpu:
			gpuSmall = append(gpuSmall, i)
		case t.CPUTime > half:
			cpuBig = append(cpuBig, i)
		default:
			cpuSmall = append(cpuSmall, i)
		}
	}

	// Constructive phase: one big task per PE, then list-schedule the
	// small ones onto the least-loaded PE.
	s := NewSchedule("dual-3/2-dp", in)
	for i, ti := range gpuBig {
		s.place(in, ti, GPU, i)
	}
	for i, ti := range cpuBig {
		s.place(in, ti, CPU, i)
	}
	s.listSchedule(in, gpuSmall, GPU)
	s.listSchedule(in, cpuSmall, CPU)
	return DualResult{OK: true, Schedule: s}
}
