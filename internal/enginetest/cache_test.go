package enginetest

import (
	"bytes"
	"context"
	"testing"
	"time"

	"swdual/internal/alphabet"
	"swdual/internal/engine"
	"swdual/internal/master"
	"swdual/internal/seq"
	"swdual/internal/sw"
	"swdual/internal/synth"
)

// TestCachedSearcherMatchesOneShot is the caching equivalence proof at
// the cross-check layer: a Searcher with the result cache and request
// collapsing on must stay byte-identical to the seed's
// build-everything-per-call master — on the cold miss, on warm hits,
// and when distinct query sets interleave so cache entries compete.
func TestCachedSearcherMatchesOneShot(t *testing.T) {
	db := synth.RandomSet(alphabet.Protein, 50, 10, 180, 95)
	params := sw.DefaultParams()
	for _, policy := range []master.Policy{
		master.PolicyDualApprox, master.PolicySelfScheduling,
	} {
		s, err := engine.New(db, engine.Config{
			Params: params, CPUs: 2, GPUs: 1, TopK: 5, Policy: policy,
			BatchWindow: time.Millisecond, Cache: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		const sets = 3
		querySets := make([]*seq.Set, sets)
		oneShot := make([][]byte, sets)
		for i := range querySets {
			querySets[i] = synth.RandomSet(alphabet.Protein, 6, 20, 110, int64(900+i))
			m, err := master.New(db, querySets[i], master.BuildWorkers(params, 2, 1, 5),
				master.Config{Policy: policy, TopK: 5})
			if err != nil {
				t.Fatal(err)
			}
			want, err := m.Run()
			if err != nil {
				t.Fatal(err)
			}
			oneShot[i] = hitBytes(t, want.Results)
		}
		// Interleave the sets so every one is a cold miss once and a warm
		// hit twice, with other entries inserted in between.
		for round := 0; round < 3; round++ {
			for i, queries := range querySets {
				got, err := s.Search(context.Background(), queries, engine.SearchOptions{})
				if err != nil {
					t.Fatalf("%v round %d set %d: %v", policy, round, i, err)
				}
				if !bytes.Equal(hitBytes(t, got.Results), oneShot[i]) {
					t.Fatalf("%v round %d set %d: cached hits differ from one-shot", policy, round, i)
				}
			}
		}
		st := s.Stats()
		if st.CacheMisses != sets || st.CacheHits != 2*sets {
			t.Fatalf("%v: misses/hits %d/%d, want %d/%d", policy, st.CacheMisses, st.CacheHits, sets, 2*sets)
		}
		s.Close()
	}
}
