// Package enginetest cross-checks every alignment engine in the module
// against the scalar oracle on shared corpora: the central "all engines
// compute the same science" guarantee behind the reproduction.
package enginetest

import (
	"math/rand"
	"testing"

	"swdual/internal/alphabet"
	"swdual/internal/cudasw"
	"swdual/internal/gpusim"
	"swdual/internal/scoring"
	"swdual/internal/seq"
	"swdual/internal/sw"
	"swdual/internal/swpar"
	"swdual/internal/swvector"
	"swdual/internal/synth"
)

func engines(p sw.Params) []sw.Engine {
	return []sw.Engine{
		sw.NewScalar(p),
		sw.NewProfiled(p),
		swvector.NewStriped(p),
		swvector.NewStriped128(p),
		swvector.NewInterSeq(p),
		swpar.NewEngine(p, swpar.Config{Workers: 3, RowBand: 8}),
		cudasw.New(gpusim.New(gpusim.TeslaC2050()), p),
	}
}

func corpus(seed int64, count, maxLen int) *seq.Set {
	return synth.RandomSet(alphabet.Protein, count, 0, maxLen, seed)
}

func crossCheck(t *testing.T, p sw.Params, query []byte, db *seq.Set) {
	t.Helper()
	var ref []int
	var refName string
	for _, e := range engines(p) {
		got := e.Scores(query, db)
		if ref == nil {
			ref, refName = got, e.Name()
			continue
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("engine %s disagrees with %s on seq %d (len %d, qlen %d): %d vs %d",
					e.Name(), refName, i, db.Seqs[i].Len(), len(query), got[i], ref[i])
			}
		}
	}
}

func TestAllEnginesAgreeBLOSUM62(t *testing.T) {
	p := sw.DefaultParams()
	rng := rand.New(rand.NewSource(81))
	for iter := 0; iter < 8; iter++ {
		db := corpus(int64(iter), 25, 200)
		qlen := 1 + rng.Intn(150)
		q := synth.RandomSet(alphabet.Protein, 1, qlen, qlen, int64(iter+500)).Seqs[0].Residues
		crossCheck(t, p, q, db)
	}
}

func TestAllEnginesAgreeAcrossMatricesAndGaps(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	for _, m := range []*scoring.Matrix{scoring.BLOSUM62, scoring.BLOSUM50, scoring.PAM250} {
		for _, gaps := range []scoring.Gaps{{Start: 10, Extend: 2}, {Start: 5, Extend: 1}, {Start: 0, Extend: 4}} {
			p := sw.Params{Matrix: m, Gaps: gaps}
			db := corpus(rng.Int63(), 15, 150)
			q := synth.RandomSet(alphabet.Protein, 1, 80, 80, rng.Int63()).Seqs[0].Residues
			crossCheck(t, p, q, db)
		}
	}
}

func TestAllEnginesAgreeOnHighScores(t *testing.T) {
	// Near-identical long sequences force 8-bit overflow in every SWAR
	// engine; all escalation paths must land on the same exact score.
	p := sw.DefaultParams()
	base := synth.RandomSet(alphabet.Protein, 1, 700, 700, 83).Seqs[0].Residues
	db := seq.NewSet(alphabet.Protein)
	db.AddEncoded("self", "", base)
	mut := append([]byte(nil), base...)
	for i := 50; i < len(mut); i += 97 {
		mut[i] = (mut[i] + 1) % 20
	}
	db.AddEncoded("mutated", "", mut)
	db.AddEncoded("short", "", base[:9])
	crossCheck(t, p, base, db)
}

func TestAllEnginesAgreeOnDegenerateInputs(t *testing.T) {
	p := sw.DefaultParams()
	db := seq.NewSet(alphabet.Protein)
	db.AddEncoded("empty", "", nil)
	db.AddEncoded("one", "", []byte{0})
	db.AddEncoded("ambig", "", alphabet.Protein.MustEncode("XXXBZ*"))
	for _, q := range [][]byte{
		alphabet.Protein.MustEncode("A"),
		alphabet.Protein.MustEncode("XX*"),
		alphabet.Protein.MustEncode("WWWWWWWW"),
	} {
		crossCheck(t, p, q, db)
	}
}
