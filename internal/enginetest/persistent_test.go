package enginetest

import (
	"bytes"
	"context"
	"encoding/binary"
	"sync"
	"testing"
	"time"

	"swdual/internal/alphabet"
	"swdual/internal/engine"
	"swdual/internal/master"
	"swdual/internal/seq"
	"swdual/internal/sw"
	"swdual/internal/synth"
)

// hitBytes serializes a result's hits so "byte-identical" is literal.
func hitBytes(t *testing.T, results []master.QueryResult) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, res := range results {
		binary.Write(&buf, binary.LittleEndian, int64(res.QueryIndex))
		binary.Write(&buf, binary.LittleEndian, int64(len(res.Hits)))
		for _, h := range res.Hits {
			binary.Write(&buf, binary.LittleEndian, int64(h.SeqIndex))
			binary.Write(&buf, binary.LittleEndian, int64(h.Score))
			buf.WriteString(h.SeqID)
		}
	}
	return buf.Bytes()
}

// TestPersistentPoolMatchesOneShot is the engine-layer cross-check: a
// persistent Searcher serving many requests must hand back byte-identical
// hits to the seed's build-everything-per-call master, for every policy.
func TestPersistentPoolMatchesOneShot(t *testing.T) {
	db := synth.RandomSet(alphabet.Protein, 60, 10, 200, 91)
	params := sw.DefaultParams()
	for _, policy := range []master.Policy{
		master.PolicyDualApprox, master.PolicyDualApproxDP,
		master.PolicySelfScheduling, master.PolicyRoundRobin,
	} {
		s, err := engine.New(db, engine.Config{
			Params: params, CPUs: 2, GPUs: 2, TopK: 5, Policy: policy,
			BatchWindow: time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		for round := 0; round < 3; round++ {
			queries := synth.RandomSet(alphabet.Protein, 8, 20, 120, int64(700+round))
			got, err := s.Search(context.Background(), queries, engine.SearchOptions{})
			if err != nil {
				t.Fatalf("%v round %d: %v", policy, round, err)
			}
			m, err := master.New(db, queries, master.BuildWorkers(params, 2, 2, 5),
				master.Config{Policy: policy, TopK: 5})
			if err != nil {
				t.Fatal(err)
			}
			want, err := m.Run()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(hitBytes(t, got.Results), hitBytes(t, want.Results)) {
				t.Fatalf("%v round %d: persistent-pool hits differ from one-shot", policy, round)
			}
		}
		s.Close()
	}
}

// TestPipelinedWavesMatchOneShot closes the loop on wave pipelining:
// whatever the policy, a Searcher that overlaps wave planning with
// execution and hands workers their next queue without a barrier must
// return hits byte-identical to the seed's strict one-shot master —
// across enough rounds that waves actually chain through the handoff
// path, and with concurrent callers so waves coalesce and overlap.
func TestPipelinedWavesMatchOneShot(t *testing.T) {
	db := synth.RandomSet(alphabet.Protein, 55, 10, 190, 93)
	params := sw.DefaultParams()
	for _, policy := range []master.Policy{
		master.PolicyDualApprox, master.PolicyDualApproxDP,
		master.PolicySelfScheduling, master.PolicyRoundRobin,
	} {
		s, err := engine.New(db, engine.Config{
			Params: params, CPUs: 2, GPUs: 1, TopK: 5, Policy: policy,
			Pipeline: engine.PipelineOn, BatchWindow: time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		const callers = 4
		for round := 0; round < 2; round++ {
			var wg sync.WaitGroup
			reports := make([]*master.Report, callers)
			errs := make([]error, callers)
			querySets := make([]*seq.Set, callers)
			for i := range querySets {
				querySets[i] = synth.RandomSet(alphabet.Protein, 4, 20, 120, int64(800+10*round+i))
			}
			for i := 0; i < callers; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					reports[i], errs[i] = s.Search(context.Background(), querySets[i], engine.SearchOptions{})
				}(i)
			}
			wg.Wait()
			for i := 0; i < callers; i++ {
				if errs[i] != nil {
					t.Fatalf("%v round %d caller %d: %v", policy, round, i, errs[i])
				}
				m, err := master.New(db, querySets[i], master.BuildWorkers(params, 2, 1, 5),
					master.Config{Policy: policy, TopK: 5})
				if err != nil {
					t.Fatal(err)
				}
				want, err := m.Run()
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(hitBytes(t, reports[i].Results), hitBytes(t, want.Results)) {
					t.Fatalf("%v round %d caller %d: pipelined hits differ from one-shot", policy, round, i)
				}
			}
		}
		s.Close()
	}
}

// TestMixedPoolsMatchStaticRatePath is the adaptive-scheduling
// equivalence guarantee: whatever pool spec backs the Searcher — pure
// inter-sequence, striped, fine-grained, GPUs, or any mix — and however
// far its measured rates drift from the advertised seeds over repeated
// waves, the hits must stay byte-identical to the seed's static-rate
// one-shot path. Rates move tasks between workers; they never touch
// what a worker computes.
func TestMixedPoolsMatchStaticRatePath(t *testing.T) {
	db := synth.RandomSet(alphabet.Protein, 50, 10, 180, 92)
	params := sw.DefaultParams()
	queries := synth.RandomSet(alphabet.Protein, 10, 20, 120, 903)

	m, err := master.New(db, queries, master.BuildWorkers(params, 2, 2, 5), master.Config{TopK: 5})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	want := hitBytes(t, ref.Results)

	for _, spec := range []master.PoolSpec{
		{CPU: 2},
		{Striped: 2},
		{Fine: 1},
		{CPU: 1, Striped: 1, Fine: 1, GPU: 1},
		{Striped: 1, GPU: 2},
	} {
		s, err := engine.New(db, engine.Config{Params: params, Pool: spec, TopK: 5})
		if err != nil {
			t.Fatalf("pool %v: %v", spec, err)
		}
		// Several rounds so the EWMA estimates move well away from the
		// advertised seeds between waves.
		for round := 0; round < 3; round++ {
			got, err := s.Search(context.Background(), queries, engine.SearchOptions{})
			if err != nil {
				t.Fatalf("pool %v round %d: %v", spec, round, err)
			}
			if !bytes.Equal(hitBytes(t, got.Results), want) {
				t.Fatalf("pool %v round %d: hits differ from the static-rate path", spec, round)
			}
		}
		s.Close()
	}
}
