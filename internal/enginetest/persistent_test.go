package enginetest

import (
	"bytes"
	"context"
	"encoding/binary"
	"testing"
	"time"

	"swdual/internal/alphabet"
	"swdual/internal/engine"
	"swdual/internal/master"
	"swdual/internal/sw"
	"swdual/internal/synth"
)

// hitBytes serializes a result's hits so "byte-identical" is literal.
func hitBytes(t *testing.T, results []master.QueryResult) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, res := range results {
		binary.Write(&buf, binary.LittleEndian, int64(res.QueryIndex))
		binary.Write(&buf, binary.LittleEndian, int64(len(res.Hits)))
		for _, h := range res.Hits {
			binary.Write(&buf, binary.LittleEndian, int64(h.SeqIndex))
			binary.Write(&buf, binary.LittleEndian, int64(h.Score))
			buf.WriteString(h.SeqID)
		}
	}
	return buf.Bytes()
}

// TestPersistentPoolMatchesOneShot is the engine-layer cross-check: a
// persistent Searcher serving many requests must hand back byte-identical
// hits to the seed's build-everything-per-call master, for every policy.
func TestPersistentPoolMatchesOneShot(t *testing.T) {
	db := synth.RandomSet(alphabet.Protein, 60, 10, 200, 91)
	params := sw.DefaultParams()
	for _, policy := range []master.Policy{
		master.PolicyDualApprox, master.PolicyDualApproxDP,
		master.PolicySelfScheduling, master.PolicyRoundRobin,
	} {
		s, err := engine.New(db, engine.Config{
			Params: params, CPUs: 2, GPUs: 2, TopK: 5, Policy: policy,
			BatchWindow: time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		for round := 0; round < 3; round++ {
			queries := synth.RandomSet(alphabet.Protein, 8, 20, 120, int64(700+round))
			got, err := s.Search(context.Background(), queries, engine.SearchOptions{})
			if err != nil {
				t.Fatalf("%v round %d: %v", policy, round, err)
			}
			m, err := master.New(db, queries, master.BuildWorkers(params, 2, 2, 5),
				master.Config{Policy: policy, TopK: 5})
			if err != nil {
				t.Fatal(err)
			}
			want, err := m.Run()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(hitBytes(t, got.Results), hitBytes(t, want.Results)) {
				t.Fatalf("%v round %d: persistent-pool hits differ from one-shot", policy, round)
			}
		}
		s.Close()
	}
}
