package swvector

import (
	"swdual/internal/scoring"
	"swdual/internal/seq"
	"swdual/internal/sw"
)

// v128 emulates a 128-bit SIMD register as two uint64 words (lanes 0-7 in
// lo, 8-15 in hi): the exact register width Farrar's SSE2 implementation
// uses, giving 16 parallel 8-bit lanes per operation.
type v128 struct{ lo, hi uint64 }

// Lanes128 is the lane count of the 128-bit kernels.
const Lanes128 = 16

func addSat128(a, b v128) v128 { return v128{addSat8(a.lo, b.lo), addSat8(a.hi, b.hi)} }
func subSat128(a, b v128) v128 { return v128{subSat8(a.lo, b.lo), subSat8(a.hi, b.hi)} }
func max128(a, b v128) v128    { return v128{max8(a.lo, b.lo), max8(a.hi, b.hi)} }
func anyGT128(a, b v128) bool  { return anyGT8(a.lo, b.lo) || anyGT8(a.hi, b.hi) }
func splat128(v uint8) v128    { return v128{splat8(v), splat8(v)} }

// laneShiftUp128 shifts the register up one 8-bit lane, carrying lane 7
// into lane 8 and filling lane 0 — the _mm_slli_si128(x, 1) of SSE2.
func laneShiftUp128(x v128, fill uint8) v128 {
	return v128{
		lo: x.lo<<8 | uint64(fill),
		hi: x.hi<<8 | x.lo>>56,
	}
}

func maxByte128(x v128) uint8 {
	a, b := maxByte8(x.lo), maxByte8(x.hi)
	if a > b {
		return a
	}
	return b
}

// profile128 is the 16-lane biased striped query profile.
type profile128 struct {
	queryLen int
	segLen   int
	bias     uint8
	rows     [][]v128
}

func newProfile128(m *scoring.Matrix, query []byte) (*profile128, bool) {
	minV, maxV := m.Min(), m.Max()
	if maxV-minV > 200 {
		return nil, false
	}
	bias := uint8(0)
	if minV < 0 {
		bias = uint8(-minV)
	}
	segLen := (len(query) + Lanes128 - 1) / Lanes128
	if segLen == 0 {
		segLen = 1
	}
	p := &profile128{queryLen: len(query), segLen: segLen, bias: bias, rows: make([][]v128, m.Size())}
	for r := 0; r < m.Size(); r++ {
		row := make([]v128, segLen)
		for s := 0; s < segLen; s++ {
			var w v128
			for l := 0; l < Lanes128; l++ {
				pos := s + l*segLen
				v := 0
				if pos < len(query) {
					v = m.Score(byte(r), query[pos]) + int(bias)
				}
				if l < 8 {
					w.lo |= uint64(uint8(v)) << (8 * l)
				} else {
					w.hi |= uint64(uint8(v)) << (8 * (l - 8))
				}
			}
			row[s] = w
		}
		p.rows[r] = row
	}
	return p, true
}

// scoreStriped128 runs the Farrar kernel on 16 lanes. overflow=true means
// the caller must rescore with a wider kernel. As in ScoreStriped8, the
// degenerate Gs == 0 gap model routes to exact F propagation.
func scoreStriped128(p *profile128, gaps scoring.Gaps, subject []byte) (score int, overflow bool) {
	if p.queryLen == 0 || len(subject) == 0 {
		return 0, false
	}
	if gaps.Start == 0 {
		best := scoreStriped128Exact(p, gaps, subject)
		return best, best >= 255-int(p.bias)
	}
	segLen := p.segLen
	vGapOpen := splat128(uint8(gaps.OpenCost()))
	vGapExt := splat128(uint8(gaps.Extend))
	vBias := splat128(p.bias)
	sc, hStore, hLoad, vE := getRows128(segLen)
	defer putRows128(sc)
	var vMax v128
	for _, d := range subject {
		vP := p.rows[d]
		var vF v128
		vH := laneShiftUp128(hStore[segLen-1], 0)
		hStore, hLoad = hLoad, hStore
		for i := 0; i < segLen; i++ {
			vH = subSat128(addSat128(vH, vP[i]), vBias)
			vH = max128(vH, vE[i])
			vH = max128(vH, vF)
			vMax = max128(vMax, vH)
			hStore[i] = vH
			vHGap := subSat128(vH, vGapOpen)
			vE[i] = max128(subSat128(vE[i], vGapExt), vHGap)
			vF = max128(subSat128(vF, vGapExt), vHGap)
			vH = hLoad[i]
		}
		vF = laneShiftUp128(vF, 0)
	lazyF:
		for k := 0; k < Lanes128; k++ {
			for i := 0; i < segLen; i++ {
				vH := max128(hStore[i], vF)
				vMax = max128(vMax, vH)
				hStore[i] = vH
				vF = subSat128(vF, vGapExt)
				if !anyGT128(vF, subSat128(vH, vGapOpen)) {
					break lazyF
				}
			}
			vF = laneShiftUp128(vF, 0)
		}
	}
	best := int(maxByte128(vMax))
	return best, best >= 255-int(p.bias)
}

// scoreStriped128Exact is the full-propagation variant used when Gs == 0
// (see scoreStriped8Exact for the argument).
func scoreStriped128Exact(p *profile128, gaps scoring.Gaps, subject []byte) int {
	segLen := p.segLen
	vGapOpen := splat128(uint8(gaps.OpenCost()))
	vGapExt := splat128(uint8(gaps.Extend))
	vBias := splat128(p.bias)
	sc, hStore, hLoad, vE := getRows128(segLen)
	defer putRows128(sc)
	var vMax v128
	for _, d := range subject {
		vP := p.rows[d]
		var vF v128
		vH := laneShiftUp128(hStore[segLen-1], 0)
		hStore, hLoad = hLoad, hStore
		for i := 0; i < segLen; i++ {
			vH = subSat128(addSat128(vH, vP[i]), vBias)
			vH = max128(vH, vE[i])
			vH = max128(vH, vF)
			vMax = max128(vMax, vH)
			hStore[i] = vH
			vHGap := subSat128(vH, vGapOpen)
			vE[i] = max128(subSat128(vE[i], vGapExt), vHGap)
			vF = max128(subSat128(vF, vGapExt), vHGap)
			vH = hLoad[i]
		}
		for k := 0; k < Lanes128; k++ {
			vF = laneShiftUp128(vF, 0)
			for i := 0; i < segLen; i++ {
				vH := max128(hStore[i], vF)
				vMax = max128(vMax, vH)
				hStore[i] = vH
				vHGap := subSat128(vH, vGapOpen)
				vE[i] = max128(vE[i], vHGap)
				vF = max128(subSat128(vF, vGapExt), vHGap)
			}
		}
	}
	return int(maxByte128(vMax))
}

// Striped128 is the 16-lane Farrar engine — the closest analogue of the
// original SSE2 STRIPED implementation (16 x 8-bit lanes per xmm
// register), escalating to 16-bit lanes and then the scalar oracle on
// overflow.
type Striped128 struct {
	params sw.Params
}

// NewStriped128 builds the engine.
func NewStriped128(p sw.Params) *Striped128 { return &Striped128{params: p} }

// Name implements sw.Engine.
func (e *Striped128) Name() string { return "striped-128" }

// Scores implements sw.Engine.
func (e *Striped128) Scores(query []byte, db *seq.Set) []int {
	out := make([]int, db.Len())
	p8, ok := newProfile128(e.params.Matrix, query)
	var p16 *scoring.StripedProfile16
	for i := range db.Seqs {
		subject := db.Seqs[i].Residues
		if ok {
			if s, over := scoreStriped128(p8, e.params.Gaps, subject); !over {
				out[i] = s
				continue
			}
		}
		if p16 == nil {
			p16 = scoring.NewStripedProfile16(e.params.Matrix, query)
		}
		if s, over := ScoreStriped16(p16, e.params.Gaps, subject); !over {
			out[i] = s
			continue
		}
		out[i] = sw.Score(e.params, query, subject)
	}
	return out
}

var _ sw.Engine = (*Striped128)(nil)
