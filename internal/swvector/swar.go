// Package swvector implements the two CPU SIMD Smith-Waterman strategies
// the paper's baselines rely on, using SWAR (SIMD Within A Register) on
// uint64 words in place of SSE2 registers:
//
//   - the Farrar "striped" intra-sequence vectorization (STRIPED, SWPS3),
//     with the lazy-F correction loop and 8-bit -> 16-bit -> scalar
//     overflow escalation;
//   - the Rognes SWIPE inter-sequence vectorization, aligning one query
//     against 8 database sequences per vector lane.
//
// Both produce scores identical to the scalar oracle in package sw.
package swvector

// 8-bit unsigned lanes, 8 per uint64 word. The helpers split a word into
// even and odd bytes widened to 16-bit sub-lanes; within a sub-lane the
// arithmetic cannot carry across lanes, which keeps every operation
// branch-free and obviously correct.

const (
	evenMask = 0x00FF00FF00FF00FF
	carry8   = 0x0100010001000100 // bit 8 of each 16-bit sub-lane
	ones16   = 0x0001000100010001
)

func splitBytes(x uint64) (even, odd uint64) {
	return x & evenMask, (x >> 8) & evenMask
}

func mergeBytes(even, odd uint64) uint64 {
	return even | odd<<8
}

// addSat8 returns the per-byte unsigned saturating sum a+b.
func addSat8(a, b uint64) uint64 {
	ae, ao := splitBytes(a)
	be, bo := splitBytes(b)
	se := ae + be
	so := ao + bo
	// Saturate sub-lanes that carried into bit 8.
	me := (se >> 8 & ones16) * 0xFF
	mo := (so >> 8 & ones16) * 0xFF
	return mergeBytes(se&evenMask|me, so&evenMask|mo)
}

// subSat8 returns the per-byte unsigned saturating difference max(a-b, 0).
func subSat8(a, b uint64) uint64 {
	ae, ao := splitBytes(a)
	be, bo := splitBytes(b)
	// Bias each sub-lane by 256 so the subtraction never borrows across
	// lanes; bit 8 is then set exactly when a >= b.
	de := ae + carry8 - be
	do := ao + carry8 - bo
	ge := de >> 8 & ones16 // 1 where a >= b
	go_ := do >> 8 & ones16
	return mergeBytes(de&evenMask&(ge*0xFF), do&evenMask&(go_*0xFF))
}

// max8 returns the per-byte unsigned maximum.
func max8(a, b uint64) uint64 {
	ae, ao := splitBytes(a)
	be, bo := splitBytes(b)
	de := ae + carry8 - be
	do := ao + carry8 - bo
	ge := (de >> 8 & ones16) * 0xFF // 0xFF where a >= b
	go_ := (do >> 8 & ones16) * 0xFF
	return mergeBytes(ae&ge|be&^ge, ao&go_|bo&^go_)
}

// anyGT8 reports whether any byte of a is strictly greater than the
// corresponding byte of b.
func anyGT8(a, b uint64) bool {
	return subSat8(a, b) != 0
}

// maxByte8 returns the largest byte in the word.
func maxByte8(x uint64) uint8 {
	best := uint8(0)
	for i := 0; i < 8; i++ {
		if b := uint8(x >> (8 * i)); b > best {
			best = b
		}
	}
	return best
}

// splat8 replicates an 8-bit value into all lanes.
func splat8(v uint8) uint64 {
	return uint64(v) * 0x0101010101010101
}

// byteAt extracts lane l (0 = least significant).
func byteAt(x uint64, l int) uint8 { return uint8(x >> (8 * l)) }

// withByte returns x with lane l replaced by v.
func withByte(x uint64, l int, v uint8) uint64 {
	sh := uint(8 * l)
	return x&^(uint64(0xFF)<<sh) | uint64(v)<<sh
}

// laneShiftUp8 shifts the word up by one 8-bit lane (the striped kernel's
// column rotation), filling the vacated lane 0 with fill.
func laneShiftUp8(x uint64, fill uint8) uint64 {
	return x<<8 | uint64(fill)
}

// 16-bit unsigned lanes, 4 per uint64 word, same even/odd widening trick
// with 32-bit sub-lanes.

const (
	evenMask16 = 0x0000FFFF0000FFFF
	carry16    = 0x0001000000010000
	ones32     = 0x0000000100000001
)

func split16(x uint64) (even, odd uint64) {
	return x & evenMask16, (x >> 16) & evenMask16
}

func merge16(even, odd uint64) uint64 {
	return even | odd<<16
}

// addSat16 returns the per-uint16 saturating sum.
func addSat16(a, b uint64) uint64 {
	ae, ao := split16(a)
	be, bo := split16(b)
	se := ae + be
	so := ao + bo
	me := (se >> 16 & ones32) * 0xFFFF
	mo := (so >> 16 & ones32) * 0xFFFF
	return merge16(se&evenMask16|me, so&evenMask16|mo)
}

// subSat16 returns the per-uint16 saturating difference max(a-b, 0).
func subSat16(a, b uint64) uint64 {
	ae, ao := split16(a)
	be, bo := split16(b)
	de := ae + carry16 - be
	do := ao + carry16 - bo
	ge := de >> 16 & ones32
	go_ := do >> 16 & ones32
	return merge16(de&evenMask16&(ge*0xFFFF), do&evenMask16&(go_*0xFFFF))
}

// max16 returns the per-uint16 unsigned maximum.
func max16(a, b uint64) uint64 {
	ae, ao := split16(a)
	be, bo := split16(b)
	de := ae + carry16 - be
	do := ao + carry16 - bo
	ge := (de >> 16 & ones32) * 0xFFFF
	go_ := (do >> 16 & ones32) * 0xFFFF
	return merge16(ae&ge|be&^ge, ao&go_|bo&^go_)
}

// anyGT16 reports whether any 16-bit lane of a exceeds that of b.
func anyGT16(a, b uint64) bool { return subSat16(a, b) != 0 }

// maxLane16 returns the largest 16-bit lane in the word.
func maxLane16(x uint64) uint16 {
	best := uint16(0)
	for i := 0; i < 4; i++ {
		if v := uint16(x >> (16 * i)); v > best {
			best = v
		}
	}
	return best
}

// splat16 replicates a 16-bit value into all four lanes.
func splat16(v uint16) uint64 { return uint64(v) * ones16 }

// laneShiftUp16 shifts the word up by one 16-bit lane, filling lane 0.
func laneShiftUp16(x uint64, fill uint16) uint64 {
	return x<<16 | uint64(fill)
}

// lane16At extracts 16-bit lane l.
func lane16At(x uint64, l int) uint16 { return uint16(x >> (16 * l)) }

// withLane16 returns x with 16-bit lane l replaced by v.
func withLane16(x uint64, l int, v uint16) uint64 {
	sh := uint(16 * l)
	return x&^(uint64(0xFFFF)<<sh) | uint64(v)<<sh
}
