package swvector

import (
	"sync"

	"swdual/internal/scoring"
	"swdual/internal/seq"
	"swdual/internal/sw"
)

// InterSeq is the Rognes SWIPE-style inter-sequence engine (the analogue
// of the SWIPE baseline in the paper's Table I): eight database sequences
// are aligned against the query simultaneously, one per 8-bit lane, with
// finished lanes refilled from the remaining database. Sequences whose
// score saturates 8 bits are rescored with the 16-bit striped kernel and,
// if needed, the scalar oracle.
type InterSeq struct {
	params sw.Params
}

// NewInterSeq builds the engine.
func NewInterSeq(p sw.Params) *InterSeq { return &InterSeq{params: p} }

// Name implements sw.Engine.
func (e *InterSeq) Name() string { return "interseq-swar" }

// Scores implements sw.Engine.
func (e *InterSeq) Scores(query []byte, db *seq.Set) []int {
	return e.scores(query, nil, db)
}

// ScoresProfiled implements sw.ProfiledEngine. The inter-sequence kernel
// builds its column profile from the matrix directly, so the shared set
// only saves the 16-bit striped profile of the overflow rescoring path —
// but that is exactly the profile rebuilt per task today whenever any
// subject saturates 8 bits.
func (e *InterSeq) ScoresProfiled(query []byte, prof *scoring.QueryProfiles, db *seq.Set) []int {
	return e.scores(query, prof, db)
}

func (e *InterSeq) scores(query []byte, prof *scoring.QueryProfiles, db *seq.Set) []int {
	out := make([]int, db.Len())
	if len(query) == 0 || db.Len() == 0 {
		return out
	}
	m := e.params.Matrix
	bias := uint8(0)
	if minV := m.Min(); minV < 0 {
		bias = uint8(-minV)
	}
	var overflowed []int
	k := newInterKernel(e.params, bias, query)
	k.run(db, out, &overflowed)
	k.release()
	if len(overflowed) > 0 {
		var p16 *scoring.StripedProfile16
		if prof != nil {
			p16 = prof.Striped16()
		} else {
			p16 = scoring.NewStripedProfile16(m, query)
		}
		for _, i := range overflowed {
			s, over := ScoreStriped16(p16, e.params.Gaps, db.Seqs[i].Residues)
			if over {
				s = sw.Score(e.params, query, db.Seqs[i].Residues)
			}
			out[i] = s
		}
	}
	return out
}

var _ sw.ProfiledEngine = (*InterSeq)(nil)

// interKernel holds the per-search vector state.
type interKernel struct {
	params   sw.Params
	query    []byte
	bias     uint8
	vBias    uint64
	vGapOpen uint64
	vGapExt  uint64
	hcol     []uint64         // H of the previous column, per query row
	ecol     []uint64         // E of the previous column, per query row
	dprofile []uint64         // per-column score rows, indexed by query residue code
	laneSeq  [Lanes8Count]int // db sequence index per lane, -1 = idle
	lanePos  [Lanes8Count]int
	laneMax  uint64
}

// interKernelPool recycles kernels across tasks: the hcol/ecol/dprofile
// rows are the per-search DP state, and reusing their backing arrays
// (cleared on acquisition) keeps the steady-state search allocation-free
// the same way the striped kernels pool their H/E rows.
var interKernelPool = sync.Pool{New: func() any { return new(interKernel) }}

func newInterKernel(p sw.Params, bias uint8, query []byte) *interKernel {
	k := interKernelPool.Get().(*interKernel)
	k.params = p
	k.query = query
	k.bias = bias
	k.vBias = splat8(bias)
	k.vGapOpen = splat8(uint8(p.Gaps.OpenCost()))
	k.vGapExt = splat8(uint8(p.Gaps.Extend))
	k.hcol = resizeCleared(k.hcol, len(query)+1)
	k.ecol = resizeCleared(k.ecol, len(query)+1)
	k.dprofile = resizeCleared(k.dprofile, p.Matrix.Size())
	k.laneMax = 0
	return k
}

// release returns the kernel to the pool. The caller must not touch it
// afterwards.
func (k *interKernel) release() {
	k.query = nil
	k.params = sw.Params{}
	interKernelPool.Put(k)
}

func (k *interKernel) run(db *seq.Set, out []int, overflowed *[]int) {
	next := 0
	active := 0
	for l := range k.laneSeq {
		k.laneSeq[l] = -1
	}
	// Prime the lanes.
	for l := 0; l < Lanes8Count && next < db.Len(); l++ {
		next = k.fill(l, db, next, out, overflowed)
		if k.laneSeq[l] >= 0 {
			active++
		}
	}
	for active > 0 {
		k.buildProfile(db)
		k.column()
		// Advance lanes; retire and refill finished ones.
		for l := 0; l < Lanes8Count; l++ {
			si := k.laneSeq[l]
			if si < 0 {
				continue
			}
			k.lanePos[l]++
			if k.lanePos[l] < db.Seqs[si].Len() {
				continue
			}
			k.retire(l, out, overflowed)
			next = k.fill(l, db, next, out, overflowed)
			if k.laneSeq[l] < 0 {
				active--
			}
		}
	}
}

// fill assigns the next database sequence to lane l, immediately retiring
// empty sequences. It returns the updated next index.
func (k *interKernel) fill(l int, db *seq.Set, next int, out []int, overflowed *[]int) int {
	for next < db.Len() && db.Seqs[next].Len() == 0 {
		out[next] = 0
		next++
	}
	if next >= db.Len() {
		k.laneSeq[l] = -1
		return next
	}
	k.laneSeq[l] = next
	k.lanePos[l] = 0
	k.clearLane(l)
	return next + 1
}

// retire records lane l's score and flags overflow.
func (k *interKernel) retire(l int, out []int, overflowed *[]int) {
	si := k.laneSeq[l]
	s := int(byteAt(k.laneMax, l))
	if s >= 255-int(k.bias) {
		*overflowed = append(*overflowed, si)
	}
	out[si] = s
	k.laneSeq[l] = -1
}

// clearLane zeroes lane l of all DP state so a fresh sequence can start.
func (k *interKernel) clearLane(l int) {
	for i := range k.hcol {
		k.hcol[i] = withByte(k.hcol[i], l, 0)
		k.ecol[i] = withByte(k.ecol[i], l, 0)
	}
	k.laneMax = withByte(k.laneMax, l, 0)
}

// buildProfile assembles the per-column score rows: for every query
// residue code r, a word whose lane l holds S(r, subject_l[pos_l]) + bias.
// Idle lanes get 0 (the most negative biased score).
func (k *interKernel) buildProfile(db *seq.Set) {
	for r := range k.dprofile {
		k.dprofile[r] = 0
	}
	for l := 0; l < Lanes8Count; l++ {
		si := k.laneSeq[l]
		if si < 0 {
			continue
		}
		d := db.Seqs[si].Residues[k.lanePos[l]]
		row := k.params.Matrix.Row(d)
		for r := range k.dprofile {
			k.dprofile[r] = withByte(k.dprofile[r], l, uint8(int(row[r])+int(k.bias)))
		}
	}
}

// column advances the DP by one database column in every lane.
func (k *interKernel) column() {
	diag := k.hcol[0] // H[0][t-1], always zero lanes
	k.hcol[0] = 0
	var f uint64
	for i := 1; i <= len(k.query); i++ {
		old := k.hcol[i]
		e := max8(subSat8(k.ecol[i], k.vGapExt), subSat8(old, k.vGapOpen))
		f = max8(subSat8(f, k.vGapExt), subSat8(k.hcol[i-1], k.vGapOpen))
		h := subSat8(addSat8(diag, k.dprofile[k.query[i-1]]), k.vBias)
		h = max8(h, e)
		h = max8(h, f)
		k.laneMax = max8(k.laneMax, h)
		diag = old
		k.hcol[i] = h
		k.ecol[i] = e
	}
}
