package swvector

import (
	"swdual/internal/scoring"
	"swdual/internal/seq"
	"swdual/internal/sw"
)

// ErrOverflow is reported (as a bool) by the fixed-width kernels when the
// score saturates the lane width; callers escalate to the next width.

// ScoreStriped8 runs the Farrar striped kernel with 8-bit biased unsigned
// lanes. It returns the local alignment score and overflow=true when the
// score may have saturated (score >= 255 - bias), in which case the caller
// must rescore with a wider kernel.
//
// Farrar's lazy-F early termination is provably safe only when opening a
// gap costs strictly more than extending one (Gs > 0); for the degenerate
// Gs == 0 model the kernel switches to an exact full-propagation
// correction loop (see scoreStriped8Exact).
func ScoreStriped8(p *scoring.StripedProfile8, gaps scoring.Gaps, subject []byte) (score int, overflow bool) {
	if p.QueryLen == 0 || len(subject) == 0 {
		return 0, false
	}
	if gaps.Start == 0 {
		best := scoreStriped8Exact(p, gaps, subject)
		return best, best >= 255-int(p.Bias)
	}
	segLen := p.SegLen
	vGapOpen := splat8(uint8(gaps.OpenCost()))
	vGapExt := splat8(uint8(gaps.Extend))
	vBias := splat8(p.Bias)
	sc, hStore, hLoad, vE := getRows(segLen)
	defer putRows(sc)
	var vMax uint64
	for _, d := range subject {
		vP := p.Rows[d]
		var vF uint64
		// The last segment's H of the previous column, rotated up one lane.
		vH := laneShiftUp8(hStore[segLen-1], 0)
		hStore, hLoad = hLoad, hStore
		for i := 0; i < segLen; i++ {
			vH = subSat8(addSat8(vH, vP[i]), vBias)
			vH = max8(vH, vE[i])
			vH = max8(vH, vF)
			vMax = max8(vMax, vH)
			hStore[i] = vH
			vHGap := subSat8(vH, vGapOpen)
			vE[i] = max8(subSat8(vE[i], vGapExt), vHGap)
			vF = max8(subSat8(vF, vGapExt), vHGap)
			vH = hLoad[i]
		}
		// Lazy-F correction (Farrar 2007): propagate F across segment
		// boundaries only when it can still improve H.
		vF = laneShiftUp8(vF, 0)
	lazyF:
		for k := 0; k < Lanes8Count; k++ {
			for i := 0; i < segLen; i++ {
				vH := max8(hStore[i], vF)
				vMax = max8(vMax, vH)
				hStore[i] = vH
				vF = subSat8(vF, vGapExt)
				if !anyGT8(vF, subSat8(vH, vGapOpen)) {
					break lazyF
				}
			}
			vF = laneShiftUp8(vF, 0)
		}
	}
	best := int(maxByte8(vMax))
	return best, best >= 255-int(p.Bias)
}

// Lanes8Count and Lanes16Count mirror scoring.Lanes8/Lanes16 without
// importing them in hot paths.
const (
	Lanes8Count  = 8
	Lanes16Count = 4
)

// ScoreStriped16 runs the striped kernel with 16-bit biased unsigned
// lanes. overflow=true means the score saturated even 16 bits and the
// caller must fall back to the scalar oracle. Like ScoreStriped8 it
// switches to exact F propagation when Gs == 0.
func ScoreStriped16(p *scoring.StripedProfile16, gaps scoring.Gaps, subject []byte) (score int, overflow bool) {
	if p.QueryLen == 0 || len(subject) == 0 {
		return 0, false
	}
	if gaps.Start == 0 {
		best := scoreStriped16Exact(p, gaps, subject)
		return best, best >= 65535-int(p.Bias)
	}
	segLen := p.SegLen
	vGapOpen := splat16(uint16(gaps.OpenCost()))
	vGapExt := splat16(uint16(gaps.Extend))
	vBias := splat16(p.Bias)
	sc, hStore, hLoad, vE := getRows(segLen)
	defer putRows(sc)
	var vMax uint64
	for _, d := range subject {
		vP := p.Rows[d]
		var vF uint64
		vH := laneShiftUp16(hStore[segLen-1], 0)
		hStore, hLoad = hLoad, hStore
		for i := 0; i < segLen; i++ {
			vH = subSat16(addSat16(vH, vP[i]), vBias)
			vH = max16(vH, vE[i])
			vH = max16(vH, vF)
			vMax = max16(vMax, vH)
			hStore[i] = vH
			vHGap := subSat16(vH, vGapOpen)
			vE[i] = max16(subSat16(vE[i], vGapExt), vHGap)
			vF = max16(subSat16(vF, vGapExt), vHGap)
			vH = hLoad[i]
		}
		vF = laneShiftUp16(vF, 0)
	lazyF:
		for k := 0; k < Lanes16Count; k++ {
			for i := 0; i < segLen; i++ {
				vH := max16(hStore[i], vF)
				vMax = max16(vMax, vH)
				hStore[i] = vH
				vF = subSat16(vF, vGapExt)
				if !anyGT16(vF, subSat16(vH, vGapOpen)) {
					break lazyF
				}
			}
			vF = laneShiftUp16(vF, 0)
		}
	}
	best := int(maxLane16(vMax))
	return best, best >= 65535-int(p.Bias)
}

// Striped is the Farrar-style intra-sequence engine (the analogue of the
// STRIPED baseline in the paper's Table I). It escalates 8-bit -> 16-bit
// -> scalar on overflow, the same strategy used by SSW and SWPS3.
type Striped struct {
	params sw.Params
	// Width forces a lane width for testing: 0 = adaptive, 8, or 16.
	Width int
}

// NewStriped builds the engine.
func NewStriped(p sw.Params) *Striped { return &Striped{params: p} }

// Name implements sw.Engine.
func (e *Striped) Name() string { return "striped-swar" }

// Scores implements sw.Engine.
func (e *Striped) Scores(query []byte, db *seq.Set) []int {
	return e.scores(query, scoring.NewQueryProfiles(e.params.Matrix, query), db)
}

// ScoresProfiled implements sw.ProfiledEngine: the striped profiles come
// from the shared per-query set (built once per query per wave, or once
// per query lifetime behind a profile cache) instead of being rebuilt on
// every task.
func (e *Striped) ScoresProfiled(query []byte, prof *scoring.QueryProfiles, db *seq.Set) []int {
	return e.scores(query, prof, db)
}

func (e *Striped) scores(query []byte, prof *scoring.QueryProfiles, db *seq.Set) []int {
	out := make([]int, db.Len())
	var p8 *scoring.StripedProfile8
	if e.Width == 0 || e.Width == 8 {
		p8, _ = prof.Striped8()
	}
	var p16 *scoring.StripedProfile16
	for i := range db.Seqs {
		subject := db.Seqs[i].Residues
		if p8 != nil {
			s, over := ScoreStriped8(p8, e.params.Gaps, subject)
			if !over {
				out[i] = s
				continue
			}
			if e.Width == 8 {
				out[i] = s // forced width: report saturated value
				continue
			}
		}
		if p16 == nil {
			p16 = prof.Striped16()
		}
		s, over := ScoreStriped16(p16, e.params.Gaps, subject)
		if !over || e.Width == 16 {
			out[i] = s
			continue
		}
		out[i] = sw.Score(e.params, query, subject)
	}
	return out
}

var _ sw.ProfiledEngine = (*Striped)(nil)

// scoreStriped8Exact is the striped kernel with the lazy-F early
// termination replaced by full F/E propagation: each of the Lanes8Count
// passes advances every lane's F chain by segLen query positions, so a
// vertical gap of any length is fully propagated and the E vector is
// refreshed from raised H values. Exact for every gap model, ~Lanes8Count
// times more correction work per column; used when Gs == 0.
func scoreStriped8Exact(p *scoring.StripedProfile8, gaps scoring.Gaps, subject []byte) int {
	if p.QueryLen == 0 || len(subject) == 0 {
		return 0
	}
	segLen := p.SegLen
	vGapOpen := splat8(uint8(gaps.OpenCost()))
	vGapExt := splat8(uint8(gaps.Extend))
	vBias := splat8(p.Bias)
	sc, hStore, hLoad, vE := getRows(segLen)
	defer putRows(sc)
	var vMax uint64
	for _, d := range subject {
		vP := p.Rows[d]
		var vF uint64
		vH := laneShiftUp8(hStore[segLen-1], 0)
		hStore, hLoad = hLoad, hStore
		for i := 0; i < segLen; i++ {
			vH = subSat8(addSat8(vH, vP[i]), vBias)
			vH = max8(vH, vE[i])
			vH = max8(vH, vF)
			vMax = max8(vMax, vH)
			hStore[i] = vH
			vHGap := subSat8(vH, vGapOpen)
			vE[i] = max8(subSat8(vE[i], vGapExt), vHGap)
			vF = max8(subSat8(vF, vGapExt), vHGap)
			vH = hLoad[i]
		}
		for k := 0; k < Lanes8Count; k++ {
			vF = laneShiftUp8(vF, 0)
			for i := 0; i < segLen; i++ {
				vH := max8(hStore[i], vF)
				vMax = max8(vMax, vH)
				hStore[i] = vH
				vHGap := subSat8(vH, vGapOpen)
				vE[i] = max8(vE[i], vHGap)
				vF = max8(subSat8(vF, vGapExt), vHGap)
			}
		}
	}
	return int(maxByte8(vMax))
}

// scoreStriped16Exact is the 16-bit analogue of scoreStriped8Exact.
func scoreStriped16Exact(p *scoring.StripedProfile16, gaps scoring.Gaps, subject []byte) int {
	if p.QueryLen == 0 || len(subject) == 0 {
		return 0
	}
	segLen := p.SegLen
	vGapOpen := splat16(uint16(gaps.OpenCost()))
	vGapExt := splat16(uint16(gaps.Extend))
	vBias := splat16(p.Bias)
	sc, hStore, hLoad, vE := getRows(segLen)
	defer putRows(sc)
	var vMax uint64
	for _, d := range subject {
		vP := p.Rows[d]
		var vF uint64
		vH := laneShiftUp16(hStore[segLen-1], 0)
		hStore, hLoad = hLoad, hStore
		for i := 0; i < segLen; i++ {
			vH = subSat16(addSat16(vH, vP[i]), vBias)
			vH = max16(vH, vE[i])
			vH = max16(vH, vF)
			vMax = max16(vMax, vH)
			hStore[i] = vH
			vHGap := subSat16(vH, vGapOpen)
			vE[i] = max16(subSat16(vE[i], vGapExt), vHGap)
			vF = max16(subSat16(vF, vGapExt), vHGap)
			vH = hLoad[i]
		}
		for k := 0; k < Lanes16Count; k++ {
			vF = laneShiftUp16(vF, 0)
			for i := 0; i < segLen; i++ {
				vH := max16(hStore[i], vF)
				vMax = max16(vMax, vH)
				hStore[i] = vH
				vHGap := subSat16(vH, vGapOpen)
				vE[i] = max16(vE[i], vHGap)
				vF = max16(subSat16(vF, vGapExt), vHGap)
			}
		}
	}
	return int(maxLane16(vMax))
}
