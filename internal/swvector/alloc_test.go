// Allocation caps are meaningless under the race detector: -race makes
// sync.Pool deliberately drop ~25% of Put items, so pooled buffers
// reallocate by design and the caps would fail spuriously.

//go:build !race

package swvector

import (
	"math/rand"
	"testing"

	"swdual/internal/alphabet"
	"swdual/internal/scoring"
	"swdual/internal/sw"
	"swdual/internal/synth"
)

// Allocation-regression caps: once the row pools are warm, the striped
// kernels must not touch the allocator per subject — that is the whole
// point of pooling the H/E rows. The caps allow a fractional average so
// a stray GC emptying a sync.Pool mid-measurement cannot flake the
// build, but any real per-call allocation (1.0 or more) fails.
const kernelAllocCap = 0.5

func TestAllocsStripedKernel8(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	params := sw.DefaultParams()
	query := randSeq(rng, 120)
	subject := randSeq(rng, 200)
	p8, err := scoring.NewStripedProfile8(params.Matrix, query)
	if err != nil {
		t.Fatal(err)
	}
	ScoreStriped8(p8, params.Gaps, subject) // warm the row pool
	if avg := testing.AllocsPerRun(50, func() {
		ScoreStriped8(p8, params.Gaps, subject)
	}); avg > kernelAllocCap {
		t.Fatalf("ScoreStriped8 allocates %.2f objects per call, want 0", avg)
	}
}

func TestAllocsStripedKernel16(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	params := sw.DefaultParams()
	query := randSeq(rng, 120)
	subject := randSeq(rng, 200)
	p16 := scoring.NewStripedProfile16(params.Matrix, query)
	ScoreStriped16(p16, params.Gaps, subject)
	if avg := testing.AllocsPerRun(50, func() {
		ScoreStriped16(p16, params.Gaps, subject)
	}); avg > kernelAllocCap {
		t.Fatalf("ScoreStriped16 allocates %.2f objects per call, want 0", avg)
	}
}

func TestAllocsStripedKernel128(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	params := sw.DefaultParams()
	query := randSeq(rng, 120)
	subject := randSeq(rng, 200)
	p, ok := newProfile128(params.Matrix, query)
	if !ok {
		t.Fatal("profile128 construction failed")
	}
	scoreStriped128(p, params.Gaps, subject)
	if avg := testing.AllocsPerRun(50, func() {
		scoreStriped128(p, params.Gaps, subject)
	}); avg > kernelAllocCap {
		t.Fatalf("scoreStriped128 allocates %.2f objects per call, want 0", avg)
	}
}

// TestAllocsInterSeqSteadyState pins the whole-task allocation budget of
// the inter-sequence engine: with the kernel pooled, a Scores call may
// allocate only its output slice and overflow bookkeeping — a constant,
// not a function of the subject count.
func TestAllocsInterSeqSteadyState(t *testing.T) {
	db := synth.RandomSet(alphabet.Protein, 64, 10, 150, 41)
	query := synth.RandomSet(alphabet.Protein, 1, 80, 80, 42).Seqs[0].Residues
	e := NewInterSeq(sw.DefaultParams())
	e.Scores(query, db) // warm the kernel pool
	// Budget: the out slice plus small escalation bookkeeping. The cap is
	// deliberately a hard small constant — before pooling, this path cost
	// O(queryLen) words per call.
	const interAllocCap = 8
	if avg := testing.AllocsPerRun(20, func() {
		e.Scores(query, db)
	}); avg > interAllocCap {
		t.Fatalf("InterSeq.Scores allocates %.1f objects per call, cap %d", avg, interAllocCap)
	}
}

// TestAllocsStripedEngineSteadyState is the same budget for the striped
// engine fed a shared profile set, the configuration the wave dispatcher
// runs: profile construction amortized away, rows pooled, so each task
// pays the output slice and nothing per subject.
func TestAllocsStripedEngineSteadyState(t *testing.T) {
	db := synth.RandomSet(alphabet.Protein, 64, 10, 150, 43)
	query := synth.RandomSet(alphabet.Protein, 1, 80, 80, 44).Seqs[0].Residues
	params := sw.DefaultParams()
	e := NewStriped(params)
	prof := scoring.NewQueryProfiles(params.Matrix, query)
	e.ScoresProfiled(query, prof, db) // warm pools and build the profiles once
	const stripedAllocCap = 8
	if avg := testing.AllocsPerRun(20, func() {
		e.ScoresProfiled(query, prof, db)
	}); avg > stripedAllocCap {
		t.Fatalf("Striped.ScoresProfiled allocates %.1f objects per call, cap %d", avg, stripedAllocCap)
	}
}
