package swvector

import (
	"math/rand"
	"testing"
	"testing/quick"

	"swdual/internal/alphabet"
	"swdual/internal/seq"
	"swdual/internal/sw"
	"swdual/internal/synth"
)

func TestV128Primitives(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	get := func(x v128, l int) uint8 {
		if l < 8 {
			return byteAt(x.lo, l)
		}
		return byteAt(x.hi, l-8)
	}
	set := func(x v128, l int, v uint8) v128 {
		if l < 8 {
			x.lo = withByte(x.lo, l, v)
		} else {
			x.hi = withByte(x.hi, l-8, v)
		}
		return x
	}
	for iter := 0; iter < 1000; iter++ {
		var a, b v128
		for l := 0; l < Lanes128; l++ {
			a = set(a, l, uint8(rng.Intn(256)))
			b = set(b, l, uint8(rng.Intn(256)))
		}
		add := addSat128(a, b)
		sub := subSat128(a, b)
		mx := max128(a, b)
		for l := 0; l < Lanes128; l++ {
			x, y := int(get(a, l)), int(get(b, l))
			if s := x + y; s > 255 {
				if get(add, l) != 255 {
					t.Fatalf("addSat lane %d: %d", l, get(add, l))
				}
			} else if int(get(add, l)) != s {
				t.Fatalf("addSat lane %d: %d want %d", l, get(add, l), s)
			}
			d := x - y
			if d < 0 {
				d = 0
			}
			if int(get(sub, l)) != d {
				t.Fatalf("subSat lane %d", l)
			}
			m := x
			if y > m {
				m = y
			}
			if int(get(mx, l)) != m {
				t.Fatalf("max lane %d", l)
			}
		}
	}
}

func TestLaneShiftUp128CarriesAcrossWords(t *testing.T) {
	var x v128
	x.lo = withByte(x.lo, 7, 0xAB)
	shifted := laneShiftUp128(x, 0xCD)
	if byteAt(shifted.hi, 0) != 0xAB {
		t.Fatalf("lane 7 did not carry into lane 8: %016x", shifted.hi)
	}
	if byteAt(shifted.lo, 0) != 0xCD {
		t.Fatal("fill byte lost")
	}
}

func TestStriped128MatchesScalar(t *testing.T) {
	p := params()
	rng := rand.New(rand.NewSource(62))
	for iter := 0; iter < 200; iter++ {
		q := randSeq(rng, 1+rng.Intn(120))
		d := randSeq(rng, 1+rng.Intn(150))
		prof, ok := newProfile128(p.Matrix, q)
		if !ok {
			t.Fatal("profile build failed")
		}
		got, over := scoreStriped128(prof, p.Gaps, d)
		if over {
			continue
		}
		if want := sw.Score(p, q, d); got != want {
			t.Fatalf("iter %d: striped128 %d scalar %d (|q|=%d |d|=%d)", iter, got, want, len(q), len(d))
		}
	}
}

func TestStriped128EngineWithOverflow(t *testing.T) {
	p := params()
	long := make([]byte, 600)
	for i := range long {
		long[i] = byte(i % 20)
	}
	db := seq.NewSet(alphabet.Protein)
	db.AddEncoded("self", "", long)
	db.AddEncoded("tiny", "", long[:6])
	want := sw.NewScalar(p).Scores(long, db)
	got := NewStriped128(p).Scores(long, db)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("seq %d: %d vs %d", i, got[i], want[i])
		}
	}
}

func TestAllStripedWidthsAgree(t *testing.T) {
	p := params()
	db := synth.RandomSet(alphabet.Protein, 30, 1, 200, 63)
	q := randSeq(rand.New(rand.NewSource(64)), 90)
	e8 := NewStriped(p).Scores(q, db)
	e128 := NewStriped128(p).Scores(q, db)
	inter := NewInterSeq(p).Scores(q, db)
	for i := range e8 {
		if e8[i] != e128[i] || e8[i] != inter[i] {
			t.Fatalf("seq %d: striped=%d striped128=%d interseq=%d", i, e8[i], e128[i], inter[i])
		}
	}
}

func TestQuickStriped128EqualsScalar(t *testing.T) {
	p := params()
	eng := NewStriped128(p)
	f := func(qr, dr []byte) bool {
		q := clampResidues(qr, 100)
		d := clampResidues(dr, 140)
		if len(q) == 0 || len(d) == 0 {
			return true
		}
		db := seq.NewSet(alphabet.Protein)
		db.AddEncoded("x", "", d)
		return eng.Scores(q, db)[0] == sw.Score(p, q, d)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}
