package swvector

import "sync"

// The striped kernels are called once per database sequence, and each
// call needs three segLen-sized DP rows (H store/load and E). Taking
// them from the allocator per subject is where a vectorized database
// search leaks throughput — SWIPE and Farrar's striped implementation
// both keep these rows resident — so the kernels draw them from
// sync.Pools instead: one Get/Put pair per kernel invocation, zero
// allocations in steady state.

// resizeCleared returns a zeroed slice of length n, reusing buf's
// backing array when it is large enough — the one grow-or-clear policy
// every pooled buffer in this package shares.
func resizeCleared[T any](buf []T, n int) []T {
	if cap(buf) < n {
		return make([]T, n)
	}
	buf = buf[:n]
	clear(buf)
	return buf
}

// rowScratch is one pooled backing array for the uint64 SWAR kernels.
type rowScratch struct{ buf []uint64 }

var rowPool = sync.Pool{New: func() any { return new(rowScratch) }}

// getRows returns a pooled scratch and three zeroed segLen-sized rows
// carved from its backing array. Callers must putRows the scratch when
// the kernel returns; the row slices die with it.
func getRows(segLen int) (sc *rowScratch, hStore, hLoad, vE []uint64) {
	sc = rowPool.Get().(*rowScratch)
	sc.buf = resizeCleared(sc.buf, 3*segLen)
	return sc, sc.buf[0:segLen:segLen], sc.buf[segLen : 2*segLen : 2*segLen], sc.buf[2*segLen : 3*segLen]
}

func putRows(sc *rowScratch) { rowPool.Put(sc) }

// rowScratch128 is the pooled backing array for the 128-bit kernels.
type rowScratch128 struct{ buf []v128 }

var rowPool128 = sync.Pool{New: func() any { return new(rowScratch128) }}

func getRows128(segLen int) (sc *rowScratch128, hStore, hLoad, vE []v128) {
	sc = rowPool128.Get().(*rowScratch128)
	sc.buf = resizeCleared(sc.buf, 3*segLen)
	return sc, sc.buf[0:segLen:segLen], sc.buf[segLen : 2*segLen : 2*segLen], sc.buf[2*segLen : 3*segLen]
}

func putRows128(sc *rowScratch128) { rowPool128.Put(sc) }
