package swvector

import (
	"math/rand"
	"testing"
	"testing/quick"

	"swdual/internal/alphabet"
	"swdual/internal/scoring"
	"swdual/internal/seq"
	"swdual/internal/sw"
	"swdual/internal/synth"
)

func randSeq(rng *rand.Rand, n int) []byte {
	s := make([]byte, n)
	for i := range s {
		s[i] = byte(rng.Intn(alphabet.Protein.Core()))
	}
	return s
}

func TestSWARPrimitives8(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for iter := 0; iter < 2000; iter++ {
		var a, b uint64
		var wantAdd, wantSub, wantMax uint64
		for l := 0; l < 8; l++ {
			x := uint8(rng.Intn(256))
			y := uint8(rng.Intn(256))
			a = withByte(a, l, x)
			b = withByte(b, l, y)
			s := int(x) + int(y)
			if s > 255 {
				s = 255
			}
			d := int(x) - int(y)
			if d < 0 {
				d = 0
			}
			m := x
			if y > m {
				m = y
			}
			wantAdd = withByte(wantAdd, l, uint8(s))
			wantSub = withByte(wantSub, l, uint8(d))
			wantMax = withByte(wantMax, l, m)
		}
		if got := addSat8(a, b); got != wantAdd {
			t.Fatalf("addSat8(%016x,%016x)=%016x want %016x", a, b, got, wantAdd)
		}
		if got := subSat8(a, b); got != wantSub {
			t.Fatalf("subSat8(%016x,%016x)=%016x want %016x", a, b, got, wantSub)
		}
		if got := max8(a, b); got != wantMax {
			t.Fatalf("max8(%016x,%016x)=%016x want %016x", a, b, got, wantMax)
		}
		if got, want := anyGT8(a, b), wantSub != 0; got != want {
			t.Fatalf("anyGT8(%016x,%016x)=%v want %v", a, b, got, want)
		}
	}
}

func TestSWARPrimitives16(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for iter := 0; iter < 2000; iter++ {
		var a, b uint64
		var wantAdd, wantSub, wantMax uint64
		for l := 0; l < 4; l++ {
			x := uint16(rng.Intn(65536))
			y := uint16(rng.Intn(65536))
			a = withLane16(a, l, x)
			b = withLane16(b, l, y)
			s := int(x) + int(y)
			if s > 65535 {
				s = 65535
			}
			d := int(x) - int(y)
			if d < 0 {
				d = 0
			}
			m := x
			if y > m {
				m = y
			}
			wantAdd = withLane16(wantAdd, l, uint16(s))
			wantSub = withLane16(wantSub, l, uint16(d))
			wantMax = withLane16(wantMax, l, m)
		}
		if got := addSat16(a, b); got != wantAdd {
			t.Fatalf("addSat16(%016x,%016x)=%016x want %016x", a, b, got, wantAdd)
		}
		if got := subSat16(a, b); got != wantSub {
			t.Fatalf("subSat16(%016x,%016x)=%016x want %016x", a, b, got, wantSub)
		}
		if got := max16(a, b); got != wantMax {
			t.Fatalf("max16(%016x,%016x)=%016x want %016x", a, b, got, wantMax)
		}
	}
}

func params() sw.Params {
	return sw.Params{Matrix: scoring.BLOSUM62, Gaps: scoring.DefaultGaps}
}

func TestStriped8MatchesScalar(t *testing.T) {
	p := params()
	rng := rand.New(rand.NewSource(3))
	for iter := 0; iter < 300; iter++ {
		q := randSeq(rng, 1+rng.Intn(90))
		d := randSeq(rng, 1+rng.Intn(120))
		want := sw.Score(p, q, d)
		prof, err := scoring.NewStripedProfile8(p.Matrix, q)
		if err != nil {
			t.Fatal(err)
		}
		got, over := ScoreStriped8(prof, p.Gaps, d)
		if over {
			continue // saturated; escalation path is tested separately
		}
		if got != want {
			t.Fatalf("iter %d: striped8=%d scalar=%d (|q|=%d |d|=%d)", iter, got, want, len(q), len(d))
		}
	}
}

func TestStriped16MatchesScalar(t *testing.T) {
	p := params()
	rng := rand.New(rand.NewSource(4))
	for iter := 0; iter < 200; iter++ {
		q := randSeq(rng, 1+rng.Intn(150))
		d := randSeq(rng, 1+rng.Intn(200))
		want := sw.Score(p, q, d)
		prof := scoring.NewStripedProfile16(p.Matrix, q)
		got, over := ScoreStriped16(prof, p.Gaps, d)
		if over {
			t.Fatalf("unexpected 16-bit overflow for |q|=%d |d|=%d", len(q), len(d))
		}
		if got != want {
			t.Fatalf("iter %d: striped16=%d scalar=%d (|q|=%d |d|=%d)", iter, got, want, len(q), len(d))
		}
	}
}

func TestStripedOverflowEscalation(t *testing.T) {
	p := params()
	// Identical long sequences force scores far beyond 8 bits.
	q := make([]byte, 400)
	for i := range q {
		q[i] = byte(i % 20)
	}
	want := sw.Score(p, q, q)
	if want < 255 {
		t.Fatalf("self-score %d too small to exercise overflow", want)
	}
	prof8, err := scoring.NewStripedProfile8(p.Matrix, q)
	if err != nil {
		t.Fatal(err)
	}
	_, over := ScoreStriped8(prof8, p.Gaps, q)
	if !over {
		t.Fatal("expected 8-bit overflow")
	}
	db := seq.NewSet(alphabet.Protein)
	db.AddEncoded("self", "", q)
	eng := NewStriped(p)
	if got := eng.Scores(q, db)[0]; got != want {
		t.Fatalf("escalated score=%d want %d", got, want)
	}
}

func TestInterSeqMatchesScalar(t *testing.T) {
	p := params()
	rng := rand.New(rand.NewSource(5))
	for iter := 0; iter < 20; iter++ {
		q := randSeq(rng, 1+rng.Intn(80))
		db := synth.RandomSet(alphabet.Protein, 1+rng.Intn(30), 1, 150, int64(iter))
		want := sw.NewScalar(p).Scores(q, db)
		got := NewInterSeq(p).Scores(q, db)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("iter %d seq %d: interseq=%d scalar=%d (|q|=%d |d|=%d)",
					iter, i, got[i], want[i], len(q), db.Seqs[i].Len())
			}
		}
	}
}

func TestInterSeqEmptyAndTiny(t *testing.T) {
	p := params()
	db := seq.NewSet(alphabet.Protein)
	db.AddEncoded("empty", "", nil)
	db.AddEncoded("one", "", []byte{0})
	db.AddEncoded("empty2", "", nil)
	q := alphabet.Protein.MustEncode("ARNDA")
	got := NewInterSeq(p).Scores(q, db)
	want := sw.NewScalar(p).Scores(q, db)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("seq %d: got %d want %d", i, got[i], want[i])
		}
	}
}

func TestInterSeqOverflowRescore(t *testing.T) {
	p := params()
	long := make([]byte, 500)
	for i := range long {
		long[i] = byte(i % 20)
	}
	db := seq.NewSet(alphabet.Protein)
	db.AddEncoded("self", "", long)
	db.AddEncoded("short", "", long[:10])
	want := sw.NewScalar(p).Scores(long, db)
	got := NewInterSeq(p).Scores(long, db)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("seq %d: got %d want %d", i, got[i], want[i])
		}
	}
}

// TestQuickStripedEqualsScalar is the module's central property-based
// check: for arbitrary sequences the striped engine equals the oracle.
func TestQuickStripedEqualsScalar(t *testing.T) {
	p := params()
	eng := NewStriped(p)
	f := func(qr, dr []byte) bool {
		q := clampResidues(qr, 120)
		d := clampResidues(dr, 160)
		if len(q) == 0 || len(d) == 0 {
			return true
		}
		db := seq.NewSet(alphabet.Protein)
		db.AddEncoded("x", "", d)
		return eng.Scores(q, db)[0] == sw.Score(p, q, d)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickInterSeqEqualsScalar property-checks the inter-sequence engine.
func TestQuickInterSeqEqualsScalar(t *testing.T) {
	p := params()
	eng := NewInterSeq(p)
	f := func(qr []byte, subjects [][]byte) bool {
		q := clampResidues(qr, 100)
		if len(q) == 0 {
			return true
		}
		db := seq.NewSet(alphabet.Protein)
		for i, s := range subjects {
			if i == 12 {
				break
			}
			db.AddEncoded("s", "", clampResidues(s, 140))
		}
		if db.Len() == 0 {
			return true
		}
		got := eng.Scores(q, db)
		want := sw.NewScalar(p).Scores(q, db)
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// clampResidues maps arbitrary fuzz bytes into valid residue codes and
// bounds the length so the oracle stays fast.
func clampResidues(b []byte, maxLen int) []byte {
	if len(b) > maxLen {
		b = b[:maxLen]
	}
	out := make([]byte, len(b))
	for i, v := range b {
		out[i] = v % byte(alphabet.Protein.Len())
	}
	return out
}

// TestZeroOpenGapRegression pins the case the cross-engine suite caught:
// with Gs == 0 (open cost equal to extend cost) the classic lazy-F early
// termination under-corrects; the kernels must route to the exact
// propagation path. Minimal shrunk reproducer from BLOSUM50 Gs=0 Ge=4.
func TestZeroOpenGapRegression(t *testing.T) {
	q := []byte{15, 3, 1, 4, 2, 0, 15, 14, 6, 3, 7, 7, 15, 0, 14, 0, 3, 10, 18, 2, 15, 15, 16, 0, 13, 8, 15, 9, 0, 0, 16, 1, 14, 4, 13, 16, 19, 6, 14, 5, 3, 9, 10, 11, 7, 10, 14, 7, 18}
	d := []byte{16, 11, 18, 1, 11, 19, 15, 14, 16, 10, 2, 11, 6, 10, 10, 7}
	p := sw.Params{Matrix: scoring.BLOSUM50, Gaps: scoring.Gaps{Start: 0, Extend: 4}}
	want := sw.Score(p, q, d)
	db := seq.NewSet(alphabet.Protein)
	db.AddEncoded("x", "", d)
	for _, eng := range []sw.Engine{NewStriped(p), NewStriped128(p), NewInterSeq(p)} {
		if got := eng.Scores(q, db)[0]; got != want {
			t.Fatalf("%s: got %d want %d", eng.Name(), got, want)
		}
	}
}

// TestQuickStripedZeroOpenGap fuzzes the exact-propagation path.
func TestQuickStripedZeroOpenGap(t *testing.T) {
	p := sw.Params{Matrix: scoring.BLOSUM62, Gaps: scoring.Gaps{Start: 0, Extend: 3}}
	eng := NewStriped(p)
	eng128 := NewStriped128(p)
	f := func(qr, dr []byte) bool {
		q := clampResidues(qr, 100)
		d := clampResidues(dr, 120)
		if len(q) == 0 || len(d) == 0 {
			return true
		}
		db := seq.NewSet(alphabet.Protein)
		db.AddEncoded("x", "", d)
		want := sw.Score(p, q, d)
		return eng.Scores(q, db)[0] == want && eng128.Scores(q, db)[0] == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
