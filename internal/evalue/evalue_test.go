package evalue

import (
	"math"
	"testing"
	"testing/quick"

	"swdual/internal/scoring"
)

func TestUngappedLambdaBLOSUM62(t *testing.T) {
	lambda, err := UngappedLambda(scoring.BLOSUM62)
	if err != nil {
		t.Fatal(err)
	}
	// Published ungapped lambda for BLOSUM62 with Robinson frequencies is
	// ~0.318-0.324 (depends slightly on the frequency set).
	if lambda < 0.30 || lambda > 0.34 {
		t.Fatalf("BLOSUM62 ungapped lambda %.4f outside [0.30, 0.34]", lambda)
	}
	// Verify it actually solves the equation.
	sum := 0.0
	for i := 0; i < 20; i++ {
		for j := 0; j < 20; j++ {
			sum += background[i] * background[j] * math.Exp(lambda*float64(scoring.BLOSUM62.Score(byte(i), byte(j))))
		}
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("lambda does not solve the K-A equation: sum %.8f", sum)
	}
}

func TestUngappedLambdaBLOSUM50(t *testing.T) {
	lambda, err := UngappedLambda(scoring.BLOSUM50)
	if err != nil {
		t.Fatal(err)
	}
	if lambda < 0.20 || lambda > 0.26 {
		t.Fatalf("BLOSUM50 ungapped lambda %.4f outside [0.20, 0.26]", lambda)
	}
}

func TestLambdaRejectsPositiveExpectation(t *testing.T) {
	m := scoring.Simple("all-match", 20, 20, 1, 1) // every score positive
	if _, err := UngappedLambda(m); err == nil {
		t.Fatal("positive-expectation matrix must be rejected")
	}
}

func TestEntropyPositive(t *testing.T) {
	lambda, err := UngappedLambda(scoring.BLOSUM62)
	if err != nil {
		t.Fatal(err)
	}
	h := Entropy(scoring.BLOSUM62, lambda)
	// BLOSUM62 relative entropy is ~0.7 bits = ~0.48 nats per pair...
	// with Robinson frequencies the value lands near 0.40-0.55 nats.
	if h < 0.2 || h > 0.8 {
		t.Fatalf("entropy %.4f nats outside plausible band", h)
	}
}

func TestForParamsGappedLookup(t *testing.T) {
	p, err := ForParams(scoring.BLOSUM62, scoring.Gaps{Start: 10, Extend: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !p.Gapped || p.Lambda != 0.255 {
		t.Fatalf("expected published gapped params, got %+v", p)
	}
	// Unknown gap model falls back to ungapped.
	p2, err := ForParams(scoring.BLOSUM62, scoring.Gaps{Start: 3, Extend: 3})
	if err != nil {
		t.Fatal(err)
	}
	if p2.Gapped {
		t.Fatalf("expected ungapped fallback, got %+v", p2)
	}
}

func TestEValueMonotonicity(t *testing.T) {
	p, err := ForParams(scoring.BLOSUM62, scoring.DefaultGaps)
	if err != nil {
		t.Fatal(err)
	}
	// Higher scores give lower E-values; larger search spaces give higher.
	if p.EValue(100, 300, 1e6) <= p.EValue(200, 300, 1e6) {
		t.Fatal("E-value must decrease with score")
	}
	if p.EValue(100, 300, 1e6) >= p.EValue(100, 300, 1e8) {
		t.Fatal("E-value must increase with database size")
	}
	if p.BitScore(200) <= p.BitScore(100) {
		t.Fatal("bit score must increase with raw score")
	}
}

func TestScoreForEValueRoundTrip(t *testing.T) {
	p, err := ForParams(scoring.BLOSUM62, scoring.DefaultGaps)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range []float64{10, 1e-3, 1e-10} {
		s := p.ScoreForEValue(e, 350, 193_000_000)
		if got := p.EValue(s, 350, 193_000_000); got > e*(1+1e-9) {
			t.Fatalf("threshold %d for E=%g has E-value %g", s, e, got)
		}
		if got := p.EValue(s-1, 350, 193_000_000); got <= e {
			t.Fatalf("threshold %d for E=%g is not minimal (score-1 has E=%g)", s, e, got)
		}
	}
	if p.ScoreForEValue(0, 10, 10) != math.MaxInt32 {
		t.Fatal("zero E-value threshold")
	}
}

// Property: E-values are positive and finite for sane inputs.
func TestQuickEValueSanity(t *testing.T) {
	p, err := ForParams(scoring.BLOSUM62, scoring.DefaultGaps)
	if err != nil {
		t.Fatal(err)
	}
	f := func(raw uint16, qlen uint16, db uint32) bool {
		if qlen == 0 || db == 0 {
			return true
		}
		e := p.EValue(int(raw%2000), int(qlen), int64(db))
		return e > 0 && !math.IsInf(e, 0) && !math.IsNaN(e)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
