// Package evalue implements Karlin-Altschul statistics for local
// alignment scores: the ungapped λ parameter is solved exactly from the
// scoring matrix and residue background frequencies (Karlin & Altschul
// 1990), relative entropy H follows, and gapped (λ, K) pairs for the
// standard matrix/gap combinations use the published BLAST values. From
// these the package converts raw Smith-Waterman scores into bit scores
// and E-values for a given search space, which is what a production
// database-search tool reports next to each hit.
package evalue

import (
	"fmt"
	"math"

	"swdual/internal/scoring"
)

// Robinson-Robinson background frequencies over the 20 standard residues
// (same source as package synth, normalized to 1).
var background = [20]float64{
	0.07805, 0.05129, 0.04487, 0.05364, 0.01925, 0.04264, 0.06295, 0.07377, 0.02199, 0.05142,
	0.09019, 0.05744, 0.02243, 0.03856, 0.05203, 0.07129, 0.05841, 0.01330, 0.03216, 0.06441,
}

// UngappedLambda solves sum_ij p_i p_j exp(lambda*S_ij) = 1 for
// lambda > 0 by bisection. The equation has a unique positive root when
// the expected score is negative and a positive score exists; an error is
// returned otherwise (such matrices cannot produce local-alignment
// statistics).
func UngappedLambda(m *scoring.Matrix) (float64, error) {
	expected := 0.0
	positive := false
	for i := 0; i < 20; i++ {
		for j := 0; j < 20; j++ {
			s := float64(m.Score(byte(i), byte(j)))
			expected += background[i] * background[j] * s
			if s > 0 {
				positive = true
			}
		}
	}
	if expected >= 0 || !positive {
		return 0, fmt.Errorf("evalue: matrix %s has expected score %.4f; Karlin-Altschul statistics require a negative expectation and at least one positive score", m.Name(), expected)
	}
	f := func(lambda float64) float64 {
		sum := 0.0
		for i := 0; i < 20; i++ {
			for j := 0; j < 20; j++ {
				sum += background[i] * background[j] * math.Exp(lambda*float64(m.Score(byte(i), byte(j))))
			}
		}
		return sum - 1
	}
	// f(0) = 0; f'(0) = expected < 0; f -> +inf. Bracket the positive
	// root.
	lo, hi := 1e-6, 1.0
	for f(hi) < 0 {
		hi *= 2
		if hi > 100 {
			return 0, fmt.Errorf("evalue: lambda bracket failed for %s", m.Name())
		}
	}
	for iter := 0; iter < 200 && hi-lo > 1e-12; iter++ {
		mid := (lo + hi) / 2
		if f(mid) < 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2, nil
}

// Entropy returns the relative entropy H (nats per aligned pair) of the
// matrix at the given lambda.
func Entropy(m *scoring.Matrix, lambda float64) float64 {
	h := 0.0
	for i := 0; i < 20; i++ {
		for j := 0; j < 20; j++ {
			s := float64(m.Score(byte(i), byte(j)))
			q := background[i] * background[j] * math.Exp(lambda*s)
			h += q * lambda * s
		}
	}
	return h
}

// Params are the Karlin-Altschul parameters used for score conversion.
type Params struct {
	Lambda float64
	K      float64
	// Gapped records whether the parameters account for the gap model
	// (published values) or are the ungapped solution.
	Gapped bool
}

// gappedTable holds published BLAST parameter sets, keyed by matrix name
// and the (Gs, Ge) gap model in this module's notation (BLAST's
// "open/extend" 11/1 for BLOSUM62 corresponds to Gs=10, Ge=1 here; the
// CUDASW++ default 10/2 matches BLAST 10-2).
var gappedTable = map[string]map[[2]int]Params{
	"BLOSUM62": {
		{10, 1}: {Lambda: 0.267, K: 0.041, Gapped: true},
		{10, 2}: {Lambda: 0.255, K: 0.035, Gapped: true},
		{9, 2}:  {Lambda: 0.279, K: 0.058, Gapped: true},
		{12, 1}: {Lambda: 0.283, K: 0.059, Gapped: true},
	},
	"BLOSUM50": {
		{10, 3}: {Lambda: 0.243, K: 0.070, Gapped: true},
		{12, 2}: {Lambda: 0.243, K: 0.070, Gapped: true},
		{14, 2}: {Lambda: 0.254, K: 0.075, Gapped: true},
	},
}

// ForParams returns conversion parameters for a matrix and gap model:
// published gapped values when available, otherwise the exact ungapped
// solution (flagged Gapped=false; its E-values are conservative for
// gapped searches).
func ForParams(m *scoring.Matrix, gaps scoring.Gaps) (Params, error) {
	if byGap, ok := gappedTable[m.Name()]; ok {
		if p, ok := byGap[[2]int{gaps.Start, gaps.Extend}]; ok {
			return p, nil
		}
	}
	lambda, err := UngappedLambda(m)
	if err != nil {
		return Params{}, err
	}
	// The ungapped K for protein matrices clusters around 0.1-0.35; use
	// the standard BLOSUM62 ungapped value as the conservative default.
	return Params{Lambda: lambda, K: 0.13, Gapped: false}, nil
}

// BitScore converts a raw score to bits.
func (p Params) BitScore(raw int) float64 {
	return (p.Lambda*float64(raw) - math.Log(p.K)) / math.Ln2
}

// EValue returns the expected number of chance alignments with score at
// least raw in a search of a query of length m against a database of n
// total residues.
func (p Params) EValue(raw, queryLen int, dbResidues int64) float64 {
	return p.K * float64(queryLen) * float64(dbResidues) * math.Exp(-p.Lambda*float64(raw))
}

// ScoreForEValue returns the minimal raw score whose E-value is at most e
// for the given search space — the significance threshold a search tool
// applies.
func (p Params) ScoreForEValue(e float64, queryLen int, dbResidues int64) int {
	if e <= 0 {
		return math.MaxInt32
	}
	raw := (math.Log(p.K*float64(queryLen)*float64(dbResidues)) - math.Log(e)) / p.Lambda
	return int(math.Ceil(raw))
}
