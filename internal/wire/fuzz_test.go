package wire

import (
	"bytes"
	"math"
	"testing"
)

// FuzzUnmarshal hammers the frame decoder with arbitrary type codes and
// payloads: wire bytes are untrusted input, so malformed frames must
// come back as errors — never a panic or runaway allocation — and any
// frame that does decode must survive a marshal/unmarshal round trip
// unchanged (the decoder and encoder agree on the format).
func FuzzUnmarshal(f *testing.F) {
	seed := func(msg any) {
		typ, payload, err := Marshal(msg)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(typ, payload)
	}
	seed(&Hello{Version: Version, Name: "worker-1", Kind: 1, RateGCUPS: 24.8, DBChecksum: 0xdeadbeef})
	seed(&Hello{Name: "nan-rate", RateGCUPS: math.NaN()}) // floats must round-trip bit-exactly, NaN included
	seed(&Welcome{Version: Version, QueryCount: 3, DBChecksum: 7})
	seed(&Task{QueryIndex: 2, QueryID: "q-2", Residues: []byte{0, 1, 2, 3, 19}})
	seed(&Result{QueryIndex: 1, ElapsedNS: 5, SimSeconds: 0.25, Cells: 99,
		Hits: []ResultHit{{SeqIndex: 4, Score: -3, SeqID: "hit"}, {SeqIndex: 0, Score: 120, SeqID: ""}}})
	seed(&ErrorMsg{Text: "boom"})
	seed(nil) // Done frame
	// Malformed seeds: truncated fields, lying length prefixes, huge hit
	// counts, unknown type codes.
	f.Add(TypeHello, []byte{1})
	f.Add(TypeTask, []byte{1, 0, 0, 0, 0xff, 0xff})
	f.Add(TypeResult, []byte{0xff, 0xff, 0xff, 0xff})
	f.Add(TypeResult, append(make([]byte, 28), 0xff, 0xff, 0xff, 0x7f))
	f.Add(TypeError, []byte{0xff, 0xff, 'x'})
	f.Add(byte(0), []byte{})
	f.Add(byte(200), []byte("garbage"))

	f.Fuzz(func(t *testing.T, typ byte, payload []byte) {
		msg, err := Unmarshal(typ, payload) // must never panic
		if err != nil {
			return
		}
		typ2, p2, err := Marshal(msg)
		if err != nil {
			t.Fatalf("decoded %T does not re-marshal: %v", msg, err)
		}
		if typ2 != typ {
			t.Fatalf("type changed across round trip: %d -> %d", typ, typ2)
		}
		msg2, err := Unmarshal(typ2, p2)
		if err != nil {
			t.Fatalf("re-decode of %T failed: %v", msg, err)
		}
		// Compare the canonical encodings, not the structs: byte equality
		// is the actual wire contract and stays true for NaN floats,
		// where reflect.DeepEqual would lie.
		typ3, p3, err := Marshal(msg2)
		if err != nil {
			t.Fatalf("re-decoded %T does not re-marshal: %v", msg2, err)
		}
		if typ3 != typ2 || !bytes.Equal(p3, p2) {
			t.Fatalf("encoding not a fixpoint:\n first: %x\nsecond: %x", p2, p3)
		}
	})
}
