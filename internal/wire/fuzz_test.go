package wire

import (
	"bytes"
	"math"
	"testing"
)

// FuzzUnmarshal hammers the frame decoder with arbitrary type codes and
// payloads: wire bytes are untrusted input, so malformed frames must
// come back as errors — never a panic or runaway allocation — and any
// frame that does decode must survive a marshal/unmarshal round trip
// unchanged (the decoder and encoder agree on the format).
func FuzzUnmarshal(f *testing.F) {
	seed := func(msg any) {
		typ, payload, err := Marshal(msg)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(typ, payload)
	}
	seed(&Hello{Version: Version, Name: "worker-1", Kind: 1, RateGCUPS: 24.8, DBChecksum: 0xdeadbeef})
	seed(&Hello{Name: "nan-rate", RateGCUPS: math.NaN()}) // floats must round-trip bit-exactly, NaN included
	seed(&Welcome{Version: Version, QueryCount: 3, DBChecksum: 7})
	seed(&Task{QueryIndex: 2, QueryID: "q-2", Residues: []byte{0, 1, 2, 3, 19}})
	seed(&Result{QueryIndex: 1, ElapsedNS: 5, SimSeconds: 0.25, Cells: 99,
		Hits: []ResultHit{{SeqIndex: 4, Score: -3, SeqID: "hit"}, {SeqIndex: 0, Score: 120, SeqID: ""}}})
	seed(&ErrorMsg{Text: "boom"})
	seed(nil) // Done frame
	// Multiplexed-dialect frames: request ids, nested result lists,
	// float slices.
	seed(&SearchRequest{ID: 7, TopK: 5, Queries: []Query{{ID: "q0", Residues: []byte{0, 1, 2}}, {ID: "", Residues: nil}}})
	seed(&SearchResult{ID: 7, Results: []Result{
		{QueryIndex: 0, ElapsedNS: 3, Cells: 12, Hits: []ResultHit{{SeqIndex: 1, Score: 44, SeqID: "s"}}},
		{QueryIndex: 1},
	}})
	// A degraded answer: the trailing coverage block names the skipped
	// ranges (version 6).
	seed(&SearchResult{ID: 8, Results: []Result{{QueryIndex: 0}},
		Coverage: &Coverage{RangesSearched: 1, RangesTotal: 2, ResiduesSearched: 500, ResiduesTotal: 1200,
			Skipped: []SkippedRange{{Index: 1, Lo: 10, Hi: 20, Reason: "all 2 replicas down"}}}})
	seed(&Cancel{ID: 9})
	seed(&ReqError{ID: 9, Text: "engine: searcher is closed"})
	seed(&StatsRequest{ID: 2})
	seed(&StatsResponse{ID: 2, DBSequences: 10, DBResidues: 1234, DBChecksum: 0xfeed, Prepared: 1, WorkersStarted: 2, Searches: 3, Queries: 4, Waves: 5, BatchedWaves: 1,
		PipelinedWaves: 4, OverlapNanos: 987654321,
		CacheHits: 11, CacheMisses: 12, CacheEvictions: 13, CollapsedSearches: 14,
		ProfileEntries: 15, ProfileHits: 16, ProfileMisses: 17, ProfileEvictions: 18,
		HedgedSearches: 19, FailedOver: 20, Redials: 21, DegradedSearches: 22,
		Workers: []WorkerRateInfo{{Name: "gpu-0", Kind: 1, AdvertisedGCUPS: 24.8, ObservedGCUPS: math.NaN(), Tasks: 7}, {Name: "", Kind: 0}}})
	seed(&PlanRequest{ID: 3, QueryLens: []uint32{30, 80, 120}})
	seed(&PlanResponse{ID: 3, Algorithm: "dual-approx", Makespan: 1.5, CPULoads: []float64{1.5, 1.25}, GPULoads: []float64{math.NaN()}})
	seed(&ChecksumRequest{ID: 4})
	seed(&ChecksumResponse{ID: 4, Checksum: 0xdeadbeef})
	seed(&InfoRequest{ID: 5})
	seed(&Info{ID: 5, Alphabet: "protein", Checksum: 0xbeef, Lengths: []uint32{10, 0, 300}})
	// Malformed seeds: truncated fields, lying length prefixes, huge hit
	// counts, unknown type codes.
	f.Add(TypeHello, []byte{1})
	f.Add(TypeTask, []byte{1, 0, 0, 0, 0xff, 0xff})
	f.Add(TypeResult, []byte{0xff, 0xff, 0xff, 0xff})
	f.Add(TypeResult, append(make([]byte, 28), 0xff, 0xff, 0xff, 0x7f))
	f.Add(TypeError, []byte{0xff, 0xff, 'x'})
	f.Add(byte(0), []byte{})
	f.Add(byte(200), []byte("garbage"))
	// Malformed multiplexed frames: truncated ids, lying query/result
	// counts (must error before allocating), huge float-slice counts,
	// a result list whose inner hit count lies.
	f.Add(TypeSearchRequest, []byte{1, 2, 3})
	f.Add(TypeSearchRequest, append(make([]byte, 16), 0xff, 0xff, 0xff, 0x7f))
	f.Add(TypeSearchResult, append(make([]byte, 8), 0xff, 0xff, 0xff, 0x7f))
	f.Add(TypeSearchResult, append(make([]byte, 12), 0xff, 0xff, 0xff, 0x7f, 1, 2, 3))
	// A coverage block whose skipped-range count lies about the payload
	// (8-byte id, zero result count, flag byte, 24 bytes of coverage
	// counters, then a hostile count) — must error before allocating.
	f.Add(TypeSearchResult, append(append(append(make([]byte, 8), 0, 0, 0, 0, 1), make([]byte, 24)...), 0xff, 0xff, 0xff, 0x7f))
	// A SearchResult truncated before the version-6 flag byte.
	f.Add(TypeSearchResult, append(make([]byte, 8), 0, 0, 0, 0))
	f.Add(TypeCancel, []byte{1, 2})
	f.Add(TypeReqError, append(make([]byte, 8), 0xff, 0xff, 'x'))
	f.Add(TypeStatsResponse, make([]byte, 10))
	// StatsResponse whose trailing worker count lies about the payload
	// (the fixed fields occupy exactly 172 bytes since DegradedSearches
	// joined the replication counters, so the appended u32 is read as
	// the worker count).
	f.Add(TypeStatsResponse, append(make([]byte, 172), 0xff, 0xff, 0xff, 0x7f))
	f.Add(TypePlanRequest, append(make([]byte, 8), 0xff, 0xff, 0xff, 0xff))
	f.Add(TypePlanResponse, append(make([]byte, 10), 0xff, 0xff, 0xff, 0x7f))
	f.Add(TypeInfo, append(make([]byte, 8), 0, 0, 0xde, 0xad, 0xbe, 0xef, 0xff, 0xff, 0xff, 0xff))

	f.Fuzz(func(t *testing.T, typ byte, payload []byte) {
		msg, err := Unmarshal(typ, payload) // must never panic
		if err != nil {
			return
		}
		typ2, p2, err := Marshal(msg)
		if err != nil {
			t.Fatalf("decoded %T does not re-marshal: %v", msg, err)
		}
		if typ2 != typ {
			t.Fatalf("type changed across round trip: %d -> %d", typ, typ2)
		}
		msg2, err := Unmarshal(typ2, p2)
		if err != nil {
			t.Fatalf("re-decode of %T failed: %v", msg, err)
		}
		// Compare the canonical encodings, not the structs: byte equality
		// is the actual wire contract and stays true for NaN floats,
		// where reflect.DeepEqual would lie.
		typ3, p3, err := Marshal(msg2)
		if err != nil {
			t.Fatalf("re-decoded %T does not re-marshal: %v", msg2, err)
		}
		if typ3 != typ2 || !bytes.Equal(p3, p2) {
			t.Fatalf("encoding not a fixpoint:\n first: %x\nsecond: %x", p2, p3)
		}
	})
}
