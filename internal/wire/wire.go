// Package wire defines the binary master-worker protocol of the
// distributed SWDUAL runtime (paper §IV): length-prefixed frames with a
// one-byte message type, little-endian integers, and explicit versioning.
// The encoding is hand-rolled on encoding/binary so both ends allocate
// exactly what the declared lengths demand.
package wire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"net"
	"time"
)

// Protocol constants.
const (
	Version = 1
	// MaxFrame bounds a frame payload (64 MiB) to fail fast on corrupt
	// length prefixes.
	MaxFrame = 64 << 20
)

// Message type codes.
const (
	TypeHello byte = iota + 1
	TypeWelcome
	TypeTask
	TypeResult
	TypeDone
	TypeError
)

// Hello registers a worker with the master.
type Hello struct {
	Version    uint32
	Name       string
	Kind       uint8 // 0 = CPU pool, 1 = GPU pool
	RateGCUPS  float64
	DBChecksum uint32 // CRC of the worker's local database copy
}

// Welcome acknowledges registration.
type Welcome struct {
	Version    uint32
	QueryCount uint32
	DBChecksum uint32
}

// Task carries one query to compare against the worker's database copy.
type Task struct {
	QueryIndex uint32
	QueryID    string
	Residues   []byte
}

// ResultHit is one scored database hit inside a Result.
type ResultHit struct {
	SeqIndex uint32
	Score    int32
	SeqID    string
}

// Result returns one task's outcome.
type Result struct {
	QueryIndex uint32
	ElapsedNS  uint64
	SimSeconds float64
	Cells      uint64
	Hits       []ResultHit
}

// ErrorMsg reports a fatal condition to the peer.
type ErrorMsg struct {
	Text string
}

// Conn frames messages over a net.Conn.
type Conn struct {
	nc net.Conn
	br *bufio.Reader
	bw *bufio.Writer
}

// NewConn wraps a network connection.
func NewConn(nc net.Conn) *Conn {
	return &Conn{nc: nc, br: bufio.NewReaderSize(nc, 1<<16), bw: bufio.NewWriterSize(nc, 1<<16)}
}

// Close closes the underlying connection.
func (c *Conn) Close() error { return c.nc.Close() }

// SetDeadline sets a read/write deadline on the underlying connection.
func (c *Conn) SetDeadline(t time.Time) error { return c.nc.SetDeadline(t) }

// Send writes one message frame.
func (c *Conn) Send(msg any) error {
	typ, payload, err := Marshal(msg)
	if err != nil {
		return err
	}
	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(payload)))
	hdr[4] = typ
	if _, err := c.bw.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := c.bw.Write(payload); err != nil {
		return err
	}
	return c.bw.Flush()
}

// Recv reads one message frame and decodes it.
func (c *Conn) Recv() (any, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(c.br, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[0:])
	if n > MaxFrame {
		return nil, fmt.Errorf("wire: frame of %d bytes exceeds limit", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(c.br, payload); err != nil {
		return nil, err
	}
	return Unmarshal(hdr[4], payload)
}

// Marshal encodes a message into its type code and payload.
func Marshal(msg any) (byte, []byte, error) {
	var e encoder
	switch m := msg.(type) {
	case *Hello:
		e.u32(m.Version)
		e.str(m.Name)
		e.u8(m.Kind)
		e.f64(m.RateGCUPS)
		e.u32(m.DBChecksum)
		return TypeHello, e.buf, nil
	case *Welcome:
		e.u32(m.Version)
		e.u32(m.QueryCount)
		e.u32(m.DBChecksum)
		return TypeWelcome, e.buf, nil
	case *Task:
		e.u32(m.QueryIndex)
		e.str(m.QueryID)
		e.bytes(m.Residues)
		return TypeTask, e.buf, nil
	case *Result:
		e.u32(m.QueryIndex)
		e.u64(m.ElapsedNS)
		e.f64(m.SimSeconds)
		e.u64(m.Cells)
		e.u32(uint32(len(m.Hits)))
		for _, h := range m.Hits {
			e.u32(h.SeqIndex)
			e.u32(uint32(h.Score))
			e.str(h.SeqID)
		}
		return TypeResult, e.buf, nil
	case *ErrorMsg:
		e.str(m.Text)
		return TypeError, e.buf, nil
	case Done, nil:
		return TypeDone, nil, nil
	}
	return 0, nil, fmt.Errorf("wire: cannot marshal %T", msg)
}

// Done is the sentinel value Recv returns for TypeDone frames.
type Done struct{}

// Unmarshal decodes a payload by type code.
func Unmarshal(typ byte, payload []byte) (any, error) {
	d := decoder{buf: payload}
	switch typ {
	case TypeHello:
		m := &Hello{}
		m.Version = d.u32()
		m.Name = d.str()
		m.Kind = d.u8()
		m.RateGCUPS = d.f64()
		m.DBChecksum = d.u32()
		return m, d.err
	case TypeWelcome:
		m := &Welcome{}
		m.Version = d.u32()
		m.QueryCount = d.u32()
		m.DBChecksum = d.u32()
		return m, d.err
	case TypeTask:
		m := &Task{}
		m.QueryIndex = d.u32()
		m.QueryID = d.str()
		m.Residues = d.bytes()
		return m, d.err
	case TypeResult:
		m := &Result{}
		m.QueryIndex = d.u32()
		m.ElapsedNS = d.u64()
		m.SimSeconds = d.f64()
		m.Cells = d.u64()
		n := d.u32()
		if d.err != nil {
			return nil, d.err
		}
		if int(n) > len(d.buf) { // each hit needs >= 1 byte
			return nil, fmt.Errorf("wire: hit count %d exceeds payload", n)
		}
		m.Hits = make([]ResultHit, 0, n)
		for i := uint32(0); i < n && d.err == nil; i++ {
			var h ResultHit
			h.SeqIndex = d.u32()
			h.Score = int32(d.u32())
			h.SeqID = d.str()
			m.Hits = append(m.Hits, h)
		}
		return m, d.err
	case TypeDone:
		return Done{}, nil
	case TypeError:
		m := &ErrorMsg{}
		m.Text = d.str()
		return m, d.err
	}
	return nil, fmt.Errorf("wire: unknown message type %d", typ)
}

// encoder appends little-endian fields.
type encoder struct{ buf []byte }

func (e *encoder) u8(v uint8)   { e.buf = append(e.buf, v) }
func (e *encoder) u32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }
func (e *encoder) u64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }
func (e *encoder) f64(v float64) {
	e.u64(math.Float64bits(v))
}
func (e *encoder) str(s string) {
	if len(s) > 0xFFFF {
		s = s[:0xFFFF]
	}
	e.buf = binary.LittleEndian.AppendUint16(e.buf, uint16(len(s)))
	e.buf = append(e.buf, s...)
}
func (e *encoder) bytes(b []byte) {
	e.u32(uint32(len(b)))
	e.buf = append(e.buf, b...)
}

// decoder consumes little-endian fields, latching the first error.
type decoder struct {
	buf []byte
	err error
}

func (d *decoder) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("wire: truncated payload")
	}
}

func (d *decoder) u8() uint8 {
	if d.err != nil || len(d.buf) < 1 {
		d.fail()
		return 0
	}
	v := d.buf[0]
	d.buf = d.buf[1:]
	return v
}

func (d *decoder) u32() uint32 {
	if d.err != nil || len(d.buf) < 4 {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(d.buf)
	d.buf = d.buf[4:]
	return v
}

func (d *decoder) u64() uint64 {
	if d.err != nil || len(d.buf) < 8 {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(d.buf)
	d.buf = d.buf[8:]
	return v
}

func (d *decoder) f64() float64 { return math.Float64frombits(d.u64()) }

func (d *decoder) str() string {
	if d.err != nil || len(d.buf) < 2 {
		d.fail()
		return ""
	}
	n := int(binary.LittleEndian.Uint16(d.buf))
	d.buf = d.buf[2:]
	if len(d.buf) < n {
		d.fail()
		return ""
	}
	s := string(d.buf[:n])
	d.buf = d.buf[n:]
	return s
}

func (d *decoder) bytes() []byte {
	n := int(d.u32())
	if d.err != nil || len(d.buf) < n {
		d.fail()
		return nil
	}
	b := make([]byte, n)
	copy(b, d.buf[:n])
	d.buf = d.buf[n:]
	return b
}
