// Package wire defines the binary master-worker protocol of the
// distributed SWDUAL runtime (paper §IV): length-prefixed frames with a
// one-byte message type, little-endian integers, and explicit versioning.
// The encoding is hand-rolled on encoding/binary so both ends allocate
// exactly what the declared lengths demand.
package wire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"net"
	"time"
)

// Protocol constants.
const (
	// Version gates the handshake: both ends must speak the same frame
	// formats. 2 added the per-worker rate list to StatsResponse (an
	// incompatible trailing extension, so version-1 peers are rejected
	// at Hello/Welcome instead of failing mid-session on a stats poll);
	// 3 added the wave-pipelining counters (PipelinedWaves,
	// OverlapNanos) in the middle of StatsResponse, which shifts every
	// later field — again rejected at handshake, not mid-session.
	// 4 added the result-cache and profile-cache counters (CacheHits
	// through ProfileEvictions) before the worker list in
	// StatsResponse, shifting the list; version-3 peers are rejected at
	// handshake, not mid-session on a stats poll.
	// 5 added the replication counters (HedgedSearches, FailedOver,
	// Redials) before the worker list in StatsResponse, again shifting
	// the list; version-4 peers are rejected at handshake.
	// 6 added DegradedSearches after Redials in StatsResponse (shifting
	// the worker list) and the optional Coverage block trailing
	// SearchResult, which a degraded coordinator fills in; version-5
	// peers are rejected at handshake, not mid-session on a partial
	// answer.
	Version = 6
	// MaxFrame bounds a frame payload (64 MiB) to fail fast on corrupt
	// length prefixes.
	MaxFrame = 64 << 20
)

// Message type codes. The first block is the original master-worker
// protocol (one request per connection); the second block is the
// multiplexed serve protocol, where every frame carries a request id so
// any number of calls can be in flight on one connection.
const (
	TypeHello byte = iota + 1
	TypeWelcome
	TypeTask
	TypeResult
	TypeDone
	TypeError

	TypeSearchRequest
	TypeSearchResult
	TypeCancel
	TypeReqError
	TypeStatsRequest
	TypeStatsResponse
	TypePlanRequest
	TypePlanResponse
	TypeChecksumRequest
	TypeChecksumResponse
	TypeInfoRequest
	TypeInfo
)

// Hello registers a worker with the master.
type Hello struct {
	Version    uint32
	Name       string
	Kind       uint8 // 0 = CPU pool, 1 = GPU pool
	RateGCUPS  float64
	DBChecksum uint32 // CRC of the worker's local database copy
}

// Welcome acknowledges registration.
type Welcome struct {
	Version    uint32
	QueryCount uint32
	DBChecksum uint32
}

// Task carries one query to compare against the worker's database copy.
type Task struct {
	QueryIndex uint32
	QueryID    string
	Residues   []byte
}

// ResultHit is one scored database hit inside a Result.
type ResultHit struct {
	SeqIndex uint32
	Score    int32
	SeqID    string
}

// Result returns one task's outcome.
type Result struct {
	QueryIndex uint32
	ElapsedNS  uint64
	SimSeconds float64
	Cells      uint64
	Hits       []ResultHit
}

// ErrorMsg reports a fatal condition to the peer.
type ErrorMsg struct {
	Text string
}

// Multiplexed serve protocol. After the Hello/Welcome handshake a client
// may switch from the one-request-per-connection stream to request-id
// framing: every message below carries the client-chosen ID, responses
// echo it, and any number of requests may be in flight concurrently on
// one connection.

// Query is one query sequence inside a SearchRequest. Residues are
// encoded in the server database's alphabet; query order within the
// request defines the result order.
type Query struct {
	ID       string
	Residues []byte
}

// SearchRequest submits one batch of queries as request ID.
type SearchRequest struct {
	ID      uint64
	TopK    uint32 // hits per query; 0 selects the server's cap
	Queries []Query
}

// SkippedRange names one database range a degraded search skipped
// (version 6): its shard index, its [Lo, Hi) sequence slice, and the
// operator-facing reason.
type SkippedRange struct {
	Index  uint32
	Lo, Hi uint32
	Reason string
}

// Coverage is the degraded-answer metadata trailing a SearchResult
// (version 6): how much of the database the answer actually saw. A nil
// Coverage on the decoded message means full coverage — the frame
// carries a zero flag byte and nothing else, so full answers cost one
// byte and stay byte-compatible across the degraded feature.
type Coverage struct {
	RangesSearched   uint32
	RangesTotal      uint32
	ResiduesSearched uint64
	ResiduesTotal    uint64
	Skipped          []SkippedRange
}

// SearchResult answers one SearchRequest: one Result per query, in
// request order. Coverage is non-nil only on a degraded (partial)
// answer.
type SearchResult struct {
	ID       uint64
	Results  []Result
	Coverage *Coverage
}

// Cancel asks the server to abandon an in-flight request. The server
// still answers the request — with a ReqError naming the cancellation —
// so ids retire deterministically.
type Cancel struct {
	ID uint64
}

// ReqError fails one request without poisoning the connection.
type ReqError struct {
	ID   uint64
	Text string
}

// StatsRequest asks for the server's engine counters.
type StatsRequest struct {
	ID uint64
}

// WorkerRateInfo is one worker's throughput snapshot inside a
// StatsResponse: the advertised rate it registered with and the live
// estimate measured from its completed tasks.
type WorkerRateInfo struct {
	Name            string
	Kind            uint8 // 0 = CPU pool, 1 = GPU pool
	AdvertisedGCUPS float64
	ObservedGCUPS   float64
	Tasks           uint64
}

// StatsResponse mirrors engine.Stats over the wire, including the
// per-worker observed rates a coordinator aggregates into cluster
// throughput.
type StatsResponse struct {
	ID             uint64
	DBSequences    uint32
	DBResidues     uint64
	DBChecksum     uint32
	Prepared       uint32
	WorkersStarted uint32
	Searches       uint64
	Queries        uint64
	Waves          uint64
	BatchedWaves   uint64
	PipelinedWaves uint64 // waves planned while the previous wave executed
	OverlapNanos   uint64 // planning time hidden behind execution
	// Result-cache counters (version 4): all zero when the server runs
	// uncached.
	CacheHits         uint64
	CacheMisses       uint64
	CacheEvictions    uint64
	CollapsedSearches uint64 // searches answered as singleflight followers
	// Profile-cache counters (version 4): occupancy and traffic of the
	// per-query profile cache.
	ProfileEntries   uint32
	ProfileHits      uint64
	ProfileMisses    uint64
	ProfileEvictions uint64
	// Replication counters (version 5): hedges issued, failovers taken
	// and successful redials across the server's replica sets. All zero
	// when the server fronts a plain engine.
	HedgedSearches uint64
	FailedOver     uint64
	Redials        uint64
	// DegradedSearches (version 6) counts searches answered with partial
	// coverage because every replica of some range was unavailable. Zero
	// on servers that fail instead of degrading.
	DegradedSearches uint64
	Workers          []WorkerRateInfo
}

// PlanRequest asks the server to run its scheduling policy over
// hypothetical queries of the given lengths (no search runs).
type PlanRequest struct {
	ID        uint64
	QueryLens []uint32
}

// PlanResponse summarizes the modeled schedule: the algorithm, its
// makespan, and the per-PE loads (placements stay server-side). A
// dynamic policy that produces no static schedule returns all-zero
// fields with an empty Algorithm.
type PlanResponse struct {
	ID        uint64
	Algorithm string
	Makespan  float64
	CPULoads  []float64
	GPULoads  []float64
}

// ChecksumRequest asks for the server database's fingerprint.
type ChecksumRequest struct {
	ID uint64
}

// ChecksumResponse carries the database checksum (seq.Set.Checksum).
type ChecksumResponse struct {
	ID       uint64
	Checksum uint32
}

// InfoRequest asks for the database description a remote backend needs
// to stand in for a local engine.
type InfoRequest struct {
	ID uint64
}

// Info describes the server's database: the alphabet name (queries must
// be encoded with the same alphabet), the checksum, and every sequence
// length in database order (what the scheduler's instance builder and
// the planner consume).
type Info struct {
	ID       uint64
	Alphabet string
	Checksum uint32
	Lengths  []uint32
}

// Conn frames messages over a net.Conn.
type Conn struct {
	nc net.Conn
	br *bufio.Reader
	bw *bufio.Writer
}

// NewConn wraps a network connection.
func NewConn(nc net.Conn) *Conn {
	return &Conn{nc: nc, br: bufio.NewReaderSize(nc, 1<<16), bw: bufio.NewWriterSize(nc, 1<<16)}
}

// Close closes the underlying connection.
func (c *Conn) Close() error { return c.nc.Close() }

// SetDeadline sets a read/write deadline on the underlying connection.
func (c *Conn) SetDeadline(t time.Time) error { return c.nc.SetDeadline(t) }

// Send writes one message frame.
func (c *Conn) Send(msg any) error {
	typ, payload, err := Marshal(msg)
	if err != nil {
		return err
	}
	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(payload)))
	hdr[4] = typ
	if _, err := c.bw.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := c.bw.Write(payload); err != nil {
		return err
	}
	return c.bw.Flush()
}

// Recv reads one message frame and decodes it.
func (c *Conn) Recv() (any, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(c.br, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[0:])
	if n > MaxFrame {
		return nil, fmt.Errorf("wire: frame of %d bytes exceeds limit", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(c.br, payload); err != nil {
		return nil, err
	}
	return Unmarshal(hdr[4], payload)
}

// Marshal encodes a message into its type code and payload.
func Marshal(msg any) (byte, []byte, error) {
	var e encoder
	switch m := msg.(type) {
	case *Hello:
		e.u32(m.Version)
		e.str(m.Name)
		e.u8(m.Kind)
		e.f64(m.RateGCUPS)
		e.u32(m.DBChecksum)
		return TypeHello, e.buf, nil
	case *Welcome:
		e.u32(m.Version)
		e.u32(m.QueryCount)
		e.u32(m.DBChecksum)
		return TypeWelcome, e.buf, nil
	case *Task:
		e.u32(m.QueryIndex)
		e.str(m.QueryID)
		e.bytes(m.Residues)
		return TypeTask, e.buf, nil
	case *Result:
		encodeResult(&e, m)
		return TypeResult, e.buf, nil
	case *ErrorMsg:
		e.str(m.Text)
		return TypeError, e.buf, nil
	case *SearchRequest:
		e.u64(m.ID)
		e.u32(m.TopK)
		e.u32(uint32(len(m.Queries)))
		for _, q := range m.Queries {
			e.str(q.ID)
			e.bytes(q.Residues)
		}
		return TypeSearchRequest, e.buf, nil
	case *SearchResult:
		e.u64(m.ID)
		e.u32(uint32(len(m.Results)))
		for i := range m.Results {
			encodeResult(&e, &m.Results[i])
		}
		if m.Coverage == nil {
			e.u8(0)
		} else {
			e.u8(1)
			e.u32(m.Coverage.RangesSearched)
			e.u32(m.Coverage.RangesTotal)
			e.u64(m.Coverage.ResiduesSearched)
			e.u64(m.Coverage.ResiduesTotal)
			e.u32(uint32(len(m.Coverage.Skipped)))
			for _, sk := range m.Coverage.Skipped {
				e.u32(sk.Index)
				e.u32(sk.Lo)
				e.u32(sk.Hi)
				e.str(sk.Reason)
			}
		}
		return TypeSearchResult, e.buf, nil
	case *Cancel:
		e.u64(m.ID)
		return TypeCancel, e.buf, nil
	case *ReqError:
		e.u64(m.ID)
		e.str(m.Text)
		return TypeReqError, e.buf, nil
	case *StatsRequest:
		e.u64(m.ID)
		return TypeStatsRequest, e.buf, nil
	case *StatsResponse:
		e.u64(m.ID)
		e.u32(m.DBSequences)
		e.u64(m.DBResidues)
		e.u32(m.DBChecksum)
		e.u32(m.Prepared)
		e.u32(m.WorkersStarted)
		e.u64(m.Searches)
		e.u64(m.Queries)
		e.u64(m.Waves)
		e.u64(m.BatchedWaves)
		e.u64(m.PipelinedWaves)
		e.u64(m.OverlapNanos)
		e.u64(m.CacheHits)
		e.u64(m.CacheMisses)
		e.u64(m.CacheEvictions)
		e.u64(m.CollapsedSearches)
		e.u32(m.ProfileEntries)
		e.u64(m.ProfileHits)
		e.u64(m.ProfileMisses)
		e.u64(m.ProfileEvictions)
		e.u64(m.HedgedSearches)
		e.u64(m.FailedOver)
		e.u64(m.Redials)
		e.u64(m.DegradedSearches)
		e.u32(uint32(len(m.Workers)))
		for _, w := range m.Workers {
			e.str(w.Name)
			e.u8(w.Kind)
			e.f64(w.AdvertisedGCUPS)
			e.f64(w.ObservedGCUPS)
			e.u64(w.Tasks)
		}
		return TypeStatsResponse, e.buf, nil
	case *PlanRequest:
		e.u64(m.ID)
		e.u32(uint32(len(m.QueryLens)))
		for _, l := range m.QueryLens {
			e.u32(l)
		}
		return TypePlanRequest, e.buf, nil
	case *PlanResponse:
		e.u64(m.ID)
		e.str(m.Algorithm)
		e.f64(m.Makespan)
		e.u32(uint32(len(m.CPULoads)))
		for _, l := range m.CPULoads {
			e.f64(l)
		}
		e.u32(uint32(len(m.GPULoads)))
		for _, l := range m.GPULoads {
			e.f64(l)
		}
		return TypePlanResponse, e.buf, nil
	case *ChecksumRequest:
		e.u64(m.ID)
		return TypeChecksumRequest, e.buf, nil
	case *ChecksumResponse:
		e.u64(m.ID)
		e.u32(m.Checksum)
		return TypeChecksumResponse, e.buf, nil
	case *InfoRequest:
		e.u64(m.ID)
		return TypeInfoRequest, e.buf, nil
	case *Info:
		e.u64(m.ID)
		e.str(m.Alphabet)
		e.u32(m.Checksum)
		e.u32(uint32(len(m.Lengths)))
		for _, l := range m.Lengths {
			e.u32(l)
		}
		return TypeInfo, e.buf, nil
	case Done, nil:
		return TypeDone, nil, nil
	}
	return 0, nil, fmt.Errorf("wire: cannot marshal %T", msg)
}

// encodeResult appends the Result body shared by TypeResult frames and
// the per-query entries inside a SearchResult.
func encodeResult(e *encoder, m *Result) {
	e.u32(m.QueryIndex)
	e.u64(m.ElapsedNS)
	e.f64(m.SimSeconds)
	e.u64(m.Cells)
	e.u32(uint32(len(m.Hits)))
	for _, h := range m.Hits {
		e.u32(h.SeqIndex)
		e.u32(uint32(h.Score))
		e.str(h.SeqID)
	}
}

// decodeResult consumes one Result body; the latched decoder error plus
// the explicit count check keep a lying hit count from allocating.
func decodeResult(d *decoder) (Result, error) {
	var m Result
	m.QueryIndex = d.u32()
	m.ElapsedNS = d.u64()
	m.SimSeconds = d.f64()
	m.Cells = d.u64()
	n := d.u32()
	if d.err != nil {
		return m, d.err
	}
	if int(n) > len(d.buf) { // each hit needs >= 1 byte
		d.err = fmt.Errorf("wire: hit count %d exceeds payload", n)
		return m, d.err
	}
	m.Hits = make([]ResultHit, 0, n)
	for i := uint32(0); i < n && d.err == nil; i++ {
		var h ResultHit
		h.SeqIndex = d.u32()
		h.Score = int32(d.u32())
		h.SeqID = d.str()
		m.Hits = append(m.Hits, h)
	}
	return m, d.err
}

// Done is the sentinel value Recv returns for TypeDone frames.
type Done struct{}

// Unmarshal decodes a payload by type code.
func Unmarshal(typ byte, payload []byte) (any, error) {
	d := decoder{buf: payload}
	switch typ {
	case TypeHello:
		m := &Hello{}
		m.Version = d.u32()
		m.Name = d.str()
		m.Kind = d.u8()
		m.RateGCUPS = d.f64()
		m.DBChecksum = d.u32()
		return m, d.err
	case TypeWelcome:
		m := &Welcome{}
		m.Version = d.u32()
		m.QueryCount = d.u32()
		m.DBChecksum = d.u32()
		return m, d.err
	case TypeTask:
		m := &Task{}
		m.QueryIndex = d.u32()
		m.QueryID = d.str()
		m.Residues = d.bytes()
		return m, d.err
	case TypeResult:
		m, err := decodeResult(&d)
		if err != nil {
			return nil, err
		}
		return &m, nil
	case TypeDone:
		return Done{}, nil
	case TypeError:
		m := &ErrorMsg{}
		m.Text = d.str()
		return m, d.err
	case TypeSearchRequest:
		m := &SearchRequest{}
		m.ID = d.u64()
		m.TopK = d.u32()
		n := d.u32()
		if d.err != nil {
			return nil, d.err
		}
		if int(n) > len(d.buf) { // each query needs >= 1 byte
			return nil, fmt.Errorf("wire: query count %d exceeds payload", n)
		}
		m.Queries = make([]Query, 0, n)
		for i := uint32(0); i < n && d.err == nil; i++ {
			var q Query
			q.ID = d.str()
			q.Residues = d.bytes()
			m.Queries = append(m.Queries, q)
		}
		return m, d.err
	case TypeSearchResult:
		m := &SearchResult{}
		m.ID = d.u64()
		n := d.u32()
		if d.err != nil {
			return nil, d.err
		}
		if int(n) > len(d.buf) { // each result needs >= 1 byte
			return nil, fmt.Errorf("wire: result count %d exceeds payload", n)
		}
		m.Results = make([]Result, 0, n)
		for i := uint32(0); i < n && d.err == nil; i++ {
			r, err := decodeResult(&d)
			if err != nil {
				return nil, err
			}
			m.Results = append(m.Results, r)
		}
		if d.u8() != 0 {
			cov := &Coverage{}
			cov.RangesSearched = d.u32()
			cov.RangesTotal = d.u32()
			cov.ResiduesSearched = d.u64()
			cov.ResiduesTotal = d.u64()
			sn := d.u32()
			if d.err != nil {
				return nil, d.err
			}
			// Each skipped range needs >= 14 bytes (three u32s plus the
			// 2-byte reason prefix); validate before allocating, in int64
			// so a huge count cannot wrap past the guard on 32-bit.
			if int64(len(d.buf))/14 < int64(sn) {
				return nil, fmt.Errorf("wire: skipped-range count %d exceeds payload", sn)
			}
			cov.Skipped = make([]SkippedRange, 0, sn)
			for i := uint32(0); i < sn && d.err == nil; i++ {
				var sk SkippedRange
				sk.Index = d.u32()
				sk.Lo = d.u32()
				sk.Hi = d.u32()
				sk.Reason = d.str()
				cov.Skipped = append(cov.Skipped, sk)
			}
			m.Coverage = cov
		}
		return m, d.err
	case TypeCancel:
		m := &Cancel{}
		m.ID = d.u64()
		return m, d.err
	case TypeReqError:
		m := &ReqError{}
		m.ID = d.u64()
		m.Text = d.str()
		return m, d.err
	case TypeStatsRequest:
		m := &StatsRequest{}
		m.ID = d.u64()
		return m, d.err
	case TypeStatsResponse:
		m := &StatsResponse{}
		m.ID = d.u64()
		m.DBSequences = d.u32()
		m.DBResidues = d.u64()
		m.DBChecksum = d.u32()
		m.Prepared = d.u32()
		m.WorkersStarted = d.u32()
		m.Searches = d.u64()
		m.Queries = d.u64()
		m.Waves = d.u64()
		m.BatchedWaves = d.u64()
		m.PipelinedWaves = d.u64()
		m.OverlapNanos = d.u64()
		m.CacheHits = d.u64()
		m.CacheMisses = d.u64()
		m.CacheEvictions = d.u64()
		m.CollapsedSearches = d.u64()
		m.ProfileEntries = d.u32()
		m.ProfileHits = d.u64()
		m.ProfileMisses = d.u64()
		m.ProfileEvictions = d.u64()
		m.HedgedSearches = d.u64()
		m.FailedOver = d.u64()
		m.Redials = d.u64()
		m.DegradedSearches = d.u64()
		n := d.u32()
		if d.err != nil {
			return nil, d.err
		}
		// Each worker entry needs >= 27 bytes (2-byte name prefix, kind,
		// two rates, task count); validate before allocating. Compare in
		// int64 so a count >= 2^31 cannot wrap negative through int on
		// 32-bit platforms and slip past the guard into makeslice.
		if int64(len(d.buf))/27 < int64(n) {
			return nil, fmt.Errorf("wire: worker count %d exceeds payload", n)
		}
		m.Workers = make([]WorkerRateInfo, 0, n)
		for i := uint32(0); i < n && d.err == nil; i++ {
			var w WorkerRateInfo
			w.Name = d.str()
			w.Kind = d.u8()
			w.AdvertisedGCUPS = d.f64()
			w.ObservedGCUPS = d.f64()
			w.Tasks = d.u64()
			m.Workers = append(m.Workers, w)
		}
		return m, d.err
	case TypePlanRequest:
		m := &PlanRequest{}
		m.ID = d.u64()
		m.QueryLens = d.u32s()
		return m, d.err
	case TypePlanResponse:
		m := &PlanResponse{}
		m.ID = d.u64()
		m.Algorithm = d.str()
		m.Makespan = d.f64()
		m.CPULoads = d.f64s()
		m.GPULoads = d.f64s()
		return m, d.err
	case TypeChecksumRequest:
		m := &ChecksumRequest{}
		m.ID = d.u64()
		return m, d.err
	case TypeChecksumResponse:
		m := &ChecksumResponse{}
		m.ID = d.u64()
		m.Checksum = d.u32()
		return m, d.err
	case TypeInfoRequest:
		m := &InfoRequest{}
		m.ID = d.u64()
		return m, d.err
	case TypeInfo:
		m := &Info{}
		m.ID = d.u64()
		m.Alphabet = d.str()
		m.Checksum = d.u32()
		m.Lengths = d.u32s()
		return m, d.err
	}
	return nil, fmt.Errorf("wire: unknown message type %d", typ)
}

// encoder appends little-endian fields.
type encoder struct{ buf []byte }

func (e *encoder) u8(v uint8)   { e.buf = append(e.buf, v) }
func (e *encoder) u32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }
func (e *encoder) u64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }
func (e *encoder) f64(v float64) {
	e.u64(math.Float64bits(v))
}
func (e *encoder) str(s string) {
	if len(s) > 0xFFFF {
		s = s[:0xFFFF]
	}
	e.buf = binary.LittleEndian.AppendUint16(e.buf, uint16(len(s)))
	e.buf = append(e.buf, s...)
}
func (e *encoder) bytes(b []byte) {
	e.u32(uint32(len(b)))
	e.buf = append(e.buf, b...)
}

// decoder consumes little-endian fields, latching the first error.
type decoder struct {
	buf []byte
	err error
}

func (d *decoder) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("wire: truncated payload")
	}
}

func (d *decoder) u8() uint8 {
	if d.err != nil || len(d.buf) < 1 {
		d.fail()
		return 0
	}
	v := d.buf[0]
	d.buf = d.buf[1:]
	return v
}

func (d *decoder) u32() uint32 {
	if d.err != nil || len(d.buf) < 4 {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(d.buf)
	d.buf = d.buf[4:]
	return v
}

func (d *decoder) u64() uint64 {
	if d.err != nil || len(d.buf) < 8 {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(d.buf)
	d.buf = d.buf[8:]
	return v
}

func (d *decoder) f64() float64 { return math.Float64frombits(d.u64()) }

func (d *decoder) str() string {
	if d.err != nil || len(d.buf) < 2 {
		d.fail()
		return ""
	}
	n := int(binary.LittleEndian.Uint16(d.buf))
	d.buf = d.buf[2:]
	if len(d.buf) < n {
		d.fail()
		return ""
	}
	s := string(d.buf[:n])
	d.buf = d.buf[n:]
	return s
}

// u32s decodes a count-prefixed []uint32, validating the count against
// the remaining payload before allocating (division, not
// multiplication — 4*n would wrap on 32-bit platforms and let a lying
// count through to makeslice).
func (d *decoder) u32s() []uint32 {
	n := int(d.u32())
	if d.err != nil || n < 0 || len(d.buf)/4 < n {
		d.fail()
		return nil
	}
	out := make([]uint32, n)
	for i := range out {
		out[i] = d.u32()
	}
	return out
}

// f64s decodes a count-prefixed []float64 with the same guard.
func (d *decoder) f64s() []float64 {
	n := int(d.u32())
	if d.err != nil || n < 0 || len(d.buf)/8 < n {
		d.fail()
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = d.f64()
	}
	return out
}

func (d *decoder) bytes() []byte {
	n := int(d.u32())
	if d.err != nil || len(d.buf) < n {
		d.fail()
		return nil
	}
	b := make([]byte, n)
	copy(b, d.buf[:n])
	d.buf = d.buf[n:]
	return b
}
