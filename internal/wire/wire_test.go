package wire

import (
	"net"
	"reflect"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, msg any) any {
	t.Helper()
	typ, payload, err := Marshal(msg)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Unmarshal(typ, payload)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestHelloRoundTrip(t *testing.T) {
	in := &Hello{Version: 1, Name: "worker-é-1", Kind: 1, RateGCUPS: 24.8, DBChecksum: 0xDEADBEEF}
	if got := roundTrip(t, in); !reflect.DeepEqual(got, in) {
		t.Fatalf("got %+v want %+v", got, in)
	}
}

func TestWelcomeRoundTrip(t *testing.T) {
	in := &Welcome{Version: 1, QueryCount: 40, DBChecksum: 7}
	if got := roundTrip(t, in); !reflect.DeepEqual(got, in) {
		t.Fatalf("got %+v", got)
	}
}

func TestTaskRoundTrip(t *testing.T) {
	in := &Task{QueryIndex: 3, QueryID: "q3", Residues: []byte{0, 1, 2, 19}}
	if got := roundTrip(t, in); !reflect.DeepEqual(got, in) {
		t.Fatalf("got %+v", got)
	}
	// Empty residues survive as empty (not nil mismatch).
	in2 := &Task{QueryIndex: 0, QueryID: "", Residues: []byte{}}
	got := roundTrip(t, in2).(*Task)
	if got.QueryIndex != 0 || len(got.Residues) != 0 {
		t.Fatalf("empty task %+v", got)
	}
}

func TestResultRoundTrip(t *testing.T) {
	in := &Result{
		QueryIndex: 9,
		ElapsedNS:  123456789,
		SimSeconds: 0.5,
		Cells:      1 << 40,
		Hits: []ResultHit{
			{SeqIndex: 1, Score: 100, SeqID: "hit-1"},
			{SeqIndex: 2, Score: -3, SeqID: "hit-2"},
		},
	}
	if got := roundTrip(t, in); !reflect.DeepEqual(got, in) {
		t.Fatalf("got %+v", got)
	}
}

func TestDoneAndError(t *testing.T) {
	if got := roundTrip(t, nil); got != (Done{}) {
		t.Fatalf("done round trip %+v", got)
	}
	in := &ErrorMsg{Text: "boom"}
	if got := roundTrip(t, in); !reflect.DeepEqual(got, in) {
		t.Fatalf("got %+v", got)
	}
}

func TestMarshalUnknownType(t *testing.T) {
	if _, _, err := Marshal(42); err == nil {
		t.Fatal("unknown message type must fail")
	}
	if _, err := Unmarshal(200, nil); err == nil {
		t.Fatal("unknown type code must fail")
	}
}

func TestTruncatedPayloads(t *testing.T) {
	typ, payload, err := Marshal(&Result{QueryIndex: 1, Hits: []ResultHit{{SeqIndex: 1, Score: 2, SeqID: "x"}}})
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(payload); cut++ {
		if _, err := Unmarshal(typ, payload[:cut]); err == nil {
			t.Fatalf("truncation at %d/%d must fail", cut, len(payload))
		}
	}
}

func TestHostileHitCount(t *testing.T) {
	// A forged hit count must not cause a huge allocation.
	var e encoder
	e.u32(1)          // query index
	e.u64(0)          // elapsed
	e.f64(0)          // sim seconds
	e.u64(0)          // cells
	e.u32(0xFFFFFFFF) // hit count lie
	if _, err := Unmarshal(TypeResult, e.buf); err == nil {
		t.Fatal("hostile hit count must fail")
	}
}

func TestConnOverPipe(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	ca, cb := NewConn(a), NewConn(b)
	done := make(chan error, 1)
	go func() {
		done <- ca.Send(&Hello{Version: 1, Name: "w", RateGCUPS: 1})
	}()
	msg, err := cb.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	hello, ok := msg.(*Hello)
	if !ok || hello.Name != "w" {
		t.Fatalf("got %+v", msg)
	}
	// And the reverse direction with a Done frame.
	go func() { done <- cb.Send(nil) }()
	msg, err = ca.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := msg.(Done); !ok {
		t.Fatalf("expected Done, got %T", msg)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// Property: Task messages of arbitrary content round-trip exactly.
func TestQuickTaskRoundTrip(t *testing.T) {
	f := func(idx uint32, id string, residues []byte) bool {
		if len(id) > 1000 {
			id = id[:1000]
		}
		in := &Task{QueryIndex: idx, QueryID: id, Residues: residues}
		typ, payload, err := Marshal(in)
		if err != nil {
			return false
		}
		outAny, err := Unmarshal(typ, payload)
		if err != nil {
			return false
		}
		out := outAny.(*Task)
		if out.QueryIndex != in.QueryIndex || out.QueryID != in.QueryID {
			return false
		}
		if len(out.Residues) != len(in.Residues) {
			return false
		}
		for i := range in.Residues {
			if out.Residues[i] != in.Residues[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestStatsResponseRoundTrip(t *testing.T) {
	in := &StatsResponse{
		ID: 9, DBSequences: 10, DBResidues: 1234, DBChecksum: 0xfeed,
		Prepared: 1, WorkersStarted: 3, Searches: 4, Queries: 5, Waves: 6, BatchedWaves: 2,
		PipelinedWaves: 3, OverlapNanos: 1_500_000,
		HedgedSearches: 7, FailedOver: 2, Redials: 1,
		Workers: []WorkerRateInfo{
			{Name: "gpu-0", Kind: 1, AdvertisedGCUPS: 24.8, ObservedGCUPS: 31.5, Tasks: 12},
			{Name: "cpu-0", Kind: 0, AdvertisedGCUPS: 8.335, ObservedGCUPS: 7.9, Tasks: 4},
			{Name: "striped-0", Kind: 0, AdvertisedGCUPS: 8.335, ObservedGCUPS: 8.335, Tasks: 0},
		},
	}
	if got := roundTrip(t, in); !reflect.DeepEqual(got, in) {
		t.Fatalf("got %+v want %+v", got, in)
	}
}

func TestStatsResponseHostileWorkerCount(t *testing.T) {
	// A frame whose worker count claims more entries than the payload
	// could hold must error out before allocating.
	in := &StatsResponse{ID: 1}
	typ, payload, err := Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	// Overwrite the trailing worker-count u32 with a huge value.
	copy(payload[len(payload)-4:], []byte{0xff, 0xff, 0xff, 0x7f})
	if _, err := Unmarshal(typ, payload); err == nil {
		t.Fatal("lying worker count decoded without error")
	}
}
