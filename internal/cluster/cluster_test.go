package cluster

import (
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"swdual/internal/alphabet"
	"swdual/internal/master"
	"swdual/internal/sched"
	"swdual/internal/seq"
	"swdual/internal/sw"
	"swdual/internal/swvector"
	"swdual/internal/synth"
	"swdual/internal/wire"
)

func testData() (db, queries *seq.Set) {
	db = synth.RandomSet(alphabet.Protein, 50, 10, 150, 31)
	queries = synth.RandomSet(alphabet.Protein, 10, 20, 80, 32)
	return db, queries
}

func cpuWorker(name string) master.Worker {
	return master.NewEngineWorker(name, sched.CPU, swvector.NewInterSeq(sw.DefaultParams()), 8.3, 5)
}

func gpuPoolWorker(name string) master.Worker {
	// A CPU engine registered in the GPU pool exercises pool routing
	// without simulator overhead.
	return master.NewEngineWorker(name, sched.GPU, swvector.NewStriped(sw.DefaultParams()), 24.8, 5)
}

func runCluster(t *testing.T, policy Policy, workerCount int, makeWorker func(i int) master.Worker) *Report {
	t.Helper()
	db, queries := testData()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	var wg sync.WaitGroup
	for i := 0; i < workerCount; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			if err := RunWorker(conn, db, makeWorker(i), WorkerConfig{}); err != nil {
				t.Errorf("worker %d: %v", i, err)
			}
		}(i)
	}
	rep, err := Serve(l, db, queries, MasterConfig{Workers: workerCount, Policy: policy, TopK: 5})
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if len(rep.Results) != queries.Len() {
		t.Fatalf("%d results for %d queries", len(rep.Results), queries.Len())
	}
	// Verify scores against a local oracle run.
	oracle := sw.NewScalar(sw.DefaultParams())
	for qi := range rep.Results {
		want := master.TopHits(db, oracle.Scores(queries.Seqs[qi].Residues, db), 5)
		got := rep.Results[qi].Hits
		if len(got) != len(want) {
			t.Fatalf("query %d: %d hits vs %d", qi, len(got), len(want))
		}
		for i := range want {
			if int(got[i].Score) != want[i].Score || int(got[i].SeqIndex) != want[i].SeqIndex {
				t.Fatalf("query %d hit %d mismatch", qi, i)
			}
		}
	}
	return rep
}

func TestClusterDualApprox(t *testing.T) {
	rep := runCluster(t, master.PolicyDualApprox, 3, func(i int) master.Worker {
		if i == 0 {
			return gpuPoolWorker("gpu-0")
		}
		return cpuWorker("cpu")
	})
	if len(rep.WorkerNames) != 3 {
		t.Fatalf("workers %v", rep.WorkerNames)
	}
}

func TestClusterSelfScheduling(t *testing.T) {
	runCluster(t, master.PolicySelfScheduling, 2, func(i int) master.Worker {
		return cpuWorker("cpu")
	})
}

func TestClusterSingleWorker(t *testing.T) {
	runCluster(t, master.PolicyDualApprox, 1, func(i int) master.Worker {
		return cpuWorker("solo")
	})
}

func TestChecksumMismatchRejected(t *testing.T) {
	db, queries := testData()
	other := synth.RandomSet(alphabet.Protein, 50, 10, 150, 99) // different db
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	errCh := make(chan error, 1)
	go func() {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			errCh <- err
			return
		}
		errCh <- RunWorker(conn, other, cpuWorker("bad"), WorkerConfig{})
	}()
	_, err = Serve(l, db, queries, MasterConfig{Workers: 1, TopK: 5, RegisterTimeout: 5 * time.Second})
	if err == nil || !strings.Contains(err.Error(), "different database") {
		t.Fatalf("master error %v", err)
	}
	if werr := <-errCh; werr == nil || !strings.Contains(werr.Error(), "checksum") {
		t.Fatalf("worker error %v", werr)
	}
}

// faultyConn drops the connection after a number of completed sends.
type faultyConn struct {
	net.Conn
	mu        sync.Mutex
	sendsLeft int
}

func (c *faultyConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.sendsLeft <= 0 {
		c.Conn.Close()
		return 0, net.ErrClosed
	}
	c.sendsLeft--
	return c.Conn.Write(p)
}

func TestWorkerFailureReassignsTasks(t *testing.T) {
	db, queries := testData()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	var wg sync.WaitGroup
	// Healthy worker.
	wg.Add(1)
	go func() {
		defer wg.Done()
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		if err := RunWorker(conn, db, cpuWorker("healthy"), WorkerConfig{}); err != nil {
			t.Errorf("healthy worker: %v", err)
		}
	}()
	// Faulty worker: dies after registration + 2 results.
	wg.Add(1)
	go func() {
		defer wg.Done()
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		fc := &faultyConn{Conn: conn, sendsLeft: 3} // hello + 2 results
		// The worker errors out when its connection dies; that is the
		// injected fault, not a test failure.
		_ = RunWorker(fc, db, cpuWorker("flaky"), WorkerConfig{})
	}()
	rep, err := Serve(l, db, queries, MasterConfig{Workers: 2, TopK: 5})
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if len(rep.Results) != queries.Len() {
		t.Fatalf("%d results", len(rep.Results))
	}
	if rep.Reassigned == 0 {
		t.Fatal("expected at least one reassigned task after worker failure")
	}
	// All queries still answered correctly.
	oracle := sw.NewScalar(sw.DefaultParams())
	for qi := range rep.Results {
		want := master.TopHits(db, oracle.Scores(queries.Seqs[qi].Residues, db), 5)
		got := rep.Results[qi].Hits
		if len(got) == 0 || int(got[0].Score) != want[0].Score {
			t.Fatalf("query %d wrong after reassignment", qi)
		}
	}
}

func TestAllWorkersFail(t *testing.T) {
	db, queries := testData()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	go func() {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			return
		}
		c := wire.NewConn(conn)
		c.Send(&wire.Hello{Version: wire.Version, Name: "liar", RateGCUPS: 1, DBChecksum: DBChecksum(db)})
		c.Recv()     // welcome
		conn.Close() // die before serving any task
	}()
	if _, err := Serve(l, db, queries, MasterConfig{Workers: 1, TopK: 5}); err == nil {
		t.Fatal("expected failure when every worker dies")
	}
}

func TestRegistrationTimeout(t *testing.T) {
	db, queries := testData()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	_, err = Serve(l, db, queries, MasterConfig{Workers: 1, RegisterTimeout: 100 * time.Millisecond})
	if err == nil {
		t.Fatal("expected registration timeout")
	}
}

func TestVersionMismatchRejected(t *testing.T) {
	db, queries := testData()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	go func() {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			return
		}
		c := wire.NewConn(conn)
		c.Send(&wire.Hello{Version: 999, Name: "future", DBChecksum: DBChecksum(db)})
		c.Recv()
		conn.Close()
	}()
	if _, err := Serve(l, db, queries, MasterConfig{Workers: 1, RegisterTimeout: 5 * time.Second}); err == nil {
		t.Fatal("expected version rejection")
	}
}

func TestServeConfigValidation(t *testing.T) {
	db, queries := testData()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Serve(l, db, queries, MasterConfig{Workers: 0}); err == nil {
		t.Fatal("zero workers must fail")
	}
}
