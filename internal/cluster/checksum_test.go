package cluster

import (
	"testing"

	"swdual/internal/alphabet"
	"swdual/internal/engine"
	"swdual/internal/seq"
	"swdual/internal/shard"
)

// TestDBChecksumUnified pins the module-wide database fingerprint. Every
// subsystem that compares databases — the cluster master-worker
// registration, the persistent engine's serve-mode handshake, and the
// sharded coordinator's skew guard — must report the one seq.Set
// checksum; the pinned constant catches any of them drifting to its own
// definition (the bug this test retired: three hand-rolled CRC loops).
func TestDBChecksumUnified(t *testing.T) {
	db := seq.NewSet(alphabet.Protein)
	for _, s := range []struct{ id, res string }{
		{"sp|P1", "MKWVTFISLLFLFSSAYS"},
		{"sp|P2", "ARNDCQEGHILKMFPSTWYV"},
		{"sp|P3", "GGGGGAAAAA"},
	} {
		if err := db.Add(s.id, "", []byte(s.res)); err != nil {
			t.Fatal(err)
		}
	}
	const pinned = uint32(0xed11face)
	if got := db.Checksum(); got != pinned {
		t.Fatalf("seq.Set.Checksum = %08x, pinned %08x (fingerprint definition changed — old serve clients and workers will be rejected)", got, pinned)
	}
	if got := DBChecksum(db); got != pinned {
		t.Fatalf("cluster.DBChecksum = %08x, pinned %08x", got, pinned)
	}
	eng, err := engine.New(db, engine.Config{CPUs: 1, GPUs: 0})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if got := eng.Checksum(); got != pinned {
		t.Fatalf("engine.Searcher.Checksum = %08x, pinned %08x", got, pinned)
	}
	sh, err := shard.New(db, shard.Config{Shards: 2, Engine: engine.Config{CPUs: 1, GPUs: 0}})
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()
	if got := sh.Checksum(); got != pinned {
		t.Fatalf("shard.Searcher.Checksum = %08x, pinned %08x", got, pinned)
	}
}
