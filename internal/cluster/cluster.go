// Package cluster runs the SWDUAL master-slave model over real network
// connections (paper §IV): workers connect, register their kind and
// measured throughput, and the master feeds them tasks and merges
// results. Both sides hold their own copy of the sequence database (the
// paper's workers "acquire the same sequences" locally); only queries and
// results cross the wire, and a database checksum guards against skew.
//
// Allocation follows the configured policy: the dual-approximation
// schedule splits tasks into per-pool queues (kept in schedule order),
// and idle workers pull from their own pool first, then steal from the
// other — so a lost worker only delays its queue instead of stranding it.
package cluster

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"swdual/internal/master"
	"swdual/internal/sched"
	"swdual/internal/seq"
	"swdual/internal/wire"
)

// Policy mirrors master.Policy for network runs.
type Policy = master.Policy

// MasterConfig tunes a cluster master.
type MasterConfig struct {
	// Workers is the number of workers to wait for before scheduling.
	Workers int
	// Policy selects the allocation strategy (dual-approx by default).
	Policy Policy
	// TopK caps hits per query (default 10).
	TopK int
	// RegisterTimeout bounds the wait for worker registration.
	RegisterTimeout time.Duration
}

// Report aggregates a cluster run.
type Report struct {
	Results     []wire.Result // indexed by query
	Wall        time.Duration
	WorkerNames []string
	Reassigned  int // tasks re-queued after a worker failure
}

// DBChecksum fingerprints a database so master and workers can verify
// they loaded the same sequences. It is the module-wide fingerprint
// (seq.Set.Checksum) — the same value the persistent engine and the
// sharding facade report, so a cluster worker, a serve-mode client and a
// remote shard coordinator all agree on what "the same database" means.
func DBChecksum(db *seq.Set) uint32 {
	return db.Checksum()
}

// workerConn is one registered worker.
type workerConn struct {
	conn *wire.Conn
	name string
	kind sched.Kind
	rate float64
}

// Serve accepts cfg.Workers workers on l, distributes the queries and
// returns the merged results. It closes the listener when done.
func Serve(l net.Listener, db, queries *seq.Set, cfg MasterConfig) (*Report, error) {
	defer l.Close()
	if cfg.Workers <= 0 {
		return nil, errors.New("cluster: MasterConfig.Workers must be positive")
	}
	if cfg.TopK <= 0 {
		cfg.TopK = 10
	}
	if cfg.RegisterTimeout <= 0 {
		cfg.RegisterTimeout = 30 * time.Second
	}
	checksum := DBChecksum(db)

	workers, err := registerWorkers(l, queries.Len(), checksum, cfg)
	if err != nil {
		return nil, err
	}

	rep := &Report{Results: make([]wire.Result, queries.Len())}
	for _, w := range workers {
		rep.WorkerNames = append(rep.WorkerNames, w.name)
	}

	queues, err := buildQueues(db, queries, workers, cfg.Policy)
	if err != nil {
		return nil, err
	}

	start := time.Now()
	var (
		mu        sync.Mutex
		remaining = queries.Len()
		done      = make(chan struct{})
		firstErr  error
	)
	// pop returns the next task for a worker kind: own pool first, then
	// steal.
	pop := func(kind sched.Kind) (int, bool) {
		mu.Lock()
		defer mu.Unlock()
		for _, k := range []sched.Kind{kind, other(kind)} {
			q := queues[k]
			if len(*q) > 0 {
				ti := (*q)[0]
				*q = (*q)[1:]
				return ti, true
			}
		}
		return -1, false
	}
	requeue := func(kind sched.Kind, ti int) {
		mu.Lock()
		q := queues[kind]
		*q = append(*q, ti)
		rep.Reassigned++
		mu.Unlock()
	}
	finish := func(qi int, res *wire.Result) {
		mu.Lock()
		rep.Results[qi] = *res
		remaining--
		if remaining == 0 {
			close(done)
		}
		mu.Unlock()
	}

	var wg sync.WaitGroup
	for _, w := range workers {
		wg.Add(1)
		go func(w *workerConn) {
			defer wg.Done()
			defer w.conn.Close()
			for {
				ti, ok := pop(w.kind)
				if !ok {
					w.conn.Send(nil) // Done
					return
				}
				q := &queries.Seqs[ti]
				err := w.conn.Send(&wire.Task{QueryIndex: uint32(ti), QueryID: q.ID, Residues: q.Residues})
				if err == nil {
					var msg any
					msg, err = w.conn.Recv()
					if err == nil {
						res, okRes := msg.(*wire.Result)
						if !okRes || int(res.QueryIndex) != ti {
							err = fmt.Errorf("cluster: worker %s sent unexpected %T", w.name, msg)
						} else {
							finish(ti, res)
							continue
						}
					}
				}
				// Worker failed: put the task back for the survivors.
				requeue(w.kind, ti)
				mu.Lock()
				if firstErr == nil {
					firstErr = fmt.Errorf("cluster: worker %s failed: %w", w.name, err)
				}
				mu.Unlock()
				return
			}
		}(w)
	}
	finished := make(chan struct{})
	go func() { wg.Wait(); close(finished) }()
	select {
	case <-done:
		<-finished
	case <-finished:
		// All workers exited; success only if every task completed.
		mu.Lock()
		rem := remaining
		mu.Unlock()
		if rem > 0 {
			if firstErr != nil {
				return nil, fmt.Errorf("cluster: %d tasks unfinished: %w", rem, firstErr)
			}
			return nil, fmt.Errorf("cluster: %d tasks unfinished", rem)
		}
	}
	rep.Wall = time.Since(start)
	return rep, nil
}

func other(k sched.Kind) sched.Kind {
	if k == sched.CPU {
		return sched.GPU
	}
	return sched.CPU
}

// registerWorkers accepts and validates worker registrations.
func registerWorkers(l net.Listener, queryCount int, checksum uint32, cfg MasterConfig) ([]*workerConn, error) {
	deadline := time.Now().Add(cfg.RegisterTimeout)
	if tl, ok := l.(*net.TCPListener); ok {
		tl.SetDeadline(deadline)
	}
	var workers []*workerConn
	for len(workers) < cfg.Workers {
		nc, err := l.Accept()
		if err != nil {
			return nil, fmt.Errorf("cluster: waiting for workers (%d/%d): %w", len(workers), cfg.Workers, err)
		}
		conn := wire.NewConn(nc)
		msg, err := conn.Recv()
		if err != nil {
			conn.Close()
			return nil, fmt.Errorf("cluster: registration: %w", err)
		}
		hello, ok := msg.(*wire.Hello)
		if !ok {
			conn.Close()
			return nil, fmt.Errorf("cluster: expected Hello, got %T", msg)
		}
		if hello.Version != wire.Version {
			conn.Send(&wire.ErrorMsg{Text: "protocol version mismatch"})
			conn.Close()
			return nil, fmt.Errorf("cluster: worker %s speaks version %d, want %d", hello.Name, hello.Version, wire.Version)
		}
		if hello.DBChecksum != checksum {
			conn.Send(&wire.ErrorMsg{Text: "database checksum mismatch"})
			conn.Close()
			return nil, fmt.Errorf("cluster: worker %s has a different database (crc %08x != %08x)", hello.Name, hello.DBChecksum, checksum)
		}
		if err := conn.Send(&wire.Welcome{Version: wire.Version, QueryCount: uint32(queryCount), DBChecksum: checksum}); err != nil {
			conn.Close()
			return nil, err
		}
		kind := sched.CPU
		if hello.Kind == 1 {
			kind = sched.GPU
		}
		workers = append(workers, &workerConn{conn: conn, name: hello.Name, kind: kind, rate: hello.RateGCUPS})
	}
	return workers, nil
}

// buildQueues splits tasks into per-kind queues according to the policy.
func buildQueues(db, queries *seq.Set, workers []*workerConn, policy Policy) (map[sched.Kind]*[]int, error) {
	cpuQ, gpuQ := []int{}, []int{}
	queues := map[sched.Kind]*[]int{sched.CPU: &cpuQ, sched.GPU: &gpuQ}

	cpus, gpus := 0, 0
	cpuRate, gpuRate := 0.0, 0.0
	for _, w := range workers {
		if w.kind == sched.CPU {
			cpus++
			cpuRate += w.rate
		} else {
			gpus++
			gpuRate += w.rate
		}
	}
	switch policy {
	case master.PolicySelfScheduling, master.PolicyRoundRobin:
		// One logical queue: alternate kinds so stealing keeps order fair.
		for i := range queries.Seqs {
			if gpus > 0 && (cpus == 0 || i%2 == 0) {
				gpuQ = append(gpuQ, i)
			} else {
				cpuQ = append(cpuQ, i)
			}
		}
		return queues, nil
	}
	// Dual-approximation split from advertised rates.
	if cpus > 0 {
		cpuRate /= float64(cpus)
	}
	if gpus > 0 {
		gpuRate /= float64(gpus)
	}
	in := &sched.Instance{CPUs: cpus, GPUs: gpus}
	dbRes := db.TotalResidues()
	for i := range queries.Seqs {
		cells := float64(queries.Seqs[i].Len()) * float64(dbRes)
		t := sched.Task{ID: i}
		if cpus > 0 {
			t.CPUTime = cells / (cpuRate * 1e9)
		}
		if gpus > 0 {
			t.GPUTime = cells / (gpuRate * 1e9)
		}
		in.Tasks = append(in.Tasks, t)
	}
	var s *sched.Schedule
	var err error
	if policy == master.PolicyDualApproxDP {
		s, err = sched.DualApproxDP(in)
	} else {
		s, err = sched.DualApprox(in)
	}
	if err != nil {
		return nil, err
	}
	type job struct {
		task  int
		start float64
	}
	var cpuJobs, gpuJobs []job
	for _, pl := range s.Placements {
		if pl.Kind == sched.CPU {
			cpuJobs = append(cpuJobs, job{pl.Task, pl.Start})
		} else {
			gpuJobs = append(gpuJobs, job{pl.Task, pl.Start})
		}
	}
	sortJobs := func(js []job) []int {
		for i := 1; i < len(js); i++ {
			for j := i; j > 0 && js[j].start < js[j-1].start; j-- {
				js[j], js[j-1] = js[j-1], js[j]
			}
		}
		out := make([]int, len(js))
		for i, j := range js {
			out[i] = j.task
		}
		return out
	}
	cpuQ = sortJobs(cpuJobs)
	gpuQ = sortJobs(gpuJobs)
	queues[sched.CPU] = &cpuQ
	queues[sched.GPU] = &gpuQ
	return queues, nil
}

// WorkerConfig tunes a cluster worker.
type WorkerConfig struct {
	Name string
	TopK int
}

// RunWorker connects a worker to the master over nc and serves tasks with
// the given engine-backed worker until the master sends Done.
func RunWorker(nc net.Conn, db *seq.Set, w master.Worker, cfg WorkerConfig) error {
	conn := wire.NewConn(nc)
	defer conn.Close()
	if cfg.TopK <= 0 {
		cfg.TopK = 10
	}
	name := cfg.Name
	if name == "" {
		name = w.Name()
	}
	kind := uint8(0)
	if w.Kind() == sched.GPU {
		kind = 1
	}
	// Register with the live measured rate (identical to the advertised
	// rate on a fresh worker), so a worker reused across sessions hands
	// the master its observed throughput, not the original constant.
	err := conn.Send(&wire.Hello{
		Version:    wire.Version,
		Name:       name,
		Kind:       kind,
		RateGCUPS:  w.MeasuredRateGCUPS(),
		DBChecksum: DBChecksum(db),
	})
	if err != nil {
		return err
	}
	msg, err := conn.Recv()
	if err != nil {
		return err
	}
	switch m := msg.(type) {
	case *wire.Welcome:
		// Registered.
	case *wire.ErrorMsg:
		return fmt.Errorf("cluster: master rejected registration: %s", m.Text)
	default:
		return fmt.Errorf("cluster: expected Welcome, got %T", msg)
	}
	for {
		msg, err := conn.Recv()
		if err != nil {
			return err
		}
		switch m := msg.(type) {
		case wire.Done:
			return nil
		case *wire.Task:
			q := seq.Sequence{ID: m.QueryID, Residues: m.Residues}
			res := w.Run(int(m.QueryIndex), &q, db)
			// Keep the estimate live off-pool too: the next session's
			// Hello registers with the measured rate observed here.
			w.ObserveTask(res.Cells, res.ObservedDuration())
			out := &wire.Result{
				QueryIndex: m.QueryIndex,
				ElapsedNS:  uint64(res.Elapsed.Nanoseconds()),
				SimSeconds: res.SimSeconds,
				Cells:      uint64(res.Cells),
			}
			for _, h := range res.Hits {
				out.Hits = append(out.Hits, wire.ResultHit{SeqIndex: uint32(h.SeqIndex), Score: int32(h.Score), SeqID: h.SeqID})
			}
			if err := conn.Send(out); err != nil {
				return err
			}
		case *wire.ErrorMsg:
			return fmt.Errorf("cluster: master error: %s", m.Text)
		default:
			return fmt.Errorf("cluster: unexpected message %T", msg)
		}
	}
}
