package platform

import (
	"math"
	"testing"

	"swdual/internal/sched"
	"swdual/internal/synth"
)

func TestCalibrationReproducesSingleWorkerRows(t *testing.T) {
	// The single-worker rows of Table II pin the two calibration
	// constants; the modeled sequential runs must land within 1.5%.
	p := New(1, 1)
	model := p.ModelDB("uniprot", synth.UniProt.GenerateLengths())
	queries := synth.StandardQueries()
	cpuTotal, gpuTotal := 0.0, 0.0
	for _, ql := range queries.Lengths {
		cpuTotal += p.CPUSeconds(model, ql)
		gpuTotal += p.GPUSeconds(model, ql)
	}
	if math.Abs(cpuTotal-2367.24)/2367.24 > 0.015 {
		t.Fatalf("1-CPU sequential %g s, paper 2367.24", cpuTotal)
	}
	if math.Abs(gpuTotal-785.26)/785.26 > 0.015 {
		t.Fatalf("1-GPU sequential %g s, paper 785.26", gpuTotal)
	}
}

func TestSWDUALEightWorkersNearPaper(t *testing.T) {
	// The 8-worker SWDUAL row (4 GPU + 4 CPU) is a pure model output; the
	// paper reports 142.98 s. Require the same regime (±15%).
	p := New(4, 4)
	model := p.ModelDB("uniprot", synth.UniProt.GenerateLengths())
	in := p.Instance(model, synth.StandardQueries().Lengths)
	s, err := sched.DualApprox(in)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Makespan-142.98)/142.98 > 0.15 {
		t.Fatalf("8-worker makespan %g s, paper 142.98", s.Makespan)
	}
}

func TestGPUSecondsScaleWithQueryLength(t *testing.T) {
	p := New(1, 1)
	model := p.ModelDB("dog", synth.EnsemblDog.Scaled(10).GenerateLengths())
	t100 := p.GPUSeconds(model, 100)
	t1000 := p.GPUSeconds(model, 1000)
	if t1000 <= t100 {
		t.Fatal("GPU time must grow with query length")
	}
	ratio := t1000 / t100
	if ratio < 5 || ratio > 11 {
		t.Fatalf("10x query scaled GPU time by %.2f, want near-linear", ratio)
	}
}

func TestContentionMonotone(t *testing.T) {
	p := New(0, 4)
	model := p.ModelDB("dog", synth.EnsemblDog.Scaled(10).GenerateLengths())
	prev := 0.0
	for g := 1; g <= 4; g++ {
		cur := p.GPUSecondsContended(model, 1000, g)
		if cur < prev {
			t.Fatalf("contended time decreased at g=%d", g)
		}
		prev = cur
	}
	if p.GPUSecondsContended(model, 1000, 1) != p.GPUSeconds(model, 1000) {
		t.Fatal("single GPU must be uncontended")
	}
}

func TestInstanceShape(t *testing.T) {
	p := New(2, 3)
	// Full-scale lengths: GPU acceleration requires a database large
	// enough to occupy the device (tiny scaled sets legitimately favor
	// the CPU, see TestTinyDatabaseFavorsCPU).
	model := p.ModelDB("dog", synth.EnsemblDog.GenerateLengths())
	queryLens := []int{100, 200, 300}
	in := p.Instance(model, queryLens)
	if in.CPUs != 2 || in.GPUs != 3 || len(in.Tasks) != 3 {
		t.Fatalf("instance %+v", in)
	}
	for i, task := range in.Tasks {
		if task.CPUTime <= 0 || task.GPUTime <= 0 {
			t.Fatalf("task %d has nonpositive time", i)
		}
		if task.GPUTime >= task.CPUTime {
			t.Fatalf("task %d not accelerated on GPU (%.3g vs %.3g)", i, task.GPUTime, task.CPUTime)
		}
	}
	// Longer queries take longer.
	if in.Tasks[2].CPUTime <= in.Tasks[0].CPUTime {
		t.Fatal("CPU time not monotone in query length")
	}
}

func TestTinyDatabaseFavorsCPU(t *testing.T) {
	// With a few hundred subjects the simulated GPU cannot fill its SMs,
	// so a short query is cheaper on the CPU — the occupancy effect that
	// makes the dual approximation's CPU/GPU split non-trivial.
	p := New(1, 1)
	model := p.ModelDB("tiny-dog", synth.EnsemblDog.Scaled(100).GenerateLengths())
	if gpu, cpu := p.GPUSeconds(model, 100), p.CPUSeconds(model, 100); gpu <= cpu {
		t.Skipf("tiny database already accelerated (gpu %.3g cpu %.3g); occupancy model changed", gpu, cpu)
	}
}

func TestCellsAndGCUPS(t *testing.T) {
	p := New(1, 1)
	model := p.ModelDB("x", []int{100, 200})
	if got := Cells(model, []int{10}); got != 3000 {
		t.Fatalf("cells %d, want 3000", got)
	}
	if GCUPS(2e9, 2) != 1 {
		t.Fatal("GCUPS")
	}
	if GCUPS(1, 0) != 0 {
		t.Fatal("GCUPS with zero time")
	}
}

func TestValidate(t *testing.T) {
	if err := New(0, 0).Validate(); err == nil {
		t.Fatal("empty platform must fail validation")
	}
	p := New(2, 2)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Workers() != 4 {
		t.Fatalf("workers %d", p.Workers())
	}
	if p.String() == "" {
		t.Fatal("empty String()")
	}
}
