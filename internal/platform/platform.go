// Package platform models the paper's hybrid testbed (the Idgraf machine:
// dual 4-core Xeon, 8 Tesla C2050 GPUs) as a cost model that converts
// search tasks — one query against a whole database — into per-PE
// processing times for the scheduler.
//
// Calibration (see EXPERIMENTS.md): CPU worker throughput comes from the
// single-worker SWIPE row of Table II (1.9455e13 cells / 2367.24 s,
// adjusted to 8.335 GCUPS so the modeled single-CPU run lands on the
// paper's 2367 s); GPU times come from the gpusim/cudasw cycle model
// whose single constant (20.2 cycles per cell per warp) matches the
// single-worker CUDASW++ row (785.26 s => 24.8 GCUPS). Multi-worker
// SWDUAL times are *outputs* of the scheduler plus this model, never
// fitted.
package platform

import (
	"fmt"

	"swdual/internal/cudasw"
	"swdual/internal/gpusim"
	"swdual/internal/sched"
	"swdual/internal/sw"
)

// Calibration holds the fitted constants of the cost model.
type Calibration struct {
	// CPUWorkerGCUPS is the sustained throughput of one CPU worker
	// running the SWIPE-style engine (Table II, SWIPE, 1 worker).
	CPUWorkerGCUPS float64
	// GPUWorkerGCUPS is the sustained throughput of one GPU worker
	// running the CUDASW++-style engine (Table II, CUDASW++, 1 worker:
	// 785.26 s on UniProt => 24.8 GCUPS per C2050).
	GPUWorkerGCUPS float64
	// GPUHostContentionAlpha discounts each additional concurrent GPU
	// worker for host-feed contention: effective rate multiplier is
	// 1/(1+alpha*(g-1)) with g active GPU workers. Fitted from the
	// CUDASW++ multi-worker rows; only baseline GPU-only runs use it
	// (SWDUAL pairs each GPU with CPU time, as the paper describes).
	GPUHostContentionAlpha float64
	// MasterOverheadSec is charged once per task on either PE kind. It
	// models the SWDUAL implementation's per-task dispatch, format
	// conversion and GPU context/profile setup. It is fitted from the
	// small-database rows of Table IV, where tasks are short (1-2 s)
	// and the paper's efficiency drops to ~55% of the UniProt rate
	// (e.g. Ensembl Dog: 18.91 GCUPS at 2 workers vs UniProt's 35.81);
	// a ~1 s constant per task reproduces that droop while perturbing
	// the long-task UniProt rows by under 12%.
	MasterOverheadSec float64
}

// PaperCalibration returns the constants fitted to Table II/IV.
func PaperCalibration() Calibration {
	return Calibration{
		CPUWorkerGCUPS:         8.335,
		GPUWorkerGCUPS:         24.8,
		GPUHostContentionAlpha: 0.16,
		MasterOverheadSec:      1.0,
	}
}

// Platform describes a hybrid machine: m CPU workers and k GPU workers.
type Platform struct {
	CPUs   int
	GPUs   int
	Cal    Calibration
	Device gpusim.DeviceConfig
	GPUCfg cudasw.Config

	predictor *cudasw.Engine // prototype engine used only for timing
}

// New builds the paper's platform shape with calibrated defaults.
func New(cpus, gpus int) *Platform {
	p := &Platform{
		CPUs:   cpus,
		GPUs:   gpus,
		Cal:    PaperCalibration(),
		Device: gpusim.TeslaC2050(),
		GPUCfg: cudasw.DefaultConfig(),
	}
	p.predictor = cudasw.NewWithConfig(gpusim.New(p.Device), sw.DefaultParams(), p.GPUCfg)
	return p
}

// Validate reports an unusable platform.
func (p *Platform) Validate() error {
	if p.CPUs < 0 || p.GPUs < 0 || p.CPUs+p.GPUs == 0 {
		return fmt.Errorf("platform: need at least one worker (m=%d k=%d)", p.CPUs, p.GPUs)
	}
	return nil
}

// Workers returns the total worker count.
func (p *Platform) Workers() int { return p.CPUs + p.GPUs }

// String implements fmt.Stringer.
func (p *Platform) String() string {
	return fmt.Sprintf("%d CPU + %d GPU", p.CPUs, p.GPUs)
}

// DBModel is the cached cost model of one database.
type DBModel struct {
	Name          string
	Subjects      int
	TotalResidues int64
	GPU           cudasw.TimingModel
}

// ModelDB precomputes the database cost model from subject lengths.
func (p *Platform) ModelDB(name string, subjectLengths []int) *DBModel {
	m := &DBModel{Name: name, Subjects: len(subjectLengths), GPU: p.predictor.Model(subjectLengths)}
	m.TotalResidues = m.GPU.TotalResidues
	return m
}

// CPUSeconds returns the modeled time of one task on one CPU worker.
func (p *Platform) CPUSeconds(db *DBModel, queryLen int) float64 {
	cells := float64(queryLen) * float64(db.TotalResidues)
	return cells / (p.Cal.CPUWorkerGCUPS * 1e9)
}

// GPUSeconds returns the modeled time of one task on one GPU worker.
func (p *Platform) GPUSeconds(db *DBModel, queryLen int) float64 {
	return db.GPU.Seconds(queryLen)
}

// GPUSecondsContended applies the host-feed contention factor for g
// concurrently active GPU workers (baseline GPU-only runs).
func (p *Platform) GPUSecondsContended(db *DBModel, queryLen, activeGPUs int) float64 {
	base := p.GPUSeconds(db, queryLen)
	if activeGPUs <= 1 {
		return base
	}
	return base * (1 + p.Cal.GPUHostContentionAlpha*float64(activeGPUs-1))
}

// Instance builds the scheduling instance for a query set against a
// database: task j is the comparison of query j to the whole database,
// with processing times p_j (CPU) and overline{p_j} (GPU).
func (p *Platform) Instance(db *DBModel, queryLens []int) *sched.Instance {
	in := &sched.Instance{CPUs: p.CPUs, GPUs: p.GPUs}
	for i, ql := range queryLens {
		in.Tasks = append(in.Tasks, sched.Task{
			ID:      i,
			Label:   fmt.Sprintf("q%02d(len %d)", i, ql),
			CPUTime: p.CPUSeconds(db, ql) + p.Cal.MasterOverheadSec,
			GPUTime: p.GPUSeconds(db, ql) + p.Cal.MasterOverheadSec,
		})
	}
	return in
}

// Cells returns the DP cell volume of a whole query set vs the database.
func Cells(db *DBModel, queryLens []int) int64 {
	var total int64
	for _, ql := range queryLens {
		total += int64(ql) * db.TotalResidues
	}
	return total
}

// GCUPS converts cells and seconds into billion cell updates per second.
func GCUPS(cells int64, seconds float64) float64 {
	if seconds <= 0 {
		return 0
	}
	return float64(cells) / seconds / 1e9
}
