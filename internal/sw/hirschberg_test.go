package sw

import (
	"math/rand"
	"testing"
	"testing/quick"

	"swdual/internal/alphabet"
)

// rescoreGlobal recomputes an alignment's score from its emitted rows
// under the affine gap model.
func rescoreGlobal(p Params, al *Alignment) int {
	got := 0
	inGap := false
	for col := range al.QueryRow {
		qc, sc := al.QueryRow[col], al.SubjRow[col]
		if qc == GapCode || sc == GapCode {
			if !inGap {
				got -= p.Gaps.Start
			}
			got -= p.Gaps.Extend
			inGap = true
			continue
		}
		// Two adjacent gaps in different sequences are separate gaps;
		// reset on any diagonal column.
		inGap = false
		got += p.Matrix.Score(qc, sc)
	}
	return got
}

// rescoreStrict treats a switch between gap-in-query and gap-in-subject
// as opening a new gap (matching the DP model, which cannot produce
// adjacent opposite gaps on an optimal path but may on ties).
func rescoreStrict(p Params, al *Alignment) int {
	got := 0
	lastGap := byte(0) // 0 = none, 1 = gap in query, 2 = gap in subject
	for col := range al.QueryRow {
		qc, sc := al.QueryRow[col], al.SubjRow[col]
		switch {
		case qc == GapCode:
			if lastGap != 1 {
				got -= p.Gaps.Start
			}
			got -= p.Gaps.Extend
			lastGap = 1
		case sc == GapCode:
			if lastGap != 2 {
				got -= p.Gaps.Start
			}
			got -= p.Gaps.Extend
			lastGap = 2
		default:
			got += p.Matrix.Score(qc, sc)
			lastGap = 0
		}
	}
	return got
}

func TestHirschbergMatchesAlign(t *testing.T) {
	p := DefaultParams()
	rng := rand.New(rand.NewSource(1))
	for iter := 0; iter < 150; iter++ {
		a := randSeq(rng, 1+rng.Intn(120))
		b := randSeq(rng, 1+rng.Intn(120))
		want := Score(p, a, b)
		al := AlignHirschberg(p, a, b)
		if al.Score != want {
			t.Fatalf("iter %d: hirschberg score %d, oracle %d (|a|=%d |b|=%d)", iter, al.Score, want, len(a), len(b))
		}
		if want == 0 {
			continue
		}
		if got := rescoreStrict(p, al); got != al.Score {
			t.Fatalf("iter %d: emitted path rescores to %d, claimed %d", iter, got, al.Score)
		}
	}
}

func TestHirschbergSelfAlignment(t *testing.T) {
	p := DefaultParams()
	q := alphabet.Protein.MustEncode("MKWVTFISLLFLFSSAYSRGVFRR")
	al := AlignHirschberg(p, q, q)
	if al.Identity() != 1.0 {
		t.Fatalf("identity %v", al.Identity())
	}
	if al.Score != p.Matrix.SelfScore(q) {
		t.Fatalf("score %d", al.Score)
	}
	if al.QueryStart != 0 || al.QueryEnd != len(q) {
		t.Fatalf("span [%d,%d)", al.QueryStart, al.QueryEnd)
	}
}

func TestHirschbergLongGap(t *testing.T) {
	p := DefaultParams()
	full := alphabet.Protein.MustEncode("MKWVTFISLLWWWWWFSSAYSRGVFRRMKWVTFISLL")
	cut := append(append([]byte{}, full[:10]...), full[15:]...) // remove WWWWW
	al := AlignHirschberg(p, full, cut)
	if want := Score(p, full, cut); al.Score != want {
		t.Fatalf("score %d want %d", al.Score, want)
	}
	if got := rescoreStrict(p, al); got != al.Score {
		t.Fatalf("path rescores to %d", got)
	}
	if al.Gaps == 0 {
		t.Fatal("expected gap columns")
	}
}

func TestHirschbergZeroScore(t *testing.T) {
	p := DefaultParams()
	w := alphabet.Protein.MustEncode("W")
	c := alphabet.Protein.MustEncode("C")
	al := AlignHirschberg(p, w, c)
	if al.Score != 0 || al.Length() != 0 {
		t.Fatalf("zero-score alignment %+v", al)
	}
}

func TestAlignGlobalIdentical(t *testing.T) {
	p := DefaultParams()
	q := alphabet.Protein.MustEncode("ARNDCQEGHILKMFPSTWYV")
	al := AlignGlobal(p, q, q)
	if al.Score != p.Matrix.SelfScore(q) {
		t.Fatalf("global self score %d", al.Score)
	}
	if al.Gaps != 0 || al.Matches != len(q) {
		t.Fatalf("global self alignment %+v", al)
	}
}

// nwFullMatrix is a quadratic-space global affine aligner used as the
// oracle for AlignGlobal.
func nwFullMatrix(p Params, a, b []byte) int {
	g, h := p.Gaps.Start, p.Gaps.Extend
	m, n := len(a), len(b)
	H := make([][]int, m+1)
	E := make([][]int, m+1)
	F := make([][]int, m+1)
	for i := range H {
		H[i] = make([]int, n+1)
		E[i] = make([]int, n+1)
		F[i] = make([]int, n+1)
	}
	for i := 0; i <= m; i++ {
		for j := 0; j <= n; j++ {
			E[i][j], F[i][j] = negInf, negInf
			if i == 0 && j == 0 {
				continue
			}
			H[i][j] = negInf
			if j > 0 {
				e := H[i][j-1] - g - h
				if E[i][j-1]-h > e {
					e = E[i][j-1] - h
				}
				E[i][j] = e
				if e > H[i][j] {
					H[i][j] = e
				}
			}
			if i > 0 {
				f := H[i-1][j] - g - h
				if F[i-1][j]-h > f {
					f = F[i-1][j] - h
				}
				F[i][j] = f
				if f > H[i][j] {
					H[i][j] = f
				}
			}
			if i > 0 && j > 0 {
				if v := H[i-1][j-1] + p.Matrix.Score(a[i-1], b[j-1]); v > H[i][j] {
					H[i][j] = v
				}
			}
		}
	}
	return H[m][n]
}

func TestAlignGlobalMatchesFullMatrix(t *testing.T) {
	p := DefaultParams()
	rng := rand.New(rand.NewSource(2))
	for iter := 0; iter < 100; iter++ {
		a := randSeq(rng, 1+rng.Intn(50))
		b := randSeq(rng, 1+rng.Intn(50))
		want := nwFullMatrix(p, a, b)
		al := AlignGlobal(p, a, b)
		if al.Score != want {
			t.Fatalf("iter %d: global %d, oracle %d (|a|=%d |b|=%d)", iter, al.Score, want, len(a), len(b))
		}
		if got := rescoreStrict(p, al); got != al.Score {
			t.Fatalf("iter %d: path rescores to %d, claimed %d", iter, got, al.Score)
		}
	}
}

// Property: Hirschberg agrees with the oracle on arbitrary inputs and its
// emitted path always rescores to its claimed score.
func TestQuickHirschberg(t *testing.T) {
	p := DefaultParams()
	f := func(ar, br []byte) bool {
		a := clamp(ar, 80)
		b := clamp(br, 80)
		if len(a) == 0 || len(b) == 0 {
			return true
		}
		al := AlignHirschberg(p, a, b)
		if al.Score != Score(p, a, b) {
			return false
		}
		if al.Score == 0 {
			return true
		}
		return rescoreStrict(p, al) == al.Score
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}
