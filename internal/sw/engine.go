package sw

import (
	"swdual/internal/scoring"
	"swdual/internal/seq"
)

// Scalar is the reference engine: one scalar Gotoh DP per database
// sequence. It is the oracle for all accelerated engines and the analogue
// of an unvectorized CPU tool (the SWPS3 baseline maps here in functional
// runs).
type Scalar struct {
	params Params
}

// NewScalar builds the engine.
func NewScalar(p Params) *Scalar { return &Scalar{params: p} }

// Name implements Engine.
func (e *Scalar) Name() string { return "scalar-gotoh" }

// Scores implements Engine.
func (e *Scalar) Scores(query []byte, db *seq.Set) []int {
	out := make([]int, db.Len())
	for i := range db.Seqs {
		out[i] = Score(e.params, query, db.Seqs[i].Residues)
	}
	return out
}

// Params returns the engine's parameters.
func (e *Scalar) Params() Params { return e.params }

// Profiled is the scalar engine with a precomputed query profile, turning
// the matrix lookup in the inner loop into a linear array read. It is
// still scalar but measurably faster than Scalar; functionally identical.
type Profiled struct {
	params Params
}

// NewProfiled builds the engine.
func NewProfiled(p Params) *Profiled { return &Profiled{params: p} }

// Name implements Engine.
func (e *Profiled) Name() string { return "scalar-profiled" }

// Scores implements Engine.
func (e *Profiled) Scores(query []byte, db *seq.Set) []int {
	return e.scores(query, scoring.NewProfile(e.params.Matrix, query), db)
}

// ScoresProfiled implements ProfiledEngine: the scalar profile comes
// from the shared per-query set instead of being rebuilt per call.
func (e *Profiled) ScoresProfiled(query []byte, prof *scoring.QueryProfiles, db *seq.Set) []int {
	return e.scores(query, prof.Scalar(), db)
}

func (e *Profiled) scores(query []byte, prof *scoring.Profile, db *seq.Set) []int {
	out := make([]int, db.Len())
	for i := range db.Seqs {
		out[i] = scoreProfiled(prof, e.params.Gaps, db.Seqs[i].Residues)
	}
	return out
}

var _ ProfiledEngine = (*Profiled)(nil)

// scoreProfiled is the Gotoh recurrence driven by a scalar query profile,
// iterating subject-major so each subject residue selects one profile row.
func scoreProfiled(p *scoring.Profile, gaps scoring.Gaps, subject []byte) int {
	m := len(p.Query)
	if m == 0 || len(subject) == 0 {
		return 0
	}
	gs, ge := gaps.Start, gaps.Extend
	h := make([]int, m+1) // H over query positions, previous column
	e := make([]int, m+1) // E over query positions, previous column
	for i := range e {
		e[i] = negInf
	}
	best := 0
	for _, d := range subject {
		row := p.Rows[d]
		diag := h[0]
		f := negInf
		for i := 1; i <= m; i++ {
			old := h[i]
			ev := e[i]
			if v := old - gs; v > ev {
				ev = v
			}
			ev -= ge
			if v := h[i-1] - gs; v > f {
				f = v
			}
			f -= ge
			v := diag + int(row[i-1])
			if ev > v {
				v = ev
			}
			if f > v {
				v = f
			}
			if v < 0 {
				v = 0
			}
			diag = old
			h[i] = v
			e[i] = ev
			if v > best {
				best = v
			}
		}
	}
	return best
}
