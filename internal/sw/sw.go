// Package sw implements reference Smith-Waterman local alignment: the
// linear-gap recurrence of the paper's Eq. (1) and the Gotoh affine-gap
// recurrences of Eqs. (2)-(4). These scalar implementations are the
// correctness oracle for every accelerated engine (striped SWAR,
// inter-sequence SWIPE, simulated GPU kernels) and the engine used by the
// plain CPU baseline.
package sw

import (
	"swdual/internal/scoring"
	"swdual/internal/seq"
)

const negInf = int(-1) << 40 // deep enough that no additive chain recovers

// Params bundles the substitution matrix and affine gap model shared by all
// engines.
type Params struct {
	Matrix *scoring.Matrix
	Gaps   scoring.Gaps
}

// DefaultParams is BLOSUM62 with the 10/2 affine gap model.
func DefaultParams() Params {
	return Params{Matrix: scoring.BLOSUM62, Gaps: scoring.DefaultGaps}
}

// Engine computes local-alignment scores of one query against a set of
// subject sequences. Implementations include the scalar reference, the
// striped and inter-sequence SWAR engines and the simulated GPU kernels.
type Engine interface {
	// Name identifies the engine in benchmarks and tables.
	Name() string
	// Scores returns the optimal local alignment score of query against
	// each sequence of db, in db order.
	Scores(query []byte, db *seq.Set) []int
}

// ProfiledEngine is an Engine that can reuse a prepared per-query
// profile set (scoring.QueryProfiles) instead of rebuilding its profiles
// on every call. The wave dispatcher builds one profile set per query
// and hands it to whichever engine runs the task, so backends stop
// paying profile construction per task; ScoresProfiled must return
// exactly what Scores would (prof is a cache, never an input that
// changes results). prof describes the same query and matrix the engine
// was built with.
type ProfiledEngine interface {
	Engine
	ScoresProfiled(query []byte, prof *scoring.QueryProfiles, db *seq.Set) []int
}

// Cells returns the number of dynamic-programming cells for one comparison.
func Cells(queryLen, subjectLen int) int64 {
	return int64(queryLen) * int64(subjectLen)
}

// SetCells returns the DP cell volume of a query against a whole set.
func SetCells(queryLen int, db *seq.Set) int64 {
	return int64(queryLen) * db.TotalResidues()
}

// ScoreLinear computes the optimal local alignment score under the
// linear-gap model of Eq. (1): every gap column costs the same penalty g
// (g > 0 is a penalty, stored positive).
func ScoreLinear(m *scoring.Matrix, g int, query, subject []byte) int {
	if len(query) == 0 || len(subject) == 0 {
		return 0
	}
	n := len(subject)
	h := make([]int, n+1)
	best := 0
	for i := 1; i <= len(query); i++ {
		q := query[i-1]
		row := m.Row(q)
		diag := h[0]
		for j := 1; j <= n; j++ {
			up := h[j] - g
			left := h[j-1] - g
			v := diag + int(row[subject[j-1]])
			if up > v {
				v = up
			}
			if left > v {
				v = left
			}
			if v < 0 {
				v = 0
			}
			diag = h[j]
			h[j] = v
			if v > best {
				best = v
			}
		}
	}
	return best
}

// Score computes the optimal local alignment score under the affine-gap
// model (Gotoh), using linear memory in the subject length. This is the
// module's oracle implementation.
func Score(p Params, query, subject []byte) int {
	if len(query) == 0 || len(subject) == 0 {
		return 0
	}
	ge := p.Gaps.Extend
	gs := p.Gaps.Start
	n := len(subject)
	h := make([]int, n+1) // h[j]: H[i-1][j] before update, H[i][j] after
	f := make([]int, n+1) // f[j]: F[i-1][j] before update, F[i][j] after
	for j := range f {
		f[j] = negInf
	}
	best := 0
	for i := 1; i <= len(query); i++ {
		row := p.Matrix.Row(query[i-1])
		diag := h[0]
		e := negInf
		for j := 1; j <= n; j++ {
			hup := h[j] // H[i-1][j]
			// Eq. (4): F[i][j] = -Ge + max(F[i-1][j], H[i-1][j] - Gs)
			fv := f[j]
			if v := hup - gs; v > fv {
				fv = v
			}
			fv -= ge
			// Eq. (3): E[i][j] = -Ge + max(E[i][j-1], H[i][j-1] - Gs)
			if v := h[j-1] - gs; v > e {
				e = v
			}
			e -= ge
			// Eq. (2)
			v := diag + int(row[subject[j-1]])
			if e > v {
				v = e
			}
			if fv > v {
				v = fv
			}
			if v < 0 {
				v = 0
			}
			diag = hup
			h[j] = v
			f[j] = fv
			if v > best {
				best = v
			}
		}
	}
	return best
}

// ScoreWithEnd is Score but also reports the subject and query end
// positions (1-based, inclusive) of an optimal local alignment. Ties are
// broken toward the smallest query end, then smallest subject end.
func ScoreWithEnd(p Params, query, subject []byte) (score, queryEnd, subjectEnd int) {
	if len(query) == 0 || len(subject) == 0 {
		return 0, 0, 0
	}
	ge, gs := p.Gaps.Extend, p.Gaps.Start
	n := len(subject)
	h := make([]int, n+1)
	f := make([]int, n+1)
	for j := range f {
		f[j] = negInf
	}
	for i := 1; i <= len(query); i++ {
		row := p.Matrix.Row(query[i-1])
		diag := h[0]
		e := negInf
		for j := 1; j <= n; j++ {
			hup := h[j]
			fv := f[j]
			if v := hup - gs; v > fv {
				fv = v
			}
			fv -= ge
			if v := h[j-1] - gs; v > e {
				e = v
			}
			e -= ge
			v := diag + int(row[subject[j-1]])
			if e > v {
				v = e
			}
			if fv > v {
				v = fv
			}
			if v < 0 {
				v = 0
			}
			diag = hup
			h[j] = v
			f[j] = fv
			if v > score {
				score, queryEnd, subjectEnd = v, i, j
			}
		}
	}
	return score, queryEnd, subjectEnd
}

// ScoreBanded computes the affine-gap local score restricted to a diagonal
// band of half-width band around the main diagonal (|i-j| <= band). It is
// an admissible accelerator when the optimum stays within the band; tests
// verify it converges to Score as the band widens.
func ScoreBanded(p Params, query, subject []byte, band int) int {
	if len(query) == 0 || len(subject) == 0 {
		return 0
	}
	if band < 1 {
		band = 1
	}
	ge, gs := p.Gaps.Extend, p.Gaps.Start
	n := len(subject)
	h := make([]int, n+1)
	f := make([]int, n+1)
	hprev := make([]int, n+1)
	best := 0
	for j := range f {
		f[j] = negInf
	}
	for i := 1; i <= len(query); i++ {
		copy(hprev, h)
		row := p.Matrix.Row(query[i-1])
		lo := i - band
		if lo < 1 {
			lo = 1
		}
		hi := i + band
		if hi > n {
			hi = n
		}
		if lo > n {
			break
		}
		e := negInf
		if lo > 1 {
			h[lo-1] = 0 // outside the band: treated as empty prefix
		}
		for j := lo; j <= hi; j++ {
			fv := f[j]
			if v := hprev[j] - gs; v > fv {
				fv = v
			}
			fv -= ge
			if v := h[j-1] - gs; v > e {
				e = v
			}
			e -= ge
			v := hprev[j-1] + int(row[subject[j-1]])
			if e > v {
				v = e
			}
			if fv > v {
				v = fv
			}
			if v < 0 {
				v = 0
			}
			h[j] = v
			f[j] = fv
			if v > best {
				best = v
			}
		}
		if hi < n {
			h[hi+1] = 0
			f[hi+1] = negInf
		}
	}
	return best
}
