package sw

import (
	"fmt"
	"strings"

	"swdual/internal/alphabet"
)

// Alignment is a full local alignment with traceback, as produced by Align.
// Coordinates are 0-based half-open over the original sequences.
type Alignment struct {
	Score      int
	QueryStart int
	QueryEnd   int
	SubjStart  int
	SubjEnd    int
	// QueryRow and SubjRow are the aligned residue codes with gap columns
	// marked by the sentinel GapCode.
	QueryRow []byte
	SubjRow  []byte
	// Matches counts identical columns; Positives counts columns with a
	// positive substitution score; Gaps counts gap columns.
	Matches   int
	Positives int
	Gaps      int
}

// GapCode marks a gap column in Alignment rows. It is outside every
// alphabet (alphabets have at most 32 codes).
const GapCode = 0xFF

// Length returns the number of alignment columns.
func (a *Alignment) Length() int { return len(a.QueryRow) }

// Identity returns the fraction of identical columns, 0 for empty
// alignments.
func (a *Alignment) Identity() float64 {
	if len(a.QueryRow) == 0 {
		return 0
	}
	return float64(a.Matches) / float64(len(a.QueryRow))
}

// CIGAR renders the alignment as a CIGAR string (M/I/D run-length codes,
// I = gap in subject / insertion to query, D = gap in query).
func (a *Alignment) CIGAR() string {
	var sb strings.Builder
	runOp := byte(0)
	runLen := 0
	flush := func() {
		if runLen > 0 {
			fmt.Fprintf(&sb, "%d%c", runLen, runOp)
		}
	}
	for i := range a.QueryRow {
		var op byte
		switch {
		case a.QueryRow[i] == GapCode:
			op = 'D'
		case a.SubjRow[i] == GapCode:
			op = 'I'
		default:
			op = 'M'
		}
		if op != runOp {
			flush()
			runOp, runLen = op, 0
		}
		runLen++
	}
	flush()
	return sb.String()
}

// Format renders a BLAST-like three-line text block using the alphabet.
func (a *Alignment) Format(alpha *alphabet.Alphabet) string {
	var q, m, s strings.Builder
	for i := range a.QueryRow {
		qc, sc := a.QueryRow[i], a.SubjRow[i]
		switch {
		case qc == GapCode:
			q.WriteByte('-')
			s.WriteByte(alpha.Letter(sc))
			m.WriteByte(' ')
		case sc == GapCode:
			q.WriteByte(alpha.Letter(qc))
			s.WriteByte('-')
			m.WriteByte(' ')
		case qc == sc:
			q.WriteByte(alpha.Letter(qc))
			s.WriteByte(alpha.Letter(sc))
			m.WriteByte('|')
		default:
			q.WriteByte(alpha.Letter(qc))
			s.WriteByte(alpha.Letter(sc))
			m.WriteByte(' ')
		}
	}
	return fmt.Sprintf("Query %5d %s %d\n            %s\nSbjct %5d %s %d\n",
		a.QueryStart+1, q.String(), a.QueryEnd, m.String(), a.SubjStart+1, s.String(), a.SubjEnd)
}

// traceback matrix identifiers.
const (
	tbNone = iota // alignment start (H = 0)
	tbDiag
	tbE // gap in query (move left)
	tbF // gap in subject (move up)
)

// Align computes an optimal local alignment with full traceback using
// O(m*n) memory. For long sequences prefer AlignHirschberg.
func Align(p Params, query, subject []byte) *Alignment {
	m, n := len(query), len(subject)
	if m == 0 || n == 0 {
		return &Alignment{}
	}
	gs, ge := p.Gaps.Start, p.Gaps.Extend
	w := n + 1
	h := make([]int32, (m+1)*w)
	e := make([]int32, (m+1)*w)
	f := make([]int32, (m+1)*w)
	// dir packs: bits 0-1 source of H; bit 2 E came from E (extension);
	// bit 3 F came from F (extension).
	dir := make([]uint8, (m+1)*w)
	const ninf = int32(-1) << 28
	for j := 0; j <= n; j++ {
		e[j], f[j] = ninf, ninf
	}
	bestScore, bi, bj := int32(0), 0, 0
	for i := 1; i <= m; i++ {
		row := p.Matrix.Row(query[i-1])
		e[i*w], f[i*w] = ninf, ninf
		for j := 1; j <= n; j++ {
			idx := i*w + j
			// E: gap in query, coming from the left.
			ev := e[idx-1] - int32(ge)
			eFromH := h[idx-1] - int32(gs+ge)
			var d uint8
			if eFromH >= ev {
				ev = eFromH
			} else {
				d |= 1 << 2
			}
			// F: gap in subject, coming from above.
			fv := f[idx-w] - int32(ge)
			fFromH := h[idx-w] - int32(gs+ge)
			if fFromH >= fv {
				fv = fFromH
			} else {
				d |= 1 << 3
			}
			hv := h[idx-w-1] + int32(row[subject[j-1]])
			src := uint8(tbDiag)
			if ev > hv {
				hv, src = ev, tbE
			}
			if fv > hv {
				hv, src = fv, tbF
			}
			if hv <= 0 {
				hv, src = 0, tbNone
			}
			h[idx], e[idx], f[idx] = hv, ev, fv
			dir[idx] = d | src
			if hv > bestScore {
				bestScore, bi, bj = hv, i, j
			}
		}
	}
	al := &Alignment{Score: int(bestScore), QueryEnd: bi, SubjEnd: bj}
	if bestScore == 0 {
		return al
	}
	// Traceback from (bi, bj).
	var qrow, srow []byte
	i, j := bi, bj
	state := dir[i*w+j] & 3
	for state != tbNone && i > 0 && j > 0 {
		idx := i*w + j
		switch state {
		case tbDiag:
			qrow = append(qrow, query[i-1])
			srow = append(srow, subject[j-1])
			i, j = i-1, j-1
			state = dir[i*w+j] & 3
		case tbE:
			ext := dir[idx]&(1<<2) != 0
			qrow = append(qrow, GapCode)
			srow = append(srow, subject[j-1])
			j--
			if ext {
				state = tbE
			} else {
				state = dir[i*w+j] & 3
			}
		case tbF:
			ext := dir[idx]&(1<<3) != 0
			qrow = append(qrow, query[i-1])
			srow = append(srow, GapCode)
			i--
			if ext {
				state = tbF
			} else {
				state = dir[i*w+j] & 3
			}
		}
	}
	al.QueryStart, al.SubjStart = i, j
	reverse(qrow)
	reverse(srow)
	al.QueryRow, al.SubjRow = qrow, srow
	for k := range qrow {
		switch {
		case qrow[k] == GapCode || srow[k] == GapCode:
			al.Gaps++
		case qrow[k] == srow[k]:
			al.Matches++
			al.Positives++
		case p.Matrix.Score(qrow[k], srow[k]) > 0:
			al.Positives++
		}
	}
	return al
}

func reverse(b []byte) {
	for l, r := 0, len(b)-1; l < r; l, r = l+1, r-1 {
		b[l], b[r] = b[r], b[l]
	}
}
