package sw

// Linear-space local alignment with full traceback, after Hirschberg
// (1975) and Myers & Miller (1988). The paper's reference [6] (de O.
// Sandes & de Melo, IPDPS 2011) is exactly this problem — aligning huge
// sequences in linear space — so the library provides it as a first-class
// operation: AlignHirschberg produces the same alignment quality as
// Align while using O(m+n) working memory instead of O(m*n).
//
// The implementation is the affine-gap divide-and-conquer of Myers &
// Miller translated to score maximization: locate the local alignment's
// end by a forward linear-space pass, its start by a backward pass, then
// assemble the in-between global alignment recursively, splitting the
// query in half and joining on either a diagonal cell (CC+RR) or a
// vertical gap spanning the split row (DD+SS with the double-charged gap
// open credited back).

// AlignHirschberg computes an optimal local alignment with traceback in
// linear space. The result is equivalent to Align (same score; an
// equally optimal path).
func AlignHirschberg(p Params, query, subject []byte) *Alignment {
	score, qe, se := ScoreWithEnd(p, query, subject)
	if score == 0 {
		return &Alignment{}
	}
	// Backward pass over reversed prefixes locates the start cell.
	rq := reversed(query[:qe])
	rs := reversed(subject[:se])
	rscore, rqe, rse := ScoreWithEnd(p, rq, rs)
	if rscore != score {
		// The two passes must agree on the optimum; a mismatch would be
		// a bug, fall back to the quadratic-space oracle.
		return Align(p, query, subject)
	}
	qs, ss := qe-rqe, se-rse
	mm := &mmAligner{p: p}
	g := p.Gaps.Start
	got := mm.diff(query[qs:qe], subject[ss:se], g, g)
	al := &Alignment{
		Score:      got,
		QueryStart: qs,
		QueryEnd:   qe,
		SubjStart:  ss,
		SubjEnd:    se,
		QueryRow:   mm.qrow,
		SubjRow:    mm.srow,
	}
	for k := range al.QueryRow {
		switch {
		case al.QueryRow[k] == GapCode || al.SubjRow[k] == GapCode:
			al.Gaps++
		case al.QueryRow[k] == al.SubjRow[k]:
			al.Matches++
			al.Positives++
		case p.Matrix.Score(al.QueryRow[k], al.SubjRow[k]) > 0:
			al.Positives++
		}
	}
	return al
}

// AlignGlobal computes an optimal global (Needleman-Wunsch style,
// affine-gap) alignment of the two whole sequences in linear space using
// the same Myers-Miller machinery.
func AlignGlobal(p Params, query, subject []byte) *Alignment {
	mm := &mmAligner{p: p}
	g := p.Gaps.Start
	score := mm.diff(query, subject, g, g)
	al := &Alignment{
		Score:      score,
		QueryStart: 0,
		QueryEnd:   len(query),
		SubjStart:  0,
		SubjEnd:    len(subject),
		QueryRow:   mm.qrow,
		SubjRow:    mm.srow,
	}
	for k := range al.QueryRow {
		switch {
		case al.QueryRow[k] == GapCode || al.SubjRow[k] == GapCode:
			al.Gaps++
		case al.QueryRow[k] == al.SubjRow[k]:
			al.Matches++
			al.Positives++
		case p.Matrix.Score(al.QueryRow[k], al.SubjRow[k]) > 0:
			al.Positives++
		}
	}
	return al
}

func reversed(b []byte) []byte {
	out := make([]byte, len(b))
	for i, v := range b {
		out[len(b)-1-i] = v
	}
	return out
}

// mmAligner carries the emitted alignment rows and scratch vectors.
type mmAligner struct {
	p    Params
	qrow []byte
	srow []byte
}

func (a *mmAligner) emitDiag(q, s byte) {
	a.qrow = append(a.qrow, q)
	a.srow = append(a.srow, s)
}

// emitDel emits k query residues aligned to gaps (vertical gap).
func (a *mmAligner) emitDel(q []byte) {
	for _, r := range q {
		a.qrow = append(a.qrow, r)
		a.srow = append(a.srow, GapCode)
	}
}

// emitIns emits k subject residues aligned to gaps (horizontal gap).
func (a *mmAligner) emitIns(s []byte) {
	for _, r := range s {
		a.qrow = append(a.qrow, GapCode)
		a.srow = append(a.srow, r)
	}
}

// gapScore is the (negative) score of a gap of length k with the normal
// open penalty.
func (a *mmAligner) gapScore(k int) int {
	if k <= 0 {
		return 0
	}
	return -(a.p.Gaps.Start + k*a.p.Gaps.Extend)
}

// diff globally aligns q against s and returns the score. tb and te are
// the effective gap-open penalties for vertical gaps touching the top
// and bottom boundaries (0 when the parent recursion already opened the
// gap across the boundary, Gaps.Start otherwise).
func (a *mmAligner) diff(q, s []byte, tb, te int) int {
	g, h := a.p.Gaps.Start, a.p.Gaps.Extend
	m, n := len(q), len(s)
	switch {
	case n == 0:
		if m > 0 {
			a.emitDel(q)
			open := tb
			if te < open {
				open = te
			}
			return -(open + h*m)
		}
		return 0
	case m == 0:
		a.emitIns(s)
		return a.gapScore(n)
	case m == 1:
		return a.diffSingle(q[0], s, tb, te)
	}
	i1 := m / 2
	cc, dd := a.forward(q[:i1], s, tb)
	rr, ss := a.backward(q[i1:], s, te)
	// Join: diagonal (type 1) or a vertical gap spanning the split rows
	// (type 2, rows i1-1 and i1 of q both deleted, gap open credited
	// back once).
	bestJ, bestType, best := 0, 1, negInf
	for j := 0; j <= n; j++ {
		if v := cc[j] + rr[j]; v > best {
			best, bestJ, bestType = v, j, 1
		}
		if v := dd[j] + ss[j] + g; v > best {
			best, bestJ, bestType = v, j, 2
		}
	}
	if bestType == 1 {
		a.diff(q[:i1], s[:bestJ], tb, g)
		a.diff(q[i1:], s[bestJ:], g, te)
		return best
	}
	// Type 2: q[i1-1] and q[i1] are both gap columns of one vertical gap.
	a.diff(q[:i1-1], s[:bestJ], tb, 0)
	a.emitDel(q[i1-1 : i1+1])
	a.diff(q[i1+1:], s[bestJ:], 0, te)
	return best
}

// diffSingle handles the M == 1 base case explicitly.
func (a *mmAligner) diffSingle(q0 byte, s []byte, tb, te int) int {
	h := a.p.Gaps.Extend
	n := len(s)
	// Option A: delete q0 entirely (vertical gap of one, merged with the
	// cheaper boundary) and insert all of s.
	open := tb
	if te < open {
		open = te
	}
	bestScore := -(open + h) + a.gapScore(n)
	bestJ := -1
	// Option B: align q0 to s[j], surrounding s residues as horizontal
	// gaps.
	for j := 0; j < n; j++ {
		v := a.gapScore(j) + a.p.Matrix.Score(q0, s[j]) + a.gapScore(n-1-j)
		if v > bestScore {
			bestScore, bestJ = v, j
		}
	}
	if bestJ < 0 {
		a.emitDel([]byte{q0})
		a.emitIns(s)
		return bestScore
	}
	a.emitIns(s[:bestJ])
	a.emitDiag(q0, s[bestJ])
	a.emitIns(s[bestJ+1:])
	return bestScore
}

// forward computes CC (global score of q vs s[0..j)) and DD (same but
// ending in an open vertical gap) for the whole block q, with tb as the
// top-boundary vertical open penalty.
func (a *mmAligner) forward(q, s []byte, tb int) (cc, dd []int) {
	g, h := a.p.Gaps.Start, a.p.Gaps.Extend
	n := len(s)
	cc = make([]int, n+1)
	dd = make([]int, n+1)
	cc[0] = 0
	t := -g
	for j := 1; j <= n; j++ {
		t -= h
		cc[j] = t
		dd[j] = t - g // opening a vertical gap after a horizontal one re-opens
	}
	dd[0] = negInf
	t = -tb
	for i := 1; i <= len(q); i++ {
		row := a.p.Matrix.Row(q[i-1])
		sPrev := cc[0] // CC[i-1][0]
		t -= h
		cc[0] = t
		// Vertical gap at column 0 continues from the top boundary.
		dd[0] = t
		e := negInf
		for j := 1; j <= n; j++ {
			// E (horizontal gap) from the current row.
			if v := cc[j-1] - g; v > e {
				e = v
			}
			e -= h
			// DD from the previous row.
			dv := dd[j]
			if v := cc[j] - g; v > dv {
				dv = v
			}
			dv -= h
			v := sPrev + int(row[s[j-1]])
			if e > v {
				v = e
			}
			if dv > v {
				v = dv
			}
			sPrev = cc[j]
			cc[j] = v
			dd[j] = dv
		}
	}
	return cc, dd
}

// backward is forward on the reversed block: rr[j] is the global score of
// q (the bottom block) vs s[j..n), ss[j] the same ending (in forward
// orientation: starting) with an open vertical gap at the split row.
func (a *mmAligner) backward(q, s []byte, te int) (rr, ss []int) {
	rq := reversed(q)
	rs := reversed(s)
	cc, dd := a.forward(rq, rs, te)
	n := len(s)
	rr = make([]int, n+1)
	ss = make([]int, n+1)
	for j := 0; j <= n; j++ {
		rr[j] = cc[n-j]
		ss[j] = dd[n-j]
	}
	return rr, ss
}
