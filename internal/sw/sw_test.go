package sw

import (
	"math/rand"
	"testing"
	"testing/quick"

	"swdual/internal/alphabet"
	"swdual/internal/scoring"
	"swdual/internal/synth"
)

func params() Params { return DefaultParams() }

func randSeq(rng *rand.Rand, n int) []byte {
	s := make([]byte, n)
	for i := range s {
		s[i] = byte(rng.Intn(alphabet.Protein.Core()))
	}
	return s
}

func enc(s string) []byte { return alphabet.Protein.MustEncode(s) }

func TestScoreKnownCases(t *testing.T) {
	p := params()
	// Identical sequences: ungapped diagonal alignment = self score.
	q := enc("MKWVTFISLL")
	if got, want := Score(p, q, q), p.Matrix.SelfScore(q); got != want {
		t.Fatalf("self alignment %d, want %d", got, want)
	}
	// Empty sequences score zero.
	if Score(p, nil, q) != 0 || Score(p, q, nil) != 0 {
		t.Fatal("empty sequence must score 0")
	}
	// Completely dissimilar single residues: local alignment floors at 0
	// unless the substitution is positive.
	w := enc("W")
	c := enc("C")
	if got := Score(p, w, c); got != 0 {
		t.Fatalf("W vs C scored %d, want 0 (BLOSUM62 W/C = -2)", got)
	}
}

func TestScoreGapExample(t *testing.T) {
	p := params()
	// Deleting one residue from a sequence: the optimal local alignment
	// bridges the deletion with a single one-column gap, scoring the
	// shared residues minus one gap open (Gs + Ge). The ungapped
	// alternatives (common prefix/suffix blocks) score far less for this
	// construction.
	full := enc("MKWVTFISLLLLFSSAYSRGVFRR")
	gapped := append(append([]byte{}, full[:10]...), full[11:]...)
	want := p.Matrix.SelfScore(gapped) - p.Gaps.OpenCost()
	if got := Score(p, full, gapped); got != want {
		t.Fatalf("gapped alignment %d, want %d", got, want)
	}
}

func TestScoreLinearMatchesPaperExample(t *testing.T) {
	// The paper's Figure 1 scoring (+1/-1/-2) on DNA, global-style values
	// differ, but the local score of the example sequences is easy to
	// verify by hand: ACTTGTCCG vs ATTGTCAG, best local block.
	m := scoring.DNASimple
	s := alphabet.DNA.MustEncode("ACTTGTCCG")
	u := alphabet.DNA.MustEncode("ATTGTCAG")
	got := ScoreLinear(m, 2, s, u)
	// TTGTC aligns exactly: +5.
	if got < 5 {
		t.Fatalf("linear-gap local score %d, want >= 5", got)
	}
}

func TestScoreSymmetry(t *testing.T) {
	p := params()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		a := randSeq(rng, 1+rng.Intn(80))
		b := randSeq(rng, 1+rng.Intn(80))
		if Score(p, a, b) != Score(p, b, a) {
			t.Fatalf("asymmetric score for |a|=%d |b|=%d", len(a), len(b))
		}
	}
}

func TestScoreMonotoneUnderExtension(t *testing.T) {
	// Appending residues to either sequence can only preserve or improve
	// a local alignment score.
	p := params()
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 60; i++ {
		a := randSeq(rng, 1+rng.Intn(60))
		b := randSeq(rng, 1+rng.Intn(60))
		base := Score(p, a, b)
		ext := append(append([]byte{}, b...), randSeq(rng, 1+rng.Intn(20))...)
		if got := Score(p, a, ext); got < base {
			t.Fatalf("extension decreased score: %d < %d", got, base)
		}
	}
}

func TestScoreWithEnd(t *testing.T) {
	p := params()
	q := enc("MKWVTFISLL")
	score, qe, se := ScoreWithEnd(p, q, q)
	if score != p.Matrix.SelfScore(q) {
		t.Fatalf("score %d", score)
	}
	if qe != len(q) || se != len(q) {
		t.Fatalf("end (%d,%d), want (%d,%d)", qe, se, len(q), len(q))
	}
}

func TestBandedConvergesToFull(t *testing.T) {
	p := params()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 50; i++ {
		a := randSeq(rng, 10+rng.Intn(60))
		b := randSeq(rng, 10+rng.Intn(60))
		full := Score(p, a, b)
		wide := ScoreBanded(p, a, b, len(a)+len(b))
		if wide != full {
			t.Fatalf("wide band %d != full %d", wide, full)
		}
		// Narrow bands restrict the search space: never above full.
		for _, band := range []int{1, 3, 8} {
			if got := ScoreBanded(p, a, b, band); got > full {
				t.Fatalf("band %d score %d exceeds full %d", band, got, full)
			}
		}
	}
}

func TestBandedMonotoneInBand(t *testing.T) {
	p := params()
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 30; i++ {
		a := randSeq(rng, 20+rng.Intn(40))
		b := randSeq(rng, 20+rng.Intn(40))
		prev := 0
		for band := 1; band < 40; band += 4 {
			got := ScoreBanded(p, a, b, band)
			if got < prev {
				t.Fatalf("banded score decreased with wider band: %d -> %d", prev, got)
			}
			prev = got
		}
	}
}

func TestAlignTracebackConsistency(t *testing.T) {
	p := params()
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 80; i++ {
		a := randSeq(rng, 1+rng.Intn(60))
		b := randSeq(rng, 1+rng.Intn(60))
		al := Align(p, a, b)
		if want := Score(p, a, b); al.Score != want {
			t.Fatalf("align score %d != %d", al.Score, want)
		}
		if al.Score == 0 {
			continue
		}
		// Recompute the score from the alignment rows.
		got := 0
		gapOpen := true
		qi, si := al.QueryStart, al.SubjStart
		for col := range al.QueryRow {
			qc, sc := al.QueryRow[col], al.SubjRow[col]
			switch {
			case qc == GapCode:
				if gapOpen {
					got -= p.Gaps.Start
				}
				got -= p.Gaps.Extend
				gapOpen = false
				si++
			case sc == GapCode:
				if gapOpen {
					got -= p.Gaps.Start
				}
				got -= p.Gaps.Extend
				gapOpen = false
				qi++
			default:
				got += p.Matrix.Score(qc, sc)
				gapOpen = true
				qi++
				si++
			}
		}
		if got != al.Score {
			t.Fatalf("traceback rows rescore to %d, reported %d", got, al.Score)
		}
		if qi != al.QueryEnd || si != al.SubjEnd {
			t.Fatalf("coordinates inconsistent: (%d,%d) vs (%d,%d)", qi, si, al.QueryEnd, al.SubjEnd)
		}
	}
}

func TestAlignGapRunsStayAffine(t *testing.T) {
	// The traceback must not rescore a gap run as repeated opens: check a
	// construction with a known 3-residue gap.
	p := params()
	a := enc("MKWVTFISLLAAAFSSAYSRGVFRR")
	b := append(append([]byte{}, a[:10]...), a[13:]...) // delete AAA
	al := Align(p, a, b)
	want := Score(p, a, b)
	if al.Score != want {
		t.Fatalf("align %d want %d", al.Score, want)
	}
	if al.Gaps != 0 && al.CIGAR() == "" {
		t.Fatal("missing CIGAR")
	}
}

func TestAlignmentRendering(t *testing.T) {
	p := params()
	a := enc("MKWVTFISLL")
	al := Align(p, a, a)
	if al.Identity() != 1.0 {
		t.Fatalf("identity %v", al.Identity())
	}
	if al.CIGAR() != "10M" {
		t.Fatalf("CIGAR %q", al.CIGAR())
	}
	text := al.Format(alphabet.Protein)
	if text == "" {
		t.Fatal("empty rendering")
	}
	empty := &Alignment{}
	if empty.Identity() != 0 || empty.Length() != 0 {
		t.Fatal("empty alignment accessors")
	}
}

func TestEnginesAgree(t *testing.T) {
	p := params()
	db := synth.RandomSet(alphabet.Protein, 20, 1, 120, 9)
	q := randSeq(rand.New(rand.NewSource(10)), 70)
	scalar := NewScalar(p).Scores(q, db)
	profiled := NewProfiled(p).Scores(q, db)
	for i := range scalar {
		if scalar[i] != profiled[i] {
			t.Fatalf("engine disagreement at %d: %d vs %d", i, scalar[i], profiled[i])
		}
	}
	if NewScalar(p).Name() == "" || NewProfiled(p).Name() == "" {
		t.Fatal("engines must be named")
	}
}

func TestCellsHelpers(t *testing.T) {
	if Cells(10, 20) != 200 {
		t.Fatal("Cells")
	}
	db := synth.RandomSet(alphabet.Protein, 3, 10, 10, 11)
	if SetCells(5, db) != 150 {
		t.Fatalf("SetCells %d", SetCells(5, db))
	}
}

// Property: local alignment scores are non-negative, bounded by the
// shorter self-score plus slack... the simplest sound upper bound is the
// max matrix entry times the shorter length.
func TestQuickScoreBounds(t *testing.T) {
	p := params()
	maxEntry := p.Matrix.Max()
	f := func(ar, br []byte) bool {
		a := clamp(ar, 90)
		b := clamp(br, 90)
		s := Score(p, a, b)
		if s < 0 {
			return false
		}
		short := len(a)
		if len(b) < short {
			short = len(b)
		}
		return s <= maxEntry*short
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: concatenating database sequences never lowers the local
// score against a fixed query (a local alignment of a part is a local
// alignment of the whole).
func TestQuickConcatenationMonotone(t *testing.T) {
	p := params()
	f := func(qr, b1, b2 []byte) bool {
		q := clamp(qr, 60)
		x := clamp(b1, 60)
		y := clamp(b2, 60)
		if len(q) == 0 {
			return true
		}
		xy := append(append([]byte{}, x...), y...)
		s := Score(p, q, xy)
		return s >= Score(p, q, x) && s >= Score(p, q, y)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func clamp(b []byte, maxLen int) []byte {
	if len(b) > maxLen {
		b = b[:maxLen]
	}
	out := make([]byte, len(b))
	for i, v := range b {
		out[i] = v % byte(alphabet.Protein.Len())
	}
	return out
}
