// Package stats provides the small numeric helpers shared by the
// benchmark harness and reports.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation (0 for n < 2).
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// Min returns the minimum (0 for empty input).
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum (0 for empty input).
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Percentile returns the p'th percentile (0 < p <= 100) of xs by
// nearest-rank on a sorted copy (0 for empty input). The load harness
// reports p50/p99 latency with it.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// GCUPS converts a cell count and seconds to billion cell updates/second.
func GCUPS(cells int64, seconds float64) float64 {
	if seconds <= 0 {
		return 0
	}
	return float64(cells) / seconds / 1e9
}

// PctDelta returns the signed percentage difference of got vs want.
func PctDelta(got, want float64) float64 {
	if want == 0 {
		return 0
	}
	return (got - want) / want * 100
}

// FmtSeconds renders seconds with sensible precision.
func FmtSeconds(s float64) string {
	switch {
	case s >= 1000:
		return fmt.Sprintf("%.1f", s)
	case s >= 10:
		return fmt.Sprintf("%.2f", s)
	default:
		return fmt.Sprintf("%.3f", s)
	}
}
