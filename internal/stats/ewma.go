package stats

import (
	"sync"
	"time"
)

// DefaultEWMAAlpha weights the newest observation in a LatencyEWMA,
// mirroring the worker rate estimator's constant: recent enough to
// track a slowing service, smooth enough not to chase single-sample
// jitter.
const DefaultEWMAAlpha = 0.3

// LatencyEWMA is an exponentially weighted moving average over
// wall-clock durations — the master.RateEstimator shape applied to
// latency. The replica hedging trigger and the gateway's Retry-After
// estimate both read it: one asks "is this search running long?", the
// other "how long until a queue slot frees up?". The zero value is
// ready to use with DefaultEWMAAlpha; it is safe for concurrent
// Observe and Snapshot calls.
type LatencyEWMA struct {
	// Alpha weights the newest observation (0 selects
	// DefaultEWMAAlpha). Set it before the first Observe, if at all.
	Alpha float64

	mu   sync.Mutex
	mean time.Duration
	n    uint64
}

// Observe folds one completed operation's duration into the average.
// Non-positive durations are ignored: a clock that didn't advance
// carries no latency information.
func (l *LatencyEWMA) Observe(d time.Duration) {
	if d <= 0 {
		return
	}
	alpha := l.Alpha
	if alpha <= 0 || alpha > 1 {
		alpha = DefaultEWMAAlpha
	}
	l.mu.Lock()
	if l.n == 0 {
		l.mean = d
	} else {
		l.mean = time.Duration(alpha*float64(d) + (1-alpha)*float64(l.mean))
	}
	l.n++
	l.mu.Unlock()
}

// Snapshot returns the current mean and how many observations produced
// it (0 observations means the mean is meaningless — callers gate on n
// before trusting it).
func (l *LatencyEWMA) Snapshot() (mean time.Duration, n uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.mean, l.n
}
