package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMeanStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if Mean(xs) != 5 {
		t.Fatalf("mean %v", Mean(xs))
	}
	if got := StdDev(xs); math.Abs(got-2.138) > 0.001 {
		t.Fatalf("stddev %v", got)
	}
	if Mean(nil) != 0 || StdDev(nil) != 0 || StdDev([]float64{1}) != 0 {
		t.Fatal("empty-input conventions")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Fatalf("min/max %v %v", Min(xs), Max(xs))
	}
	if Min(nil) != 0 || Max(nil) != 0 {
		t.Fatal("empty min/max")
	}
}

func TestGCUPS(t *testing.T) {
	if GCUPS(5e9, 2.5) != 2 {
		t.Fatal("GCUPS")
	}
	if GCUPS(1, 0) != 0 {
		t.Fatal("zero time")
	}
}

func TestPctDelta(t *testing.T) {
	if PctDelta(110, 100) != 10 {
		t.Fatal("delta up")
	}
	if PctDelta(90, 100) != -10 {
		t.Fatal("delta down")
	}
	if PctDelta(5, 0) != 0 {
		t.Fatal("zero base")
	}
}

func TestFmtSeconds(t *testing.T) {
	cases := map[float64]string{
		12345.6: "12345.6",
		123.456: "123.46",
		1.23456: "1.235",
	}
	for in, want := range cases {
		if got := FmtSeconds(in); got != want {
			t.Fatalf("FmtSeconds(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestQuickMeanBounds(t *testing.T) {
	f := func(raw []float64) bool {
		// Clamp to a range whose sums cannot overflow float64.
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			xs = append(xs, math.Mod(x, 1e12))
		}
		if len(xs) == 0 {
			return true
		}
		m := Mean(xs)
		return m >= Min(xs)-1e-9*math.Abs(Min(xs))-1e-9 && m <= Max(xs)+1e-9*math.Abs(Max(xs))+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
