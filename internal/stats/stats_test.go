package stats

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestMeanStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if Mean(xs) != 5 {
		t.Fatalf("mean %v", Mean(xs))
	}
	if got := StdDev(xs); math.Abs(got-2.138) > 0.001 {
		t.Fatalf("stddev %v", got)
	}
	if Mean(nil) != 0 || StdDev(nil) != 0 || StdDev([]float64{1}) != 0 {
		t.Fatal("empty-input conventions")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Fatalf("min/max %v %v", Min(xs), Max(xs))
	}
	if Min(nil) != 0 || Max(nil) != 0 {
		t.Fatal("empty min/max")
	}
}

func TestGCUPS(t *testing.T) {
	if GCUPS(5e9, 2.5) != 2 {
		t.Fatal("GCUPS")
	}
	if GCUPS(1, 0) != 0 {
		t.Fatal("zero time")
	}
}

func TestPctDelta(t *testing.T) {
	if PctDelta(110, 100) != 10 {
		t.Fatal("delta up")
	}
	if PctDelta(90, 100) != -10 {
		t.Fatal("delta down")
	}
	if PctDelta(5, 0) != 0 {
		t.Fatal("zero base")
	}
}

func TestFmtSeconds(t *testing.T) {
	cases := map[float64]string{
		12345.6: "12345.6",
		123.456: "123.46",
		1.23456: "1.235",
	}
	for in, want := range cases {
		if got := FmtSeconds(in); got != want {
			t.Fatalf("FmtSeconds(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestQuickMeanBounds(t *testing.T) {
	f := func(raw []float64) bool {
		// Clamp to a range whose sums cannot overflow float64.
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			xs = append(xs, math.Mod(x, 1e12))
		}
		if len(xs) == 0 {
			return true
		}
		m := Mean(xs)
		return m >= Min(xs)-1e-9*math.Abs(Min(xs))-1e-9 && m <= Max(xs)+1e-9*math.Abs(Max(xs))+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {1, 1}, {20, 1}, {50, 3}, {99, 5}, {100, 5},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); got != c.want {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("Percentile(empty) = %v, want 0", got)
	}
	// The input must not be reordered: callers keep appending to it.
	if xs[0] != 5 || xs[4] != 3 {
		t.Errorf("Percentile mutated its input: %v", xs)
	}
}

func TestLatencyEWMA(t *testing.T) {
	var l LatencyEWMA
	if mean, n := l.Snapshot(); mean != 0 || n != 0 {
		t.Fatalf("zero value: mean %v n %d", mean, n)
	}
	l.Observe(0)  // ignored: carries no information
	l.Observe(-1) // ignored
	if _, n := l.Snapshot(); n != 0 {
		t.Fatalf("non-positive observations counted: n %d", n)
	}
	l.Observe(100 * time.Millisecond)
	if mean, n := l.Snapshot(); n != 1 || mean != 100*time.Millisecond {
		t.Fatalf("first observation: mean %v n %d", mean, n)
	}
	// The EWMA moves toward new observations but never past them.
	l.Observe(200 * time.Millisecond)
	mean, n := l.Snapshot()
	if n != 2 || mean <= 100*time.Millisecond || mean >= 200*time.Millisecond {
		t.Fatalf("after second observation: mean %v n %d", mean, n)
	}
	// Repeated identical observations converge to that value.
	for i := 0; i < 50; i++ {
		l.Observe(time.Second)
	}
	mean, _ = l.Snapshot()
	if d := mean - time.Second; d < -time.Millisecond || d > time.Millisecond {
		t.Fatalf("did not converge: mean %v", mean)
	}
}
