// Package gpusim is a SIMT GPU simulator: the substitute for the CUDA
// devices the paper runs on (DESIGN.md §2). It models the throughput-
// relevant structure of a Fermi-class device — streaming multiprocessors,
// thread blocks, 32-lane warps executing in lock step (so a warp pays for
// its longest lane), PCIe transfers and kernel launch latency — while
// executing kernel work functionally in Go so results are real.
//
// The simulator is deliberately a throughput model, not a cycle-accurate
// pipeline model: a warp's cost is supplied by the kernel as a cycle
// count, SMs execute their resident blocks' warps back to back, and the
// kernel time is the slowest SM's cycle count divided by the clock. This
// is the level of detail the paper's scheduling experiments observe (per
// task processing times), and it is what calibration against the paper's
// single-GPU numbers pins down.
package gpusim

import (
	"fmt"
	"sort"
)

// DeviceConfig describes a simulated device.
type DeviceConfig struct {
	Name string
	// SMs is the number of streaming multiprocessors.
	SMs int
	// WarpSize is the SIMT width (32 for every CUDA device).
	WarpSize int
	// MaxResidentBlocks bounds how many blocks an SM can hold at once; it
	// only affects scheduling granularity in this throughput model.
	MaxResidentBlocks int
	// ClockHz is the SM clock rate.
	ClockHz float64
	// MemBytes is the device memory capacity.
	MemBytes int64
	// PCIeBytesPerSec is the effective host-device copy bandwidth.
	PCIeBytesPerSec float64
	// LaunchOverheadSec is charged once per kernel launch.
	LaunchOverheadSec float64
}

// TeslaC2050 returns the configuration of the paper's Nvidia Tesla C2050
// (Fermi GF100: 14 SMs at 1.15 GHz, 3 GB GDDR5, PCIe 2.0 x16).
func TeslaC2050() DeviceConfig {
	return DeviceConfig{
		Name:              "Tesla C2050 (simulated)",
		SMs:               14,
		WarpSize:          32,
		MaxResidentBlocks: 8,
		ClockHz:           1.15e9,
		MemBytes:          3 << 30,
		PCIeBytesPerSec:   5.5e9,
		LaunchOverheadSec: 10e-6,
	}
}

// TeslaK20 returns a Kepler-class device (13 SMX at 0.71 GHz but with
// far wider SMs; modeled here as higher per-SM throughput via the
// kernel's cycles-per-cell divisor staying warp-relative, 5 GB, PCIe 3).
// It powers the "what if SWDUAL ran on the next GPU generation"
// ablation.
func TeslaK20() DeviceConfig {
	return DeviceConfig{
		Name:              "Tesla K20 (simulated)",
		SMs:               13 * 4, // 4 warp schedulers per SMX: model as 52 warp-issue units
		WarpSize:          32,
		MaxResidentBlocks: 16,
		ClockHz:           0.71e9,
		MemBytes:          5 << 30,
		PCIeBytesPerSec:   11e9,
		LaunchOverheadSec: 8e-6,
	}
}

// Presets maps device preset names for harnesses and CLIs.
var Presets = map[string]func() DeviceConfig{
	"c2050": TeslaC2050,
	"k20":   TeslaK20,
}

// Validate reports configuration errors.
func (c DeviceConfig) Validate() error {
	if c.SMs <= 0 || c.WarpSize <= 0 || c.ClockHz <= 0 {
		return fmt.Errorf("gpusim: invalid device config %+v", c)
	}
	if c.PCIeBytesPerSec <= 0 {
		return fmt.Errorf("gpusim: device %s has no PCIe bandwidth", c.Name)
	}
	return nil
}

// Warp is one unit of lock-step work: Run performs the functional
// computation, Cycles returns its virtual cost on an SM.
type Warp interface {
	Run()
	Cycles() uint64
}

// Block is a group of warps co-resident on one SM.
type Block struct {
	Warps []Warp
}

func (b *Block) cycles() uint64 {
	var c uint64
	for _, w := range b.Warps {
		c += w.Cycles()
	}
	return c
}

// LaunchStats describes one simulated kernel launch.
type LaunchStats struct {
	Blocks       int
	Warps        int
	SMCycles     []uint64
	KernelSec    float64 // max SM cycles / clock
	TransferSec  float64
	LaunchSec    float64
	TotalSec     float64
	Utilization  float64 // mean SM busy cycles / max SM cycles
	BytesMoved   int64
	CyclesTotal  uint64
	CyclesSlowSM uint64
}

// Device is a simulated GPU. It is not safe for concurrent launches; the
// master-slave runtime gives each GPU worker its own Device, matching the
// one-context-per-worker structure of the paper's implementation.
type Device struct {
	cfg       DeviceConfig
	allocated int64
	busySec   float64
	launches  int
}

// New builds a Device; it panics on invalid configurations, which are
// programmer errors.
func New(cfg DeviceConfig) *Device {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Device{cfg: cfg}
}

// Config returns the device configuration.
func (d *Device) Config() DeviceConfig { return d.cfg }

// BusySeconds returns accumulated simulated busy time.
func (d *Device) BusySeconds() float64 { return d.busySec }

// Launches returns the number of kernel launches so far.
func (d *Device) Launches() int { return d.launches }

// Alloc reserves device memory, failing when capacity is exceeded. The
// CUDASW++-style engine uses this to decide database chunking.
func (d *Device) Alloc(bytes int64) error {
	if bytes < 0 {
		return fmt.Errorf("gpusim: negative allocation %d", bytes)
	}
	if d.allocated+bytes > d.cfg.MemBytes {
		return fmt.Errorf("gpusim: out of device memory: %d + %d > %d", d.allocated, bytes, d.cfg.MemBytes)
	}
	d.allocated += bytes
	return nil
}

// Free releases device memory.
func (d *Device) Free(bytes int64) {
	d.allocated -= bytes
	if d.allocated < 0 {
		d.allocated = 0
	}
}

// Allocated returns the current allocation level.
func (d *Device) Allocated() int64 { return d.allocated }

// Launch executes the blocks functionally and charges virtual time:
// transfers for the given byte volume, the launch overhead, and the
// kernel itself. Blocks are dispatched to the least-loaded SM in arrival
// order, which models the hardware work distributor; a deliberately
// imbalanced grid therefore shows up as low Utilization.
func (d *Device) Launch(blocks []*Block, transferBytes int64) LaunchStats {
	st := LaunchStats{
		Blocks:      len(blocks),
		SMCycles:    make([]uint64, d.cfg.SMs),
		BytesMoved:  transferBytes,
		TransferSec: float64(transferBytes) / d.cfg.PCIeBytesPerSec,
		LaunchSec:   d.cfg.LaunchOverheadSec,
	}
	// Least-loaded SM dispatch via a small heap-free scan: SM counts are
	// tiny (14-16), a linear scan is faster than a heap.
	for _, b := range blocks {
		for _, w := range b.Warps {
			w.Run()
		}
		c := b.cycles()
		smi := 0
		for i := 1; i < len(st.SMCycles); i++ {
			if st.SMCycles[i] < st.SMCycles[smi] {
				smi = i
			}
		}
		st.SMCycles[smi] += c
		st.Warps += len(b.Warps)
		st.CyclesTotal += c
	}
	for _, c := range st.SMCycles {
		if c > st.CyclesSlowSM {
			st.CyclesSlowSM = c
		}
	}
	st.KernelSec = float64(st.CyclesSlowSM) / d.cfg.ClockHz
	if st.CyclesSlowSM > 0 {
		st.Utilization = float64(st.CyclesTotal) / (float64(d.cfg.SMs) * float64(st.CyclesSlowSM))
	}
	st.TotalSec = st.KernelSec + st.TransferSec + st.LaunchSec
	d.busySec += st.TotalSec
	d.launches++
	return st
}

// PredictKernelSec estimates the kernel time for a set of per-block cycle
// costs without executing anything — the pure timing-model entry point
// used by the platform cost model at paper scale.
func (d *Device) PredictKernelSec(blockCycles []uint64) float64 {
	sm := make([]uint64, d.cfg.SMs)
	// The work distributor issues blocks in order; sorting descending
	// here would be LPT, which the hardware does not do. Keep arrival
	// order for fidelity with Launch.
	for _, c := range blockCycles {
		smi := 0
		for i := 1; i < len(sm); i++ {
			if sm[i] < sm[smi] {
				smi = i
			}
		}
		sm[smi] += c
	}
	var max uint64
	for _, c := range sm {
		if c > max {
			max = c
		}
	}
	return float64(max) / d.cfg.ClockHz
}

// SortBlocksByCycles orders blocks by decreasing cost (an LPT layout a
// kernel author can opt into before launching to improve balance).
func SortBlocksByCycles(blocks []*Block) {
	sort.SliceStable(blocks, func(i, j int) bool {
		return blocks[i].cycles() > blocks[j].cycles()
	})
}
