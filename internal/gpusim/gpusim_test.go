package gpusim

import (
	"math"
	"testing"
	"testing/quick"
)

type testWarp struct {
	cycles uint64
	ran    *int
}

func (w *testWarp) Run() {
	if w.ran != nil {
		*w.ran++
	}
}
func (w *testWarp) Cycles() uint64 { return w.cycles }

func TestTeslaC2050Preset(t *testing.T) {
	cfg := TeslaC2050()
	if cfg.SMs != 14 || cfg.WarpSize != 32 {
		t.Fatalf("C2050 geometry %d SMs / warp %d", cfg.SMs, cfg.WarpSize)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidate(t *testing.T) {
	bad := DeviceConfig{SMs: 0, WarpSize: 32, ClockHz: 1}
	if err := bad.Validate(); err == nil {
		t.Fatal("zero SMs must fail")
	}
	bad = TeslaC2050()
	bad.PCIeBytesPerSec = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero PCIe bandwidth must fail")
	}
}

func TestNewPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(DeviceConfig{})
}

func TestLaunchRunsEveryWarp(t *testing.T) {
	dev := New(TeslaC2050())
	ran := 0
	var blocks []*Block
	for i := 0; i < 50; i++ {
		blocks = append(blocks, &Block{Warps: []Warp{&testWarp{cycles: 100, ran: &ran}, &testWarp{cycles: 50, ran: &ran}}})
	}
	st := dev.Launch(blocks, 1000)
	if ran != 100 {
		t.Fatalf("%d warps ran, want 100", ran)
	}
	if st.Blocks != 50 || st.Warps != 100 {
		t.Fatalf("stats %+v", st)
	}
	if st.CyclesTotal != 50*150 {
		t.Fatalf("total cycles %d", st.CyclesTotal)
	}
	if st.TotalSec <= 0 || st.KernelSec <= 0 || st.TransferSec <= 0 {
		t.Fatalf("times %+v", st)
	}
	if dev.Launches() != 1 {
		t.Fatal("launch count")
	}
	if dev.BusySeconds() != st.TotalSec {
		t.Fatal("busy accounting")
	}
}

func TestBalancedGridHasHighUtilization(t *testing.T) {
	dev := New(TeslaC2050())
	var blocks []*Block
	for i := 0; i < 14*8; i++ { // many equal blocks
		blocks = append(blocks, &Block{Warps: []Warp{&testWarp{cycles: 1000}}})
	}
	st := dev.Launch(blocks, 0)
	if st.Utilization < 0.99 {
		t.Fatalf("balanced utilization %.3f, want ~1", st.Utilization)
	}
}

func TestImbalancedGridShowsLowUtilization(t *testing.T) {
	dev := New(TeslaC2050())
	blocks := []*Block{{Warps: []Warp{&testWarp{cycles: 1000000}}}}
	for i := 0; i < 13; i++ {
		blocks = append(blocks, &Block{Warps: []Warp{&testWarp{cycles: 10}}})
	}
	st := dev.Launch(blocks, 0)
	if st.Utilization > 0.2 {
		t.Fatalf("one-hot grid utilization %.3f, want low", st.Utilization)
	}
	if st.CyclesSlowSM != 1000000 {
		t.Fatalf("slow SM %d", st.CyclesSlowSM)
	}
}

func TestKernelTimeMatchesClock(t *testing.T) {
	cfg := TeslaC2050()
	dev := New(cfg)
	blocks := []*Block{{Warps: []Warp{&testWarp{cycles: uint64(cfg.ClockHz)}}}}
	st := dev.Launch(blocks, 0)
	if math.Abs(st.KernelSec-1.0) > 1e-9 {
		t.Fatalf("1 clock-second of cycles took %g s", st.KernelSec)
	}
}

func TestTransferModel(t *testing.T) {
	cfg := TeslaC2050()
	dev := New(cfg)
	st := dev.Launch(nil, int64(cfg.PCIeBytesPerSec))
	if math.Abs(st.TransferSec-1.0) > 1e-9 {
		t.Fatalf("1 bandwidth-second moved in %g s", st.TransferSec)
	}
}

func TestAllocFree(t *testing.T) {
	dev := New(TeslaC2050())
	if err := dev.Alloc(dev.Config().MemBytes + 1); err == nil {
		t.Fatal("over-allocation must fail")
	}
	if err := dev.Alloc(1 << 20); err != nil {
		t.Fatal(err)
	}
	if dev.Allocated() != 1<<20 {
		t.Fatalf("allocated %d", dev.Allocated())
	}
	dev.Free(1 << 30) // over-free clamps at zero
	if dev.Allocated() != 0 {
		t.Fatalf("allocated after free %d", dev.Allocated())
	}
	if err := dev.Alloc(-1); err == nil {
		t.Fatal("negative allocation must fail")
	}
}

func TestPredictMatchesLaunch(t *testing.T) {
	// PredictKernelSec must agree exactly with Launch for the same block
	// cycle sequence.
	f := func(seed int64, n uint8) bool {
		cfg := TeslaC2050()
		devA := New(cfg)
		devB := New(cfg)
		count := int(n%60) + 1
		var blocks []*Block
		var cycles []uint64
		x := uint64(seed)
		for i := 0; i < count; i++ {
			x = x*6364136223846793005 + 1442695040888963407
			c := x%100000 + 1
			blocks = append(blocks, &Block{Warps: []Warp{&testWarp{cycles: c}}})
			cycles = append(cycles, c)
		}
		st := devA.Launch(blocks, 0)
		pred := devB.PredictKernelSec(cycles)
		return math.Abs(st.KernelSec-pred) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSortBlocksByCycles(t *testing.T) {
	blocks := []*Block{
		{Warps: []Warp{&testWarp{cycles: 10}}},
		{Warps: []Warp{&testWarp{cycles: 1000}}},
		{Warps: []Warp{&testWarp{cycles: 100}}},
	}
	SortBlocksByCycles(blocks)
	if blocks[0].cycles() != 1000 || blocks[2].cycles() != 10 {
		t.Fatal("not sorted descending")
	}
}

func TestPresets(t *testing.T) {
	for name, f := range Presets {
		cfg := f()
		if err := cfg.Validate(); err != nil {
			t.Fatalf("preset %s: %v", name, err)
		}
	}
	k20 := TeslaK20()
	c2050 := TeslaC2050()
	// The Kepler model's aggregate issue rate must exceed Fermi's.
	if float64(k20.SMs)*k20.ClockHz <= float64(c2050.SMs)*c2050.ClockHz {
		t.Fatal("K20 model is not faster than C2050")
	}
}
