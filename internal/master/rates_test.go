package master

import (
	"math"
	"strings"
	"testing"
	"time"

	"swdual/internal/platform"
	"swdual/internal/sched"
	"swdual/internal/sw"
)

func TestRateEstimatorSeedAndObservation(t *testing.T) {
	e := NewRateEstimator(24.8)
	if got := e.MeasuredRateGCUPS(); got != 24.8 {
		t.Fatalf("seed estimate %.3f, want the advertised 24.8", got)
	}
	if e.ObservedTasks() != 0 {
		t.Fatalf("fresh estimator reports %d observed tasks", e.ObservedTasks())
	}
	// One task at exactly 24.8 GCUPS keeps the estimate fixed.
	e.ObserveTask(24_800_000_000, time.Second)
	if got := e.MeasuredRateGCUPS(); math.Abs(got-24.8) > 1e-9 {
		t.Fatalf("estimate moved to %.6f on an observation equal to the seed", got)
	}
	if e.ObservedTasks() != 1 {
		t.Fatalf("observed tasks %d, want 1", e.ObservedTasks())
	}
	// Degenerate observations carry no signal and must be ignored.
	e.ObserveTask(0, time.Second)
	e.ObserveTask(1000, 0)
	e.ObserveTask(-5, time.Second)
	if e.ObservedTasks() != 1 {
		t.Fatalf("degenerate observations were counted: %d tasks", e.ObservedTasks())
	}
}

// TestRateEstimatorConvergesFromMisadvertisedSeed is the convergence
// guarantee the adaptive scheduler rests on: a worker advertising a rate
// 100× its real throughput must see its estimate reach the measured
// rate within a few dozen tasks.
func TestRateEstimatorConvergesFromMisadvertisedSeed(t *testing.T) {
	const advertised, measured = 100.0, 1.0 // GCUPS; 100× too fast
	e := NewRateEstimator(advertised)
	const maxTasks = 40
	converged := -1
	for i := 1; i <= maxTasks; i++ {
		e.ObserveTask(int64(measured*1e9), time.Second)
		if got := e.MeasuredRateGCUPS(); math.Abs(got-measured) <= 0.05*measured {
			converged = i
			break
		}
	}
	if converged < 0 {
		t.Fatalf("estimate still %.3f after %d tasks at %.1f GCUPS (advertised %.1f)",
			e.MeasuredRateGCUPS(), maxTasks, measured, advertised)
	}
	t.Logf("converged to within 5%% of the measured rate after %d tasks", converged)
}

// TestMisadvertisedWorkerShiftsAssignments closes the loop: the
// estimator feeding RatesOf/BuildInstance must change what the
// dual-approximation policy assigns. A CPU worker advertising 100× its
// real rate first hoards every task; once its observed rate converges,
// BuildInstance sees the corrected PoolRates and the scheduler moves
// work to the honestly-advertised GPU worker.
func TestMisadvertisedWorkerShiftsAssignments(t *testing.T) {
	cal := platform.PaperCalibration()
	const lying = 100.0
	// Engines stay nil: the test never runs a task, it only schedules.
	cpu := NewEngineWorker("cpu-liar", sched.CPU, nil, lying*cal.CPUWorkerGCUPS, 5)
	gpu := NewEngineWorker("gpu-0", sched.GPU, nil, cal.GPUWorkerGCUPS, 5)
	workers := []Worker{cpu, gpu}

	const dbResidues = 1 << 20
	queryLens := make([]int, 24)
	ids := make([]string, len(queryLens))
	for i := range queryLens {
		queryLens[i] = 100 + 10*i
	}
	gpuTasks := func() int {
		in := BuildInstance(dbResidues, queryLens, ids, RatesOf(workers))
		queues, _, err := Assign(PolicyDualApprox, in, workers)
		if err != nil {
			t.Fatal(err)
		}
		return len(queues[1])
	}

	before := gpuTasks()
	// The lying worker's pool looks ~340× faster than the GPU pool, so
	// the scheduler starves the GPU.
	if before > len(queryLens)/4 {
		t.Fatalf("with the advertised lie the GPU already holds %d of %d tasks", before, len(queryLens))
	}

	// Tasks complete at the worker's true rate; the EWMA converges.
	for i := 0; i < 30; i++ {
		cpu.ObserveTask(int64(cal.CPUWorkerGCUPS*1e9), time.Second)
	}
	rates := RatesOf(workers)
	if math.Abs(rates.CPURate-cal.CPUWorkerGCUPS) > 0.05*cal.CPUWorkerGCUPS {
		t.Fatalf("PoolRates still carries the lie: CPU rate %.3f, measured %.3f", rates.CPURate, cal.CPUWorkerGCUPS)
	}

	after := gpuTasks()
	if after <= before {
		t.Fatalf("assignments did not shift: GPU held %d tasks before convergence, %d after", before, after)
	}
	t.Logf("GPU tasks %d -> %d of %d after the CPU rate converged", before, after, len(queryLens))
}

// TestBuildWorkersRatesComeFromCalibration pins both worker-construction
// paths to platform.PaperCalibration: the GPU rate is no longer a
// hardcoded constant in BuildWorkers, and BuildPoolWorkers builds the
// identical hybrid set for the equivalent spec.
func TestBuildWorkersRatesComeFromCalibration(t *testing.T) {
	cal := platform.PaperCalibration()
	if cal.GPUWorkerGCUPS != 24.8 {
		t.Fatalf("GPUWorkerGCUPS %.3f, want the Table II 24.8", cal.GPUWorkerGCUPS)
	}
	params := sw.DefaultParams()
	ws := BuildWorkers(params, 2, 2, 5)
	specWs := BuildPoolWorkers(params, PoolSpec{CPU: 2, GPU: 2}, 5)
	if len(ws) != 4 || len(specWs) != 4 {
		t.Fatalf("worker counts %d / %d, want 4", len(ws), len(specWs))
	}
	for i := range ws {
		want := cal.CPUWorkerGCUPS
		if ws[i].Kind() == sched.GPU {
			want = cal.GPUWorkerGCUPS
		}
		if got := ws[i].RateGCUPS(); got != want {
			t.Errorf("BuildWorkers %s advertises %.3f, want calibration %.3f", ws[i].Name(), got, want)
		}
		if ws[i].Name() != specWs[i].Name() || ws[i].Kind() != specWs[i].Kind() || ws[i].RateGCUPS() != specWs[i].RateGCUPS() {
			t.Errorf("worker %d: BuildWorkers (%s %v %.3f) != BuildPoolWorkers (%s %v %.3f)",
				i, ws[i].Name(), ws[i].Kind(), ws[i].RateGCUPS(), specWs[i].Name(), specWs[i].Kind(), specWs[i].RateGCUPS())
		}
	}
}

func TestBuildPoolWorkersComposition(t *testing.T) {
	spec := PoolSpec{CPU: 1, Striped: 2, Fine: 1, GPU: 1}
	ws := BuildPoolWorkers(sw.DefaultParams(), spec, 5)
	if len(ws) != spec.Total() {
		t.Fatalf("%d workers for spec %v (total %d)", len(ws), spec, spec.Total())
	}
	wantNames := []string{"gpu-0", "cpu-0", "striped-0", "striped-1", "fine-0"}
	for i, w := range ws {
		if w.Name() != wantNames[i] {
			t.Errorf("worker %d named %q, want %q", i, w.Name(), wantNames[i])
		}
	}
	r := RatesOf(ws)
	if r.CPUs != spec.CPUWorkers() || r.GPUs != spec.GPUWorkers() {
		t.Fatalf("RatesOf pools %d CPU + %d GPU, want %d + %d", r.CPUs, r.GPUs, spec.CPUWorkers(), spec.GPUWorkers())
	}
}

func TestParsePoolSpec(t *testing.T) {
	valid := []struct {
		in   string
		want PoolSpec
	}{
		{"", PoolSpec{}},
		{"cpu=4,striped=2,gpu=1", PoolSpec{CPU: 4, Striped: 2, GPU: 1}},
		{"fine=1", PoolSpec{Fine: 1}},
		{" cpu=1 , gpu=2 ", PoolSpec{CPU: 1, GPU: 2}},
		{"cpu=1,cpu=2", PoolSpec{CPU: 3}}, // repeated backends accumulate
		{"cpu=0,gpu=1", PoolSpec{GPU: 1}},
	}
	for _, tc := range valid {
		got, err := ParsePoolSpec(tc.in)
		if err != nil {
			t.Errorf("ParsePoolSpec(%q): unexpected error %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("ParsePoolSpec(%q) = %+v, want %+v", tc.in, got, tc.want)
		}
	}

	malformed := []string{
		"cpu",          // no =
		"cpu=",         // empty count
		"=1",           // empty backend
		"cpu=x",        // non-numeric count
		"cpu=-1",       // negative count
		"tpu=1",        // unknown backend
		"cpu=0",        // no workers at all
		"cpu=1,,gpu=1", // empty entry
		"cpu=1;gpu=1",  // wrong separator
	}
	for _, in := range malformed {
		if _, err := ParsePoolSpec(in); err == nil {
			t.Errorf("ParsePoolSpec(%q) accepted malformed input", in)
		}
	}

	// The unknown-backend error must teach the valid grammar.
	_, err := ParsePoolSpec("tpu=1")
	for _, backend := range poolSpecBackends {
		if !strings.Contains(err.Error(), backend) {
			t.Errorf("error %q does not list valid backend %q", err, backend)
		}
	}
}

func TestPoolSpecString(t *testing.T) {
	for _, tc := range []struct {
		spec PoolSpec
		want string
	}{
		{PoolSpec{}, ""},
		{PoolSpec{CPU: 2, GPU: 1}, "cpu=2,gpu=1"},
		{PoolSpec{CPU: 1, Striped: 2, Fine: 3, GPU: 4}, "cpu=1,striped=2,fine=3,gpu=4"},
	} {
		if got := tc.spec.String(); got != tc.want {
			t.Errorf("String(%+v) = %q, want %q", tc.spec, got, tc.want)
		}
		// String output must parse back to the same spec.
		if tc.spec.Total() > 0 {
			back, err := ParsePoolSpec(tc.spec.String())
			if err != nil || back != tc.spec {
				t.Errorf("round trip of %+v failed: %+v, %v", tc.spec, back, err)
			}
		}
	}
}

func TestParsePolicyErrorsEnumerateValidValues(t *testing.T) {
	// Valid names resolve.
	for name, want := range map[string]Policy{
		"":                PolicyDualApprox,
		"dual-approx":     PolicyDualApprox,
		"dual-approx-dp":  PolicyDualApproxDP,
		"self-scheduling": PolicySelfScheduling,
		"round-robin":     PolicyRoundRobin,
	} {
		got, err := ParsePolicy(name)
		if err != nil || got != want {
			t.Errorf("ParsePolicy(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	// Malformed names fail with an error naming every valid policy.
	for _, name := range []string{"dual", "DUAL-APPROX", "self_scheduling", "greedy", "round robin"} {
		_, err := ParsePolicy(name)
		if err == nil {
			t.Errorf("ParsePolicy(%q) accepted malformed input", name)
			continue
		}
		for _, valid := range []string{"dual-approx", "dual-approx-dp", "self-scheduling", "round-robin"} {
			if !strings.Contains(err.Error(), valid) {
				t.Errorf("ParsePolicy(%q) error %q does not list valid policy %q", name, err, valid)
			}
		}
	}
}
