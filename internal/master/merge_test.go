package master

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// TestMergeTopKMatchesGlobalSort: merging per-shard TopHits lists must
// equal running TopHits over the concatenated global score list — the
// property the sharded engine's byte-identical guarantee rests on.
func TestMergeTopKMatchesGlobalSort(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 200; iter++ {
		shards := 1 + rng.Intn(6)
		k := 1 + rng.Intn(8)
		var lists [][]Hit
		var offsets []int
		var global []Hit
		at := 0
		for s := 0; s < shards; s++ {
			n := rng.Intn(10)
			var l []Hit
			for i := 0; i < n; i++ {
				h := Hit{SeqIndex: i, Score: rng.Intn(5)} // few distinct scores force ties
				l = append(l, h)
				global = append(global, Hit{SeqIndex: at + i, Score: h.Score})
			}
			// Per-shard lists arrive in TopHits order, capped at k.
			sort.SliceStable(l, func(a, b int) bool { return HitBefore(l[a], l[b]) })
			if len(l) > k {
				l = l[:k]
			}
			lists = append(lists, l)
			offsets = append(offsets, at)
			at += n
		}
		want := make([]Hit, len(global))
		copy(want, global)
		sort.SliceStable(want, func(a, b int) bool { return HitBefore(want[a], want[b]) })
		if len(want) > k {
			want = want[:k]
		}
		got := MergeTopK(lists, offsets, k)
		if len(got) == 0 && len(want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("iter %d (shards=%d k=%d):\n got %v\nwant %v", iter, shards, k, got, want)
		}
	}
}

func TestMergeTopKEdgeCases(t *testing.T) {
	if got := MergeTopK(nil, nil, 5); len(got) != 0 {
		t.Fatalf("merge of no lists returned %v", got)
	}
	if got := MergeTopK([][]Hit{nil, {}}, []int{0, 3}, 5); len(got) != 0 {
		t.Fatalf("merge of empty lists returned %v", got)
	}
	// Ties across shards break on the global (offset-lifted) index.
	lists := [][]Hit{
		{{SeqIndex: 0, Score: 7}},
		{{SeqIndex: 0, Score: 7}},
	}
	got := MergeTopK(lists, []int{4, 1}, 2)
	if len(got) != 2 || got[0].SeqIndex != 1 || got[1].SeqIndex != 4 {
		t.Fatalf("tie broke wrong: %v", got)
	}
	// Input lists must not be mutated by the index lift.
	if lists[0][0].SeqIndex != 0 || lists[1][0].SeqIndex != 0 {
		t.Fatalf("merge mutated its inputs: %v", lists)
	}
	// k larger than the total just returns everything.
	if got := MergeTopK(lists, []int{4, 1}, 99); len(got) != 2 {
		t.Fatalf("oversized k returned %d hits", len(got))
	}
}
