package master

import (
	"errors"
	"fmt"
	"sync"

	"swdual/internal/scoring"
	"swdual/internal/seq"
)

// Pool is a long-lived set of worker goroutines, one per registered
// Worker, each owning its engine exclusively. Tasks are handed to a
// specific worker (static policies) or to a shared queue any idle worker
// pulls from (self-scheduling). A Pool outlives individual requests: the
// engine layer keeps one Pool per loaded database and routes many
// concurrent searches through it.
//
// All task channels are unbuffered: a Submit either hands the task to a
// live worker goroutine (which always calls Done) or fails with
// ErrPoolClosed — so no task can be accepted and then dropped, and Close
// cannot leak goroutines or strand callers.
type Pool struct {
	workers []Worker
	own     []chan PoolTask
	shared  chan PoolTask
	quit    chan struct{}
	sem     chan struct{}
	wg      sync.WaitGroup
	once    sync.Once
}

// PoolTask is one unit of work routed through a Pool.
type PoolTask struct {
	// QueryIndex is echoed into the result and passed back to Done; it is
	// the caller's index (e.g. position within a request).
	QueryIndex int
	Query      *seq.Sequence
	DB         *seq.Set
	// Profiles, if non-nil, is the query's shared profile set: a worker
	// whose engine understands profiles (ProfiledWorker) reuses it
	// instead of rebuilding its profiles per task. Purely a cache —
	// results are identical with or without it.
	Profiles *scoring.QueryProfiles
	// Canceled, if non-nil, is consulted right before compute; a true
	// return skips the alignment and reports ran=false.
	Canceled func() bool
	// Done receives the result. ran is false when the task was skipped by
	// Canceled. Done is called exactly once for every accepted task.
	Done func(res QueryResult, ran bool)
}

// ErrPoolClosed is returned by Submit after Close.
var ErrPoolClosed = errors.New("master: pool is closed")

// PoolConfig tunes a Pool.
type PoolConfig struct {
	// Parallelism bounds concurrently computing workers (default: no
	// bound beyond the worker count).
	Parallelism int
}

// NewPool starts one goroutine per worker.
func NewPool(workers []Worker, cfg PoolConfig) (*Pool, error) {
	if len(workers) == 0 {
		return nil, fmt.Errorf("master: pool needs at least one worker")
	}
	p := &Pool{
		workers: workers,
		own:     make([]chan PoolTask, len(workers)),
		shared:  make(chan PoolTask),
		quit:    make(chan struct{}),
	}
	if cfg.Parallelism > 0 {
		p.sem = make(chan struct{}, cfg.Parallelism)
	}
	for i := range workers {
		p.own[i] = make(chan PoolTask)
		p.wg.Add(1)
		go p.serve(workers[i], p.own[i])
	}
	return p, nil
}

// Workers returns the registered workers (read-only).
func (p *Pool) Workers() []Worker { return p.workers }

// Size returns the number of worker goroutines.
func (p *Pool) Size() int { return len(p.workers) }

// Rates summarizes the pool the way the scheduling policies see it: a
// live snapshot of each worker's measured throughput (the advertised
// rate until the worker has completed tasks). Callers scheduling a new
// wave take this snapshot at wave start, so every wave is planned with
// the freshest observed rates.
func (p *Pool) Rates() PoolRates { return RatesOf(p.workers) }

func (p *Pool) serve(w Worker, own chan PoolTask) {
	defer p.wg.Done()
	for {
		select {
		case <-p.quit:
			return
		case t := <-own:
			p.run(w, t)
		case t := <-p.shared:
			p.run(w, t)
		}
	}
}

func (p *Pool) run(w Worker, t PoolTask) {
	if t.Canceled != nil && t.Canceled() {
		t.Done(QueryResult{QueryIndex: t.QueryIndex, Worker: w.Name(), WorkerKind: w.Kind()}, false)
		return
	}
	if p.sem != nil {
		p.sem <- struct{}{}
		defer func() { <-p.sem }()
	}
	var res QueryResult
	if pw, ok := w.(ProfiledWorker); ok && t.Profiles != nil {
		res = pw.RunProfiled(t.QueryIndex, t.Query, t.Profiles, t.DB)
	} else {
		res = w.Run(t.QueryIndex, t.Query, t.DB)
	}
	// The observe half of the observe→estimate→schedule loop: every
	// completed task refines the worker's rate before the next wave is
	// planned. Simulated-device workers observe modeled device time.
	w.ObserveTask(res.Cells, res.ObservedDuration())
	t.Done(res, true)
}

// Submit hands a task to worker wi, blocking until the worker accepts it.
// Tasks submitted to one worker run in submission order.
func (p *Pool) Submit(wi int, t PoolTask) error {
	select {
	case p.own[wi] <- t:
		return nil
	case <-p.quit:
		return ErrPoolClosed
	}
}

// SubmitShared offers a task to whichever worker goes idle first — the
// self-scheduling baseline's dynamic allocation.
func (p *Pool) SubmitShared(t PoolTask) error {
	select {
	case p.shared <- t:
		return nil
	case <-p.quit:
		return ErrPoolClosed
	}
}

// Close shuts the pool down and waits for every worker goroutine to
// exit. It is idempotent and safe to call concurrently; tasks accepted
// before Close still run to completion and report through Done.
func (p *Pool) Close() error {
	p.once.Do(func() { close(p.quit) })
	p.wg.Wait()
	return nil
}
