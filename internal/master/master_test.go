package master

import (
	"testing"
	"time"

	"swdual/internal/alphabet"
	"swdual/internal/cudasw"
	"swdual/internal/gpusim"
	"swdual/internal/sched"
	"swdual/internal/seq"
	"swdual/internal/sw"
	"swdual/internal/swvector"
	"swdual/internal/synth"
)

func testWorkers(topK int) []Worker {
	params := sw.DefaultParams()
	return []Worker{
		NewGPUWorker("gpu-0", cudasw.New(gpusim.New(gpusim.TeslaC2050()), params), 24.8, topK),
		NewGPUWorker("gpu-1", cudasw.New(gpusim.New(gpusim.TeslaC2050()), params), 24.8, topK),
		NewEngineWorker("cpu-0", sched.CPU, swvector.NewInterSeq(params), 8.3, topK),
		NewEngineWorker("cpu-1", sched.CPU, swvector.NewStriped(params), 8.3, topK),
	}
}

func testData(t *testing.T) (db, queries *seq.Set) {
	t.Helper()
	db = synth.RandomSet(alphabet.Protein, 60, 10, 200, 21)
	queries = synth.RandomSet(alphabet.Protein, 12, 20, 120, 22)
	return db, queries
}

func TestRunDualApprox(t *testing.T) {
	db, queries := testData(t)
	m, err := New(db, queries, testWorkers(5), Config{Policy: PolicyDualApprox, TopK: 5})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != queries.Len() {
		t.Fatalf("%d results", len(rep.Results))
	}
	if rep.Schedule == nil {
		t.Fatal("dual approx must report a schedule")
	}
	if rep.Cells <= 0 || rep.Wall <= 0 {
		t.Fatalf("accounting: cells %d wall %v", rep.Cells, rep.Wall)
	}
	// Every query answered with sorted hits.
	oracle := sw.NewScalar(sw.DefaultParams())
	for qi, res := range rep.Results {
		if res.QueryID == "" || len(res.Hits) == 0 {
			t.Fatalf("query %d missing results", qi)
		}
		for i := 1; i < len(res.Hits); i++ {
			if res.Hits[i].Score > res.Hits[i-1].Score {
				t.Fatalf("query %d hits not sorted", qi)
			}
		}
		want := TopHits(db, oracle.Scores(queries.Seqs[qi].Residues, db), 5)
		for i := range want {
			if res.Hits[i].Score != want[i].Score || res.Hits[i].SeqIndex != want[i].SeqIndex {
				t.Fatalf("query %d hit %d: got (%d,%d) want (%d,%d)", qi, i,
					res.Hits[i].SeqIndex, res.Hits[i].Score, want[i].SeqIndex, want[i].Score)
			}
		}
	}
}

func TestAllPoliciesProduceIdenticalHits(t *testing.T) {
	db, queries := testData(t)
	var ref *Report
	for _, policy := range []Policy{PolicyDualApprox, PolicyDualApproxDP, PolicySelfScheduling, PolicyRoundRobin} {
		m, err := New(db, queries, testWorkers(5), Config{Policy: policy, TopK: 5})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := m.Run()
		if err != nil {
			t.Fatalf("%v: %v", policy, err)
		}
		if ref == nil {
			ref = rep
			continue
		}
		for qi := range rep.Results {
			a, b := rep.Results[qi].Hits, ref.Results[qi].Hits
			if len(a) != len(b) {
				t.Fatalf("%v query %d: %d hits vs %d", policy, qi, len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("%v query %d hit %d differs", policy, qi, i)
				}
			}
		}
	}
}

func TestInstanceFromWorkerRates(t *testing.T) {
	db, queries := testData(t)
	m, err := New(db, queries, testWorkers(3), Config{})
	if err != nil {
		t.Fatal(err)
	}
	in := m.Instance()
	if in.CPUs != 2 || in.GPUs != 2 {
		t.Fatalf("pools %d/%d", in.CPUs, in.GPUs)
	}
	if len(in.Tasks) != queries.Len() {
		t.Fatalf("%d tasks", len(in.Tasks))
	}
	for _, task := range in.Tasks {
		if task.CPUTime <= 0 || task.GPUTime <= 0 {
			t.Fatalf("task times %+v", task)
		}
		// Advertised GPU rate (24.8) beats CPU rate (8.3).
		if task.GPUTime >= task.CPUTime {
			t.Fatalf("task %d not accelerated: %+v", task.ID, task)
		}
	}
}

func TestWorkerAccounting(t *testing.T) {
	db, queries := testData(t)
	m, err := New(db, queries, testWorkers(2), Config{Policy: PolicySelfScheduling})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, n := range rep.WorkerTasks {
		total += n
	}
	if total != queries.Len() {
		t.Fatalf("task accounting: %d vs %d", total, queries.Len())
	}
	var busy time.Duration
	for _, d := range rep.WorkerBusy {
		busy += d
	}
	if busy <= 0 {
		t.Fatal("no busy time recorded")
	}
}

func TestTopHits(t *testing.T) {
	db := seq.NewSet(alphabet.Protein)
	db.AddEncoded("a", "", []byte{0})
	db.AddEncoded("b", "", []byte{0})
	db.AddEncoded("c", "", []byte{0})
	hits := TopHits(db, []int{5, 9, 5}, 2)
	if len(hits) != 2 {
		t.Fatalf("%d hits", len(hits))
	}
	if hits[0].SeqID != "b" || hits[0].Score != 9 {
		t.Fatalf("best hit %+v", hits[0])
	}
	// Ties break on sequence index.
	if hits[1].SeqID != "a" {
		t.Fatalf("tie break %+v", hits[1])
	}
}

func TestConfigErrors(t *testing.T) {
	db, queries := testData(t)
	if _, err := New(nil, queries, testWorkers(1), Config{}); err == nil {
		t.Fatal("nil db must fail")
	}
	if _, err := New(db, queries, nil, Config{}); err == nil {
		t.Fatal("no workers must fail")
	}
	m, err := New(db, queries, testWorkers(1), Config{Policy: Policy(99)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err == nil {
		t.Fatal("unknown policy must fail")
	}
	if Policy(99).String() == "" || PolicyDualApprox.String() != "dual-approx" {
		t.Fatal("policy names")
	}
}

func TestGPUWorkerReportsSimTime(t *testing.T) {
	params := sw.DefaultParams()
	w := NewGPUWorker("gpu", cudasw.New(gpusim.New(gpusim.TeslaC2050()), params), 24.8, 3)
	db := synth.RandomSet(alphabet.Protein, 40, 10, 100, 33)
	q := &db.Seqs[0]
	res := w.Run(0, q, db)
	if res.SimSeconds <= 0 {
		t.Fatal("GPU worker must report simulated seconds")
	}
	if w.Engine() == nil || w.Kind() != sched.GPU || w.RateGCUPS() != 24.8 {
		t.Fatal("accessors")
	}
}
