package master

import (
	"sync"
	"time"
)

// Rate estimation: the paper's scheduler is only as good as its
// processing-time estimates, and those come from worker throughput. The
// advertised rates (Table II calibration) are honest for the paper's
// exact testbed but systematically skew schedules on any other pool —
// a different engine, a loaded host, a mis-calibrated GPU. A
// RateEstimator replaces the advertised constant with what the worker
// actually delivered: every completed task folds its measured
// cells/second into an exponentially weighted moving average, seeded by
// the advertised rate so scheduling is sensible before the first
// observation. Rates feed task-time estimates only — they move tasks
// between workers, never change what a worker computes — so search
// results stay byte-identical whatever the estimates say.

// rateEWMAAlpha weights the newest observation. 0.3 forgets a 100×
// mis-advertised seed to within 5% in ~21 tasks while still smoothing
// per-task jitter (cache effects, host load) by ~3×.
const rateEWMAAlpha = 0.3

// RateEstimator tracks one worker's live throughput in GCUPS. It is
// safe for concurrent use: workers observe from their pool goroutine
// while the dispatcher snapshots rates for the next scheduling wave.
//
// Workers embed a *RateEstimator to satisfy the observation side of the
// Worker interface (ObserveTask, MeasuredRateGCUPS, ObservedTasks).
type RateEstimator struct {
	mu    sync.Mutex
	rate  float64 // current estimate, GCUPS
	tasks uint64  // observations folded in
}

// NewRateEstimator seeds an estimator with the worker's advertised
// rate; until the first ObserveTask, MeasuredRateGCUPS returns the seed.
func NewRateEstimator(seedGCUPS float64) *RateEstimator {
	return &RateEstimator{rate: seedGCUPS}
}

// ObserveTask folds one completed task — cells of dynamic-programming
// volume in elapsed wall time — into the estimate. Tasks with no volume
// or no measurable duration are ignored: they carry no rate signal.
func (e *RateEstimator) ObserveTask(cells int64, elapsed time.Duration) {
	if cells <= 0 || elapsed <= 0 {
		return
	}
	measured := float64(cells) / elapsed.Seconds() / 1e9
	e.mu.Lock()
	e.rate = rateEWMAAlpha*measured + (1-rateEWMAAlpha)*e.rate
	e.tasks++
	e.mu.Unlock()
}

// MeasuredRateGCUPS returns the live estimate: the advertised seed
// before any observation, the EWMA over measured task rates after.
func (e *RateEstimator) MeasuredRateGCUPS() float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.rate
}

// ObservedTasks returns how many completed tasks the estimate has
// absorbed (0 means the estimate is still the advertised seed).
func (e *RateEstimator) ObservedTasks() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.tasks
}
