package master

import (
	"runtime"
	"sync"
	"testing"
	"time"

	"swdual/internal/alphabet"
	"swdual/internal/sw"
	"swdual/internal/synth"
)

func testPool(t *testing.T, cpus, gpus int) *Pool {
	t.Helper()
	p, err := NewPool(BuildWorkers(sw.DefaultParams(), cpus, gpus, 5), PoolConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPoolCloseIdempotent(t *testing.T) {
	p := testPool(t, 2, 1)
	var wg sync.WaitGroup
	// Concurrent closes from several goroutines must all return cleanly.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := p.Close(); err != nil {
				t.Errorf("close: %v", err)
			}
		}()
	}
	wg.Wait()
	if err := p.Close(); err != nil {
		t.Fatalf("close after close: %v", err)
	}
}

func TestPoolCloseDoesNotLeakGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		p := testPool(t, 2, 2)
		p.Close()
	}
	// Give exited goroutines a moment to be reaped.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
}

func TestPoolSubmitAfterCloseFails(t *testing.T) {
	p := testPool(t, 1, 0)
	p.Close()
	err := p.Submit(0, PoolTask{Done: func(QueryResult, bool) { t.Error("done called") }})
	if err != ErrPoolClosed {
		t.Fatalf("submit after close: %v", err)
	}
	if err := p.SubmitShared(PoolTask{Done: func(QueryResult, bool) { t.Error("done called") }}); err != ErrPoolClosed {
		t.Fatalf("shared submit after close: %v", err)
	}
}

func TestPoolAcceptedTasksCompleteDespiteClose(t *testing.T) {
	p := testPool(t, 1, 0)
	db := synth.RandomSet(alphabet.Protein, 10, 10, 50, 41)
	done := make(chan QueryResult, 1)
	err := p.Submit(0, PoolTask{
		QueryIndex: 0,
		Query:      &db.Seqs[0],
		DB:         db,
		Done:       func(res QueryResult, ran bool) { done <- res },
	})
	if err != nil {
		t.Fatal(err)
	}
	p.Close() // must wait for the accepted task, not drop it
	select {
	case res := <-done:
		if len(res.Hits) == 0 {
			t.Fatal("accepted task produced no hits")
		}
	default:
		t.Fatal("accepted task was dropped by Close")
	}
}

func TestPoolCanceledTaskSkipsCompute(t *testing.T) {
	p := testPool(t, 1, 0)
	defer p.Close()
	db := synth.RandomSet(alphabet.Protein, 10, 10, 50, 42)
	done := make(chan bool, 1)
	err := p.Submit(0, PoolTask{
		QueryIndex: 0,
		Query:      &db.Seqs[0],
		DB:         db,
		Canceled:   func() bool { return true },
		Done:       func(res QueryResult, ran bool) { done <- ran },
	})
	if err != nil {
		t.Fatal(err)
	}
	if ran := <-done; ran {
		t.Fatal("canceled task still computed")
	}
}

// TestRunOnReusesPoolAcrossRequests drives two sequential and several
// concurrent requests through one pool — the persistence contract the
// engine layer builds on.
func TestRunOnReusesPoolAcrossRequests(t *testing.T) {
	p := testPool(t, 2, 2)
	defer p.Close()
	db := synth.RandomSet(alphabet.Protein, 50, 10, 150, 43)
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			queries := synth.RandomSet(alphabet.Protein, 4, 20, 100, int64(300+i))
			rep, err := RunOn(p, db, queries, Config{TopK: 5})
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			if len(rep.Results) != queries.Len() {
				t.Errorf("request %d: %d results", i, len(rep.Results))
			}
		}(i)
	}
	wg.Wait()
}

// TestRunOnSelfSchedulingOnPool exercises the shared-queue path.
func TestRunOnSelfSchedulingOnPool(t *testing.T) {
	p := testPool(t, 1, 1)
	defer p.Close()
	db := synth.RandomSet(alphabet.Protein, 30, 10, 100, 44)
	queries := synth.RandomSet(alphabet.Protein, 6, 20, 80, 45)
	rep, err := RunOn(p, db, queries, Config{Policy: PolicySelfScheduling, TopK: 5})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, n := range rep.WorkerTasks {
		total += n
	}
	if total != queries.Len() {
		t.Fatalf("self-scheduling ran %d tasks for %d queries", total, queries.Len())
	}
}

// TestRunOnClosedPoolFails must not hang: feeders skip their queues and
// the request reports ErrPoolClosed.
func TestRunOnClosedPoolFails(t *testing.T) {
	p := testPool(t, 1, 1)
	p.Close()
	db := synth.RandomSet(alphabet.Protein, 10, 10, 50, 46)
	queries := synth.RandomSet(alphabet.Protein, 3, 20, 60, 47)
	done := make(chan error, 1)
	go func() {
		_, err := RunOn(p, db, queries, Config{TopK: 5})
		done <- err
	}()
	select {
	case err := <-done:
		if err != ErrPoolClosed {
			t.Fatalf("run on closed pool: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("RunOn hung on closed pool")
	}
}
