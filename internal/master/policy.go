package master

import (
	"errors"
	"fmt"
	"sort"

	"swdual/internal/sched"
)

// Scheduling policy: the second of the master's three roles. A policy
// turns a scheduling instance into per-worker task queues; the paper's
// dual-approximation scheduler is the default.

// Policy selects how the master allocates tasks to workers.
type Policy int

// Allocation policies.
const (
	// PolicyDualApprox is the paper's one-round dual-approximation
	// allocation (§III).
	PolicyDualApprox Policy = iota
	// PolicyDualApproxDP is the 3/2 dynamic-programming refinement.
	PolicyDualApproxDP
	// PolicySelfScheduling is the related-work baseline [10]: idle
	// workers pull the next task.
	PolicySelfScheduling
	// PolicyRoundRobin deals tasks over workers in turn ([11]'s
	// equal-power assumption).
	PolicyRoundRobin
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case PolicyDualApprox:
		return "dual-approx"
	case PolicyDualApproxDP:
		return "dual-approx-dp"
	case PolicySelfScheduling:
		return "self-scheduling"
	case PolicyRoundRobin:
		return "round-robin"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// ParsePolicy resolves a policy name as accepted on the public API and
// the command line. The empty string selects the default (dual-approx).
func ParsePolicy(name string) (Policy, error) {
	switch name {
	case "", "dual-approx":
		return PolicyDualApprox, nil
	case "dual-approx-dp":
		return PolicyDualApproxDP, nil
	case "self-scheduling":
		return PolicySelfScheduling, nil
	case "round-robin":
		return PolicyRoundRobin, nil
	}
	return 0, fmt.Errorf("master: unknown policy %q (valid policies: dual-approx, dual-approx-dp, self-scheduling, round-robin)", name)
}

// ErrDynamicPolicy is returned by Assign for policies that allocate at
// run time (self-scheduling) instead of producing static queues.
var ErrDynamicPolicy = errors.New("master: policy allocates dynamically")

// Assign runs a static policy over the instance and maps the resulting
// placements onto the given workers: queues[w] lists the task indices of
// worker w in schedule start order. The schedule is non-nil for the
// dual-approximation policies. Self-scheduling returns ErrDynamicPolicy:
// its allocation happens while workers run.
func Assign(policy Policy, in *sched.Instance, workers []Worker) (queues [][]int, s *sched.Schedule, err error) {
	queues = make([][]int, len(workers))
	switch policy {
	case PolicyRoundRobin:
		for i := range in.Tasks {
			w := i % len(workers)
			queues[w] = append(queues[w], i)
		}
		return queues, nil, nil
	case PolicyDualApprox, PolicyDualApproxDP:
		if policy == PolicyDualApproxDP {
			s, err = sched.DualApproxDP(in)
		} else {
			s, err = sched.DualApprox(in)
		}
		if err != nil {
			return nil, nil, err
		}
		// Map (kind, pe) pairs onto concrete workers.
		cpuIdx, gpuIdx := []int{}, []int{}
		for wi, w := range workers {
			if w.Kind() == sched.CPU {
				cpuIdx = append(cpuIdx, wi)
			} else {
				gpuIdx = append(gpuIdx, wi)
			}
		}
		type job struct {
			task  int
			start float64
		}
		perPE := map[int][]job{}
		for _, pl := range s.Placements {
			var wi int
			if pl.Kind == sched.CPU {
				wi = cpuIdx[pl.PE]
			} else {
				wi = gpuIdx[pl.PE]
			}
			perPE[wi] = append(perPE[wi], job{task: pl.Task, start: pl.Start})
		}
		for wi, jobs := range perPE {
			sort.Slice(jobs, func(a, b int) bool { return jobs[a].start < jobs[b].start })
			for _, j := range jobs {
				queues[wi] = append(queues[wi], j.task)
			}
		}
		return queues, s, nil
	case PolicySelfScheduling:
		return nil, nil, ErrDynamicPolicy
	}
	return nil, nil, fmt.Errorf("master: unknown policy %v", policy)
}
