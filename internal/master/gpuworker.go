package master

import (
	"time"

	"swdual/internal/cudasw"
	"swdual/internal/sched"
	"swdual/internal/scoring"
	"swdual/internal/seq"
	"swdual/internal/sw"
)

// GPUWorker is a worker backed by a CUDASW++-style engine on a simulated
// device. It behaves exactly like an EngineWorker but additionally
// reports the simulated device seconds of each task, so timing analyses
// can use the device model instead of host wall time.
type GPUWorker struct {
	*RateEstimator
	name   string
	engine *cudasw.Engine
	rate   float64
	topK   int
}

// NewGPUWorker builds a GPU worker. rateGCUPS is the advertised
// throughput (the calibrated Table II rate for a C2050) that seeds the
// worker's measured-rate estimate.
func NewGPUWorker(name string, engine *cudasw.Engine, rateGCUPS float64, topK int) *GPUWorker {
	if topK <= 0 {
		topK = 10
	}
	return &GPUWorker{RateEstimator: NewRateEstimator(rateGCUPS), name: name, engine: engine, rate: rateGCUPS, topK: topK}
}

// Name implements Worker.
func (w *GPUWorker) Name() string { return w.name }

// Kind implements Worker.
func (w *GPUWorker) Kind() sched.Kind { return sched.GPU }

// RateGCUPS implements Worker.
func (w *GPUWorker) RateGCUPS() float64 { return w.rate }

// Engine returns the underlying simulated-GPU engine.
func (w *GPUWorker) Engine() *cudasw.Engine { return w.engine }

// Run implements Worker.
func (w *GPUWorker) Run(queryIndex int, query *seq.Sequence, db *seq.Set) QueryResult {
	return w.RunProfiled(queryIndex, query, nil, db)
}

// RunProfiled implements ProfiledWorker: the simulated device draws the
// query's striped profiles from the shared set (nil builds them
// locally), the way CUDASW++ keeps the query profile resident in
// texture memory across kernel launches.
func (w *GPUWorker) RunProfiled(queryIndex int, query *seq.Sequence, prof *scoring.QueryProfiles, db *seq.Set) QueryResult {
	start := time.Now()
	scores, stats := w.engine.SearchProfiled(query.Residues, prof, db)
	elapsed := time.Since(start)
	return QueryResult{
		QueryIndex: queryIndex,
		QueryID:    query.ID,
		Hits:       TopHits(db, scores, w.topK),
		Worker:     w.name,
		WorkerKind: sched.GPU,
		Elapsed:    elapsed,
		SimSeconds: stats.TotalSec,
		Cells:      sw.SetCells(query.Len(), db),
	}
}
