package master

import (
	"fmt"
	"strconv"
	"strings"

	"swdual/internal/cudasw"
	"swdual/internal/gpusim"
	"swdual/internal/platform"
	"swdual/internal/sched"
	"swdual/internal/sw"
	"swdual/internal/swpar"
	"swdual/internal/swvector"
)

// BuildWorkers assembles the standard hybrid worker set: CPU workers run
// the SWIPE-style inter-sequence engine, GPU workers run the CUDASW++-
// style engine each on its own simulated Tesla C2050. Advertised rates
// come from the paper calibration (Table II) and seed each worker's
// measured-rate estimate.
func BuildWorkers(params sw.Params, cpus, gpus, topK int) []Worker {
	return BuildPoolWorkers(params, PoolSpec{CPU: cpus, GPU: gpus}, topK)
}

// PoolSpec counts the workers of each backend in a (possibly
// heterogeneous) pool. All CPU-side backends compute exact scores with
// different engines, so mixing them changes throughput and scheduling,
// never results.
type PoolSpec struct {
	// CPU workers run the SWIPE-style inter-sequence SWAR engine
	// (swvector.InterSeq), the paper's CPU backend.
	CPU int
	// Striped workers run the Farrar-style striped SWAR engine
	// (swvector.Striped).
	Striped int
	// Fine workers run the fine-grained column-block wavefront engine
	// (swpar), which parallelizes inside a single comparison.
	Fine int
	// GPU workers run the CUDASW++-style engine, each on its own
	// simulated Tesla C2050.
	GPU int
}

// poolSpecBackends enumerates the spec grammar's backend names in
// canonical order; error messages and String list them from here.
var poolSpecBackends = []string{"cpu", "striped", "fine", "gpu"}

// Total returns the worker count the spec describes.
func (s PoolSpec) Total() int { return s.CPU + s.Striped + s.Fine + s.GPU }

// CPUWorkers returns how many workers join the CPU scheduling pool
// (every CPU-side backend: cpu, striped, fine).
func (s PoolSpec) CPUWorkers() int { return s.CPU + s.Striped + s.Fine }

// GPUWorkers returns how many workers join the GPU scheduling pool.
func (s PoolSpec) GPUWorkers() int { return s.GPU }

// String renders the spec in ParsePoolSpec grammar, omitting zero
// backends ("" for an empty spec).
func (s PoolSpec) String() string {
	var parts []string
	for _, b := range poolSpecBackends {
		if n := s.count(b); n > 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", b, n))
		}
	}
	return strings.Join(parts, ",")
}

func (s PoolSpec) count(backend string) int {
	switch backend {
	case "cpu":
		return s.CPU
	case "striped":
		return s.Striped
	case "fine":
		return s.Fine
	case "gpu":
		return s.GPU
	}
	return 0
}

// ParsePoolSpec parses a worker-pool spec like "cpu=4,striped=2,gpu=1":
// comma-separated backend=count pairs, where backend is one of cpu
// (inter-sequence SWAR), striped (striped SWAR), fine (fine-grained
// wavefront) or gpu (simulated Tesla C2050), and count is a
// non-negative integer. Repeated backends accumulate. The empty string
// parses to the zero spec (no pool requested); a non-empty spec must
// name at least one worker.
func ParsePoolSpec(spec string) (PoolSpec, error) {
	var s PoolSpec
	if spec == "" {
		return s, nil
	}
	valid := strings.Join(poolSpecBackends, ", ")
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		backend, value, ok := strings.Cut(part, "=")
		if !ok || backend == "" || value == "" {
			return PoolSpec{}, fmt.Errorf("master: pool spec %q: entry %q is not backend=count (valid backends: %s)", spec, part, valid)
		}
		n, err := strconv.Atoi(value)
		if err != nil || n < 0 {
			return PoolSpec{}, fmt.Errorf("master: pool spec %q: count %q of backend %q must be a non-negative integer", spec, value, backend)
		}
		switch backend {
		case "cpu":
			s.CPU += n
		case "striped":
			s.Striped += n
		case "fine":
			s.Fine += n
		case "gpu":
			s.GPU += n
		default:
			return PoolSpec{}, fmt.Errorf("master: pool spec %q: unknown backend %q (valid backends: %s)", spec, backend, valid)
		}
	}
	if s.Total() == 0 {
		return PoolSpec{}, fmt.Errorf("master: pool spec %q names no workers (give at least one backend a positive count)", spec)
	}
	return s, nil
}

// BuildPoolWorkers assembles the worker set a PoolSpec describes, in a
// deterministic order: GPU workers first, then cpu, striped, fine.
// Advertised rates seed each worker's measured-rate estimate: GPU and
// inter-sequence CPU workers advertise their paper-calibrated Table II
// rates; the striped and fine-grained backends have no paper
// calibration, so they also seed from the CPU rate and rely on the
// estimator to converge to their true throughput as tasks complete.
func BuildPoolWorkers(params sw.Params, spec PoolSpec, topK int) []Worker {
	cal := platform.PaperCalibration()
	var ws []Worker
	for i := 0; i < spec.GPU; i++ {
		eng := cudasw.New(gpusim.New(gpusim.TeslaC2050()), params)
		ws = append(ws, NewGPUWorker(fmt.Sprintf("gpu-%d", i), eng, cal.GPUWorkerGCUPS, topK))
	}
	for i := 0; i < spec.CPU; i++ {
		ws = append(ws, NewEngineWorker(fmt.Sprintf("cpu-%d", i), sched.CPU,
			swvector.NewInterSeq(params), cal.CPUWorkerGCUPS, topK))
	}
	for i := 0; i < spec.Striped; i++ {
		ws = append(ws, NewEngineWorker(fmt.Sprintf("striped-%d", i), sched.CPU,
			swvector.NewStriped(params), cal.CPUWorkerGCUPS, topK))
	}
	for i := 0; i < spec.Fine; i++ {
		ws = append(ws, NewEngineWorker(fmt.Sprintf("fine-%d", i), sched.CPU,
			swpar.NewEngine(params, swpar.Config{}), cal.CPUWorkerGCUPS, topK))
	}
	return ws
}
