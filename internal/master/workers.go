package master

import (
	"fmt"

	"swdual/internal/cudasw"
	"swdual/internal/gpusim"
	"swdual/internal/platform"
	"swdual/internal/sched"
	"swdual/internal/sw"
	"swdual/internal/swvector"
)

// BuildWorkers assembles the standard hybrid worker set: CPU workers run
// the SWIPE-style inter-sequence engine, GPU workers run the CUDASW++-
// style engine each on its own simulated Tesla C2050. Advertised rates
// come from the paper calibration (Table II).
func BuildWorkers(params sw.Params, cpus, gpus, topK int) []Worker {
	cal := platform.PaperCalibration()
	var ws []Worker
	for i := 0; i < gpus; i++ {
		eng := cudasw.New(gpusim.New(gpusim.TeslaC2050()), params)
		ws = append(ws, NewGPUWorker(fmt.Sprintf("gpu-%d", i), eng, 24.8, topK))
	}
	for i := 0; i < cpus; i++ {
		ws = append(ws, NewEngineWorker(fmt.Sprintf("cpu-%d", i), sched.CPU,
			swvector.NewInterSeq(params), cal.CPUWorkerGCUPS, topK))
	}
	return ws
}
