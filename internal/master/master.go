// Package master implements the paper's master-slave model (§IV,
// Figure 6) for in-process execution: the master generates one task per
// query sequence, gathers worker capabilities at registration, allocates
// tasks with a pluggable policy (the dual-approximation scheduler by
// default), dispatches them, and merges the workers' results.
//
// Workers run real engines — the SWIPE-style SWAR engine on CPU workers,
// the simulated-GPU CUDASW++ engine on GPU workers — so a Run produces
// exact alignment scores; GPU workers additionally report their simulated
// device time so paper-scale timing experiments and functional runs share
// one code path.
package master

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"swdual/internal/sched"
	"swdual/internal/seq"
	"swdual/internal/sw"
)

// Hit is one database match of a query.
type Hit struct {
	SeqIndex int
	SeqID    string
	Score    int
}

// QueryResult is the merged outcome of one task.
type QueryResult struct {
	QueryIndex int
	QueryID    string
	Hits       []Hit // descending score, capped at the master's TopK
	Worker     string
	WorkerKind sched.Kind
	Elapsed    time.Duration // wall time spent by the worker
	SimSeconds float64       // simulated device seconds (GPU workers)
	Cells      int64
}

// Worker is a processing element registered with the master.
type Worker interface {
	// Name identifies the worker in reports.
	Name() string
	// Kind reports the scheduling pool the worker belongs to.
	Kind() sched.Kind
	// Run compares one query against the whole database.
	Run(queryIndex int, query *seq.Sequence, db *seq.Set) QueryResult
	// RateGCUPS is the worker's advertised throughput, used by the
	// scheduling policies to estimate task processing times (the paper's
	// master "uses the information gathered from the workers").
	RateGCUPS() float64
}

// Policy selects how the master allocates tasks to workers.
type Policy int

// Allocation policies.
const (
	// PolicyDualApprox is the paper's one-round dual-approximation
	// allocation (§III).
	PolicyDualApprox Policy = iota
	// PolicyDualApproxDP is the 3/2 dynamic-programming refinement.
	PolicyDualApproxDP
	// PolicySelfScheduling is the related-work baseline [10]: idle
	// workers pull the next task.
	PolicySelfScheduling
	// PolicyRoundRobin deals tasks over workers in turn ([11]'s
	// equal-power assumption).
	PolicyRoundRobin
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case PolicyDualApprox:
		return "dual-approx"
	case PolicyDualApproxDP:
		return "dual-approx-dp"
	case PolicySelfScheduling:
		return "self-scheduling"
	case PolicyRoundRobin:
		return "round-robin"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// Config tunes a master run.
type Config struct {
	Policy Policy
	// TopK bounds the hits kept per query (default 10).
	TopK int
	// Parallelism bounds concurrently running workers (default: all).
	Parallelism int
}

// Report is the outcome of a master run.
type Report struct {
	Policy       Policy
	Results      []QueryResult // indexed by query
	Wall         time.Duration
	Cells        int64
	GCUPS        float64 // based on wall time
	Schedule     *sched.Schedule
	WorkerBusy   map[string]time.Duration
	WorkerTasks  map[string]int
	SimMakespan  float64 // simulated makespan from the schedule, if any
	IdleFraction float64
}

// Master coordinates a search.
type Master struct {
	db      *seq.Set
	queries *seq.Set
	workers []Worker
	cfg     Config
}

// New builds a master. Workers register by being passed here, mirroring
// the registration step of Figure 6.
func New(db, queries *seq.Set, workers []Worker, cfg Config) (*Master, error) {
	if db == nil || queries == nil {
		return nil, fmt.Errorf("master: nil database or query set")
	}
	if len(workers) == 0 {
		return nil, fmt.Errorf("master: no workers registered")
	}
	if cfg.TopK <= 0 {
		cfg.TopK = 10
	}
	if cfg.Parallelism <= 0 {
		cfg.Parallelism = runtime.GOMAXPROCS(0)
	}
	return &Master{db: db, queries: queries, workers: workers, cfg: cfg}, nil
}

// Instance builds the scheduling instance from worker-advertised rates.
func (m *Master) Instance() *sched.Instance {
	cpuRate, gpuRate := 0.0, 0.0
	cpus, gpus := 0, 0
	for _, w := range m.workers {
		if w.Kind() == sched.CPU {
			cpuRate += w.RateGCUPS()
			cpus++
		} else {
			gpuRate += w.RateGCUPS()
			gpus++
		}
	}
	if cpus > 0 {
		cpuRate /= float64(cpus)
	}
	if gpus > 0 {
		gpuRate /= float64(gpus)
	}
	in := &sched.Instance{CPUs: cpus, GPUs: gpus}
	dbRes := m.db.TotalResidues()
	for i := range m.queries.Seqs {
		cells := float64(m.queries.Seqs[i].Len()) * float64(dbRes)
		t := sched.Task{ID: i, Label: m.queries.Seqs[i].ID}
		if cpus > 0 {
			t.CPUTime = cells / (cpuRate * 1e9)
		}
		if gpus > 0 {
			t.GPUTime = cells / (gpuRate * 1e9)
		}
		in.Tasks = append(in.Tasks, t)
	}
	return in
}

// Run executes the search: allocate, dispatch, merge (Figure 6).
func (m *Master) Run() (*Report, error) {
	start := time.Now()
	rep := &Report{
		Policy:      m.cfg.Policy,
		Results:     make([]QueryResult, m.queries.Len()),
		WorkerBusy:  map[string]time.Duration{},
		WorkerTasks: map[string]int{},
	}
	var err error
	switch m.cfg.Policy {
	case PolicyDualApprox, PolicyDualApproxDP, PolicyRoundRobin:
		err = m.runOneRound(rep)
	case PolicySelfScheduling:
		err = m.runSelfScheduling(rep)
	default:
		err = fmt.Errorf("master: unknown policy %v", m.cfg.Policy)
	}
	if err != nil {
		return nil, err
	}
	rep.Wall = time.Since(start)
	for i := range rep.Results {
		rep.Cells += rep.Results[i].Cells
	}
	if s := rep.Wall.Seconds(); s > 0 {
		rep.GCUPS = float64(rep.Cells) / s / 1e9
	}
	if rep.Schedule != nil {
		rep.SimMakespan = rep.Schedule.Makespan
		rep.IdleFraction = rep.Schedule.IdleFraction()
	}
	return rep, nil
}

// runOneRound allocates every task up front, then lets each worker drain
// its own queue — the paper's one-round master-slave mode.
func (m *Master) runOneRound(rep *Report) error {
	queues := make([][]int, len(m.workers))
	switch m.cfg.Policy {
	case PolicyRoundRobin:
		for i := range m.queries.Seqs {
			w := i % len(m.workers)
			queues[w] = append(queues[w], i)
		}
	default:
		in := m.Instance()
		var s *sched.Schedule
		var err error
		if m.cfg.Policy == PolicyDualApproxDP {
			s, err = sched.DualApproxDP(in)
		} else {
			s, err = sched.DualApprox(in)
		}
		if err != nil {
			return err
		}
		rep.Schedule = s
		// Map (kind, pe) pairs onto concrete workers.
		cpuIdx, gpuIdx := []int{}, []int{}
		for wi, w := range m.workers {
			if w.Kind() == sched.CPU {
				cpuIdx = append(cpuIdx, wi)
			} else {
				gpuIdx = append(gpuIdx, wi)
			}
		}
		// Dispatch per PE in schedule start order.
		type job struct {
			task  int
			start float64
		}
		perPE := map[int][]job{}
		for _, pl := range s.Placements {
			var wi int
			if pl.Kind == sched.CPU {
				wi = cpuIdx[pl.PE]
			} else {
				wi = gpuIdx[pl.PE]
			}
			perPE[wi] = append(perPE[wi], job{task: pl.Task, start: pl.Start})
		}
		for wi, jobs := range perPE {
			sort.Slice(jobs, func(a, b int) bool { return jobs[a].start < jobs[b].start })
			for _, j := range jobs {
				queues[wi] = append(queues[wi], j.task)
			}
		}
	}

	sem := make(chan struct{}, m.cfg.Parallelism)
	var wg sync.WaitGroup
	var mu sync.Mutex
	for wi, queue := range queues {
		if len(queue) == 0 {
			continue
		}
		wg.Add(1)
		go func(wi int, queue []int) {
			defer wg.Done()
			w := m.workers[wi]
			for _, qi := range queue {
				sem <- struct{}{}
				res := w.Run(qi, &m.queries.Seqs[qi], m.db)
				<-sem
				mu.Lock()
				rep.Results[qi] = res
				rep.WorkerBusy[w.Name()] += res.Elapsed
				rep.WorkerTasks[w.Name()]++
				mu.Unlock()
			}
		}(wi, queue)
	}
	wg.Wait()
	return nil
}

// runSelfScheduling runs the dynamic baseline: a shared task channel that
// idle workers pull from.
func (m *Master) runSelfScheduling(rep *Report) error {
	tasks := make(chan int)
	go func() {
		for i := range m.queries.Seqs {
			tasks <- i
		}
		close(tasks)
	}()
	var wg sync.WaitGroup
	var mu sync.Mutex
	for _, w := range m.workers {
		wg.Add(1)
		go func(w Worker) {
			defer wg.Done()
			for qi := range tasks {
				res := w.Run(qi, &m.queries.Seqs[qi], m.db)
				mu.Lock()
				rep.Results[qi] = res
				rep.WorkerBusy[w.Name()] += res.Elapsed
				rep.WorkerTasks[w.Name()]++
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	return nil
}

// TopHits converts raw scores into the capped, sorted hit list.
func TopHits(db *seq.Set, scores []int, k int) []Hit {
	hits := make([]Hit, 0, len(scores))
	for i, s := range scores {
		hits = append(hits, Hit{SeqIndex: i, SeqID: db.Seqs[i].ID, Score: s})
	}
	sort.SliceStable(hits, func(a, b int) bool {
		if hits[a].Score != hits[b].Score {
			return hits[a].Score > hits[b].Score
		}
		return hits[a].SeqIndex < hits[b].SeqIndex
	})
	if len(hits) > k {
		hits = hits[:k]
	}
	return hits
}

// Engine-backed workers.

// EngineWorker wraps any sw.Engine as a CPU-pool worker.
type EngineWorker struct {
	name   string
	kind   sched.Kind
	engine sw.Engine
	rate   float64
	topK   int
}

// NewEngineWorker builds a worker over an engine. rateGCUPS is the
// advertised throughput used for scheduling estimates.
func NewEngineWorker(name string, kind sched.Kind, engine sw.Engine, rateGCUPS float64, topK int) *EngineWorker {
	if topK <= 0 {
		topK = 10
	}
	return &EngineWorker{name: name, kind: kind, engine: engine, rate: rateGCUPS, topK: topK}
}

// Name implements Worker.
func (w *EngineWorker) Name() string { return w.name }

// Kind implements Worker.
func (w *EngineWorker) Kind() sched.Kind { return w.kind }

// RateGCUPS implements Worker.
func (w *EngineWorker) RateGCUPS() float64 { return w.rate }

// Run implements Worker.
func (w *EngineWorker) Run(queryIndex int, query *seq.Sequence, db *seq.Set) QueryResult {
	start := time.Now()
	scores := w.engine.Scores(query.Residues, db)
	elapsed := time.Since(start)
	return QueryResult{
		QueryIndex: queryIndex,
		QueryID:    query.ID,
		Hits:       TopHits(db, scores, w.topK),
		Worker:     w.name,
		WorkerKind: w.kind,
		Elapsed:    elapsed,
		Cells:      sw.SetCells(query.Len(), db),
	}
}
