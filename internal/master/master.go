// Package master implements the paper's master-slave model (§IV,
// Figure 6) and splits it into its three roles, each reusable on its
// own: task generation (tasks.go — one task per query, with times
// estimated from worker-advertised rates), a pluggable scheduling policy
// (policy.go — the dual-approximation scheduler by default), and result
// merge (merge.go). Workers run as a persistent Pool (pool.go) of
// goroutines, each owning a real engine — the SWIPE-style SWAR engine on
// CPU workers, the simulated-GPU CUDASW++ engine on GPU workers — so a
// run produces exact alignment scores.
//
// The Master type composes the three roles into the seed's one-shot
// run; the internal/engine package composes the same pieces into a
// long-lived service that amortizes preparation across requests.
package master

import (
	"fmt"
	"runtime"
	"sort"
	"sync/atomic"
	"time"

	"swdual/internal/sched"
	"swdual/internal/scoring"
	"swdual/internal/seq"
	"swdual/internal/sw"
)

// Hit is one database match of a query.
type Hit struct {
	SeqIndex int
	SeqID    string
	Score    int
}

// QueryResult is the merged outcome of one task.
type QueryResult struct {
	QueryIndex int
	QueryID    string
	Hits       []Hit // descending score, capped at the master's TopK
	Worker     string
	WorkerKind sched.Kind
	Elapsed    time.Duration // wall time spent by the worker
	SimSeconds float64       // simulated device seconds (GPU workers)
	Cells      int64
}

// ObservedDuration is the time base rate estimation uses for this
// result: the simulated device seconds when the worker ran on a modeled
// device (a simulated GPU computes its scores on the host, so its wall
// time measures the simulator, not the device), host wall time
// otherwise.
func (r QueryResult) ObservedDuration() time.Duration {
	if r.SimSeconds > 0 {
		return time.Duration(r.SimSeconds * float64(time.Second))
	}
	return r.Elapsed
}

// Worker is a processing element registered with the master.
type Worker interface {
	// Name identifies the worker in reports.
	Name() string
	// Kind reports the scheduling pool the worker belongs to.
	Kind() sched.Kind
	// Run compares one query against the whole database.
	Run(queryIndex int, query *seq.Sequence, db *seq.Set) QueryResult
	// RateGCUPS is the worker's advertised throughput, the seed of the
	// measured estimate below (the paper's master "uses the information
	// gathered from the workers").
	RateGCUPS() float64
	// ObserveTask feeds one completed task's measured cell volume and
	// wall time into the worker's live rate estimate; the Pool calls it
	// after every task it runs.
	ObserveTask(cells int64, elapsed time.Duration)
	// MeasuredRateGCUPS is the live throughput estimate the scheduling
	// policies consume: the advertised rate until tasks were observed,
	// then an EWMA over measured cells/second. Embedding a
	// *RateEstimator provides it along with ObserveTask/ObservedTasks.
	MeasuredRateGCUPS() float64
	// ObservedTasks counts the completed tasks folded into the estimate.
	ObservedTasks() uint64
}

// ProfiledWorker is a Worker that can reuse a prepared per-query profile
// set. The Pool routes a task through RunProfiled when the task carries
// Profiles and the worker implements this; results must be identical to
// Run — the profiles are a construction cache, not an input.
type ProfiledWorker interface {
	Worker
	RunProfiled(queryIndex int, query *seq.Sequence, prof *scoring.QueryProfiles, db *seq.Set) QueryResult
}

// Config tunes a master run.
type Config struct {
	Policy Policy
	// TopK bounds the hits kept per query (default 10).
	TopK int
	// Parallelism bounds concurrently running workers (default: all).
	Parallelism int
}

// Report is the outcome of a master run.
type Report struct {
	Policy       Policy
	Results      []QueryResult // indexed by query
	Wall         time.Duration
	Cells        int64
	GCUPS        float64 // based on wall time
	Schedule     *sched.Schedule
	WorkerBusy   map[string]time.Duration
	WorkerTasks  map[string]int
	SimMakespan  float64 // simulated makespan from the schedule, if any
	IdleFraction float64
	// Coverage is non-nil only on a degraded answer: a sharded
	// coordinator running with a partial degradation policy searched
	// some ranges of the database but skipped others whose every
	// replica was unavailable. nil means full coverage — the invariant
	// every non-degraded path preserves, so full answers stay
	// byte-identical with or without degraded mode configured.
	Coverage *Coverage
}

// SkippedRange names one database range a degraded search did not
// touch: its shard index, its [Lo, Hi) sequence slice, and the failure
// that took it out (pre-formatted — reasons are for operators, not for
// errors.Is).
type SkippedRange struct {
	Index  int
	Lo, Hi int
	Reason string
}

// Coverage quantifies how much of the database a degraded search
// actually saw. Hits from searched ranges are byte-identical to what a
// full search would report for those ranges; the skipped ranges
// contributed nothing, so a global top-k may be missing matches that
// live there.
type Coverage struct {
	// RangesSearched / RangesTotal count shard ranges; residues weight
	// them by how much sequence data each range holds.
	RangesSearched   int
	RangesTotal      int
	ResiduesSearched int64
	ResiduesTotal    int64
	Skipped          []SkippedRange
}

// Fraction is the searched share of the database by residue volume, in
// [0, 1] (1 when the database is empty — nothing was missed).
func (c *Coverage) Fraction() float64 {
	if c.ResiduesTotal <= 0 {
		return 1
	}
	return float64(c.ResiduesSearched) / float64(c.ResiduesTotal)
}

// Clone deep-copies the coverage so a cached or shared answer cannot
// alias the original's Skipped slice.
func (c *Coverage) Clone() *Coverage {
	if c == nil {
		return nil
	}
	out := *c
	out.Skipped = append([]SkippedRange(nil), c.Skipped...)
	return &out
}

// Master coordinates a one-shot search: it builds a Pool, runs one
// request through the three roles, and tears the pool down.
type Master struct {
	db      *seq.Set
	queries *seq.Set
	workers []Worker
	cfg     Config
}

// New builds a master. Workers register by being passed here, mirroring
// the registration step of Figure 6.
func New(db, queries *seq.Set, workers []Worker, cfg Config) (*Master, error) {
	if db == nil || queries == nil {
		return nil, fmt.Errorf("master: nil database or query set")
	}
	if len(workers) == 0 {
		return nil, fmt.Errorf("master: no workers registered")
	}
	if cfg.TopK <= 0 {
		cfg.TopK = 10
	}
	if cfg.Parallelism <= 0 {
		cfg.Parallelism = runtime.GOMAXPROCS(0)
	}
	return &Master{db: db, queries: queries, workers: workers, cfg: cfg}, nil
}

// Instance builds the scheduling instance from worker-advertised rates.
func (m *Master) Instance() *sched.Instance {
	return InstanceFor(m.db, m.queries, m.workers)
}

// Run executes the search: allocate, dispatch, merge (Figure 6).
func (m *Master) Run() (*Report, error) {
	pool, err := NewPool(m.workers, PoolConfig{Parallelism: m.cfg.Parallelism})
	if err != nil {
		return nil, err
	}
	defer pool.Close()
	return RunOn(pool, m.db, m.queries, m.cfg)
}

// RunOn executes one request on an existing pool: generate tasks, assign
// them with the configured policy, dispatch, and merge. It never closes
// the pool, so a persistent caller can run many requests through one
// pool. RunOn returns ErrPoolClosed if the pool shuts down mid-request.
func RunOn(pool *Pool, db, queries *seq.Set, cfg Config) (*Report, error) {
	workers := pool.Workers()
	merge := NewMerger(queries.Len())
	var schedule *sched.Schedule
	var failed atomic.Bool

	task := func(qi int) PoolTask {
		return PoolTask{
			QueryIndex: qi,
			Query:      &queries.Seqs[qi],
			DB:         db,
			Done:       func(res QueryResult, _ bool) { merge.Add(res.QueryIndex, res) },
		}
	}
	// feed submits one queue in order; on pool shutdown it skips the
	// remainder so the merge still completes.
	feed := func(queue []int, send func(PoolTask) error) {
		for i, qi := range queue {
			if err := send(task(qi)); err != nil {
				failed.Store(true)
				for _, rest := range queue[i:] {
					merge.Skip(rest)
				}
				return
			}
		}
	}

	if cfg.Policy == PolicySelfScheduling {
		go feed(identity(queries.Len()), pool.SubmitShared)
	} else {
		in := InstanceFor(db, queries, workers)
		queues, s, err := Assign(cfg.Policy, in, workers)
		if err != nil {
			return nil, err
		}
		schedule = s
		// Feed each worker's queue from its own goroutine so one busy
		// worker never delays another's first task.
		for wi, queue := range queues {
			if len(queue) == 0 {
				continue
			}
			wi := wi
			go feed(queue, func(t PoolTask) error { return pool.Submit(wi, t) })
		}
	}
	<-merge.Done()
	if failed.Load() {
		return nil, ErrPoolClosed
	}
	return merge.Report(cfg.Policy, schedule), nil
}

// identity returns [0, 1, ..., n-1].
func identity(n int) []int {
	ix := make([]int, n)
	for i := range ix {
		ix[i] = i
	}
	return ix
}

// TopHits converts raw scores into the capped, sorted hit list.
func TopHits(db *seq.Set, scores []int, k int) []Hit {
	hits := make([]Hit, 0, len(scores))
	for i, s := range scores {
		hits = append(hits, Hit{SeqIndex: i, SeqID: db.Seqs[i].ID, Score: s})
	}
	sort.SliceStable(hits, func(a, b int) bool { return HitBefore(hits[a], hits[b]) })
	if len(hits) > k {
		hits = hits[:k]
	}
	return hits
}

// Engine-backed workers.

// EngineWorker wraps any sw.Engine as a CPU-pool worker.
type EngineWorker struct {
	*RateEstimator
	name   string
	kind   sched.Kind
	engine sw.Engine
	rate   float64
	topK   int
}

// NewEngineWorker builds a worker over an engine. rateGCUPS is the
// advertised throughput that seeds the worker's measured-rate estimate.
func NewEngineWorker(name string, kind sched.Kind, engine sw.Engine, rateGCUPS float64, topK int) *EngineWorker {
	if topK <= 0 {
		topK = 10
	}
	return &EngineWorker{RateEstimator: NewRateEstimator(rateGCUPS), name: name, kind: kind, engine: engine, rate: rateGCUPS, topK: topK}
}

// Name implements Worker.
func (w *EngineWorker) Name() string { return w.name }

// Kind implements Worker.
func (w *EngineWorker) Kind() sched.Kind { return w.kind }

// RateGCUPS implements Worker.
func (w *EngineWorker) RateGCUPS() float64 { return w.rate }

// Run implements Worker.
func (w *EngineWorker) Run(queryIndex int, query *seq.Sequence, db *seq.Set) QueryResult {
	return w.run(queryIndex, query, nil, db)
}

// RunProfiled implements ProfiledWorker: when the wrapped engine
// understands shared profiles, the task's prepared set replaces the
// engine's own per-call construction.
func (w *EngineWorker) RunProfiled(queryIndex int, query *seq.Sequence, prof *scoring.QueryProfiles, db *seq.Set) QueryResult {
	return w.run(queryIndex, query, prof, db)
}

func (w *EngineWorker) run(queryIndex int, query *seq.Sequence, prof *scoring.QueryProfiles, db *seq.Set) QueryResult {
	start := time.Now()
	var scores []int
	if pe, ok := w.engine.(sw.ProfiledEngine); ok && prof != nil {
		scores = pe.ScoresProfiled(query.Residues, prof, db)
	} else {
		scores = w.engine.Scores(query.Residues, db)
	}
	elapsed := time.Since(start)
	return QueryResult{
		QueryIndex: queryIndex,
		QueryID:    query.ID,
		Hits:       TopHits(db, scores, w.topK),
		Worker:     w.name,
		WorkerKind: w.kind,
		Elapsed:    elapsed,
		Cells:      sw.SetCells(query.Len(), db),
	}
}
