package master

import (
	"sync"
	"time"

	"swdual/internal/sched"
)

// Result merge: the third of the master's three roles. A Merger gathers
// worker results for one request (one query set), keeps per-worker
// accounting, and finalizes the Report. It is safe for concurrent Add
// calls from many workers.

// HitBefore is the canonical hit order every merge in the module agrees
// on: descending score, then ascending SeqIndex. TopHits sorts with it
// and MergeTopK selects with it, which is what makes sharded results
// byte-identical to unsharded ones.
func HitBefore(a, b Hit) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	return a.SeqIndex < b.SeqIndex
}

// MergeTopK gathers per-shard hit lists into one global top-k list. Each
// list must already be in HitBefore order over shard-local indices — the
// order TopHits produces — and offsets[i] is added to list i's SeqIndex
// values to lift them into the global index space (shards cover disjoint
// contiguous ranges, so lifting preserves each list's order and global
// indices never collide). The merge is a deterministic k-way selection:
// ties in score break on the global index, exactly like an unsharded
// TopHits pass over the whole database.
func MergeTopK(lists [][]Hit, offsets []int, k int) []Hit {
	total := 0
	for _, l := range lists {
		total += len(l)
	}
	if total > k {
		total = k
	}
	out := make([]Hit, 0, total)
	cursors := make([]int, len(lists))
	for len(out) < k {
		best := -1
		var bestHit Hit
		for li, l := range lists {
			if cursors[li] >= len(l) {
				continue
			}
			h := l[cursors[li]]
			h.SeqIndex += offsets[li]
			if best < 0 || HitBefore(h, bestHit) {
				best, bestHit = li, h
			}
		}
		if best < 0 {
			break
		}
		cursors[best]++
		out = append(out, bestHit)
	}
	return out
}

// Merger accumulates the results of one search request.
type Merger struct {
	mu      sync.Mutex
	results []QueryResult
	busy    map[string]time.Duration
	tasks   map[string]int
	pending int
	done    chan struct{}
	start   time.Time
}

// NewMerger prepares a merge over n expected query results. A merge over
// zero results is complete immediately.
func NewMerger(n int) *Merger {
	g := &Merger{
		results: make([]QueryResult, n),
		busy:    map[string]time.Duration{},
		tasks:   map[string]int{},
		pending: n,
		done:    make(chan struct{}),
		start:   time.Now(),
	}
	if n == 0 {
		close(g.done)
	}
	return g
}

// Add records one worker result. index is the query's position in the
// request (not in any larger scheduling wave). Add closes the merge when
// the last expected result arrives.
func (g *Merger) Add(index int, res QueryResult) {
	g.mu.Lock()
	g.results[index] = res
	g.busy[res.Worker] += res.Elapsed
	g.tasks[res.Worker]++
	g.pending--
	last := g.pending == 0
	g.mu.Unlock()
	if last {
		close(g.done)
	}
}

// Skip marks one expected result as abandoned (e.g. the request's context
// was canceled before the task ran), so the merge can still complete.
func (g *Merger) Skip(index int) {
	g.mu.Lock()
	g.pending--
	last := g.pending == 0
	g.mu.Unlock()
	if last {
		close(g.done)
	}
}

// Done is closed once every expected result was added or skipped.
func (g *Merger) Done() <-chan struct{} { return g.done }

// Report finalizes the merged report. Call only after Done is closed (or
// when abandoning the request early; partial results are kept).
func (g *Merger) Report(policy Policy, s *sched.Schedule) *Report {
	g.mu.Lock()
	defer g.mu.Unlock()
	rep := &Report{
		Policy:      policy,
		Results:     g.results,
		Wall:        time.Since(g.start),
		WorkerBusy:  g.busy,
		WorkerTasks: g.tasks,
		Schedule:    s,
	}
	for i := range rep.Results {
		rep.Cells += rep.Results[i].Cells
	}
	if sec := rep.Wall.Seconds(); sec > 0 {
		rep.GCUPS = float64(rep.Cells) / sec / 1e9
	}
	if s != nil {
		rep.SimMakespan = s.Makespan
		rep.IdleFraction = s.IdleFraction()
	}
	return rep
}
