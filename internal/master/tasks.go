package master

import (
	"swdual/internal/sched"
	"swdual/internal/seq"
)

// Task generation: the first of the master's three roles (§IV, Figure 6).
// One search task is generated per query sequence; its processing-time
// estimates come from the database volume and the worker-advertised rates.

// PoolRates summarizes the registered workers the way the scheduling
// policies see them: pool sizes and mean measured throughput per pool.
type PoolRates struct {
	CPUs, GPUs       int
	CPURate, GPURate float64 // mean GCUPS per worker of the pool
}

// RatesOf gathers pool sizes and mean rates from registered workers.
// Rates are the workers' live measured estimates — the advertised rate
// until a worker has completed tasks — so schedules built from the
// result track what the pool actually delivers, not what it claims.
// Rates only move tasks between workers; results are identical under
// any rates because every worker computes exact scores.
//
// Adaptation is pool-granular: the paper's scheduling model (§III) is m
// identical CPUs plus k identical GPUs, so per-worker estimates are
// averaged into one rate per pool before BuildInstance. A pool mixing
// backends of very different speeds is modeled by its mean; scheduling
// with individual per-worker rates is a different machine model
// (unrelated machines) and a ROADMAP item, not a rate-plumbing change.
func RatesOf(workers []Worker) PoolRates {
	var r PoolRates
	for _, w := range workers {
		if w.Kind() == sched.CPU {
			r.CPURate += w.MeasuredRateGCUPS()
			r.CPUs++
		} else {
			r.GPURate += w.MeasuredRateGCUPS()
			r.GPUs++
		}
	}
	if r.CPUs > 0 {
		r.CPURate /= float64(r.CPUs)
	}
	if r.GPUs > 0 {
		r.GPURate /= float64(r.GPUs)
	}
	return r
}

// BuildInstance generates the scheduling instance for comparing queries
// against a database of dbResidues total residues: one task per query,
// with CPU/GPU time estimates cells/rate (the paper's p_j and
// overlined p_j). queryLens and queryIDs must have equal length; a nil
// queryIDs leaves labels empty.
func BuildInstance(dbResidues int64, queryLens []int, queryIDs []string, rates PoolRates) *sched.Instance {
	in := &sched.Instance{CPUs: rates.CPUs, GPUs: rates.GPUs}
	for i, qlen := range queryLens {
		cells := float64(qlen) * float64(dbResidues)
		t := sched.Task{ID: i}
		if queryIDs != nil {
			t.Label = queryIDs[i]
		}
		if rates.CPUs > 0 {
			t.CPUTime = cells / (rates.CPURate * 1e9)
		}
		if rates.GPUs > 0 {
			t.GPUTime = cells / (rates.GPURate * 1e9)
		}
		in.Tasks = append(in.Tasks, t)
	}
	return in
}

// InstanceFor generates the scheduling instance of a whole query set, the
// per-process path used by Master and the cluster runtime.
func InstanceFor(db, queries *seq.Set, workers []Worker) *sched.Instance {
	lens := make([]int, queries.Len())
	ids := make([]string, queries.Len())
	for i := range queries.Seqs {
		lens[i] = queries.Seqs[i].Len()
		ids[i] = queries.Seqs[i].ID
	}
	return BuildInstance(db.TotalResidues(), lens, ids, RatesOf(workers))
}
