package remote

import (
	"context"
	"net"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"swdual/internal/alphabet"
	"swdual/internal/engine"
	"swdual/internal/master"
	"swdual/internal/sched"
	"swdual/internal/seq"
	"swdual/internal/shard"
	"swdual/internal/synth"
)

// Fault injection: a shard server dying mid-search must surface as a
// prompt, descriptive error at the coordinator — never a hang — with
// contexts canceled, Close idempotent, and no goroutine left behind.

// gateWorker blocks in Run until released, pinning a search in flight
// deterministically. Safe for any number of goroutines.
type gateWorker struct {
	*master.RateEstimator
	started chan struct{}
	release chan struct{}
	once    sync.Once
}

func newGateWorker() *gateWorker {
	return &gateWorker{RateEstimator: master.NewRateEstimator(1), started: make(chan struct{}), release: make(chan struct{})}
}

func (w *gateWorker) Name() string       { return "gate" }
func (w *gateWorker) Kind() sched.Kind   { return sched.CPU }
func (w *gateWorker) RateGCUPS() float64 { return 1 }
func (w *gateWorker) Run(qi int, q *seq.Sequence, db *seq.Set) master.QueryResult {
	w.once.Do(func() { close(w.started) })
	<-w.release
	return master.QueryResult{QueryIndex: qi, QueryID: q.ID, Worker: "gate", Elapsed: time.Nanosecond, Cells: 1}
}

// killableServer is a serve endpoint whose accepted connections are
// tracked, so a test can sever them all — the observable effect of the
// server process dying.
type killableServer struct {
	l   net.Listener
	eng *engine.Searcher

	mu    sync.Mutex
	conns []net.Conn
}

type trackingListener struct {
	net.Listener
	s *killableServer
}

func (t trackingListener) Accept() (net.Conn, error) {
	nc, err := t.Listener.Accept()
	if err != nil {
		return nil, err
	}
	t.s.mu.Lock()
	t.s.conns = append(t.s.conns, nc)
	t.s.mu.Unlock()
	return nc, nil
}

func startKillableServer(t *testing.T, db *seq.Set, ecfg engine.Config) *killableServer {
	t.Helper()
	eng, err := engine.New(db, ecfg)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		eng.Close()
		t.Fatal(err)
	}
	s := &killableServer{l: l, eng: eng}
	go engine.Serve(trackingListener{Listener: l, s: s}, eng)
	t.Cleanup(func() { s.kill(); eng.Close() })
	return s
}

func (s *killableServer) addr() string { return s.l.Addr().String() }

// kill closes the listener and severs every accepted connection.
func (s *killableServer) kill() {
	s.l.Close()
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, nc := range s.conns {
		nc.Close()
	}
	s.conns = nil
}

// TestCoordinatorSurvivesShardServerDeath pins a remote search in
// flight, kills the shard server, and requires the coordinator Search
// to fail fast with an error naming the lost connection — not hang —
// while Close stays idempotent and the goroutine count returns to its
// baseline.
func TestCoordinatorSurvivesShardServerDeath(t *testing.T) {
	before := runtime.NumGoroutine()
	db := synth.RandomSet(alphabet.Protein, 16, 10, 60, 5001)
	queries := synth.RandomSet(alphabet.Protein, 4, 20, 50, 5002)

	gw := newGateWorker()
	ranges := shard.RangesFor(db, 2, shard.Contiguous)
	// Shard 0 is a healthy in-process engine; shard 1 is remote and will
	// die mid-search, its gate worker pinning the request in flight.
	eng0, err := engine.New(db.Slice(ranges[0].Lo, ranges[0].Hi), engine.Config{CPUs: 1, GPUs: 0, TopK: 3})
	if err != nil {
		t.Fatal(err)
	}
	srv := startKillableServer(t, db.Slice(ranges[1].Lo, ranges[1].Hi), engine.Config{
		Workers: []master.Worker{gw}, TopK: 3, Policy: master.PolicySelfScheduling,
	})
	rb, err := Dial(srv.addr(), db.Slice(ranges[1].Lo, ranges[1].Hi).Checksum())
	if err != nil {
		t.Fatal(err)
	}
	s, err := shard.WithBackends(db, shard.Contiguous, ranges, []engine.Backend{eng0, rb}, 3)
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() {
		_, err := s.Search(context.Background(), queries, engine.SearchOptions{})
		done <- err
	}()
	<-gw.started // the remote shard provably holds the search in flight
	srv.kill()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("search succeeded though a shard server died mid-flight")
		}
		if !strings.Contains(err.Error(), "shard 1") || !strings.Contains(err.Error(), "connection lost") {
			t.Fatalf("error does not describe the dead shard: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("coordinator hung on a dead shard server")
	}
	close(gw.release) // let the pinned server-side task drain
	srv.eng.Close()   // retire the dead server's pool before the leak check

	// Close is idempotent and concurrent-safe even with a dead backend.
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.Close()
		}()
	}
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatalf("close after close: %v", err)
	}

	// Searches on the closed coordinator fail, not hang.
	if _, err := s.Search(context.Background(), queries, engine.SearchOptions{}); err == nil {
		t.Fatal("search after close succeeded")
	}

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
}

// TestRemoteSearchHonorsContext cancels a pinned remote search and
// requires the prompt context error, the connection staying usable for
// the next search, and the server-side request context being canceled.
func TestRemoteSearchHonorsContext(t *testing.T) {
	db := synth.RandomSet(alphabet.Protein, 10, 10, 60, 5101)
	queries := synth.RandomSet(alphabet.Protein, 3, 20, 50, 5102)
	gw := newGateWorker()
	srv := startKillableServer(t, db, engine.Config{
		Workers: []master.Worker{gw}, TopK: 3, Policy: master.PolicySelfScheduling,
	})
	b, err := Dial(srv.addr(), db.Checksum())
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := b.Search(ctx, queries, engine.SearchOptions{})
		done <- err
	}()
	<-gw.started
	cancel()
	select {
	case err := <-done:
		if err != context.Canceled {
			t.Fatalf("canceled remote search returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("canceled remote search did not return")
	}

	// Release the gate: the server finishes the canceled request (the
	// client discards the late answer) and must serve the next one.
	close(gw.release)
	rep, err := b.Search(context.Background(), queries, engine.SearchOptions{})
	if err != nil {
		t.Fatalf("search after cancellation: %v", err)
	}
	if len(rep.Results) != queries.Len() {
		t.Fatalf("%d results after cancellation, want %d", len(rep.Results), queries.Len())
	}
}

// TestBackendCloseIsIdempotent closes one Backend from several
// goroutines, then checks calls fail cleanly afterwards.
func TestBackendCloseIsIdempotent(t *testing.T) {
	db := synth.RandomSet(alphabet.Protein, 8, 10, 40, 5201)
	srv := startKillableServer(t, db, engine.Config{CPUs: 1, GPUs: 0, TopK: 3})
	b, err := Dial(srv.addr(), 0)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := b.Close(); err != nil {
				t.Errorf("close: %v", err)
			}
		}()
	}
	wg.Wait()
	if err := b.Close(); err != nil {
		t.Fatalf("close after close: %v", err)
	}
	queries := synth.RandomSet(alphabet.Protein, 1, 20, 30, 5202)
	if _, err := b.Search(context.Background(), queries, engine.SearchOptions{}); err == nil {
		t.Fatal("search on closed backend succeeded")
	}
	if _, err := b.Plan([]int{10}); err == nil {
		t.Fatal("plan on closed backend succeeded")
	}
}

// TestDialBackendsDoNotLeakGoroutines cycles dial/search/close and
// requires the goroutine count to return to its baseline — the read
// loop and the server-side session goroutines must all exit.
func TestDialBackendsDoNotLeakGoroutines(t *testing.T) {
	db := synth.RandomSet(alphabet.Protein, 10, 10, 60, 5301)
	srv := startKillableServer(t, db, engine.Config{CPUs: 1, GPUs: 1, TopK: 3})
	before := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		b, err := Dial(srv.addr(), db.Checksum())
		if err != nil {
			t.Fatal(err)
		}
		queries := synth.RandomSet(alphabet.Protein, 2, 20, 50, int64(5400+i))
		if _, err := b.Search(context.Background(), queries, engine.SearchOptions{}); err != nil {
			t.Fatal(err)
		}
		if err := b.Close(); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
}

// TestTwoShardDeathsAttributeTheRealCause kills two shard servers in
// the same scatter. Regression: the gather used to return whichever
// error it saw first, so a shard canceled collaterally (context
// canceled after a sibling's real failure) could mask the root cause.
// Whichever shard loses the race, the surfaced error must name a shard
// and carry the lost connection — never a bare context error.
func TestTwoShardDeathsAttributeTheRealCause(t *testing.T) {
	for round := 0; round < 3; round++ {
		db := synth.RandomSet(alphabet.Protein, 18, 10, 60, int64(6001+round))
		queries := synth.RandomSet(alphabet.Protein, 3, 20, 50, int64(6101+round))
		gw0, gw1 := newGateWorker(), newGateWorker()
		ranges := shard.RangesFor(db, 3, shard.Contiguous)
		eng0, err := engine.New(db.Slice(ranges[0].Lo, ranges[0].Hi), engine.Config{CPUs: 1, GPUs: 0, TopK: 3})
		if err != nil {
			t.Fatal(err)
		}
		srv1 := startKillableServer(t, db.Slice(ranges[1].Lo, ranges[1].Hi), engine.Config{
			Workers: []master.Worker{gw0}, TopK: 3, Policy: master.PolicySelfScheduling,
		})
		srv2 := startKillableServer(t, db.Slice(ranges[2].Lo, ranges[2].Hi), engine.Config{
			Workers: []master.Worker{gw1}, TopK: 3, Policy: master.PolicySelfScheduling,
		})
		rb1, err := Dial(srv1.addr(), db.Slice(ranges[1].Lo, ranges[1].Hi).Checksum())
		if err != nil {
			t.Fatal(err)
		}
		rb2, err := Dial(srv2.addr(), db.Slice(ranges[2].Lo, ranges[2].Hi).Checksum())
		if err != nil {
			t.Fatal(err)
		}
		s, err := shard.WithBackends(db, shard.Contiguous, ranges, []engine.Backend{eng0, rb1, rb2}, 3)
		if err != nil {
			t.Fatal(err)
		}

		done := make(chan error, 1)
		go func() {
			_, err := s.Search(context.Background(), queries, engine.SearchOptions{})
			done <- err
		}()
		<-gw0.started
		<-gw1.started // both remote shards provably hold the search
		srv1.kill()
		srv2.kill()
		select {
		case err := <-done:
			if err == nil {
				t.Fatal("search succeeded though two shard servers died")
			}
			msg := err.Error()
			if !strings.Contains(msg, "connection lost") {
				t.Fatalf("round %d: surfaced error is not the root cause: %v", round, err)
			}
			if !strings.Contains(msg, "shard 1") && !strings.Contains(msg, "shard 2") {
				t.Fatalf("round %d: error does not attribute a shard: %v", round, err)
			}
			if err == context.Canceled || strings.HasPrefix(msg, "context canceled") {
				t.Fatalf("round %d: collateral cancellation masked the cause: %v", round, err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("coordinator hung on dead shard servers")
		}
		close(gw0.release)
		close(gw1.release)
		s.Close()
	}
}
