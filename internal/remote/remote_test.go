package remote

import (
	"bytes"
	"context"
	"encoding/binary"
	"net"
	"sync"
	"testing"

	"swdual/internal/alphabet"
	"swdual/internal/engine"
	"swdual/internal/master"
	"swdual/internal/seq"
	"swdual/internal/synth"
)

// startServer runs an engine.Serve endpoint over db and returns its
// address plus the serving engine (for direct local comparison).
func startServer(t *testing.T, db *seq.Set, ecfg engine.Config) (string, *engine.Searcher) {
	t.Helper()
	eng, err := engine.New(db, ecfg)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		eng.Close()
		t.Fatal(err)
	}
	go engine.Serve(l, eng)
	t.Cleanup(func() {
		l.Close()
		eng.Close()
	})
	return l.Addr().String(), eng
}

func hitBytes(t *testing.T, results []master.QueryResult) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, res := range results {
		binary.Write(&buf, binary.LittleEndian, int64(len(res.Hits)))
		for _, h := range res.Hits {
			binary.Write(&buf, binary.LittleEndian, int64(h.SeqIndex))
			binary.Write(&buf, binary.LittleEndian, int64(h.Score))
			buf.WriteString(h.SeqID)
		}
	}
	return buf.Bytes()
}

// TestBackendMatchesLocalEngine: one Backend, many concurrent in-flight
// searches on the one connection, every result byte-identical to the
// serving engine's own local answer.
func TestBackendMatchesLocalEngine(t *testing.T) {
	db := synth.RandomSet(alphabet.Protein, 30, 10, 120, 4001)
	addr, eng := startServer(t, db, engine.Config{CPUs: 1, GPUs: 1, TopK: 5})
	b, err := Dial(addr, db.Checksum())
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	if b.Checksum() != eng.Checksum() {
		t.Fatalf("cached checksum %08x != engine %08x", b.Checksum(), eng.Checksum())
	}
	if got, want := len(b.DBLengths()), db.Len(); got != want {
		t.Fatalf("%d lengths, want %d", got, want)
	}
	for i, l := range b.DBLengths() {
		if l != db.Seqs[i].Len() {
			t.Fatalf("length %d: %d, want %d", i, l, db.Seqs[i].Len())
		}
	}
	if b.Alphabet() != alphabet.Protein {
		t.Fatalf("alphabet %v", b.Alphabet().Name())
	}

	const concurrent = 8
	var wg sync.WaitGroup
	for i := 0; i < concurrent; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			queries := synth.RandomSet(alphabet.Protein, 3, 20, 90, int64(4100+i))
			got, err := b.Search(context.Background(), queries, engine.SearchOptions{})
			if err != nil {
				t.Errorf("client %d: %v", i, err)
				return
			}
			want, err := eng.Search(context.Background(), queries, engine.SearchOptions{})
			if err != nil {
				t.Errorf("client %d local: %v", i, err)
				return
			}
			if !bytes.Equal(hitBytes(t, got.Results), hitBytes(t, want.Results)) {
				t.Errorf("client %d: remote hits differ from local", i)
			}
		}(i)
	}
	wg.Wait()
	if st := b.Stats(); st.Searches < concurrent {
		t.Fatalf("server stats report %d searches for %d clients", st.Searches, concurrent)
	}
}

// TestBackendTopKOption: the per-request cap crosses the wire.
func TestBackendTopKOption(t *testing.T) {
	db := synth.RandomSet(alphabet.Protein, 20, 10, 80, 4201)
	addr, _ := startServer(t, db, engine.Config{CPUs: 1, GPUs: 0, TopK: 6})
	b, err := Dial(addr, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	queries := synth.RandomSet(alphabet.Protein, 2, 20, 60, 4202)
	rep, err := b.Search(context.Background(), queries, engine.SearchOptions{TopK: 2})
	if err != nil {
		t.Fatal(err)
	}
	for qi, r := range rep.Results {
		if len(r.Hits) != 2 {
			t.Fatalf("query %d: %d hits, want 2", qi, len(r.Hits))
		}
	}
}

// TestBackendPlanStatsChecksum round-trips the Plan, Stats and Checksum
// frames against the serving engine's own answers.
func TestBackendPlanStatsChecksum(t *testing.T) {
	db := synth.RandomSet(alphabet.Protein, 25, 20, 150, 4301)
	addr, eng := startServer(t, db, engine.Config{CPUs: 2, GPUs: 1, TopK: 5})
	b, err := Dial(addr, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	lens := []int{30, 80, 120}
	got, err := b.Plan(lens)
	if err != nil {
		t.Fatal(err)
	}
	want, err := eng.Plan(lens)
	if err != nil {
		t.Fatal(err)
	}
	if got == nil || want == nil {
		t.Fatalf("nil schedule (got %v, want %v)", got, want)
	}
	if got.Algorithm != want.Algorithm || got.Makespan != want.Makespan {
		t.Fatalf("plan %s/%v, want %s/%v", got.Algorithm, got.Makespan, want.Algorithm, want.Makespan)
	}
	if len(got.CPULoads) != len(want.CPULoads) || len(got.GPULoads) != len(want.GPULoads) {
		t.Fatalf("plan loads %d/%d, want %d/%d", len(got.CPULoads), len(got.GPULoads), len(want.CPULoads), len(want.GPULoads))
	}
	if got.IdleFraction() != want.IdleFraction() {
		t.Fatalf("idle fraction %v, want %v", got.IdleFraction(), want.IdleFraction())
	}

	sum, err := b.ServerChecksum(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if sum != eng.Checksum() {
		t.Fatalf("live checksum %08x, want %08x", sum, eng.Checksum())
	}

	st := b.Stats()
	est := eng.Stats()
	if st.DBSequences != est.DBSequences || st.DBChecksum != est.DBChecksum ||
		st.Prepared != est.Prepared || st.WorkersStarted != est.WorkersStarted {
		t.Fatalf("stats %+v, want %+v", st, est)
	}
	// The per-worker rate snapshot must cross the wire intact: same
	// workers, kinds and advertised rates as the server engine reports
	// locally (observed rates are live and may move between the calls).
	if len(st.Workers) != len(est.Workers) {
		t.Fatalf("%d worker rates over the wire, server reports %d", len(st.Workers), len(est.Workers))
	}
	for i := range st.Workers {
		got, want := st.Workers[i], est.Workers[i]
		if got.Name != want.Name || got.Kind != want.Kind || got.AdvertisedGCUPS != want.AdvertisedGCUPS {
			t.Fatalf("worker rate %d: %+v over the wire, server reports %+v", i, got, want)
		}
	}
}

// TestPipelinedServerMatchesSequentialServer runs the same concurrent
// client mix against two serve endpoints over the same database — one
// whose engine pipelines waves, one running the strict fence — and
// requires byte-identical hits from both. The pipelining counters must
// also cross the wire in the Stats frame.
func TestPipelinedServerMatchesSequentialServer(t *testing.T) {
	db := synth.RandomSet(alphabet.Protein, 30, 10, 120, 4801)
	onAddr, _ := startServer(t, db, engine.Config{CPUs: 1, GPUs: 1, TopK: 5, Pipeline: engine.PipelineOn})
	offAddr, _ := startServer(t, db, engine.Config{CPUs: 1, GPUs: 1, TopK: 5, Pipeline: engine.PipelineOff})
	on, err := Dial(onAddr, db.Checksum())
	if err != nil {
		t.Fatal(err)
	}
	defer on.Close()
	off, err := Dial(offAddr, db.Checksum())
	if err != nil {
		t.Fatal(err)
	}
	defer off.Close()

	const concurrent = 6
	for round := 0; round < 2; round++ {
		var wg sync.WaitGroup
		gots := make([]*master.Report, concurrent)
		wants := make([]*master.Report, concurrent)
		errs := make([]error, 2*concurrent)
		for i := 0; i < concurrent; i++ {
			queries := synth.RandomSet(alphabet.Protein, 2, 20, 90, int64(4900+10*round+i))
			wg.Add(2)
			go func(i int) {
				defer wg.Done()
				gots[i], errs[2*i] = on.Search(context.Background(), queries, engine.SearchOptions{})
			}(i)
			go func(i int) {
				defer wg.Done()
				wants[i], errs[2*i+1] = off.Search(context.Background(), queries, engine.SearchOptions{})
			}(i)
		}
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				t.Fatalf("round %d call %d: %v", round, i, err)
			}
		}
		for i := range gots {
			if !bytes.Equal(hitBytes(t, gots[i].Results), hitBytes(t, wants[i].Results)) {
				t.Fatalf("round %d client %d: pipelined-server hits differ from fenced-server", round, i)
			}
		}
	}
	if st := off.Stats(); st.PipelinedWaves != 0 {
		t.Fatalf("fenced server reported pipelined waves over the wire: %+v", st)
	}
	// The pipelined server may or may not have overlapped (scheduling
	// races), but the counters must be consistent either way.
	if st := on.Stats(); st.PipelinedWaves > 0 && st.OverlapNanos == 0 {
		t.Fatalf("pipelined waves without overlap time over the wire: %+v", st)
	}
}

// TestDialRejectsChecksumMismatch: the skew guard fires at dial, on
// both ends (the server refuses the Hello, the client refuses the
// Welcome — either way Dial errors).
func TestDialRejectsChecksumMismatch(t *testing.T) {
	db := synth.RandomSet(alphabet.Protein, 10, 10, 60, 4401)
	addr, _ := startServer(t, db, engine.Config{CPUs: 1, GPUs: 0})
	if _, err := Dial(addr, db.Checksum()+1); err == nil {
		t.Fatal("checksum mismatch accepted at dial")
	}
	// A matching checksum still dials fine afterwards.
	b, err := Dial(addr, db.Checksum())
	if err != nil {
		t.Fatalf("server unhealthy after rejected dial: %v", err)
	}
	b.Close()
}

// TestBackendRejectsForeignAlphabet: queries encoded with a different
// alphabet than the server database must be refused client-side.
func TestBackendRejectsForeignAlphabet(t *testing.T) {
	db := synth.RandomSet(alphabet.Protein, 8, 10, 40, 4501)
	addr, _ := startServer(t, db, engine.Config{CPUs: 1, GPUs: 0})
	b, err := Dial(addr, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	dna := seq.NewSet(alphabet.DNA)
	if err := dna.Add("q", "", []byte("ACGT")); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Search(context.Background(), dna, engine.SearchOptions{}); err == nil {
		t.Fatal("foreign alphabet accepted")
	}
}

// TestConcurrentRequestIDsStayDistinct floods one connection with many
// tiny searches of distinct shapes and checks every response landed on
// the request that asked for it (the query count is the witness).
func TestConcurrentRequestIDsStayDistinct(t *testing.T) {
	db := synth.RandomSet(alphabet.Protein, 12, 10, 60, 4601)
	addr, _ := startServer(t, db, engine.Config{CPUs: 2, GPUs: 0, TopK: 3})
	b, err := Dial(addr, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			n := 1 + i%4
			queries := synth.RandomSet(alphabet.Protein, n, 15, 40, int64(4700+i))
			rep, err := b.Search(context.Background(), queries, engine.SearchOptions{})
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			if len(rep.Results) != n {
				t.Errorf("request %d: %d results, want %d", i, len(rep.Results), n)
				return
			}
			for qi, r := range rep.Results {
				if r.QueryID != queries.Seqs[qi].ID {
					t.Errorf("request %d: result %d is %s, want %s (cross-request mixup)", i, qi, r.QueryID, queries.Seqs[qi].ID)
				}
			}
		}(i)
	}
	wg.Wait()
}
