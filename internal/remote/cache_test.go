package remote

import (
	"bytes"
	"context"
	"testing"

	"swdual/internal/alphabet"
	"swdual/internal/engine"
	"swdual/internal/synth"
)

// TestCachedServerMatchesUncached is the remote-layer equivalence
// proof: a server engine running with the result cache on must answer
// byte-identically to one running uncached — across repeated identical
// requests from the same client connection — and its cache counters
// must cross the wire in the Stats frame.
func TestCachedServerMatchesUncached(t *testing.T) {
	db := synth.RandomSet(alphabet.Protein, 40, 10, 150, 71)
	queries := synth.RandomSet(alphabet.Protein, 5, 20, 90, 72)

	plainAddr, _ := startServer(t, db, engine.Config{CPUs: 1, GPUs: 1, TopK: 5})
	cachedAddr, _ := startServer(t, db, engine.Config{CPUs: 1, GPUs: 1, TopK: 5, Cache: true})

	plain, err := Dial(plainAddr, db.Checksum())
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	cached, err := Dial(cachedAddr, db.Checksum())
	if err != nil {
		t.Fatal(err)
	}
	defer cached.Close()

	want, err := plain.Search(context.Background(), queries, engine.SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	wantBytes := hitBytes(t, want.Results)
	for round := 0; round < 3; round++ {
		got, err := cached.Search(context.Background(), queries, engine.SearchOptions{})
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if !bytes.Equal(hitBytes(t, got.Results), wantBytes) {
			t.Fatalf("round %d: cached server hits differ from uncached server", round)
		}
	}

	// The new counters cross the wire: the cached server reports its
	// misses and hits; the uncached server reports zeros. Both report
	// their profile-cache occupancy.
	cst := cached.Stats()
	if cst.CacheMisses != 1 || cst.CacheHits != 2 {
		t.Fatalf("cached server misses/hits over the wire %d/%d, want 1/2", cst.CacheMisses, cst.CacheHits)
	}
	if cst.Waves != 1 {
		t.Fatalf("cached server waves %d, want 1", cst.Waves)
	}
	if cst.ProfileEntries != queries.Len() || cst.ProfileMisses == 0 {
		t.Fatalf("profile counters lost in transit: %+v", cst)
	}
	pst := plain.Stats()
	if pst.CacheHits != 0 || pst.CacheMisses != 0 || pst.CollapsedSearches != 0 {
		t.Fatalf("uncached server reports cache traffic: %+v", pst)
	}
	if pst.Waves != 1 || pst.Searches != 1 {
		t.Fatalf("uncached server stats: %+v", pst)
	}
}
