// Package remote backs a database shard with another process. A Backend
// dials an engine.Serve endpoint, speaks the multiplexed wire dialect
// (request ids, so any number of calls are in flight on one connection),
// and implements the same engine.Backend interface the in-process
// Searcher does — so the sharded scatter/gather facade cannot tell a
// local shard from one living across the network. This is the transport
// swap the paper's §IV master-slave model was built for: MUSIC runs the
// same hybrid alignment environment distributed over a cluster, and
// Nguyen & Lavenier's fine-grained search engine partitions the bank
// across networked nodes the same way.
package remote

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"swdual/internal/alphabet"
	"swdual/internal/engine"
	"swdual/internal/master"
	"swdual/internal/sched"
	"swdual/internal/seq"
	"swdual/internal/wire"
)

// Backend is a client for one engine.Serve endpoint. It is safe for any
// number of goroutines; concurrent Search calls multiplex over the one
// connection and the server coalesces them into shared scheduling waves.
// A Backend must be Closed to release the connection. Once the
// connection is lost every call — in flight or future — fails with a
// descriptive error; the Backend does not reconnect.
type Backend struct {
	addr string
	nc   net.Conn
	c    *wire.Conn
	wmu  sync.Mutex // guards c.Send

	// Database description fetched at Dial, immutable afterwards.
	alpha    *alphabet.Alphabet
	lengths  []int
	checksum uint32

	nextID  atomic.Uint64
	mu      sync.Mutex
	pending map[uint64]chan any // nil once the connection is down
	readErr error               // set before readDone closes

	readDone  chan struct{}
	closeOnce sync.Once
	closeErr  error
}

var _ engine.Backend = (*Backend)(nil)

// rpcTimeout bounds the interface calls that carry no caller context
// (Plan, Stats): a wedged server whose TCP connection stays open must
// not block a coordinator forever. Generous — scheduling a plan is
// subsecond work; only a stalled peer ever gets near it.
const rpcTimeout = 30 * time.Second

// DefaultDialTimeout bounds Dial — TCP connect plus the whole
// handshake (Hello/Welcome and the Info exchange). A blackholed
// endpoint, or one that accepts the connection and then never speaks,
// must fail the dial instead of hanging coordinator construction.
const DefaultDialTimeout = 10 * time.Second

// ErrConnectionLost marks every failure caused by the connection to the
// shard server going away — the read loop dying, a send on a closed
// socket, a call finding the session already down. Failover layers
// (internal/replica) match it with errors.Is to distinguish "this
// replica is gone, try another" from errors that would fail identically
// on every replica (bad queries, alphabet mismatch, cancellation).
var ErrConnectionLost = errors.New("connection lost")

// Dial connects to an engine.Serve endpoint and fetches the database
// description (alphabet, sequence lengths, checksum). A non-zero
// wantChecksum is the skew guard: both ends verify it against the
// server's database and the dial fails on mismatch, so a coordinator
// never scatters queries to a shard holding different sequences.
// Connect and handshake together are bounded by DefaultDialTimeout;
// use DialTimeout to choose the bound.
func Dial(addr string, wantChecksum uint32) (*Backend, error) {
	return DialTimeout(addr, wantChecksum, DefaultDialTimeout)
}

// DialTimeout is Dial with an explicit bound covering the TCP connect
// and the handshake (timeout <= 0 selects DefaultDialTimeout). The
// bound exists for the server that is reachable but wedged: a listener
// that accepts and never completes the handshake would otherwise hang
// the caller forever.
func DialTimeout(addr string, wantChecksum uint32, timeout time.Duration) (*Backend, error) {
	if timeout <= 0 {
		timeout = DefaultDialTimeout
	}
	deadline := time.Now().Add(timeout)
	d := net.Dialer{Deadline: deadline}
	nc, err := d.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("remote %s: %w", addr, err)
	}
	b, err := newBackend(addr, nc, wantChecksum, deadline)
	if err != nil {
		nc.Close()
		return nil, err
	}
	return b, nil
}

// newBackend runs the handshake and the synchronous Info exchange under
// the dial deadline, then clears the deadline and starts the read loop.
func newBackend(addr string, nc net.Conn, wantChecksum uint32, deadline time.Time) (*Backend, error) {
	b := &Backend{
		addr:     addr,
		nc:       nc,
		c:        wire.NewConn(nc),
		pending:  map[uint64]chan any{},
		readDone: make(chan struct{}),
	}
	// The dial deadline covers the whole handshake: every Send and Recv
	// below fails once it passes, so a server that accepted the
	// connection and went mute cannot wedge the caller.
	if !deadline.IsZero() {
		if err := nc.SetDeadline(deadline); err != nil {
			return nil, fmt.Errorf("remote %s: %w", addr, err)
		}
	}
	if err := b.c.Send(&wire.Hello{Version: wire.Version, Name: "remote", DBChecksum: wantChecksum}); err != nil {
		return nil, fmt.Errorf("remote %s: %w", addr, err)
	}
	msg, err := b.c.Recv()
	if err != nil {
		return nil, fmt.Errorf("remote %s: %w", addr, err)
	}
	switch m := msg.(type) {
	case *wire.Welcome:
		if wantChecksum != 0 && m.DBChecksum != wantChecksum {
			return nil, fmt.Errorf("remote %s: server database checksum %08x, want %08x", addr, m.DBChecksum, wantChecksum)
		}
	case *wire.ErrorMsg:
		return nil, fmt.Errorf("remote %s: server: %s", addr, m.Text)
	default:
		return nil, fmt.Errorf("remote %s: expected Welcome, got %T", addr, msg)
	}
	// The InfoRequest doubles as the dialect switch: its id frame tells
	// the server this connection is a multiplexed session.
	if err := b.c.Send(&wire.InfoRequest{ID: b.nextID.Add(1)}); err != nil {
		return nil, fmt.Errorf("remote %s: %w", addr, err)
	}
	msg, err = b.c.Recv()
	if err != nil {
		return nil, fmt.Errorf("remote %s: %w", addr, err)
	}
	info, ok := msg.(*wire.Info)
	if !ok {
		return nil, fmt.Errorf("remote %s: expected Info, got %T", addr, msg)
	}
	if b.alpha, err = alphabetByName(info.Alphabet); err != nil {
		return nil, fmt.Errorf("remote %s: %w", addr, err)
	}
	if wantChecksum != 0 && info.Checksum != wantChecksum {
		return nil, fmt.Errorf("remote %s: server database checksum %08x, want %08x", addr, info.Checksum, wantChecksum)
	}
	b.checksum = info.Checksum
	b.lengths = make([]int, len(info.Lengths))
	for i, l := range info.Lengths {
		b.lengths[i] = int(l)
	}
	// Clear the deadline before the read loop starts: a session lives
	// arbitrarily long, and per-call bounds come from caller contexts.
	if err := nc.SetDeadline(time.Time{}); err != nil {
		return nil, fmt.Errorf("remote %s: %w", addr, err)
	}
	go b.read()
	return b, nil
}

func alphabetByName(name string) (*alphabet.Alphabet, error) {
	for _, a := range []*alphabet.Alphabet{alphabet.Protein, alphabet.DNA, alphabet.RNA} {
		if a.Name() == name {
			return a, nil
		}
	}
	return nil, fmt.Errorf("unknown server alphabet %q", name)
}

// Addr returns the dialed address.
func (b *Backend) Addr() string { return b.addr }

// Alphabet returns the server database's alphabet.
func (b *Backend) Alphabet() *alphabet.Alphabet { return b.alpha }

// DBLengths returns the server database's sequence lengths, fetched once
// at Dial.
func (b *Backend) DBLengths() []int { return b.lengths }

// Checksum fingerprints the server's database — the value verified
// against the coordinator's local slice at Dial, cached so the sharding
// facade's skew guard needs no round trip.
func (b *Backend) Checksum() uint32 { return b.checksum }

// read is the connection's single reader: it routes every response frame
// to the call that registered its id. Responses for retired ids (the
// caller gave up after cancellation) are discarded. On any connection
// error the loop records it and wakes every waiter.
func (b *Backend) read() {
	for {
		msg, err := b.c.Recv()
		if err != nil {
			b.down(fmt.Errorf("remote %s: %w: %v", b.addr, ErrConnectionLost, err))
			return
		}
		id, ok := responseID(msg)
		if !ok {
			if em, isErr := msg.(*wire.ErrorMsg); isErr {
				b.down(fmt.Errorf("remote %s: server: %s", b.addr, em.Text))
			} else {
				b.down(fmt.Errorf("remote %s: unexpected %T", b.addr, msg))
			}
			return
		}
		b.mu.Lock()
		ch := b.pending[id]
		delete(b.pending, id)
		b.mu.Unlock()
		if ch != nil {
			ch <- msg
		}
	}
}

// responseID extracts the request id of a multiplexed response frame.
func responseID(msg any) (uint64, bool) {
	switch m := msg.(type) {
	case *wire.SearchResult:
		return m.ID, true
	case *wire.ReqError:
		return m.ID, true
	case *wire.StatsResponse:
		return m.ID, true
	case *wire.PlanResponse:
		return m.ID, true
	case *wire.ChecksumResponse:
		return m.ID, true
	case *wire.Info:
		return m.ID, true
	}
	return 0, false
}

// down marks the connection dead: no new calls register, every waiter
// wakes with the recorded error.
func (b *Backend) down(err error) {
	b.mu.Lock()
	if b.readErr == nil {
		b.readErr = err
	}
	b.pending = nil
	b.mu.Unlock()
	close(b.readDone)
}

// lostErr reports why the connection is unusable. The error always
// matches ErrConnectionLost: down() wraps the sentinel into readErr,
// and a session torn down by Close gets the bare form here.
func (b *Backend) lostErr() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.readErr != nil {
		return b.readErr
	}
	return fmt.Errorf("remote %s: %w", b.addr, ErrConnectionLost)
}

func (b *Backend) send(msg any) error {
	b.wmu.Lock()
	defer b.wmu.Unlock()
	return b.c.Send(msg)
}

// call sends one request frame and waits for the response carrying the
// same id. On ctx cancellation it sends a best-effort Cancel, retires
// the id locally, and returns ctx.Err() — the server's eventual answer
// is discarded by the read loop.
func (b *Backend) call(ctx context.Context, id uint64, req any) (any, error) {
	ch := make(chan any, 1)
	b.mu.Lock()
	if b.pending == nil {
		b.mu.Unlock()
		return nil, b.lostErr()
	}
	b.pending[id] = ch
	b.mu.Unlock()
	retire := func() {
		b.mu.Lock()
		if b.pending != nil {
			delete(b.pending, id)
		}
		b.mu.Unlock()
	}
	if err := b.send(req); err != nil {
		retire()
		// A failed send means the socket is gone (our own frames always
		// marshal); report it as the connection loss it is so failover
		// layers recognize it.
		return nil, fmt.Errorf("remote %s: %w: %v", b.addr, ErrConnectionLost, err)
	}
	select {
	case resp := <-ch:
		return resp, nil
	case <-ctx.Done():
		// Async so a peer that stopped reading (write lock held by a
		// stalled sender) cannot delay the caller's prompt return.
		go b.send(&wire.Cancel{ID: id})
		retire()
		return nil, ctx.Err()
	case <-b.readDone:
		return nil, b.lostErr()
	}
}

// Search compares the queries against the server's database and returns
// the merged hits, byte-identical to what a local engine.Searcher over
// the same sequences reports. Concurrent calls share the connection;
// ctx cancellation aborts the request on both ends.
func (b *Backend) Search(ctx context.Context, queries *seq.Set, opts engine.SearchOptions) (*master.Report, error) {
	if queries == nil {
		return nil, fmt.Errorf("remote %s: nil query set", b.addr)
	}
	if queries.Alpha != b.alpha {
		return nil, fmt.Errorf("remote %s: query alphabet differs from server database alphabet", b.addr)
	}
	id := b.nextID.Add(1)
	req := &wire.SearchRequest{ID: id, TopK: uint32(opts.TopK), Queries: make([]wire.Query, queries.Len())}
	for qi := range queries.Seqs {
		req.Queries[qi] = wire.Query{ID: queries.Seqs[qi].ID, Residues: queries.Seqs[qi].Residues}
	}
	start := time.Now()
	resp, err := b.call(ctx, id, req)
	if err != nil {
		return nil, err
	}
	switch m := resp.(type) {
	case *wire.SearchResult:
		if len(m.Results) != queries.Len() {
			return nil, fmt.Errorf("remote %s: %d results for %d queries", b.addr, len(m.Results), queries.Len())
		}
		rep := &master.Report{Results: make([]master.QueryResult, len(m.Results))}
		for qi := range m.Results {
			r := &m.Results[qi]
			if int(r.QueryIndex) != qi {
				return nil, fmt.Errorf("remote %s: result %d arrived at position %d", b.addr, r.QueryIndex, qi)
			}
			qr := master.QueryResult{
				QueryIndex: qi,
				QueryID:    queries.Seqs[qi].ID,
				Elapsed:    time.Duration(r.ElapsedNS),
				SimSeconds: r.SimSeconds,
				Cells:      int64(r.Cells),
			}
			for _, h := range r.Hits {
				qr.Hits = append(qr.Hits, master.Hit{SeqIndex: int(h.SeqIndex), SeqID: h.SeqID, Score: int(h.Score)})
			}
			rep.Results[qi] = qr
			rep.Cells += qr.Cells
		}
		if wc := m.Coverage; wc != nil {
			// The server answered with partial coverage: rebuild the label
			// so a coordinator stacked above this backend sees the same
			// degraded answer a local caller would.
			cov := &master.Coverage{
				RangesSearched:   int(wc.RangesSearched),
				RangesTotal:      int(wc.RangesTotal),
				ResiduesSearched: int64(wc.ResiduesSearched),
				ResiduesTotal:    int64(wc.ResiduesTotal),
			}
			for _, sk := range wc.Skipped {
				cov.Skipped = append(cov.Skipped, master.SkippedRange{
					Index:  int(sk.Index),
					Lo:     int(sk.Lo),
					Hi:     int(sk.Hi),
					Reason: sk.Reason,
				})
			}
			rep.Coverage = cov
		}
		rep.Wall = time.Since(start)
		if sec := rep.Wall.Seconds(); sec > 0 {
			rep.GCUPS = float64(rep.Cells) / sec / 1e9
		}
		return rep, nil
	case *wire.ReqError:
		return nil, fmt.Errorf("remote %s: %s", b.addr, m.Text)
	}
	return nil, fmt.Errorf("remote %s: unexpected %T", b.addr, resp)
}

// Plan asks the server to run its scheduling policy over hypothetical
// queries of the given lengths. The summary schedule carries the
// algorithm, makespan and per-PE loads; placements stay server-side. A
// server running a dynamic policy returns (nil, nil).
func (b *Backend) Plan(queryLens []int) (*sched.Schedule, error) {
	id := b.nextID.Add(1)
	req := &wire.PlanRequest{ID: id, QueryLens: make([]uint32, len(queryLens))}
	for i, l := range queryLens {
		req.QueryLens[i] = uint32(l)
	}
	ctx, cancel := context.WithTimeout(context.Background(), rpcTimeout)
	defer cancel()
	resp, err := b.call(ctx, id, req)
	if err != nil {
		return nil, err
	}
	switch m := resp.(type) {
	case *wire.PlanResponse:
		if m.Algorithm == "" {
			return nil, nil
		}
		return &sched.Schedule{Algorithm: m.Algorithm, Makespan: m.Makespan, CPULoads: m.CPULoads, GPULoads: m.GPULoads}, nil
	case *wire.ReqError:
		return nil, fmt.Errorf("remote %s: %s", b.addr, m.Text)
	}
	return nil, fmt.Errorf("remote %s: unexpected %T", b.addr, resp)
}

// Stats fetches the server engine's counters. A dead connection reports
// zero counters — Stats has no error channel, and an aggregating caller
// (the sharding facade) must keep working while a shard is down.
func (b *Backend) Stats() engine.Stats {
	id := b.nextID.Add(1)
	ctx, cancel := context.WithTimeout(context.Background(), rpcTimeout)
	defer cancel()
	resp, err := b.call(ctx, id, &wire.StatsRequest{ID: id})
	if err != nil {
		return engine.Stats{}
	}
	m, ok := resp.(*wire.StatsResponse)
	if !ok {
		return engine.Stats{}
	}
	st := engine.Stats{
		DBSequences:       int(m.DBSequences),
		DBResidues:        int64(m.DBResidues),
		DBChecksum:        m.DBChecksum,
		Prepared:          int(m.Prepared),
		WorkersStarted:    int(m.WorkersStarted),
		Searches:          m.Searches,
		Queries:           m.Queries,
		Waves:             m.Waves,
		BatchedWaves:      m.BatchedWaves,
		PipelinedWaves:    m.PipelinedWaves,
		OverlapNanos:      m.OverlapNanos,
		CacheHits:         m.CacheHits,
		CacheMisses:       m.CacheMisses,
		CacheEvictions:    m.CacheEvictions,
		CollapsedSearches: m.CollapsedSearches,
		ProfileEntries:    int(m.ProfileEntries),
		ProfileHits:       m.ProfileHits,
		ProfileMisses:     m.ProfileMisses,
		ProfileEvictions:  m.ProfileEvictions,
		HedgedSearches:    m.HedgedSearches,
		FailedOver:        m.FailedOver,
		Redials:           m.Redials,
		DegradedSearches:  m.DegradedSearches,
	}
	for _, w := range m.Workers {
		st.Workers = append(st.Workers, engine.WorkerRate{
			Name:            w.Name,
			Kind:            sched.Kind(w.Kind),
			AdvertisedGCUPS: w.AdvertisedGCUPS,
			ObservedGCUPS:   w.ObservedGCUPS,
			Tasks:           w.Tasks,
		})
	}
	return st
}

// ServerChecksum fetches the database fingerprint live (unlike Checksum,
// which returns the value cached at Dial) — a cheap health probe that
// also re-verifies the skew guard.
func (b *Backend) ServerChecksum(ctx context.Context) (uint32, error) {
	id := b.nextID.Add(1)
	resp, err := b.call(ctx, id, &wire.ChecksumRequest{ID: id})
	if err != nil {
		return 0, err
	}
	switch m := resp.(type) {
	case *wire.ChecksumResponse:
		return m.Checksum, nil
	case *wire.ReqError:
		return 0, fmt.Errorf("remote %s: %s", b.addr, m.Text)
	}
	return 0, fmt.Errorf("remote %s: unexpected %T", b.addr, resp)
}

// Close closes the connection; the server observes the drop and cancels
// this session's in-flight requests. It is idempotent and safe to call
// concurrently; in-flight calls fail with a connection-closed error.
// Closing the socket first — rather than sending a graceful Done — is
// deliberate: a Done frame would need the write lock, and a peer that
// stopped reading could then stall Close behind a blocked sender, when
// closing the socket is the very thing that unblocks it.
func (b *Backend) Close() error {
	b.closeOnce.Do(func() {
		b.closeErr = b.nc.Close()
		<-b.readDone
	})
	return b.closeErr
}
