package remote

import (
	"context"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"swdual/internal/alphabet"
	"swdual/internal/engine"
	"swdual/internal/master"
	"swdual/internal/synth"
)

// Regression: Dial used net.Dial with no deadline, so a server that
// accepted the TCP connection but never answered the handshake — a hung
// process, a half-configured load balancer — blocked the caller
// forever. DialTimeout must bound the whole dial, TCP connect and
// handshake both.

// silentListener accepts connections and never writes a byte.
func silentListener(t *testing.T) (addr string, stop func()) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var conns []net.Conn
	go func() {
		for {
			nc, err := l.Accept()
			if err != nil {
				return
			}
			mu.Lock()
			conns = append(conns, nc)
			mu.Unlock()
		}
	}()
	return l.Addr().String(), func() {
		l.Close()
		mu.Lock()
		defer mu.Unlock()
		for _, nc := range conns {
			nc.Close()
		}
	}
}

func TestDialTimeoutOnSilentServer(t *testing.T) {
	addr, stop := silentListener(t)
	defer stop()

	start := time.Now()
	_, err := DialTimeout(addr, 0, 300*time.Millisecond)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("dial against a silent server succeeded")
	}
	if elapsed > 5*time.Second {
		t.Fatalf("dial took %v — the timeout did not bound the handshake", elapsed)
	}
	if !strings.Contains(err.Error(), addr) {
		t.Fatalf("dial error does not name the address: %v", err)
	}
}

func TestDialTimeoutZeroUsesDefault(t *testing.T) {
	// A non-positive timeout must fall back to the default rather than
	// dial with an already-expired deadline.
	addr, stop := silentListener(t)
	stop() // close immediately: connection refused is instant
	if _, err := DialTimeout(addr, 0, -1); err == nil {
		t.Fatal("dial to a closed listener succeeded")
	}
}

func TestDialTimeoutLeavesConnectionUndeadlined(t *testing.T) {
	// The handshake deadline must be cleared once the backend is up: a
	// connection that kept the dial deadline would kill the first
	// search slower than the dial budget. Pin a search well past the
	// dial timeout and require it to succeed.
	db := synth.RandomSet(alphabet.Protein, 8, 10, 40, 5901)
	queries := synth.RandomSet(alphabet.Protein, 1, 20, 30, 5902)
	gw := newGateWorker()
	srv := startKillableServer(t, db, engine.Config{
		Workers: []master.Worker{gw}, TopK: 3, Policy: master.PolicySelfScheduling,
	})
	b, err := DialTimeout(srv.addr(), db.Checksum(), 200*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	go func() {
		<-gw.started
		time.Sleep(600 * time.Millisecond) // well past the dial budget
		close(gw.release)
	}()
	if _, err := b.Search(context.Background(), queries, engine.SearchOptions{}); err != nil {
		t.Fatalf("search slower than the dial timeout failed: %v", err)
	}
}
