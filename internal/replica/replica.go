// Package replica puts N interchangeable backends behind one
// engine.Backend facade, so a database shard keeps answering while its
// servers restart. Every replica serves the identical slice — proven by
// the same per-slice checksum guard the sharded coordinator already
// applies — which is what makes the package's two moves safe:
//
//   - Failover: a call that fails because its replica's connection died
//     is retried on a sibling replica, the dead replica is closed, and a
//     background loop re-dials it with capped exponential backoff plus
//     jitter until it is healthy again (verified by the checksum, and by
//     the live cached-checksum ping when the backend supports it).
//
//   - Hedging: a search that runs past a latency threshold — an EWMA of
//     recent replica latencies, the master.RateEstimator pattern applied
//     to wall time — issues the same search to a second replica and
//     returns the first answer. Because replicas are checksum-proven
//     identical and the merge is deterministic, every answer is
//     byte-identical, so racing two replicas can only shave latency,
//     never change results.
//
// The facade is the unit the sharded scatter/gather composes over: a
// shard.Searcher built on replica.Sets survives one replica death per
// range, where a scatter over raw backends fails the whole search on
// the first lost connection.
package replica

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"swdual/internal/alphabet"
	"swdual/internal/engine"
	"swdual/internal/master"
	"swdual/internal/remote"
	"swdual/internal/sched"
	"swdual/internal/seq"
	"swdual/internal/stats"
)

// Replica is one member of a Set: a live backend, a way to re-create it
// after its connection dies, or both. A nil Backend with a Redial means
// the replica starts down (its server was unreachable at construction)
// and the Set begins re-dialing it immediately; a Backend with a nil
// Redial (an in-process engine, say) fails over but is never revived.
type Replica struct {
	Backend engine.Backend
	Redial  func() (engine.Backend, error)
}

// Prober is the optional live-health interface a backend may implement.
// remote.Backend does: ServerChecksum round-trips a cached-checksum
// ping, so a freshly re-dialed replica is verified to actually answer —
// not merely accept connections — before it rejoins rotation.
type Prober interface {
	ServerChecksum(ctx context.Context) (uint32, error)
}

// Config tunes a Set. The zero value enables hedging with the EWMA
// trigger and the default backoff bounds.
type Config struct {
	// HedgeAfter, when positive, hedges any search still unanswered
	// after this fixed delay, overriding the EWMA trigger. Useful when
	// the workload's latency is known (and in tests, where the EWMA
	// has no history to learn from).
	HedgeAfter time.Duration
	// HedgeFactor scales the EWMA latency into the hedge threshold: a
	// search is hedged once it runs HedgeFactor times longer than the
	// recent average (default 3 — past 3× the mean, the replica is an
	// outlier worth racing).
	HedgeFactor float64
	// MinHedgeDelay floors the EWMA trigger (default 1ms) so a burst of
	// microsecond cache-warm searches cannot make every subsequent
	// search hedge instantly.
	MinHedgeDelay time.Duration
	// DisableHedge turns hedging off; failover and redial still run.
	DisableHedge bool
	// RedialBase and RedialMax bound the reconnect backoff (defaults
	// 50ms and 5s): attempt n waits min(RedialBase·2ⁿ, RedialMax) plus
	// up to half that again in jitter, so a restarting cluster's
	// replicas do not re-dial in lockstep.
	RedialBase time.Duration
	RedialMax  time.Duration
	// ProbeTimeout bounds the post-redial health ping (default 5s).
	ProbeTimeout time.Duration
	// Index is the shard index the coordinator assigned this set (0 for
	// a standalone set). It is informational: ErrRangeUnavailable
	// carries it so a degraded coordinator can say which range of its
	// partition went dark without parsing the set's name.
	Index int
}

// ErrRangeUnavailable is the typed error Search and Plan return when
// every replica of the set is unavailable: the range itself is dark,
// not just one server. A sharded coordinator detects it with errors.As
// to decide between failing the whole search and degrading to partial
// coverage.
//
// Cause is the last underlying failure pre-formatted into a string —
// deliberately not a wrapped error, so an engine.ErrClosed raised by a
// dying replica cannot leak through errors.Is and convince a caller
// that the *coordinator* is closed (the guard the old %v-formatted
// message provided).
type ErrRangeUnavailable struct {
	// Range is the set's label, e.g. "shard 1 [10,20)".
	Range string
	// Index is the coordinator-assigned shard index (Config.Index).
	Index int
	// Replicas is how many replicas the range had, all unavailable.
	Replicas int
	// Cause describes the last failure ("" when every replica was
	// already down and reconnecting, so no fresh error was observed).
	Cause string
}

func (e *ErrRangeUnavailable) Error() string {
	if e.Cause == "" {
		return fmt.Sprintf("replica %s: all %d replicas down (reconnecting)", e.Range, e.Replicas)
	}
	return fmt.Sprintf("replica %s: all %d replicas unavailable: %s", e.Range, e.Replicas, e.Cause)
}

// RangeUnavailable marks the error for coordinators that detect
// degradable failures through a local interface instead of importing
// this package (the shard coordinator does, to avoid an import cycle
// through remote's tests).
func (e *ErrRangeUnavailable) RangeUnavailable() bool { return true }

func (c *Config) setDefaults() {
	if c.HedgeFactor <= 0 {
		c.HedgeFactor = 3
	}
	if c.MinHedgeDelay <= 0 {
		c.MinHedgeDelay = time.Millisecond
	}
	if c.RedialBase <= 0 {
		c.RedialBase = 50 * time.Millisecond
	}
	if c.RedialMax <= 0 {
		c.RedialMax = 5 * time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 5 * time.Second
	}
}

// hedgeMinObservations is how many completed searches the latency EWMA
// must absorb before the adaptive trigger arms: hedging off a sample of
// one would race replicas on noise.
const hedgeMinObservations = 8

// slot is one replica's mutable state: the live backend (nil while
// down), how to revive it, and whether a revival is already running.
type slot struct {
	mu        sync.Mutex
	backend   engine.Backend
	redial    func() (engine.Backend, error)
	redialing bool
}

// Set is N checksum-proven-identical replicas behind one engine.Backend.
// All methods are safe for any number of goroutines. The Set owns its
// backends: Close closes every live replica and stops the redial loops.
type Set struct {
	name     string
	cfg      Config
	checksum uint32
	lengths  []int
	alpha    *alphabet.Alphabet

	slots []*slot
	lat   stats.LatencyEWMA

	searches   atomic.Uint64
	queries    atomic.Uint64
	hedged     atomic.Uint64
	failedOver atomic.Uint64
	redials    atomic.Uint64

	closed    chan struct{}
	closeOnce sync.Once
	closeErr  error
	wg        sync.WaitGroup // redial loops in flight
}

var _ engine.Backend = (*Set)(nil)

// NewSet assembles a replica set. name labels errors (a sharded
// coordinator passes the range, e.g. "shard 2 [20,30)"). At least one
// replica must be live at construction — it describes the slice — and
// every live replica must agree with it on checksum and alphabet (and
// with wantChecksum when non-zero, the caller's own skew guard).
// Replicas that start down begin re-dialing immediately. On success the
// Set owns the backends; on error the caller keeps ownership.
func NewSet(name string, wantChecksum uint32, replicas []Replica, cfg Config) (*Set, error) {
	if len(replicas) == 0 {
		return nil, fmt.Errorf("replica %s: no replicas", name)
	}
	cfg.setDefaults()
	var ref engine.Backend
	refIdx := -1
	for i, r := range replicas {
		if r.Backend == nil && r.Redial == nil {
			return nil, fmt.Errorf("replica %s: replica %d has neither a live backend nor a redial function", name, i)
		}
		if r.Backend != nil && ref == nil {
			ref, refIdx = r.Backend, i
		}
	}
	if ref == nil {
		return nil, fmt.Errorf("replica %s: all %d replicas unreachable at construction", name, len(replicas))
	}
	checksum := ref.Checksum()
	if wantChecksum != 0 && checksum != wantChecksum {
		return nil, fmt.Errorf("replica %s: replica %d database checksum %08x, want %08x (server loaded a different database?)",
			name, refIdx, checksum, wantChecksum)
	}
	for i, r := range replicas {
		if r.Backend == nil || i == refIdx {
			continue
		}
		if got := r.Backend.Checksum(); got != checksum {
			return nil, fmt.Errorf("replica %s: replica %d database checksum %08x, want %08x — replicas must serve the identical slice",
				name, i, got, checksum)
		}
		if r.Backend.Alphabet() != ref.Alphabet() {
			return nil, fmt.Errorf("replica %s: replica %d alphabet %s, want %s",
				name, i, r.Backend.Alphabet().Name(), ref.Alphabet().Name())
		}
	}
	s := &Set{
		name:     name,
		cfg:      cfg,
		checksum: checksum,
		lengths:  append([]int(nil), ref.DBLengths()...),
		alpha:    ref.Alphabet(),
		slots:    make([]*slot, len(replicas)),
		closed:   make(chan struct{}),
	}
	for i, r := range replicas {
		s.slots[i] = &slot{backend: r.Backend, redial: r.Redial}
	}
	// Replicas that were unreachable at construction go straight into
	// the reconnect loop instead of waiting for a search to notice.
	for i, sl := range s.slots {
		if sl.backend == nil {
			sl.redialing = true
			s.wg.Add(1)
			go s.redialLoop(i)
		}
	}
	return s, nil
}

// Name returns the label errors carry (the shard range, typically).
func (s *Set) Name() string { return s.name }

// Replicas returns the number of replica slots (live or down).
func (s *Set) Replicas() int { return len(s.slots) }

// Healthy returns how many replicas are currently live.
func (s *Set) Healthy() int {
	n := 0
	for _, sl := range s.slots {
		sl.mu.Lock()
		if sl.backend != nil {
			n++
		}
		sl.mu.Unlock()
	}
	return n
}

// Checksum fingerprints the slice every replica serves.
func (s *Set) Checksum() uint32 { return s.checksum }

// DBLengths returns the slice's sequence lengths.
func (s *Set) DBLengths() []int { return s.lengths }

// Alphabet returns the slice's alphabet.
func (s *Set) Alphabet() *alphabet.Alphabet { return s.alpha }

func (s *Set) isClosed() bool {
	select {
	case <-s.closed:
		return true
	default:
		return false
	}
}

// pick returns the lowest-indexed live replica not yet tried. Lowest
// index first keeps routing deterministic: replica 0 is the primary
// while healthy, siblings are failover and hedge targets in order.
func (s *Set) pick(tried []bool) (int, engine.Backend, bool) {
	for i, sl := range s.slots {
		if tried[i] {
			continue
		}
		sl.mu.Lock()
		b := sl.backend
		sl.mu.Unlock()
		if b != nil {
			return i, b, true
		}
	}
	return 0, nil, false
}

// markDown retires a replica whose call just failed: the slot empties,
// the dead backend is closed, and the reconnect loop starts (once). The
// identity check makes markDown idempotent per backend — a hedge arm
// and a failover loop may both report the same corpse — and protects a
// replacement backend installed by a racing redial.
func (s *Set) markDown(idx int, failed engine.Backend) {
	sl := s.slots[idx]
	sl.mu.Lock()
	if sl.backend != failed {
		sl.mu.Unlock()
		return
	}
	sl.backend = nil
	start := sl.redial != nil && !sl.redialing && !s.isClosed()
	if start {
		sl.redialing = true
	}
	sl.mu.Unlock()
	failed.Close()
	if start {
		s.wg.Add(1)
		go s.redialLoop(idx)
	}
}

// redialLoop revives one down replica: capped exponential backoff with
// jitter between attempts, checksum verification on every dial, and a
// live health probe (the cached-checksum ping) when the backend
// supports one. It runs until the replica is back or the Set closes.
func (s *Set) redialLoop(idx int) {
	defer s.wg.Done()
	sl := s.slots[idx]
	backoff := s.cfg.RedialBase
	for {
		// Jitter of up to backoff/2 keeps a restarting cluster's
		// replicas from re-dialing in lockstep.
		wait := backoff + time.Duration(rand.Int63n(int64(backoff/2)+1))
		select {
		case <-s.closed:
			sl.mu.Lock()
			sl.redialing = false
			sl.mu.Unlock()
			return
		case <-time.After(wait):
		}
		if b, err := sl.redial(); err == nil {
			if verr := s.verify(b); verr == nil {
				sl.mu.Lock()
				if s.isClosed() {
					sl.redialing = false
					sl.mu.Unlock()
					b.Close()
					return
				}
				sl.backend = b
				sl.redialing = false
				sl.mu.Unlock()
				s.redials.Add(1)
				return
			}
			b.Close()
		}
		if backoff < s.cfg.RedialMax {
			backoff *= 2
			if backoff > s.cfg.RedialMax {
				backoff = s.cfg.RedialMax
			}
		}
	}
}

// verify guards a re-dialed backend before it rejoins rotation: the
// cached checksum must match the slice, and when the backend can be
// pinged live (remote.Backend's cached-checksum probe), the server must
// actually answer with the same fingerprint.
func (s *Set) verify(b engine.Backend) error {
	if got := b.Checksum(); got != s.checksum {
		return fmt.Errorf("replica %s: re-dialed backend checksum %08x, want %08x", s.name, got, s.checksum)
	}
	if p, ok := b.(Prober); ok {
		ctx, cancel := context.WithTimeout(context.Background(), s.cfg.ProbeTimeout)
		defer cancel()
		got, err := p.ServerChecksum(ctx)
		if err != nil {
			return fmt.Errorf("replica %s: health probe: %w", s.name, err)
		}
		if got != s.checksum {
			return fmt.Errorf("replica %s: health probe checksum %08x, want %08x", s.name, got, s.checksum)
		}
	}
	return nil
}

// failover reports whether an error means "this replica is gone, a
// sibling may still answer": a lost connection, a closed backend, or a
// network-level failure. Context errors and logical errors (bad
// queries, alphabet mismatch) would fail identically on every replica
// and pass through instead.
func failover(err error) bool {
	switch {
	case err == nil,
		errors.Is(err, context.Canceled),
		errors.Is(err, context.DeadlineExceeded):
		return false
	case errors.Is(err, remote.ErrConnectionLost),
		errors.Is(err, engine.ErrClosed):
		return true
	}
	var ne net.Error
	return errors.As(err, &ne)
}

// Search routes the query set to the primary replica, fails over to
// siblings on lost connections, and — when the search runs past the
// hedge threshold — races a second replica and returns the first
// answer. Replicas are checksum-proven identical and the merge is
// deterministic, so whichever replica answers, the hits are
// byte-identical. The search fails only when every replica is
// unavailable, with an error naming the set.
func (s *Set) Search(ctx context.Context, queries *seq.Set, opts engine.SearchOptions) (*master.Report, error) {
	if s.isClosed() {
		return nil, engine.ErrClosed
	}
	s.searches.Add(1)
	if queries != nil {
		s.queries.Add(uint64(queries.Len()))
	}
	tried := make([]bool, len(s.slots))
	var lastErr error
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		idx, b, ok := s.pick(tried)
		if !ok {
			break
		}
		tried[idx] = true
		rep, err := s.searchHedged(ctx, idx, b, tried, queries, opts)
		if err == nil {
			return rep, nil
		}
		if !failover(err) {
			return nil, err
		}
		lastErr = err
		s.failedOver.Add(1)
	}
	if s.isClosed() {
		return nil, engine.ErrClosed
	}
	return nil, s.rangeUnavailable(lastErr)
}

// rangeUnavailable builds the typed every-replica-down error for this
// set, flattening lastErr into a string (see ErrRangeUnavailable.Cause
// for why it is not wrapped).
func (s *Set) rangeUnavailable(lastErr error) error {
	e := &ErrRangeUnavailable{Range: s.name, Index: s.cfg.Index, Replicas: len(s.slots)}
	if lastErr != nil {
		e.Cause = lastErr.Error()
	}
	return e
}

// armResult is one replica's answer inside a (possibly hedged) search.
type armResult struct {
	idx int
	b   engine.Backend
	rep *master.Report
	err error
}

// searchHedged runs one search attempt on replica idx, arming the hedge
// timer: if the primary is still unanswered past the threshold, the
// same search goes to the next untried live replica and the first
// answer wins, the loser canceled through the shared arm context. A
// losing arm's backend is only marked down when its error says the
// connection died — slow is not dead.
func (s *Set) searchHedged(ctx context.Context, idx int, b engine.Backend, tried []bool, queries *seq.Set, opts engine.SearchOptions) (*master.Report, error) {
	armCtx, cancelArms := context.WithCancel(ctx)
	defer cancelArms()
	// Buffered to the maximum arm count: a loser's send never blocks,
	// so no goroutine outlives the call.
	results := make(chan armResult, 2)
	run := func(idx int, b engine.Backend) {
		start := time.Now()
		rep, err := b.Search(armCtx, queries, opts)
		if err == nil {
			s.lat.Observe(time.Since(start))
		}
		results <- armResult{idx: idx, b: b, rep: rep, err: err}
	}
	go run(idx, b)
	inFlight := 1
	var timerC <-chan time.Time
	if delay, ok := s.hedgeDelay(); ok {
		t := time.NewTimer(delay)
		defer t.Stop()
		timerC = t.C
	}
	var firstErr error
	for {
		select {
		case r := <-results:
			inFlight--
			if r.err == nil {
				return r.rep, nil
			}
			if failover(r.err) {
				s.markDown(r.idx, r.b)
				// The primary dying while a hedge is still running is a
				// failover: the hedge arm inherits the search.
				if r.idx == idx && inFlight > 0 {
					s.failedOver.Add(1)
				}
			}
			if firstErr == nil {
				firstErr = r.err
			}
			if inFlight > 0 {
				continue // the other arm may still answer
			}
			return nil, firstErr
		case <-timerC:
			timerC = nil
			if j, hb, ok := s.pick(tried); ok {
				tried[j] = true
				s.hedged.Add(1)
				inFlight++
				go run(j, hb)
			}
		case <-ctx.Done():
			// The buffered channel lets the canceled arms finish and
			// exit on their own; nothing waits on them.
			return nil, ctx.Err()
		}
	}
}

// hedgeDelay returns the current hedge threshold, or false when hedging
// cannot or should not fire (disabled, a single replica, or the EWMA
// has not absorbed enough searches to mean anything).
func (s *Set) hedgeDelay() (time.Duration, bool) {
	if s.cfg.DisableHedge || len(s.slots) < 2 {
		return 0, false
	}
	if s.cfg.HedgeAfter > 0 {
		return s.cfg.HedgeAfter, true
	}
	mean, n := s.lat.Snapshot()
	if n < hedgeMinObservations {
		return 0, false
	}
	d := time.Duration(s.cfg.HedgeFactor * float64(mean))
	if d < s.cfg.MinHedgeDelay {
		d = s.cfg.MinHedgeDelay
	}
	return d, true
}

// Plan asks a live replica for the modeled schedule, failing over on
// lost connections like Search (no hedging — planning runs no search).
func (s *Set) Plan(queryLens []int) (*sched.Schedule, error) {
	if s.isClosed() {
		return nil, engine.ErrClosed
	}
	tried := make([]bool, len(s.slots))
	var lastErr error
	for {
		idx, b, ok := s.pick(tried)
		if !ok {
			break
		}
		tried[idx] = true
		sch, err := b.Plan(queryLens)
		if err == nil {
			return sch, nil
		}
		if !failover(err) {
			return nil, err
		}
		s.markDown(idx, b)
		lastErr = err
	}
	return nil, s.rangeUnavailable(lastErr)
}

// Stats describes the slice once (every replica serves the same one)
// and sums the engine counters across live replicas — each prepared its
// own copy and served its own share of the traffic — with worker names
// prefixed r0/, r1/ by slot. The replica-layer counters say how often
// the availability machinery fired: searches hedged, calls failed over,
// dead replicas revived.
func (s *Set) Stats() engine.Stats {
	agg := engine.Stats{
		DBSequences:    len(s.lengths),
		DBChecksum:     s.checksum,
		Searches:       s.searches.Load(),
		Queries:        s.queries.Load(),
		HedgedSearches: s.hedged.Load(),
		FailedOver:     s.failedOver.Load(),
		Redials:        s.redials.Load(),
	}
	for _, l := range s.lengths {
		agg.DBResidues += int64(l)
	}
	for i, sl := range s.slots {
		sl.mu.Lock()
		b := sl.backend
		sl.mu.Unlock()
		if b == nil {
			continue
		}
		st := b.Stats()
		agg.Prepared += st.Prepared
		agg.WorkersStarted += st.WorkersStarted
		agg.Waves += st.Waves
		agg.BatchedWaves += st.BatchedWaves
		agg.PipelinedWaves += st.PipelinedWaves
		agg.OverlapNanos += st.OverlapNanos
		agg.CacheHits += st.CacheHits
		agg.CacheMisses += st.CacheMisses
		agg.CacheEvictions += st.CacheEvictions
		agg.CollapsedSearches += st.CollapsedSearches
		agg.ProfileEntries += st.ProfileEntries
		agg.ProfileHits += st.ProfileHits
		agg.ProfileMisses += st.ProfileMisses
		agg.ProfileEvictions += st.ProfileEvictions
		agg.HedgedSearches += st.HedgedSearches
		agg.FailedOver += st.FailedOver
		agg.Redials += st.Redials
		agg.DegradedSearches += st.DegradedSearches
		for _, w := range st.Workers {
			w.Name = fmt.Sprintf("r%d/%s", i, w.Name)
			agg.Workers = append(agg.Workers, w)
		}
	}
	return agg
}

// Close closes every live replica and stops the reconnect loops. It is
// idempotent and safe for concurrent use; the first error wins. Calls
// after Close fail with engine.ErrClosed.
func (s *Set) Close() error {
	s.closeOnce.Do(func() {
		close(s.closed)
		for _, sl := range s.slots {
			sl.mu.Lock()
			b := sl.backend
			sl.backend = nil
			sl.mu.Unlock()
			if b != nil {
				if err := b.Close(); err != nil && s.closeErr == nil {
					s.closeErr = err
				}
			}
		}
		s.wg.Wait()
	})
	return s.closeErr
}
