package replica

import (
	"context"
	"testing"
	"time"

	"swdual/internal/alphabet"
	"swdual/internal/engine"
	"swdual/internal/master"
	"swdual/internal/sched"
	"swdual/internal/scoring"
	"swdual/internal/seq"
	"swdual/internal/sw"
	"swdual/internal/swvector"
	"swdual/internal/synth"
)

// slowWorker computes real scores through the inter-sequence CPU
// engine, delayed by a fixed per-task stall — a stand-in for a replica
// on an overloaded host: correct, just late.
type slowWorker struct {
	*master.EngineWorker
	delay time.Duration
}

func (w *slowWorker) Run(qi int, q *seq.Sequence, db *seq.Set) master.QueryResult {
	time.Sleep(w.delay)
	return w.EngineWorker.Run(qi, q, db)
}

// RunProfiled must stall too: the pool routes through the profiled path
// whenever the task carries prepared profiles.
func (w *slowWorker) RunProfiled(qi int, q *seq.Sequence, prof *scoring.QueryProfiles, db *seq.Set) master.QueryResult {
	time.Sleep(w.delay)
	return w.EngineWorker.RunProfiled(qi, q, prof, db)
}

// BenchmarkHedgedSearchLatency measures what hedging buys: replica 0
// stalls every task by a fixed delay (overloaded, not dead), replica 1
// is healthy. With hedging off every search waits out the stall; with a
// 1ms hedge threshold the search is re-issued to the healthy sibling
// and ns/op collapses toward the fast replica's latency. The answers
// are byte-identical either way — the delta is tail latency only.
func BenchmarkHedgedSearchLatency(b *testing.B) {
	db := synth.RandomSet(alphabet.Protein, 16, 10, 60, 8001)
	queries := synth.RandomSet(alphabet.Protein, 2, 20, 50, 8002)
	const topK = 5
	const stall = 10 * time.Millisecond
	for _, cfg := range []struct {
		name string
		c    Config
	}{
		{"hedge=off", Config{DisableHedge: true}},
		{"hedge=1ms", Config{HedgeAfter: time.Millisecond}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			sw0 := &slowWorker{
				EngineWorker: master.NewEngineWorker("slow", sched.CPU, swvector.NewInterSeq(sw.DefaultParams()), 8, topK),
				delay:        stall,
			}
			slow, err := engine.New(db, engine.Config{
				Workers: []master.Worker{sw0}, TopK: topK, Policy: master.PolicySelfScheduling,
			})
			if err != nil {
				b.Fatal(err)
			}
			fast, err := engine.New(db, engine.Config{CPUs: 1, GPUs: 0, TopK: topK})
			if err != nil {
				b.Fatal(err)
			}
			set, err := NewSet("bench", db.Checksum(),
				[]Replica{{Backend: slow}, {Backend: fast}}, cfg.c)
			if err != nil {
				b.Fatal(err)
			}
			defer set.Close()
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := set.Search(ctx, queries, engine.SearchOptions{}); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			st := set.Stats()
			b.ReportMetric(float64(st.HedgedSearches)/float64(b.N), "hedges/op")
		})
	}
}
