package replica

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"swdual/internal/alphabet"
	"swdual/internal/engine"
	"swdual/internal/master"
	"swdual/internal/remote"
	"swdual/internal/sched"
	"swdual/internal/seq"
	"swdual/internal/shard"
	"swdual/internal/synth"
)

// The replica suite proves the two claims the package makes: replicated
// searches are byte-identical to unsharded ones (replicas cannot change
// answers, only availability), and a search survives one replica death
// per range where the unreplicated coordinator fails fast.

// hitBytes serializes per-query hits so "byte-identical" is literal.
func hitBytes(t *testing.T, results []master.QueryResult) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, res := range results {
		binary.Write(&buf, binary.LittleEndian, int64(res.QueryIndex))
		buf.WriteString(res.QueryID)
		binary.Write(&buf, binary.LittleEndian, int64(len(res.Hits)))
		for _, h := range res.Hits {
			binary.Write(&buf, binary.LittleEndian, int64(h.SeqIndex))
			binary.Write(&buf, binary.LittleEndian, int64(h.Score))
			buf.WriteString(h.SeqID)
		}
	}
	return buf.Bytes()
}

func searchHits(t *testing.T, s engine.Backend, queries *seq.Set, topK int) []byte {
	t.Helper()
	rep, err := s.Search(context.Background(), queries, engine.SearchOptions{TopK: topK})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != queries.Len() {
		t.Fatalf("%d results for %d queries", len(rep.Results), queries.Len())
	}
	return hitBytes(t, rep.Results)
}

// gateWorker blocks in Run until released, pinning a search in flight
// deterministically.
type gateWorker struct {
	*master.RateEstimator
	started chan struct{}
	release chan struct{}
	once    sync.Once
}

func newGateWorker() *gateWorker {
	return &gateWorker{RateEstimator: master.NewRateEstimator(1), started: make(chan struct{}), release: make(chan struct{})}
}

func (w *gateWorker) Name() string       { return "gate" }
func (w *gateWorker) Kind() sched.Kind   { return sched.CPU }
func (w *gateWorker) RateGCUPS() float64 { return 1 }
func (w *gateWorker) Run(qi int, q *seq.Sequence, db *seq.Set) master.QueryResult {
	w.once.Do(func() { close(w.started) })
	<-w.release
	return master.QueryResult{QueryIndex: qi, QueryID: q.ID, Worker: "gate", Elapsed: time.Nanosecond, Cells: 1}
}

// killableServer is a serve endpoint whose accepted connections are
// tracked, so a test can sever them all — the observable effect of the
// replica's server process dying.
type killableServer struct {
	l   net.Listener
	eng *engine.Searcher

	mu    sync.Mutex
	conns []net.Conn
}

type trackingListener struct {
	net.Listener
	s *killableServer
}

func (t trackingListener) Accept() (net.Conn, error) {
	nc, err := t.Listener.Accept()
	if err != nil {
		return nil, err
	}
	t.s.mu.Lock()
	t.s.conns = append(t.s.conns, nc)
	t.s.mu.Unlock()
	return nc, nil
}

func startKillableServer(t *testing.T, db *seq.Set, ecfg engine.Config) *killableServer {
	t.Helper()
	eng, err := engine.New(db, ecfg)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		eng.Close()
		t.Fatal(err)
	}
	s := &killableServer{l: l, eng: eng}
	go engine.Serve(trackingListener{Listener: l, s: s}, eng)
	t.Cleanup(func() { s.kill(); eng.Close() })
	return s
}

func (s *killableServer) addr() string { return s.l.Addr().String() }

func (s *killableServer) kill() {
	s.l.Close()
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, nc := range s.conns {
		nc.Close()
	}
	s.conns = nil
}

func waitNoLeak(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
}

// TestReplicatedShardedMatchesUnsharded is the acceptance bar: shard
// counts 1, 2 and 4, each range held by two replicas — one remote, one
// in-process — must gather hits byte-identical to a single unsharded
// engine over the whole database.
func TestReplicatedShardedMatchesUnsharded(t *testing.T) {
	const topK = 5
	db := synth.RandomSet(alphabet.Protein, 26, 10, 110, 7001)
	queries := synth.RandomSet(alphabet.Protein, 3, 20, 90, 7002)
	ecfg := engine.Config{CPUs: 1, GPUs: 1, TopK: topK}

	ref, err := engine.New(db, ecfg)
	if err != nil {
		t.Fatal(err)
	}
	want := searchHits(t, ref, queries, 0)
	ref.Close()

	for _, shards := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			ranges := shard.RangesFor(db, shards, shard.Contiguous)
			backends := make([]engine.Backend, len(ranges))
			for i, r := range ranges {
				slice := db.Slice(r.Lo, r.Hi)
				srv := startKillableServer(t, slice, ecfg)
				rb, err := remote.Dial(srv.addr(), slice.Checksum())
				if err != nil {
					t.Fatal(err)
				}
				local, err := engine.New(slice, ecfg)
				if err != nil {
					t.Fatal(err)
				}
				set, err := NewSet(fmt.Sprintf("shard %d [%d,%d)", i, r.Lo, r.Hi), slice.Checksum(),
					[]Replica{{Backend: rb}, {Backend: local}}, Config{})
				if err != nil {
					t.Fatal(err)
				}
				backends[i] = set
			}
			s, err := shard.WithBackends(db, shard.Contiguous, ranges, backends, topK)
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			// Two rounds: the second exercises warmed EWMA/rate state.
			for round := 0; round < 2; round++ {
				if got := searchHits(t, s, queries, 0); !bytes.Equal(got, want) {
					t.Fatalf("round %d: replicated sharded hits differ from unsharded engine", round)
				}
			}
			if s.Checksum() != db.Checksum() {
				t.Fatalf("replicated facade checksum %08x != database %08x", s.Checksum(), db.Checksum())
			}
		})
	}
}

// TestSearchSurvivesReplicaDeathMidSearch pins a search on the remote
// replica, kills its server, and requires the search to complete on the
// surviving sibling — the flip side of the unreplicated fault test,
// which requires that same death to fail the whole search. The failover
// must also be visible: FailedOver rises through the set, through the
// shard aggregation, and over the wire.
func TestSearchSurvivesReplicaDeathMidSearch(t *testing.T) {
	db := synth.RandomSet(alphabet.Protein, 16, 10, 60, 7101)
	queries := synth.RandomSet(alphabet.Protein, 3, 20, 50, 7102)

	gw := newGateWorker()
	srv := startKillableServer(t, db, engine.Config{
		Workers: []master.Worker{gw}, TopK: 3, Policy: master.PolicySelfScheduling,
	})
	rb, err := remote.Dial(srv.addr(), db.Checksum())
	if err != nil {
		t.Fatal(err)
	}
	local, err := engine.New(db, engine.Config{CPUs: 1, GPUs: 0, TopK: 3})
	if err != nil {
		t.Fatal(err)
	}
	set, err := NewSet("shard 0 [0,16)", db.Checksum(),
		[]Replica{{Backend: rb}, {Backend: local}}, Config{DisableHedge: true})
	if err != nil {
		t.Fatal(err)
	}
	ranges := []shard.Range{{Lo: 0, Hi: db.Len()}}
	s, err := shard.WithBackends(db, shard.Contiguous, ranges, []engine.Backend{set}, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	ref, err := engine.New(db, engine.Config{CPUs: 1, GPUs: 0, TopK: 3})
	if err != nil {
		t.Fatal(err)
	}
	want := searchHits(t, ref, queries, 0)
	ref.Close()

	done := make(chan struct {
		rep *master.Report
		err error
	}, 1)
	go func() {
		rep, err := s.Search(context.Background(), queries, engine.SearchOptions{})
		done <- struct {
			rep *master.Report
			err error
		}{rep, err}
	}()
	<-gw.started // the remote replica provably holds the search
	srv.kill()
	select {
	case r := <-done:
		if r.err != nil {
			t.Fatalf("search did not survive replica death: %v", r.err)
		}
		if got := hitBytes(t, r.rep.Results); !bytes.Equal(got, want) {
			t.Fatal("failed-over hits differ from reference engine")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("search hung on a dead replica")
	}
	close(gw.release)

	if st := set.Stats(); st.FailedOver < 1 {
		t.Fatalf("set FailedOver = %d, want >= 1", st.FailedOver)
	}
	// Aggregated through the sharded facade.
	if st := s.Stats(); st.FailedOver < 1 {
		t.Fatalf("shard-aggregated FailedOver = %d, want >= 1", st.FailedOver)
	}
	// And across the wire: serve the sharded facade, dial it, and read
	// the counters a remote operator would see.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go engine.Serve(l, s)
	wb, err := remote.Dial(l.Addr().String(), db.Checksum())
	if err != nil {
		t.Fatal(err)
	}
	defer wb.Close()
	if st := wb.Stats(); st.FailedOver < 1 {
		t.Fatalf("wire-level FailedOver = %d, want >= 1", st.FailedOver)
	}
}

// TestAllReplicasDeadNamesTheRange kills every replica of a range and
// requires the error to name the set and the underlying cause, so an
// operator knows which range lost its last copy.
func TestAllReplicasDeadNamesTheRange(t *testing.T) {
	db := synth.RandomSet(alphabet.Protein, 12, 10, 60, 7201)
	queries := synth.RandomSet(alphabet.Protein, 2, 20, 50, 7202)
	ecfg := engine.Config{CPUs: 1, GPUs: 0, TopK: 3}

	srv0 := startKillableServer(t, db, ecfg)
	srv1 := startKillableServer(t, db, ecfg)
	rb0, err := remote.Dial(srv0.addr(), db.Checksum())
	if err != nil {
		t.Fatal(err)
	}
	rb1, err := remote.Dial(srv1.addr(), db.Checksum())
	if err != nil {
		t.Fatal(err)
	}
	set, err := NewSet("shard 1 [6,12)", db.Checksum(),
		[]Replica{{Backend: rb0}, {Backend: rb1}}, Config{DisableHedge: true})
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()

	// Prove the set works, then kill both members.
	if _, err := set.Search(context.Background(), queries, engine.SearchOptions{}); err != nil {
		t.Fatalf("search before kill: %v", err)
	}
	srv0.kill()
	srv1.kill()
	_, err = set.Search(context.Background(), queries, engine.SearchOptions{})
	if err == nil {
		t.Fatal("search succeeded with every replica dead")
	}
	msg := err.Error()
	if !strings.Contains(msg, "shard 1 [6,12)") || !strings.Contains(msg, "unavailable") {
		t.Fatalf("error does not name the dead range: %v", err)
	}
	if !strings.Contains(msg, "connection lost") {
		t.Fatalf("error does not carry the underlying cause: %v", err)
	}
	// The replica layer must not leak the ErrClosed sentinel upward:
	// callers distinguish "the set is closed" from "the set is down".
	if errors.Is(err, engine.ErrClosed) {
		t.Fatalf("all-replicas-dead error claims the set is closed: %v", err)
	}
	if st := set.Stats(); st.FailedOver < 1 {
		t.Fatalf("FailedOver = %d after exhausting replicas", st.FailedOver)
	}
}

// TestHedgeFiresOnSlowReplica pins replica 0, arms a short fixed hedge
// threshold, and requires the answer to come from the fast sibling with
// HedgedSearches counted — and no goroutine left behind once the slow
// arm drains.
func TestHedgeFiresOnSlowReplica(t *testing.T) {
	before := runtime.NumGoroutine()
	db := synth.RandomSet(alphabet.Protein, 14, 10, 60, 7301)
	queries := synth.RandomSet(alphabet.Protein, 2, 20, 50, 7302)

	gw := newGateWorker()
	slow, err := engine.New(db, engine.Config{
		Workers: []master.Worker{gw}, TopK: 3, Policy: master.PolicySelfScheduling,
	})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := engine.New(db, engine.Config{CPUs: 1, GPUs: 0, TopK: 3})
	if err != nil {
		t.Fatal(err)
	}
	set, err := NewSet("hedge", db.Checksum(),
		[]Replica{{Backend: slow}, {Backend: fast}}, Config{HedgeAfter: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}

	ref, err := engine.New(db, engine.Config{CPUs: 1, GPUs: 0, TopK: 3})
	if err != nil {
		t.Fatal(err)
	}
	want := searchHits(t, ref, queries, 0)
	ref.Close()

	start := time.Now()
	got := searchHits(t, set, queries, 0)
	if !bytes.Equal(got, want) {
		t.Fatal("hedged hits differ from reference engine")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("hedged search took %v — answer did not come from the fast replica", elapsed)
	}
	if st := set.Stats(); st.HedgedSearches != 1 {
		t.Fatalf("HedgedSearches = %d, want 1", st.HedgedSearches)
	}
	// The slow replica was never marked down: slow is not dead.
	if n := set.Healthy(); n != 2 {
		t.Fatalf("healthy replicas = %d after hedge, want 2", n)
	}

	close(gw.release) // let the losing arm drain
	if err := set.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	waitNoLeak(t, before)
}

// TestRedialRevivesDeadReplica kills the remote replica, fails a search
// over to the sibling, restarts the server, and waits for the redial
// loop to bring the set back to full health with Redials counted.
func TestRedialRevivesDeadReplica(t *testing.T) {
	db := synth.RandomSet(alphabet.Protein, 12, 10, 60, 7401)
	queries := synth.RandomSet(alphabet.Protein, 2, 20, 50, 7402)
	ecfg := engine.Config{CPUs: 1, GPUs: 0, TopK: 3}

	srv := startKillableServer(t, db, ecfg)
	var addr atomic.Value
	addr.Store(srv.addr())
	rb, err := remote.Dial(srv.addr(), db.Checksum())
	if err != nil {
		t.Fatal(err)
	}
	local, err := engine.New(db, ecfg)
	if err != nil {
		t.Fatal(err)
	}
	set, err := NewSet("redial", db.Checksum(), []Replica{
		{Backend: rb, Redial: func() (engine.Backend, error) {
			return remote.Dial(addr.Load().(string), db.Checksum())
		}},
		{Backend: local},
	}, Config{DisableHedge: true, RedialBase: 5 * time.Millisecond, RedialMax: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()

	srv.kill()
	// The dead replica costs one failover; the search still answers.
	if _, err := set.Search(context.Background(), queries, engine.SearchOptions{}); err != nil {
		t.Fatalf("search after replica death: %v", err)
	}
	if n := set.Healthy(); n != 1 {
		t.Fatalf("healthy = %d after kill, want 1", n)
	}

	// Bring a fresh server up (new port) and point the redial at it.
	srv2 := startKillableServer(t, db, ecfg)
	addr.Store(srv2.addr())
	deadline := time.Now().Add(10 * time.Second)
	for set.Healthy() != 2 {
		if time.Now().After(deadline) {
			t.Fatal("redial loop never revived the replica")
		}
		time.Sleep(5 * time.Millisecond)
	}
	st := set.Stats()
	if st.Redials < 1 {
		t.Fatalf("Redials = %d, want >= 1", st.Redials)
	}
	if st.FailedOver < 1 {
		t.Fatalf("FailedOver = %d, want >= 1", st.FailedOver)
	}
	// The revived replica serves searches again.
	if _, err := set.Search(context.Background(), queries, engine.SearchOptions{}); err != nil {
		t.Fatalf("search after revival: %v", err)
	}
}

// TestNewSetRejectsSkewedReplicas: replicas serving different slices
// must be refused at construction — failover between them would change
// answers, not preserve them.
func TestNewSetRejectsSkewedReplicas(t *testing.T) {
	db := synth.RandomSet(alphabet.Protein, 10, 10, 60, 7501)
	a, err := engine.New(db.Slice(0, 5), engine.Config{CPUs: 1, GPUs: 0})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := engine.New(db.Slice(5, 10), engine.Config{CPUs: 1, GPUs: 0})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if _, err := NewSet("skew", 0, []Replica{{Backend: a}, {Backend: b}}, Config{}); err == nil {
		t.Fatal("skewed replicas accepted")
	} else if !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("skew error does not mention checksum: %v", err)
	}
	// And against the caller's own expectation.
	if _, err := NewSet("skew", db.Checksum(), []Replica{{Backend: a}}, Config{}); err == nil {
		t.Fatal("replica with wrong checksum accepted against wantChecksum")
	}
}

// TestSetCloseIsIdempotent closes the set from several goroutines and
// requires later calls to fail with the closed sentinel, not hang.
func TestSetCloseIsIdempotent(t *testing.T) {
	db := synth.RandomSet(alphabet.Protein, 8, 10, 40, 7601)
	a, err := engine.New(db, engine.Config{CPUs: 1, GPUs: 0, TopK: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := engine.New(db, engine.Config{CPUs: 1, GPUs: 0, TopK: 3})
	if err != nil {
		t.Fatal(err)
	}
	set, err := NewSet("close", db.Checksum(), []Replica{{Backend: a}, {Backend: b}}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			set.Close()
		}()
	}
	wg.Wait()
	if err := set.Close(); err != nil {
		t.Fatalf("close after close: %v", err)
	}
	queries := synth.RandomSet(alphabet.Protein, 1, 20, 30, 7602)
	if _, err := set.Search(context.Background(), queries, engine.SearchOptions{}); !errors.Is(err, engine.ErrClosed) {
		t.Fatalf("search after close: %v, want ErrClosed", err)
	}
	if _, err := set.Plan([]int{10}); !errors.Is(err, engine.ErrClosed) {
		t.Fatalf("plan after close: %v, want ErrClosed", err)
	}
}

// TestNewSetRequiresALiveReplica: a set whose every member starts down
// cannot describe its slice and must be refused.
func TestNewSetRequiresALiveReplica(t *testing.T) {
	if _, err := NewSet("down", 0, []Replica{
		{Redial: func() (engine.Backend, error) { return nil, errors.New("nope") }},
	}, Config{}); err == nil {
		t.Fatal("all-down set accepted")
	}
	if _, err := NewSet("empty", 0, nil, Config{}); err == nil {
		t.Fatal("empty set accepted")
	}
}
