package replica

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"testing"

	"swdual/internal/alphabet"
	"swdual/internal/engine"
	"swdual/internal/faultinject"
	"swdual/internal/remote"
	"swdual/internal/seq"
	"swdual/internal/synth"
)

// faultedSet builds a two-replica set over faultinject wrappers, one
// per in-process engine, so exhaustion scenarios are scripted instead
// of killed into existence.
func faultedSet(t *testing.T, name string, index int) (*Set, []*faultinject.Backend, *seq.Set) {
	t.Helper()
	db := synth.RandomSet(alphabet.Protein, 12, 10, 60, 7401)
	wrappers := make([]*faultinject.Backend, 2)
	reps := make([]Replica, 2)
	for i := range wrappers {
		eng, err := engine.New(db, engine.Config{CPUs: 1, GPUs: 0, TopK: 3})
		if err != nil {
			t.Fatal(err)
		}
		wrappers[i] = faultinject.Wrap(eng)
		reps[i] = Replica{Backend: wrappers[i]}
		t.Cleanup(func() { wrappers[i].Close() })
	}
	set, err := NewSet(name, db.Checksum(), reps, Config{DisableHedge: true, Index: index})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { set.Close() })
	return set, wrappers, db
}

// TestIdleFaultInjectKeepsReplicaByteIdentical is the replica-layer
// no-fault equivalence bar: a set whose replicas sit behind idle
// faultinject wrappers answers byte-identical to a plain engine, with
// nothing injected and nothing counted.
func TestIdleFaultInjectKeepsReplicaByteIdentical(t *testing.T) {
	set, wrappers, db := faultedSet(t, "idle", 0)
	queries := synth.RandomSet(alphabet.Protein, 3, 20, 50, 7405)
	ref, err := engine.New(db, engine.Config{CPUs: 1, GPUs: 0, TopK: 3})
	if err != nil {
		t.Fatal(err)
	}
	want := searchHits(t, ref, queries, 0)
	ref.Close()
	if got := searchHits(t, set, queries, 0); !bytes.Equal(got, want) {
		t.Fatal("replicated hits behind idle fault injectors differ from the reference engine")
	}
	for i, w := range wrappers {
		if n := w.Injected(); n != 0 {
			t.Fatalf("wrapper %d injected %d faults with an empty schedule", i, n)
		}
	}
	if st := set.Stats(); st.FailedOver != 0 || st.DegradedSearches != 0 {
		t.Fatalf("idle set stats %+v", st)
	}
}

// TestExhaustedSetReturnsTypedRangeError scripts both replicas to die
// with a lost connection and pins the shape of the resulting error:
// errors.As-detectable, carrying the range label, the coordinator's
// shard index, the replica count and the last cause — everything a
// degraded coordinator needs without parsing strings.
func TestExhaustedSetReturnsTypedRangeError(t *testing.T) {
	before := runtime.NumGoroutine()
	set, wrappers, _ := faultedSet(t, "shard 3 [30,40)", 3)
	queries := synth.RandomSet(alphabet.Protein, 2, 20, 50, 7402)
	for i, w := range wrappers {
		w.SetRules(faultinject.Rule{Op: faultinject.OpSearch, Fault: faultinject.Fault{
			Err: fmt.Errorf("replica %d dead: %w", i, remote.ErrConnectionLost),
		}})
	}

	_, err := set.Search(context.Background(), queries, engine.SearchOptions{})
	if err == nil {
		t.Fatal("search succeeded with every replica scripted dead")
	}
	var re *ErrRangeUnavailable
	if !errors.As(err, &re) {
		t.Fatalf("exhaustion error is not typed: %v", err)
	}
	if re.Range != "shard 3 [30,40)" || re.Index != 3 || re.Replicas != 2 {
		t.Fatalf("typed error %+v", re)
	}
	if !strings.Contains(re.Cause, "dead") || !strings.Contains(re.Cause, "connection lost") {
		t.Fatalf("Cause %q does not carry the last failure", re.Cause)
	}
	if !re.RangeUnavailable() {
		t.Fatal("marker method returned false")
	}
	if errors.Is(err, engine.ErrClosed) {
		t.Fatalf("exhaustion error claims the set is closed: %v", err)
	}
	// Both replicas were really tried — exhaustion, not a shortcut.
	for i, w := range wrappers {
		if n := w.Calls(faultinject.OpSearch); n != 1 {
			t.Fatalf("replica %d saw %d searches, want 1", i, n)
		}
	}
	set.Close()
	waitNoLeak(t, before)
}

// TestErrClosedCauseNeverLeaks scripts both replicas to fail with
// engine.ErrClosed — a dying replica's last words — and requires the
// set's exhaustion error to flatten it into Cause: errors.Is must not
// see ErrClosed, or a coordinator would conclude IT was closed and
// pass the sentinel to its own callers.
func TestErrClosedCauseNeverLeaks(t *testing.T) {
	set, wrappers, _ := faultedSet(t, "shard 0 [0,12)", 0)
	queries := synth.RandomSet(alphabet.Protein, 2, 20, 50, 7403)
	for _, w := range wrappers {
		w.SetRules(faultinject.Rule{Op: faultinject.OpSearch, Fault: faultinject.Fault{Err: engine.ErrClosed}})
	}
	_, err := set.Search(context.Background(), queries, engine.SearchOptions{})
	if err == nil {
		t.Fatal("search succeeded with every replica scripted closed")
	}
	var re *ErrRangeUnavailable
	if !errors.As(err, &re) {
		t.Fatalf("exhaustion error is not typed: %v", err)
	}
	if errors.Is(err, engine.ErrClosed) {
		t.Fatalf("ErrClosed leaked through the exhaustion error: %v", err)
	}
	if !strings.Contains(re.Cause, "closed") {
		t.Fatalf("Cause %q lost the underlying failure", re.Cause)
	}
}

// TestParkedSearchHonorsCancellation parks a search at a gate and
// cancels the caller: the search must return promptly with the
// caller's context error, never hanging on the schedule, and the gate
// must not leak the parked goroutine.
func TestParkedSearchHonorsCancellation(t *testing.T) {
	before := runtime.NumGoroutine()
	set, wrappers, _ := faultedSet(t, "shard 0 [0,12)", 0)
	queries := synth.RandomSet(alphabet.Protein, 2, 20, 50, 7404)
	gate := faultinject.NewGate()
	for _, w := range wrappers {
		w.SetRules(faultinject.Rule{Op: faultinject.OpSearch, Fault: faultinject.Fault{Gate: gate}})
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := set.Search(ctx, queries, engine.SearchOptions{})
		done <- err
	}()
	<-gate.Entered() // the search is provably parked
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled parked search returned %v", err)
	}
	gate.Release()
	set.Close()
	waitNoLeak(t, before)
}
