//go:build unix

package seqdb

import (
	"fmt"
	"os"
	"syscall"
)

// mappedOffHeap reports whether mapFile returns memory outside the Go
// heap (true on unix: a real PROT_READ mmap the garbage collector never
// scans and the kernel shares across processes via the page cache).
const mappedOffHeap = true

// mapFile maps size bytes of f read-only. The mapping survives the file
// descriptor being closed, and MAP_SHARED means every process mapping
// the same file on a host shares one physical copy through the page
// cache. PROT_READ makes writing through the mapping impossible by
// construction: a stray store faults at the MMU instead of corrupting
// the database.
func mapFile(f *os.File, size int64) ([]byte, error) {
	if size <= 0 {
		return nil, fmt.Errorf("seqdb: cannot map %d bytes", size)
	}
	if size != int64(int(size)) {
		return nil, fmt.Errorf("seqdb: file of %d bytes exceeds the address space", size)
	}
	b, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("seqdb: mmap %s: %w", f.Name(), err)
	}
	return b, nil
}

// unmapFile releases a mapFile mapping. Any residue subslice handed out
// of the mapping becomes invalid the moment this returns — callers
// sequence Close after the last reader (see Mapped).
func unmapFile(b []byte) error {
	if b == nil {
		return nil
	}
	return syscall.Munmap(b)
}
