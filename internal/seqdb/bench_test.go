package seqdb

import (
	"os"
	"path/filepath"
	"testing"

	"swdual/internal/alphabet"
	"swdual/internal/fasta"
	"swdual/internal/synth"
)

// benchCorpus writes one synthetic corpus in both formats and returns
// the two paths. ~2000 sequences × ~mean 250 residues ≈ 0.5 MB of
// residues — big enough that parse cost dominates fixture noise.
func benchCorpus(b *testing.B) (swdbPath, fastaPath string) {
	b.Helper()
	set := synth.RandomSet(alphabet.Protein, 2000, 50, 450, 77)
	dir := b.TempDir()
	swdbPath = filepath.Join(dir, "bench.swdb")
	if err := Create(swdbPath, set); err != nil {
		b.Fatal(err)
	}
	fastaPath = filepath.Join(dir, "bench.fasta")
	f, err := os.Create(fastaPath)
	if err != nil {
		b.Fatal(err)
	}
	if err := fasta.WriteSet(f, set); err != nil {
		b.Fatal(err)
	}
	if err := f.Close(); err != nil {
		b.Fatal(err)
	}
	return swdbPath, fastaPath
}

// BenchmarkDBOpen compares the three ways a searcher can come to hold
// this corpus: mmap (header + index validation only, residues stay on
// disk until paged in), mmap with the full set materialized (what a
// Searcher construction pays), and the FASTA parse every non-.swdb
// start pays. The ISSUE 9 acceptance bar is swdb-mmap ≥ 10× faster
// than fasta-parse.
func BenchmarkDBOpen(b *testing.B) {
	swdbPath, fastaPath := benchCorpus(b)
	b.Run("swdb-mmap", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m, err := Open(swdbPath)
			if err != nil {
				b.Fatal(err)
			}
			m.Close()
		}
	})
	b.Run("swdb-mmap+set", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m, err := Open(swdbPath)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := m.Set(); err != nil {
				b.Fatal(err)
			}
			m.Close()
		}
	})
	b.Run("swdb-heap", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			f, err := OpenFile(swdbPath)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := f.ReadAll(); err != nil {
				b.Fatal(err)
			}
			f.Close()
		}
	})
	b.Run("fasta-parse", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := fasta.ReadFile(fastaPath, alphabet.Protein, true); err != nil {
				b.Fatal(err)
			}
		}
	})
}
