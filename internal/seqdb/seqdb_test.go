package seqdb

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"swdual/internal/alphabet"
	"swdual/internal/seq"
	"swdual/internal/synth"
)

func tempDB(t *testing.T, set *seq.Set) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "test.swdb")
	if err := Create(path, set); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRoundTrip(t *testing.T) {
	set := synth.RandomSet(alphabet.Protein, 50, 0, 300, 1)
	set.Seqs[3].Desc = "a description with spaces"
	path := tempDB(t, set)
	f, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if f.Count() != set.Len() {
		t.Fatalf("count %d, want %d", f.Count(), set.Len())
	}
	if int64(f.TotalResidues()) != set.TotalResidues() {
		t.Fatalf("residues %d, want %d", f.TotalResidues(), set.TotalResidues())
	}
	if f.Alphabet() != alphabet.Protein {
		t.Fatal("alphabet mismatch")
	}
	back, err := f.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	for i := range set.Seqs {
		if set.Seqs[i].ID != back.Seqs[i].ID || set.Seqs[i].Desc != back.Seqs[i].Desc {
			t.Fatalf("name mismatch at %d: %+v vs %+v", i, set.Seqs[i], back.Seqs[i])
		}
		if !bytes.Equal(set.Seqs[i].Residues, back.Seqs[i].Residues) {
			t.Fatalf("residue mismatch at %d", i)
		}
	}
}

func TestRandomAccess(t *testing.T) {
	set := synth.RandomSet(alphabet.Protein, 40, 1, 100, 2)
	path := tempDB(t, set)
	f, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	// Read out of order — the point of the format (§IV).
	for _, i := range []int{37, 0, 19, 39, 5} {
		s, err := f.ReadSequence(i)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(s.Residues, set.Seqs[i].Residues) {
			t.Fatalf("sequence %d mismatch", i)
		}
		l, err := f.SequenceLen(i)
		if err != nil {
			t.Fatal(err)
		}
		if l != set.Seqs[i].Len() {
			t.Fatalf("length %d mismatch: %d vs %d", i, l, set.Seqs[i].Len())
		}
	}
	if _, err := f.ReadSequence(-1); err == nil {
		t.Fatal("negative index must fail")
	}
	if _, err := f.ReadSequence(40); err == nil {
		t.Fatal("out-of-range index must fail")
	}
}

func TestReadRange(t *testing.T) {
	set := synth.RandomSet(alphabet.Protein, 30, 1, 50, 3)
	path := tempDB(t, set)
	f, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	part, err := f.ReadRange(10, 20)
	if err != nil {
		t.Fatal(err)
	}
	if part.Len() != 10 {
		t.Fatalf("range read %d, want 10", part.Len())
	}
	for i := 0; i < 10; i++ {
		if !bytes.Equal(part.Seqs[i].Residues, set.Seqs[10+i].Residues) {
			t.Fatalf("range mismatch at %d", i)
		}
	}
	if _, err := f.ReadRange(20, 10); err == nil {
		t.Fatal("inverted range must fail")
	}
	if _, err := f.ReadRange(0, 31); err == nil {
		t.Fatal("overlong range must fail")
	}
}

func TestVerify(t *testing.T) {
	set := synth.RandomSet(alphabet.Protein, 20, 1, 80, 4)
	path := tempDB(t, set)
	f, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Verify(); err != nil {
		t.Fatal(err)
	}
	f.Close()
	// Corrupt one residue byte inside the data section.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[headerSize+10] ^= 0x01
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	f2, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	if err := f2.Verify(); err == nil {
		t.Fatal("corruption must fail verification")
	}
}

func TestBadHeader(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.swdb")
	if err := os.WriteFile(path, []byte("NOPE"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFile(path); err == nil {
		t.Fatal("short/bad header must fail")
	}
	if err := os.WriteFile(path, append([]byte("XXXX"), make([]byte, headerSize)...), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFile(path); err == nil {
		t.Fatal("bad magic must fail")
	}
}

func TestEmptyAndDNA(t *testing.T) {
	empty := seq.NewSet(alphabet.Protein)
	path := tempDB(t, empty)
	f, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if f.Count() != 0 {
		t.Fatalf("empty db count %d", f.Count())
	}
	f.Close()

	dna := seq.NewSet(alphabet.DNA)
	dna.AddEncoded("d1", "", alphabet.DNA.MustEncode("ACGTN"))
	path2 := tempDB(t, dna)
	f2, err := OpenFile(path2)
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	if f2.Alphabet() != alphabet.DNA {
		t.Fatal("DNA alphabet not preserved")
	}
	s, err := f2.ReadSequence(0)
	if err != nil {
		t.Fatal(err)
	}
	if alphabet.DNA.DecodeString(s.Residues) != "ACGTN" {
		t.Fatalf("DNA residues %q", alphabet.DNA.DecodeString(s.Residues))
	}
}

// Property: write/read round trip over random sets preserves everything.
func TestQuickRoundTrip(t *testing.T) {
	dir := t.TempDir()
	count := 0
	f := func(seed int64, n uint8) bool {
		count++
		set := synth.RandomSet(alphabet.Protein, int(n%30)+1, 0, 150, seed)
		path := filepath.Join(dir, "q.swdb")
		if err := Create(path, set); err != nil {
			return false
		}
		db, err := OpenFile(path)
		if err != nil {
			return false
		}
		defer db.Close()
		back, err := db.ReadAll()
		if err != nil || back.Len() != set.Len() {
			return false
		}
		for i := range set.Seqs {
			if !bytes.Equal(set.Seqs[i].Residues, back.Seqs[i].Residues) || set.Seqs[i].ID != back.Seqs[i].ID {
				return false
			}
		}
		return db.Verify() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
