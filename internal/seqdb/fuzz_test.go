package seqdb

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"

	"swdual/internal/alphabet"
	"swdual/internal/synth"
)

// memWriteSeeker is the minimal in-memory io.WriteSeeker Write needs,
// so fuzz seeds can be built without touching the filesystem.
type memWriteSeeker struct {
	buf []byte
	pos int64
}

func (m *memWriteSeeker) Write(p []byte) (int, error) {
	if need := m.pos + int64(len(p)); need > int64(len(m.buf)) {
		grown := make([]byte, need)
		copy(grown, m.buf)
		m.buf = grown
	}
	copy(m.buf[m.pos:], p)
	m.pos += int64(len(p))
	return len(p), nil
}

func (m *memWriteSeeker) Seek(off int64, whence int) (int64, error) {
	switch whence {
	case io.SeekStart:
		m.pos = off
	case io.SeekCurrent:
		m.pos += off
	case io.SeekEnd:
		m.pos = int64(len(m.buf)) + off
	}
	return m.pos, nil
}

func validDBBytes(tb testing.TB, count int, seed int64) []byte {
	tb.Helper()
	var w memWriteSeeker
	if err := Write(&w, synth.RandomSet(alphabet.Protein, count, 0, 60, seed)); err != nil {
		tb.Fatal(err)
	}
	return w.buf
}

// FuzzReadSWDB feeds hostile database images to both readers. The
// contract under fuzzing: parsing either errors with a message or
// yields a database whose every sequence is readable — it never
// panics, never reads out of range, and never sizes an allocation from
// a count the file's real length cannot back (the fuzzer would OOM on
// that long before an assertion fired).
func FuzzReadSWDB(f *testing.F) {
	valid := validDBBytes(f, 6, 21)
	f.Add(valid)
	f.Add(validDBBytes(f, 0, 22))
	f.Add([]byte(magic))
	f.Add(valid[:headerSize])
	f.Add(valid[:len(valid)-3]) // truncated index
	huge := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint64(huge[12:], 1<<60) // absurd count
	f.Add(huge)
	far := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint64(far[28:], 1<<62) // index offset past EOF
	f.Add(far)
	overlap := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint64(overlap[28:], headerSize) // index atop data
	f.Add(overlap)

	f.Fuzz(func(t *testing.T, data []byte) {
		// The mapped parser: one shot over the whole image.
		if hdr, entries, err := parseDB(data); err == nil {
			// Accepted: every entry must be slice-safe against the image.
			for _, e := range entries {
				_ = data[e.dataOff : e.dataOff+uint64(e.dataLen)]
				_ = splitNameCopy(data[e.nameOff : e.nameOff+uint64(e.nameLen)])
			}
			_ = hdr
		}
		// The pread reader: open plus a full read of every sequence.
		fl, err := NewFile(bytes.NewReader(data), int64(len(data)))
		if err != nil {
			return
		}
		if err := fl.VerifyIndex(); err != nil {
			return
		}
		if _, err := fl.ReadAll(); err != nil {
			return
		}
	})
}

func splitNameCopy(b []byte) string {
	id, _ := splitName(b)
	return id
}
