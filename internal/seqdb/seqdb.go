// Package seqdb implements the paper's binary sequence-database format
// (§IV). FASTA files are plain text and cannot be read at a specific
// sequence position; this format adds a header and a fixed-stride index so
// both master and workers can read any sequence directly and size memory
// allocations up front.
//
// File layout (all integers little-endian):
//
//	header   : magic "SWDB" | version u32 | alphabet u32 | count u64 |
//	           totalResidues u64 | indexOffset u64 | dataCRC32 u32
//	data     : encoded residues of every sequence, concatenated
//	names    : per sequence, id + 0x00 + description
//	index    : count entries of {dataOff u64, dataLen u32, nameOff u64, nameLen u32}
//
// Two readers exist. OpenFile gives random access through an io.ReaderAt
// (every read copies into fresh heap slices). Open memory-maps the file
// read-only and exposes it as a seq.Set whose Residues are subslices of
// the mapping — zero residue copies, data off the Go heap, one physical
// copy per host shared by every process mapping the same file (see
// mapped.go).
//
// Every header- and index-declared quantity is distrusted until proven
// to lie inside the actual file: a hostile file can neither drive
// out-of-range reads nor size an allocation by lying about counts.
package seqdb

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"swdual/internal/alphabet"
	"swdual/internal/seq"
)

const (
	magic       = "SWDB"
	version     = 1
	headerSize  = 4 + 4 + 4 + 8 + 8 + 8 + 4
	indexStride = 8 + 4 + 8 + 4
)

// Alphabet identifiers stored in the header.
const (
	alphaProtein = iota
	alphaDNA
	alphaRNA
)

func alphaID(a *alphabet.Alphabet) (uint32, error) {
	switch a.Name() {
	case "protein":
		return alphaProtein, nil
	case "dna":
		return alphaDNA, nil
	case "rna":
		return alphaRNA, nil
	}
	return 0, fmt.Errorf("seqdb: unsupported alphabet %q", a.Name())
}

func alphaByID(id uint32) (*alphabet.Alphabet, error) {
	switch id {
	case alphaProtein:
		return alphabet.Protein, nil
	case alphaDNA:
		return alphabet.DNA, nil
	case alphaRNA:
		return alphabet.RNA, nil
	}
	return nil, fmt.Errorf("seqdb: unknown alphabet id %d", id)
}

type indexEntry struct {
	dataOff uint64
	dataLen uint32
	nameOff uint64
	nameLen uint32
}

// header is the decoded and size-validated file header.
type header struct {
	alpha         *alphabet.Alphabet
	count         int
	totalResidues uint64
	indexOffset   uint64
	dataCRC       uint32
}

// parseHeader decodes the fixed header and validates every declared
// quantity against the actual file size before anything trusts it:
// the index must lie inside the file, the declared sequence count must
// fit in the index region that is really there, and the declared data
// volume cannot exceed the bytes between header and index. Nothing
// count-driven may be allocated before these checks pass.
func parseHeader(hdr []byte, size int64) (header, error) {
	if size < headerSize {
		return header{}, fmt.Errorf("seqdb: file of %d bytes is shorter than the %d-byte header", size, headerSize)
	}
	if string(hdr[0:4]) != magic {
		return header{}, fmt.Errorf("seqdb: bad magic %q", hdr[0:4])
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != version {
		return header{}, fmt.Errorf("seqdb: unsupported version %d", v)
	}
	alpha, err := alphaByID(binary.LittleEndian.Uint32(hdr[8:]))
	if err != nil {
		return header{}, err
	}
	count := binary.LittleEndian.Uint64(hdr[12:])
	total := binary.LittleEndian.Uint64(hdr[20:])
	indexOffset := binary.LittleEndian.Uint64(hdr[28:])
	if indexOffset < headerSize || indexOffset > uint64(size) {
		return header{}, fmt.Errorf("seqdb: index offset %d outside file of %d bytes", indexOffset, size)
	}
	// Overflow-safe: bound count by the index bytes actually present
	// instead of computing count*indexStride.
	if maxEntries := (uint64(size) - indexOffset) / indexStride; count > maxEntries {
		return header{}, fmt.Errorf("seqdb: header declares %d sequences but the file has index room for %d", count, maxEntries)
	}
	if total > indexOffset-headerSize {
		return header{}, fmt.Errorf("seqdb: header declares %d residues but only %d bytes lie between header and index", total, indexOffset-headerSize)
	}
	return header{
		alpha:         alpha,
		count:         int(count),
		totalResidues: total,
		indexOffset:   indexOffset,
		dataCRC:       binary.LittleEndian.Uint32(hdr[36:]),
	}, nil
}

// checkEntry validates one index entry against the regions the header
// established: residues and names both live in [headerSize,
// indexOffset). The arithmetic is overflow-safe because offsets are
// bounded before lengths are added to them.
func (h *header) checkEntry(i int, e indexEntry) error {
	if e.dataOff < headerSize || e.dataOff > h.indexOffset || uint64(e.dataLen) > h.indexOffset-e.dataOff {
		return fmt.Errorf("seqdb: index entry %d: residues [%d,+%d) outside data region [%d,%d)",
			i, e.dataOff, e.dataLen, headerSize, h.indexOffset)
	}
	if e.nameOff < headerSize || e.nameOff > h.indexOffset || uint64(e.nameLen) > h.indexOffset-e.nameOff {
		return fmt.Errorf("seqdb: index entry %d: name [%d,+%d) outside data region [%d,%d)",
			i, e.nameOff, e.nameLen, headerSize, h.indexOffset)
	}
	return nil
}

func decodeEntry(buf []byte) indexEntry {
	return indexEntry{
		dataOff: binary.LittleEndian.Uint64(buf[0:]),
		dataLen: binary.LittleEndian.Uint32(buf[8:]),
		nameOff: binary.LittleEndian.Uint64(buf[12:]),
		nameLen: binary.LittleEndian.Uint32(buf[20:]),
	}
}

// Write serializes a set into the binary format on ws.
func Write(ws io.WriteSeeker, set *seq.Set) error {
	aid, err := alphaID(set.Alpha)
	if err != nil {
		return err
	}
	// Reserve the header; it is rewritten once offsets are known.
	if _, err := ws.Seek(headerSize, io.SeekStart); err != nil {
		return err
	}
	bw := bufio.NewWriterSize(ws, 1<<20)
	crc := crc32.NewIEEE()
	entries := make([]indexEntry, len(set.Seqs))
	off := uint64(headerSize)
	var total uint64
	for i := range set.Seqs {
		r := set.Seqs[i].Residues
		entries[i].dataOff = off
		entries[i].dataLen = uint32(len(r))
		if _, err := bw.Write(r); err != nil {
			return err
		}
		crc.Write(r)
		off += uint64(len(r))
		total += uint64(len(r))
	}
	for i := range set.Seqs {
		name := nameBlob(&set.Seqs[i])
		entries[i].nameOff = off
		entries[i].nameLen = uint32(len(name))
		if _, err := bw.Write(name); err != nil {
			return err
		}
		off += uint64(len(name))
	}
	indexOffset := off
	var buf [indexStride]byte
	for _, e := range entries {
		binary.LittleEndian.PutUint64(buf[0:], e.dataOff)
		binary.LittleEndian.PutUint32(buf[8:], e.dataLen)
		binary.LittleEndian.PutUint64(buf[12:], e.nameOff)
		binary.LittleEndian.PutUint32(buf[20:], e.nameLen)
		if _, err := bw.Write(buf[:]); err != nil {
			return err
		}
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	// Rewrite the header with final values.
	if _, err := ws.Seek(0, io.SeekStart); err != nil {
		return err
	}
	var hdr [headerSize]byte
	copy(hdr[0:], magic)
	binary.LittleEndian.PutUint32(hdr[4:], version)
	binary.LittleEndian.PutUint32(hdr[8:], aid)
	binary.LittleEndian.PutUint64(hdr[12:], uint64(len(set.Seqs)))
	binary.LittleEndian.PutUint64(hdr[20:], total)
	binary.LittleEndian.PutUint64(hdr[28:], indexOffset)
	binary.LittleEndian.PutUint32(hdr[36:], crc.Sum32())
	_, err = ws.Write(hdr[:])
	return err
}

func nameBlob(s *seq.Sequence) []byte {
	b := make([]byte, 0, len(s.ID)+1+len(s.Desc))
	b = append(b, s.ID...)
	b = append(b, 0)
	b = append(b, s.Desc...)
	return b
}

// Create writes the set to a new file at path.
func Create(path string, set *seq.Set) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, set); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// File provides random access to a database file. It is safe for
// concurrent readers: all reads go through ReadAt. Every read copies
// into fresh heap memory; Open is the zero-copy mmap alternative.
type File struct {
	ra     io.ReaderAt
	closer io.Closer
	size   int64
	hdr    header
}

// OpenFile opens a database file for random access through pread-style
// reads. (Open is the memory-mapped sibling that shares one physical
// copy per host.)
func OpenFile(path string) (*File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	db, err := NewFile(f, fi.Size())
	if err != nil {
		f.Close()
		return nil, err
	}
	db.closer = f
	return db, nil
}

// NewFile builds a File over any io.ReaderAt containing the format.
// size is the length of the underlying data in bytes; every
// header-declared offset and count is validated against it before use.
func NewFile(ra io.ReaderAt, size int64) (*File, error) {
	if size < headerSize {
		return nil, fmt.Errorf("seqdb: file of %d bytes is shorter than the %d-byte header", size, headerSize)
	}
	var hdr [headerSize]byte
	if _, err := ra.ReadAt(hdr[:], 0); err != nil {
		return nil, fmt.Errorf("seqdb: short header: %w", err)
	}
	h, err := parseHeader(hdr[:], size)
	if err != nil {
		return nil, err
	}
	return &File{ra: ra, size: size, hdr: h}, nil
}

// Close releases the underlying file, if any.
func (f *File) Close() error {
	if f.closer != nil {
		return f.closer.Close()
	}
	return nil
}

// Count returns the number of sequences.
func (f *File) Count() int { return f.hdr.count }

// TotalResidues returns the total residue count recorded in the header.
func (f *File) TotalResidues() uint64 { return f.hdr.totalResidues }

// Alphabet returns the database alphabet.
func (f *File) Alphabet() *alphabet.Alphabet { return f.hdr.alpha }

// DataChecksum returns the CRC-32 (IEEE) of the concatenated residues
// as recorded in the header — the same fingerprint seq.Set.Checksum
// computes over an in-memory set.
func (f *File) DataChecksum() uint32 { return f.hdr.dataCRC }

func (f *File) entry(i int) (indexEntry, error) {
	if i < 0 || i >= f.hdr.count {
		return indexEntry{}, fmt.Errorf("seqdb: sequence index %d out of range [0,%d)", i, f.hdr.count)
	}
	var buf [indexStride]byte
	if _, err := f.ra.ReadAt(buf[:], int64(f.hdr.indexOffset)+int64(i)*indexStride); err != nil {
		return indexEntry{}, fmt.Errorf("seqdb: reading index entry %d: %w", i, err)
	}
	e := decodeEntry(buf[:])
	if err := f.hdr.checkEntry(i, e); err != nil {
		return indexEntry{}, err
	}
	return e, nil
}

// SequenceLen returns the residue count of sequence i without reading its
// data — the property the paper highlights for up-front memory allocation.
func (f *File) SequenceLen(i int) (int, error) {
	e, err := f.entry(i)
	if err != nil {
		return 0, err
	}
	return int(e.dataLen), nil
}

// ReadSequence reads sequence i (residues and name) by random access.
func (f *File) ReadSequence(i int) (seq.Sequence, error) {
	e, err := f.entry(i)
	if err != nil {
		return seq.Sequence{}, err
	}
	residues := make([]byte, e.dataLen)
	if _, err := f.ra.ReadAt(residues, int64(e.dataOff)); err != nil {
		return seq.Sequence{}, fmt.Errorf("seqdb: reading sequence %d: %w", i, err)
	}
	name := make([]byte, e.nameLen)
	if _, err := f.ra.ReadAt(name, int64(e.nameOff)); err != nil {
		return seq.Sequence{}, fmt.Errorf("seqdb: reading name %d: %w", i, err)
	}
	id, desc := splitName(name)
	return seq.Sequence{ID: id, Desc: desc, Residues: residues}, nil
}

func splitName(b []byte) (id, desc string) {
	if i := bytes.IndexByte(b, 0); i >= 0 {
		return string(b[:i]), string(b[i+1:])
	}
	return string(b), ""
}

// ReadAll loads the whole database into a seq.Set.
func (f *File) ReadAll() (*seq.Set, error) {
	set := seq.NewSet(f.hdr.alpha)
	set.Seqs = make([]seq.Sequence, 0, f.hdr.count)
	for i := 0; i < f.hdr.count; i++ {
		s, err := f.ReadSequence(i)
		if err != nil {
			return nil, err
		}
		set.Seqs = append(set.Seqs, s)
	}
	return set, nil
}

// ReadRange loads sequences [lo,hi) into a set; this is the random-access
// chunked read pattern the workers use.
func (f *File) ReadRange(lo, hi int) (*seq.Set, error) {
	if lo < 0 || hi > f.hdr.count || lo > hi {
		return nil, fmt.Errorf("seqdb: range [%d,%d) out of bounds [0,%d)", lo, hi, f.hdr.count)
	}
	set := seq.NewSet(f.hdr.alpha)
	set.Seqs = make([]seq.Sequence, 0, hi-lo)
	for i := lo; i < hi; i++ {
		s, err := f.ReadSequence(i)
		if err != nil {
			return nil, err
		}
		set.Seqs = append(set.Seqs, s)
	}
	return set, nil
}

// VerifyIndex walks the whole index and validates every entry against
// the file's real size — offsets inside the data region, lengths that
// fit, and a per-entry residue total that adds up to the header's
// declared count. It reads only the index, never the data.
func (f *File) VerifyIndex() error {
	var total uint64
	for i := 0; i < f.hdr.count; i++ {
		e, err := f.entry(i)
		if err != nil {
			return err
		}
		total += uint64(e.dataLen)
	}
	if total != f.hdr.totalResidues {
		return fmt.Errorf("seqdb: index residue total %d differs from header total %d", total, f.hdr.totalResidues)
	}
	return nil
}

// Verify re-reads the data section and checks it against the stored CRC32.
func (f *File) Verify() error {
	crc := crc32.NewIEEE()
	for i := 0; i < f.hdr.count; i++ {
		s, err := f.ReadSequence(i)
		if err != nil {
			return err
		}
		crc.Write(s.Residues)
	}
	if crc.Sum32() != f.hdr.dataCRC {
		return fmt.Errorf("seqdb: data CRC mismatch: stored %08x computed %08x", f.hdr.dataCRC, crc.Sum32())
	}
	return nil
}
