//go:build unix

package seqdb

import (
	"runtime/debug"
	"testing"

	"swdual/internal/alphabet"
	"swdual/internal/synth"
)

// TestMappedIsReadOnly proves the PROT_READ guarantee the engine path
// relies on: writing through a mapped residue slice is impossible by
// construction — the store faults at the MMU. SetPanicOnFault turns
// that fault into a recoverable panic so the test can observe it
// instead of dying.
func TestMappedIsReadOnly(t *testing.T) {
	set := synth.RandomSet(alphabet.Protein, 8, 4, 40, 14)
	path := tempDB(t, set)
	m, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	s, err := m.Set()
	if err != nil {
		t.Fatal(err)
	}
	r := s.Seqs[0].Residues
	if len(r) == 0 {
		t.Fatal("need a non-empty sequence")
	}

	defer debug.SetPanicOnFault(debug.SetPanicOnFault(true))
	faulted := false
	func() {
		defer func() {
			if recover() != nil {
				faulted = true
			}
		}()
		r[0] = 0xff // must fault: the mapping is PROT_READ
	}()
	if !faulted {
		t.Fatal("write through a mapped residue slice succeeded; the mapping is not read-only")
	}
	// The database is untouched and still serves reads.
	if err := m.Verify(); err != nil {
		t.Fatalf("mapping corrupted after the blocked write: %v", err)
	}
}
