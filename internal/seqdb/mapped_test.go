package seqdb

import (
	"bytes"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"swdual/internal/alphabet"
	"swdual/internal/synth"
)

// TestMappedMatchesFile is the format-level equivalence proof: the
// zero-copy mapped view and the copying pread reader must expose
// byte-identical residues, names and metadata for the same file.
func TestMappedMatchesFile(t *testing.T) {
	set := synth.RandomSet(alphabet.Protein, 60, 0, 250, 7)
	set.Seqs[5].Desc = "a description, with punctuation"
	path := tempDB(t, set)

	m, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	f, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	if m.Count() != f.Count() || m.TotalResidues() != f.TotalResidues() {
		t.Fatalf("metadata mismatch: mapped (%d,%d) vs file (%d,%d)",
			m.Count(), m.TotalResidues(), f.Count(), f.TotalResidues())
	}
	if m.Alphabet() != f.Alphabet() || m.Checksum() != f.DataChecksum() {
		t.Fatal("alphabet or checksum mismatch between readers")
	}
	mapped, err := m.Set()
	if err != nil {
		t.Fatal(err)
	}
	heap, err := f.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if mapped.Len() != heap.Len() {
		t.Fatalf("mapped %d sequences, heap %d", mapped.Len(), heap.Len())
	}
	for i := range heap.Seqs {
		if mapped.Seqs[i].ID != heap.Seqs[i].ID || mapped.Seqs[i].Desc != heap.Seqs[i].Desc {
			t.Fatalf("name mismatch at %d", i)
		}
		if !bytes.Equal(mapped.Seqs[i].Residues, heap.Seqs[i].Residues) {
			t.Fatalf("residue mismatch at %d", i)
		}
	}
	if mapped.Checksum() != heap.Checksum() {
		t.Fatalf("checksum mismatch: mapped (trusted) %08x vs heap (scanned) %08x",
			mapped.Checksum(), heap.Checksum())
	}
}

// TestMappedZeroCopy pins the whole point of the tentpole: every
// residue slice of the mapped set aliases the mapping instead of a heap
// copy, and Set returns the same set (and the same backing) every call.
func TestMappedZeroCopy(t *testing.T) {
	set := synth.RandomSet(alphabet.Protein, 10, 1, 50, 8)
	path := tempDB(t, set)
	m, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	s1, err := m.Set()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := m.Set()
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Fatal("Set must return the one shared set")
	}
	for i, e := range m.entries {
		r := s1.Seqs[i].Residues
		if len(r) == 0 {
			continue
		}
		if &r[0] != &m.data[e.dataOff] {
			t.Fatalf("sequence %d residues are a copy, not a subslice of the mapping", i)
		}
		if cap(r) != len(r) {
			t.Fatalf("sequence %d residue capacity %d exceeds length %d: an append could spill into the neighbor", i, cap(r), len(r))
		}
	}
	if got := m.MappedBytes(); got <= 0 {
		t.Fatalf("MappedBytes = %d, want the file size", got)
	}
}

// TestMappedVerify covers both verification modes: a clean file passes
// lazily and eagerly, and a corrupted residue byte fails Verify and
// OpenVerify while plain Open (which trusts the header CRC) still
// succeeds — the documented trade.
func TestMappedVerify(t *testing.T) {
	set := synth.RandomSet(alphabet.Protein, 25, 1, 90, 9)
	path := tempDB(t, set)
	m, err := OpenVerify(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
	m.Close()

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[headerSize+3] ^= 0x40
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	lazy, err := Open(path)
	if err != nil {
		t.Fatalf("lazy open must trust the header CRC: %v", err)
	}
	if err := lazy.Verify(); err == nil {
		t.Fatal("Verify must catch the corrupted residue")
	}
	lazy.Close()
	if _, err := OpenVerify(path); err == nil {
		t.Fatal("OpenVerify must refuse the corrupted file")
	}
}

// TestMappedCloseLifecycle: Close is idempotent under concurrency, and
// every method after Close reports ErrMappedClosed instead of touching
// the dead mapping.
func TestMappedCloseLifecycle(t *testing.T) {
	set := synth.RandomSet(alphabet.Protein, 12, 1, 40, 10)
	path := tempDB(t, set)
	m, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Set(); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = m.Close()
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("concurrent Close %d: %v", i, err)
		}
	}
	if _, err := m.Set(); err != ErrMappedClosed {
		t.Fatalf("Set after Close: %v, want ErrMappedClosed", err)
	}
	if err := m.Verify(); err != ErrMappedClosed {
		t.Fatalf("Verify after Close: %v, want ErrMappedClosed", err)
	}
	if got := m.MappedBytes(); got != 0 {
		t.Fatalf("MappedBytes after Close = %d, want 0", got)
	}
	if err := m.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestMappedOpenLeaksNothing is the goroutine/mapping-leak baseline:
// open/set/verify/close cycles must leave the goroutine count where it
// started and release every mapping (MappedBytes drops to 0, so a leak
// cannot hide behind a forgotten slice header).
func TestMappedOpenLeaksNothing(t *testing.T) {
	set := synth.RandomSet(alphabet.Protein, 30, 1, 120, 11)
	path := tempDB(t, set)
	before := runtime.NumGoroutine()
	for i := 0; i < 50; i++ {
		m, err := Open(path)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Set(); err != nil {
			t.Fatal(err)
		}
		if err := m.Close(); err != nil {
			t.Fatal(err)
		}
		if m.MappedBytes() != 0 {
			t.Fatal("mapping survived Close")
		}
	}
	for i := 0; i < 20 && runtime.NumGoroutine() > before; i++ {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("goroutines %d -> %d across 50 open/close cycles", before, after)
	}
}

// TestMappedEmptyDB: the degenerate file (header only, zero sequences)
// maps and round-trips.
func TestMappedEmptyDB(t *testing.T) {
	path := tempDB(t, synth.RandomSet(alphabet.Protein, 0, 0, 0, 12))
	m, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	s, err := m.Set()
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 0 || m.Count() != 0 {
		t.Fatalf("empty db read back %d sequences", s.Len())
	}
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestMappedRejectsHostileHeaders spot-checks the validation classes the
// fuzzer explores at random: truncated files, counts larger than the
// index region, an index offset past the end, entries pointing outside
// the data region, and residue totals that do not add up.
func TestMappedRejectsHostileHeaders(t *testing.T) {
	set := synth.RandomSet(alphabet.Protein, 5, 4, 20, 13)
	path := tempDB(t, set)
	valid, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	mutate := func(name string, f func(b []byte) []byte) {
		b := f(append([]byte(nil), valid...))
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Fatal(err)
		}
		if m, err := Open(path); err == nil {
			m.Close()
			t.Fatalf("%s: hostile file accepted", name)
		}
		if f, err := OpenFile(path); err == nil {
			// OpenFile validates lazily per entry; a full index walk
			// must catch whatever the header check could not.
			err := f.VerifyIndex()
			f.Close()
			if err == nil {
				t.Fatalf("%s: hostile file accepted by pread reader", name)
			}
		}
	}
	mutate("truncated header", func(b []byte) []byte { return b[:headerSize-1] })
	mutate("count beyond index", func(b []byte) []byte {
		b[12] = 0xff // count low byte: 255 sequences, index room for 5
		return b
	})
	mutate("index offset past EOF", func(b []byte) []byte {
		b[28], b[29] = 0xff, 0xff
		return b
	})
	mutate("entry outside data region", func(b []byte) []byte {
		// First index entry's dataOff points past the index.
		io := binaryUint64(b[28:])
		b[io], b[io+1] = 0xff, 0xff
		return b
	})
	mutate("residue total mismatch", func(b []byte) []byte {
		b[20]++ // totalResidues no longer matches the entry sum
		return b
	})
}

func binaryUint64(b []byte) uint64 {
	var v uint64
	for i := 7; i >= 0; i-- {
		v = v<<8 | uint64(b[i])
	}
	return v
}
