//go:build !unix

package seqdb

import (
	"fmt"
	"io"
	"os"
)

// mappedOffHeap is false here: the portability fallback reads the file
// into an ordinary heap slice, so the "mapping" is GC-scanned memory
// and nothing is shared between processes. The Mapped API behaves
// identically either way; only the memory economics differ.
const mappedOffHeap = false

// mapFile reads size bytes of f into a heap buffer — the portable
// stand-in for mmap on platforms without one. Read-only enforcement is
// by convention only on this path.
func mapFile(f *os.File, size int64) ([]byte, error) {
	if size <= 0 {
		return nil, fmt.Errorf("seqdb: cannot map %d bytes", size)
	}
	if size != int64(int(size)) {
		return nil, fmt.Errorf("seqdb: file of %d bytes exceeds the address space", size)
	}
	b := make([]byte, size)
	if _, err := io.ReadFull(io.NewSectionReader(f, 0, size), b); err != nil {
		return nil, fmt.Errorf("seqdb: reading %s: %w", f.Name(), err)
	}
	return b, nil
}

// unmapFile releases the heap buffer to the garbage collector.
func unmapFile([]byte) error { return nil }
