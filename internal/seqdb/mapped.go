package seqdb

import (
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"sync"

	"swdual/internal/alphabet"
	"swdual/internal/seq"
)

// ErrMappedClosed is returned by every Mapped method after Close.
var ErrMappedClosed = errors.New("seqdb: mapped database is closed")

// Mapped is a read-only memory-mapped database file. Open validates the
// header and the whole index against the real file size (O(index), no
// data scan), and Set exposes the database as a seq.Set whose Residues
// are subslices of the mapping — zero residue copies, data off the Go
// heap on unix, and one physical copy per host no matter how many
// shard or replica processes map the same file.
//
// The data CRC recorded in the header is trusted on Open (it equals
// seq.Set.Checksum over the same residues, so the engine's prepared
// checksum costs no data scan either); call Verify for the eager mode
// that rescans every residue byte against it.
//
// Lifecycle: Close unmaps the file and is idempotent and
// concurrency-safe, but residue slices handed out by Set die with the
// mapping — stop every searcher over the set before Close (the public
// swdual.Searcher sequences exactly that). Method calls after Close
// fail with ErrMappedClosed instead of faulting.
type Mapped struct {
	path    string
	data    []byte
	hdr     header
	entries []indexEntry

	// mu is held shared by readers for the duration of one method call
	// and exclusively by Close, so no method can race the munmap. Names
	// decode lazily, once, on the first Set call; residues are never
	// decoded at all.
	mu      sync.RWMutex
	closed  bool
	setOnce sync.Once
	set     *seq.Set
}

// Open maps the database file at path read-only and validates its
// header and index without touching the data region. The returned
// Mapped must be Closed to release the mapping.
func Open(path string) (*Mapped, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close() // the mapping survives the descriptor
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	if fi.Size() < headerSize {
		return nil, fmt.Errorf("seqdb: %s: file of %d bytes is shorter than the %d-byte header", path, fi.Size(), headerSize)
	}
	data, err := mapFile(f, fi.Size())
	if err != nil {
		return nil, err
	}
	hdr, entries, err := parseDB(data)
	if err != nil {
		unmapFile(data)
		return nil, fmt.Errorf("seqdb: %s: %w", path, err)
	}
	return &Mapped{path: path, data: data, hdr: hdr, entries: entries}, nil
}

// OpenVerify is the eager mode of Open: it additionally rescans the
// whole data region against the header CRC before returning, so a
// corrupted file is rejected at open instead of serving wrong residues.
func OpenVerify(path string) (*Mapped, error) {
	m, err := Open(path)
	if err != nil {
		return nil, err
	}
	if err := m.Verify(); err != nil {
		m.Close()
		return nil, err
	}
	return m, nil
}

// parseDB decodes and fully validates a database image: the header
// against the image size, then every index entry against the regions
// the header established, then the per-entry residue total against the
// header's declared total. The entry slice is the only count-driven
// allocation, and it happens only after parseHeader proved the count
// fits the index bytes actually present. This is the one parser both
// the mapped and the pread reader trust.
func parseDB(data []byte) (header, []indexEntry, error) {
	if len(data) < headerSize {
		return header{}, nil, fmt.Errorf("seqdb: image of %d bytes is shorter than the %d-byte header", len(data), headerSize)
	}
	h, err := parseHeader(data[:headerSize], int64(len(data)))
	if err != nil {
		return header{}, nil, err
	}
	entries := make([]indexEntry, h.count)
	var total uint64
	for i := range entries {
		off := h.indexOffset + uint64(i)*indexStride
		e := decodeEntry(data[off : off+indexStride])
		if err := h.checkEntry(i, e); err != nil {
			return header{}, nil, err
		}
		entries[i] = e
		total += uint64(e.dataLen)
	}
	if total != h.totalResidues {
		return header{}, nil, fmt.Errorf("seqdb: index residue total %d differs from header total %d", total, h.totalResidues)
	}
	return h, entries, nil
}

// Set returns the database as a sequence set backed by the mapping:
// Residues alias the mapped file (capacity-clamped so appends cannot
// spill into a neighbor), and the header CRC is installed as the set's
// precomputed checksum so preparing an engine over it scans no data.
// Names decode on the first call (Open stays O(index)); the same set is
// returned to every caller, and it must be treated as read-only — on
// unix the MMU enforces that for the residues.
func (m *Mapped) Set() (*seq.Set, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if m.closed {
		return nil, ErrMappedClosed
	}
	m.setOnce.Do(func() {
		set := seq.NewSet(m.hdr.alpha)
		set.Seqs = make([]seq.Sequence, len(m.entries))
		for i, e := range m.entries {
			dataEnd := e.dataOff + uint64(e.dataLen)
			id, desc := splitName(m.data[e.nameOff : e.nameOff+uint64(e.nameLen)])
			set.Seqs[i] = seq.Sequence{
				ID:       id,
				Desc:     desc,
				Residues: m.data[e.dataOff:dataEnd:dataEnd],
			}
		}
		set.SetPrecomputedChecksum(m.hdr.dataCRC)
		m.set = set
	})
	return m.set, nil
}

// Verify rescans the mapped data region and checks it against the
// header CRC — the eager integrity mode Open deliberately skips.
func (m *Mapped) Verify() error {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if m.closed {
		return ErrMappedClosed
	}
	crc := crc32.NewIEEE()
	for _, e := range m.entries {
		crc.Write(m.data[e.dataOff : e.dataOff+uint64(e.dataLen)])
	}
	if crc.Sum32() != m.hdr.dataCRC {
		return fmt.Errorf("seqdb: data CRC mismatch: stored %08x computed %08x", m.hdr.dataCRC, crc.Sum32())
	}
	return nil
}

// Close releases the mapping. It is idempotent and safe to call
// concurrently; every later method call fails with ErrMappedClosed.
// Callers must stop searching the Set first — its residue slices point
// into the mapping being released.
func (m *Mapped) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil
	}
	m.closed = true
	data := m.data
	m.data = nil
	return unmapFile(data)
}

// Count returns the number of sequences.
func (m *Mapped) Count() int { return m.hdr.count }

// TotalResidues returns the residue total recorded in the header
// (proven equal to the index's per-entry sum at Open).
func (m *Mapped) TotalResidues() uint64 { return m.hdr.totalResidues }

// Alphabet returns the database alphabet.
func (m *Mapped) Alphabet() *alphabet.Alphabet { return m.hdr.alpha }

// Checksum returns the header's data CRC-32 — identical to
// seq.Set.Checksum over the same residues.
func (m *Mapped) Checksum() uint32 { return m.hdr.dataCRC }

// MappedBytes returns the size of the mapping in bytes (0 after Close).
func (m *Mapped) MappedBytes() int64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return int64(len(m.data))
}

// OffHeap reports whether the mapping lives outside the Go heap (true
// on unix, false on the portability fallback that reads into heap).
func (m *Mapped) OffHeap() bool { return mappedOffHeap }

// Path returns the path the database was opened from.
func (m *Mapped) Path() string { return m.path }
