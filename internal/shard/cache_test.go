package shard

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"swdual/internal/alphabet"
	"swdual/internal/engine"
	"swdual/internal/master"
	"swdual/internal/seq"
	"swdual/internal/synth"
)

// TestCachedShardedMatchesUnsharded is the shard-layer equivalence
// proof: with the coordinator cache on, first-time and repeated
// searches stay byte-identical to an unsharded engine, and the repeats
// never reach a shard — the scatter is skipped entirely.
func TestCachedShardedMatchesUnsharded(t *testing.T) {
	const topK = 5
	db := synth.RandomSet(alphabet.Protein, 41, 10, 150, 2001)
	queries := synth.RandomSet(alphabet.Protein, 6, 20, 90, 2002)
	ecfg := engine.Config{CPUs: 1, GPUs: 1, TopK: topK}

	whole, err := engine.New(db, ecfg)
	if err != nil {
		t.Fatal(err)
	}
	defer whole.Close()
	want := searchHits(t, whole, queries, topK)

	sharded, err := New(db, Config{Shards: 3, Engine: ecfg, Cache: true})
	if err != nil {
		t.Fatal(err)
	}
	defer sharded.Close()

	for round := 0; round < 3; round++ {
		if got := searchHits(t, sharded, queries, topK); !bytes.Equal(got, want) {
			t.Fatalf("round %d: cached sharded hits differ from unsharded", round)
		}
	}
	st := sharded.Stats()
	if st.CacheMisses != 1 || st.CacheHits != 2 {
		t.Fatalf("coordinator misses/hits %d/%d, want 1/2", st.CacheMisses, st.CacheHits)
	}
	// The proof the scatter was skipped: each shard engine saw exactly
	// one search in three rounds.
	for si, shardStats := range sharded.PerShardStats() {
		if shardStats.Searches != 1 {
			t.Fatalf("shard %d ran %d searches, want 1 (cached answers must skip the scatter)", si, shardStats.Searches)
		}
	}
	// Under sharding the engines run uncached even though Engine.Cache
	// was inherited from the coordinator config elsewhere: no per-shard
	// cache traffic beyond the coordinator's own counters.
	if st.Waves != 3 {
		t.Fatalf("waves %d, want 3 (one per shard, once)", st.Waves)
	}
}

// TestShardConfigCacheDisablesEngineCache: New must strip Engine.Cache
// so answers are cached once (coordinator), not per shard.
func TestShardConfigCacheDisablesEngineCache(t *testing.T) {
	db := synth.RandomSet(alphabet.Protein, 20, 10, 100, 2003)
	queries := synth.RandomSet(alphabet.Protein, 3, 20, 60, 2004)
	ecfg := engine.Config{CPUs: 1, TopK: 3, Cache: true}
	s, err := New(db, Config{Shards: 2, Engine: ecfg, Cache: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Search(context.Background(), queries, engine.SearchOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Search(context.Background(), queries, engine.SearchOptions{}); err != nil {
		t.Fatal(err)
	}
	for si, st := range s.PerShardStats() {
		if st.CacheHits != 0 || st.CacheMisses != 0 {
			t.Fatalf("shard %d engine cached (%d hits, %d misses); the coordinator owns the cache", si, st.CacheHits, st.CacheMisses)
		}
	}
	if st := s.Stats(); st.CacheHits != 1 {
		t.Fatalf("coordinator stats: %+v", st)
	}
}

// gateBackend wraps a real engine and pins its Search until released,
// so shard-level collapse tests can hold a scatter open
// deterministically.
type gateBackend struct {
	engine.Backend
	mu       sync.Mutex
	started  chan struct{}
	release  chan struct{}
	searches int
}

func newGateBackend(inner engine.Backend) *gateBackend {
	return &gateBackend{Backend: inner, started: make(chan struct{}), release: make(chan struct{})}
}

func (g *gateBackend) Search(ctx context.Context, queries *seq.Set, opts engine.SearchOptions) (*master.Report, error) {
	g.mu.Lock()
	g.searches++
	if g.searches == 1 {
		close(g.started)
	}
	g.mu.Unlock()
	select {
	case <-g.release:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return g.Backend.Search(ctx, queries, opts)
}

func (g *gateBackend) searchCount() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.searches
}

// waitShardStats polls the coordinator's counters until cond holds.
func waitShardStats(t *testing.T, s *Searcher, desc string, cond func(engine.Stats) bool) {
	t.Helper()
	deadline := time.After(10 * time.Second)
	for !cond(s.Stats()) {
		select {
		case <-deadline:
			t.Fatalf("timeout waiting for %s; stats %+v", desc, s.Stats())
		case <-time.After(time.Millisecond):
		}
	}
}

// TestCoordinatorCollapsesConcurrentSearches pins the scatter open via
// a gated backend and piles identical searches behind the leader: all
// of them must share the leader's single scatter, and a canceled
// follower must abandon only itself.
func TestCoordinatorCollapsesConcurrentSearches(t *testing.T) {
	const topK = 3
	db := synth.RandomSet(alphabet.Protein, 20, 10, 100, 2005)
	queries := synth.RandomSet(alphabet.Protein, 3, 20, 60, 2006)
	ranges := RangesFor(db, 2, Contiguous)
	gates := make([]*gateBackend, 2)
	backends := make([]engine.Backend, 2)
	for i, r := range ranges {
		eng, err := engine.New(db.Slice(r.Lo, r.Hi), engine.Config{CPUs: 1, TopK: topK})
		if err != nil {
			t.Fatal(err)
		}
		gates[i] = newGateBackend(eng)
		backends[i] = gates[i]
	}
	s, err := WithBackends(db, Contiguous, ranges, backends, topK)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.EnableCache(0, 0)

	const followers = 7
	reports := make([]*master.Report, followers+1)
	errs := make([]error, followers+1)
	var wg sync.WaitGroup
	search := func(i int) {
		defer wg.Done()
		reports[i], errs[i] = s.Search(context.Background(), queries, engine.SearchOptions{})
	}
	wg.Add(1)
	go search(0)
	<-gates[0].started // the leader's scatter is in flight and pinned
	for i := 1; i <= followers; i++ {
		wg.Add(1)
		go search(i)
	}
	waitShardStats(t, s, "followers to join", func(st engine.Stats) bool { return st.CollapsedSearches == followers })

	// One more caller with a canceled context: a follower's
	// cancellation abandons only that follower, even mid-collapse.
	ctx, cancel := context.WithCancel(context.Background())
	doomed := make(chan error, 1)
	go func() {
		_, err := s.Search(ctx, queries, engine.SearchOptions{})
		doomed <- err
	}()
	waitShardStats(t, s, "doomed follower to join", func(st engine.Stats) bool { return st.CollapsedSearches == followers+1 })
	cancel()
	select {
	case err := <-doomed:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("canceled follower: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("canceled follower stuck behind the pinned scatter")
	}

	for _, g := range gates {
		close(g.release)
	}
	wg.Wait()
	for i := range errs {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
	}
	want := hitBytes(t, reports[0].Results)
	for i := 1; i < len(reports); i++ {
		if !bytes.Equal(hitBytes(t, reports[i].Results), want) {
			t.Fatalf("follower %d hits differ from the leader's", i)
		}
	}
	for si, g := range gates {
		if n := g.searchCount(); n != 1 {
			t.Fatalf("shard %d saw %d scatters for %d collapsed searches, want 1", si, n, followers+2)
		}
	}
	if st := s.Stats(); st.Searches != followers+2 || st.CacheMisses != followers+2 {
		t.Fatalf("coordinator stats after collapse: %+v", st)
	}
}
