// Package shard scales the persistent engine beyond one scheduling
// horizon by partitioning the database across independent per-shard
// Searchers: a Search call is scattered to every shard concurrently and
// the per-query hits are gathered through a deterministic TopK merge, so
// results are byte-identical to the unsharded engine. Related work makes
// the same move to scale similarity search past one node — fine-grained
// parallel search engines partition the bank across workers (Nguyen &
// Lavenier 2008), and large-scale genomic accelerators partition the
// data the same way (BioSEAL). Because each shard sits behind the
// narrow engine.Backend interface, a shard is a transport choice, not
// an architecture: New builds in-process engine.Searchers, while
// WithBackends accepts any mix of those and internal/remote clients —
// the same scatter/gather distributed across machines (cluster serve).
package shard

import (
	"fmt"

	"swdual/internal/seq"
)

// Strategy selects how the database is split into shards. Both
// strategies produce contiguous index ranges, so a shard-local hit index
// lifts to the global index by adding the shard's offset.
type Strategy int

const (
	// Contiguous splits the database into shards of (near) equal
	// sequence counts.
	Contiguous Strategy = iota
	// BalancedResidues places the shard boundaries so total residues —
	// and therefore dynamic-programming cell volume, the real unit of
	// work — balance across shards even when sequence lengths are skewed.
	BalancedResidues
)

// String names the strategy the way ParseStrategy accepts it.
func (s Strategy) String() string {
	switch s {
	case Contiguous:
		return "contiguous"
	case BalancedResidues:
		return "balanced"
	}
	return fmt.Sprintf("Strategy(%d)", int(s))
}

// ParseStrategy maps a user-facing name to a Strategy. The empty string
// selects Contiguous.
func ParseStrategy(name string) (Strategy, error) {
	switch name {
	case "", "contiguous":
		return Contiguous, nil
	case "balanced", "balanced-residues":
		return BalancedResidues, nil
	}
	return 0, fmt.Errorf("shard: unknown split strategy %q (want contiguous or balanced)", name)
}

// Range is one shard's contiguous slice [Lo, Hi) of the database.
type Range struct {
	Lo, Hi int
}

// Len returns the number of sequences in the range.
func (r Range) Len() int { return r.Hi - r.Lo }

// RangesFor splits a database into shards ranges — the one split every
// party to a sharded deployment must compute identically: the in-process
// facade, a remote coordinator, and each shard server. They all call
// this, so the boundaries can never drift apart.
func RangesFor(db *seq.Set, shards int, strategy Strategy) []Range {
	lengths := make([]int, db.Len())
	for i := range db.Seqs {
		lengths[i] = db.Seqs[i].Len()
	}
	return SplitRanges(lengths, shards, strategy)
}

// SplitRanges partitions n = len(lengths) sequences into shards
// contiguous ranges (shards >= 1; fewer sequences than shards leaves the
// tail ranges empty). The ranges are deterministic for a given input, in
// order, and cover [0, n) exactly.
func SplitRanges(lengths []int, shards int, strategy Strategy) []Range {
	if shards < 1 {
		shards = 1
	}
	n := len(lengths)
	ranges := make([]Range, shards)
	switch strategy {
	case BalancedResidues:
		var total int64
		for _, l := range lengths {
			total += int64(l)
		}
		lo := 0
		var used int64
		for i := 0; i < shards-1; i++ {
			// Aim each shard at an equal share of the residues still
			// unassigned; take one more sequence when it lands closer to
			// the target than stopping short would.
			target := (total - used) / int64(shards-i)
			hi := lo
			var acc int64
			for hi < n {
				l := int64(lengths[hi])
				if acc > 0 && acc+l > target {
					if acc+l-target < target-acc {
						acc += l
						hi++
					}
					break
				}
				acc += l
				hi++
				if acc >= target {
					break
				}
			}
			ranges[i] = Range{Lo: lo, Hi: hi}
			lo = hi
			used += acc
		}
		ranges[shards-1] = Range{Lo: lo, Hi: n}
	default: // Contiguous
		for i := 0; i < shards; i++ {
			ranges[i] = Range{Lo: i * n / shards, Hi: (i + 1) * n / shards}
		}
	}
	return ranges
}
