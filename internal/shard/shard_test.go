package shard

import (
	"math/rand"
	"testing"
)

// checkPartition asserts the ranges are in order, non-overlapping, and
// cover [0, n) exactly — the invariant both strategies must hold for the
// offset-based global index lift to be correct.
func checkPartition(t *testing.T, ranges []Range, n, shards int) {
	t.Helper()
	if len(ranges) != shards {
		t.Fatalf("%d ranges for %d shards", len(ranges), shards)
	}
	at := 0
	for i, r := range ranges {
		if r.Lo != at {
			t.Fatalf("range %d starts at %d, want %d (gap or overlap)", i, r.Lo, at)
		}
		if r.Hi < r.Lo {
			t.Fatalf("range %d inverted: [%d,%d)", i, r.Lo, r.Hi)
		}
		at = r.Hi
	}
	if at != n {
		t.Fatalf("ranges end at %d, want %d", at, n)
	}
}

func TestSplitRangesContiguous(t *testing.T) {
	for _, tc := range []struct{ n, shards int }{
		{0, 1}, {0, 4}, {1, 1}, {1, 8}, {5, 8}, {13, 4}, {100, 7}, {8, 8},
	} {
		lengths := make([]int, tc.n)
		ranges := SplitRanges(lengths, tc.shards, Contiguous)
		checkPartition(t, ranges, tc.n, tc.shards)
		// Equal counts within one sequence.
		min, max := tc.n, 0
		for _, r := range ranges {
			if r.Len() < min {
				min = r.Len()
			}
			if r.Len() > max {
				max = r.Len()
			}
		}
		if tc.n >= tc.shards && max-min > 1 {
			t.Fatalf("n=%d shards=%d: counts spread %d..%d", tc.n, tc.shards, min, max)
		}
	}
}

func TestSplitRangesBalancedResidues(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 50; iter++ {
		n := rng.Intn(60)
		shards := 1 + rng.Intn(8)
		lengths := make([]int, n)
		var total, maxLen int64
		for i := range lengths {
			lengths[i] = 10 + rng.Intn(400)
			total += int64(lengths[i])
			if int64(lengths[i]) > maxLen {
				maxLen = int64(lengths[i])
			}
		}
		ranges := SplitRanges(lengths, shards, BalancedResidues)
		checkPartition(t, ranges, n, shards)
		// Each shard's residue load stays within one sequence of the
		// ideal share: the greedy boundary never overshoots by more than
		// the sequence it chose to take or leave.
		ideal := total / int64(shards)
		for si, r := range ranges {
			var load int64
			for i := r.Lo; i < r.Hi; i++ {
				load += int64(lengths[i])
			}
			if load > ideal+maxLen && si < shards-1 {
				t.Fatalf("iter %d: shard %d loads %d residues, ideal %d, max seq %d", iter, si, load, ideal, maxLen)
			}
		}
	}
}

func TestSplitRangesClampsShards(t *testing.T) {
	ranges := SplitRanges([]int{5, 5}, 0, Contiguous)
	checkPartition(t, ranges, 2, 1)
}

func TestParseStrategy(t *testing.T) {
	for name, want := range map[string]Strategy{
		"": Contiguous, "contiguous": Contiguous,
		"balanced": BalancedResidues, "balanced-residues": BalancedResidues,
	} {
		got, err := ParseStrategy(name)
		if err != nil || got != want {
			t.Fatalf("ParseStrategy(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ParseStrategy("bogus"); err == nil {
		t.Fatal("bogus strategy accepted")
	}
	if Contiguous.String() != "contiguous" || BalancedResidues.String() != "balanced" {
		t.Fatalf("strategy names: %v %v", Contiguous, BalancedResidues)
	}
}
