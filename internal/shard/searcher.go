package shard

import (
	"context"
	"fmt"
	"hash/crc32"
	"sync"
	"sync/atomic"
	"time"

	"swdual/internal/engine"
	"swdual/internal/master"
	"swdual/internal/seq"
)

// Config tunes a sharded Searcher.
type Config struct {
	// Shards is the number of database partitions (default 1). Shards may
	// exceed the sequence count; the surplus shards are empty.
	Shards int
	// Strategy selects the split (Contiguous default).
	Strategy Strategy
	// Engine configures each per-shard engine.Searcher: worker counts are
	// per shard, so Shards×(CPUs+GPUs) workers run in total.
	Engine engine.Config
}

// Searcher is a sharded search service: one engine.Searcher per database
// shard, a scatter of every Search call to all shards concurrently, and
// a deterministic gather of per-query hits (score desc, then shard-global
// SeqIndex asc) that makes results byte-identical to an unsharded engine
// over the same database.
type Searcher struct {
	db       *seq.Set
	strategy Strategy
	topK     int

	ranges []Range
	shards []*engine.Searcher

	dbResidues int64
	dbLengths  []int
	checksum   uint32

	searches atomic.Uint64
	queries  atomic.Uint64

	closeOnce sync.Once
	closeErr  error
}

// New splits db into cfg.Shards contiguous shards with cfg.Strategy and
// prepares one engine.Searcher (with its own worker pool) per shard.
// Callers own the returned Searcher and must Close it to release every
// shard's workers.
func New(db *seq.Set, cfg Config) (*Searcher, error) {
	if db == nil {
		return nil, fmt.Errorf("shard: nil database")
	}
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	topK := cfg.Engine.TopK
	if topK <= 0 {
		topK = engine.DefaultTopK // the gather cap must agree with each shard's cap
	}
	s := &Searcher{
		db:        db,
		strategy:  cfg.Strategy,
		topK:      topK,
		dbLengths: make([]int, db.Len()),
	}
	crc := crc32.NewIEEE()
	for i := range db.Seqs {
		s.dbLengths[i] = db.Seqs[i].Len()
		s.dbResidues += int64(db.Seqs[i].Len())
		crc.Write(db.Seqs[i].Residues)
	}
	s.checksum = crc.Sum32()
	s.ranges = SplitRanges(s.dbLengths, cfg.Shards, cfg.Strategy)
	for _, r := range s.ranges {
		sh, err := engine.New(db.Slice(r.Lo, r.Hi), cfg.Engine)
		if err != nil {
			for _, prev := range s.shards {
				prev.Close()
			}
			return nil, fmt.Errorf("shard %d [%d,%d): %w", len(s.shards), r.Lo, r.Hi, err)
		}
		s.shards = append(s.shards, sh)
	}
	return s, nil
}

// Shards returns the number of shards.
func (s *Searcher) Shards() int { return len(s.shards) }

// Ranges returns each shard's [Lo, Hi) database slice.
func (s *Searcher) Ranges() []Range { return s.ranges }

// Strategy returns the split strategy the Searcher was built with.
func (s *Searcher) Strategy() Strategy { return s.strategy }

// DB returns the whole (unsharded) database.
func (s *Searcher) DB() *seq.Set { return s.db }

// DBLengths returns the precomputed whole-database sequence lengths.
func (s *Searcher) DBLengths() []int { return s.dbLengths }

// Checksum fingerprints the whole database (CRC-32 of all residues, the
// same value an unsharded engine.Searcher reports), so serve-mode
// clients cannot tell a sharded backend from an unsharded one.
func (s *Searcher) Checksum() uint32 { return s.checksum }

// Stats aggregates the per-shard engine counters: preparation passes and
// workers sum across shards (N shards prepare N times), while Searches
// and Queries count the facade's own calls — each Search fans out to
// every shard but is still one search.
func (s *Searcher) Stats() engine.Stats {
	agg := engine.Stats{
		DBSequences: s.db.Len(),
		DBResidues:  s.dbResidues,
		DBChecksum:  s.checksum,
		Searches:    s.searches.Load(),
		Queries:     s.queries.Load(),
	}
	for _, sh := range s.shards {
		st := sh.Stats()
		agg.Prepared += st.Prepared
		agg.WorkersStarted += st.WorkersStarted
		agg.Waves += st.Waves
		agg.BatchedWaves += st.BatchedWaves
	}
	return agg
}

// PerShardStats reports each shard's own engine counters, in shard order.
func (s *Searcher) PerShardStats() []engine.Stats {
	out := make([]engine.Stats, len(s.shards))
	for i, sh := range s.shards {
		out[i] = sh.Stats()
	}
	return out
}

// Search scatters the query set to every shard concurrently, waits for
// all of them, and gathers each query's hits through the deterministic
// TopK merge. It is safe for any number of goroutines and honors ctx the
// way the underlying engines do: on cancellation every shard returns
// ctx.Err() and unstarted tasks are skipped. Because a global top-k hit
// is necessarily in its own shard's top-k, merging the per-shard lists
// loses nothing.
func (s *Searcher) Search(ctx context.Context, queries *seq.Set, opts engine.SearchOptions) (*master.Report, error) {
	if queries == nil {
		return nil, fmt.Errorf("shard: nil query set")
	}
	if queries.Alpha != s.db.Alpha {
		return nil, fmt.Errorf("shard: query alphabet differs from database alphabet")
	}
	topK := opts.TopK
	if topK <= 0 || topK > s.topK {
		topK = s.topK
	}
	start := time.Now()
	s.searches.Add(1)
	s.queries.Add(uint64(queries.Len()))

	reps := make([]*master.Report, len(s.shards))
	errs := make([]error, len(s.shards))
	var wg sync.WaitGroup
	for i := range s.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			reps[i], errs[i] = s.shards[i].Search(ctx, queries, engine.SearchOptions{TopK: topK})
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return s.gather(queries, reps, topK, start), nil
}

// gather merges the per-shard reports into one whole-database Report:
// hits via MergeTopK with each shard's index offset, accounting by sum,
// and worker tallies under shard-prefixed names (every shard has its own
// cpu-0). No single Schedule spans the shards — each ran its own wave —
// so Schedule stays nil.
func (s *Searcher) gather(queries *seq.Set, reps []*master.Report, topK int, start time.Time) *master.Report {
	rep := &master.Report{
		Policy:      reps[0].Policy,
		Results:     make([]master.QueryResult, queries.Len()),
		WorkerBusy:  map[string]time.Duration{},
		WorkerTasks: map[string]int{},
	}
	lists := make([][]master.Hit, len(reps))
	offsets := make([]int, len(reps))
	for qi := range rep.Results {
		qr := master.QueryResult{QueryIndex: qi, QueryID: queries.Seqs[qi].ID}
		for si, r := range reps {
			res := r.Results[qi]
			lists[si] = res.Hits
			offsets[si] = s.ranges[si].Lo
			qr.Elapsed += res.Elapsed
			qr.SimSeconds += res.SimSeconds
			qr.Cells += res.Cells
		}
		qr.Hits = master.MergeTopK(lists, offsets, topK)
		rep.Results[qi] = qr
		rep.Cells += qr.Cells
	}
	for si, r := range reps {
		for name, d := range r.WorkerBusy {
			rep.WorkerBusy[fmt.Sprintf("shard%d/%s", si, name)] += d
		}
		for name, n := range r.WorkerTasks {
			rep.WorkerTasks[fmt.Sprintf("shard%d/%s", si, name)] += n
		}
		// Shards run concurrently, so the modeled makespan of the sharded
		// search is the slowest shard's wave, not the sum.
		if r.SimMakespan > rep.SimMakespan {
			rep.SimMakespan = r.SimMakespan
		}
	}
	rep.Wall = time.Since(start)
	if sec := rep.Wall.Seconds(); sec > 0 {
		rep.GCUPS = float64(rep.Cells) / sec / 1e9
	}
	return rep
}

// Close closes every shard's engine (dispatcher and worker pool). It is
// idempotent and safe to call concurrently; the first error wins. Search
// calls after Close fail with engine.ErrClosed.
func (s *Searcher) Close() error {
	s.closeOnce.Do(func() {
		for _, sh := range s.shards {
			if err := sh.Close(); err != nil && s.closeErr == nil {
				s.closeErr = err
			}
		}
	})
	return s.closeErr
}
